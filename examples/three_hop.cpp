// three_hop.cpp — the paper's longer example (§IV.C), CellPilot version.
//
// Three channel transfers carry a 64-float payload:
//   hop 1: an SPE process to its parent PPE process (type 2),
//   hop 2: that PPE to another node's PPE process  (type 1),
//   hop 3: that PPE to its own SPE process          (type 2).
// The paper reports this program at 80 lines with CellPilot versus 114
// recoded with DaCS (three_hop_dacs.cpp) and 186 with the raw SDK
// (three_hop_sdk.cpp); bench/codesize regenerates the comparison from
// these three files.
#include <cstdio>

#include "core/cellpilot.hpp"

static PI_CHANNEL* speToParent = nullptr;
static PI_CHANNEL* ppeToPpe = nullptr;
static PI_CHANNEL* ppeToSpe = nullptr;
static PI_PROCESS* sinkSPE = nullptr;

PI_SPE_PROGRAM(three_hop_source) {
  float data[64];
  for (int i = 0; i < 64; ++i) data[i] = 0.5f * static_cast<float>(i);
  PI_Write(speToParent, "%64f", data);
  return 0;
}

PI_SPE_PROGRAM(three_hop_sink) {
  float data[64];
  PI_Read(ppeToSpe, "%64f", data);
  std::printf("three_hop: sink SPE received %g .. %g\n",
              static_cast<double>(data[0]), static_cast<double>(data[63]));
  return 0;
}

static int remotePpe(int /*arg*/, void* /*ptr*/) {
  PI_RunSPE(sinkSPE, 0, nullptr);
  float data[64];
  PI_Read(ppeToPpe, "%64f", data);
  PI_Write(ppeToSpe, "%64f", data);
  return 0;
}

static int app_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);

  PI_PROCESS* ppeB = PI_CreateProcess(remotePpe, 0, nullptr);
  PI_PROCESS* sourceSPE = PI_CreateSPE(three_hop_source, PI_MAIN, 0);
  sinkSPE = PI_CreateSPE(three_hop_sink, ppeB, 0);

  speToParent = PI_CreateChannel(sourceSPE, PI_MAIN);
  ppeToPpe = PI_CreateChannel(PI_MAIN, ppeB);
  ppeToSpe = PI_CreateChannel(ppeB, sinkSPE);

  PI_StartAll();
  PI_RunSPE(sourceSPE, 0, nullptr);

  float data[64];
  PI_Read(speToParent, "%64f", data);
  PI_Write(ppeToPpe, "%64f", data);

  PI_StopMain(0);
  return 0;
}

int main() {
  cluster::Cluster machine(cluster::ClusterConfig::two_cells());
  const cellpilot::RunResult result = cellpilot::run(machine, app_main);
  if (result.aborted) {
    std::fprintf(stderr, "job aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }
  std::printf("three_hop: done\n");
  return result.status;
}
