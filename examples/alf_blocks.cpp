// alf_blocks.cpp — the same computation two ways: IBM's ALF work-block
// model (§II.B of the paper) versus CellPilot channels, making the paper's
// comparison concrete.
//
// Workload: block-wise SAXPY (y = a*x + y) over a large array.
//
//   * ALF style: the host queues fixed-size work blocks on a task; the
//     framework DMAs each block in/out of the accelerators and runs the
//     kernel — terse for data-parallel sweeps, but the accelerators can
//     only ever talk to the host's block queue (the restrictiveness that
//     made CellPilot avoid building on ALF).
//   * CellPilot style: the same blocks flow over process/channel pairs —
//     more explicit, but the SPE workers are ordinary processes that could
//     equally talk to each other or to remote nodes.
#include <cmath>
#include <cstdio>
#include <vector>

#include "alfsim/alf.hpp"
#include "core/cellpilot.hpp"

namespace {

constexpr float kA = 2.5f;
constexpr int kBlocks = 32;
constexpr int kFloatsPerBlock = 512;

struct SaxpyBlock {
  float x[kFloatsPerBlock];
  float y[kFloatsPerBlock];
};

// --- ALF version -------------------------------------------------------------

void saxpy_kernel(const void* in, std::size_t, void* out, std::size_t) {
  const auto* block = static_cast<const SaxpyBlock*>(in);
  auto* result = static_cast<float*>(out);
  for (int i = 0; i < kFloatsPerBlock; ++i) {
    result[i] = kA * block->x[i] + block->y[i];
  }
}

double run_alf(const std::vector<SaxpyBlock>& input,
               std::vector<std::vector<float>>& output) {
  const simtime::CostModel cost = simtime::default_cost_model();
  cellsim::CellBlade blade("alf", cost);
  alf::Runtime runtime(blade, cost);

  alf::TaskDesc desc;
  desc.kernel = &saxpy_kernel;
  desc.in_block_bytes = sizeof(SaxpyBlock);
  desc.out_block_bytes = kFloatsPerBlock * sizeof(float);
  desc.accelerators = 4;

  auto task = runtime.create_task(desc);
  for (int b = 0; b < kBlocks; ++b) {
    task->add_work_block(&input[static_cast<std::size_t>(b)],
                         output[static_cast<std::size_t>(b)].data());
  }
  task->wait();
  return simtime::to_us(task->elapsed());
}

// --- CellPilot version ---------------------------------------------------------

constexpr int kSpeWorkers = 4;
PI_CHANNEL* g_blocks_down[kSpeWorkers];
PI_CHANNEL* g_blocks_up[kSpeWorkers];

PI_SPE_PROGRAM_SIZED(saxpy_spe, 4096) {
  const int id = arg1;
  for (;;) {
    int stop = 0;
    SaxpyBlock block;
    PI_Read(g_blocks_down[id], "%d %*f", &stop,
            kFloatsPerBlock * 2, &block);
    if (stop != 0) return 0;
    float result[kFloatsPerBlock];
    for (int i = 0; i < kFloatsPerBlock; ++i) {
      result[i] = kA * block.x[i] + block.y[i];
    }
    PI_Write(g_blocks_up[id], "%*f", kFloatsPerBlock, result);
  }
}

const std::vector<SaxpyBlock>* g_input = nullptr;
std::vector<std::vector<float>>* g_output = nullptr;

int cellpilot_master(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* spes[kSpeWorkers];
  for (int w = 0; w < kSpeWorkers; ++w) {
    spes[w] = PI_CreateSPE(saxpy_spe, PI_MAIN, w);
    g_blocks_down[w] = PI_CreateChannel(PI_MAIN, spes[w]);
    g_blocks_up[w] = PI_CreateChannel(spes[w], PI_MAIN);
  }
  PI_StartAll();
  for (int w = 0; w < kSpeWorkers; ++w) PI_RunSPE(spes[w], w, nullptr);

  // Round-robin the blocks over the workers, one in flight per worker.
  int next_block = 0;
  int outstanding[kSpeWorkers] = {};
  const int go = 0;
  while (next_block < kBlocks || true) {
    bool any = false;
    for (int w = 0; w < kSpeWorkers; ++w) {
      if (outstanding[w] == 0 && next_block < kBlocks) {
        PI_Write(g_blocks_down[w], "%d %*f", go, kFloatsPerBlock * 2,
                 &(*g_input)[static_cast<std::size_t>(next_block)]);
        outstanding[w] = next_block + 1;  // 1-based block id
        ++next_block;
        any = true;
      } else if (outstanding[w] != 0) {
        const int b = outstanding[w] - 1;
        PI_Read(g_blocks_up[w], "%*f", kFloatsPerBlock,
                (*g_output)[static_cast<std::size_t>(b)].data());
        outstanding[w] = 0;
        any = true;
      }
    }
    if (!any) break;
  }

  const int stop = 1;
  SaxpyBlock dummy{};
  for (int w = 0; w < kSpeWorkers; ++w) {
    PI_Write(g_blocks_down[w], "%d %*f", stop, kFloatsPerBlock * 2, &dummy);
  }
  PI_StopMain(0);
  return 0;
}

double run_cellpilot(const std::vector<SaxpyBlock>& input,
                     std::vector<std::vector<float>>& output) {
  g_input = &input;
  g_output = &output;
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  const auto result = cellpilot::run(machine, cellpilot_master);
  if (result.aborted) {
    std::fprintf(stderr, "cellpilot run aborted: %s\n",
                 result.abort_reason.c_str());
    std::exit(1);
  }
  return simtime::to_us(machine.world().clock(0).now());
}

bool verify(const std::vector<SaxpyBlock>& input,
            const std::vector<std::vector<float>>& output,
            const char* label) {
  for (int b = 0; b < kBlocks; ++b) {
    for (int i = 0; i < kFloatsPerBlock; ++i) {
      const auto bs = static_cast<std::size_t>(b);
      const auto is = static_cast<std::size_t>(i);
      const float expect = kA * input[bs].x[is] + input[bs].y[is];
      if (std::fabs(output[bs][is] - expect) > 1e-4f) {
        std::fprintf(stderr, "%s: mismatch at block %d index %d\n", label, b,
                     i);
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  std::vector<SaxpyBlock> input(kBlocks);
  for (int b = 0; b < kBlocks; ++b) {
    for (int i = 0; i < kFloatsPerBlock; ++i) {
      input[static_cast<std::size_t>(b)].x[i] = 0.01f * (b + i);
      input[static_cast<std::size_t>(b)].y[i] = 1.0f + 0.001f * i;
    }
  }
  std::vector<std::vector<float>> out_alf(
      kBlocks, std::vector<float>(kFloatsPerBlock));
  std::vector<std::vector<float>> out_cp(
      kBlocks, std::vector<float>(kFloatsPerBlock));

  const double alf_us = run_alf(input, out_alf);
  const double cp_us = run_cellpilot(input, out_cp);

  if (!verify(input, out_alf, "alf") || !verify(input, out_cp, "cellpilot")) {
    return 1;
  }
  std::printf(
      "alf_blocks: %d blocks x %d floats, 4 SPE workers\n"
      "  ALF work-block model : %10.1f us (virtual)\n"
      "  CellPilot channels   : %10.1f us (virtual)\n"
      "Both correct; ALF's framework-managed double buffering wins on a\n"
      "pure block sweep, while the CellPilot processes could also talk to\n"
      "each other or off-node — the trade-off the paper describes.\n",
      kBlocks, kFloatsPerBlock, alf_us, cp_us);
  return 0;
}
