// async_farm.cpp — a work-stealing SPE farm on the async tier: the master
// keeps one PI_ReadAsync in flight per worker and lets PI_WaitAny decide
// who gets the next strip, so fast workers automatically steal work that a
// round-robin dealer would have pinned on slow ones.
//
// The example showcases the two execution-time capabilities the async
// refactor added on top of the classic Pilot model:
//  * PI_CreateSPESlot + PI_SpawnSPE — the communication structure is still
//    declared up front, but *which program* occupies each SPE is decided at
//    run time (here: a mix of swift and steady workers);
//  * PI_WriteAsync / PI_ReadAsync / PI_WaitAny — the master never blocks on
//    a specific worker; it harvests whichever strip settles first.
//
// The job is the usual pi integration (f(x) = 4/(1+x^2) over [0,1]).  The
// run verifies its own result and the work-stealing effect, and writes
// per-strip latency percentiles to BENCH_async_farm.json (note on stderr).
//
// Usage: async_farm [strips]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchkit/benchjson.hpp"
#include "benchkit/pingpong.hpp"
#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"
#include "pilot/context.hpp"

namespace {

constexpr int kWorkers = 4;
constexpr int kSwiftWorkers = 2;  // slots 0..1 spawn the fast program
constexpr int kSamplesPerStrip = 512;

int g_strips = 48;
PI_CHANNEL* g_task[kWorkers];
PI_CHANNEL* g_sum[kWorkers];
int g_done[kWorkers];
double g_total = 0.0;
std::vector<simtime::SimTime> g_strip_samples;

double integrate(double lo, double hi, int samples) {
  const double dx = (hi - lo) / samples;
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double x = lo + (i + 0.5) * dx;
    sum += 4.0 / (1.0 + x * x);
  }
  return sum * dx;
}

// Two occupant programs for the same slot shape: the swift worker models a
// well-tuned SIMD kernel, the steady one a 3x slower scalar port.  The
// master code is identical either way — the imbalance is absorbed by
// completion order, not by scheduling logic.
PI_SPE_PROGRAM_SIZED(swift_worker, 2048) {
  const int id = arg1;
  for (;;) {
    double lo = 0, hi = 0;
    PI_Read(g_task[id], "%lf %lf", &lo, &hi);
    if (hi < lo) return 0;
    const double part = integrate(lo, hi, kSamplesPerStrip);
    cellsim::spu::self().clock().advance(simtime::us(150));
    PI_Write(g_sum[id], "%lf", part);
  }
}

PI_SPE_PROGRAM_SIZED(steady_worker, 2048) {
  const int id = arg1;
  for (;;) {
    double lo = 0, hi = 0;
    PI_Read(g_task[id], "%lf %lf", &lo, &hi);
    if (hi < lo) return 0;
    const double part = integrate(lo, hi, kSamplesPerStrip);
    cellsim::spu::self().clock().advance(simtime::us(450));
    PI_Write(g_sum[id], "%lf", part);
  }
}

int farm_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* slots[kWorkers];
  for (int w = 0; w < kWorkers; ++w) {
    slots[w] = PI_CreateSPESlot(PI_MAIN, w);
    g_task[w] = PI_CreateChannel(PI_MAIN, slots[w]);
    g_sum[w] = PI_CreateChannel(slots[w], PI_MAIN);
  }
  PI_StartAll();
  for (int w = 0; w < kWorkers; ++w) {
    PI_SpawnSPE(slots[w], w < kSwiftWorkers ? &swift_worker : &steady_worker,
                w, nullptr);
  }

  simtime::VirtualClock& clock = pilot::context().mpi().clock();
  const double width = 1.0 / g_strips;
  double part[kWorkers] = {};
  simtime::SimTime issued[kWorkers] = {};
  // Active set, compacted as workers run out of strips: handles[i] is the
  // in-flight result read of worker active[i].
  std::vector<PI_HANDLE> handles;
  std::vector<int> active;
  int dealt = 0;

  const auto deal = [&](int w) {
    issued[w] = clock.now();
    PI_HANDLE wh =
        PI_WriteAsync(g_task[w], "%lf %lf", dealt * width, (dealt + 1) * width);
    PI_Wait(wh);  // rank writes settle at submission; harvest releases wh
    ++dealt;
  };

  for (int w = 0; w < kWorkers && dealt < g_strips; ++w) {
    deal(w);
    handles.push_back(PI_ReadAsync(g_sum[w], "%lf", &part[w]));
    active.push_back(w);
  }

  while (!handles.empty()) {
    const int i = PI_WaitAny(handles.data(), static_cast<int>(handles.size()));
    const int w = active[static_cast<std::size_t>(i)];
    g_strip_samples.push_back(clock.now() - issued[w]);
    g_total += part[w];
    ++g_done[w];
    if (dealt < g_strips) {  // the finisher steals the next strip
      deal(w);
      handles[static_cast<std::size_t>(i)] =
          PI_ReadAsync(g_sum[w], "%lf", &part[w]);
    } else {  // no work left: retire this worker from the active set
      PI_Write(g_task[w], "%lf %lf", 1.0, 0.0);
      handles[static_cast<std::size_t>(i)] = handles.back();
      active[static_cast<std::size_t>(i)] = active.back();
      handles.pop_back();
      active.pop_back();
    }
  }
  PI_StopMain(0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  g_strips = argc > 1 ? std::atoi(argv[1]) : 48;

  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  const cellpilot::RunResult result = cellpilot::run(machine, farm_main);
  if (result.aborted) {
    std::fprintf(stderr, "job aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }

  const double error = std::fabs(g_total - M_PI);
  const benchkit::SampleStats strip =
      benchkit::summarize_samples(g_strip_samples);
  int swift_strips = 0;
  int steady_strips = 0;
  for (int w = 0; w < kWorkers; ++w) {
    (w < kSwiftWorkers ? swift_strips : steady_strips) += g_done[w];
  }

  std::printf("async_farm: pi ~= %.9f (error %.2e, %d strips)\n", g_total,
              error, g_strips);
  std::printf("  strips by worker:");
  for (int w = 0; w < kWorkers; ++w) {
    std::printf(" %d:%d(%s)", w, g_done[w],
                w < kSwiftWorkers ? "swift" : "steady");
  }
  std::printf("\n  strip latency: p50 %.1f us, p99 %.1f us\n",
              simtime::to_us(strip.p50), simtime::to_us(strip.p99));

  benchkit::BenchJson json("async_farm");
  json.meta("unit", "us")
      .meta("strips", static_cast<std::int64_t>(g_strips))
      .meta("workers", static_cast<std::int64_t>(kWorkers))
      .meta("pi_error", error)
      .meta("strip_p50_us", simtime::to_us(strip.p50))
      .meta("strip_p99_us", simtime::to_us(strip.p99));
  for (int w = 0; w < kWorkers; ++w) {
    json.add_row()
        .set("worker", static_cast<std::int64_t>(w))
        .set("program",
             std::string(w < kSwiftWorkers ? "swift_worker" : "steady_worker"))
        .set("strips", static_cast<std::int64_t>(g_done[w]));
  }
  json.write_file("BENCH_async_farm.json");

  // The example doubles as a smoke test: wrong math, a lost strip, or a
  // dealer that failed to exploit completion order all fail the run.
  if (error > 1e-4) {
    std::fprintf(stderr, "FAIL: pi estimate off by %.3e\n", error);
    return 1;
  }
  if (swift_strips + steady_strips != g_strips) {
    std::fprintf(stderr, "FAIL: %d strips dealt, %d harvested\n", g_strips,
                 swift_strips + steady_strips);
    return 1;
  }
  if (swift_strips <= steady_strips) {
    std::fprintf(stderr,
                 "FAIL: work stealing had no effect (swift %d <= steady %d)\n",
                 swift_strips, steady_strips);
    return 1;
  }
  return 0;
}
