// heat_stencil.cpp — 1-D heat diffusion with halo exchange over Pilot
// channels: the classic cluster-programming workload, spread across the
// hybrid machine so neighbouring domain slabs live on different node kinds
// (Cell PPEs and Xeons) yet exchange halos with identical code.
//
// The domain [0,1] is split into W slabs; each worker owns one slab and
// trades boundary cells with its neighbours every step over dedicated
// channels — the CSP process/channel architecture the Pilot papers
// advocate, with no rank or tag arithmetic anywhere.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/cellpilot.hpp"

namespace {

constexpr int kWorkers = 4;
constexpr int kCellsPerWorker = 64;
constexpr int kSteps = 200;
constexpr double kAlpha = 0.2;  // diffusion number (stable: <= 0.5)

PI_CHANNEL* g_left_out[kWorkers];   // worker w -> worker w-1
PI_CHANNEL* g_right_out[kWorkers];  // worker w -> worker w+1
PI_CHANNEL* g_result[kWorkers];     // worker -> MAIN (gather)
PI_BUNDLE* g_results = nullptr;

int stencil_worker(int index, void* /*arg*/) {
  // Slab with two ghost cells.
  std::vector<double> u(kCellsPerWorker + 2, 0.0);
  std::vector<double> next(kCellsPerWorker + 2, 0.0);

  // Initial condition: a hot spike in the middle of the global domain.
  const int global_mid = kWorkers * kCellsPerWorker / 2;
  for (int i = 1; i <= kCellsPerWorker; ++i) {
    const int global = index * kCellsPerWorker + (i - 1);
    u[static_cast<std::size_t>(i)] = global == global_mid ? 1000.0 : 0.0;
  }

  for (int step = 0; step < kSteps; ++step) {
    // Exchange halos with neighbours (boundary workers hold 0 outside).
    if (index > 0) {
      PI_Write(g_left_out[index], "%lf", u[1]);
      PI_Read(g_right_out[index - 1], "%lf", &u[0]);
    }
    if (index < kWorkers - 1) {
      PI_Write(g_right_out[index], "%lf", u[kCellsPerWorker]);
      PI_Read(g_left_out[index + 1], "%lf",
              &u[static_cast<std::size_t>(kCellsPerWorker) + 1]);
    }
    for (int i = 1; i <= kCellsPerWorker; ++i) {
      const auto s = static_cast<std::size_t>(i);
      next[s] = u[s] + kAlpha * (u[s - 1] - 2 * u[s] + u[s + 1]);
    }
    std::swap(u, next);
  }

  // Report the slab's total heat (conservation check) and its peak.
  double total = 0, peak = 0;
  for (int i = 1; i <= kCellsPerWorker; ++i) {
    total += u[static_cast<std::size_t>(i)];
    peak = std::max(peak, u[static_cast<std::size_t>(i)]);
  }
  PI_Write(g_result[index], "%lf %lf", total, peak);
  return 0;
}

PI_PROCESS* s_workers[kWorkers];

int app_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  for (int w = 0; w < kWorkers; ++w) {
    s_workers[w] = PI_CreateProcess(stencil_worker, w, nullptr);
  }
  for (int w = 0; w < kWorkers; ++w) {
    // Left/right halo channels toward the neighbours that exist.
    g_left_out[w] =
        w > 0 ? PI_CreateChannel(s_workers[w], s_workers[w - 1]) : nullptr;
    g_right_out[w] = w < kWorkers - 1
                         ? PI_CreateChannel(s_workers[w], s_workers[w + 1])
                         : nullptr;
    g_result[w] = PI_CreateChannel(s_workers[w], PI_MAIN);
  }
  g_results = PI_CreateBundle(PI_GATHER, g_result, kWorkers);

  PI_StartAll();

  double totals[kWorkers];
  double peaks[kWorkers];
  PI_Gather(g_results, "%lf %lf", totals, peaks);

  double heat = 0, peak = 0;
  for (int w = 0; w < kWorkers; ++w) {
    heat += totals[w];
    peak = std::max(peak, peaks[w]);
  }
  std::printf(
      "heat_stencil: after %d steps total heat %.6f (expected 1000), "
      "peak %.3f\n",
      kSteps, heat, peak);

  const bool conserved = std::fabs(heat - 1000.0) < 1e-6;
  PI_StopMain(conserved ? 0 : 1);
  return conserved ? 0 : 1;
}

}  // namespace

int main() {
  // Two Cell blades (PPE workers) + one Xeon node: PI_MAIN and one worker
  // share the Xeon; the slab boundary crosses node kinds transparently.
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(2));
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.nodes.push_back(cluster::NodeSpec::xeon(1));
  cluster::Cluster machine(std::move(config));

  const cellpilot::RunResult result = cellpilot::run(machine, app_main);
  if (result.aborted) {
    std::fprintf(stderr, "job aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }
  return result.status;
}
