// quickstart.cpp — the paper's Figures 3 and 4, runnable.
//
// Two Cell nodes.  PI_MAIN (the PPE Pilot process of node 0) starts one
// sender SPE; a second PPE process (node 1) starts one receiver SPE; the
// sender writes an array of 100 integers to the receiver over a type-5
// channel (SPE -> Co-Pilot -> network -> Co-Pilot -> SPE), and the receiver
// prints it.  Every communication detail — mailboxes, effective-address
// translation, MPI relays — is hidden behind PI_Write / PI_Read.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/cellpilot.hpp"

// --- shared configuration (the `__ea` globals of Figure 4) ------------------
static PI_CHANNEL* betweenSPEs = nullptr;
static PI_PROCESS* recvSPE = nullptr;

// --- Sender SPE (Figure 4, lines 32-44) --------------------------------------
PI_SPE_PROGRAM(spe_send) {
  int array[100];
  for (int i = 0; i < 100; ++i) array[i] = i;
  PI_Write(betweenSPEs, "%100d", array);
  return 0;
}

// --- Receiver SPE (Figure 4, lines 46-58) -------------------------------------
PI_SPE_PROGRAM(spe_recv) {
  int array[100];
  PI_Read(betweenSPEs, "%*d", 100, array);
  for (int i = 0; i < 100; ++i) std::printf("%d ", array[i]);
  std::printf("\n");
  return 0;
}

// --- Receiver PPE function (Figure 3, lines 8-13) -----------------------------
static int recvFunc(int /*arg*/, void* /*ptr*/) {
  PI_RunSPE(recvSPE, 0, nullptr);
  return 0;
}

// --- Sender PPE / main (Figure 3, lines 15-31) --------------------------------
static int app_main(int argc, char* argv[]) {
  // configuration phase
  const int n = PI_Configure(&argc, &argv);
  std::printf("quickstart: %d Pilot processes available\n", n);

  PI_PROCESS* recvPPE = PI_CreateProcess(recvFunc, 0, nullptr);
  PI_PROCESS* sendSPE = PI_CreateSPE(spe_send, PI_MAIN, 0);
  recvSPE = PI_CreateSPE(spe_recv, recvPPE, 0);

  betweenSPEs = PI_CreateChannel(sendSPE, recvSPE);

  // execution phase
  PI_StartAll();
  PI_RunSPE(sendSPE, 0, nullptr);

  PI_StopMain(0);
  return 0;
}

int main(int argc, char** argv) {
  // The simulated mpirun: two Cell blades on gigabit Ethernet.  Real CLI
  // flags (-pisvc=, -pitrace=, -pifault=) pass straight through to the
  // ranks' PI_Configure, exactly as mpirun would forward them.
  cluster::Cluster machine(cluster::ClusterConfig::two_cells());
  cellpilot::RunOptions opts;
  for (int i = 1; i < argc; ++i) opts.args.emplace_back(argv[i]);
  const cellpilot::RunResult result = cellpilot::run(machine, app_main, opts);
  if (result.aborted) {
    std::fprintf(stderr, "job aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }
  return result.status;
}
