// three_hop_dacs.cpp — the same three-hop transfer recoded against the
// DaCS-style library (dacssim), the version the paper measures at 114
// lines: shorter than the raw SDK (remote-mem handles replace explicit DMA
// tags and alignment), longer and more intricate than CellPilot (the
// programmer still manages regions, wait identifiers and mailboxes, and
// inter-node transport remains separate).
#include <atomic>
#include <cstdio>
#include <cstring>

#include "dacssim/dacs.hpp"
#include "mpisim/launcher.hpp"
#include "mpisim/mpi.hpp"

namespace {

constexpr std::size_t kFloats = 64;
constexpr std::size_t kBytes = kFloats * sizeof(float);

// Each HE shares one staging region with its AE.
float g_buffer_a[kFloats];
float g_buffer_b[kFloats];

// AE programs receive their Runtime and region through argp.
struct AeArgs {
  dacs::Runtime* rt;
  dacs::remote_mem_t region;
};
AeArgs g_args_a, g_args_b;
std::atomic<bool> g_sink_ok{false};

// --- source AE: fill, put to the HE's region, signal -------------------------
int source_ae_main(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  auto* args = static_cast<AeArgs*>(
      cellsim::ptr_of(static_cast<cellsim::EffectiveAddress>(argp)));
  float data[kFloats];
  for (std::size_t i = 0; i < kFloats; ++i) {
    data[i] = 0.5f * static_cast<float>(i);
  }
  dacs::wid_t wid = 0;
  dacs::dacs_wid_reserve(*args->rt, &wid);
  dacs::dacs_put(*args->rt, args->region, 0, data, kBytes, wid);
  dacs::dacs_wait(*args->rt, wid);
  dacs::dacs_wid_release(*args->rt, &wid);
  dacs::dacs_mailbox_write_to_parent(*args->rt, 1);
  return 0;
}

// --- sink AE: wait for the HE's signal, get from the region, verify ----------
int sink_ae_main(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  auto* args = static_cast<AeArgs*>(
      cellsim::ptr_of(static_cast<cellsim::EffectiveAddress>(argp)));
  std::uint32_t token = 0;
  dacs::dacs_mailbox_read_from_parent(*args->rt, &token);
  float data[kFloats];
  dacs::wid_t wid = 0;
  dacs::dacs_wid_reserve(*args->rt, &wid);
  dacs::dacs_get(*args->rt, data, args->region, 0, kBytes, wid);
  dacs::dacs_wait(*args->rt, wid);
  dacs::dacs_wid_release(*args->rt, &wid);
  bool ok = true;
  for (std::size_t i = 0; i < kFloats; ++i) {
    if (data[i] != 0.5f * static_cast<float>(i)) ok = false;
  }
  std::printf("three_hop_dacs: sink AE received %g .. %g\n",
              static_cast<double>(data[0]),
              static_cast<double>(data[kFloats - 1]));
  g_sink_ok.store(ok);
  return ok ? 0 : 1;
}

const cellsim::spe2::spe_program_handle_t source_handle{"dacs_source",
                                                        &source_ae_main, 2048};
const cellsim::spe2::spe_program_handle_t sink_handle{"dacs_sink",
                                                      &sink_ae_main, 2048};

}  // namespace

int main() {
  const simtime::CostModel cost = simtime::default_cost_model();
  cellsim::CellBlade blade_a("nodeA", cost);
  cellsim::CellBlade blade_b("nodeB", cost);
  dacs::Runtime rt_a(blade_a, cost);
  dacs::Runtime rt_b(blade_b, cost);
  mpisim::World world(
      {{simtime::CoreKind::kPpe, 0, "heA"}, {simtime::CoreKind::kPpe, 1, "heB"}},
      cost);

  const mpisim::LaunchResult result =
      mpisim::launch(world, [&](mpisim::Mpi& mpi) -> int {
        if (mpi.rank() == 0) {
          // HE A: share the region, start the source AE, forward over MPI.
          dacs::remote_mem_t region;
          dacs::dacs_remote_mem_create(rt_a, g_buffer_a, kBytes, &region);
          g_args_a = {&rt_a, region};
          dacs::dacs_de_start(rt_a, dacs::de_id_t{0}, source_handle,
                              cellsim::ea_of(&g_args_a));
          std::uint32_t token = 0;
          dacs::dacs_mailbox_read(rt_a, dacs::de_id_t{0}, &token);
          mpi.send(g_buffer_a, kBytes, 1, /*tag=*/7);
          std::int32_t status = 0;
          dacs::dacs_de_wait(rt_a, dacs::de_id_t{0}, &status);
          dacs::dacs_remote_mem_release(rt_a, &region);
          return status;
        }
        // HE B: share its region, start the sink AE, land the network data
        // in the region and wake the AE.
        dacs::remote_mem_t region;
        dacs::dacs_remote_mem_create(rt_b, g_buffer_b, kBytes, &region);
        g_args_b = {&rt_b, region};
        dacs::dacs_de_start(rt_b, dacs::de_id_t{0}, sink_handle,
                            cellsim::ea_of(&g_args_b));
        mpi.recv(g_buffer_b, kBytes, 0, /*tag=*/7);
        dacs::dacs_mailbox_write(rt_b, dacs::de_id_t{0}, 1);
        std::int32_t status = 0;
        dacs::dacs_de_wait(rt_b, dacs::de_id_t{0}, &status);
        dacs::dacs_remote_mem_release(rt_b, &region);
        return status;
      });

  if (result.aborted || !g_sink_ok.load()) {
    std::fprintf(stderr, "three_hop_dacs: FAILED\n");
    return 1;
  }
  std::printf("three_hop_dacs: done\n");
  return 0;
}
