// pipeline_farm.cpp — a demand-driven task farm across the hybrid cluster,
// exercising Pilot's collective bundles (broadcast, select, gather) together
// with CellPilot's SPE offload.
//
// The job: numerically integrate f(x) = 4/(1+x^2) over [0,1] (= pi) split
// into many strips.  PI_MAIN broadcasts the strip width, then deals strips
// demand-driven: each worker sends a "ready" token; PI_MAIN uses PI_Select
// on the ready-bundle to find who to feed next.  Workers placed on Cell
// nodes offload each strip to two SPE children over type-2 channels; Xeon
// workers integrate on the spot — same worker code, one programming model.
// Finally PI_Gather collects the per-worker partial sums.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/cellpilot.hpp"

namespace {

constexpr int kWorkers = 4;      // 2 on Cell PPEs + 2 on a Xeon node
constexpr int kCellWorkers = 2;  // the first two workers get SPE children
constexpr int kStrips = 64;
constexpr int kSamplesPerStrip = 2048;

PI_CHANNEL* g_ready[kWorkers];       // worker -> MAIN (demand tokens)
PI_CHANNEL* g_task[kWorkers];        // MAIN -> worker (strip index or stop)
PI_CHANNEL* g_result[kWorkers];      // worker -> MAIN (gather bundle)
PI_CHANNEL* g_bcast[kWorkers];       // MAIN -> worker (broadcast bundle)
PI_BUNDLE* g_ready_bundle = nullptr;
PI_BUNDLE* g_gather_bundle = nullptr;
PI_BUNDLE* g_bcast_bundle = nullptr;

// Cell workers offload halves of each strip to two SPEs.
PI_PROCESS* g_spe_child[kCellWorkers][2];
PI_CHANNEL* g_spe_task[kCellWorkers][2];
PI_CHANNEL* g_spe_sum[kCellWorkers][2];

double integrate(double lo, double hi, int samples) {
  const double dx = (hi - lo) / samples;
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double x = lo + (i + 0.5) * dx;
    sum += 4.0 / (1.0 + x * x);
  }
  return sum * dx;
}

PI_SPE_PROGRAM(farm_spe_child) {
  const int worker = arg1 / 2;
  const int half = arg1 % 2;
  for (;;) {
    double lo = 0.0, hi = 0.0;
    PI_Read(g_spe_task[worker][half], "%lf %lf", &lo, &hi);
    if (hi < lo) return 0;  // stop sentinel
    const double part = integrate(lo, hi, kSamplesPerStrip / 2);
    PI_Write(g_spe_sum[worker][half], "%lf", part);
  }
}

int worker_fn(int index, void* /*arg*/) {
  const bool on_cell = index < kCellWorkers;
  if (on_cell) {
    PI_RunSPE(g_spe_child[index][0], index * 2 + 0, nullptr);
    PI_RunSPE(g_spe_child[index][1], index * 2 + 1, nullptr);
  }

  double width = 0.0;
  PI_Read(g_bcast[index], "%lf", &width);

  double partial = 0.0;
  for (;;) {
    const int token = 1;
    PI_Write(g_ready[index], "%d", token);
    int strip = 0;
    PI_Read(g_task[index], "%d", &strip);
    if (strip < 0) break;
    const double lo = strip * width;
    const double hi = lo + width;
    if (on_cell) {
      const double mid = (lo + hi) / 2;
      PI_Write(g_spe_task[index][0], "%lf %lf", lo, mid);
      PI_Write(g_spe_task[index][1], "%lf %lf", mid, hi);
      double a = 0.0, b = 0.0;
      PI_Read(g_spe_sum[index][0], "%lf", &a);
      PI_Read(g_spe_sum[index][1], "%lf", &b);
      partial += a + b;
    } else {
      partial += integrate(lo, hi, kSamplesPerStrip);
    }
  }

  if (on_cell) {
    // Stop the SPE children (hi < lo is the sentinel).
    PI_Write(g_spe_task[index][0], "%lf %lf", 1.0, 0.0);
    PI_Write(g_spe_task[index][1], "%lf %lf", 1.0, 0.0);
  }
  PI_Write(g_result[index], "%lf", partial);
  return 0;
}

int farm_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);

  for (int w = 0; w < kWorkers; ++w) {
    PI_PROCESS* worker = PI_CreateProcess(worker_fn, w, nullptr);
    g_ready[w] = PI_CreateChannel(worker, PI_MAIN);
    g_task[w] = PI_CreateChannel(PI_MAIN, worker);
    g_result[w] = PI_CreateChannel(worker, PI_MAIN);
    g_bcast[w] = PI_CreateChannel(PI_MAIN, worker);
    if (w < kCellWorkers) {
      for (int h = 0; h < 2; ++h) {
        g_spe_child[w][h] = PI_CreateSPE(farm_spe_child, worker, w * 2 + h);
        g_spe_task[w][h] = PI_CreateChannel(worker, g_spe_child[w][h]);
        g_spe_sum[w][h] = PI_CreateChannel(g_spe_child[w][h], worker);
      }
    }
  }
  g_ready_bundle = PI_CreateBundle(PI_SELECT, g_ready, kWorkers);
  g_gather_bundle = PI_CreateBundle(PI_GATHER, g_result, kWorkers);
  g_bcast_bundle = PI_CreateBundle(PI_BROADCAST, g_bcast, kWorkers);

  PI_StartAll();

  const double width = 1.0 / kStrips;
  PI_Broadcast(g_bcast_bundle, "%lf", width);

  int dealt = 0;
  int stopped = 0;
  while (stopped < kWorkers) {
    const int who = PI_Select(g_ready_bundle);
    int token = 0;
    PI_Read(g_ready[who], "%d", &token);
    if (dealt < kStrips) {
      PI_Write(g_task[who], "%d", dealt++);
    } else {
      const int stop = -1;
      PI_Write(g_task[who], "%d", stop);
      ++stopped;
    }
  }

  double partials[kWorkers] = {};
  PI_Gather(g_gather_bundle, "%lf", partials);
  double pi_estimate = 0.0;
  for (double p : partials) pi_estimate += p;

  std::printf("pipeline_farm: pi ~= %.9f (error %.2e, %d strips, %d workers)\n",
              pi_estimate, std::fabs(pi_estimate - M_PI), kStrips, kWorkers);

  PI_StopMain(0);
  return 0;
}

}  // namespace

int main() {
  // Two Cell blades (one PPE worker each) and one Xeon node (two workers +
  // PI_MAIN... PI_MAIN occupies the first rank of the first node).
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(2));  // PI_MAIN + worker 0
  config.nodes.push_back(cluster::NodeSpec::cell(1));  // worker 1
  config.nodes.push_back(cluster::NodeSpec::xeon(2));  // workers 2, 3
  cluster::Cluster machine(config);

  const cellpilot::RunResult result = cellpilot::run(machine, farm_main);
  if (result.aborted) {
    std::fprintf(stderr, "job aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }
  return result.status;
}
