// scatter_search.cpp — the paper's case study (§VI): a parallel scatter
// search metaheuristic for binary optimization, deployed across a hybrid
// Cell cluster with CellPilot.
//
// Problem: QUBO maximization — maximize x^T Q x over x in {0,1}^n with a
// deterministic pseudo-random Q (so every run optimizes the same instance).
//
// Parallel architecture (one unified process/channel design, per the
// paper's pitch that all processor kinds are "equal citizens"):
//   * PI_MAIN (node 0's PPE) maintains the reference set, generates subset
//     combinations, and dispatches improvement jobs.
//   * SPE workers (on the Cell node) run the improvement method — a
//     first-improvement bit-flip hill climber — entirely in local store.
//   * A Xeon worker runs the diversification generator, producing scattered
//     restart solutions.
// All traffic uses the same PI_Write/PI_Read calls although it crosses
// type-1, type-2 and type-3 channels.
#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <vector>

#include "core/cellpilot.hpp"

namespace {

constexpr int kN = 48;           // problem size (bits)
constexpr int kSpeWorkers = 4;   // improvement workers on SPEs
constexpr int kRefSet = 6;       // reference-set size
constexpr int kGenerations = 8;  // scatter-search iterations

// --- deterministic instance --------------------------------------------------
std::int32_t q_entry(int i, int j) {
  // Symmetric pseudo-random Q in [-8, 8], diagonal in [0, 16].
  const std::uint32_t h =
      (static_cast<std::uint32_t>(std::min(i, j)) * 2654435761u) ^
      (static_cast<std::uint32_t>(std::max(i, j)) * 40503u);
  return static_cast<std::int32_t>(h % 17u) - (i == j ? 0 : 8);
}

std::int64_t evaluate(const std::uint8_t* x) {
  std::int64_t total = 0;
  for (int i = 0; i < kN; ++i) {
    if (x[i] == 0) continue;
    for (int j = 0; j < kN; ++j) {
      if (x[j] != 0) total += q_entry(i, j);
    }
  }
  return total;
}

/// First-improvement hill climber; shared verbatim by SPE and PPE workers —
/// the point of the single programming model.
std::int64_t improve(std::uint8_t* x) {
  std::int64_t best = evaluate(x);
  bool improved = true;
  while (improved) {
    improved = false;
    for (int i = 0; i < kN; ++i) {
      x[i] ^= 1u;
      const std::int64_t candidate = evaluate(x);
      if (candidate > best) {
        best = candidate;
        improved = true;
      } else {
        x[i] ^= 1u;
      }
    }
  }
  return best;
}

/// Tiny deterministic PRNG (xorshift) for combination/diversification.
std::uint32_t xorshift(std::uint32_t& state) {
  state ^= state << 13;
  state ^= state >> 17;
  state ^= state << 5;
  return state;
}

// --- configuration shared across processes ----------------------------------
PI_PROCESS* g_spe_workers[kSpeWorkers];
PI_CHANNEL* g_to_spe[kSpeWorkers];
PI_CHANNEL* g_from_spe[kSpeWorkers];
PI_CHANNEL* g_to_diversifier = nullptr;
PI_CHANNEL* g_from_diversifier = nullptr;

// --- SPE improvement worker ---------------------------------------------------
PI_SPE_PROGRAM(ss_improver) {
  const int id = arg1;
  for (;;) {
    std::uint8_t x[kN];
    int stop = 0;
    PI_Read(g_to_spe[id], "%d %*b", &stop, kN, x);
    if (stop != 0) return 0;
    const std::int64_t score = improve(x);
    PI_Write(g_from_spe[id], "%ld %*b", static_cast<long long>(score), kN,
             x);
  }
}

// --- Xeon diversification worker ----------------------------------------------
int diversifier(int /*index*/, void* /*arg*/) {
  std::uint32_t rng = 0xC0FFEE11u;
  for (;;) {
    int request = 0;
    PI_Read(g_to_diversifier, "%d", &request);
    if (request < 0) return 0;
    std::uint8_t x[kN];
    for (int i = 0; i < kN; ++i) {
      x[i] = static_cast<std::uint8_t>(xorshift(rng) & 1u);
    }
    PI_Write(g_from_diversifier, "%*b", kN, x);
  }
}

struct Solution {
  std::uint8_t x[kN];
  std::int64_t score;
};

// --- master -------------------------------------------------------------------
int master_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);

  PI_PROCESS* xeon = PI_CreateProcess(diversifier, 0, nullptr);
  g_to_diversifier = PI_CreateChannel(PI_MAIN, xeon);
  g_from_diversifier = PI_CreateChannel(xeon, PI_MAIN);
  for (int w = 0; w < kSpeWorkers; ++w) {
    g_spe_workers[w] = PI_CreateSPE(ss_improver, PI_MAIN, w);
    g_to_spe[w] = PI_CreateChannel(PI_MAIN, g_spe_workers[w]);
    g_from_spe[w] = PI_CreateChannel(g_spe_workers[w], PI_MAIN);
  }

  PI_StartAll();
  for (int w = 0; w < kSpeWorkers; ++w) {
    PI_RunSPE(g_spe_workers[w], w, nullptr);
  }

  // Seed the reference set from the diversifier, improved on the SPEs.
  std::vector<Solution> refset;
  for (int s = 0; s < kRefSet; ++s) {
    const int want = 1;
    PI_Write(g_to_diversifier, "%d", want);
    Solution sol{};
    PI_Read(g_from_diversifier, "%*b", kN, sol.x);
    const int w = s % kSpeWorkers;
    const int go = 0;
    PI_Write(g_to_spe[w], "%d %*b", go, kN, sol.x);
    long long score = 0;
    PI_Read(g_from_spe[w], "%ld %*b", &score, kN, sol.x);
    sol.score = score;
    refset.push_back(sol);
  }

  std::uint32_t rng = 0xDEADBEEFu;
  for (int gen = 0; gen < kGenerations; ++gen) {
    // Combine pairs from the reference set and farm the children out.
    int inflight = 0;
    for (int a = 0; a < kRefSet && inflight < kSpeWorkers; ++a) {
      for (int b = a + 1; b < kRefSet && inflight < kSpeWorkers; ++b) {
        Solution child{};
        for (int i = 0; i < kN; ++i) {
          child.x[i] = (xorshift(rng) & 1u) != 0 ? refset[static_cast<std::size_t>(a)].x[i]
                                                 : refset[static_cast<std::size_t>(b)].x[i];
        }
        const int go = 0;
        PI_Write(g_to_spe[inflight], "%d %*b", go, kN, child.x);
        ++inflight;
      }
    }
    // Collect improved children and update the reference set.
    for (int w = 0; w < inflight; ++w) {
      Solution child{};
      long long score = 0;
      PI_Read(g_from_spe[w], "%ld %*b", &score, kN, child.x);
      child.score = score;
      auto worst = std::min_element(
          refset.begin(), refset.end(),
          [](const Solution& l, const Solution& r) { return l.score < r.score; });
      if (child.score > worst->score) *worst = child;
    }
  }

  // Shut the workers down.
  for (int w = 0; w < kSpeWorkers; ++w) {
    const int stop = 1;
    std::uint8_t dummy[kN] = {};
    PI_Write(g_to_spe[w], "%d %*b", stop, kN, dummy);
  }
  const int quit = -1;
  PI_Write(g_to_diversifier, "%d", quit);

  const auto best = std::max_element(
      refset.begin(), refset.end(),
      [](const Solution& l, const Solution& r) { return l.score < r.score; });
  std::printf("scatter_search: best objective %lld after %d generations\n",
              static_cast<long long>(best->score), kGenerations);

  PI_StopMain(0);
  return 0;
}

}  // namespace

int main() {
  // One Cell blade plus one Xeon node: the hybrid-cluster deployment.
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.nodes.push_back(cluster::NodeSpec::xeon(1));
  cluster::Cluster machine(config);

  const cellpilot::RunResult result = cellpilot::run(machine, master_main);
  if (result.aborted) {
    std::fprintf(stderr, "job aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }
  return result.status;
}
