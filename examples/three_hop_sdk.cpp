// three_hop_sdk.cpp — the same three-hop transfer as three_hop.cpp, but
// hand-coded against the raw SDK-style interfaces (libspe2 shim, SPU
// channel intrinsics, MFC DMA, mailboxes) plus MPI for the inter-node hop.
//
// This is the style the paper measures at 186 lines: every buffer address,
// alignment, tag mask, mailbox word and completion wait is the programmer's
// problem.  Compare with the CellPilot version's PI_Write/PI_Read calls.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "cellsim/cell.hpp"
#include "cellsim/libspe2.hpp"
#include "cellsim/spu.hpp"
#include "mpisim/launcher.hpp"
#include "mpisim/mpi.hpp"

namespace {

constexpr std::size_t kFloats = 64;
constexpr std::size_t kBytes = kFloats * sizeof(float);
constexpr unsigned kDmaTag = 0;

// Mailbox command words of the hand-rolled protocol.
constexpr std::uint32_t kCmdBufferReady = 1;
constexpr std::uint32_t kCmdDataValid = 2;

// Main-memory staging buffers, quad-word aligned as the MFC requires.
struct Staging {
  alignas(128) float source_buffer[kFloats];
  alignas(128) float sink_buffer[kFloats];
};
Staging g_staging;

std::atomic<bool> g_sink_ok{false};

// --- source SPE: fill data, DMA to main memory, notify the PPE ---------------
int source_spe_main(std::uint64_t /*speid*/, std::uint64_t /*argp*/,
                    std::uint64_t /*envp*/) {
  using namespace cellsim::spu;
  // Allocate a local-store buffer; alignment must satisfy the MFC.
  const cellsim::LsAddr ls = ls_alloc(kBytes, 128);
  auto* data = static_cast<float*>(ls_ptr(ls, kBytes));
  for (std::size_t i = 0; i < kFloats; ++i) {
    data[i] = 0.5f * static_cast<float>(i);
  }
  // DMA the payload out to the staging buffer and await completion.
  mfc_put(ls, cellsim::ea_of(g_staging.source_buffer), kBytes, kDmaTag);
  mfc_write_tag_mask(1u << kDmaTag);
  mfc_read_tag_status_all();
  // Tell the PPE the data is in main memory.
  spu_write_out_mbox(kCmdDataValid);
  ls_free(ls);
  return 0;
}

// --- sink SPE: wait for notification, DMA data in, verify --------------------
int sink_spe_main(std::uint64_t /*speid*/, std::uint64_t /*argp*/,
                  std::uint64_t /*envp*/) {
  using namespace cellsim::spu;
  const cellsim::LsAddr ls = ls_alloc(kBytes, 128);
  // Wait until the PPE signals that the staging buffer holds valid data.
  const std::uint32_t cmd = spu_read_in_mbox();
  if (cmd != kCmdBufferReady) return 1;
  mfc_get(ls, cellsim::ea_of(g_staging.sink_buffer), kBytes, kDmaTag);
  mfc_write_tag_mask(1u << kDmaTag);
  mfc_read_tag_status_all();
  const auto* data = static_cast<const float*>(ls_ptr(ls, kBytes));
  bool ok = true;
  for (std::size_t i = 0; i < kFloats; ++i) {
    if (data[i] != 0.5f * static_cast<float>(i)) ok = false;
  }
  std::printf("three_hop_sdk: sink SPE received %g .. %g\n",
              static_cast<double>(data[0]),
              static_cast<double>(data[kFloats - 1]));
  g_sink_ok.store(ok);
  ls_free(ls);
  return ok ? 0 : 1;
}

const cellsim::spe2::spe_program_handle_t source_handle{"source",
                                                        &source_spe_main,
                                                        2048};
const cellsim::spe2::spe_program_handle_t sink_handle{"sink", &sink_spe_main,
                                                      2048};

// Polls an SPE outbound mailbox from the PPE until a word arrives.
std::uint32_t poll_out_mbox(cellsim::spe2::SpeContext* ctx,
                            simtime::VirtualClock& clock,
                            const simtime::CostModel& cost) {
  std::uint32_t word = 0;
  simtime::SimTime stamp = 0;
  while (cellsim::spe2::spe_out_mbox_read(ctx, &word, 1, &stamp) == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  }
  clock.join(stamp);
  clock.advance(cost.mbox_ppe_read);
  return word;
}

}  // namespace

int main() {
  const simtime::CostModel cost = simtime::default_cost_model();
  cellsim::CellBlade blade_a("nodeA", cost);
  cellsim::CellBlade blade_b("nodeB", cost);
  mpisim::World world(
      {{simtime::CoreKind::kPpe, 0, "ppeA"}, {simtime::CoreKind::kPpe, 1, "ppeB"}},
      cost);

  const mpisim::LaunchResult result = mpisim::launch(
      world, [&](mpisim::Mpi& mpi) -> int {
        if (mpi.rank() == 0) {
          // PPE A: run the source SPE, wait for its DMA, ship over MPI.
          cellsim::spe2::SpeContext* ctx =
              cellsim::spe2::spe_context_create(blade_a.spe(0));
          std::thread runner([&] {
            cellsim::spe2::spe_context_run(ctx, &source_handle, 0, 0);
          });
          const std::uint32_t cmd = poll_out_mbox(ctx, mpi.clock(), cost);
          if (cmd != kCmdDataValid) {
            runner.join();
            cellsim::spe2::spe_context_destroy(ctx);
            return 1;
          }
          mpi.send(g_staging.source_buffer, kBytes, 1, /*tag=*/7);
          runner.join();
          cellsim::spe2::spe_context_destroy(ctx);
          return 0;
        }
        // PPE B: receive from the network, stage for the sink SPE, notify.
        cellsim::spe2::SpeContext* ctx =
            cellsim::spe2::spe_context_create(blade_b.spe(0));
        std::thread runner([&] {
          cellsim::spe2::spe_context_run(ctx, &sink_handle, 0, 0);
        });
        mpi.recv(g_staging.sink_buffer, kBytes, 0, /*tag=*/7);
        const std::uint32_t ready = kCmdBufferReady;
        mpi.clock().advance(cost.mbox_ppe_write);
        cellsim::spe2::spe_in_mbox_write(ctx, &ready, 1, mpi.clock().now());
        runner.join();
        cellsim::spe2::spe_context_destroy(ctx);
        return 0;
      });

  if (result.aborted || !g_sink_ok.load()) {
    std::fprintf(stderr, "three_hop_sdk: FAILED (%s)\n",
                 result.abort_reason.c_str());
    return 1;
  }
  std::printf("three_hop_sdk: done\n");
  return 0;
}
