// cml_dotproduct.cpp — an SPE-only computation in the Cell Messaging Layer
// style (related work, §II.D): every SPE in the cluster is an MPI rank,
// PPEs exist only as invisible relay daemons, and the reduction runs
// hierarchically (SPEs -> node representative -> root).
//
// The job: a blocked dot product of two large vectors partitioned over all
// SPE ranks of two Cell nodes, combined with cml_allreduce_sum so that
// every rank ends up with the full result.  Contrast with CellPilot's
// examples, where the same SPEs would be processes wired by channels to
// PPE and Xeon processes alike.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <vector>

#include "cmlsim/cml.hpp"

namespace {

constexpr int kNodes = 2;
constexpr unsigned kSpesPerNode = 4;
constexpr int kElementsPerRank = 4096;

double x_at(int global_index) { return 1.0 + 0.001 * global_index; }
double y_at(int global_index) { return 2.0 - 0.0005 * global_index; }

}  // namespace

int main() {
  cml::JobConfig config;
  config.nodes = kNodes;
  config.spes_per_node = kSpesPerNode;

  std::atomic<int> checked{0};
  const cml::JobResult result = cml::run(config, [&](int rank, int size) {
    // Each rank owns one contiguous block of the vectors.
    double partial = 0;
    for (int i = 0; i < kElementsPerRank; ++i) {
      const int g = rank * kElementsPerRank + i;
      partial += x_at(g) * y_at(g);
    }
    // The SPU does the multiply-accumulate; charge its virtual compute.
    cml::cml_clock().advance(simtime::us(80));

    double total = 0;
    cml::cml_allreduce_sum(&partial, &total, 1);

    // Every rank verifies the full dot product independently.
    double expect = 0;
    for (int g = 0; g < size * kElementsPerRank; ++g) {
      expect += x_at(g) * y_at(g);
    }
    if (std::fabs(total - expect) < 1e-6 * std::fabs(expect)) {
      checked.fetch_add(1);
    }
    if (rank == 0) {
      std::printf("cml_dotproduct: %d ranks x %d elements -> %.6f\n", size,
                  kElementsPerRank, total);
    }
    return 0;
  });

  if (result.failed) {
    std::fprintf(stderr, "cml job failed: %s\n", result.error.c_str());
    return 1;
  }
  const int expect_ranks = kNodes * static_cast<int>(kSpesPerNode);
  if (checked.load() != expect_ranks) {
    std::fprintf(stderr, "cml_dotproduct: only %d/%d ranks verified\n",
                 checked.load(), expect_ranks);
    return 1;
  }
  std::printf("cml_dotproduct: all %d SPE ranks agree\n", expect_ranks);
  return 0;
}
