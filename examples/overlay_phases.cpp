// overlay_phases.cpp — SPE code overlays in a CellPilot application.
//
// The paper (§II.A) notes that SPE programs exceeding the 256 KB local
// store "may need to divide up their application code accordingly, for
// which an overlay capability is available".  This example runs a
// three-phase signal-processing worker whose phases are too large to be
// resident together: a windowing pass, a (naive) DFT magnitude pass, and a
// peak-detection pass, each living in a 72 KB overlay segment sharing one
// region.  Data flows in and out over ordinary CellPilot channels; the
// overlay swaps are visible in the run summary.
#include <cmath>
#include <cstdio>

#include "cellsim/overlay.hpp"
#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"

namespace {

constexpr int kSamples = 256;
constexpr int kPhaseSegmentBytes = 72 * 1024;  // 3 x 72K > 208K usable LS

PI_CHANNEL* g_samples_in = nullptr;
PI_CHANNEL* g_peak_out = nullptr;

PI_SPE_PROGRAM_SIZED(overlay_dsp, 2048) {
  float signal[kSamples];
  PI_Read(g_samples_in, "%256f", signal);

  cellsim::OverlayRegion region;
  const auto window = region.register_segment("phase:window",
                                              kPhaseSegmentBytes);
  const auto dft = region.register_segment("phase:dft", kPhaseSegmentBytes);
  const auto peaks = region.register_segment("phase:peaks",
                                             kPhaseSegmentBytes);

  // Phase 1: Hann window.
  region.run(window, [&] {
    for (int i = 0; i < kSamples; ++i) {
      const float w =
          0.5f - 0.5f * std::cos(2.0f * static_cast<float>(M_PI) * i /
                                 (kSamples - 1));
      signal[i] *= w;
    }
  });

  // Phase 2: magnitude spectrum by direct DFT (the code that wouldn't fit
  // next to phase 1 on real hardware).
  float magnitude[kSamples / 2];
  region.run(dft, [&] {
    for (int k = 0; k < kSamples / 2; ++k) {
      float re = 0, im = 0;
      for (int n = 0; n < kSamples; ++n) {
        const float phi =
            2.0f * static_cast<float>(M_PI) * k * n / kSamples;
        re += signal[n] * std::cos(phi);
        im -= signal[n] * std::sin(phi);
      }
      magnitude[k] = std::sqrt(re * re + im * im);
    }
  });

  // Phase 3: find the dominant bin.
  int peak_bin = 0;
  region.run(peaks, [&] {
    for (int k = 1; k < kSamples / 2; ++k) {
      if (magnitude[k] > magnitude[peak_bin]) peak_bin = k;
    }
  });

  std::printf("overlay_phases: SPE used %zu B of overlay region, %llu swaps\n",
              region.region_bytes(),
              static_cast<unsigned long long>(region.swap_count()));
  PI_Write(g_peak_out, "%d %f", peak_bin, magnitude[peak_bin]);
  return 0;
}

int app_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* dsp = PI_CreateSPE(overlay_dsp, PI_MAIN, 0);
  g_samples_in = PI_CreateChannel(PI_MAIN, dsp);
  g_peak_out = PI_CreateChannel(dsp, PI_MAIN);

  PI_StartAll();
  PI_RunSPE(dsp, 0, nullptr);

  // A clean 8-cycle tone: the peak must land on bin 8.
  float signal[kSamples];
  for (int i = 0; i < kSamples; ++i) {
    signal[i] =
        std::sin(2.0f * static_cast<float>(M_PI) * 8.0f * i / kSamples);
  }
  PI_Write(g_samples_in, "%256f", signal);

  int bin = 0;
  float power = 0;
  PI_Read(g_peak_out, "%d %f", &bin, &power);
  std::printf("overlay_phases: dominant bin %d (power %.1f) — expected 8\n",
              bin, static_cast<double>(power));

  PI_StopMain(bin == 8 ? 0 : 1);
  return bin == 8 ? 0 : 1;
}

}  // namespace

int main() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  const cellpilot::RunResult result = cellpilot::run(machine, app_main);
  if (result.aborted) {
    std::fprintf(stderr, "job aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }
  return result.status;
}
