// scaling_farm.cpp — case-study scaling: how a data-parallel CellPilot
// application speeds up as SPE workers are added (the deployment question
// behind the paper's motivation that the Cell cluster sat underutilized).
//
// Workload: the pipeline_farm integration kernel (fixed total work) split
// over 1..16 SPE workers on one blade; reported is the master's virtual
// makespan and the speedup/efficiency curve.
//
// Usage: scaling_farm [strips]
//
// Alongside the human table on stdout, the same numbers are written to
// BENCH_scaling_farm.json (note on stderr) for plotting and regression
// tracking.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchkit/benchjson.hpp"
#include "benchkit/pingpong.hpp"
#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"
#include "pilot/context.hpp"

namespace {

constexpr int kMaxWorkers = 16;
int g_strips = 64;
int g_workers = 1;
PI_CHANNEL* g_task[kMaxWorkers];
PI_CHANNEL* g_sum[kMaxWorkers];
std::atomic<simtime::SimTime> g_elapsed{0};
// Per-strip round-trip latency (deal -> sum read-back), sampled with clock
// reads only so the makespan column is bit-identical with or without it.
std::vector<simtime::SimTime> g_strip_samples;

double integrate(double lo, double hi, int samples) {
  const double dx = (hi - lo) / samples;
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double x = lo + (i + 0.5) * dx;
    sum += 4.0 / (1.0 + x * x);
  }
  return sum * dx;
}

PI_SPE_PROGRAM_SIZED(farm_worker, 2048) {
  const int id = arg1;
  for (;;) {
    double lo = 0, hi = 0;
    PI_Read(g_task[id], "%lf %lf", &lo, &hi);
    if (hi < lo) return 0;
    const double part = integrate(lo, hi, 512);
    // The SPE's compute time in virtual time (~512 samples of SIMD math).
    cellsim::spu::self().clock().advance(simtime::us(400));
    PI_Write(g_sum[id], "%lf", part);
  }
}

int farm_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* spes[kMaxWorkers];
  for (int w = 0; w < g_workers; ++w) {
    spes[w] = PI_CreateSPE(farm_worker, PI_MAIN, w);
    g_task[w] = PI_CreateChannel(PI_MAIN, spes[w]);
    g_sum[w] = PI_CreateChannel(spes[w], PI_MAIN);
  }
  PI_StartAll();
  for (int w = 0; w < g_workers; ++w) PI_RunSPE(spes[w], w, nullptr);

  simtime::VirtualClock& clock = pilot::context().mpi().clock();
  const simtime::SimTime start = clock.now();

  const double width = 1.0 / g_strips;
  double total = 0;
  int dealt = 0;
  std::vector<int> outstanding(static_cast<std::size_t>(g_workers), 0);
  std::vector<simtime::SimTime> issued(static_cast<std::size_t>(g_workers), 0);
  int busy = 0;
  // Keep one strip in flight per worker.
  while (dealt < g_strips || busy > 0) {
    for (int w = 0; w < g_workers; ++w) {
      auto& flag = outstanding[static_cast<std::size_t>(w)];
      if (flag == 0 && dealt < g_strips) {
        issued[static_cast<std::size_t>(w)] = clock.now();
        PI_Write(g_task[w], "%lf %lf", dealt * width, (dealt + 1) * width);
        ++dealt;
        flag = 1;
        ++busy;
      } else if (flag == 1) {
        double part = 0;
        PI_Read(g_sum[w], "%lf", &part);
        g_strip_samples.push_back(clock.now() -
                                  issued[static_cast<std::size_t>(w)]);
        total += part;
        flag = 0;
        --busy;
      }
    }
  }
  g_elapsed.store(clock.now() - start);

  for (int w = 0; w < g_workers; ++w) {
    PI_Write(g_task[w], "%lf %lf", 1.0, 0.0);
  }
  PI_StopMain(0);
  (void)total;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  g_strips = argc > 1 ? std::atoi(argv[1]) : 64;

  std::printf("Case-study scaling: pi integration farm, %d strips\n\n",
              g_strips);
  std::printf("%8s %14s %10s %12s %10s %10s\n", "workers", "makespan (us)",
              "speedup", "efficiency", "strip p50", "strip p99");
  benchkit::BenchJson json("scaling_farm");
  json.meta("unit", "us").meta("strips", static_cast<std::int64_t>(g_strips));
  double base = 0;
  for (int workers : {1, 2, 4, 8, 16}) {
    g_workers = workers;
    g_elapsed.store(0);
    g_strip_samples.clear();
    cluster::ClusterConfig config;
    config.nodes.push_back(cluster::NodeSpec::cell(1));
    cluster::Cluster machine(std::move(config));
    const auto result = cellpilot::run(machine, farm_main);
    if (result.aborted) {
      std::fprintf(stderr, "aborted: %s\n", result.abort_reason.c_str());
      return 1;
    }
    const double us = simtime::to_us(g_elapsed.load());
    const benchkit::SampleStats strip =
        benchkit::summarize_samples(g_strip_samples);
    if (base == 0) base = us;
    std::printf("%8d %14.1f %9.2fx %11.1f%% %10.1f %10.1f\n", workers, us,
                base / us, 100.0 * base / us / workers,
                simtime::to_us(strip.p50), simtime::to_us(strip.p99));
    json.add_row()
        .set("workers", static_cast<std::int64_t>(workers))
        .set("makespan_us", us)
        .set("speedup", base / us)
        .set("efficiency_pct", 100.0 * base / us / workers)
        .set("strip_p50_us", simtime::to_us(strip.p50))
        .set("strip_p99_us", simtime::to_us(strip.p99));
  }
  std::printf(
      "\nInterpretation: the single Co-Pilot serves every SPE request, so\n"
      "the farm scales until the Co-Pilot saturates — the contention the\n"
      "paper's future-work optimization targets.\n");
  json.write_file("BENCH_scaling_farm.json");
  return 0;
}
