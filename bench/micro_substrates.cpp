// micro_substrates.cpp — google-benchmark microbenchmarks of the simulator
// substrates themselves (host-side throughput of the building blocks every
// experiment rests on).  These guard against performance regressions in
// the simulation infrastructure; they are not paper results.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdarg>
#include <map>
#include <string>
#include <vector>

#include "benchkit/benchjson.hpp"
#include "benchkit/pingpong.hpp"

#include "cellsim/local_store.hpp"
#include "cellsim/mailbox.hpp"
#include "cellsim/mfc.hpp"
#include "core/router.hpp"
#include "mpisim/match_queue.hpp"
#include "pilot/format.hpp"
#include "pilot/wire.hpp"
#include "simtime/virtual_clock.hpp"

namespace {

void BM_VirtualClockAdvance(benchmark::State& state) {
  simtime::VirtualClock clock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.advance(3));
  }
}
BENCHMARK(BM_VirtualClockAdvance);

void BM_VirtualClockJoin(benchmark::State& state) {
  simtime::VirtualClock clock;
  simtime::SimTime stamp = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.join(stamp += 2));
  }
}
BENCHMARK(BM_VirtualClockJoin);

void BM_MailboxPushPop(benchmark::State& state) {
  cellsim::Mailbox mbox(4);
  for (auto _ : state) {
    mbox.try_push(1, 0);
    benchmark::DoNotOptimize(mbox.try_pop());
  }
}
BENCHMARK(BM_MailboxPushPop);

void BM_LsAllocFree(benchmark::State& state) {
  cellsim::LsAllocator alloc;
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const cellsim::LsAddr p = alloc.allocate(size, 16);
    alloc.deallocate(p);
  }
}
BENCHMARK(BM_LsAllocFree)->Arg(64)->Arg(1600)->Arg(65536);

void BM_MfcDmaCommand(benchmark::State& state) {
  cellsim::LocalStore ls;
  simtime::VirtualClock clock;
  const simtime::CostModel cost = simtime::default_cost_model();
  cellsim::Mfc mfc(ls, clock, cost, "bench");
  alignas(128) static std::byte buffer[16 * 1024];
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    mfc.get(0, cellsim::ea_of(buffer), bytes, 0);
    mfc.write_tag_mask(1);
    benchmark::DoNotOptimize(mfc.read_tag_status_all());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MfcDmaCommand)->Arg(16)->Arg(1600)->Arg(16384);

void BM_MatchQueueDepositMatch(benchmark::State& state) {
  mpisim::MatchQueue queue;
  for (auto _ : state) {
    mpisim::InboundMessage msg;
    msg.source = 1;
    msg.tag = 7;
    queue.deposit(std::move(msg));
    benchmark::DoNotOptimize(queue.try_match(1, 7));
  }
}
BENCHMARK(BM_MatchQueueDepositMatch);

void BM_FormatParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pilot::parse_format("%d %100Lf %*b %lf"));
  }
}
BENCHMARK(BM_FormatParse);

pilot::MarshalResult marshal_helper(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  pilot::MarshalResult r = pilot::marshal_payload(pilot::parse_format(fmt), ap);
  va_end(ap);
  return r;
}

void BM_MarshalArray(benchmark::State& state) {
  static float data[1000];
  for (auto _ : state) {
    benchmark::DoNotOptimize(marshal_helper("%1000f", data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4000);
}
BENCHMARK(BM_MarshalArray);

// Steady-state cost of the compiled data plane: a warm FormatCache lookup
// replaces the per-call parse that BM_FormatParse prices.
void BM_FormatCacheLookup(benchmark::State& state) {
  cellpilot::FormatCache cache;
  cache.lookup("%d %100Lf %*b %lf");
  for (auto _ : state) {
    benchmark::DoNotOptimize(&cache.lookup("%d %100Lf %*b %lf"));
  }
}
BENCHMARK(BM_FormatCacheLookup);

void marshal_append_helper(const pilot::Format* fmt,
                           std::vector<std::byte>* out,
                           std::vector<std::uint32_t>* counts, ...) {
  va_list ap;
  va_start(ap, counts);
  pilot::marshal_append(*fmt, ap, *out, *counts);
  va_end(ap);
}

// One PI_Write's worth of data-plane work after route compilation: cached
// plan lookup, marshal into a reused staging buffer, precomputed wire
// signature.  Contrast with BM_FormatParse + BM_MarshalArray, which price
// the pre-refactor per-message path (parse + allocate every call).
void BM_RouteSteadyStateMarshal(benchmark::State& state) {
  static float data[1000];
  cellpilot::FormatCache cache;
  std::vector<std::byte> staging;
  std::vector<std::uint32_t> counts;
  for (auto _ : state) {
    const cellpilot::FormatPlan& plan = cache.lookup("%1000f");
    staging.clear();
    marshal_append_helper(&plan.parsed, &staging, &counts, data);
    benchmark::DoNotOptimize(plan.wire_signature);
    benchmark::DoNotOptimize(staging.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4000);
}
BENCHMARK(BM_RouteSteadyStateMarshal);

void BM_FrameAndCheck(benchmark::State& state) {
  static float data[400];
  const auto m = marshal_helper("%400f", data);
  const std::uint32_t sig = pilot::signature(m.fmt);
  for (auto _ : state) {
    const auto framed = pilot::frame_message(sig, m.payload);
    benchmark::DoNotOptimize(
        pilot::check_frame(framed, sig, m.payload.size(), "bench"));
  }
}
BENCHMARK(BM_FrameAndCheck);

/// Console output as usual, plus every benchmark mirrored into a BenchJson
/// row — the same BENCH_*.json convention the reproduction binaries follow,
/// so substrate regressions are diffable without scraping console output.
///
/// Each benchmark runs several repetitions (see main), and the row carries
/// the same nearest-rank p50/p99 summary pingpong_stats emits, over the
/// per-repetition real time per iteration.
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonMirrorReporter(benchkit::BenchJson* doc) : doc_(doc) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      if (samples_.find(name) == samples_.end()) order_.push_back(name);
      Samples& s = samples_[name];
      s.iterations += static_cast<std::int64_t>(run.iterations);
      s.real_ns.push_back(
          static_cast<simtime::SimTime>(std::llround(run.GetAdjustedRealTime())));
      s.cpu_ns.push_back(
          static_cast<simtime::SimTime>(std::llround(run.GetAdjustedCPUTime())));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  /// One row per benchmark, written once all repetitions are in.
  void flush_rows() {
    for (const std::string& name : order_) {
      Samples& s = samples_[name];
      const benchkit::SampleStats real = benchkit::summarize_samples(s.real_ns);
      const benchkit::SampleStats cpu = benchkit::summarize_samples(s.cpu_ns);
      doc_->add_row()
          .set("name", name)
          .set("repetitions", static_cast<std::int64_t>(s.real_ns.size()))
          .set("iterations", s.iterations)
          .set("real_time_per_iter", static_cast<double>(real.p50))
          .set("cpu_time_per_iter", static_cast<double>(cpu.p50))
          .set("real_p50_ns", static_cast<double>(real.p50))
          .set("real_p99_ns", static_cast<double>(real.p99))
          .set("cpu_p99_ns", static_cast<double>(cpu.p99));
    }
  }

 private:
  struct Samples {
    std::int64_t iterations = 0;
    std::vector<simtime::SimTime> real_ns;
    std::vector<simtime::SimTime> cpu_ns;
  };
  benchkit::BenchJson* doc_;
  std::map<std::string, Samples> samples_;
  std::vector<std::string> order_;
};

}  // namespace

int main(int argc, char** argv) {
  // Default every benchmark to several short repetitions so each row gets a
  // real latency distribution; flags the caller passes come later in argv
  // and therefore still win.
  std::vector<char*> args;
  args.push_back(argv[0]);
  char reps_flag[] = "--benchmark_repetitions=7";
  char min_time_flag[] = "--benchmark_min_time=0.02";
  char no_aggregates_flag[] = "--benchmark_report_aggregates_only=false";
  args.push_back(reps_flag);
  args.push_back(min_time_flag);
  args.push_back(no_aggregates_flag);
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchkit::BenchJson doc("micro_substrates");
  doc.meta("unit", std::string("ns"));
  JsonMirrorReporter reporter(&doc);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.flush_rows();
  doc.write_file("BENCH_micro_substrates.json");
  benchmark::Shutdown();
  return 0;
}
