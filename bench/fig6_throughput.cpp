// fig6_throughput.cpp — regenerates the paper's Figure 6: throughput for
// the array case (100 long doubles = 1600 bytes) across the five channel
// types and three methods.
//
// Usage: fig6_throughput [reps]
//
// Alongside the human table on stdout, the same numbers are written to
// BENCH_fig6_throughput.json (note on stderr) for plotting and regression
// tracking.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchkit/benchjson.hpp"
#include "benchkit/pingpong.hpp"

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 1000;
  const simtime::CostModel cost = simtime::default_cost_model();
  const benchkit::Method methods[] = {benchkit::Method::kCellPilot,
                                      benchkit::Method::kDma,
                                      benchkit::Method::kCopy};

  std::printf(
      "Figure 6: throughput for CellPilot vs hand-coded transfers\n"
      "payload: 100 long doubles (1600 bytes), %d reps\n\n",
      reps);
  benchkit::BenchJson json("fig6_throughput");
  json.meta("unit", "MB/s")
      .meta("bytes", static_cast<std::int64_t>(1600))
      .meta("reps", static_cast<std::int64_t>(reps));

  std::printf("%-6s %-10s %14s\n", "type", "method", "MB/s");
  double values[6][3];
  for (int type = 1; type <= 5; ++type) {
    for (int m = 0; m < 3; ++m) {
      benchkit::PingPongSpec spec;
      spec.type = static_cast<cellpilot::ChannelType>(type);
      spec.bytes = 1600;
      spec.reps = reps;
      // One run per cell: derive the mean and the percentile bands from
      // the same stats (throughput_mbps would re-run the simulation).
      const benchkit::PingPongStats stats =
          benchkit::pingpong_stats(spec, methods[m], cost);
      auto mbps_of = [&](simtime::SimTime one_way) {
        if (one_way <= 0) return 0.0;
        return static_cast<double>(spec.bytes) / 1e6 /
               (static_cast<double>(one_way) / 1e9);
      };
      values[type][m] = mbps_of(stats.one_way);
      std::printf("%-6d %-10s %14.2f\n", type,
                  benchkit::to_string(methods[m]), values[type][m]);
      json.add_row()
          .set("type", static_cast<std::int64_t>(type))
          .set("method", std::string(benchkit::to_string(methods[m])))
          .set("mbps", values[type][m])
          // p50/p99 of the per-rep latency distribution, as throughput:
          // mbps_p99 is the slow tail (99th-percentile latency), so
          // mbps_p99 <= mbps_p50 by construction.
          .set("mbps_p50", mbps_of(stats.p50))
          .set("mbps_p99", mbps_of(stats.p99));
    }
  }

  std::printf("\n%26s (each char ~ 2 MB/s)\n", "");
  for (int type = 1; type <= 5; ++type) {
    for (int m = 0; m < 3; ++m) {
      const int len = static_cast<int>(values[type][m] / 2.0 + 0.5);
      std::printf("T%d %-10s |%s\n", type, benchkit::to_string(methods[m]),
                  std::string(static_cast<std::size_t>(len), '#').c_str());
    }
  }
  json.write_file("BENCH_fig6_throughput.json");
  return 0;
}
