// table2_pingpong.cpp — regenerates the paper's Table II:
// "CellPilot vs hand-coded timing (µs)" — 5 channel types × {1 B, 1600 B}
// payloads × {CellPilot, DMA, Copy} methods, measured with the IMB-style
// PingPong pattern (1000 bounces, one-way time = elapsed / 2N).
//
// Usage: table2_pingpong [reps]
//
// Alongside the human table on stdout, the same numbers are written to
// BENCH_table2.json (note on stderr) for plotting and regression tracking.
#include <cstdio>
#include <cstdlib>

#include "benchkit/benchjson.hpp"
#include "benchkit/pingpong.hpp"

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 1000;
  const simtime::CostModel cost = simtime::default_cost_model();

  // The paper's reference numbers, for side-by-side comparison.
  struct PaperRow {
    int type;
    std::size_t bytes;
    double cellpilot, dma, copy;
  };
  static constexpr PaperRow kPaper[] = {
      {1, 1, 105, 98, 98},     {1, 1600, 173, 160, 160},
      {2, 1, 59, 15, 15},      {2, 1600, 76, 15, 30},
      {3, 1, 140, 114, 107},   {3, 1600, 219, 181, 175},
      {4, 1, 112, 30, 30},     {4, 1600, 123, 30, 60},
      {5, 1, 189, 131, 117},   {5, 1600, 263, 195, 194},
  };

  benchkit::BenchJson json("table2_pingpong");
  json.meta("unit", "us").meta("reps", static_cast<std::int64_t>(reps));

  std::printf("Table II: CellPilot vs hand-coded timing (us), %d reps\n",
              reps);
  std::printf("%-5s %-6s | %10s %10s %10s | %10s %10s %10s\n", "Type",
              "Bytes", "CellPilot", "DMA", "Copy", "(paper CP)", "(DMA)",
              "(Copy)");
  std::printf("--------------------------------------------------------------"
              "---------------\n");

  for (const PaperRow& row : kPaper) {
    benchkit::PingPongSpec spec;
    spec.type = static_cast<cellpilot::ChannelType>(row.type);
    spec.bytes = row.bytes;
    spec.reps = reps;

    // One run per cell: the stats carry the exact mean the old
    // pingpong_us reported plus per-rep percentiles for the JSON.
    const benchkit::PingPongStats cp_stats =
        benchkit::pingpong_stats(spec, benchkit::Method::kCellPilot, cost);
    const benchkit::PingPongStats dma_stats =
        benchkit::pingpong_stats(spec, benchkit::Method::kDma, cost);
    const benchkit::PingPongStats copy_stats =
        benchkit::pingpong_stats(spec, benchkit::Method::kCopy, cost);
    const double cp = simtime::to_us(cp_stats.one_way);
    const double dma = simtime::to_us(dma_stats.one_way);
    const double copy = simtime::to_us(copy_stats.one_way);

    std::printf("%-5d %-6zu | %10.1f %10.1f %10.1f | %10.0f %10.0f %10.0f\n",
                row.type, row.bytes, cp, dma, copy, row.cellpilot, row.dma,
                row.copy);

    json.add_row()
        .set("type", static_cast<std::int64_t>(row.type))
        .set("bytes", static_cast<std::int64_t>(row.bytes))
        .set("cellpilot_us", cp)
        .set("cellpilot_p50_us", simtime::to_us(cp_stats.p50))
        .set("cellpilot_p99_us", simtime::to_us(cp_stats.p99))
        .set("dma_us", dma)
        .set("dma_p50_us", simtime::to_us(dma_stats.p50))
        .set("dma_p99_us", simtime::to_us(dma_stats.p99))
        .set("copy_us", copy)
        .set("copy_p50_us", simtime::to_us(copy_stats.p50))
        .set("copy_p99_us", simtime::to_us(copy_stats.p99))
        .set("paper_cellpilot_us", row.cellpilot)
        .set("paper_dma_us", row.dma)
        .set("paper_copy_us", row.copy);
  }
  json.write_file("BENCH_table2.json");
  return 0;
}
