// ablate_alf.cpp — ablation of ALF's double buffering: how much latency
// hiding the framework's automatic input prefetch buys, as a function of
// block size (i.e. of the DMA/compute ratio).  This is the design point
// the paper credits ALF for automating — and the code a CellPilot user
// would have to write by hand.
//
// Usage: ablate_alf [blocks]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "alfsim/alf.hpp"

namespace {

void touch_kernel(const void*, std::size_t, void* out,
                  std::size_t out_bytes) {
  if (out_bytes > 0) static_cast<std::uint8_t*>(out)[0] = 1;
}

double run(std::size_t block_bytes, int blocks, bool double_buffer,
           simtime::SimTime compute) {
  const simtime::CostModel cost = simtime::default_cost_model();
  cellsim::CellBlade blade("ab", cost);
  alf::Runtime rt(blade, cost);

  alf::TaskDesc desc;
  desc.kernel = &touch_kernel;
  desc.in_block_bytes = block_bytes;
  desc.out_block_bytes = 16;
  desc.accelerators = 1;  // isolate the per-lane pipeline
  desc.double_buffer = double_buffer;
  desc.compute_per_block = compute;

  std::vector<std::vector<std::uint8_t>> in(
      static_cast<std::size_t>(blocks),
      std::vector<std::uint8_t>(block_bytes + 128));
  std::vector<std::array<std::uint8_t, 16>> out(
      static_cast<std::size_t>(blocks));

  auto task = rt.create_task(desc);
  for (int b = 0; b < blocks; ++b) {
    // 128-align the input EA for clean DMA.
    auto base = reinterpret_cast<std::uintptr_t>(
        in[static_cast<std::size_t>(b)].data());
    auto* aligned = reinterpret_cast<std::uint8_t*>((base + 127) &
                                                    ~std::uintptr_t{127});
    task->add_work_block(aligned, out[static_cast<std::size_t>(b)].data());
  }
  task->wait();
  return simtime::to_us(task->elapsed());
}

}  // namespace

int main(int argc, char** argv) {
  const int blocks = argc > 1 ? std::atoi(argv[1]) : 32;
  constexpr std::size_t kBlockBytes = 16 * 1024;  // one MFC command, ~14 us

  std::printf(
      "ALF double-buffering ablation: %d blocks of 16 KB, one accelerator,\n"
      "sweeping the compute/DMA ratio\n\n",
      blocks);
  std::printf("%16s %18s %18s %10s\n", "compute/block", "double-buffer (us)",
              "single-buffer (us)", "saving");
  for (double compute_us : {3.0, 7.0, 14.0, 30.0, 60.0, 120.0}) {
    const simtime::SimTime compute = simtime::us(compute_us);
    const double with = run(kBlockBytes, blocks, true, compute);
    const double without = run(kBlockBytes, blocks, false, compute);
    std::printf("%13.0f us %18.1f %18.1f %9.1f%%\n", compute_us, with,
                without, 100.0 * (without - with) / without);
  }
  std::printf(
      "\nInterpretation: prefetching hides min(dma, compute) per block; the\n"
      "saving peaks when DMA time matches compute time (~14 us here) and\n"
      "shrinks once either side dominates.\n");
  return 0;
}
