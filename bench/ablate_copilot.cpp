// ablate_copilot.cpp — ablation A2: sensitivity of every SPE-connected
// channel type to the Co-Pilot's per-request costs (mailbox MMIO reads and
// service time).  The paper's future work says "it may also be possible to
// optimize the operation of the Co-Pilot process and reduce its overhead";
// this sweep shows where that optimization would land each channel type
// relative to the hand-coded floors.
//
// Usage: ablate_copilot [reps]
#include <cstdio>
#include <cstdlib>

#include "benchkit/pingpong.hpp"

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 500;
  const double scales[] = {1.0, 0.5, 0.25, 0.0};

  std::printf("Ablation: Co-Pilot request-handling cost scale (%d reps)\n\n",
              reps);
  std::printf("%-8s", "scale");
  for (int type = 2; type <= 5; ++type) std::printf("  T%d CP (us)", type);
  std::printf("%12s%12s\n", "T2 DMA", "T4 DMA");

  for (const double s : scales) {
    simtime::CostModel model = simtime::default_cost_model();
    model.mbox_ppe_read =
        static_cast<simtime::SimTime>(model.mbox_ppe_read * s);
    model.mbox_ppe_write =
        static_cast<simtime::SimTime>(model.mbox_ppe_write * s);
    model.copilot_service =
        static_cast<simtime::SimTime>(model.copilot_service * s);

    std::printf("%-8.2f", s);
    for (int type = 2; type <= 5; ++type) {
      benchkit::PingPongSpec spec;
      spec.type = static_cast<cellpilot::ChannelType>(type);
      spec.bytes = 1;
      spec.reps = reps;
      std::printf("  %10.1f", benchkit::pingpong_us(
                                  spec, benchkit::Method::kCellPilot, model));
    }
    // Hand-coded floors (unchanged by the Co-Pilot knobs except the PPE
    // mailbox costs they share).
    benchkit::PingPongSpec t2;
    t2.type = cellpilot::ChannelType::kType2;
    t2.bytes = 1;
    t2.reps = reps;
    benchkit::PingPongSpec t4 = t2;
    t4.type = cellpilot::ChannelType::kType4;
    std::printf("%12.1f%12.1f\n",
                benchkit::pingpong_us(t2, benchkit::Method::kDma, model),
                benchkit::pingpong_us(t4, benchkit::Method::kDma, model));
  }
  std::printf(
      "\nInterpretation: even a free Co-Pilot cannot reach the hand-coded\n"
      "DMA floor on type 2/3 (the local MPI hop remains), but type 4/5\n"
      "close most of their gap — the overhead is dominated by per-request\n"
      "mailbox MMIO and service time, as the paper's analysis suggests.\n");
  return 0;
}
