// chaos_sweep.cpp — seeded randomized fault cocktails over the Table I
// matrix, asserting the liveness contract of the robustness substrate:
// every run COMPLETES, and it completes either with full payload parity
// (the reliable sublayer absorbed every message fault) or with a clean
// fault code (PI_SPE_FAULT / PI_SPE_TIMEOUT / PI_COPILOT_FAULT) observed at
// the affected peers — never a hang, never an abort.  A host-time watchdog
// turns a hang into a loud exit(1) instead of a stuck CI job.
//
// Usage: chaos_sweep [seed]   (or CELLPILOT_CHAOS_SEED; default 1)
//
// Repro hooks (for replaying one failing sweep line in isolation):
//   CELLPILOT_CHAOS_COCKTAIL=<spec>  pin the fault spec, one cocktail per
//                                    subject instead of the generated stream
//   CELLPILOT_CHAOS_SUBJECT=matrix:<type>|async_farm|respawn:<type>|
//                           exhaust:<type>|respawn:async_farm|
//                           ckpt:local|ckpt:remote|ckpt:degrade
//                                    run one subject only
//   CELLPILOT_CHAOS_WATCHDOG=<sec>   override the 120 s liveness budget
//                                    (must parse as a positive integer)
//
// Results go to stdout and BENCH_chaos_sweep.json.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchkit/benchjson.hpp"
#include "core/cellpilot.hpp"
#include "core/copilot.hpp"
#include "core/faultplan.hpp"
#include "core/flightrec.hpp"
#include "core/telemetry.hpp"
#include "mpisim/reliable.hpp"
#include "pilot/errors.hpp"

namespace {

// --- deterministic cocktail generator ------------------------------------

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Builds one randomized -pifault= spec: a subset of the message-level
/// kinds with random ordinals/counts, plus an occasional Co-Pilot crash.
std::string make_cocktail(std::uint64_t& rng, std::uint64_t seed) {
  static const char* kMsgKinds[] = {"msg_drop", "msg_corrupt", "msg_dup",
                                    "msg_reorder"};
  std::string spec = "seed=" + std::to_string(seed);
  int rules = 0;
  for (const char* kind : kMsgKinds) {
    if (splitmix64(rng) % 100 < 60) {  // each kind joins with p=0.6
      spec += ";" + std::string(kind) + "@*:op=" +
              std::to_string(1 + splitmix64(rng) % 8) +
              ",count=" + std::to_string(1 + splitmix64(rng) % 4);
      ++rules;
    }
  }
  if (splitmix64(rng) % 100 < 35) {  // crash the Co-Pilot in ~1/3 of runs
    spec += ";copilot_crash@*:op=" + std::to_string(1 + splitmix64(rng) % 4);
    ++rules;
  }
  if (rules == 0) {  // never run an empty cocktail: always at least a drop
    spec += ";msg_drop@*:op=" + std::to_string(1 + splitmix64(rng) % 8);
  }
  return spec;
}

// --- the job (one Table I channel type per run) ---------------------------

constexpr int kScalarValue = 424242;

int g_type = 0;
PI_CHANNEL* g_data = nullptr;
PI_PROCESS* g_spe_r = nullptr;
std::atomic<bool> g_parity{false};
std::atomic<int> g_reader_code{0};
std::atomic<int> g_writer_code{0};
std::atomic<int> g_main_code{0};

bool is_clean_fault(int code) {
  return code == static_cast<int>(PI_SPE_FAULT) ||
         code == static_cast<int>(PI_SPE_TIMEOUT) ||
         code == static_cast<int>(PI_COPILOT_FAULT) ||
         code == static_cast<int>(PI_SPE_RESTARTED);
}

/// What a subject's run is required to produce.  The plain cocktails
/// accept parity or a clean fault; the self-healing subjects are stricter:
/// a covered kill must be invisible (parity only), an exhausted budget
/// must settle every peer cleanly (completion without parity is enough —
/// the contract there is "never a hang, never an abort").
enum class Expect { kAny, kParity, kDegrade };

void write_payload_or_record() {
  try {
    PI_Write(g_data, "%d", kScalarValue);
  } catch (const pilot::PilotError& e) {
    g_writer_code.store(static_cast<int>(e.code()));
  }
}

void read_payload_or_record() {
  try {
    int v = 0;
    PI_Read(g_data, "%d", &v);
    g_parity.store(v == kScalarValue);
  } catch (const pilot::PilotError& e) {
    g_reader_code.store(static_cast<int>(e.code()));
  }
}

PI_SPE_PROGRAM(chaos_spe_writer) {
  write_payload_or_record();
  return 0;
}

PI_SPE_PROGRAM(chaos_spe_reader) {
  read_payload_or_record();
  return 0;
}

int chaos_rank_reader(int, void*) {
  read_payload_or_record();
  return 0;
}

int chaos_rank_parent(int, void*) {
  PI_RunSPE(g_spe_r, 0, nullptr);
  return 0;
}

int chaos_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  switch (g_type) {
    case 1: {  // PPE <-> remote PPE
      PI_PROCESS* reader = PI_CreateProcess(chaos_rank_reader, 0, nullptr);
      g_data = PI_CreateChannel(PI_MAIN, reader);
      PI_StartAll();
      try {
        PI_Write(g_data, "%d", kScalarValue);
      } catch (const pilot::PilotError& e) {
        g_main_code.store(static_cast<int>(e.code()));
      }
      break;
    }
    case 2: {  // PPE <-> local SPE
      PI_PROCESS* reader = PI_CreateSPE(chaos_spe_reader, PI_MAIN, 0);
      g_data = PI_CreateChannel(PI_MAIN, reader);
      PI_StartAll();
      PI_RunSPE(reader, 0, nullptr);
      try {
        PI_Write(g_data, "%d", kScalarValue);
      } catch (const pilot::PilotError& e) {
        g_main_code.store(static_cast<int>(e.code()));
      }
      break;
    }
    case 3: {  // PPE <-> remote SPE
      PI_PROCESS* parent = PI_CreateProcess(chaos_rank_parent, 0, nullptr);
      g_spe_r = PI_CreateSPE(chaos_spe_reader, parent, 0);
      g_data = PI_CreateChannel(PI_MAIN, g_spe_r);
      PI_StartAll();
      try {
        PI_Write(g_data, "%d", kScalarValue);
      } catch (const pilot::PilotError& e) {
        g_main_code.store(static_cast<int>(e.code()));
      }
      break;
    }
    case 4: {  // SPE <-> local SPE
      PI_PROCESS* writer = PI_CreateSPE(chaos_spe_writer, PI_MAIN, 0);
      PI_PROCESS* reader = PI_CreateSPE(chaos_spe_reader, PI_MAIN, 1);
      g_data = PI_CreateChannel(writer, reader);
      PI_StartAll();
      PI_RunSPE(writer, 0, nullptr);
      PI_RunSPE(reader, 0, nullptr);
      break;
    }
    case 5: {  // SPE <-> remote SPE
      PI_PROCESS* parent = PI_CreateProcess(chaos_rank_parent, 0, nullptr);
      PI_PROCESS* writer = PI_CreateSPE(chaos_spe_writer, PI_MAIN, 0);
      g_spe_r = PI_CreateSPE(chaos_spe_reader, parent, 0);
      g_data = PI_CreateChannel(writer, g_spe_r);
      PI_StartAll();
      PI_RunSPE(writer, 0, nullptr);
      break;
    }
  }
  PI_StopMain(0);
  return 0;
}

// --- async-farm subject ---------------------------------------------------
//
// The async tier under the same cocktails: a small work-stealing farm that
// spawns its workers at run time (PI_CreateSPESlot + PI_SpawnSPE) and deals
// strips completion-driven (PI_WriteAsync / PI_ReadAsync / PI_WaitAny).
// The liveness contract is identical to the matrix subject's: parity (every
// strip harvested, correct sum) or clean fault codes — never a hang.

constexpr int kFarmWorkers = 3;
constexpr int kFarmStrips = 9;

PI_CHANNEL* g_ftask[kFarmWorkers];
PI_CHANNEL* g_fsum[kFarmWorkers];

double farm_strip_value(int strip) { return 1.0 + 0.5 * strip; }

PI_SPE_PROGRAM(chaos_farm_worker) {
  const int id = arg1;
  try {
    for (;;) {
      double x = 0;
      PI_Read(g_ftask[id], "%lf", &x);
      if (x < 0) return 0;
      PI_Write(g_fsum[id], "%lf", 2.0 * x);
    }
  } catch (const pilot::PilotError& e) {
    g_writer_code.store(static_cast<int>(e.code()));
    // Last gasp: a worker that absorbed a fault must not vanish silently —
    // the master is (or will be) waiting on this sum channel, and a clean
    // retire sends nothing.  A negative "I am gone" result lets the master
    // re-deal the lost strip; if this write faults too, the fault frame it
    // provokes wakes the master's pending read instead.
    try {
      PI_Write(g_fsum[id], "%lf", -1.0);
    } catch (const pilot::PilotError&) {
    }
  }
  return 0;
}

int farm_chaos_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* slots[kFarmWorkers];
  for (int w = 0; w < kFarmWorkers; ++w) {
    slots[w] = PI_CreateSPESlot(PI_MAIN, w);
    g_ftask[w] = PI_CreateChannel(PI_MAIN, slots[w]);
    g_fsum[w] = PI_CreateChannel(slots[w], PI_MAIN);
  }
  PI_StartAll();
  double expected = 0;
  for (int s = 0; s < kFarmStrips; ++s) expected += 2.0 * farm_strip_value(s);
  try {
    for (int w = 0; w < kFarmWorkers; ++w) {
      PI_SpawnSPE(slots[w], &chaos_farm_worker, w, nullptr);
    }
    double part[kFarmWorkers] = {};
    int strip_of[kFarmWorkers] = {};
    std::vector<PI_HANDLE> handles;
    std::vector<int> active;
    std::vector<int> redo;  // strips lost to dead workers, re-dealt
    int next = 0;
    double total = 0;
    int harvested = 0;
    const auto deal = [&](int w) {
      int s;
      if (!redo.empty()) {
        s = redo.back();
        redo.pop_back();
      } else {
        s = next++;
      }
      strip_of[w] = s;
      PI_Wait(PI_WriteAsync(g_ftask[w], "%lf", farm_strip_value(s)));
    };
    const auto drop = [&](int i) {
      handles[static_cast<std::size_t>(i)] = handles.back();
      active[static_cast<std::size_t>(i)] = active.back();
      handles.pop_back();
      active.pop_back();
    };
    for (int w = 0; w < kFarmWorkers && next < kFarmStrips; ++w) {
      deal(w);
      handles.push_back(PI_ReadAsync(g_fsum[w], "%lf", &part[w]));
      active.push_back(w);
    }
    while (!handles.empty()) {
      const int i =
          PI_WaitAny(handles.data(), static_cast<int>(handles.size()));
      const int w = active[static_cast<std::size_t>(i)];
      if (part[w] < 0) {
        // The worker's last gasp: it absorbed a fault and exited.  Its
        // strip goes back on the queue for a surviving worker; no
        // sentinel (the worker is already gone).
        redo.push_back(strip_of[w]);
        drop(i);
        continue;
      }
      total += part[w];
      ++harvested;
      if (next < kFarmStrips || !redo.empty()) {
        deal(w);
        handles[static_cast<std::size_t>(i)] =
            PI_ReadAsync(g_fsum[w], "%lf", &part[w]);
      } else {
        PI_Write(g_ftask[w], "%lf", -1.0);
        drop(i);
      }
    }
    g_parity.store(harvested == kFarmStrips &&
                   total > expected - 1e-9 && total < expected + 1e-9);
  } catch (const pilot::PilotError& e) {
    g_main_code.store(static_cast<int>(e.code()));
    // Best-effort stop so healthy workers don't outlive the master; their
    // own faults (if any) were already recorded above.
    for (int w = 0; w < kFarmWorkers; ++w) {
      try {
        PI_Write(g_ftask[w], "%lf", -1.0);
      } catch (const pilot::PilotError&) {
      }
    }
  }
  PI_StopMain(0);
  return 0;
}

// --- blade-kill / checkpoint-restore subject ------------------------------
//
// A writer SPE on the victim blade streams a counted burst to the master;
// blade_kill wipes the blade's SPE contexts and Co-Pilot mid-burst.  With
// a coordinated checkpoint armed the restore must be invisible — every
// value delivered exactly once, in order (journal replay dedupes the
// re-executed prefix).  With no checkpoint the loss must degrade to a
// clean PI_SPE_FAULT at the master: never a hang, never an abort.

constexpr int kBladeBurst = 8;
PI_CHANNEL* g_blade_ch = nullptr;

PI_SPE_PROGRAM(chaos_blade_writer) {
  try {
    for (int i = 0; i < kBladeBurst; ++i) PI_Write(g_blade_ch, "%d", 10 * i);
  } catch (const pilot::PilotError& e) {
    g_writer_code.store(static_cast<int>(e.code()));
  }
  return 0;
}

int blade_chaos_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* writer = nullptr;
  if (g_type == 3) {  // the victim is the remote blade
    PI_PROCESS* parent = PI_CreateProcess(chaos_rank_parent, 0, nullptr);
    g_spe_r = PI_CreateSPE(chaos_blade_writer, parent, 0);
    writer = g_spe_r;
  } else {
    writer = PI_CreateSPE(chaos_blade_writer, PI_MAIN, 0);
  }
  g_blade_ch = PI_CreateChannel(writer, PI_MAIN);
  PI_StartAll();
  if (g_type != 3) PI_RunSPE(writer, 0, nullptr);
  try {
    bool exactly_once = true;
    for (int i = 0; i < kBladeBurst; ++i) {
      int v = 0;
      PI_Read(g_blade_ch, "%d", &v);
      exactly_once = exactly_once && v == 10 * i;
    }
    g_parity.store(exactly_once);
  } catch (const pilot::PilotError& e) {
    g_main_code.store(static_cast<int>(e.code()));
  }
  PI_StopMain(0);
  return 0;
}

// --- host-time watchdog ---------------------------------------------------

std::mutex g_watchdog_mu;
std::condition_variable g_watchdog_cv;
bool g_sweep_done = false;

void watchdog(int budget_seconds) {
  std::unique_lock<std::mutex> lock(g_watchdog_mu);
  if (g_watchdog_cv.wait_for(lock, std::chrono::seconds(budget_seconds),
                             [] { return g_sweep_done; })) {
    return;
  }
  std::fprintf(stderr,
               "CHAOS SWEEP HANG: liveness violated (no progress within "
               "%d s of host time)\n",
               budget_seconds);
  std::fflush(stderr);
  // Post-mortem before dying: the flight recorder's blackbox tail still
  // holds the last events of every stuck thread, plus the armed fault
  // plan — enough to reproduce the hang from the artifact alone.
  cellpilot::flightrec::FlightRecorder::global().dump(
      "chaos_watchdog: liveness violated, no progress within " +
      std::to_string(budget_seconds) + " s of host time");
  std::_Exit(1);  // a hung run must fail loudly, not stall CI
}

}  // namespace

int main(int argc, char** argv) {
  const char* env = std::getenv("CELLPILOT_CHAOS_SEED");
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10)
               : (env != nullptr && env[0] != '\0'
                      ? std::strtoull(env, nullptr, 10)
                      : 1ull);
  const char* pinned_cocktail = std::getenv("CELLPILOT_CHAOS_COCKTAIL");
  const char* only_subject = std::getenv("CELLPILOT_CHAOS_SUBJECT");
  const char* watchdog_env = std::getenv("CELLPILOT_CHAOS_WATCHDOG");
  const int kCocktailsPerType =
      pinned_cocktail != nullptr && pinned_cocktail[0] != '\0' ? 1 : 4;
  // The override must parse as a positive integer: atoi("garbage") and
  // atoi("0") both yield a 0-second budget, which fires the watchdog the
  // moment the sweep starts and turns every healthy CI run into a "hang".
  int watchdog_seconds = 120;
  if (watchdog_env != nullptr && watchdog_env[0] != '\0') {
    char* end = nullptr;
    const long v = std::strtol(watchdog_env, &end, 10);
    if (end != watchdog_env && *end == '\0' && v > 0) {
      watchdog_seconds = static_cast<int>(v);
    } else {
      std::fprintf(stderr,
                   "chaos_sweep: ignoring CELLPILOT_CHAOS_WATCHDOG=\"%s\" "
                   "(not a positive integer of seconds); using %d s\n",
                   watchdog_env, watchdog_seconds);
    }
  }
  const int kWatchdogSeconds = watchdog_seconds;
  const auto wall_start = std::chrono::steady_clock::now();

  // Arm the flight recorder for the whole sweep: a watchdog firing or a
  // violated run dumps a post-mortem artifact named after the seed.
  cellpilot::flightrec::FlightRecorder::global().configure(
      "flightrec_chaos_seed" + std::to_string(seed) + ".json");

  std::thread guard(watchdog, kWatchdogSeconds);

  benchkit::BenchJson json("chaos_sweep");
  json.meta("seed", static_cast<std::int64_t>(seed));
  json.meta("cocktails_per_type", static_cast<std::int64_t>(kCocktailsPerType));
  // Artifact linkage: when the sweep runs telemetry-armed
  // (CELLPILOT_TELEMETRY), record where the windowed report landed and the
  // window length, so a harvester can pair this summary with the pitop
  // input (and with the trace oracle for --check-trace).
  {
    const auto& telemetry =
        cellpilot::telemetry::TelemetrySession::global();
    if (telemetry.armed()) {
      json.meta("telemetry_file", telemetry.path());
      json.meta("telemetry_window_ns",
                static_cast<std::int64_t>(telemetry.window_ns()));
    }
  }

  std::printf(
      "Chaos sweep: seed %llu, %d cocktails x (Table I types 1..5 + "
      "async farm)\n",
      static_cast<unsigned long long>(seed), kCocktailsPerType);
  std::printf("%-4s %-10s %-5s %-56s %s\n", "run", "subject", "type",
              "cocktail", "outcome");

  // Hash the seed into the generator state (rather than using it directly)
  // so neighbouring seeds produce unrelated cocktail streams, not shifted
  // copies of one another.
  std::uint64_t seed_state = seed;
  std::uint64_t rng = splitmix64(seed_state);
  int run_index = 0;
  int parity_runs = 0;
  int clean_fault_runs = 0;
  int degraded_runs = 0;
  bool violated = false;
  // Sweep-wide tallies for the JSON meta block: what the cocktails did to
  // the wire and how much of it the substrate absorbed.
  std::uint64_t faults_injected = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t respawns_total = 0;
  std::uint64_t restores_total = 0;
  std::uint64_t recovered_ops_total = 0;

  const auto run_cocktail = [&](const char* subject, int type,
                                int (*job)(int, char**), bool remote,
                                const std::string& spec = std::string(),
                                int respawn = 0, Expect expect = Expect::kAny,
                                const std::vector<std::string>& extra_args =
                                    {}) {
    const std::string cocktail =
        !spec.empty() ? spec
        : pinned_cocktail != nullptr && pinned_cocktail[0] != '\0'
            ? std::string(pinned_cocktail)
            : make_cocktail(rng, seed);
    // The cocktail goes out *before* the run: if it hangs, the log names
    // the exact plan that violated liveness.
    std::printf("%-4d %-10s %-5d %-56s ", run_index, subject, type,
                cocktail.c_str());
    std::fflush(stdout);

    g_type = type;
    g_data = nullptr;
    g_spe_r = nullptr;
    g_parity.store(false);
    g_reader_code.store(0);
    g_writer_code.store(0);
    g_main_code.store(0);
    cellpilot::supervision::reset_counters();
    mpisim::reliable::reset_totals();

    cluster::ClusterConfig config;
    config.nodes.push_back(cluster::NodeSpec::cell(1));
    if (remote) config.nodes.push_back(cluster::NodeSpec::cell(1));
    cluster::Cluster machine{std::move(config)};

    cellpilot::RunOptions opts;
    opts.args = {"-pifault=" + cocktail};
    if (respawn > 0) {
      opts.args.push_back("-pirespawn=" + std::to_string(respawn));
    }
    for (const std::string& a : extra_args) opts.args.push_back(a);
    const auto r = cellpilot::run(machine, job, opts);

    // The liveness invariant: parity, or a clean fault code at every
    // peer that saw an error.  Anything else (abort, foreign error
    // code, silent wrong payload) is a violation.
    const int codes[] = {g_reader_code.load(), g_writer_code.load(),
                         g_main_code.load()};
    bool clean_fault = false;
    bool foreign_code = false;
    for (const int code : codes) {
      if (code == 0) continue;
      if (is_clean_fault(code)) {
        clean_fault = true;
      } else {
        foreign_code = true;
      }
    }
    const bool completed = !r.aborted && !foreign_code;
    bool ok = false;
    switch (expect) {
      case Expect::kAny:
        ok = completed && (g_parity.load() || clean_fault);
        break;
      case Expect::kParity:  // a covered kill must be invisible
        ok = completed && g_parity.load();
        break;
      case Expect::kDegrade:  // exhausted budget: clean settle is enough
        ok = completed;
        break;
    }
    const char* outcome = "VIOLATED";
    if (!ok) {
      violated = true;
    } else if (g_parity.load()) {
      outcome = "parity";
      ++parity_runs;
    } else if (clean_fault) {
      outcome = "fault";
      ++clean_fault_runs;
    } else {
      outcome = "degraded";
      ++degraded_runs;
    }

    const auto wire = mpisim::reliable::totals();
    // Wire-level fault events plus supervision-level ones; retransmits,
    // retry-ladder recoveries, respawns and failovers are the recovery
    // side.
    faults_injected += wire.retransmits + wire.duplicates +
                       wire.corrupt_detected + wire.reorders +
                       cellpilot::supervision::timeout_count() +
                       cellpilot::supervision::fault_count() +
                       cellpilot::supervision::failover_count();
    recoveries += wire.retransmits +
                  cellpilot::supervision::recovered_count() +
                  cellpilot::supervision::respawn_count() +
                  cellpilot::supervision::restore_count() +
                  cellpilot::supervision::failover_count();
    respawns_total += cellpilot::supervision::respawn_count();
    restores_total += cellpilot::supervision::restore_count();
    recovered_ops_total += cellpilot::supervision::recovered_op_count();
    std::printf("%s\n", outcome);
    if (violated && r.aborted) {
      std::printf("     abort: %s\n", r.abort_reason.c_str());
    }
    if (violated) {
      // Dump while the plan is still armed so the artifact names the
      // exact fault rules that broke the run; only then reset it.
      cellpilot::flightrec::FlightRecorder::global().dump(
          "chaos_violation: run " + std::to_string(run_index) + " subject " +
          subject + " type " + std::to_string(type) + " cocktail " + cocktail +
          (r.aborted ? " abort: " + r.abort_reason : ""));
    }
    cellpilot::faults::FaultPlan::global().reset();
    json.add_row()
        .set("run", static_cast<std::int64_t>(run_index))
        .set("subject", std::string(subject))
        .set("type", static_cast<std::int64_t>(type))
        .set("cocktail", cocktail)
        .set("outcome", std::string(outcome))
        .set("retransmits", static_cast<std::int64_t>(wire.retransmits))
        .set("duplicates", static_cast<std::int64_t>(wire.duplicates))
        .set("corrupt_detected",
             static_cast<std::int64_t>(wire.corrupt_detected))
        .set("reorders", static_cast<std::int64_t>(wire.reorders))
        .set("failovers",
             static_cast<std::int64_t>(
                 cellpilot::supervision::failover_count()))
        .set("respawns", static_cast<std::int64_t>(
                             cellpilot::supervision::respawn_count()))
        .set("restores", static_cast<std::int64_t>(
                             cellpilot::supervision::restore_count()))
        .set("recovered_ops",
             static_cast<std::int64_t>(
                 cellpilot::supervision::recovered_op_count()));
    ++run_index;
  };

  const auto subject_wanted = [&](const std::string& name) {
    return only_subject == nullptr || only_subject[0] == '\0' ||
           name == only_subject;
  };
  for (int type = 1; type <= 5 && !violated; ++type) {
    if (!subject_wanted("matrix:" + std::to_string(type))) continue;
    for (int c = 0; c < kCocktailsPerType && !violated; ++c) {
      run_cocktail("matrix", type, chaos_main,
                   /*remote=*/type == 1 || type == 3 || type == 5);
    }
  }
  // The async tier is a sweep subject of its own: runtime spawning plus
  // completion-driven dealing must honor the same liveness contract the
  // blocking matrix does.
  if (subject_wanted("async_farm")) {
    for (int c = 0; c < kCocktailsPerType && !violated; ++c) {
      run_cocktail("async_farm", 0, farm_chaos_main, /*remote=*/false);
    }
  }
  // Self-healing subjects (PR 7): kill an SPE *mid-message* — the Co-Pilot
  // is left holding a partial request assembly — on every Table I route
  // type with an SPE endpoint.  With the budget covering the kill the run
  // must be indistinguishable from a clean one (strict parity); the SPE
  // names are deterministic (first free slot on the victim's node), so the
  // kill rule targets exactly the original occupant and spares its
  // respawned successor.
  for (int type = 2; type <= 5 && !violated; ++type) {
    if (!subject_wanted("respawn:" + std::to_string(type))) continue;
    const std::string victim =
        type == 3 ? "node1.cell0.spe0" : "node0.cell0.spe0";
    run_cocktail("respawn", type, chaos_main,
                 /*remote=*/type == 3 || type == 5,
                 "seed=" + std::to_string(seed) + ";spe_crash_mid@" + victim +
                     ":op=1",
                 /*respawn=*/2, Expect::kParity);
  }
  // Budget exhaustion: the wildcard site kills *every* incarnation's first
  // request (each respawned occupant has a fresh name, hence a fresh
  // ordinal chain), so the ladder walks respawn -> respawn-of-respawn ->
  // out of budget -> poison + PILF.  The contract is a clean settle at
  // every surviving peer: never a hang, never an abort.
  for (int type = 2; type <= 5 && !violated; ++type) {
    if (!subject_wanted("exhaust:" + std::to_string(type))) continue;
    run_cocktail("exhaust", type, chaos_main,
                 /*remote=*/type == 3 || type == 5,
                 "seed=" + std::to_string(seed) + ";spe_crash_mid@*:op=1",
                 /*respawn=*/1, Expect::kDegrade);
  }
  // And the async farm under a covered kill: a worker dying mid-request
  // must be respawned and its strips harvested with full parity.
  if (subject_wanted("respawn:async_farm") && !violated) {
    run_cocktail("respawn", 0, farm_chaos_main, /*remote=*/false,
                 "seed=" + std::to_string(seed) +
                     ";spe_crash_mid@node0.cell0.spe0:op=1",
                 /*respawn=*/2, Expect::kParity);
  }
  // Blade loss (PR 9): blade_kill wipes every SPE context plus the
  // Co-Pilot of the victim blade.  With a coordinated checkpoint armed the
  // restore must be invisible (exactly-once parity); with no checkpoint
  // the loss degrades to a clean peer fault.
  if (subject_wanted("ckpt:local") && !violated) {
    run_cocktail("ckpt", 2, blade_chaos_main, /*remote=*/false,
                 "seed=" + std::to_string(seed) + ";blade_kill@node0:op=6",
                 /*respawn=*/0, Expect::kParity,
                 {"-pickpt=chaos_blade.ckpt", "-pickptevery=4"});
  }
  if (subject_wanted("ckpt:remote") && !violated) {
    run_cocktail("ckpt", 3, blade_chaos_main, /*remote=*/true,
                 "seed=" + std::to_string(seed) + ";blade_kill@node1:op=6",
                 /*respawn=*/0, Expect::kParity,
                 {"-pickpt=chaos_blade.ckpt", "-pickptevery=4"});
  }
  if (subject_wanted("ckpt:degrade") && !violated) {
    run_cocktail("ckpt", 2, blade_chaos_main, /*remote=*/false,
                 "seed=" + std::to_string(seed) + ";blade_kill@node0:op=3");
  }

  {
    std::lock_guard<std::mutex> lock(g_watchdog_mu);
    g_sweep_done = true;
  }
  g_watchdog_cv.notify_one();
  guard.join();

  std::printf("\n%d runs: %d parity, %d clean-fault, %d degraded, %s\n",
              run_index, parity_runs, clean_fault_runs, degraded_runs,
              violated ? "LIVENESS VIOLATED" : "0 violations");
  json.meta("parity_runs", static_cast<std::int64_t>(parity_runs));
  json.meta("clean_fault_runs", static_cast<std::int64_t>(clean_fault_runs));
  json.meta("degraded_runs", static_cast<std::int64_t>(degraded_runs));
  json.meta("violations", static_cast<std::int64_t>(violated ? 1 : 0));
  json.meta("runs", static_cast<std::int64_t>(run_index));
  json.meta("faults_injected", static_cast<std::int64_t>(faults_injected));
  json.meta("recoveries", static_cast<std::int64_t>(recoveries));
  json.meta("respawns", static_cast<std::int64_t>(respawns_total));
  json.meta("restores", static_cast<std::int64_t>(restores_total));
  json.meta("recovered_ops",
            static_cast<std::int64_t>(recovered_ops_total));
  json.meta("wall_ms",
            static_cast<std::int64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count()));
  json.write_file("BENCH_chaos_sweep.json");
  return violated ? 1 : 0;
}
