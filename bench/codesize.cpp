// codesize.cpp — regenerates the paper's §IV.C code-size comparison: the
// three-hop example "took 80 lines to code using CellPilot.  Recoding this
// example using the Cell SDK required 186 lines ... Recoding using DaCS
// required less code at 114 lines".
//
// Counts effective lines (non-blank, non-comment) of the three example
// programs in this repository, which implement the identical transfer.
// The absolute counts differ from the paper's C sources; the *ordering*
// and rough ratios are the reproduced result.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifndef CELLPILOT_SOURCE_DIR
#define CELLPILOT_SOURCE_DIR "."
#endif

namespace {

/// Counts non-blank, non-comment lines (// and /*...*/ handled).
int effective_loc(const std::string& path, bool* ok) {
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  if (!*ok) return 0;
  int count = 0;
  bool in_block_comment = false;
  std::string line;
  while (std::getline(in, line)) {
    // Strip comments from the line.
    std::string code;
    for (std::size_t i = 0; i < line.size();) {
      if (in_block_comment) {
        if (i + 1 < line.size() && line[i] == '*' && line[i + 1] == '/') {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
      } else if (i + 1 < line.size() && line[i] == '/' && line[i + 1] == '/') {
        break;
      } else if (i + 1 < line.size() && line[i] == '/' && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
      } else {
        code.push_back(line[i]);
        ++i;
      }
    }
    if (code.find_first_not_of(" \t\r") != std::string::npos) ++count;
  }
  return count;
}

}  // namespace

int main() {
  struct Entry {
    const char* label;
    const char* file;
    int paper_lines;
  };
  const Entry entries[] = {
      {"CellPilot", "examples/three_hop.cpp", 80},
      {"DaCS", "examples/three_hop_dacs.cpp", 114},
      {"Cell SDK", "examples/three_hop_sdk.cpp", 186},
  };

  std::printf("Code size of the three-hop example (paper SS IV.C)\n");
  std::printf("%-12s %-32s %10s %10s\n", "library", "file", "LoC",
              "paper LoC");
  std::vector<int> counts;
  bool all_found = true;
  for (const Entry& e : entries) {
    bool ok = false;
    const int n =
        effective_loc(std::string(CELLPILOT_SOURCE_DIR) + "/" + e.file, &ok);
    all_found = all_found && ok;
    counts.push_back(n);
    std::printf("%-12s %-32s %10d %10d%s\n", e.label, e.file, n,
                e.paper_lines, ok ? "" : "  (FILE NOT FOUND)");
  }
  if (!all_found) {
    std::printf("\nrun from the repository root (or fix "
                "CELLPILOT_SOURCE_DIR)\n");
    return 1;
  }
  const bool ordering_holds = counts[0] < counts[1] && counts[1] < counts[2];
  std::printf("\nordering CellPilot < DaCS < SDK: %s (paper: holds)\n",
              ordering_holds ? "holds" : "VIOLATED");
  return ordering_holds ? 0 : 1;
}
