// ablate_type2.cpp — ablation A1: the paper observes that "type 2 uses MPI
// for the local PPE-to-Co-Pilot transfer, which could be a fast shared-
// memory copy, but nonetheless involves MPI processing in order to match
// the treatment of type 3 channels."
//
// This bench quantifies that design decision by re-running the type-2
// PingPong under cost models where the intra-node MPI transport is
// progressively replaced by a raw shared-memory copy, down to zero-cost
// handoff — the upper bound on what optimizing the Co-Pilot's local
// transport could buy.
//
// Usage: ablate_type2 [reps]
#include <cstdio>
#include <cstdlib>

#include "benchkit/pingpong.hpp"

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 1000;

  struct Variant {
    const char* name;
    simtime::CostModel model;
  };
  Variant variants[] = {
      {"baseline: local MPI transport", simtime::default_cost_model()},
      {"shared-memory copy transport", simtime::default_cost_model()},
      {"zero-cost local handoff", simtime::default_cost_model()},
  };
  // Replace the local MPI legs with mapped-copy economics.
  variants[1].model.mpi_local_latency = variants[1].model.copy_setup;
  variants[1].model.mpi_local_per_byte = variants[1].model.copy_per_byte;
  variants[2].model.mpi_local_latency = 0;
  variants[2].model.mpi_local_per_byte = 0;

  std::printf("Ablation: type-2 PPE->Co-Pilot transport (%d reps)\n\n", reps);
  std::printf("%-34s %12s %12s\n", "variant", "1B (us)", "1600B (us)");
  double base_small = 0;
  for (const Variant& v : variants) {
    benchkit::PingPongSpec spec;
    spec.type = cellpilot::ChannelType::kType2;
    spec.reps = reps;
    spec.bytes = 1;
    const double small =
        benchkit::pingpong_us(spec, benchkit::Method::kCellPilot, v.model);
    spec.bytes = 1600;
    const double large =
        benchkit::pingpong_us(spec, benchkit::Method::kCellPilot, v.model);
    if (base_small == 0) base_small = small;
    std::printf("%-34s %12.1f %12.1f\n", v.name, small, large);
  }
  std::printf(
      "\nInterpretation: the gap between the first and last rows is the\n"
      "entire headroom available from the paper's proposed Co-Pilot local-\n"
      "transport optimization; the remaining latency is mailbox MMIO and\n"
      "Co-Pilot service time.\n");
  return 0;
}
