// sweep_sizes.cpp — extension of Figure 6: message-size sweep from 1 B to
// 64 KB for every channel type and method, locating the crossovers the
// paper's two-point measurements only hint at (e.g. where CellPilot's
// fixed overhead amortizes, and where per-byte costs overtake DMA setup).
//
// Usage: sweep_sizes [reps]
//
// Alongside the human table on stdout, the same numbers are written to
// BENCH_sweep_sizes.json (note on stderr) for plotting and regression
// tracking.
#include <cstdio>
#include <cstdlib>

#include "benchkit/benchjson.hpp"
#include "benchkit/pingpong.hpp"

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 200;
  const simtime::CostModel cost = simtime::default_cost_model();
  const std::size_t sizes[] = {1,    16,    256,   1600,
                               4096, 16384, 65536};

  benchkit::BenchJson json("sweep_sizes");
  json.meta("unit", "us").meta("reps", static_cast<std::int64_t>(reps));

  std::printf("Message-size sweep: one-way latency in us (%d reps)\n", reps);
  for (int type = 1; type <= 5; ++type) {
    std::printf("\nchannel type %d\n", type);
    std::printf("%10s %14s %14s %14s %16s\n", "bytes", "CellPilot", "DMA",
                "Copy", "CP throughput");
    for (const std::size_t bytes : sizes) {
      benchkit::PingPongSpec spec;
      spec.type = static_cast<cellpilot::ChannelType>(type);
      spec.bytes = bytes;
      spec.reps = reps;
      const double cp =
          benchkit::pingpong_us(spec, benchkit::Method::kCellPilot, cost);
      const double dma =
          benchkit::pingpong_us(spec, benchkit::Method::kDma, cost);
      const double copy =
          benchkit::pingpong_us(spec, benchkit::Method::kCopy, cost);
      std::printf("%10zu %14.1f %14.1f %14.1f %13.1f MB/s\n", bytes, cp, dma,
                  copy, bytes / cp);
      json.add_row()
          .set("type", static_cast<std::int64_t>(type))
          .set("bytes", static_cast<std::int64_t>(bytes))
          .set("cellpilot_us", cp)
          .set("dma_us", dma)
          .set("copy_us", copy)
          .set("cp_throughput_mbps", bytes / cp);
    }
  }
  std::printf(
      "\nInterpretation: CellPilot's overhead is a fixed per-transfer tax;\n"
      "its relative cost falls with message size until per-byte terms\n"
      "dominate.  DMA's flat profile up to 16 KB (one MFC command) makes\n"
      "it the asymptotic winner on-chip; off-node, the network dwarfs all\n"
      "methods' differences at large sizes.\n");
  json.write_file("BENCH_sweep_sizes.json");
  return 0;
}
