// spe_collectives.cpp — measures the SPE-collectives extension (the
// paper's §VI future work, implemented here): broadcast to N SPE workers
// and gather from them, versus the N sequential writes/reads a paper-era
// application had to issue.
//
// Both paths move identical bytes through identical channels; the
// difference is purely the API (one call vs N) plus the library-overhead
// amortization of a single marshalling pass, so the series quantifies what
// the collective API is worth.
//
// Usage: spe_collectives [payload_doubles]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/cellpilot.hpp"
#include "pilot/context.hpp"

namespace {

constexpr int kMaxWorkers = 16;
int g_workers = 1;
int g_doubles = 64;
bool g_use_bundles = true;
PI_CHANNEL* g_down[kMaxWorkers];
PI_CHANNEL* g_up[kMaxWorkers];
std::atomic<simtime::SimTime> g_elapsed{0};

PI_SPE_PROGRAM_SIZED(coll_bench_worker, 2048) {
  const int id = arg1;
  std::vector<double> data(static_cast<std::size_t>(g_doubles));
  PI_Read(g_down[id], "%*lf", g_doubles, data.data());
  PI_Write(g_up[id], "%*lf", g_doubles, data.data());
  return 0;
}

int coll_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* spes[kMaxWorkers];
  for (int w = 0; w < g_workers; ++w) {
    spes[w] = PI_CreateSPE(coll_bench_worker, PI_MAIN, w);
    g_down[w] = PI_CreateChannel(PI_MAIN, spes[w]);
    g_up[w] = PI_CreateChannel(spes[w], PI_MAIN);
  }
  PI_BUNDLE* bcast = PI_CreateBundle(PI_BROADCAST, g_down, g_workers);
  PI_BUNDLE* gather = PI_CreateBundle(PI_GATHER, g_up, g_workers);

  PI_StartAll();
  for (int w = 0; w < g_workers; ++w) PI_RunSPE(spes[w], w, nullptr);

  simtime::VirtualClock& clock = pilot::context().mpi().clock();
  std::vector<double> payload(static_cast<std::size_t>(g_doubles), 3.14);
  std::vector<double> gathered(
      static_cast<std::size_t>(g_doubles * g_workers));

  const simtime::SimTime start = clock.now();
  if (g_use_bundles) {
    PI_Broadcast(bcast, "%*lf", g_doubles, payload.data());
    PI_Gather(gather, "%*lf", g_doubles, gathered.data());
  } else {
    for (int w = 0; w < g_workers; ++w) {
      PI_Write(g_down[w], "%*lf", g_doubles, payload.data());
    }
    for (int w = 0; w < g_workers; ++w) {
      PI_Read(g_up[w], "%*lf", g_doubles,
              gathered.data() + static_cast<std::size_t>(w) * g_doubles);
    }
  }
  g_elapsed.store(clock.now() - start);
  PI_StopMain(0);
  return 0;
}

double run(int workers, bool bundles) {
  g_workers = workers;
  g_use_bundles = bundles;
  g_elapsed.store(0);
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  const auto result = cellpilot::run(machine, coll_main);
  if (result.aborted) {
    std::fprintf(stderr, "aborted: %s\n", result.abort_reason.c_str());
    std::exit(1);
  }
  return simtime::to_us(g_elapsed.load());
}

}  // namespace

int main(int argc, char** argv) {
  g_doubles = argc > 1 ? std::atoi(argv[1]) : 64;
  std::printf(
      "SPE collectives (extension): broadcast+gather round trip over N SPE\n"
      "workers, %d doubles per worker\n\n",
      g_doubles);
  std::printf("%8s %18s %20s\n", "workers", "bundles (us)",
              "per-channel loops (us)");
  for (int workers : {1, 2, 4, 8, 16}) {
    const double with_bundles = run(workers, true);
    const double with_loops = run(workers, false);
    std::printf("%8d %18.1f %20.1f\n", workers, with_bundles, with_loops);
  }
  std::printf(
      "\nInterpretation: both paths serialize behind the node's single\n"
      "Co-Pilot, so the collective API buys convenience and one marshalling\n"
      "pass rather than asymptotic speedup — consistent with the paper's\n"
      "design, where collectives are an API nicety over the same relay.\n");
  return 0;
}
