// cml_compare.cpp — CellPilot vs the Cell Messaging Layer (related work,
// §II.D): the same SPE-to-SPE PingPong, intra-node and inter-node, through
// both libraries.
//
// What the paper predicts: CML's leaner SPE runtime (no channel tables, no
// format strings, 3-word requests) undercuts CellPilot's latency somewhat,
// but offers only rank-addressed send/recv among SPEs — no PPE/non-Cell
// processes, no typed contracts, no select — which is why CellPilot did not
// build on it.
//
// Usage: cml_compare [reps]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchkit/pingpong.hpp"
#include "cmlsim/cml.hpp"

namespace {

simtime::SimTime cml_pingpong(int nodes, std::size_t bytes, int reps) {
  // Initiator rank 0; responder is the last rank (other node when nodes=2).
  std::atomic<simtime::SimTime> elapsed{0};
  cml::JobConfig config;
  config.nodes = nodes;
  config.spes_per_node = 2;
  const auto r = cml::run(config, [&](int rank, int size) {
    const int responder = size - 1;
    std::vector<std::byte> buf(bytes);
    if (rank == 0) {
      simtime::VirtualClock& clock = cml::cml_clock();
      const simtime::SimTime start = clock.now();
      for (int i = 0; i < reps; ++i) {
        cml::cml_send(buf.data(), bytes, responder);
        cml::cml_recv(buf.data(), bytes, responder);
      }
      elapsed.store(clock.now() - start);
    } else if (rank == responder) {
      for (int i = 0; i < reps; ++i) {
        cml::cml_recv(buf.data(), bytes, 0);
        cml::cml_send(buf.data(), bytes, 0);
      }
    }
    return 0;
  });
  if (r.failed) {
    std::fprintf(stderr, "cml job failed: %s\n", r.error.c_str());
    std::exit(1);
  }
  return elapsed.load() / (2 * reps);
}

double cellpilot_one_way(cellpilot::ChannelType type, std::size_t bytes,
                         int reps) {
  benchkit::PingPongSpec spec;
  spec.type = type;
  spec.bytes = bytes;
  spec.reps = reps;
  return benchkit::pingpong_us(spec, benchkit::Method::kCellPilot,
                               simtime::default_cost_model());
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 500;

  std::printf(
      "CellPilot vs Cell Messaging Layer: SPE<->SPE one-way latency (us), "
      "%d reps\n\n",
      reps);
  std::printf("%-22s %10s %12s\n", "path", "CellPilot", "CML");
  for (const std::size_t bytes : {std::size_t{1}, std::size_t{1600}}) {
    const double cp4 =
        cellpilot_one_way(cellpilot::ChannelType::kType4, bytes, reps);
    const double cml4 = simtime::to_us(cml_pingpong(1, bytes, reps));
    std::printf("intra-node, %5zu B   %10.1f %12.1f\n", bytes, cp4, cml4);
    const double cp5 =
        cellpilot_one_way(cellpilot::ChannelType::kType5, bytes, reps);
    const double cml5 = simtime::to_us(cml_pingpong(2, bytes, reps));
    std::printf("inter-node, %5zu B   %10.1f %12.1f\n", bytes, cp5, cml5);
  }
  std::printf(
      "\nInterpretation: CML's slimmer request path shaves tens of\n"
      "microseconds off each transfer, but its model is SPE-ranks-only\n"
      "send/recv; CellPilot pays for typed channels, format checking and\n"
      "PPE/non-Cell endpoints — the trade the paper chose deliberately.\n");
  return 0;
}
