// jitter.cpp — per-repetition latency distribution of the PingPong.
//
// The paper reports averages over 1000 repetitions; this bench looks inside
// that average.  Virtual time exposes the *structural* variance: the first
// repetitions pay pipeline fill (SPE launch joins, Co-Pilot queue priming)
// while steady-state repetitions settle to a fixed cost.  Real-machine noise
// does not exist here — whatever spread remains is protocol structure.
//
// Usage: jitter [reps]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"
#include "pilot/context.hpp"
#include "simtime/stats.hpp"

namespace {

int g_reps = 200;
std::size_t g_bytes = 1;
PI_CHANNEL* g_fwd = nullptr;
PI_CHANNEL* g_rev = nullptr;
PI_PROCESS* g_spe = nullptr;
std::vector<double> g_samples;

PI_SPE_PROGRAM(jitter_responder) {
  std::vector<std::byte> buf(g_bytes);
  for (int i = 0; i < g_reps; ++i) {
    PI_Read(g_fwd, "%*b", static_cast<int>(g_bytes), buf.data());
    PI_Write(g_rev, "%*b", static_cast<int>(g_bytes), buf.data());
  }
  return 0;
}

int jitter_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  g_spe = PI_CreateSPE(jitter_responder, PI_MAIN, 0);
  g_fwd = PI_CreateChannel(PI_MAIN, g_spe);
  g_rev = PI_CreateChannel(g_spe, PI_MAIN);
  PI_StartAll();
  PI_RunSPE(g_spe, 0, nullptr);

  simtime::VirtualClock& clock = pilot::context().mpi().clock();
  std::vector<std::byte> buf(g_bytes);
  g_samples.clear();
  for (int i = 0; i < g_reps; ++i) {
    const simtime::SimTime start = clock.now();
    PI_Write(g_fwd, "%*b", static_cast<int>(g_bytes), buf.data());
    PI_Read(g_rev, "%*b", static_cast<int>(g_bytes), buf.data());
    g_samples.push_back(simtime::to_us(clock.now() - start) / 2.0);
  }
  PI_StopMain(0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  g_reps = argc > 1 ? std::atoi(argv[1]) : 200;

  std::printf(
      "Per-repetition one-way latency, type-2 channel, 1 B payload, %d "
      "reps\n\n",
      g_reps);

  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  const auto result = cellpilot::run(machine, jitter_main);
  if (result.aborted) {
    std::fprintf(stderr, "aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }

  simtime::Stats warmup;
  simtime::Stats steady;
  for (std::size_t i = 0; i < g_samples.size(); ++i) {
    (i < 5 ? warmup : steady).add(g_samples[i]);
  }

  std::printf("first repetitions (pipeline fill):\n");
  for (std::size_t i = 0; i < 5 && i < g_samples.size(); ++i) {
    std::printf("  rep %zu: %.1f us\n", i, g_samples[i]);
  }
  std::printf(
      "\nsteady state over %zu reps:\n"
      "  mean %.2f us  stddev %.3f us  min %.1f  p50 %.1f  p99 %.1f  max "
      "%.1f\n",
      steady.count(), steady.mean(), steady.stddev(), steady.min(),
      steady.percentile(50), steady.percentile(99), steady.max());
  std::printf(
      "\nInterpretation: after the pipeline fills, the virtual-time\n"
      "simulation is exactly periodic (stddev ~ 0): the paper's 1000-rep\n"
      "averaging smooths real-machine noise that the model does not have.\n");
  return 0;
}
