// footprint.cpp — regenerates the paper's §V memory-footprint comparison:
// "The CellPilot object file, cellpilot.o, takes up 10336 bytes of SPE
// storage ... In comparison, the DaCS SPE library, libdacs.a, is 36600
// bytes."
//
// The numbers here are *enforced*, not quoted: an SPE program is run under
// each library and the local-store allocator's segment table is read back,
// together with the residual budget a user program actually gets out of the
// 256 KB.  The host-side object sizes of this reproduction's SPE runtime
// are reported as supplementary data when the build tree is available.
#include <cstdio>
#include <filesystem>

#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"
#include "core/protocol.hpp"
#include "dacssim/dacs.hpp"

namespace {

struct Budget {
  std::size_t runtime_bytes = 0;   // library segment charged in the LS
  std::size_t largest_free = 0;    // biggest buffer a user could allocate
};

Budget g_budget;

PI_SPE_PROGRAM(fp_probe) {
  auto& alloc = cellsim::spu::self().allocator();
  for (const auto& seg : alloc.segments()) {
    if (seg.name == "text:cellpilot-runtime") g_budget.runtime_bytes = seg.size;
  }
  g_budget.largest_free = alloc.largest_free_block();
  return 0;
}

Budget cellpilot_budget() {
  g_budget = Budget{};
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  cellpilot::run(machine, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(fp_probe, PI_MAIN, 0);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    PI_StopMain(0);
    return 0;
  });
  return g_budget;
}

int dacs_probe(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  auto* budget = static_cast<Budget*>(
      cellsim::ptr_of(static_cast<cellsim::EffectiveAddress>(argp)));
  auto& alloc = cellsim::spu::self().allocator();
  for (const auto& seg : alloc.segments()) {
    if (seg.name == "text:libdacs") budget->runtime_bytes = seg.size;
  }
  budget->largest_free = alloc.largest_free_block();
  return 0;
}

Budget dacs_budget() {
  Budget budget;
  const simtime::CostModel cost = simtime::default_cost_model();
  cellsim::CellBlade blade("fp", cost);
  dacs::Runtime rt(blade, cost);
  const cellsim::spe2::spe_program_handle_t prog{"fp_probe", &dacs_probe,
                                                 4096};
  dacs::dacs_de_start(rt, dacs::de_id_t{0}, prog, cellsim::ea_of(&budget));
  std::int32_t status = 0;
  dacs::dacs_de_wait(rt, dacs::de_id_t{0}, &status);
  return budget;
}

void report_object_sizes() {
  namespace fs = std::filesystem;
  // Supplementary: actual compiled sizes of this reproduction's SPE-side
  // runtime objects, when run from the repository root.
  const char* candidates[] = {
      "build/src/core/CMakeFiles/core.dir/spe_runtime.cpp.o",
      "build/src/dacssim/CMakeFiles/dacssim.dir/dacs.cpp.o",
  };
  std::printf("\nSupplementary (this reproduction's host objects):\n");
  for (const char* path : candidates) {
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec) {
      std::printf("  %-55s (not found)\n", path);
    } else {
      std::printf("  %-55s %8ju bytes\n", path,
                  static_cast<std::uintmax_t>(size));
    }
  }
}

}  // namespace

int main() {
  const Budget cp = cellpilot_budget();
  const Budget dc = dacs_budget();

  std::printf("SPE local-store footprint (paper SS V)\n");
  std::printf("%-22s %16s %16s %12s\n", "library", "LS bytes charged",
              "user budget left", "paper (B)");
  std::printf("%-22s %16zu %16zu %12d\n", "CellPilot (cellpilot.o)",
              cp.runtime_bytes, cp.largest_free, 10336);
  std::printf("%-22s %16zu %16zu %12d\n", "DaCS (libdacs.a)",
              dc.runtime_bytes, dc.largest_free, 36600);
  std::printf("\nratio DaCS/CellPilot: %.2fx (paper: %.2fx)\n",
              static_cast<double>(dc.runtime_bytes) /
                  static_cast<double>(cp.runtime_bytes),
              36600.0 / 10336.0);
  report_object_sizes();
  return 0;
}
