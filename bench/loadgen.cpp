// loadgen.cpp — latency-under-load sweeps over the simulated cluster.
//
// The open-loop engine lives in src/benchkit/loadgen.*; this binary is
// the operator's handle on it:
//
//   loadgen                         # default sweep, BENCH_loadgen.json
//   loadgen --seed 2 --quick        # short CI-sized sweep
//   loadgen --chaos copilot         # same mix through a Co-Pilot crash
//   loadgen --chaos spe             # ...through an SPE crash + respawn
//   loadgen --chaos blade           # ...through a blade kill + checkpoint
//                                   # restore (writes loadgen_blade.ckpt)
//   loadgen --chaos 'spe_crash_mid@*:op=9' --respawn 2   # raw cocktail
//   loadgen --points 20000,80000    # explicit offered loads (msg/s)
//   loadgen --out path.json         # where the JSON goes
//
// stdout carries the human table; the JSON (and the "wrote ..." note) go
// to the file / stderr so the table stays scrape-stable.  Everything is
// deterministic per seed — see docs/OBSERVABILITY.md, "Load & SLOs".
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchkit/loadgen.hpp"

namespace {

using benchkit::loadgen::Config;
using benchkit::loadgen::kClassCount;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--quick] [--chaos copilot|spe|blade|<spec>]\n"
      "          [--respawn N] [--ckpt FILE] [--ckpt-every N]\n"
      "          [--points a,b,...] [--horizon-ms X]\n"
      "          [--blades N] [--out FILE]\n",
      argv0);
  return 2;
}

bool parse_points(const char* arg, std::vector<double>* out) {
  out->clear();
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p || v <= 0) return false;
    out->push_back(v);
    p = end;
    if (*p == ',') ++p;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  std::string out_path = "BENCH_loadgen.json";
  bool quick = false;
  bool points_set = false;
  bool horizon_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "loadgen: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      const char* v = need_value("--seed");
      if (v == nullptr) return usage(argv[0]);
      cfg.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--chaos") {
      const char* v = need_value("--chaos");
      if (v == nullptr) return usage(argv[0]);
      // Two named cocktails cover the tracked recovery paths; anything
      // else is a raw core/faultplan spec.
      if (std::strcmp(v, "copilot") == 0) {
        cfg.chaos_spec = "copilot_crash@*:op=5";
      } else if (std::strcmp(v, "spe") == 0) {
        cfg.chaos_spec = "spe_crash_mid@*:op=25";
        if (cfg.respawn_budget == 0) cfg.respawn_budget = 8;
      } else if (std::strcmp(v, "blade") == 0) {
        // Kill blade 1 (burst sinks + remote pair reader) mid-sweep; the
        // coordinated checkpoint restores its SPE contexts, so the point
        // completes with a degraded window instead of a fault cascade.
        cfg.chaos_spec = "blade_kill@node1:op=40";
        if (cfg.ckpt_path.empty()) cfg.ckpt_path = "loadgen_blade.ckpt";
        if (cfg.ckpt_every == 0) cfg.ckpt_every = 16;
      } else {
        cfg.chaos_spec = v;
      }
    } else if (arg == "--respawn") {
      const char* v = need_value("--respawn");
      if (v == nullptr) return usage(argv[0]);
      cfg.respawn_budget = std::atoi(v);
    } else if (arg == "--ckpt") {
      const char* v = need_value("--ckpt");
      if (v == nullptr) return usage(argv[0]);
      cfg.ckpt_path = v;
    } else if (arg == "--ckpt-every") {
      const char* v = need_value("--ckpt-every");
      if (v == nullptr) return usage(argv[0]);
      cfg.ckpt_every = std::atoi(v);
      if (cfg.ckpt_every <= 0) {
        std::fprintf(stderr, "loadgen: bad --ckpt-every\n");
        return usage(argv[0]);
      }
    } else if (arg == "--points") {
      const char* v = need_value("--points");
      if (v == nullptr || !parse_points(v, &cfg.load_points_rps)) {
        std::fprintf(stderr, "loadgen: bad --points list\n");
        return usage(argv[0]);
      }
      points_set = true;
    } else if (arg == "--horizon-ms") {
      const char* v = need_value("--horizon-ms");
      if (v == nullptr) return usage(argv[0]);
      const double ms = std::strtod(v, nullptr);
      if (ms <= 0) {
        std::fprintf(stderr, "loadgen: bad --horizon-ms\n");
        return usage(argv[0]);
      }
      cfg.horizon = simtime::ms(ms);
      horizon_set = true;
    } else if (arg == "--blades") {
      const char* v = need_value("--blades");
      if (v == nullptr) return usage(argv[0]);
      cfg.blades = std::atoi(v);
    } else if (arg == "--out") {
      const char* v = need_value("--out");
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else {
      std::fprintf(stderr, "loadgen: unknown flag %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (quick) {
    // The CI shape: two points (one comfortable, one past the knee) over a
    // short horizon — enough signal for the gate, cheap enough per push.
    if (!points_set) cfg.load_points_rps = {8000, 20000};
    if (!horizon_set) cfg.horizon = simtime::ms(20);
  }
  cfg.finalize();

  std::printf("loadgen: seed=%llu blades=%d horizon=%.1fms chaos=%s\n",
              static_cast<unsigned long long>(cfg.seed), cfg.blades,
              simtime::to_ms(cfg.horizon),
              cfg.chaos_spec.empty() ? "-" : cfg.chaos_spec.c_str());
  std::printf("%10s  %-11s  %9s  %9s  %9s  %9s  %9s  %s\n", "load_rps",
              "class", "offered", "achieved", "p50_us", "p99_us",
              "degr_p99", "slo");

  const benchkit::loadgen::SweepResult sweep = benchkit::loadgen::run_sweep(cfg);

  for (const auto& point : sweep.points) {
    if (point.aborted) {
      std::printf("%10.0f  ABORTED: %s\n", point.load_rps,
                  point.abort_reason.c_str());
      continue;
    }
    for (int c = 0; c < kClassCount; ++c) {
      const auto& r = point.cls[c];
      std::printf("%10.0f  %-11s  %9.0f  %9.0f  %9.1f  %9.1f  %9.1f  %s\n",
                  point.load_rps, benchkit::loadgen::class_name(c),
                  r.offered_rps, r.achieved_rps, r.route.p50_us,
                  r.route.p99_us, r.degraded_p99_us,
                  r.slo_ok ? "ok" : "MISS");
    }
  }
  std::printf("capacity (max load meeting SLO at >=95%% goodput):\n");
  for (int c = 0; c < kClassCount; ++c) {
    std::printf("  %-11s  %10.0f msg/s\n", benchkit::loadgen::class_name(c),
                sweep.capacity_rps[c]);
  }

  const benchkit::BenchJson json =
      benchkit::loadgen::to_bench_json(cfg, sweep);
  if (!json.write_file(out_path)) return 1;

  bool any_abort = false;
  for (const auto& point : sweep.points) any_abort |= point.aborted;
  return any_abort ? 1 : 0;
}
