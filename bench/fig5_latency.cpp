// fig5_latency.cpp — regenerates the paper's Figure 5: grouped bars of
// one-way latency per channel type and method; each bar's lower (solid)
// portion is the 1-byte time, the upper (hashed) portion the extra time at
// 1600 bytes.  Printed here as the series a plotting script would consume,
// plus an ASCII rendering.
//
// Usage: fig5_latency [reps]
//
// Alongside the human table on stdout, the same numbers are written to
// BENCH_fig5_latency.json (note on stderr) for plotting and regression
// tracking.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchkit/benchjson.hpp"
#include "benchkit/pingpong.hpp"

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 1000;
  const simtime::CostModel cost = simtime::default_cost_model();
  const benchkit::Method methods[] = {benchkit::Method::kCellPilot,
                                      benchkit::Method::kDma,
                                      benchkit::Method::kCopy};

  double one_byte[6][3];
  double big[6][3];

  benchkit::BenchJson json("fig5_latency");
  json.meta("unit", "us").meta("reps", static_cast<std::int64_t>(reps));

  std::printf("Figure 5: latencies for CellPilot vs hand-coded transfers\n");
  std::printf("%-6s %-10s %14s %14s\n", "type", "method", "1B (us)",
              "1600B (us)");
  for (int type = 1; type <= 5; ++type) {
    for (int m = 0; m < 3; ++m) {
      benchkit::PingPongSpec spec;
      spec.type = static_cast<cellpilot::ChannelType>(type);
      spec.reps = reps;
      spec.bytes = 1;
      const benchkit::PingPongStats small_stats =
          benchkit::pingpong_stats(spec, methods[m], cost);
      one_byte[type][m] = simtime::to_us(small_stats.one_way);
      spec.bytes = 1600;
      const benchkit::PingPongStats big_stats =
          benchkit::pingpong_stats(spec, methods[m], cost);
      big[type][m] = simtime::to_us(big_stats.one_way);
      std::printf("%-6d %-10s %14.1f %14.1f\n", type,
                  benchkit::to_string(methods[m]), one_byte[type][m],
                  big[type][m]);
      json.add_row()
          .set("type", static_cast<std::int64_t>(type))
          .set("method", std::string(benchkit::to_string(methods[m])))
          .set("one_byte_us", one_byte[type][m])
          .set("one_byte_p50_us", simtime::to_us(small_stats.p50))
          .set("one_byte_p99_us", simtime::to_us(small_stats.p99))
          .set("big_us", big[type][m])
          .set("big_p50_us", simtime::to_us(big_stats.p50))
          .set("big_p99_us", simtime::to_us(big_stats.p99));
    }
  }

  // ASCII bars: '#' = 1-byte portion, '/' = additional 1600-byte portion.
  std::printf("\n%38s (each char ~ 5 us)\n", "");
  for (int type = 1; type <= 5; ++type) {
    for (int m = 0; m < 3; ++m) {
      const int solid = static_cast<int>(one_byte[type][m] / 5.0 + 0.5);
      const int hashed =
          static_cast<int>((big[type][m] - one_byte[type][m]) / 5.0 + 0.5);
      std::printf("T%d %-10s |%s%s\n", type, benchkit::to_string(methods[m]),
                  std::string(static_cast<std::size_t>(solid), '#').c_str(),
                  std::string(static_cast<std::size_t>(hashed), '/').c_str());
    }
  }
  json.write_file("BENCH_fig5_latency.json");
  return 0;
}
