#include "benchkit/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <utility>
#include <map>
#include <string>
#include <vector>

#include "benchkit/arrivals.hpp"
#include "benchkit/pingpong.hpp"
#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"
#include "core/checkpoint.hpp"
#include "core/copilot.hpp"
#include "core/metrics.hpp"
#include "core/telemetry.hpp"
#include "pilot/context.hpp"
#include "pilot/errors.hpp"
#include "simtime/timeseries.hpp"

namespace benchkit::loadgen {

namespace {

using arrivals::PoissonStream;
using arrivals::splitmix64;

// Topology bounds for the fixed-size config tables below.  Every rank
// executes the configuration phase (SPMD), so config state must be plain
// arrays written with idempotent same-value stores — never containers
// mutated concurrently (the scaling_farm / chaos_sweep idiom).
constexpr int kMaxBlades = 8;
constexpr int kMaxSinks = 8;
constexpr int kMaxPairs = kMaxBlades;  // 1 local + one per remote blade

constexpr int kBurstDoubles = 32;  // halo-style async payload (256 B)
constexpr int kRespDoubles = 64;   // read-class response payload (512 B)
constexpr int kPairDoubles = 32;   // SPE<->SPE halo payload (256 B)

/// Master-driven schedule classes (indices into merge_schedule rates).
enum MasterClass { kMSync = 0, kMBurst = 1, kMRead = 2, kMasterClasses = 3 };

/// Degraded-window tail: latency stays elevated while the backlog built
/// up during a failover/respawn drains, so the window extends past the
/// supervision layer's last recovery stamp.
constexpr simtime::SimTime kDegradeGrace = simtime::ms(3);

const char* kClassNames[kClassCount] = {"sync_write", "async_burst", "read",
                                        "spe_local", "spe_remote"};
const int kClassRoute[kClassCount] = {2, 3, 1, 4, 5};

// --- the job ---------------------------------------------------------------

/// Per-run parameters, set by run_point before cellpilot::run (read-only
/// to every rank/SPE thread afterwards).
const Config* g_cfg = nullptr;
double g_load_rps = 0;
std::uint64_t g_point_seed = 0;

/// Config-phase tables (same-value stores from every rank).
PI_PROCESS* g_parent[kMaxBlades];
PI_PROCESS* g_sync_spe[kMaxSinks];
PI_CHANNEL* g_sync_ch[kMaxSinks];
PI_PROCESS* g_burst_spe[kMaxSinks];
PI_CHANNEL* g_burst_ch[kMaxSinks];
PI_CHANNEL* g_trig = nullptr;
PI_CHANNEL* g_resp = nullptr;
PI_PROCESS* g_pair_writer[kMaxPairs];
PI_PROCESS* g_pair_reader[kMaxPairs];
PI_CHANNEL* g_pair_ch[kMaxPairs];

/// Pair writer schedules: written by the master between PI_StartAll and
/// PI_RunSPE of the writers, read by the writer SPE threads after launch.
std::vector<simtime::SimTime> g_pair_schedule[kMaxPairs];

/// Pair reader progress (SPE threads write, master reads after quiesce).
std::atomic<std::uint64_t> g_pair_reads[kMaxPairs];
std::atomic<simtime::SimTime> g_pair_last[kMaxPairs];
std::atomic<simtime::SimTime> g_pair_t0[kMaxPairs];

/// Master-side results, written only by the PI_MAIN thread.
struct MasterState {
  std::vector<Sample> samples[kMasterClasses];
  std::uint64_t completed[kMasterClasses] = {};
  std::uint64_t errors[kMasterClasses] = {};
  simtime::SimTime t0 = 0;
  simtime::SimTime last_complete[kMasterClasses] = {};
  // Post-quiesce harvest.
  PI_METRICS_SNAPSHOT snapshot = {};
  int snapshot_rc = -1;
};
MasterState g_master;

int blades() { return std::min(g_cfg->blades, kMaxBlades); }
int nsync() { return std::min(g_cfg->sinks_per_class, kMaxSinks); }
int nburst() { return std::min(g_cfg->sinks_per_class, kMaxSinks); }
int npairs() { return 1 + (blades() - 1); }

/// Blade hosting burst sink `i` (spread round-robin over remote blades).
int burst_blade(int i) { return 1 + i % (blades() - 1); }

/// Per-class offered message rates for this point.
double class_rate(int cls) {
  double total_weight = 0;
  for (const auto& c : g_cfg->cls) total_weight += c.weight;
  return g_load_rps * g_cfg->cls[cls].weight / total_weight;
}

bool usage_error(const pilot::PilotError& e) {
  return e.code() == pilot::ErrorCode::kUsage;
}

// --- SPE programs and rank bodies -----------------------------------------

/// Sync sink: drains control ints, spending sink_service per message.  A
/// negative value is the sentinel.
PI_SPE_PROGRAM_SIZED(lg_sync_sink, 2048) {
  const int id = arg1;
  (void)arg2;
  try {
    for (;;) {
      int v = 0;
      PI_Read(g_sync_ch[id], "%d", &v);
      if (v < 0) return 0;
      cellsim::spu::self().clock().advance(g_cfg->sink_service);
    }
  } catch (const pilot::PilotError&) {
    // A poisoned channel or a peer failure ends the sink quietly; the
    // master counts the error on its side.
  }
  return 0;
}

/// Burst sink: drains halo-style double arrays; values[0] < 0 is the
/// sentinel.
PI_SPE_PROGRAM_SIZED(lg_burst_sink, 2048) {
  const int id = arg1;
  (void)arg2;
  try {
    for (;;) {
      double values[kBurstDoubles] = {};
      PI_Read(g_burst_ch[id], "%*lf", kBurstDoubles, values);
      if (values[0] < 0) return 0;
      cellsim::spu::self().clock().advance(g_cfg->sink_service);
    }
  } catch (const pilot::PilotError&) {
  }
  return 0;
}

/// Self-paced pair writer: walks its precomputed Poisson schedule in its
/// own virtual clock, then sends the sentinel.
PI_SPE_PROGRAM_SIZED(lg_pair_writer, 2048) {
  const int id = arg1;
  (void)arg2;
  simtime::VirtualClock& clock = cellsim::spu::self().clock();
  const simtime::SimTime t0 = clock.now();
  g_pair_t0[id].store(t0, std::memory_order_release);
  double values[kPairDoubles] = {};
  try {
    const auto& schedule = g_pair_schedule[id];
    for (std::size_t k = 0; k < schedule.size(); ++k) {
      const simtime::SimTime target = t0 + schedule[k];
      if (clock.now() < target) clock.advance(target - clock.now());
      values[0] = static_cast<double>(k);
      PI_Write(g_pair_ch[id], "%*lf", kPairDoubles, values);
    }
    values[0] = -1.0;
    PI_Write(g_pair_ch[id], "%*lf", kPairDoubles, values);
  } catch (const pilot::PilotError&) {
    // Best-effort sentinel so a healthy reader does not wait forever on a
    // writer that absorbed a fault.
    try {
      values[0] = -1.0;
      PI_Write(g_pair_ch[id], "%*lf", kPairDoubles, values);
    } catch (const pilot::PilotError&) {
    }
  }
  return 0;
}

/// Pair reader: drains the halo stream, spending pair_service per message
/// and publishing its progress for the master's throughput line.
PI_SPE_PROGRAM_SIZED(lg_pair_reader, 2048) {
  const int id = arg1;
  (void)arg2;
  simtime::VirtualClock& clock = cellsim::spu::self().clock();
  try {
    for (;;) {
      double values[kPairDoubles] = {};
      PI_Read(g_pair_ch[id], "%*lf", kPairDoubles, values);
      if (values[0] < 0) return 0;
      clock.advance(g_cfg->pair_service);
      g_pair_reads[id].fetch_add(1, std::memory_order_relaxed);
      g_pair_last[id].store(clock.now(), std::memory_order_release);
    }
  } catch (const pilot::PilotError&) {
  }
  return 0;
}

/// Per-blade parent rank: launches the blade's SPEs, then (blade 1 only)
/// serves the read class — a serial request/response loop, the modelled
/// "storage node" the read-dominated traffic hammers.
int lg_parent_body(int blade, void* /*arg*/) {
  for (int i = 0; i < nburst(); ++i) {
    if (burst_blade(i) == blade) PI_RunSPE(g_burst_spe[i], i, nullptr);
  }
  const int pair = blade;  // remote pair `b` reads on blade b
  if (pair >= 1 && pair < npairs()) {
    PI_RunSPE(g_pair_reader[pair], pair, nullptr);
  }
  if (blade != 1) return 0;
  simtime::VirtualClock& clock = pilot::context().mpi().clock();
  try {
    for (;;) {
      int q = 0;
      PI_Read(g_trig, "%d", &q);
      if (q < 0) return 0;
      clock.advance(g_cfg->responder_service);
      double values[kRespDoubles];
      for (int i = 0; i < kRespDoubles; ++i) {
        values[i] = q + 0.5 * i;
      }
      PI_Write(g_resp, "%*lf", kRespDoubles, values);
    }
  } catch (const pilot::PilotError&) {
  }
  return 0;
}

// --- the master's open-loop engine ----------------------------------------

void record_completion(int mcls, simtime::SimTime target,
                       simtime::VirtualClock& clock) {
  const simtime::SimTime now = clock.now();
  g_master.samples[mcls].push_back({now, now - target});
  ++g_master.completed[mcls];
  g_master.last_complete[mcls] = now;
}

/// One in-flight read-class request.
struct PendingRead {
  PI_HANDLE handle = nullptr;
  simtime::SimTime target = 0;
  int slot = 0;
};

int lg_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  const int nblades = blades();

  // Configuration phase: every rank executes this identically (the
  // get-or-create tables require the same creation sequence everywhere).
  for (int b = 1; b < nblades; ++b) {
    g_parent[b] = PI_CreateProcess(lg_parent_body, b, nullptr);
  }
  int main_spe_index = 0;
  int blade_spe_index[kMaxBlades] = {};
  for (int i = 0; i < nsync(); ++i) {
    g_sync_spe[i] = PI_CreateSPE(lg_sync_sink, PI_MAIN, main_spe_index++);
    g_sync_ch[i] = PI_CreateChannel(PI_MAIN, g_sync_spe[i]);
  }
  for (int i = 0; i < nburst(); ++i) {
    const int b = burst_blade(i);
    g_burst_spe[i] =
        PI_CreateSPE(lg_burst_sink, g_parent[b], blade_spe_index[b]++);
    g_burst_ch[i] = PI_CreateChannel(PI_MAIN, g_burst_spe[i]);
  }
  g_trig = PI_CreateChannel(PI_MAIN, g_parent[1]);
  g_resp = PI_CreateChannel(g_parent[1], PI_MAIN);
  for (int p = 0; p < npairs(); ++p) {
    g_pair_writer[p] =
        PI_CreateSPE(lg_pair_writer, PI_MAIN, main_spe_index++);
    if (p == 0) {
      g_pair_reader[p] =
          PI_CreateSPE(lg_pair_reader, PI_MAIN, main_spe_index++);
    } else {
      g_pair_reader[p] =
          PI_CreateSPE(lg_pair_reader, g_parent[p], blade_spe_index[p]++);
    }
    g_pair_ch[p] = PI_CreateChannel(g_pair_writer[p], g_pair_reader[p]);
  }

  PI_StartAll();
  // Only PI_MAIN gets here.
  simtime::VirtualClock& clock = pilot::context().mpi().clock();

  // Pair schedules, before the writers launch.
  for (int p = 0; p < npairs(); ++p) {
    const int cls = p == 0 ? static_cast<int>(Class::kSpeLocal)
                           : static_cast<int>(Class::kSpeRemote);
    const int share =
        p == 0 ? 1 : npairs() - 1;  // remote pairs split their class rate
    std::uint64_t mix = g_point_seed ^ (0x9A17ull * (p + 1));
    PoissonStream stream(splitmix64(mix), class_rate(cls) / share);
    g_pair_schedule[p].clear();
    simtime::SimTime t = 0;
    for (;;) {
      t += stream.next_gap();
      if (t > g_cfg->horizon) break;
      g_pair_schedule[p].push_back(t);
    }
    g_pair_reads[p].store(0, std::memory_order_relaxed);
    g_pair_last[p].store(0, std::memory_order_relaxed);
    g_pair_t0[p].store(0, std::memory_order_relaxed);
  }

  for (int i = 0; i < nsync(); ++i) PI_RunSPE(g_sync_spe[i], i, nullptr);
  for (int p = 0; p < npairs(); ++p) {
    PI_RunSPE(g_pair_writer[p], p, nullptr);
    if (p == 0) PI_RunSPE(g_pair_reader[p], p, nullptr);
  }

  // The master's merged open-loop schedule: sync and read arrivals are one
  // message each, a burst arrival expands into burst_size writes.
  const std::vector<double> master_rates = {
      class_rate(static_cast<int>(Class::kSyncWrite)),
      class_rate(static_cast<int>(Class::kAsyncBurst)) / g_cfg->burst_size,
      class_rate(static_cast<int>(Class::kRead)),
  };
  const std::vector<arrivals::Arrival> schedule =
      arrivals::merge_schedule(g_point_seed, master_rates, g_cfg->horizon);

  const simtime::SimTime t0 = clock.now();
  g_master.t0 = t0;
  for (int m = 0; m < kMasterClasses; ++m) {
    g_master.samples[m].reserve(schedule.size());
    g_master.last_complete[m] = t0;
  }

  bool sync_dead[kMaxSinks] = {};
  bool burst_dead[kMaxSinks] = {};
  bool read_dead = false;
  int sync_rr = 0;
  int burst_rr = 0;
  int read_seq = 0;
  int sync_seq = 0;

  std::deque<PendingRead> pending_reads;
  std::deque<int> free_slots;
  std::vector<std::vector<double>> read_slots(
      static_cast<std::size_t>(g_cfg->read_window));
  for (int s = 0; s < g_cfg->read_window; ++s) {
    read_slots[static_cast<std::size_t>(s)].assign(kRespDoubles, 0.0);
    free_slots.push_back(s);
  }

  const auto harvest_oldest_read = [&] {
    PendingRead req = pending_reads.front();
    pending_reads.pop_front();
    try {
      PI_Wait(req.handle);
      record_completion(kMRead, req.target, clock);
    } catch (const pilot::PilotError&) {
      ++g_master.errors[kMRead];
    }
    free_slots.push_back(req.slot);
  };

  for (const auto& a : schedule) {
    const simtime::SimTime target = t0 + a.at;
    if (clock.now() < target) clock.advance(target - clock.now());
    switch (a.cls) {
      case kMSync: {
        // Skip sinks whose channel a fault poisoned; if every sink is
        // gone, the arrival itself is the error.
        int tries = 0;
        for (; tries < nsync() && sync_dead[sync_rr % nsync()]; ++tries) {
          ++sync_rr;
        }
        if (tries == nsync()) {
          ++g_master.errors[kMSync];
          break;
        }
        const int i = sync_rr++ % nsync();
        try {
          PI_Write(g_sync_ch[i], "%d", sync_seq++);
          record_completion(kMSync, target, clock);
        } catch (const pilot::PilotError&) {
          sync_dead[i] = true;
          ++g_master.errors[kMSync];
        }
        break;
      }
      case kMBurst: {
        int tries = 0;
        for (; tries < nburst() && burst_dead[burst_rr % nburst()];
             ++tries) {
          ++burst_rr;
        }
        if (tries == nburst()) {
          g_master.errors[kMBurst] +=
              static_cast<std::uint64_t>(g_cfg->burst_size);
          break;
        }
        const int i = burst_rr++ % nburst();
        std::vector<PI_HANDLE> handles;
        handles.reserve(static_cast<std::size_t>(g_cfg->burst_size));
        try {
          double values[kBurstDoubles] = {};
          for (int k = 0; k < g_cfg->burst_size; ++k) {
            values[0] = static_cast<double>(k);
            handles.push_back(
                PI_WriteAsync(g_burst_ch[i], "%*lf", kBurstDoubles, values));
          }
          // Rank-side writes settle at submission, so PI_WaitAny harvests
          // deterministically (lowest settled index first).
          while (!handles.empty()) {
            const int done = PI_WaitAny(
                handles.data(), static_cast<int>(handles.size()));
            handles.erase(handles.begin() + done);
            record_completion(kMBurst, target, clock);
          }
        } catch (const pilot::PilotError& e) {
          // The faulted op was harvested by the throwing PI_WaitAny; the
          // rest of the burst is retired one by one (an already-released
          // handle answers with a usage error, which identifies it).
          if (!usage_error(e)) {
            burst_dead[i] = true;
            ++g_master.errors[kMBurst];
          }
          for (PI_HANDLE h : handles) {
            try {
              PI_Wait(h);
              record_completion(kMBurst, target, clock);
            } catch (const pilot::PilotError& e2) {
              if (!usage_error(e2)) ++g_master.errors[kMBurst];
            }
          }
        }
        break;
      }
      case kMRead: {
        if (read_dead) {
          ++g_master.errors[kMRead];
          break;
        }
        try {
          PI_HANDLE wh = PI_WriteAsync(g_trig, "%d", read_seq++);
          PI_Wait(wh);  // settles at submission
          const int slot = free_slots.front();
          free_slots.pop_front();
          PI_HANDLE rh =
              PI_ReadAsync(g_resp, "%*lf", kRespDoubles,
                           read_slots[static_cast<std::size_t>(slot)].data());
          pending_reads.push_back({rh, target, slot});
        } catch (const pilot::PilotError&) {
          read_dead = true;
          ++g_master.errors[kMRead];
        }
        // FIFO harvest keeps the master read-dominated but never more
        // than read_window requests deep.
        while (static_cast<int>(pending_reads.size()) >=
               g_cfg->read_window) {
          harvest_oldest_read();
        }
        break;
      }
      default: break;
    }
  }

  // Drain the read pipeline, then stop every consumer.
  while (!pending_reads.empty()) harvest_oldest_read();
  for (int i = 0; i < nsync(); ++i) {
    try {
      PI_Write(g_sync_ch[i], "%d", -1);
    } catch (const pilot::PilotError&) {
    }
  }
  for (int i = 0; i < nburst(); ++i) {
    try {
      double values[kBurstDoubles] = {};
      values[0] = -1.0;
      PI_Write(g_burst_ch[i], "%*lf", kBurstDoubles, values);
    } catch (const pilot::PilotError&) {
    }
  }
  try {
    PI_Write(g_trig, "%d", -1);
  } catch (const pilot::PilotError&) {
  }

  PI_StopMain(0);
  // Quiesced: the snapshot now covers every message of the point.
  g_master.snapshot_rc = PI_GetMetricsSnapshot(&g_master.snapshot);
  return 0;
}

// --- pure aggregation ------------------------------------------------------

simtime::SimTime sample_p99(std::vector<simtime::SimTime> v) {
  return benchkit::summarize_samples(std::move(v)).p99;
}

bool class_point_ok(const ClassPointResult& c, double slo_p99_us) {
  return c.route.count > 0 && c.route.p99_us <= slo_p99_us &&
         c.achieved_rps >= 0.95 * c.offered_rps;
}

double safe_rate(std::uint64_t count, simtime::SimTime span) {
  if (span <= 0) return 0;
  return static_cast<double>(count) / (simtime::to_us(span) * 1e-6);
}

RouteStats route_stats(const PI_METRIC_STAT& s) {
  RouteStats r;
  r.count = s.count;
  r.p50_us = simtime::to_us(s.p50_ns);
  r.p99_us = simtime::to_us(s.p99_ns);
  r.max_us = simtime::to_us(s.max_ns);
  return r;
}

}  // namespace

const char* class_name(int cls) { return kClassNames[cls]; }
int class_route_type(int cls) { return kClassRoute[cls]; }

void Config::finalize() {
  // Default SLOs: generous enough that the unsaturated half of the sweep
  // passes, tight enough that the saturated tail fails.  Calibrated
  // against the default topology (seed-1 p99 at the 12k point: sync 492,
  // burst 1573, read 127, spe_local 229, spe_remote 1278 us); sweeps with
  // different service costs should set their own.
  const double defaults[kClassCount] = {800, 2000, 400, 600, 2500};
  for (int c = 0; c < kClassCount; ++c) {
    if (cls[c].slo_p99_us <= 0) cls[c].slo_p99_us = defaults[c];
  }
  if (blades < 2) blades = 2;
  if (blades > kMaxBlades) blades = kMaxBlades;
  if (sinks_per_class < 1) sinks_per_class = 1;
  if (sinks_per_class > kMaxSinks) sinks_per_class = kMaxSinks;
  if (burst_size < 1) burst_size = 1;
  if (read_window < 1) read_window = 1;
}

WindowSplit split_window(const std::vector<Sample>& samples,
                         simtime::SimTime begin, simtime::SimTime end) {
  WindowSplit out;
  std::vector<simtime::SimTime> steady;
  std::vector<simtime::SimTime> degraded;
  const bool have_window = !(begin == 0 && end == 0);
  for (const Sample& s : samples) {
    if (have_window && s.completed_at >= begin && s.completed_at <= end) {
      degraded.push_back(s.sojourn);
    } else {
      steady.push_back(s.sojourn);
    }
  }
  out.steady_count = steady.size();
  out.degraded_count = degraded.size();
  out.steady_p99 = sample_p99(std::move(steady));
  out.degraded_p99 = sample_p99(std::move(degraded));
  return out;
}

double capacity_rps(const std::vector<PointResult>& points, int cls,
                    double slo_p99_us, double min_goodput) {
  double best = 0;
  for (const PointResult& p : points) {
    if (p.aborted) continue;
    const ClassPointResult& c = p.cls[cls];
    const bool ok = c.route.count > 0 && c.route.p99_us <= slo_p99_us &&
                    c.achieved_rps >= min_goodput * c.offered_rps;
    if (ok && p.load_rps > best) best = p.load_rps;
  }
  return best;
}

PointResult run_point(const Config& config, double load_rps) {
  Config cfg = config;
  cfg.finalize();
  g_cfg = &cfg;
  g_load_rps = load_rps;
  // Point seed: mix the run seed with the offered load so neighbouring
  // sweep points draw unrelated arrival streams.
  std::uint64_t mix = cfg.seed;
  (void)splitmix64(mix);
  mix ^= static_cast<std::uint64_t>(std::llround(load_rps));
  g_point_seed = splitmix64(mix);

  g_master = MasterState{};
  cellpilot::supervision::reset_counters();

  cluster::ClusterConfig cluster_cfg;
  for (int b = 0; b < cfg.blades; ++b) {
    cluster_cfg.nodes.push_back(cluster::NodeSpec::cell(1));
  }
  cluster::Cluster machine(std::move(cluster_cfg));

  cellpilot::RunOptions opts;
  if (!cfg.chaos_spec.empty()) {
    opts.args.push_back("-pifault=" + cfg.chaos_spec);
  }
  if (cfg.respawn_budget > 0) {
    opts.args.push_back("-pirespawn=" + std::to_string(cfg.respawn_budget));
  }
  if (!cfg.ckpt_path.empty()) {
    opts.args.push_back("-pickpt=" + cfg.ckpt_path);
    if (cfg.ckpt_every > 0) {
      opts.args.push_back("-pickptevery=" + std::to_string(cfg.ckpt_every));
    }
  }

  cellpilot::metrics::ScopedMetricsCapture capture;
  // The telemetry capture gives every point a virtual-time axis (windowed
  // goodput and queue depth) without arming a session or writing a file;
  // like the metrics capture it never perturbs virtual time.
  cellpilot::telemetry::ScopedTelemetryCapture telemetry_capture;
  const cellpilot::RunResult run = cellpilot::run(machine, lg_main, opts);

  PointResult out;
  out.load_rps = load_rps;
  out.aborted = run.aborted;
  out.abort_reason = run.abort_reason;
  out.failovers = cellpilot::supervision::failover_count();
  out.respawns = cellpilot::supervision::respawn_count();
  out.restores = cellpilot::supervision::restore_count();
  out.checkpoints = cellpilot::ckpt::CheckpointSession::global().committed_cut();
  out.recovered_ops = cellpilot::supervision::recovered_op_count();
  // Collapse the drained series into the point's two timelines: delivered
  // messages per window, and the deepest queue gauge per window.  Kept
  // even for aborted points — the timeline up to the abort is exactly the
  // diagnostic one wants.
  {
    namespace ts = simtime::timeseries;
    std::map<std::int64_t, std::int64_t> goodput;
    std::map<std::int64_t, std::int64_t> depth;
    for (const ts::Series& s : telemetry_capture.drain()) {
      for (const auto& [win, cell] : s.windows) {
        if (s.key.kind == ts::Kind::kDelivered) {
          goodput[win] += static_cast<std::int64_t>(cell.count);
        } else if (s.key.kind == ts::Kind::kMailboxDepth ||
                   s.key.kind == ts::Kind::kParkedOps ||
                   s.key.kind == ts::Kind::kNetWindow ||
                   s.key.kind == ts::Kind::kNetStash ||
                   s.key.kind == ts::Kind::kJournalLen) {
          depth[win] = std::max(depth[win], cell.max);
        }
      }
    }
    out.goodput_timeline.assign(goodput.begin(), goodput.end());
    out.depth_timeline.assign(depth.begin(), depth.end());
  }
  if (run.aborted) {
    g_cfg = nullptr;
    return out;
  }

  // The degraded window comes from the supervision layer's virtual-time
  // recovery span: the backlog built up during recovery drains for a while
  // after the last respawn/failover completes, hence the grace tail.
  if (cellpilot::supervision::recovery_end() > 0) {
    out.degraded_begin = cellpilot::supervision::recovery_begin();
    out.degraded_end = cellpilot::supervision::recovery_end() + kDegradeGrace;
  }

  const double horizon_sec = simtime::to_us(cfg.horizon) * 1e-6;
  const int master_of_class[kClassCount] = {kMSync, kMBurst, kMRead, -1, -1};
  for (int c = 0; c < kClassCount; ++c) {
    ClassPointResult& r = out.cls[c];
    const int route = class_route_type(c);
    if (g_master.snapshot_rc == 0) {
      r.route = route_stats(g_master.snapshot.msg_latency[route]);
    }
    const int m = master_of_class[c];
    if (m >= 0) {
      r.completed = g_master.completed[m];
      r.errors = g_master.errors[m];
      r.offered_msgs = r.completed + r.errors;
      r.achieved_rps =
          safe_rate(r.completed, g_master.last_complete[m] - g_master.t0);
      std::vector<simtime::SimTime> sojourns;
      sojourns.reserve(g_master.samples[m].size());
      for (const Sample& s : g_master.samples[m]) {
        sojourns.push_back(s.sojourn);
      }
      r.sojourn_p99_us = simtime::to_us(sample_p99(std::move(sojourns)));
      const WindowSplit split = split_window(
          g_master.samples[m], out.degraded_begin, out.degraded_end);
      r.steady_p99_us = simtime::to_us(split.steady_p99);
      r.degraded_p99_us = simtime::to_us(split.degraded_p99);
      r.degraded_samples = split.degraded_count;
    } else {
      // Self-paced SPE pairs: offered is the schedule, completion comes
      // from the reader-side counters.
      const bool local = c == static_cast<int>(Class::kSpeLocal);
      std::uint64_t offered = 0;
      std::uint64_t completed = 0;
      simtime::SimTime first_t0 = 0;
      simtime::SimTime last = 0;
      const int nblades = cfg.blades;
      for (int p = 0; p < 1 + (nblades - 1); ++p) {
        const bool p_local = p == 0;
        if (p_local != local) continue;
        offered += g_pair_schedule[p].size();
        completed += g_pair_reads[p].load(std::memory_order_acquire);
        const simtime::SimTime t0 =
            g_pair_t0[p].load(std::memory_order_acquire);
        if (first_t0 == 0 || (t0 != 0 && t0 < first_t0)) first_t0 = t0;
        last = std::max(last, g_pair_last[p].load(std::memory_order_acquire));
      }
      r.offered_msgs = offered;
      r.completed = completed;
      r.errors = offered - std::min(offered, completed);
      r.achieved_rps = safe_rate(completed, last - first_t0);
    }
    r.offered_rps = static_cast<double>(r.offered_msgs) / horizon_sec;
    r.slo_ok = class_point_ok(r, cfg.cls[c].slo_p99_us);
  }
  std::memcpy(&out.snapshot, &g_master.snapshot, sizeof out.snapshot);
  out.snapshot_rc = g_master.snapshot_rc;
  g_cfg = nullptr;
  return out;
}

SweepResult run_sweep(const Config& config) {
  Config cfg = config;
  cfg.finalize();
  SweepResult sweep;
  for (const double load : cfg.load_points_rps) {
    sweep.points.push_back(run_point(cfg, load));
  }
  for (int c = 0; c < kClassCount; ++c) {
    sweep.capacity_rps[c] =
        capacity_rps(sweep.points, c, cfg.cls[c].slo_p99_us);
  }
  return sweep;
}

namespace {

// Meta-key suffix for a load point: integral loads (the usual case) render
// without a decimal point so keys read "timeline_goodput_8000".
std::string format_load(double load_rps) {
  char buf[32];
  if (load_rps == std::floor(load_rps)) {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(load_rps));
  } else {
    std::snprintf(buf, sizeof buf, "%g", load_rps);
  }
  return buf;
}

// "win:value,win:value" — empty string when the point saw no samples.
std::string format_timeline(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& timeline) {
  std::string out;
  for (const auto& [win, value] : timeline) {
    if (!out.empty()) out.push_back(',');
    out += std::to_string(win);
    out.push_back(':');
    out += std::to_string(value);
  }
  return out;
}

}  // namespace

benchkit::BenchJson to_bench_json(const Config& config,
                                  const SweepResult& sweep) {
  Config cfg = config;
  cfg.finalize();
  benchkit::BenchJson json("loadgen");
  json.meta("seed", static_cast<std::int64_t>(cfg.seed));
  json.meta("blades", static_cast<std::int64_t>(cfg.blades));
  json.meta("sinks_per_class", static_cast<std::int64_t>(cfg.sinks_per_class));
  json.meta("horizon_ms", simtime::to_ms(cfg.horizon));
  json.meta("burst_size", static_cast<std::int64_t>(cfg.burst_size));
  json.meta("read_window", static_cast<std::int64_t>(cfg.read_window));
  json.meta("chaos", cfg.chaos_spec);
  json.meta("respawn_budget", static_cast<std::int64_t>(cfg.respawn_budget));
  json.meta("ckpt_every", static_cast<std::int64_t>(cfg.ckpt_every));
  std::uint64_t failovers = 0;
  std::uint64_t respawns = 0;
  std::uint64_t restores = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t recovered = 0;
  for (const PointResult& p : sweep.points) {
    failovers += p.failovers;
    respawns += p.respawns;
    restores += p.restores;
    checkpoints += p.checkpoints;
    recovered += p.recovered_ops;
  }
  json.meta("failovers", static_cast<std::int64_t>(failovers));
  json.meta("respawns", static_cast<std::int64_t>(respawns));
  json.meta("restores", static_cast<std::int64_t>(restores));
  json.meta("checkpoints", static_cast<std::int64_t>(checkpoints));
  json.meta("recovered_ops", static_cast<std::int64_t>(recovered));
  for (int c = 0; c < kClassCount; ++c) {
    json.meta(std::string("slo_") + class_name(c) + "_p99_us",
              cfg.cls[c].slo_p99_us);
  }
  for (int c = 0; c < kClassCount; ++c) {
    json.meta(std::string("capacity_") + class_name(c) + "_rps",
              sweep.capacity_rps[c]);
  }
  // The virtual-time axis under the curves: each point's windowed goodput
  // and peak-depth timelines ride in the meta block as compact
  // "win:value,win:value" strings keyed by offered load, with the window
  // length alongside so readers can recover absolute virtual time.
  json.meta("telemetry_window_ns",
            static_cast<std::int64_t>(simtime::timeseries::window()));
  for (const PointResult& p : sweep.points) {
    const std::string load = format_load(p.load_rps);
    json.meta("timeline_goodput_" + load,
              format_timeline(p.goodput_timeline));
    json.meta("timeline_depth_" + load, format_timeline(p.depth_timeline));
  }
  for (const PointResult& p : sweep.points) {
    if (p.aborted) {
      json.add_row()
          .set("load_rps", p.load_rps)
          .set("aborted", std::int64_t{1})
          .set("abort_reason", p.abort_reason);
      continue;
    }
    for (int c = 0; c < kClassCount; ++c) {
      const ClassPointResult& r = p.cls[c];
      json.add_row()
          .set("load_rps", p.load_rps)
          .set("class", std::string(class_name(c)))
          .set("route_type", static_cast<std::int64_t>(class_route_type(c)))
          .set("offered_msgs", static_cast<std::int64_t>(r.offered_msgs))
          .set("completed", static_cast<std::int64_t>(r.completed))
          .set("errors", static_cast<std::int64_t>(r.errors))
          .set("offered_rps", r.offered_rps)
          .set("achieved_rps", r.achieved_rps)
          .set("msg_count", static_cast<std::int64_t>(r.route.count))
          .set("p50_us", r.route.p50_us)
          .set("p99_us", r.route.p99_us)
          .set("max_us", r.route.max_us)
          .set("sojourn_p99_us", r.sojourn_p99_us)
          .set("steady_p99_us", r.steady_p99_us)
          .set("degraded_p99_us", r.degraded_p99_us)
          .set("degraded_samples",
               static_cast<std::int64_t>(r.degraded_samples))
          .set("slo_p99_us", cfg.cls[c].slo_p99_us)
          .set("slo_ok", static_cast<std::int64_t>(r.slo_ok ? 1 : 0));
    }
  }
  return json;
}

}  // namespace benchkit::loadgen
