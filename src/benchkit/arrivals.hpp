// arrivals.hpp — seeded open-loop arrival processes in virtual time.
//
// The load generator (bench/loadgen) is *open-loop*: request arrival
// instants are drawn up front from a Poisson process and do not depend on
// how fast the system under test completes them — the defining property
// that lets a latency-under-load sweep find the saturation knee instead of
// the generator politely slowing down with the system (the closed-loop
// "coordinated omission" failure mode).
//
// Everything here is deterministic per seed: the exponential interarrival
// gaps come from a splitmix64 stream through the inverse CDF, expressed in
// integer virtual nanoseconds.  No wall-clock randomness, no global state —
// two runs at the same seed produce byte-identical schedules, which is what
// makes BENCH_loadgen.json reproducible and slogate's baselines meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "simtime/sim_time.hpp"

namespace benchkit::arrivals {

/// The splitmix64 step (public domain; same generator the chaos sweep
/// uses).  Advances `state` and returns the next 64-bit value.
std::uint64_t splitmix64(std::uint64_t& state);

/// One seeded Poisson arrival stream: successive next_gap() calls return
/// exponentially distributed interarrival times with mean 1/rate, rounded
/// to integer virtual nanoseconds (minimum 1 ns so arrivals never tie into
/// a zero-length gap).
class PoissonStream {
 public:
  /// `rate_per_sec` is the offered arrival rate in events per *virtual*
  /// second; it must be positive.
  PoissonStream(std::uint64_t seed, double rate_per_sec);

  /// Next interarrival gap (>= 1 ns).
  simtime::SimTime next_gap();

  double rate_per_sec() const { return rate_per_sec_; }

 private:
  std::uint64_t state_;
  double rate_per_sec_;
  double mean_ns_;
};

/// One scheduled arrival of the merged timeline.
struct Arrival {
  simtime::SimTime at = 0;  ///< virtual instant, relative to stream start
  int cls = 0;              ///< index into the rates[] the schedule was built from
};

/// Builds the merged open-loop schedule for several request classes: each
/// class c draws its own PoissonStream (seeded from `seed` and c, so
/// distinct classes and distinct seeds give unrelated streams) at
/// rates_per_sec[c] until `horizon`, and the per-class timelines are
/// merged into one list ordered by (time, class).  A class with rate <= 0
/// contributes no arrivals.
std::vector<Arrival> merge_schedule(std::uint64_t seed,
                                    const std::vector<double>& rates_per_sec,
                                    simtime::SimTime horizon);

}  // namespace benchkit::arrivals
