// benchjson.hpp — machine-readable result emission for the bench binaries.
//
// Each reproduction binary prints a human table to stdout; alongside it, a
// BenchJson document collects the same numbers as one JSON object
//
//   { "bench": "<name>", "<meta>": ..., "rows": [ {..}, {..}, ... ] }
//
// written to a BENCH_<name>.json file so sweeps can be diffed, plotted and
// regression-tracked without scraping printf output.  The writer is
// deliberately tiny: flat rows of int/double/string values, insertion
// order preserved, no external dependency.
//
// The matching reader lives here too (Doc/parse/get_number/get_string):
// it handles exactly the subset the writer emits — one flat meta object
// plus a "rows" array of flat objects, scalar values only — and reports
// malformed input with a byte offset instead of crashing.  tools/slogate
// and tools/ckptinspect both consume it; keeping writer and reader in one
// translation unit is what stops the two ends of the format drifting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace benchkit {

/// One scalar cell of a result row (or a top-level metadata field).
using JsonScalar = std::variant<std::int64_t, double, std::string>;

/// An ordered list of key/value pairs — one benchmark result row.
class JsonRow {
 public:
  JsonRow& set(std::string key, std::int64_t value);
  JsonRow& set(std::string key, double value);
  JsonRow& set(std::string key, std::string value);

  const std::vector<std::pair<std::string, JsonScalar>>& fields() const {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, JsonScalar>> fields_;
};

/// A benchmark result document: metadata fields plus a "rows" array.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name);

  /// Adds a top-level metadata field (e.g. reps, unit).
  BenchJson& meta(std::string key, std::int64_t value);
  BenchJson& meta(std::string key, double value);
  BenchJson& meta(std::string key, std::string value);

  /// Appends a result row and returns it for chained set() calls.
  JsonRow& add_row();

  /// Serializes the document (pretty-printed, stable field order).
  std::string to_string() const;

  /// Writes to `path` and prints a one-line note to **stderr** (stdout is
  /// reserved for the human table, which must stay byte-identical).
  /// Returns false if the file could not be written.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, JsonScalar>> meta_;
  std::vector<JsonRow> rows_;
};

// --- the matching reader -------------------------------------------------

/// One parsed scalar: JSON numbers become double (exact for the int64
/// counts the writer emits up to 2^53), strings stay strings, null marks
/// the "non-finite double" hole BenchJson leaves.
using Scalar = std::variant<double, std::string, std::nullptr_t>;

/// A flat key/value object (meta block, or one row).
using Fields = std::vector<std::pair<std::string, Scalar>>;

/// A parsed benchjson document.
struct Doc {
  Fields meta;
  std::vector<Fields> rows;
};

/// Parses the benchjson subset.  Returns false and fills `error` (with a
/// byte offset) on malformed input.
bool parse(const std::string& text, Doc* out, std::string* error);

/// Field lookup helpers; return false when the key is absent or the value
/// has the wrong shape.
bool get_number(const Fields& fields, const std::string& key, double* out);
bool get_string(const Fields& fields, const std::string& key,
                std::string* out);

/// Parses one line-oriented JSON object — a Chrome-trace event line as
/// written by core/trace, or one record line of a metrics/telemetry
/// report.  Same scanner as parse(), with two line-format allowances:
/// one level of nested objects is flattened into dotted keys
/// ("args":{"entity":...} -> "args.entity"), and a trailing JSON-array
/// comma after the object is accepted and ignored.  Returns false and
/// fills `error` (with a byte offset) on malformed input.
bool parse_object_line(const std::string& line, Fields* out,
                       std::string* error);

/// Recovers the exact virtual nanoseconds behind a trace timestamp field
/// ("ts"/"dur": microseconds with exactly three decimals).  Exact as long
/// as the value is below ~2^42 us (half a century of virtual time): the
/// decimal-to-double error is then under half a nanosecond, so rounding
/// lands on the original integer.
std::int64_t ns_from_us(double us);

}  // namespace benchkit
