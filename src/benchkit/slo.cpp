#include "benchkit/slo.hpp"

#include <cmath>
#include <cstdio>
#include <variant>

namespace benchkit::slo {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// The candidate row matching a baseline row: same load_rps and class.
const Fields* find_row(const Doc& doc, double load_rps,
                       const std::string& cls) {
  for (const Fields& row : doc.rows) {
    double l = 0;
    std::string c;
    if (get_number(row, "load_rps", &l) && get_string(row, "class", &c) &&
        l == load_rps && c == cls) {
      return &row;
    }
  }
  return nullptr;
}

struct Gate {
  GateResult out;

  void issue(const std::string& where, const std::string& message) {
    out.ok = false;
    out.issues.push_back({where, message});
  }

  /// One-sided "must not grow" check: candidate <= base * (1+frac) + floor.
  void check_ceiling(const std::string& where, const std::string& key,
                     double base, double cand, double frac, double floor) {
    const double limit = base * (1.0 + frac) + floor;
    if (cand > limit) {
      issue(where, key + " " + fmt(base) + " -> " + fmt(cand) +
                       " exceeds limit " + fmt(limit) + " (+" +
                       fmt(frac * 100) + "% +" + fmt(floor) + ")");
    }
  }

  /// One-sided "must not shrink" check: candidate >= base * (1-frac).
  void check_floor(const std::string& where, const std::string& key,
                   double base, double cand, double frac) {
    const double limit = base * (1.0 - frac);
    if (cand < limit) {
      issue(where, key + " " + fmt(base) + " -> " + fmt(cand) +
                       " below limit " + fmt(limit) + " (-" +
                       fmt(frac * 100) + "%)");
    }
  }
};

}  // namespace

GateResult gate(const Doc& baseline, const Doc& candidate,
                const Tolerances& tol) {
  Gate g;

  // Every baseline (load point, class) row must still exist and hold its
  // latency and throughput lines.
  for (const Fields& base : baseline.rows) {
    double load = 0;
    std::string cls;
    if (!get_number(base, "load_rps", &load) ||
        !get_string(base, "class", &cls)) {
      continue;  // aborted-point rows carry no class; nothing to gate
    }
    const std::string where = "load=" + fmt(load) + " class=" + cls;
    const Fields* cand = find_row(candidate, load, cls);
    if (cand == nullptr) {
      g.issue(where, "row missing from candidate run");
      continue;
    }
    double bv = 0;
    double cv = 0;
    if (get_number(base, "p99_us", &bv) && bv > 0) {
      if (!get_number(*cand, "p99_us", &cv)) {
        g.issue(where, "candidate lacks p99_us");
      } else {
        g.check_ceiling(where, "p99_us", bv, cv, tol.p99_frac,
                        tol.p99_floor_us);
      }
    }
    if (get_number(base, "achieved_rps", &bv) && bv > 0 &&
        get_number(*cand, "achieved_rps", &cv)) {
      g.check_floor(where, "achieved_rps", bv, cv, tol.rate_frac);
    }
    // Chaos runs: the degraded-window p99 is a gated number too, with its
    // own (wider) tolerance.  The window placement depends on when the
    // supervisor's counters were observed, so compare only when both runs
    // actually captured degraded samples.
    double base_deg_n = 0;
    double cand_deg_n = 0;
    if (get_number(base, "degraded_samples", &base_deg_n) && base_deg_n > 0) {
      if (get_number(*cand, "degraded_samples", &cand_deg_n) &&
          cand_deg_n > 0) {
        if (get_number(base, "degraded_p99_us", &bv) && bv > 0 &&
            get_number(*cand, "degraded_p99_us", &cv)) {
          g.check_ceiling(where, "degraded_p99_us", bv, cv,
                          tol.degraded_frac, tol.p99_floor_us);
        }
      } else {
        g.out.notes.push_back(where +
                              ": baseline saw degraded samples, candidate "
                              "did not (recovery landed outside the mix)");
      }
    }
  }

  // Capacity meta: the headline number each class sweeps toward.
  for (const auto& [key, value] : baseline.meta) {
    if (key.rfind("capacity_", 0) != 0) continue;
    const double* base_cap = std::get_if<double>(&value);
    if (base_cap == nullptr || *base_cap <= 0) continue;
    double cand_cap = 0;
    if (!get_number(candidate.meta, key, &cand_cap)) {
      g.issue("meta", key + " missing from candidate run");
      continue;
    }
    g.check_floor("meta", key, *base_cap, cand_cap, tol.capacity_frac);
  }

  // Recovery meta: a chaos baseline that exercised failover/respawn must
  // keep exercising it, or the chaos point silently stopped testing
  // anything.
  for (const char* key : {"failovers", "respawns"}) {
    double bv = 0;
    double cv = 0;
    if (get_number(baseline.meta, key, &bv) && bv > 0) {
      if (!get_number(candidate.meta, key, &cv) || cv <= 0) {
        g.issue("meta", std::string(key) + " dropped to zero (baseline " +
                            fmt(bv) + "): fault cocktail no longer fires");
      }
    }
  }

  if (candidate.rows.size() > baseline.rows.size()) {
    g.out.notes.push_back(
        "candidate has " +
        std::to_string(candidate.rows.size() - baseline.rows.size()) +
        " extra row(s) not gated (baseline predates them)");
  }
  return g.out;
}

}  // namespace benchkit::slo
