// loadgen.hpp — the open-loop traffic generator behind bench/loadgen.
//
// One run_point() drives a seeded Poisson request mix over a simulated
// cluster (blades x SPEs) at a fixed offered load and harvests
// latency-under-load numbers; run_sweep() walks a list of offered loads
// until past saturation and computes, per route class, the *capacity* —
// the highest offered load that still met the class SLO.
//
// The request mix spans the whole Table I route matrix, one class per
// route type, so the per-route histograms of PI_GetMetricsSnapshot give
// each class its own p50/p99 without any generator-side estimation:
//
//   class        route  traffic
//   sync_write     2    master's blocking PI_Write of a control int to
//                       local sink SPEs (round-robin)
//   async_burst    3    master's PI_WriteAsync bursts of halo-style double
//                       arrays to remote sink SPEs, harvested PI_WaitAny
//   read           1    request/response with a remote responder rank: a
//                       trigger write, then the response via PI_ReadAsync
//                       harvested FIFO (read-dominated master)
//   spe_local      4    self-paced SPE writer -> SPE reader on the master
//                       blade (each writer runs its own Poisson stream in
//                       its own virtual clock)
//   spe_remote     5    the same pair split across blades
//
// Determinism: all master-side harvests are either settled-at-submission
// writes (PI_WaitAny then picks the lowest index) or blocking FIFO
// PI_Wait on a specific handle, so the master's virtual clock walks a
// schedule that depends only on the seed — two runs of the same point
// produce a byte-identical BENCH_loadgen.json and metrics snapshot
// (loadgen_determinism_test enforces it).
//
// Chaos mode: a fault cocktail (core/faultplan spec) plus an optional
// respawn budget runs the same mix through Co-Pilot failover / SPE
// respawn.  The *degraded window* is the supervision layer's virtual-time
// recovery span (supervision::recovery_begin/end, plus a drain grace);
// samples completing inside it report their p99 separately from steady
// state, so "p99 during failover" is a tracked number — and because the
// span lives on the virtual timeline, chaos runs are just as
// byte-identical per seed as clean ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchkit/benchjson.hpp"
#include "pilot/pilot.hpp"
#include "simtime/sim_time.hpp"

namespace benchkit::loadgen {

/// Request classes, one per Table I route type.
enum class Class : int {
  kSyncWrite = 0,   ///< type 2: PPE -> local SPE, blocking writes
  kAsyncBurst = 1,  ///< type 3: PPE -> remote SPE, PI_WriteAsync bursts
  kRead = 2,        ///< type 1: PPE <-> remote PPE request/response
  kSpeLocal = 3,    ///< type 4: SPE -> SPE, same blade, self-paced
  kSpeRemote = 4,   ///< type 5: SPE -> SPE, cross-blade, self-paced
};
inline constexpr int kClassCount = 5;

/// Stable row label ("sync_write", ...).
const char* class_name(int cls);

/// The Table I route type the class exercises (1..5).
int class_route_type(int cls);

/// Per-class generator settings.
struct ClassConfig {
  double weight = 0.2;       ///< share of the total offered message rate
  double slo_p99_us = 2000;  ///< the SLO: route p99 must stay under this
};

/// One generator configuration (a topology plus a request mix).
struct Config {
  std::uint64_t seed = 1;
  int blades = 2;           ///< Cell blades; blade 0 hosts the master
  int sinks_per_class = 2;  ///< sync and burst sink SPE fan-out
  simtime::SimTime horizon = simtime::ms(40);  ///< arrival window per point
  /// Offered total message rates to sweep.  The master thread serializes
  /// the three PPE-driven classes, which puts the knee near ~20k msg/s on
  /// the default topology — the tail of this list is intentionally past
  /// saturation so the capacity line means something.
  std::vector<double> load_points_rps = {4000,  8000,  12000,
                                         16000, 20000, 26000};
  ClassConfig cls[kClassCount] = {
      {0.30, 0},  // sync_write   (SLO defaults set in loadgen.cpp)
      {0.30, 0},  // async_burst
      {0.20, 0},  // read
      {0.10, 0},  // spe_local
      {0.10, 0},  // spe_remote
  };
  int burst_size = 4;  ///< writes per async_burst arrival
  /// In-flight response reads before the FIFO harvest blocks.  Default 1:
  /// async completions stamp read-end when PI_Wait harvests them, so a
  /// response parked in a never-full window would record harvest latency,
  /// not system latency.  Raise only to measure the pipelined-harvest
  /// discipline itself.
  int read_window = 1;
  std::string chaos_spec;   ///< -pifault= cocktail; empty = clean run
  int respawn_budget = 0;   ///< -pirespawn=N when > 0
  std::string ckpt_path;    ///< -pickpt=FILE when set (arms checkpoints)
  int ckpt_every = 0;       ///< -pickptevery=N when > 0
  /// Per-message service cost modelled at the consumers (the knob that
  /// fixes where saturation sits).
  simtime::SimTime sink_service = simtime::us(60);
  simtime::SimTime responder_service = simtime::us(30);
  simtime::SimTime pair_service = simtime::us(80);

  /// Applies the default per-class SLOs for any cls[].slo_p99_us left 0.
  void finalize();
};

/// A compact percentile read-out (virtual time, from the metrics layer).
struct RouteStats {
  std::uint64_t count = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

/// Per-class outcome of one load point.
struct ClassPointResult {
  std::uint64_t offered_msgs = 0;  ///< scheduled arrivals (messages)
  std::uint64_t completed = 0;     ///< harvested without error
  std::uint64_t errors = 0;        ///< ops that surfaced a peer failure
  double offered_rps = 0;
  double achieved_rps = 0;   ///< completed / (last completion - start)
  RouteStats route;          ///< msg_latency[route type] of the snapshot
  double sojourn_p99_us = 0; ///< intended arrival -> completion (master
                             ///< classes; 0 for the self-paced SPE pairs)
  double steady_p99_us = 0;    ///< sojourn p99 outside the degraded window
  double degraded_p99_us = 0;  ///< sojourn p99 inside it (chaos runs)
  std::uint64_t degraded_samples = 0;
  bool slo_ok = false;
};

/// Outcome of one load point.
struct PointResult {
  double load_rps = 0;  ///< total offered message rate
  ClassPointResult cls[kClassCount];
  std::uint64_t failovers = 0;
  std::uint64_t respawns = 0;
  std::uint64_t restores = 0;     ///< blade restores from a checkpoint
  std::uint64_t checkpoints = 0;  ///< committed cut ordinal (0 = none)
  std::uint64_t recovered_ops = 0;
  simtime::SimTime degraded_begin = 0;  ///< 0,0 = no degraded window seen
  simtime::SimTime degraded_end = 0;
  /// The raw per-route metrics snapshot the master harvested after
  /// PI_StopMain (POD — the determinism test memcmp()s it across runs).
  PI_METRICS_SNAPSHOT snapshot = {};
  int snapshot_rc = -1;
  bool aborted = false;
  std::string abort_reason;
  /// Virtual-time axis under the point's curves, from the telemetry layer:
  /// (window index, delivered messages) and (window index, peak queue
  /// depth — max over mailbox/parked/net-window/net-stash/journal gauges).
  /// Only populated windows appear; the window length rides in the sweep's
  /// JSON meta.
  std::vector<std::pair<std::int64_t, std::int64_t>> goodput_timeline;
  std::vector<std::pair<std::int64_t, std::int64_t>> depth_timeline;
};

/// Runs one load point (one cellpilot::run over a fresh cluster).
PointResult run_point(const Config& config, double load_rps);

/// The whole sweep plus the capacity line it supports.
struct SweepResult {
  std::vector<PointResult> points;
  /// Highest offered load (rps) whose point met the class SLO *and*
  /// sustained its offered rate; 0 when no point qualified.
  double capacity_rps[kClassCount] = {};
};

/// Runs every configured load point and computes per-class capacities.
SweepResult run_sweep(const Config& config);

/// Renders the sweep as the BENCH_loadgen.json document: one row per
/// (load point, class), capacities and SLOs in the meta block.
benchkit::BenchJson to_bench_json(const Config& config,
                                  const SweepResult& sweep);

// --- pure helpers (unit-tested directly) ---------------------------------

/// One completion sample: when it finished, and how long it took from its
/// *intended* arrival instant (the open-loop sojourn).
struct Sample {
  simtime::SimTime completed_at = 0;
  simtime::SimTime sojourn = 0;
};

/// Splits samples around a degraded window [begin, end] (inclusive) and
/// reports nearest-rank p99 of each side.  A zero-width window at 0 means
/// "no degraded phase": everything is steady.
struct WindowSplit {
  std::uint64_t steady_count = 0;
  std::uint64_t degraded_count = 0;
  simtime::SimTime steady_p99 = 0;
  simtime::SimTime degraded_p99 = 0;
};
WindowSplit split_window(const std::vector<Sample>& samples,
                         simtime::SimTime begin, simtime::SimTime end);

/// The capacity rule: highest load_rps whose point kept the class p99
/// under the SLO and achieved at least `min_goodput` of the offered class
/// rate.  Returns 0 when no point qualifies.
double capacity_rps(const std::vector<PointResult>& points, int cls,
                    double slo_p99_us, double min_goodput = 0.95);

}  // namespace benchkit::loadgen
