#include "benchkit/pingpong.hpp"

#include <atomic>
#include <vector>

#include "baseline/handcoded.hpp"
#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"
#include "pilot/context.hpp"

namespace benchkit {

const char* to_string(Method m) {
  switch (m) {
    case Method::kCellPilot: return "CellPilot";
    case Method::kDma: return "DMA";
    case Method::kCopy: return "Copy";
  }
  return "?";
}

namespace {

using cellpilot::ChannelType;
using simtime::SimTime;

// Harness state shared by the app's processes (set before each run).
PingPongSpec g_spec;
PI_CHANNEL* g_fwd = nullptr;
PI_CHANNEL* g_rev = nullptr;
PI_PROCESS* g_spe_initiator = nullptr;
PI_PROCESS* g_spe_responder = nullptr;
std::atomic<SimTime> g_elapsed{0};

void bounce_write_read(std::vector<std::byte>& buf) {
  PI_Write(g_fwd, "%*b", static_cast<int>(g_spec.bytes), buf.data());
  PI_Read(g_rev, "%*b", static_cast<int>(g_spec.bytes), buf.data());
}

void bounce_read_write(std::vector<std::byte>& buf) {
  PI_Read(g_fwd, "%*b", static_cast<int>(g_spec.bytes), buf.data());
  PI_Write(g_rev, "%*b", static_cast<int>(g_spec.bytes), buf.data());
}

PI_SPE_PROGRAM_SIZED(pp_spe_responder, 2048) {
  std::vector<std::byte> buf(g_spec.bytes);
  for (int i = 0; i < g_spec.reps; ++i) bounce_read_write(buf);
  return 0;
}

PI_SPE_PROGRAM_SIZED(pp_spe_initiator, 2048) {
  std::vector<std::byte> buf(g_spec.bytes);
  simtime::VirtualClock& clk = cellsim::spu::self().clock();
  const SimTime start = clk.now();
  for (int i = 0; i < g_spec.reps; ++i) bounce_write_read(buf);
  g_elapsed.store(clk.now() - start);
  return 0;
}

int pp_rank_responder(int /*index*/, void* /*arg*/) {
  std::vector<std::byte> buf(g_spec.bytes);
  for (int i = 0; i < g_spec.reps; ++i) bounce_read_write(buf);
  return 0;
}

int pp_rank_parent(int /*index*/, void* /*arg*/) {
  PI_RunSPE(g_spe_responder, 0, nullptr);
  return 0;
}

/// Timed initiator loop on PI_MAIN (types 1-3).
void main_initiator_loop() {
  std::vector<std::byte> buf(g_spec.bytes);
  simtime::VirtualClock& clk = pilot::context().mpi().clock();
  const SimTime start = clk.now();
  for (int i = 0; i < g_spec.reps; ++i) bounce_write_read(buf);
  g_elapsed.store(clk.now() - start);
}

int pp_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);

  switch (g_spec.type) {
    case ChannelType::kType1: {
      PI_PROCESS* p1 = PI_CreateProcess(pp_rank_responder, 0, nullptr);
      g_fwd = PI_CreateChannel(PI_MAIN, p1);
      g_rev = PI_CreateChannel(p1, PI_MAIN);
      PI_StartAll();
      main_initiator_loop();
      break;
    }
    case ChannelType::kType2: {
      g_spe_responder = PI_CreateSPE(pp_spe_responder, PI_MAIN, 0);
      g_fwd = PI_CreateChannel(PI_MAIN, g_spe_responder);
      g_rev = PI_CreateChannel(g_spe_responder, PI_MAIN);
      PI_StartAll();
      PI_RunSPE(g_spe_responder, 0, nullptr);
      main_initiator_loop();
      break;
    }
    case ChannelType::kType3: {
      PI_PROCESS* p1 = PI_CreateProcess(pp_rank_parent, 0, nullptr);
      g_spe_responder = PI_CreateSPE(pp_spe_responder, p1, 0);
      g_fwd = PI_CreateChannel(PI_MAIN, g_spe_responder);
      g_rev = PI_CreateChannel(g_spe_responder, PI_MAIN);
      PI_StartAll();
      main_initiator_loop();
      break;
    }
    case ChannelType::kType4: {
      g_spe_initiator = PI_CreateSPE(pp_spe_initiator, PI_MAIN, 0);
      g_spe_responder = PI_CreateSPE(pp_spe_responder, PI_MAIN, 1);
      g_fwd = PI_CreateChannel(g_spe_initiator, g_spe_responder);
      g_rev = PI_CreateChannel(g_spe_responder, g_spe_initiator);
      PI_StartAll();
      PI_RunSPE(g_spe_initiator, 0, nullptr);
      PI_RunSPE(g_spe_responder, 0, nullptr);
      break;
    }
    case ChannelType::kType5: {
      PI_PROCESS* p1 = PI_CreateProcess(pp_rank_parent, 0, nullptr);
      g_spe_initiator = PI_CreateSPE(pp_spe_initiator, PI_MAIN, 0);
      g_spe_responder = PI_CreateSPE(pp_spe_responder, p1, 0);
      g_fwd = PI_CreateChannel(g_spe_initiator, g_spe_responder);
      g_rev = PI_CreateChannel(g_spe_responder, g_spe_initiator);
      PI_StartAll();
      PI_RunSPE(g_spe_initiator, 0, nullptr);
      break;
    }
  }
  PI_StopMain(0);
  return 0;
}

cluster::ClusterConfig cluster_for(ChannelType type,
                                   const simtime::CostModel& cost) {
  cluster::ClusterConfig config;
  const bool two_nodes = type == ChannelType::kType1 ||
                         type == ChannelType::kType3 ||
                         type == ChannelType::kType5;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  if (two_nodes) config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.cost = cost;
  return config;
}

SimTime cellpilot_pingpong(const PingPongSpec& spec,
                           const simtime::CostModel& cost) {
  g_spec = spec;
  g_elapsed.store(0);
  cluster::Cluster machine(cluster_for(spec.type, cost));
  const cellpilot::RunResult result = cellpilot::run(machine, pp_main);
  if (result.aborted) {
    throw std::runtime_error("pingpong run aborted: " + result.abort_reason);
  }
  return g_elapsed.load() / (2 * spec.reps);
}

}  // namespace

SimTime pingpong(const PingPongSpec& spec, Method method,
                 const simtime::CostModel& cost) {
  switch (method) {
    case Method::kCellPilot:
      return cellpilot_pingpong(spec, cost);
    case Method::kDma:
      return baseline::dma_pingpong(spec.type, spec.bytes, spec.reps, cost);
    case Method::kCopy:
      return baseline::copy_pingpong(spec.type, spec.bytes, spec.reps, cost);
  }
  return 0;
}

double pingpong_us(const PingPongSpec& spec, Method method,
                   const simtime::CostModel& cost) {
  return simtime::to_us(pingpong(spec, method, cost));
}

double throughput_mbps(const PingPongSpec& spec, Method method,
                       const simtime::CostModel& cost) {
  const SimTime one_way = pingpong(spec, method, cost);
  if (one_way <= 0) return 0.0;
  const double seconds = static_cast<double>(one_way) / 1e9;
  return static_cast<double>(spec.bytes) / 1e6 / seconds;
}

}  // namespace benchkit
