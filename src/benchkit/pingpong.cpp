#include "benchkit/pingpong.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "baseline/handcoded.hpp"
#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"
#include "pilot/context.hpp"

namespace benchkit {

const char* to_string(Method m) {
  switch (m) {
    case Method::kCellPilot: return "CellPilot";
    case Method::kDma: return "DMA";
    case Method::kCopy: return "Copy";
  }
  return "?";
}

namespace {

using cellpilot::ChannelType;
using simtime::SimTime;

/// Per-run harness context, threaded through every process of the app —
/// rank processes receive it via their void* argument, SPE bodies via
/// PI_RunSPE's ptr argument — so the measurement binaries are re-entrant
/// and several PingPong configurations can coexist in one process.
struct Harness {
  PingPongSpec spec;
  PI_CHANNEL* fwd = nullptr;
  PI_CHANNEL* rev = nullptr;
  PI_PROCESS* spe_initiator = nullptr;
  PI_PROCESS* spe_responder = nullptr;
  std::atomic<SimTime> elapsed{0};
  /// Per-rep one-way samples ((round-trip)/2), appended by the initiator
  /// thread from clock reads only and consumed after cellpilot::run joins
  /// every thread.  Host-side bookkeeping: virtual time never moves.
  std::vector<SimTime> samples;
};

void sample_rep(Harness& h, SimTime* prev, SimTime now) {
  h.samples.push_back((now - *prev) / 2);
  *prev = now;
}

void bounce_write_read(Harness& h, std::vector<std::byte>& buf) {
  PI_Write(h.fwd, "%*b", static_cast<int>(h.spec.bytes), buf.data());
  PI_Read(h.rev, "%*b", static_cast<int>(h.spec.bytes), buf.data());
}

void bounce_read_write(Harness& h, std::vector<std::byte>& buf) {
  PI_Read(h.fwd, "%*b", static_cast<int>(h.spec.bytes), buf.data());
  PI_Write(h.rev, "%*b", static_cast<int>(h.spec.bytes), buf.data());
}

PI_SPE_PROGRAM_SIZED(pp_spe_responder, 2048) {
  Harness& h = *static_cast<Harness*>(arg2);
  std::vector<std::byte> buf(h.spec.bytes);
  for (int i = 0; i < h.spec.reps; ++i) bounce_read_write(h, buf);
  return 0;
}

PI_SPE_PROGRAM_SIZED(pp_spe_initiator, 2048) {
  Harness& h = *static_cast<Harness*>(arg2);
  std::vector<std::byte> buf(h.spec.bytes);
  simtime::VirtualClock& clk = cellsim::spu::self().clock();
  const SimTime start = clk.now();
  SimTime prev = start;
  for (int i = 0; i < h.spec.reps; ++i) {
    bounce_write_read(h, buf);
    sample_rep(h, &prev, clk.now());
  }
  h.elapsed.store(clk.now() - start);
  return 0;
}

int pp_rank_responder(int /*index*/, void* arg) {
  Harness& h = *static_cast<Harness*>(arg);
  std::vector<std::byte> buf(h.spec.bytes);
  for (int i = 0; i < h.spec.reps; ++i) bounce_read_write(h, buf);
  return 0;
}

int pp_rank_parent(int /*index*/, void* arg) {
  Harness& h = *static_cast<Harness*>(arg);
  PI_RunSPE(h.spe_responder, 0, &h);
  return 0;
}

/// Timed initiator loop on PI_MAIN (types 1-3).
void main_initiator_loop(Harness& h) {
  std::vector<std::byte> buf(h.spec.bytes);
  simtime::VirtualClock& clk = pilot::context().mpi().clock();
  const SimTime start = clk.now();
  SimTime prev = start;
  for (int i = 0; i < h.spec.reps; ++i) {
    bounce_write_read(h, buf);
    sample_rep(h, &prev, clk.now());
  }
  h.elapsed.store(clk.now() - start);
}

int pp_main(Harness& h, int argc, char** argv) {
  PI_Configure(&argc, &argv);

  switch (h.spec.type) {
    case ChannelType::kType1: {
      PI_PROCESS* p1 = PI_CreateProcess(pp_rank_responder, 0, &h);
      h.fwd = PI_CreateChannel(PI_MAIN, p1);
      h.rev = PI_CreateChannel(p1, PI_MAIN);
      PI_StartAll();
      main_initiator_loop(h);
      break;
    }
    case ChannelType::kType2: {
      h.spe_responder = PI_CreateSPE(pp_spe_responder, PI_MAIN, 0);
      h.fwd = PI_CreateChannel(PI_MAIN, h.spe_responder);
      h.rev = PI_CreateChannel(h.spe_responder, PI_MAIN);
      PI_StartAll();
      PI_RunSPE(h.spe_responder, 0, &h);
      main_initiator_loop(h);
      break;
    }
    case ChannelType::kType3: {
      PI_PROCESS* p1 = PI_CreateProcess(pp_rank_parent, 0, &h);
      h.spe_responder = PI_CreateSPE(pp_spe_responder, p1, 0);
      h.fwd = PI_CreateChannel(PI_MAIN, h.spe_responder);
      h.rev = PI_CreateChannel(h.spe_responder, PI_MAIN);
      PI_StartAll();
      main_initiator_loop(h);
      break;
    }
    case ChannelType::kType4: {
      h.spe_initiator = PI_CreateSPE(pp_spe_initiator, PI_MAIN, 0);
      h.spe_responder = PI_CreateSPE(pp_spe_responder, PI_MAIN, 1);
      h.fwd = PI_CreateChannel(h.spe_initiator, h.spe_responder);
      h.rev = PI_CreateChannel(h.spe_responder, h.spe_initiator);
      PI_StartAll();
      PI_RunSPE(h.spe_initiator, 0, &h);
      PI_RunSPE(h.spe_responder, 0, &h);
      break;
    }
    case ChannelType::kType5: {
      PI_PROCESS* p1 = PI_CreateProcess(pp_rank_parent, 0, &h);
      h.spe_initiator = PI_CreateSPE(pp_spe_initiator, PI_MAIN, 0);
      h.spe_responder = PI_CreateSPE(pp_spe_responder, p1, 0);
      h.fwd = PI_CreateChannel(h.spe_initiator, h.spe_responder);
      h.rev = PI_CreateChannel(h.spe_responder, h.spe_initiator);
      PI_StartAll();
      PI_RunSPE(h.spe_initiator, 0, &h);
      break;
    }
  }
  PI_StopMain(0);
  return 0;
}

cluster::ClusterConfig cluster_for(ChannelType type,
                                   const simtime::CostModel& cost) {
  cluster::ClusterConfig config;
  const bool two_nodes = type == ChannelType::kType1 ||
                         type == ChannelType::kType3 ||
                         type == ChannelType::kType5;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  if (two_nodes) config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.cost = cost;
  return config;
}

/// Nearest-rank percentile over an already-sorted sample list.
SimTime nearest_rank(const std::vector<SimTime>& sorted, int p) {
  const std::size_t n = sorted.size();
  std::size_t rank = (n * static_cast<std::size_t>(p) + 99) / 100;
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

PingPongStats cellpilot_pingpong_stats(const PingPongSpec& spec,
                                       const simtime::CostModel& cost) {
  Harness h;
  h.spec = spec;
  h.samples.reserve(static_cast<std::size_t>(spec.reps));
  cluster::Cluster machine(cluster_for(spec.type, cost));
  const cellpilot::RunResult result = cellpilot::run(
      machine, [&h](int argc, char** argv) { return pp_main(h, argc, argv); });
  if (result.aborted) {
    throw std::runtime_error("pingpong run aborted: " + result.abort_reason);
  }
  PingPongStats stats;
  stats.one_way = h.elapsed.load() / (2 * spec.reps);
  if (h.samples.empty()) {
    stats.p50 = stats.p99 = stats.one_way;
  } else {
    std::sort(h.samples.begin(), h.samples.end());
    stats.p50 = nearest_rank(h.samples, 50);
    stats.p99 = nearest_rank(h.samples, 99);
  }
  return stats;
}

SimTime cellpilot_pingpong(const PingPongSpec& spec,
                           const simtime::CostModel& cost) {
  return cellpilot_pingpong_stats(spec, cost).one_way;
}

}  // namespace

SimTime pingpong(const PingPongSpec& spec, Method method,
                 const simtime::CostModel& cost) {
  switch (method) {
    case Method::kCellPilot:
      return cellpilot_pingpong(spec, cost);
    case Method::kDma:
      return baseline::dma_pingpong(spec.type, spec.bytes, spec.reps, cost);
    case Method::kCopy:
      return baseline::copy_pingpong(spec.type, spec.bytes, spec.reps, cost);
  }
  return 0;
}

PingPongStats pingpong_stats(const PingPongSpec& spec, Method method,
                             const simtime::CostModel& cost) {
  if (method == Method::kCellPilot) {
    return cellpilot_pingpong_stats(spec, cost);
  }
  // The hand-coded baselines charge identical closed-form costs every rep,
  // so the distribution is a point mass at the mean.
  PingPongStats stats;
  stats.one_way = pingpong(spec, method, cost);
  stats.p50 = stats.p99 = stats.one_way;
  return stats;
}

SampleStats summarize_samples(std::vector<SimTime> samples) {
  SampleStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.p50 = nearest_rank(samples, 50);
  stats.p99 = nearest_rank(samples, 99);
  return stats;
}

double pingpong_us(const PingPongSpec& spec, Method method,
                   const simtime::CostModel& cost) {
  return simtime::to_us(pingpong(spec, method, cost));
}

double throughput_mbps(const PingPongSpec& spec, Method method,
                       const simtime::CostModel& cost) {
  const SimTime one_way = pingpong(spec, method, cost);
  if (one_way <= 0) return 0.0;
  const double seconds = static_cast<double>(one_way) / 1e9;
  return static_cast<double>(spec.bytes) / 1e6 / seconds;
}

}  // namespace benchkit
