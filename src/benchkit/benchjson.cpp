#include "benchkit/benchjson.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace benchkit {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_scalar(std::string& out, const JsonScalar& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    if (std::isfinite(*d)) {
      char buf[32];
      // %.17g round-trips every double, so the JSON is as exact as the
      // virtual-time arithmetic that produced it.
      std::snprintf(buf, sizeof buf, "%.17g", *d);
      out += buf;
    } else {
      out += "null";  // JSON has no NaN/Inf
    }
  } else {
    append_escaped(out, std::get<std::string>(v));
  }
}

}  // namespace

JsonRow& JsonRow::set(std::string key, std::int64_t value) {
  fields_.emplace_back(std::move(key), JsonScalar{value});
  return *this;
}
JsonRow& JsonRow::set(std::string key, double value) {
  fields_.emplace_back(std::move(key), JsonScalar{value});
  return *this;
}
JsonRow& JsonRow::set(std::string key, std::string value) {
  fields_.emplace_back(std::move(key), JsonScalar{std::move(value)});
  return *this;
}

BenchJson::BenchJson(std::string bench_name) {
  meta_.emplace_back("bench", JsonScalar{std::move(bench_name)});
}

BenchJson& BenchJson::meta(std::string key, std::int64_t value) {
  meta_.emplace_back(std::move(key), JsonScalar{value});
  return *this;
}
BenchJson& BenchJson::meta(std::string key, double value) {
  meta_.emplace_back(std::move(key), JsonScalar{value});
  return *this;
}
BenchJson& BenchJson::meta(std::string key, std::string value) {
  meta_.emplace_back(std::move(key), JsonScalar{std::move(value)});
  return *this;
}

JsonRow& BenchJson::add_row() {
  rows_.emplace_back();
  return rows_.back();
}

std::string BenchJson::to_string() const {
  std::string out = "{\n";
  for (const auto& [key, value] : meta_) {
    out += "  ";
    append_escaped(out, key);
    out += ": ";
    append_scalar(out, value);
    out += ",\n";
  }
  out += "  \"rows\": [\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "    {";
    const auto& fields = rows_[r].fields();
    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (f != 0) out += ", ";
      append_escaped(out, fields[f].first);
      out += ": ";
      append_scalar(out, fields[f].second);
    }
    out += r + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool BenchJson::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "benchjson: cannot write %s\n", path.c_str());
    return false;
  }
  f << to_string();
  f.close();
  if (!f) {
    std::fprintf(stderr, "benchjson: error writing %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

}  // namespace benchkit
