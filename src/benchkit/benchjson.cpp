#include "benchkit/benchjson.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace benchkit {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_scalar(std::string& out, const JsonScalar& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    if (std::isfinite(*d)) {
      char buf[32];
      // %.17g round-trips every double, so the JSON is as exact as the
      // virtual-time arithmetic that produced it.
      std::snprintf(buf, sizeof buf, "%.17g", *d);
      out += buf;
    } else {
      out += "null";  // JSON has no NaN/Inf
    }
  } else {
    append_escaped(out, std::get<std::string>(v));
  }
}

}  // namespace

JsonRow& JsonRow::set(std::string key, std::int64_t value) {
  fields_.emplace_back(std::move(key), JsonScalar{value});
  return *this;
}
JsonRow& JsonRow::set(std::string key, double value) {
  fields_.emplace_back(std::move(key), JsonScalar{value});
  return *this;
}
JsonRow& JsonRow::set(std::string key, std::string value) {
  fields_.emplace_back(std::move(key), JsonScalar{std::move(value)});
  return *this;
}

BenchJson::BenchJson(std::string bench_name) {
  meta_.emplace_back("bench", JsonScalar{std::move(bench_name)});
}

BenchJson& BenchJson::meta(std::string key, std::int64_t value) {
  meta_.emplace_back(std::move(key), JsonScalar{value});
  return *this;
}
BenchJson& BenchJson::meta(std::string key, double value) {
  meta_.emplace_back(std::move(key), JsonScalar{value});
  return *this;
}
BenchJson& BenchJson::meta(std::string key, std::string value) {
  meta_.emplace_back(std::move(key), JsonScalar{std::move(value)});
  return *this;
}

JsonRow& BenchJson::add_row() {
  rows_.emplace_back();
  return rows_.back();
}

std::string BenchJson::to_string() const {
  std::string out = "{\n";
  for (const auto& [key, value] : meta_) {
    out += "  ";
    append_escaped(out, key);
    out += ": ";
    append_scalar(out, value);
    out += ",\n";
  }
  out += "  \"rows\": [\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "    {";
    const auto& fields = rows_[r].fields();
    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (f != 0) out += ", ";
      append_escaped(out, fields[f].first);
      out += ": ";
      append_scalar(out, fields[f].second);
    }
    out += r + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool BenchJson::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "benchjson: cannot write %s\n", path.c_str());
    return false;
  }
  f << to_string();
  f.close();
  if (!f) {
    std::fprintf(stderr, "benchjson: error writing %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

namespace {

/// Recursive-descent parser for the benchjson subset.  Tracks a byte
/// offset so malformed documents die with a position, not a shrug.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool run(Doc* out, std::string* error) {
    skip_ws();
    if (!parse_document(out)) {
      if (error != nullptr) {
        *error = "byte " + std::to_string(pos_) + ": " + error_;
      }
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "byte " + std::to_string(pos_) + ": trailing content";
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (error_.empty()) error_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            const unsigned long v =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            c = static_cast<char>(v);  // benchjson only escapes < 0x20
            break;
          }
          default: return fail("unknown escape");
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_scalar(Scalar* out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("expected value");
    const char c = text_[pos_];
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = std::move(s);
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = nullptr;
      return true;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const char* begin = text_.c_str() + pos_;
      char* end = nullptr;
      const double v = std::strtod(begin, &end);
      if (end == begin) return fail("bad number");
      pos_ += static_cast<std::size_t>(end - begin);
      *out = v;
      return true;
    }
    return fail("expected scalar value (number, string or null)");
  }

  bool parse_flat_object(Fields* out) {
    if (!expect('{')) return false;
    out->clear();
    if (peek('}')) {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(&key)) return false;
      if (!expect(':')) return false;
      Scalar value;
      if (!parse_scalar(&value)) return false;
      out->emplace_back(std::move(key), std::move(value));
      if (peek(',')) {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

 public:
  /// Line-object mode (parse_object_line): one object whose values may
  /// themselves be objects one level deep; nested fields are appended with
  /// a "<outer>." key prefix.  Does NOT clear `out` so the nested call can
  /// share it.
  bool parse_flattened_object(Fields* out, const std::string& prefix) {
    if (!expect('{')) return false;
    if (peek('}')) {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(&key)) return false;
      if (!expect(':')) return false;
      if (peek('{')) {
        if (!prefix.empty()) return fail("objects nest more than one level");
        if (!parse_flattened_object(out, key + ".")) return false;
      } else {
        Scalar value;
        if (!parse_scalar(&value)) return false;
        out->emplace_back(prefix + key, std::move(value));
      }
      if (peek(',')) {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  bool run_line(Fields* out, std::string* error) {
    out->clear();
    if (!parse_flattened_object(out, std::string())) {
      if (error != nullptr) {
        *error = "byte " + std::to_string(pos_) + ": " + error_;
      }
      return false;
    }
    // The trailing JSON-array comma of a line-oriented file.
    if (peek(',')) ++pos_;
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "byte " + std::to_string(pos_) + ": trailing content";
      }
      return false;
    }
    return true;
  }

 private:

  bool parse_document(Doc* out) {
    if (!expect('{')) return false;
    for (;;) {
      std::string key;
      if (!parse_string(&key)) return false;
      if (!expect(':')) return false;
      if (key == "rows") {
        if (!expect('[')) return false;
        if (peek(']')) {
          ++pos_;
        } else {
          for (;;) {
            Fields row;
            if (!parse_flat_object(&row)) return false;
            out->rows.push_back(std::move(row));
            if (peek(',')) {
              ++pos_;
              continue;
            }
            if (!expect(']')) return false;
            break;
          }
        }
      } else {
        Scalar value;
        if (!parse_scalar(&value)) return false;
        out->meta.emplace_back(std::move(key), std::move(value));
      }
      if (peek(',')) {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse(const std::string& text, Doc* out, std::string* error) {
  Doc doc;
  Parser parser(text);
  if (!parser.run(&doc, error)) return false;
  *out = std::move(doc);
  return true;
}

bool get_number(const Fields& fields, const std::string& key, double* out) {
  for (const auto& [k, v] : fields) {
    if (k != key) continue;
    if (const double* d = std::get_if<double>(&v)) {
      *out = *d;
      return true;
    }
    return false;
  }
  return false;
}

bool get_string(const Fields& fields, const std::string& key,
                std::string* out) {
  for (const auto& [k, v] : fields) {
    if (k != key) continue;
    if (const std::string* s = std::get_if<std::string>(&v)) {
      *out = *s;
      return true;
    }
    return false;
  }
  return false;
}

bool parse_object_line(const std::string& line, Fields* out,
                       std::string* error) {
  Fields fields;
  Parser parser(line);
  if (!parser.run_line(&fields, error)) return false;
  *out = std::move(fields);
  return true;
}

std::int64_t ns_from_us(double us) {
  return std::llround(us * 1000.0);
}

}  // namespace benchkit
