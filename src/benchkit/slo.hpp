// slo.hpp — the SLO regression gate behind tools/slogate.
//
// Compares a candidate BENCH_loadgen.json run against a checked-in
// baseline and reports per-route-class p99 regressions, throughput drops
// and capacity losses.  Parsing is benchkit::parse (benchjson.hpp), the
// reader half of the format the bench binaries write; malformed input
// yields a positioned error message instead of a crash, because "fail
// with a clear message on a bad baseline" is part of the gate's contract.
//
// Gate semantics are one-sided: a candidate that is *faster* than its
// baseline always passes; the baseline is refreshed explicitly through
// slogate --update-baseline (workflow in docs/OBSERVABILITY.md).
#pragma once

#include <string>
#include <vector>

#include "benchkit/benchjson.hpp"

namespace benchkit::slo {

// The document model and parser moved to benchkit/benchjson (shared with
// tools/ckptinspect); these aliases keep the historical slo:: spellings.
using Scalar = benchkit::Scalar;
using Fields = benchkit::Fields;
using Doc = benchkit::Doc;
using benchkit::parse;
using benchkit::get_number;
using benchkit::get_string;

/// Gate tolerances, all one-sided.
struct Tolerances {
  /// Candidate route p99 may exceed baseline by this fraction...
  double p99_frac = 0.25;
  /// ...plus this absolute slack (guards tiny baselines against noise).
  double p99_floor_us = 50.0;
  /// Degraded-window p99 slack for chaos runs: recovery timing is coarser
  /// than steady state, so the fraction is wider.
  double degraded_frac = 1.0;
  /// Candidate achieved_rps may drop below baseline by this fraction.
  double rate_frac = 0.05;
  /// Per-class capacity (meta) may drop below baseline by this fraction.
  double capacity_frac = 0.10;
};

/// One gate violation, e.g. {"load=60000 class=read", "p99_us 812 -> 2200
/// exceeds 812*1.25+50"}.
struct Issue {
  std::string where;
  std::string message;
};

struct GateResult {
  bool ok = true;
  std::vector<Issue> issues;   ///< regressions (gate fails)
  std::vector<std::string> notes;  ///< non-fatal observations
};

/// Runs the gate: every baseline row must exist in the candidate and stay
/// within tolerance; capacity and recovery meta are checked too.  Extra
/// candidate rows are noted, never fatal (sweeps may grow).
GateResult gate(const Doc& baseline, const Doc& candidate,
                const Tolerances& tol);

}  // namespace benchkit::slo
