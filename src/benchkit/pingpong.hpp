// pingpong.hpp — the paper's §V measurement harness.
//
// Reproduces the Intel MPI Benchmarks PingPong pattern the authors used:
// a message bounces between two processes `reps` times; the reported
// latency is the initiator's elapsed (virtual) time divided by 2*reps —
// the average one-way transfer time.  One harness covers all five channel
// types of Table I, placing the endpoints per the paper (PPE endpoints for
// types 1 and 3).
//
// Three methods are measured, matching Table II's columns:
//   kCellPilot — through the full library (Co-Pilot protocol),
//   kDma       — hand-coded SDK-style transfers using MFC DMA,
//   kCopy      — hand-coded transfers using memory-mapped copies
//                (CellPilot's mechanism without the Co-Pilot's generality).
#pragma once

#include <cstddef>

#include "core/protocol.hpp"
#include "simtime/cost_model.hpp"
#include "simtime/sim_time.hpp"

namespace benchkit {

/// Transfer implementation, as in Table II's columns.
enum class Method {
  kCellPilot,
  kDma,
  kCopy,
};

/// Returns "CellPilot", "DMA" or "Copy".
const char* to_string(Method m);

/// One PingPong configuration.
struct PingPongSpec {
  cellpilot::ChannelType type = cellpilot::ChannelType::kType1;
  std::size_t bytes = 1;  ///< payload size (paper: 1 and 1600)
  int reps = 1000;        ///< bounce count (paper: 1000)
};

/// Runs the PingPong on a fresh simulated cluster and returns the average
/// one-way latency in virtual time.  Deterministic for a given spec/model.
simtime::SimTime pingpong(const PingPongSpec& spec, Method method,
                          const simtime::CostModel& cost);

/// Distribution summary of one PingPong run: the exact mean one-way
/// latency (elapsed / 2*reps, as `pingpong` reports) plus nearest-rank
/// percentiles over the per-rep one-way samples the initiator collects
/// with clock reads only — sampling never moves virtual time, so the mean
/// is bit-identical with or without it.
struct PingPongStats {
  simtime::SimTime one_way = 0;  ///< mean one-way latency (virtual ns)
  simtime::SimTime p50 = 0;      ///< median per-rep one-way latency
  simtime::SimTime p99 = 0;      ///< 99th-percentile per-rep latency
};

/// Runs ONE PingPong and summarizes it.  For the hand-coded baselines the
/// per-rep cost is closed-form and rep-invariant, so p50 == p99 == mean.
PingPongStats pingpong_stats(const PingPongSpec& spec, Method method,
                             const simtime::CostModel& cost);

/// Nearest-rank p50/p99 over an arbitrary sample list — the estimator
/// pingpong_stats applies to its per-rep samples, exposed for benches that
/// collect their own distributions (per-strip farm latencies, async
/// completion times).  Empty input yields zeros.
struct SampleStats {
  simtime::SimTime p50 = 0;
  simtime::SimTime p99 = 0;
};

SampleStats summarize_samples(std::vector<simtime::SimTime> samples);

/// Convenience: one-way latency in microseconds (Table II's unit).
double pingpong_us(const PingPongSpec& spec, Method method,
                   const simtime::CostModel& cost);

/// Throughput in MB/s for the given spec (Figure 6's unit).
double throughput_mbps(const PingPongSpec& spec, Method method,
                       const simtime::CostModel& cost);

}  // namespace benchkit
