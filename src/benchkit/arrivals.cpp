#include "benchkit/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace benchkit::arrivals {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

PoissonStream::PoissonStream(std::uint64_t seed, double rate_per_sec)
    : state_(seed), rate_per_sec_(rate_per_sec) {
  if (!(rate_per_sec > 0.0)) {
    throw std::invalid_argument("PoissonStream: rate must be positive");
  }
  mean_ns_ = 1e9 / rate_per_sec;
  // Warm the state once so seeds 0 and 1 don't share a near-identical
  // first output (splitmix64's first step is weak for tiny seeds).
  (void)splitmix64(state_);
}

simtime::SimTime PoissonStream::next_gap() {
  // 53 uniform bits -> u in (0, 1]; -ln(u) * mean is the inverse-CDF
  // exponential draw.  u == 0 is excluded by construction (we add 1 before
  // scaling), so log() never sees zero.
  const std::uint64_t bits = splitmix64(state_) >> 11;
  const double u =
      (static_cast<double>(bits) + 1.0) / 9007199254740993.0;  // 2^53 + 1
  const double gap_ns = -std::log(u) * mean_ns_;
  const auto gap = static_cast<simtime::SimTime>(std::llround(gap_ns));
  return gap < 1 ? 1 : gap;
}

std::vector<Arrival> merge_schedule(std::uint64_t seed,
                                    const std::vector<double>& rates_per_sec,
                                    simtime::SimTime horizon) {
  std::vector<Arrival> schedule;
  for (std::size_t c = 0; c < rates_per_sec.size(); ++c) {
    if (!(rates_per_sec[c] > 0.0)) continue;
    // Per-class seed: run the class index through the generator so class
    // streams are unrelated, not shifted copies of one another.
    std::uint64_t mix = seed;
    (void)splitmix64(mix);
    mix ^= 0xC1A55ull * (c + 1);
    PoissonStream stream(splitmix64(mix), rates_per_sec[c]);
    simtime::SimTime t = 0;
    for (;;) {
      t += stream.next_gap();
      if (t > horizon) break;
      schedule.push_back({t, static_cast<int>(c)});
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const Arrival& a, const Arrival& b) {
              return a.at != b.at ? a.at < b.at : a.cls < b.cls;
            });
  return schedule;
}

}  // namespace benchkit::arrivals
