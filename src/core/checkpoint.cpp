// checkpoint.cpp — see checkpoint.hpp for the design narrative.
#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "core/trace.hpp"
#include "pilot/wire.hpp"
#include "simtime/metrics.hpp"
#include "simtime/tracebuf.hpp"

namespace cellpilot::ckpt {
namespace {

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof v);
  std::memcpy(out.data() + at, &v, sizeof v);
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof v);
  std::memcpy(out.data() + at, &v, sizeof v);
}

void put_bytes(std::vector<std::byte>& out, const void* p, std::size_t n) {
  const std::size_t at = out.size();
  out.resize(at + n);
  if (n != 0) std::memcpy(out.data() + at, p, n);
}

/// Appends one PILS-framed section: WireHeader + [CRC32(body)][body].
void put_section(std::vector<std::byte>& out, Section section,
                 std::uint32_t cut, std::span<const std::byte> body) {
  pilot::WireHeader header;
  header.magic = pilot::kWireMarkerMagic;
  header.signature = static_cast<std::uint32_t>(section);
  header.epoch = cut;
  header.payload_bytes = sizeof(std::uint32_t) + body.size();
  put_bytes(out, &header, sizeof header);
  put_u32(out, mpisim::reliable::crc32(body));
  put_bytes(out, body.data(), body.size());
}

/// Bounds-checked little cursor for deserialize().
struct Reader {
  std::span<const std::byte> bytes;
  std::size_t at = 0;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || bytes.size() - at < n) return ok = false;
    std::memcpy(dst, bytes.data() + at, n);
    at += n;
    return true;
  }
  std::uint8_t u8() { std::uint8_t v = 0; take(&v, sizeof v); return v; }
  std::uint32_t u32() { std::uint32_t v = 0; take(&v, sizeof v); return v; }
  std::uint64_t u64() { std::uint64_t v = 0; take(&v, sizeof v); return v; }
};

/// Finds (or creates) the shard for `node` in ascending-node order.
Shard& shard_for(Image& image, std::int32_t node) {
  for (auto& s : image.shards) {
    if (s.node == node) return s;
  }
  auto it = image.shards.begin();
  while (it != image.shards.end() && it->node < node) ++it;
  it = image.shards.insert(it, Shard{});
  it->node = node;
  return *it;
}

}  // namespace

std::vector<std::byte> serialize(const Image& image) {
  std::vector<std::byte> out;
  std::vector<std::byte> body;

  // kHeader
  put_u32(body, kFileVersion);
  put_u32(body, static_cast<std::uint32_t>(image.shards.size()));
  put_u32(body, image.channels);
  put_u32(body, 0);  // reserved, keeps stamps 8-byte aligned
  put_u64(body, static_cast<std::uint64_t>(image.begin));
  put_u64(body, static_cast<std::uint64_t>(image.commit));
  put_section(out, Section::kHeader, image.cut, body);

  // kEpochs
  body.clear();
  put_u32(body, static_cast<std::uint32_t>(image.epochs.size()));
  for (std::uint32_t e : image.epochs) put_u32(body, e);
  put_section(out, Section::kEpochs, image.cut, body);

  // Per-shard sections, ascending node order.
  for (const Shard& shard : image.shards) {
    body.clear();
    put_u32(body, static_cast<std::uint32_t>(shard.node));
    put_u32(body, static_cast<std::uint32_t>(shard.journal.size()));
    put_u64(body, static_cast<std::uint64_t>(shard.stamp));
    put_u64(body, shard.serviced);
    for (const JournalMark& m : shard.journal) {
      put_u32(body, static_cast<std::uint32_t>(m.pid));
      put_u32(body, static_cast<std::uint32_t>(m.channel));
      put_u64(body, m.writes);
      put_u64(body, m.reads);
      put_u32(body, m.reads_crc);
    }
    put_section(out, Section::kJournal, image.cut, body);

    body.clear();
    put_u32(body, static_cast<std::uint32_t>(shard.node));
    put_u32(body, static_cast<std::uint32_t>(shard.parked.size()));
    for (const ParkedOp& p : shard.parked) {
      put_u32(body, static_cast<std::uint32_t>(p.channel));
      put_u32(body, static_cast<std::uint32_t>(p.pid));
      put_u32(body, p.opcode);
      put_u32(body, p.signature);
      put_u32(body, p.length);
      put_u32(body, p.token);
      put_u8(body, p.is_write);
      put_u8(body, p.is_async);
    }
    put_section(out, Section::kParked, image.cut, body);

    body.clear();
    put_u32(body, static_cast<std::uint32_t>(shard.node));
    put_u32(body, static_cast<std::uint32_t>(shard.images.size()));
    for (const SpeImage& img : shard.images) {
      put_u32(body, static_cast<std::uint32_t>(img.pid));
      put_u64(body, static_cast<std::uint64_t>(img.clock));
      put_u32(body, static_cast<std::uint32_t>(img.name.size()));
      put_bytes(body, img.name.data(), img.name.size());
      put_u32(body, static_cast<std::uint32_t>(img.ls.size()));
      put_bytes(body, img.ls.data(), img.ls.size());
    }
    put_section(out, Section::kSpeImage, image.cut, body);
  }

  // kLinks
  body.clear();
  put_u32(body, static_cast<std::uint32_t>(image.links.size()));
  for (const auto& link : image.links) {
    put_u32(body, static_cast<std::uint32_t>(link.from));
    put_u32(body, static_cast<std::uint32_t>(link.to));
    put_u64(body, link.next_seq);
    put_u64(body, link.expected);
    put_u64(body, link.held);
    put_u8(body, link.stashed);
  }
  put_section(out, Section::kLinks, image.cut, body);

  // kCommit trailer: byte count + CRC of everything serialized so far.
  body.clear();
  put_u64(body, static_cast<std::uint64_t>(out.size()));
  put_u32(body, mpisim::reliable::crc32(out));
  put_section(out, Section::kCommit, image.cut, body);
  return out;
}

ParseResult deserialize(std::span<const std::byte> bytes) {
  ParseResult result;
  std::size_t at = 0;
  bool saw_header = false;
  bool saw_commit = false;

  while (at < bytes.size()) {
    if (bytes.size() - at < sizeof(pilot::WireHeader)) {
      result.error = "truncated section header";
      return result;
    }
    pilot::WireHeader header;
    std::memcpy(&header, bytes.data() + at, sizeof header);
    if (header.magic != pilot::kWireMarkerMagic) {
      result.error = "bad section magic";
      return result;
    }
    if (header.payload_bytes < sizeof(std::uint32_t) ||
        bytes.size() - at - sizeof header < header.payload_bytes) {
      result.error = "truncated section payload";
      return result;
    }
    const std::size_t section_start = at;
    at += sizeof header;
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + at, sizeof stored_crc);
    at += sizeof stored_crc;
    const std::size_t body_bytes =
        static_cast<std::size_t>(header.payload_bytes) - sizeof stored_crc;
    const std::span<const std::byte> body = bytes.subspan(at, body_bytes);
    at += body_bytes;
    if (mpisim::reliable::crc32(body) != stored_crc) {
      result.error = "section " + std::to_string(header.signature) +
                     " CRC mismatch";
      return result;
    }

    Reader rd{body};
    switch (static_cast<Section>(header.signature)) {
      case Section::kHeader: {
        const std::uint32_t version = rd.u32();
        rd.u32();  // shard count (implied by the shard sections)
        result.image.channels = rd.u32();
        rd.u32();  // reserved
        result.image.begin = static_cast<simtime::SimTime>(rd.u64());
        result.image.commit = static_cast<simtime::SimTime>(rd.u64());
        result.image.cut = header.epoch;
        if (!rd.ok || version != kFileVersion) {
          result.error = "bad header section";
          return result;
        }
        saw_header = true;
        break;
      }
      case Section::kEpochs: {
        const std::uint32_t n = rd.u32();
        result.image.epochs.clear();
        for (std::uint32_t i = 0; rd.ok && i < n; ++i) {
          result.image.epochs.push_back(rd.u32());
        }
        break;
      }
      case Section::kJournal: {
        const std::int32_t node = static_cast<std::int32_t>(rd.u32());
        const std::uint32_t n = rd.u32();
        Shard& shard = shard_for(result.image, node);
        shard.stamp = static_cast<simtime::SimTime>(rd.u64());
        shard.serviced = rd.u64();
        for (std::uint32_t i = 0; rd.ok && i < n; ++i) {
          JournalMark m;
          m.pid = static_cast<std::int32_t>(rd.u32());
          m.channel = static_cast<std::int32_t>(rd.u32());
          m.writes = rd.u64();
          m.reads = rd.u64();
          m.reads_crc = rd.u32();
          shard.journal.push_back(m);
        }
        break;
      }
      case Section::kParked: {
        const std::int32_t node = static_cast<std::int32_t>(rd.u32());
        const std::uint32_t n = rd.u32();
        Shard& shard = shard_for(result.image, node);
        for (std::uint32_t i = 0; rd.ok && i < n; ++i) {
          ParkedOp p;
          p.channel = static_cast<std::int32_t>(rd.u32());
          p.pid = static_cast<std::int32_t>(rd.u32());
          p.opcode = rd.u32();
          p.signature = rd.u32();
          p.length = rd.u32();
          p.token = rd.u32();
          p.is_write = rd.u8();
          p.is_async = rd.u8();
          shard.parked.push_back(p);
        }
        break;
      }
      case Section::kSpeImage: {
        const std::int32_t node = static_cast<std::int32_t>(rd.u32());
        const std::uint32_t n = rd.u32();
        Shard& shard = shard_for(result.image, node);
        for (std::uint32_t i = 0; rd.ok && i < n; ++i) {
          SpeImage img;
          img.pid = static_cast<std::int32_t>(rd.u32());
          img.clock = static_cast<simtime::SimTime>(rd.u64());
          const std::uint32_t name_bytes = rd.u32();
          if (!rd.ok || body.size() - rd.at < name_bytes) {
            rd.ok = false;
            break;
          }
          img.name.resize(name_bytes);
          rd.take(img.name.data(), name_bytes);
          const std::uint32_t ls_bytes = rd.u32();
          if (!rd.ok || body.size() - rd.at < ls_bytes) {
            rd.ok = false;
            break;
          }
          img.ls.resize(ls_bytes);
          rd.take(img.ls.data(), ls_bytes);
          if (rd.ok) shard.images.push_back(std::move(img));
        }
        break;
      }
      case Section::kLinks: {
        const std::uint32_t n = rd.u32();
        for (std::uint32_t i = 0; rd.ok && i < n; ++i) {
          mpisim::reliable::LinkSnapshot link;
          link.from = static_cast<mpisim::Rank>(rd.u32());
          link.to = static_cast<mpisim::Rank>(rd.u32());
          link.next_seq = rd.u64();
          link.expected = rd.u64();
          link.held = rd.u64();
          link.stashed = rd.u8();
          result.image.links.push_back(link);
        }
        break;
      }
      case Section::kCommit: {
        const std::uint64_t covered = rd.u64();
        const std::uint32_t file_crc = rd.u32();
        if (!rd.ok || covered != section_start ||
            mpisim::reliable::crc32(bytes.subspan(0, section_start)) !=
                file_crc) {
          result.error = "commit trailer mismatch";
          return result;
        }
        saw_commit = true;
        break;
      }
      default:
        result.error = "unknown section " + std::to_string(header.signature);
        return result;
    }
    if (!rd.ok) {
      result.error = "section " + std::to_string(header.signature) +
                     " body truncated";
      return result;
    }
  }

  if (!saw_header) {
    result.error = "missing header section";
    return result;
  }
  if (!saw_commit) {
    result.error = "missing commit trailer";
    return result;
  }
  result.ok = true;
  return result;
}

CheckpointSession& CheckpointSession::global() {
  static CheckpointSession session;
  return session;
}

void CheckpointSession::configure(std::string path, std::uint64_t every) {
  std::lock_guard lock(mu_);
  path_ = std::move(path);
  every_.store(every, std::memory_order_relaxed);
  armed_.store(!path_.empty() && every != 0, std::memory_order_relaxed);
}

void CheckpointSession::begin_job(int cell_nodes) {
  std::lock_guard lock(mu_);
  cell_nodes_ = cell_nodes;
  open_.clear();
  cut_epochs_.clear();
  cut_links_.clear();
  next_cut_.clear();
  committed_.store(false, std::memory_order_relaxed);
  committed_cut_.store(0, std::memory_order_relaxed);
}

void CheckpointSession::end_job() {
  std::lock_guard lock(mu_);
  cell_nodes_ = 0;
  open_.clear();
  cut_epochs_.clear();
  cut_links_.clear();
  next_cut_.clear();
  // committed_/committed_cut_ survive as the finished job's watermark so
  // harnesses (loadgen, chaos_sweep) can report how far the checkpoint
  // got; the next begin_job clears them.
}

void CheckpointSession::set_contributors(int cell_nodes) {
  std::lock_guard lock(mu_);
  if (cell_nodes == cell_nodes_) return;
  cell_nodes_ = cell_nodes;
  if (cell_nodes_ <= 0) return;
  // A shard that landed before the quorum narrowed may already complete
  // its cut; commit in ascending order (each commit prunes everything at
  // or below its cut, so later cuts stay intact).
  std::vector<std::uint32_t> ready;
  for (const auto& [cut, shards] : open_) {
    if (shards.size() >= static_cast<std::size_t>(cell_nodes_)) {
      ready.push_back(cut);
    }
  }
  for (const std::uint32_t cut : ready) {
    if (open_.count(cut) != 0) commit_locked(cut);
  }
}

std::uint32_t CheckpointSession::next_cut(std::int32_t node) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = next_cut_.try_emplace(node, 1u);
  return it->second;
}

bool CheckpointSession::needs_contribution(std::int32_t node,
                                           std::uint32_t cut) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = next_cut_.try_emplace(node, 1u);
  return cut >= it->second;
}

bool CheckpointSession::contribute(
    std::uint32_t cut, Shard shard, std::vector<std::uint32_t> epochs,
    std::vector<mpisim::reliable::LinkSnapshot> links) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = next_cut_.try_emplace(shard.node, 1u);
  if (cut < it->second) return false;  // already contributed (stale marker)
  it->second = cut + 1;
  auto& shards = open_[cut];
  shards.emplace(shard.node, std::move(shard));
  cut_epochs_[cut] = std::move(epochs);
  cut_links_[cut] = std::move(links);
  if (cell_nodes_ <= 0 ||
      shards.size() < static_cast<std::size_t>(cell_nodes_)) {
    return false;
  }
  commit_locked(cut);
  return true;
}

void CheckpointSession::commit_locked(std::uint32_t cut) {
  Image image;
  image.cut = cut;
  image.epochs = std::move(cut_epochs_[cut]);
  image.links = std::move(cut_links_[cut]);
  auto& shards = open_[cut];
  image.channels = 0;
  bool first = true;
  for (auto& [node, shard] : shards) {
    for (const JournalMark& m : shard.journal) {
      if (m.channel >= 0 &&
          static_cast<std::uint32_t>(m.channel) + 1 > image.channels) {
        image.channels = static_cast<std::uint32_t>(m.channel) + 1;
      }
    }
    if (first || shard.stamp < image.begin) image.begin = shard.stamp;
    if (first || shard.stamp > image.commit) image.commit = shard.stamp;
    first = false;
    image.shards.push_back(std::move(shard));
  }
  if (image.epochs.size() > image.channels) {
    image.channels = static_cast<std::uint32_t>(image.epochs.size());
  }

  // A slow straggler finishing an older cut after a newer one committed
  // must not roll the file (or the "latest committed" watermark) backwards.
  const std::uint32_t prior = committed_cut_.load(std::memory_order_relaxed);
  if (cut > prior) {
    const std::vector<std::byte> bytes = serialize(image);
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(bytes.data(), 1, bytes.size(), f);
      std::fclose(f);
    }
    committed_cut_.store(cut, std::memory_order_relaxed);
    committed_.store(true, std::memory_order_relaxed);

    // Observability: every field below is a pure function of the shards,
    // so whichever thread commits records identical events.
    if (simtime::tracebuf::armed()) {
      using simtime::tracebuf::Kind;
      simtime::tracebuf::record(Kind::kCkptBegin, "ckpt", image.begin,
                                image.begin, 0, -1, 0,
                                static_cast<std::int64_t>(cut));
      for (const Shard& shard : image.shards) {
        simtime::tracebuf::record(Kind::kCkptCut,
                                  "node" + std::to_string(shard.node),
                                  shard.stamp, shard.stamp, 0, -1, 0,
                                  static_cast<std::int64_t>(cut));
      }
      simtime::tracebuf::record(Kind::kCkptCommit, "ckpt", image.commit,
                                image.commit, 0, -1, 0,
                                static_cast<std::int64_t>(cut));
    }
    if (simtime::metrics::armed()) {
      simtime::metrics::record(simtime::metrics::Kind::kCkptQuiesce, 0, -1,
                               "ckpt", image.commit - image.begin);
    }
    for (std::uint32_t c = 0; c < image.channels; ++c) {
      trace::ChannelCounters::global().add_checkpoint(static_cast<int>(c));
    }
  }

  // Drop this cut and anything older it supersedes.
  open_.erase(open_.begin(), open_.upper_bound(cut));
  cut_epochs_.erase(cut_epochs_.begin(), cut_epochs_.upper_bound(cut));
  cut_links_.erase(cut_links_.begin(), cut_links_.upper_bound(cut));
}

}  // namespace cellpilot::ckpt
