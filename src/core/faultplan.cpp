#include "core/faultplan.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "mpisim/reliable.hpp"

namespace cellpilot::faults {

namespace {

// The trampolines installed into the layer-local seams.  cellsim/mpisim
// cannot link against this file's types, so the seams take bare function
// pointers and we forward to the singleton here.
cellsim::inject::Action cell_trampoline(cellsim::inject::Site site,
                                        const char* owner,
                                        simtime::SimTime now) {
  return FaultPlan::global().on_cell_site(site, owner, now);
}

mpisim::inject::Action send_trampoline(mpisim::Rank from, mpisim::Rank to,
                                       int tag, simtime::SimTime now) {
  return FaultPlan::global().on_send(from, to, tag, now);
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: bad " + what + " value '" +
                                text + "'");
  }
}

simtime::SimTime parse_duration(std::string text) {
  simtime::SimTime (*unit)(double) = nullptr;
  auto ends_with = [&text](const char* suffix, std::size_t n) {
    return text.size() > n && text.compare(text.size() - n, n, suffix) == 0;
  };
  if (ends_with("us", 2)) {
    unit = [](double v) { return simtime::us(v); };
    text.resize(text.size() - 2);
  } else if (ends_with("ms", 2)) {
    unit = [](double v) { return simtime::ms(v); };
    text.resize(text.size() - 2);
  } else if (ends_with("ns", 2)) {
    unit = [](double v) { return simtime::ns(static_cast<std::int64_t>(v)); };
    text.resize(text.size() - 2);
  } else {
    unit = [](double v) { return simtime::us(v); };  // paper's unit
  }
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size() || v < 0) throw std::invalid_argument(text);
    return unit(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: bad delay value '" + text + "'");
  }
}

constexpr Kind kAllKinds[] = {
    Kind::kSpeCrash,   Kind::kSpeCrashMid, Kind::kMboxStall,
    Kind::kDmaFault,   Kind::kCopilotDelay, Kind::kSendDelay,
    Kind::kSendDrop,   Kind::kMsgDrop,    Kind::kMsgCorrupt,
    Kind::kMsgDup,     Kind::kMsgReorder, Kind::kCopilotCrash,
    Kind::kBladeKill,
};

Kind parse_kind(const std::string& word) {
  for (const Kind k : kAllKinds) {
    if (word == to_string(k)) return k;
  }
  std::string valid;
  for (const Kind k : kAllKinds) {
    if (!valid.empty()) valid += ", ";
    valid += to_string(k);
  }
  throw std::invalid_argument("fault plan: unknown kind '" + word +
                              "' (valid kinds: " + valid + ")");
}

// Splits "kind@site:op=N,count=C,delay=D" into a Rule.
Rule parse_rule(const std::string& item) {
  Rule rule;
  const std::size_t at = item.find('@');
  if (at == std::string::npos) {
    throw std::invalid_argument("fault plan: rule '" + item +
                                "' is missing '@site'");
  }
  rule.kind = parse_kind(item.substr(0, at));
  std::string rest = item.substr(at + 1);
  const std::size_t colon = rest.find(':');
  rule.site = rest.substr(0, colon);
  if (rule.site.empty()) {
    throw std::invalid_argument("fault plan: rule '" + item +
                                "' has an empty site");
  }
  if (colon == std::string::npos) return rule;
  rest = rest.substr(colon + 1);
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    const std::size_t comma = rest.find(',', pos);
    const std::string field =
        rest.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault plan: bad rule field '" + field +
                                  "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "op") {
      rule.op = parse_u64(value, "op");
    } else if (key == "count") {
      rule.count = parse_u64(value, "count");
      if (rule.count == 0) {
        throw std::invalid_argument("fault plan: count must be >= 1");
      }
    } else if (key == "delay") {
      rule.delay = parse_duration(value);
    } else {
      throw std::invalid_argument("fault plan: unknown rule field '" + key +
                                  "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return rule;
}

}  // namespace

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kSpeCrash:
      return "spe_crash";
    case Kind::kSpeCrashMid:
      return "spe_crash_mid";
    case Kind::kMboxStall:
      return "mbox_stall";
    case Kind::kDmaFault:
      return "dma_fault";
    case Kind::kCopilotDelay:
      return "copilot_delay";
    case Kind::kSendDelay:
      return "send_delay";
    case Kind::kSendDrop:
      return "send_drop";
    case Kind::kMsgDrop:
      return "msg_drop";
    case Kind::kMsgCorrupt:
      return "msg_corrupt";
    case Kind::kMsgDup:
      return "msg_dup";
    case Kind::kMsgReorder:
      return "msg_reorder";
    case Kind::kCopilotCrash:
      return "copilot_crash";
    case Kind::kBladeKill:
      return "blade_kill";
  }
  return "unknown";
}

FaultPlan& FaultPlan::global() {
  static FaultPlan plan;
  return plan;
}

FaultPlan::FaultPlan() {
  const char* env = std::getenv("CELLPILOT_FAULTS");
  env_spec_ = env == nullptr ? "" : env;
  try {
    apply(env_spec_);
  } catch (const std::invalid_argument& e) {
    // A broken environment spec must not crash every binary in the job;
    // report it once and run disarmed.
    std::fprintf(stderr, "CELLPILOT_FAULTS rejected: %s\n", e.what());
    env_spec_.clear();
    apply(env_spec_);
  }
}

void FaultPlan::configure(const std::string& spec) { apply(spec); }

void FaultPlan::reset() { apply(env_spec_); }

void FaultPlan::apply(const std::string& spec) {
  std::vector<Rule> rules;
  std::uint64_t seed = 0x5eed;
  bool armed = false;
  if (spec.empty() || spec == "off" || spec == "0") {
    armed = false;
  } else if (spec == "on" || spec == "1") {
    armed = true;  // machinery live, no rules — the zero-injection mode
  } else {
    armed = true;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
      const std::size_t semi = spec.find(';', pos);
      const std::string item =
          spec.substr(pos, semi == std::string::npos ? semi : semi - pos);
      if (!item.empty()) {
        if (item.rfind("seed=", 0) == 0) {
          seed = parse_u64(item.substr(5), "seed");
        } else {
          rules.push_back(parse_rule(item));
        }
      }
      if (semi == std::string::npos) break;
      pos = semi + 1;
    }
  }

  {
    std::lock_guard lock(mu_);
    rules_ = std::move(rules);
    seed_ = seed;
    counters_.assign(rules_.size(), {});
  }
  armed_.store(armed, std::memory_order_release);
  // Null hooks when disarmed: the clean path is one atomic load + branch.
  cellsim::inject::set_hook(armed ? &cell_trampoline : nullptr);
  mpisim::inject::set_hook(armed ? &send_trampoline : nullptr);
  // The reliable sublayer is live exactly while message-level rules exist:
  // a bare "on" (armed, zero rules) keeps sends on the historical path so
  // its virtual time stays bit-for-bit identical to a disarmed run.
  bool msg_rules = false;
  {
    std::lock_guard lock(mu_);
    for (const Rule& rule : rules_) {
      if (rule.kind == Kind::kMsgDrop || rule.kind == Kind::kMsgCorrupt ||
          rule.kind == Kind::kMsgDup || rule.kind == Kind::kMsgReorder) {
        msg_rules = true;
        break;
      }
    }
  }
  mpisim::reliable::set_enabled(msg_rules);
}

std::uint64_t FaultPlan::seed() const {
  std::lock_guard lock(mu_);
  return seed_;
}

std::vector<Rule> FaultPlan::rules() const {
  std::lock_guard lock(mu_);
  return rules_;
}

std::uint64_t FaultPlan::derived_op(std::size_t rule_index,
                                    const std::string& site) const {
  std::lock_guard lock(mu_);
  return splitmix64(seed_ ^ fnv1a(site) ^ (rule_index + 1)) % 16 + 1;
}

bool FaultPlan::hit(std::size_t rule_index, const Rule& rule,
                    const std::string& site) {
  // Caller holds mu_.  Ordinals are per (rule, site); a site is a single-
  // threaded actor, so the count sequence is deterministic.
  auto& per_site = counters_[rule_index];
  std::uint64_t* n = nullptr;
  for (auto& [name, count] : per_site) {
    if (name == site) {
      n = &count;
      break;
    }
  }
  if (n == nullptr) {
    per_site.emplace_back(site, 0);
    n = &per_site.back().second;
  }
  ++*n;
  std::uint64_t first = rule.op;
  if (first == 0) {
    first = splitmix64(seed_ ^ fnv1a(site) ^ (rule_index + 1)) % 16 + 1;
  }
  return *n >= first && *n < first + rule.count;
}

cellsim::inject::Action FaultPlan::on_cell_site(cellsim::inject::Site site,
                                                const char* owner,
                                                simtime::SimTime) {
  cellsim::inject::Action action;
  std::lock_guard lock(mu_);
  if (rules_.empty()) return action;
  const std::string name(owner);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    const bool relevant =
        (rule.kind == Kind::kMboxStall &&
         (site == cellsim::inject::Site::kMboxWrite ||
          site == cellsim::inject::Site::kMboxRead)) ||
        (rule.kind == Kind::kDmaFault && site == cellsim::inject::Site::kDma);
    if (!relevant) continue;
    if (rule.site != "*" && rule.site != name) continue;
    if (!hit(i, rule, name)) continue;
    if (rule.kind == Kind::kDmaFault) {
      action.fault = true;
    } else {
      action.delay += rule.delay;
    }
  }
  return action;
}

mpisim::inject::Action FaultPlan::on_send(int from, int to, int /*tag*/,
                                          simtime::SimTime) {
  mpisim::inject::Action action;
  std::lock_guard lock(mu_);
  if (rules_.empty()) return action;
  const std::string name = std::to_string(from) + "->" + std::to_string(to);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    switch (rule.kind) {
      case Kind::kSendDelay:
      case Kind::kSendDrop:
      case Kind::kMsgDrop:
      case Kind::kMsgCorrupt:
      case Kind::kMsgDup:
      case Kind::kMsgReorder:
        break;
      default:
        continue;
    }
    if (rule.site != "*" && rule.site != name) continue;
    if (!hit(i, rule, name)) continue;
    switch (rule.kind) {
      case Kind::kSendDrop:
        action.drop = true;
        break;
      case Kind::kMsgDrop:
        action.msg_drop = true;
        break;
      case Kind::kMsgCorrupt:
        action.msg_corrupt = true;
        break;
      case Kind::kMsgDup:
        action.msg_dup = true;
        break;
      case Kind::kMsgReorder:
        action.msg_reorder = true;
        break;
      default:
        action.delay += rule.delay;
        break;
    }
  }
  return action;
}

bool FaultPlan::should_crash_spe(const char* owner) {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  if (rules_.empty()) return false;
  const std::string name(owner);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    if (rule.kind != Kind::kSpeCrash) continue;
    if (rule.site != "*" && rule.site != name) continue;
    if (hit(i, rule, name)) return true;
  }
  return false;
}

bool FaultPlan::should_crash_spe_mid(const char* owner) {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  if (rules_.empty()) return false;
  const std::string name(owner);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    if (rule.kind != Kind::kSpeCrashMid) continue;
    if (rule.site != "*" && rule.site != name) continue;
    if (hit(i, rule, name)) return true;
  }
  return false;
}

bool FaultPlan::should_crash_copilot(const char* owner, int node) {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  if (rules_.empty()) return false;
  const std::string name(owner);  // canonical: "nodeN.copilot"
  const std::string alias = "copilot" + std::to_string(node);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    if (rule.kind != Kind::kCopilotCrash) continue;
    if (rule.site != "*" && rule.site != name && rule.site != alias) continue;
    // Ordinals keyed by the canonical name so both site spellings count
    // the same request sequence.
    if (hit(i, rule, name)) return true;
  }
  return false;
}

bool FaultPlan::should_kill_blade(const char* owner, int node) {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  if (rules_.empty()) return false;
  const std::string name(owner);  // canonical: the node name, "nodeN"
  const std::string alias = "blade" + std::to_string(node);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    if (rule.kind != Kind::kBladeKill) continue;
    if (rule.site != "*" && rule.site != name && rule.site != alias) continue;
    // Ordinals keyed by the canonical name so both site spellings count
    // the same request sequence.
    if (hit(i, rule, name)) return true;
  }
  return false;
}

simtime::SimTime FaultPlan::copilot_delay(const char* owner) {
  if (!armed()) return 0;
  std::lock_guard lock(mu_);
  if (rules_.empty()) return 0;
  const std::string name(owner);
  simtime::SimTime delay = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    if (rule.kind != Kind::kCopilotDelay) continue;
    if (rule.site != "*" && rule.site != name) continue;
    if (hit(i, rule, name)) delay += rule.delay;
  }
  return delay;
}

}  // namespace cellpilot::faults
