// protocol.hpp — the CellPilot control protocol.
//
// CellPilot's central mechanism (paper §IV): an SPE that wants to use a
// channel sends a small request to its node's Co-Pilot process through its
// outbound mailbox; the Co-Pilot translates the SPE's local-store buffer
// address into a main-memory effective address and then moves the data —
// by memcpy for intra-node transfers, by participating in MPI on the SPE's
// behalf for anything else.  Completion is signalled back through the SPE's
// inbound mailbox.
//
// A request is four 32-bit mailbox words:
//   word 0:  opcode (high 8 bits) | channel id (low 24 bits)
//   word 1:  local-store address of the message buffer
//   word 2:  payload length in bytes
//   word 3:  resolved-format signature (pilot::signature)
//
// The completion word is a status code (kOk or an error), letting the SPE
// runtime convert protocol failures into PilotError diagnostics.
//
// The async tier (PI_WriteAsync / PI_ReadAsync) extends the request with a
// fifth word carrying a 24-bit completion token chosen by the SPE runtime:
//   word 4:  completion token (low 24 bits; async opcodes only)
// and packs the completion word as status (high 8 bits) | token (low 24
// bits), so an SPE with several operations in flight can match each
// completion back to its operation.  An SPE that has async operations
// outstanding issues *all* further requests — including blocking ones —
// through the async opcodes, so every word arriving on its inbound mailbox
// is a packed completion; once nothing is outstanding the legacy 4-word /
// bare-status exchange is used, keeping no-async programs byte-identical.
//
// The channel taxonomy of the paper's Table I and its resolution rule live
// with the compiled data plane in core/router.hpp (re-exported here).
#pragma once

#include <cstdint>

#include "core/router.hpp"
#include "pilot/app.hpp"
#include "pilot/tables.hpp"

namespace cellpilot {

/// Number of mailbox words in one blocking SPE request.
inline constexpr int kRequestWords = 4;

/// Number of mailbox words in one async SPE request (adds the token word).
inline constexpr int kAsyncRequestWords = 5;

/// Request opcodes.
enum class Opcode : std::uint32_t {
  kWrite = 1,       ///< the SPE wants to write the channel (buffer holds data)
  kRead = 2,        ///< the SPE wants to read the channel (buffer to be filled)
  kWriteAsync = 3,  ///< kWrite with a completion token (5-word request)
  kReadAsync = 4,   ///< kRead with a completion token (5-word request)
};

/// True for the token-carrying opcodes.
constexpr bool opcode_is_async(Opcode op) {
  return op == Opcode::kWriteAsync || op == Opcode::kReadAsync;
}

/// Mailbox words a request with this opcode occupies.  Unknown opcodes
/// decode as the legacy 4-word shape so the Co-Pilot's protocol check can
/// reject them without desynchronising the mailbox stream.
constexpr int words_for(Opcode op) {
  return opcode_is_async(op) ? kAsyncRequestWords : kRequestWords;
}

/// Completion status codes (inbound mailbox word).
enum class CompletionStatus : std::uint32_t {
  kOk = 0,
  kTypeMismatch = 1,  ///< writer/reader formats disagree
  kSizeMismatch = 2,  ///< payload length disagrees
  kProtocol = 3,      ///< malformed request / internal error
  kSpeFault = 4,      ///< the channel peer's SPE died of a hardware fault
  kSpeTimeout = 5,    ///< the request (or its peer) missed its deadline
  kCopilotFault = 6,  ///< the serving Co-Pilot crashed; request not replayed
  kSpeRestarted = 7,  ///< the peer SPE was respawned and this op could not
                      ///< be replayed against the new incarnation
};

/// A decoded SPE request.
struct SpeRequest {
  Opcode opcode = Opcode::kWrite;
  int channel = -1;
  std::uint32_t ls_addr = 0;
  std::uint32_t length = 0;
  std::uint32_t signature = 0;
  std::uint32_t token = 0;  ///< completion token (async opcodes only)
};

/// True when the request expects a packed (status|token) completion word.
constexpr bool request_is_async(const SpeRequest& req) {
  return opcode_is_async(req.opcode);
}

/// Packs word 0 from opcode + channel id.
constexpr std::uint32_t pack_op_channel(Opcode op, int channel) {
  return (static_cast<std::uint32_t>(op) << 24) |
         (static_cast<std::uint32_t>(channel) & 0x00FFFFFFu);
}

/// Unpacks word 0.
constexpr Opcode unpack_opcode(std::uint32_t w0) {
  return static_cast<Opcode>(w0 >> 24);
}
constexpr int unpack_channel(std::uint32_t w0) {
  return static_cast<int>(w0 & 0x00FFFFFFu);
}

/// Completion tokens are 24 bits; the SPE runtime wraps its counter.
inline constexpr std::uint32_t kTokenMask = 0x00FFFFFFu;

/// Packs an async completion word: status (high 8) | token (low 24).
constexpr std::uint32_t pack_completion(CompletionStatus status,
                                        std::uint32_t token) {
  return (static_cast<std::uint32_t>(status) << 24) | (token & kTokenMask);
}

/// Unpacks an async completion word.
constexpr CompletionStatus unpack_completion_status(std::uint32_t w) {
  return static_cast<CompletionStatus>(w >> 24);
}
constexpr std::uint32_t unpack_completion_token(std::uint32_t w) {
  return w & kTokenMask;
}

/// Bytes of SPE local store occupied by the CellPilot SPE-side runtime.
/// Modelled on the paper's measurement of cellpilot.o (10 336 bytes by the
/// Linux `size` command); reserved in the local store whenever an SPE
/// process runs, so the 256 KB budget experienced by user code matches the
/// real library's.
inline constexpr std::size_t kCellPilotSpuFootprintBytes = 10336;

/// Control tag on which Co-Pilots receive job shutdown (reuses Pilot's).
using pilot::kTagShutdown;

}  // namespace cellpilot
