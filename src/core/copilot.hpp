// copilot.hpp — the Co-Pilot process.
//
// The paper's first key innovation: every Cell node runs one extra MPI rank,
// the Co-Pilot, occupying the PPE's otherwise-idle second hardware thread.
// It services all SPE-connected channel types so that (a) SPE processes can
// participate in MPI as first-class citizens without MPI living in their
// 256 KB local stores, and (b) the PPE's own Pilot process is never
// interrupted by SPE traffic.  It exists as a separate *process* (rank), not
// a thread, so the design works under MPI_THREAD_SINGLE (paper §IV.B).
//
// The service loop polls its node's SPE outbound mailboxes for requests
// (protocol.hpp) and its MPI queue for data addressed to local SPE readers,
// pairing writers with readers:
//   type 2/3, SPE writer:  frame from local store -> MPI send to reader rank
//   type 2/3, SPE reader:  MPI recv -> straight into local store
//   type 4:                pair two local requests -> memcpy LS -> LS
//   type 5:                writer Co-Pilot MPI-sends to reader Co-Pilot
// Completions go back through each SPE's inbound mailbox.
#pragma once

#include <cstdint>

#include "mpisim/mpi.hpp"
#include "pilot/app.hpp"
#include "simtime/sim_time.hpp"

namespace cellpilot {

/// Entry point of the Co-Pilot rank serving Cell node `node`.
/// Runs until the shutdown control message from PI_StopMain; returns 0.
int copilot_main(mpisim::Mpi& mpi, pilot::PilotApp& app, int node);

/// Counters describing the Co-Pilot supervision machinery's activity,
/// process-wide across all Co-Pilot ranks.  Tests use them to pin down
/// that retry/backoff recovered a transient stall (rather than the run
/// accidentally never stalling) and that clean runs never trip
/// supervision at all.
namespace supervision {

/// Requests declared late but recovered within the retry/backoff ladder.
std::uint64_t recovered_count();

/// Requests that exhausted their retries and completed with kSpeTimeout.
std::uint64_t timeout_count();

/// SPE deaths (hardware faults) converted into peer error completions.
std::uint64_t fault_count();

/// Injected Co-Pilot crashes recovered by a standby takeover (the
/// copilot_crash fault kind).
std::uint64_t failover_count();

/// Supervised respawns: SPE deaths absorbed by relaunching the process's
/// program into a fresh context under the -pirespawn budget.
std::uint64_t respawn_count();

/// Operations a respawned incarnation replayed from the journal (writes
/// deduped, reads re-served) instead of re-executing on the wire.
std::uint64_t recovered_op_count();

/// SPE contexts relaunched from the last committed coordinated checkpoint
/// after a blade_kill fault (core/checkpoint).  A kill with no checkpoint
/// degrades to the poison + PILF ladder and counts under fault_count()
/// instead.
std::uint64_t restore_count();

/// Virtual-time span of recovery activity: the earliest crash stamp and
/// the latest recovery-complete stamp over all failovers and respawns
/// since the last reset.  Both 0 when supervision never acted.  Virtual
/// stamps, not wall clock — a load generator can split its latency
/// samples around this window deterministically (bench/loadgen's
/// "degraded-window p99"), which no amount of counter polling can do:
/// the poller's wall-clock position bears no relation to where the
/// recovery landed on the virtual timeline.
simtime::SimTime recovery_begin();
simtime::SimTime recovery_end();

/// Widens the recovery window to include [begin, end] (supervision
/// internals; exposed for the failover/respawn sites).
void note_recovery_span(simtime::SimTime begin, simtime::SimTime end);

/// Zeroes all counters and the recovery window (test isolation).
void reset_counters();

}  // namespace supervision

}  // namespace cellpilot
