// faultplan.hpp — the seeded, deterministic fault-injection plan.
//
// A FaultPlan is a list of rules describing *which* operation at *which*
// site should misbehave, all expressed in terms the simulation already
// makes deterministic: per-site operation ordinals and virtual time.  The
// plan installs itself into the cellsim/mpisim injection seams
// (`cellsim/inject.hpp`, `mpisim/inject.hpp`) and is probed directly by
// the SPE runtime (crash-before-request) and the Co-Pilot loop (service
// delay).  When disarmed the seams hold a null hook and every clean-path
// virtual stamp is bit-for-bit identical to a plan-free build.
//
// Configuration reaches the plan two ways:
//   * the `CELLPILOT_FAULTS` environment variable, read once at startup
//     ("on" arms the machinery with no rules; "off"/unset disarms; any
//     other value is parsed as a spec), and
//   * the `-pifault=<spec>` PI_Configure flag, which overrides it.
//
// Spec grammar (semicolon-separated items):
//
//   spec   := "on" | "off" | item (";" item)*
//   item   := "seed=" N
//           | kind "@" site [":op=" N] [",count=" N] [",delay=" dur]
//   kind   := spe_crash | mbox_stall | dma_fault | copilot_delay
//           | send_delay | send_drop
//           | msg_drop | msg_corrupt | msg_dup | msg_reorder
//           | copilot_crash | blade_kill
//   site   := "*" | an entity name ("node0.spe1", "copilot0", "3->5")
//   dur    := number with optional unit suffix us (default), ms, ns
//
// Example: "seed=7;mbox_stall@node0.spe0:op=2,delay=600us"
//
// Operation ordinals are 1-based and counted per (rule, site); every site
// name denotes a single-threaded actor (one SPE thread, one rank thread,
// one Co-Pilot thread), so the counts — and therefore the injections —
// are deterministic.  `op=0` (the default) derives a small ordinal from
// the seed, so "crash somewhere early" plans vary reproducibly with the
// seed alone.
//
// The msg_* kinds are the recoverable message-level faults: arming any of
// them switches MiniMPI onto the reliable sublayer (mpisim/reliable.hpp),
// which absorbs them with CRC checks, retransmits and a receive window.
// Their send probes are made once per delivery attempt, so a retransmitted
// frame consumes additional ordinals at its link site — deterministic, but
// shifted relative to a plan without retransmissions.  copilot_crash kills
// the Co-Pilot process at a request boundary; the cluster runner's standby
// failover (core/copilot.cpp) takes over from the journal.  blade_kill
// takes out a whole blade (every SPE context plus its Co-Pilot) at a
// request boundary; recovery restores the lost contexts from the last
// committed coordinated checkpoint (core/checkpoint) or, with none,
// degrades to the poison + PILF ladder.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cellsim/errors.hpp"
#include "cellsim/inject.hpp"
#include "mpisim/inject.hpp"
#include "simtime/sim_time.hpp"

namespace cellpilot::faults {

/// What a rule injects.
enum class Kind {
  kSpeCrash,      ///< SPE program dies before issuing its next request
  kSpeCrashMid,   ///< SPE dies mid-message: between mailbox request words,
                  ///< leaving the Co-Pilot a partial assembly
  kMboxStall,     ///< extra virtual delay on an SPU mailbox operation
  kDmaFault,      ///< MFC transfer raises DmaFault
  kCopilotDelay,  ///< extra service time charged to the Co-Pilot
  kSendDelay,     ///< extra transit time on a MiniMPI send
  kSendDrop,      ///< a MiniMPI send is silently lost
  kMsgDrop,       ///< a delivery attempt is lost; reliable layer retransmits
  kMsgCorrupt,    ///< a delivery attempt is damaged; CRC catches it
  kMsgDup,        ///< the frame arrives twice; receive window dedupes
  kMsgReorder,    ///< the frame arrives after its successor on the link
  kCopilotCrash,  ///< the Co-Pilot dies; a standby takes over its journal
  kBladeKill,     ///< a whole blade dies: every SPE context plus its
                  ///< Co-Pilot; recovery restores from the last committed
                  ///< checkpoint (core/checkpoint) or degrades to poison
};

/// Returns the spec keyword for a kind ("spe_crash", ...).
const char* to_string(Kind k);

/// One injection rule.
struct Rule {
  Kind kind = Kind::kMboxStall;
  std::string site = "*";      ///< "*" or an exact entity name
  std::uint64_t op = 0;        ///< 1-based ordinal; 0 = derive from seed
  std::uint64_t count = 1;     ///< consecutive operations affected
  simtime::SimTime delay = 0;  ///< for the delay/stall kinds
};

/// The fault an injected SPE crash raises (FaultCode::kInjected).
class InjectedCrash : public cellsim::HardwareFault {
 public:
  using HardwareFault::HardwareFault;
  cellsim::FaultCode fault_code() const override {
    return cellsim::FaultCode::kInjected;
  }
};

/// The process-wide fault plan.
class FaultPlan {
 public:
  /// The singleton; first call reads CELLPILOT_FAULTS and installs hooks.
  static FaultPlan& global();

  /// Replaces the active plan with `spec` (see grammar above).  Throws
  /// std::invalid_argument on a malformed spec.  Clears all counters.
  void configure(const std::string& spec);

  /// Restores the CELLPILOT_FAULTS baseline (tests call this in teardown
  /// so plans never leak between cases).
  void reset();

  /// Whether any injection machinery is live.
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// The plan's seed (default 0x5eed).
  std::uint64_t seed() const;

  /// The active rules.
  std::vector<Rule> rules() const;

  /// The seed-derived ordinal an `op=0` rule resolves to at `site`
  /// (deterministic in (seed, rule index, site); range [1, 16]).
  std::uint64_t derived_op(std::size_t rule_index,
                           const std::string& site) const;

  // --- probes (called from the seams and from core code) ---

  /// cellsim seam: mailbox stalls/faults and DMA faults.
  cellsim::inject::Action on_cell_site(cellsim::inject::Site site,
                                       const char* owner,
                                       simtime::SimTime now);

  /// mpisim seam: delayed or dropped sends (site "<from>-><to>").
  mpisim::inject::Action on_send(int from, int to, int tag,
                                 simtime::SimTime now);

  /// SPE runtime probe: should the program at `owner` die before issuing
  /// its next Co-Pilot request?
  bool should_crash_spe(const char* owner);

  /// SPE runtime probe: should the program at `owner` die *mid-message* —
  /// after pushing some but not all of a request's mailbox words?  Keyed
  /// by its own rule kind (spe_crash_mid) so arming it never perturbs the
  /// ordinals of existing spe_crash rules.
  bool should_crash_spe_mid(const char* owner);

  /// Co-Pilot probe: extra service delay for this request, if any.
  simtime::SimTime copilot_delay(const char* owner);

  /// Co-Pilot probe: should the Co-Pilot named `owner` (canonical
  /// "nodeN.copilot") die before serving its next request?  A rule site
  /// matches "*", the canonical name, or the "copilotN" alias for node
  /// index `node`; ordinals are always keyed by the canonical name so both
  /// spellings count the same sequence.
  bool should_crash_copilot(const char* owner, int node);

  /// Co-Pilot probe: should the whole blade hosting the Co-Pilot at
  /// `owner` (canonical node name, e.g. "node1") die before the next
  /// request is served?  A rule site matches "*", the canonical node name,
  /// or the "bladeN" alias for node index `node`; ordinals are keyed by
  /// the canonical name.
  bool should_kill_blade(const char* owner, int node);

 private:
  FaultPlan();
  void apply(const std::string& spec);
  bool hit(std::size_t rule_index, const Rule& rule, const std::string& site);

  mutable std::mutex mu_;
  std::string env_spec_;  ///< CELLPILOT_FAULTS baseline, re-applied by reset
  std::vector<Rule> rules_;
  std::uint64_t seed_ = 0x5eed;
  std::atomic<bool> armed_{false};
  /// Operation counters, parallel to rules_: per-site ordinal counts.
  std::vector<std::vector<std::pair<std::string, std::uint64_t>>> counters_;
};

}  // namespace cellpilot::faults
