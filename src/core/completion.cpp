// completion.cpp — engine and registry behind the waitable-handle tier.
#include "core/completion.hpp"

#include <algorithm>

namespace cellpilot::completion {

const char* state_name(State state) {
  switch (state) {
    case State::kPending: return "pending";
    case State::kStaged: return "staged";
    case State::kInFlight: return "in_flight";
    case State::kComplete: return "complete";
    case State::kFaulted: return "faulted";
    case State::kReleased: return "released";
  }
  return "?";
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kWrite: return "write";
    case Kind::kRead: return "read";
  }
  return "?";
}

Engine& Engine::local() {
  thread_local Engine engine;
  return engine;
}

Engine::~Engine() {
  // Short-lived SPE threads die with their engine; anything still live
  // must leave the flight-recorder table with them.
  for (const auto& op : ops_) {
    if (op_state(*op) != State::kReleased) OpRegistry::global().remove(op.get());
  }
}

PI_OP* Engine::create(Kind kind) {
  PI_OP* op;
  if (!free_.empty()) {
    op = free_.back();
    free_.pop_back();
  } else {
    ops_.push_back(std::make_unique<PI_OP>());
    op = ops_.back().get();
  }
  // Reset the recycled slot to a pristine pending operation.  The plan,
  // data and fault_detail buffers keep their capacity on purpose.
  op->kind = kind;
  op->channel = -1;
  op->route_type = 0;
  op->spe_side = false;
  op->blocking = false;
  op->bytes = 0;
  op->file = "";
  op->line = 0;
  op->signature = 0;
  op->token = 0;
  op->submit_begin = 0;
  op->swap = false;
  op->ls_addr = 0;
  op->ls_bytes = 0;
  set_state(*op, State::kPending);
  op->status.store(0, std::memory_order_relaxed);
  op->fault_detail.clear();
  op->registry_id = 0;
  op->owner = this;
  return op;
}

void Engine::release(PI_OP* op) {
  OpRegistry::global().remove(op);
  untrack(op);
  set_state(*op, State::kReleased);
  free_.push_back(op);
}

void Engine::track(PI_OP* op) { inflight_.push_back(op); }

void Engine::untrack(PI_OP* op) {
  inflight_.erase(std::remove(inflight_.begin(), inflight_.end(), op),
                  inflight_.end());
}

PI_OP* Engine::find_token(std::uint32_t token) const {
  for (PI_OP* op : inflight_) {
    if (op->token == token) return op;
  }
  return nullptr;
}

std::uint32_t Engine::next_token() {
  // Token 0 is reserved so a zeroed word never matches an operation.
  token_seq_ = (token_seq_ + 1) & 0x00FFFFFFu;
  if (token_seq_ == 0) token_seq_ = 1;
  return token_seq_;
}

OpRegistry& OpRegistry::global() {
  static OpRegistry registry;
  return registry;
}

void OpRegistry::set_armed(bool armed) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(armed, std::memory_order_relaxed);
  if (!armed) live_.clear();
}

void OpRegistry::add(PI_OP* op, const std::string& entity) {
  if (!armed()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return;
  op->registry_id = next_id_++;
  live_[op->registry_id] = Entry{op, entity};
}

void OpRegistry::remove(PI_OP* op) {
  if (op->registry_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(op->registry_id);
  op->registry_id = 0;
}

std::vector<PendingOp> OpRegistry::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingOp> out;
  out.reserve(live_.size());
  for (const auto& [id, entry] : live_) {
    const PI_OP& op = *entry.op;
    PendingOp row;
    row.id = id;
    row.kind = op.kind;
    row.state = op_state(op);
    row.status = op.status.load(std::memory_order_relaxed);
    row.channel = op.channel;
    row.route_type = op.route_type;
    row.spe_side = op.spe_side;
    row.blocking = op.blocking;
    row.bytes = op.bytes;
    row.entity = entry.entity;
    row.file = op.file == nullptr ? "" : op.file;
    row.line = op.line;
    row.submit_begin = op.submit_begin;
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace cellpilot::completion
