#include "core/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "core/metrics.hpp"
#include "core/telemetry.hpp"
#include "mpisim/reliable.hpp"
#include "mpisim/types.hpp"
#include "pilot/tables.hpp"

namespace cellpilot::trace {

// ---------------------------------------------------------------------------
// ChannelCounters

struct ChannelCounters::Impl {
  struct Cell {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> payload_bytes{0};
    std::atomic<std::uint64_t> copilot_hops{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> faults{0};
    std::atomic<std::uint64_t> retransmits{0};
    std::atomic<std::uint64_t> duplicates{0};
    std::atomic<std::uint64_t> corrupt_detected{0};
    std::atomic<std::uint64_t> respawns{0};
    std::atomic<std::uint64_t> recovered_ops{0};
    std::atomic<std::uint64_t> checkpoints{0};
    std::atomic<std::uint64_t> restores{0};
  };
  std::mutex mu;  ///< guards resizing only; cells are touched lock-free
  std::vector<std::unique_ptr<Cell>> cells;

  Cell* cell(int channel) {
    // `cells` only grows under reset(), which runs at route compilation —
    // before any traffic — so indexing during traffic is race-free.
    if (channel < 0 || static_cast<std::size_t>(channel) >= cells.size()) {
      return nullptr;
    }
    return cells[static_cast<std::size_t>(channel)].get();
  }
};

ChannelCounters& ChannelCounters::global() {
  static ChannelCounters* g = new ChannelCounters;
  return *g;
}

ChannelCounters::Impl* ChannelCounters::impl() {
  static Impl* g = new Impl;
  return g;
}

const ChannelCounters::Impl* ChannelCounters::impl() const {
  return const_cast<ChannelCounters*>(this)->impl();
}

namespace {

/// mpisim::reliable -> ChannelCounters bridge: the reliable layer knows
/// tags, not channels, so the event carries the tag and we attribute it
/// here.  Ack/reorder events are timing bookkeeping, not channel stats.
void reliable_event_trampoline(mpisim::reliable::Event event, int tag) {
  const int channel = channel_of_tag(tag);
  switch (event) {
    case mpisim::reliable::Event::kRetransmit:
      ChannelCounters::global().add_retransmit(channel);
      break;
    case mpisim::reliable::Event::kDuplicate:
      ChannelCounters::global().add_duplicate(channel);
      break;
    case mpisim::reliable::Event::kCorrupt:
      ChannelCounters::global().add_corrupt(channel);
      break;
    case mpisim::reliable::Event::kAck:
    case mpisim::reliable::Event::kReorder:
    case mpisim::reliable::Event::kStale:
      break;
  }
}

}  // namespace

void ChannelCounters::reset(std::size_t channels) {
  Impl* im = impl();
  std::lock_guard lock(im->mu);
  im->cells.clear();
  im->cells.reserve(channels);
  for (std::size_t i = 0; i < channels; ++i) {
    im->cells.push_back(std::make_unique<Impl::Cell>());
  }
  mpisim::reliable::set_observer(&reliable_event_trampoline);
}

std::size_t ChannelCounters::size() const {
  const Impl* im = impl();
  std::lock_guard lock(const_cast<Impl*>(im)->mu);
  return im->cells.size();
}

void ChannelCounters::add_message(int channel, std::uint64_t payload_bytes) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->messages.fetch_add(1, std::memory_order_relaxed);
    c->payload_bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_copilot_hop(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->copilot_hops.fetch_add(1, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_retry(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->retries.fetch_add(1, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_timeout(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->timeouts.fetch_add(1, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_fault(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->faults.fetch_add(1, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_retransmit(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->retransmits.fetch_add(1, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_duplicate(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->duplicates.fetch_add(1, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_corrupt(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->corrupt_detected.fetch_add(1, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_respawn(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->respawns.fetch_add(1, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_recovered_op(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->recovered_ops.fetch_add(1, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_checkpoint(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->checkpoints.fetch_add(1, std::memory_order_relaxed);
  }
}

void ChannelCounters::add_restore(int channel) {
  if (Impl::Cell* c = impl()->cell(channel)) {
    c->restores.fetch_add(1, std::memory_order_relaxed);
  }
}

ChannelStats ChannelCounters::snapshot(int channel) const {
  ChannelStats s;
  Impl* im = const_cast<ChannelCounters*>(this)->impl();
  if (Impl::Cell* c = im->cell(channel)) {
    s.messages = c->messages.load(std::memory_order_relaxed);
    s.payload_bytes = c->payload_bytes.load(std::memory_order_relaxed);
    s.copilot_hops = c->copilot_hops.load(std::memory_order_relaxed);
    s.retries = c->retries.load(std::memory_order_relaxed);
    s.timeouts = c->timeouts.load(std::memory_order_relaxed);
    s.faults = c->faults.load(std::memory_order_relaxed);
    s.retransmits = c->retransmits.load(std::memory_order_relaxed);
    s.duplicates = c->duplicates.load(std::memory_order_relaxed);
    s.corrupt_detected = c->corrupt_detected.load(std::memory_order_relaxed);
    s.respawns = c->respawns.load(std::memory_order_relaxed);
    s.recovered_ops = c->recovered_ops.load(std::memory_order_relaxed);
    s.checkpoints = c->checkpoints.load(std::memory_order_relaxed);
    s.restores = c->restores.load(std::memory_order_relaxed);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Tag attribution

int channel_of_tag(std::int64_t tag) {
  // Channel id `c` travels as tag kChannelTagBase + c; everything at or
  // above kReservedTagBase is pilot control traffic.  (Raw mpisim users
  // with small tags fall below the base and stay unattributed.)
  if (tag >= pilot::kChannelTagBase && tag < mpisim::kReservedTagBase) {
    return static_cast<int>(tag - pilot::kChannelTagBase);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Chrome trace JSON

namespace {

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
}

/// Virtual nanoseconds -> microseconds with exactly three decimals, via
/// integer arithmetic so the text is reproducible on any libc.
void append_us(std::string& out, simtime::SimTime ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const std::vector<JobBatch>& batches) {
  std::string out;
  out += "{\n\"traceEvents\":[\n";
  bool first = true;
  std::uint64_t dropped_total = 0;
  for (const JobBatch& b : batches) {
    dropped_total += b.dropped;
    // Stable tid per entity: 1-based index in name order within this job.
    std::map<std::string, int> tids;
    for (const auto& e : b.events) tids.emplace(e.entity, 0);
    int next = 1;
    for (auto& [name, tid] : tids) tid = next++;

    for (const auto& [name, tid] : tids) {
      if (!first) out += ",\n";
      first = false;
      char head[64];
      std::snprintf(head, sizeof head,
                    "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,", b.job, tid);
      out += head;
      out += "\"name\":\"thread_name\",\"args\":{\"name\":\"";
      append_json_escaped(out, name.c_str());
      out += "\"}}";
    }

    for (const auto& e : b.events) {
      if (!first) out += ",\n";
      first = false;
      char head[64];
      std::snprintf(head, sizeof head, "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,",
                    b.job, tids[e.entity]);
      out += head;
      out += "\"ts\":";
      append_us(out, e.begin);
      out += ",\"dur\":";
      append_us(out, e.end - e.begin);
      out += ",\"name\":\"";
      out += simtime::tracebuf::kind_name(e.kind);
      out += "\",\"cat\":\"cellpilot\",\"args\":{\"entity\":\"";
      append_json_escaped(out, e.entity);
      char tail[128];
      std::snprintf(tail, sizeof tail,
                    "\",\"channel\":%d,\"route\":%d,\"bytes\":%llu,"
                    "\"aux\":%lld}}",
                    e.channel, static_cast<int>(e.route_type),
                    static_cast<unsigned long long>(e.bytes),
                    static_cast<long long>(e.aux));
      out += tail;
    }
  }
  out += "\n],\n\"displayTimeUnit\":\"ms\",\n";
  char meta[96];
  std::snprintf(meta, sizeof meta,
                "\"otherData\":{\"generator\":\"cellpilot\",\"jobs\":%zu,"
                "\"droppedEvents\":%llu,\n",
                batches.size(),
                static_cast<unsigned long long>(dropped_total));
  out += meta;
  out += "\"channelStats\":[";
  bool first_ch = true;
  for (const JobBatch& b : batches) {
    for (const ChannelSummary& ch : b.channels) {
      if (!first_ch) out += ",";
      first_ch = false;
      out += "\n{\"job\":";
      out += std::to_string(b.job);
      out += ",\"channel\":";
      out += std::to_string(ch.channel);
      out += ",\"name\":\"";
      append_json_escaped(out, ch.name.c_str());
      char stats[256];
      std::snprintf(
          stats, sizeof stats,
          "\",\"route\":%d,\"messages\":%llu,\"payloadBytes\":%llu,"
          "\"copilotHops\":%llu,\"retries\":%llu,\"timeouts\":%llu,"
          "\"faults\":%llu",
          ch.route_type, static_cast<unsigned long long>(ch.stats.messages),
          static_cast<unsigned long long>(ch.stats.payload_bytes),
          static_cast<unsigned long long>(ch.stats.copilot_hops),
          static_cast<unsigned long long>(ch.stats.retries),
          static_cast<unsigned long long>(ch.stats.timeouts),
          static_cast<unsigned long long>(ch.stats.faults));
      out += stats;
      // Reliable-layer counters only exist when faults were injected;
      // emitting them conditionally keeps clean-run traces byte-identical
      // to builds that predate the reliable layer.
      if (ch.stats.retransmits != 0 || ch.stats.duplicates != 0 ||
          ch.stats.corrupt_detected != 0) {
        char rel[160];
        std::snprintf(
            rel, sizeof rel,
            ",\"retransmits\":%llu,\"duplicates\":%llu,"
            "\"corruptDetected\":%llu",
            static_cast<unsigned long long>(ch.stats.retransmits),
            static_cast<unsigned long long>(ch.stats.duplicates),
            static_cast<unsigned long long>(ch.stats.corrupt_detected));
        out += rel;
      }
      // Same conditional-emission contract for the self-healing counters:
      // only a run that actually respawned a writer widens the record.
      if (ch.stats.respawns != 0 || ch.stats.recovered_ops != 0) {
        char heal[96];
        std::snprintf(heal, sizeof heal,
                      ",\"respawns\":%llu,\"recoveredOps\":%llu",
                      static_cast<unsigned long long>(ch.stats.respawns),
                      static_cast<unsigned long long>(ch.stats.recovered_ops));
        out += heal;
      }
      // And for the checkpoint counters: only a run that actually cut a
      // coordinated snapshot (or restored from one) widens the record.
      if (ch.stats.checkpoints != 0 || ch.stats.restores != 0) {
        char ckpt[96];
        std::snprintf(ckpt, sizeof ckpt,
                      ",\"checkpoints\":%llu,\"restores\":%llu",
                      static_cast<unsigned long long>(ch.stats.checkpoints),
                      static_cast<unsigned long long>(ch.stats.restores));
        out += ckpt;
      }
      out += "}";
    }
  }
  out += "\n]}\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// TraceSession

namespace {

struct SessionState {
  std::mutex mu;
  bool armed = false;
  std::string path;
  std::vector<JobBatch> batches;
  int next_job = 1;
  std::atomic<int> captures{0};

  void arm_with(const std::string& p) {
    if (!armed) {
      simtime::tracebuf::arm();
      armed = true;
    }
    path = p;
  }
};

SessionState& session_state() {
  static SessionState* g = new SessionState;
  return *g;
}

}  // namespace

TraceSession::TraceSession() {
  SessionState& st = session_state();
  std::lock_guard lock(st.mu);
  const char* env = std::getenv("CELLPILOT_TRACE");
  if (env != nullptr) {
    if (env[0] != '\0') {
      st.arm_with(env);
    } else {
      // Loud ignore, matching CELLPILOT_RESPAWN/CELLPILOT_CKPT_EVERY: an
      // empty value keeps tracing disarmed instead of arming it with an
      // unwritable path.
      std::fprintf(stderr,
                   "cellpilot: ignoring empty CELLPILOT_TRACE "
                   "(tracing stays disarmed)\n");
    }
  }
}

TraceSession& TraceSession::global() {
  static TraceSession* g = new TraceSession;
  return *g;
}

void TraceSession::configure(const std::string& path) {
  SessionState& st = session_state();
  std::lock_guard lock(st.mu);
  st.batches.clear();
  st.next_job = 1;
  st.arm_with(path);
  simtime::tracebuf::clear();
}

bool TraceSession::armed() const {
  SessionState& st = session_state();
  std::lock_guard lock(st.mu);
  return st.armed;
}

const std::string& TraceSession::path() const {
  SessionState& st = session_state();
  std::lock_guard lock(st.mu);
  return st.path;
}

void TraceSession::flush_job(const std::vector<ChannelSummary>& channels) {
  SessionState& st = session_state();
  std::lock_guard lock(st.mu);
  if (!st.armed) return;
  if (st.captures.load(std::memory_order_relaxed) > 0) return;

  JobBatch batch;
  batch.job = st.next_job++;
  batch.dropped = simtime::tracebuf::dropped();
  batch.events = simtime::tracebuf::drain();
  batch.channels = channels;
  // Attribute MPI legs to channels post-hoc: mpisim records the tag, the
  // tag encodes the channel.
  for (auto& e : batch.events) {
    if (e.channel < 0) e.channel = channel_of_tag(e.aux);
  }
  st.batches.push_back(std::move(batch));

  // Rewrite the whole file each flush so a multi-job binary always leaves
  // a complete, well-formed trace behind, even if a later job aborts.
  std::ofstream f(st.path, std::ios::binary | std::ios::trunc);
  if (f) f << chrome_trace_json(st.batches);
}

void TraceSession::reset_for_tests() {
  SessionState& st = session_state();
  std::lock_guard lock(st.mu);
  if (st.armed) {
    simtime::tracebuf::disarm();
    st.armed = false;
  }
  st.batches.clear();
  st.next_job = 1;
  st.path.clear();
  simtime::tracebuf::clear();
  const char* env = std::getenv("CELLPILOT_TRACE");
  if (env != nullptr && env[0] != '\0') st.arm_with(env);
}

void TraceSession::adjust_captures(int delta) {
  session_state().captures.fetch_add(delta, std::memory_order_relaxed);
}

bool TraceSession::capture_active() const {
  return session_state().captures.load(std::memory_order_relaxed) > 0;
}

// ---------------------------------------------------------------------------
// ScopedTraceCapture

ScopedTraceCapture::ScopedTraceCapture() {
  session_state().captures.fetch_add(1, std::memory_order_relaxed);
  metrics::MetricsSession::global().adjust_captures(1);
  telemetry::TelemetrySession::global().adjust_captures(1);
  simtime::tracebuf::clear();
  simtime::tracebuf::arm();
  // Clear the sibling engines at both capture boundaries so that, when
  // their sessions are armed too, the suppressed job's samples cannot
  // leak into the next flushed report (see core/metrics.hpp).
  simtime::metrics::clear();
  simtime::timeseries::clear();
}

ScopedTraceCapture::~ScopedTraceCapture() {
  simtime::tracebuf::disarm();
  simtime::tracebuf::clear();
  simtime::metrics::clear();
  simtime::timeseries::clear();
  telemetry::TelemetrySession::global().adjust_captures(-1);
  metrics::MetricsSession::global().adjust_captures(-1);
  session_state().captures.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<simtime::tracebuf::Event> ScopedTraceCapture::drain() {
  auto events = simtime::tracebuf::drain();
  for (auto& e : events) {
    if (e.channel < 0) e.channel = channel_of_tag(e.aux);
  }
  return events;
}

}  // namespace cellpilot::trace
