// spe_runtime.hpp — the CellPilot runtime resident on each SPE.
//
// This is the SPE half of the paper's design: a slim layer (the bulk of the
// messaging logic lives in the Co-Pilot, conserving local store) that
//   * stages the message described by a PI_Write/PI_Read format into a
//     local-store buffer,
//   * issues the 4-word mailbox request to the node's Co-Pilot, and
//   * stalls on the inbound mailbox for the completion word.
// Its local-store footprint (protocol.hpp: kCellPilotSpuFootprintBytes,
// modelled on the paper's 10 336-byte cellpilot.o) is reserved when an SPE
// program starts, so user code sees the same 256 KB budget as on hardware.
#pragma once

#include <cstdint>
#include <span>

#include "core/completion.hpp"
#include "pilot/app.hpp"
#include "pilot/tables.hpp"

namespace cellpilot {

/// Arguments ferried to an SPE program through the libspe2 `argp`
/// mechanism.  Built by PI_RunSPE; consumed by the PI_SPE_PROGRAM
/// trampoline.
struct SpeLaunchArgs {
  pilot::PilotApp* app = nullptr;
  int process_id = -1;  ///< the SPE process being embodied
  int arg = 0;          ///< user int argument from PI_RunSPE
  void* ptr = nullptr;  ///< user pointer argument from PI_RunSPE
};

namespace detail {

/// Signature of the user's SPE process body (the code between the
/// PI_SPE_PROGRAM braces).
using SpeBody = int (*)(int, void*);

/// Trampoline called by the generated `<name>_pi_entry`: unpacks
/// SpeLaunchArgs, reserves the CellPilot runtime's local-store segment,
/// binds the Pilot SPE dispatch record, runs `body`, and unwinds cleanly.
int run_spe_body(std::uint64_t argp, SpeBody body);

}  // namespace detail

/// SPE-side blocking channel write: stage payload in local store, request
/// the Co-Pilot, await completion.  Throws PilotError on protocol errors.
void spe_channel_write(pilot::PilotApp& app, const PI_CHANNEL& ch,
                       std::uint32_t sig, std::span<const std::byte> payload);

/// SPE-side blocking channel read into `out` (exactly out.size() bytes).
void spe_channel_read(pilot::PilotApp& app, const PI_CHANNEL& ch,
                      std::uint32_t sig, std::span<std::byte> out);

// --- async tier -----------------------------------------------------------
//
// The async opcodes carry a completion token, so an SPE may have several
// operations in flight while it computes; the Co-Pilot answers each with a
// packed (status | token) word.  Outstanding operations are capped at the
// inbound-mailbox depth (4, as on hardware): that guarantee is what lets
// the Co-Pilot deliver every completion without ever blocking on a full
// mailbox of an SPE that is busy computing.

/// Stages `payload` and issues an async write request.  On return `op` is
/// in flight (token assigned, local-store staging parked until harvest).
void spe_submit_channel_write(PI_OP& op, const PI_CHANNEL& ch,
                              std::uint32_t sig,
                              std::span<const std::byte> payload);

/// Issues an async read request for `bytes` payload bytes.
void spe_submit_channel_read(PI_OP& op, const PI_CHANNEL& ch,
                             std::uint32_t sig, std::size_t bytes);

/// Stalls until `op` settles, then harvests: copies a read's staging into
/// `out` (out.size() == submitted bytes) and frees the local store.
/// Throws PilotError if the operation faulted (staging freed first).
void spe_wait_channel_op(PI_OP& op, const PI_CHANNEL& ch,
                         std::span<std::byte> out);

/// Non-blocking poll: drains arrived completion words; harvests like
/// spe_wait_channel_op when `op` has settled.  Returns false if `op` is
/// still in flight.
bool spe_test_channel_op(PI_OP& op, const PI_CHANNEL& ch,
                         std::span<std::byte> out);

/// Stalls until one of `ops` settles and returns its index — without
/// harvesting (call spe_wait_channel_op on the winner, which returns
/// immediately).  At least one op must be in flight or already settled.
int spe_wait_any_channel_op(PI_OP* const* ops, int n);

/// Drains every outstanding async operation of the calling SPE thread,
/// discarding results and fault statuses.  Called when an SPE program
/// returns with handles still in flight, so the next occupant of the
/// context starts with an empty mailbox and the Co-Pilot is never left
/// blocked on an abandoned completion.
void spe_drain_outstanding();

}  // namespace cellpilot
