// completion.hpp — the async completion engine under PI_Write / PI_Read.
//
// Every channel transfer — blocking or async, rank- or SPE-side — is an
// *operation* moving through a small state machine:
//
//   pending -> staged -> in-flight -> complete | faulted -> released
//
// The blocking tier (PI_Write / PI_Read) is submit + wait fused into one
// call; the async tier (PI_WriteAsync / PI_ReadAsync returning PI_HANDLE,
// then PI_Wait / PI_Test / PI_WaitAny) splits the same path in two.  The
// operation object carries everything the deferred half needs: the
// reader's scatter plan, the local-store staging an SPE write parked with
// its Co-Pilot, the completion token matching a mailbox word back to its
// operation, and the fault status a failed peer left behind.
//
// Threading model: operations are owned by the *submitting* thread's
// engine (one engine per rank/SPE thread, thread-local).  Handles must be
// waited on the thread that submitted them — the same rule MPI requests
// live by — which keeps the engine lock-free.  The only cross-thread
// reader is the flight recorder's watchdog, which sees operations through
// the OpRegistry below: immutable fields are copied at registration and
// the mutable state/status fields are atomics, so a mid-run snapshot is
// race-free without a lock on the hot path.
//
// This file is compiled into the *pilot* library (like core/router) so the
// PI_* implementation can execute it; the core layer links below it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pilot/wire.hpp"
#include "simtime/sim_time.hpp"

namespace cellpilot::completion {

/// Which way the operation moves data.
enum class Kind : std::uint8_t {
  kWrite = 0,
  kRead = 1,
};

/// The operation state machine.  kReleased marks a recycled slot so a
/// double PI_Wait is caught as a usage error instead of corrupting state.
enum class State : std::uint8_t {
  kPending = 0,   ///< created, nothing staged yet
  kStaged,        ///< payload marshalled / staging allocated
  kInFlight,      ///< handed to the transport (MPI deposit or Co-Pilot)
  kComplete,      ///< transfer done; result awaiting harvest
  kFaulted,       ///< peer failure recorded; harvest will throw
  kReleased,      ///< harvested and back on the free list
};

/// Stable lower-case tokens (flight-recorder JSON and tests).
const char* state_name(State state);
const char* kind_name(Kind kind);

class Engine;

}  // namespace cellpilot::completion

/// One operation.  This is the type behind the public PI_HANDLE.
struct PI_OP {
  // Immutable per submission (set before the operation becomes visible
  // to the registry, constant until released).
  cellpilot::completion::Kind kind = cellpilot::completion::Kind::kWrite;
  int channel = -1;
  std::int8_t route_type = 0;
  bool spe_side = false;
  bool blocking = false;          ///< submitted by the blocking veneer
  std::uint64_t bytes = 0;        ///< payload bytes
  const char* file = "";          ///< PI_WriteAsync/... call site
  int line = 0;
  std::uint32_t signature = 0;    ///< resolved wire signature
  std::uint32_t token = 0;        ///< SPE completion token (async opcodes)
  simtime::SimTime submit_begin = 0;

  // Deferred-read state: the scatter plan captured at submit (holds the
  // caller's destination pointers — they must stay alive until harvest)
  // and a host staging buffer private to this operation so overlapping
  // reads on one channel cannot collide.
  pilot::ReadPlan plan;
  std::vector<std::byte> data;
  bool swap = false;              ///< writer is big-endian: swap at harvest

  // SPE-side staging: a local-store buffer held until harvest so the
  // Co-Pilot can read/fill it while the SPE program keeps computing.
  std::uint32_t ls_addr = 0;
  std::uint32_t ls_bytes = 0;

  // Mutable while in flight (atomic: the flight recorder may snapshot
  // from the watchdog thread mid-run).
  std::atomic<std::uint8_t> state{0};   ///< completion::State
  std::atomic<std::uint32_t> status{0}; ///< CompletionStatus once settled
  std::string fault_detail;             ///< rank-side failure diagnostic

  // Bookkeeping.
  std::uint64_t registry_id = 0;
  cellpilot::completion::Engine* owner = nullptr;
};

namespace cellpilot::completion {

inline State op_state(const PI_OP& op) {
  return static_cast<State>(op.state.load(std::memory_order_relaxed));
}
inline void set_state(PI_OP& op, State s) {
  op.state.store(static_cast<std::uint8_t>(s), std::memory_order_relaxed);
}
inline bool is_settled(const PI_OP& op) {
  const State s = op_state(op);
  return s == State::kComplete || s == State::kFaulted;
}

/// Per-thread operation arena.  Owns every PI_OP the thread ever
/// submitted; released operations are recycled through a free list so a
/// long-running farm does not grow the arena per message.
class Engine {
 public:
  /// The calling thread's engine (created on first use).
  static Engine& local();

  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// A fresh (or recycled) operation in kPending state.
  PI_OP* create(Kind kind);

  /// Returns the operation to the free list (state -> kReleased) and
  /// removes it from the registry.
  void release(PI_OP* op);

  /// Whether this engine owns `op` — PI_Wait on a handle from another
  /// thread is a usage error, detected through this.
  bool owns(const PI_OP* op) const { return op != nullptr && op->owner == this; }

  /// Operations currently live in this arena (created and not yet
  /// released) — the per-engine pending-op gauge the telemetry layer
  /// samples at submit/harvest seams.  Per-thread, so deterministic.
  int live() const {
    return static_cast<int>(ops_.size() - free_.size());
  }

  /// SPE-side in-flight tracking: operations awaiting a completion word.
  void track(PI_OP* op);
  void untrack(PI_OP* op);
  PI_OP* find_token(std::uint32_t token) const;
  int inflight() const { return static_cast<int>(inflight_.size()); }

  /// Copy of the in-flight list (the SPE epilogue drain mutates the real
  /// one while iterating).
  std::vector<PI_OP*> snapshot_inflight() const { return inflight_; }

  /// Next SPE completion token (24-bit wrap, never 0 twice in flight for
  /// realistic depths — outstanding operations are capped well below 2^24).
  std::uint32_t next_token();

 private:
  Engine() = default;

  std::vector<std::unique_ptr<PI_OP>> ops_;
  std::vector<PI_OP*> free_;
  std::vector<PI_OP*> inflight_;
  std::uint32_t token_seq_ = 0;
};

/// One row of the flight recorder's pending-operation table.
struct PendingOp {
  std::uint64_t id = 0;
  Kind kind = Kind::kWrite;
  State state = State::kPending;
  std::uint32_t status = 0;
  int channel = -1;
  std::int8_t route_type = 0;
  bool spe_side = false;
  bool blocking = false;
  std::uint64_t bytes = 0;
  std::string entity;
  std::string file;
  int line = 0;
  simtime::SimTime submit_begin = 0;
};

/// Process-wide table of live operations, for the flight recorder's
/// postmortems.  Armed together with the recorder; when disarmed (the
/// default) registration is a single relaxed load, so the data plane pays
/// nothing for observability it did not ask for.
class OpRegistry {
 public:
  static OpRegistry& global();

  void set_armed(bool armed);
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Registers `op` under `entity` (submitting rank/SPE name).  No-op
  /// when disarmed.  Safe to call from any simulation thread.
  void add(PI_OP* op, const std::string& entity);

  /// Unregisters `op` (harvest, release, or engine teardown).
  void remove(PI_OP* op);

  /// Snapshot of every live operation, ordered by registration id —
  /// deterministic for a deterministic program.  Safe mid-run.
  std::vector<PendingOp> pending() const;

 private:
  OpRegistry() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  struct Entry {
    const PI_OP* op;
    std::string entity;
  };
  std::map<std::uint64_t, Entry> live_;
};

}  // namespace cellpilot::completion
