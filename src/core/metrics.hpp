#pragma once
/// \file
/// CellPilot vocabulary over the simtime::metrics histogram engine.
///
/// Mirrors core/trace layer-for-layer:
///
///  * MetricsSession — the `-pimetrics=FILE` / `CELLPILOT_METRICS`
///    plumbing.  While armed, the instrumented seams (pilot API, SPE
///    runtime, Co-Pilot loop, SPU mailbox intrinsic, mpisim reliable
///    sublayer) record virtual-ns samples; cellpilot::run's epilogue
///    (full quiescence, same point as the trace flush) drains the
///    registry into a per-job report and rewrites the whole JSON file.
///    Every number in the report is an exact integer derived from virtual
///    stamps, so two runs of the same program produce byte-identical
///    reports — the `metrics-parity` CI job plus the `tracestats`
///    cross-oracle turn that into an enforced invariant.
///
///  * ScopedMetricsCapture — the in-process test harness, RAII like
///    ScopedTraceCapture.  While either capture kind is active *both*
///    session flushes are suppressed and both engines are cleared at the
///    capture boundary, so the per-job numbering of the trace file and
///    the metrics report stay aligned (tracestats joins them by job).
///
///  * LatencyLedger — the online half of end-to-end message latency.
///    Each completed write pushes its begin stamp into a per-channel
///    FIFO *before* the payload is handed to the transport (so the push
///    happens-before any read completion); each successful read pops one
///    stamp and records `read_end - write_begin`.  The offline oracle
///    (tools/tracestats) pairs the k-th write with the k-th read of the
///    same channel in canonical trace order — the same pairing — so the
///    two totals agree exactly.

#include <cstdint>
#include <string>
#include <vector>

#include "simtime/metrics.hpp"
#include "simtime/sim_time.hpp"

namespace cellpilot::metrics {

/// The `-pimetrics` / `CELLPILOT_METRICS` session.  Thread-safe; all
/// methods other than the engine-level armed() take an internal lock.
class MetricsSession {
 public:
  static MetricsSession& global();

  /// Arm for this process with an explicit output path (`-pimetrics=FILE`).
  /// Restarts the accumulated report list, same semantics as TraceSession.
  void configure(const std::string& path);

  bool armed() const;
  const std::string& path() const;

  /// Drain the engine into a new per-job report and rewrite the output
  /// file.  Called by cellpilot::run's epilogue at full quiescence.
  /// No-op while any scoped capture (trace or metrics) is active.
  void flush_job();

  /// Test hook: drop all state and re-read CELLPILOT_METRICS.
  void reset_for_tests();

  /// Internal capture bookkeeping: ScopedTraceCapture/ScopedMetricsCapture
  /// bump this on both sessions so job numbering stays aligned across the
  /// trace file and the metrics report.
  void adjust_captures(int delta);

 private:
  MetricsSession();
};

/// One flushed job: ordinal plus the canonical series drain.
struct JobReport {
  int job = 0;
  std::vector<simtime::metrics::Series> series;
};

/// Render accumulated reports as the metrics JSON (exposed for tests).
/// Line-oriented: every per-series and per-route record sits alone on a
/// line tagged "agg":"series" / "agg":"route", which is what tracestats'
/// --check-metrics mode parses.
std::string metrics_report_json(const std::vector<JobReport>& jobs);

/// RAII test harness: clear + arm on construction, disarm + clear on
/// destruction; suppresses both session flushes for its lifetime.
class ScopedMetricsCapture {
 public:
  ScopedMetricsCapture();
  ~ScopedMetricsCapture();
  ScopedMetricsCapture(const ScopedMetricsCapture&) = delete;
  ScopedMetricsCapture& operator=(const ScopedMetricsCapture&) = delete;

  /// Drain everything recorded so far (canonical order).
  std::vector<simtime::metrics::Series> drain();
};

/// Per-channel FIFO of write-begin stamps for end-to-end latency.  Sized
/// by Router::compile (before any traffic), like ChannelCounters.  All
/// operations are cheap and mutex-guarded; callers gate on
/// simtime::metrics::armed() so the disarmed path never touches it.
class LatencyLedger {
 public:
  static LatencyLedger& global();

  void reset(std::size_t channels);

  /// Record a write's begin stamp.  Out-of-range channels are ignored.
  void push(int channel, simtime::SimTime write_begin);

  /// Pop the oldest stamp for the channel.  Returns false (and leaves
  /// *write_begin alone) for out-of-range channels or an empty FIFO —
  /// which cannot happen for a successful read, but a fault path may
  /// leave stamps behind, and those are simply never popped.
  bool pop(int channel, simtime::SimTime* write_begin);

 private:
  LatencyLedger() = default;
  struct Impl;
  Impl* impl();
};

}  // namespace cellpilot::metrics
