#include "core/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <utility>

#include "benchkit/benchjson.hpp"
#include "core/metrics.hpp"
#include "core/trace.hpp"

namespace cellpilot::telemetry {

// ---------------------------------------------------------------------------
// Report JSON

std::string telemetry_report_json(const std::vector<JobTelemetry>& jobs,
                                  simtime::SimTime window_ns) {
  benchkit::BenchJson doc("telemetry");
  doc.meta("unit", std::string("virtual_ns"));
  doc.meta("windowNs", static_cast<std::int64_t>(window_ns));
  std::int64_t job_count = 0;
  for (const JobTelemetry& jt : jobs) {
    job_count = std::max<std::int64_t>(job_count, jt.job);
  }
  doc.meta("jobs", job_count);
  for (const JobTelemetry& jt : jobs) {
    for (const auto& s : jt.series) {
      for (const auto& [win, cell] : s.windows) {
        doc.add_row()
            .set("job", static_cast<std::int64_t>(jt.job))
            .set("kind",
                 std::string(simtime::timeseries::kind_name(s.key.kind)))
            .set("route", static_cast<std::int64_t>(s.key.route_type))
            .set("channel", static_cast<std::int64_t>(s.key.channel))
            .set("entity", s.key.entity)
            .set("win", win)
            .set("count", static_cast<std::int64_t>(cell.count))
            .set("sum", cell.sum)
            .set("min", cell.min)
            .set("max", cell.max);
      }
    }
  }
  return doc.to_string();
}

// ---------------------------------------------------------------------------
// TelemetrySession

namespace {

struct TelemetryState {
  std::mutex mu;
  bool armed = false;
  std::string path;
  std::vector<JobTelemetry> reports;
  int next_job = 1;
  std::atomic<int> captures{0};

  void arm_with(const std::string& p) {
    if (!armed) {
      simtime::timeseries::arm();
      armed = true;
    }
    path = p;
  }
};

TelemetryState& telemetry_state() {
  static TelemetryState* g = new TelemetryState;
  return *g;
}

}  // namespace

namespace {

/// CELLPILOT_TELEMETRY_EVERY (virtual microseconds).  Shared by the
/// constructor and reset_for_tests so both read the environment through
/// the same guard: positive numbers set the window, anything else is a
/// loud no-op.
void apply_env_window() {
  const char* every = std::getenv("CELLPILOT_TELEMETRY_EVERY");
  if (every == nullptr || every[0] == '\0') return;
  char* end = nullptr;
  const double us = std::strtod(every, &end);
  if (end != every && *end == '\0' && us > 0) {
    simtime::timeseries::set_window(simtime::us(us));
  } else {
    std::fprintf(stderr,
                 "cellpilot: ignoring CELLPILOT_TELEMETRY_EVERY=\"%s\" "
                 "(not a positive microsecond count)\n",
                 every);
  }
}

}  // namespace

TelemetrySession::TelemetrySession() {
  TelemetryState& st = telemetry_state();
  std::lock_guard lock(st.mu);
  // Window first, arming second, so an env-armed session never records a
  // sample under the default window and then shrinks it mid-run.
  apply_env_window();
  const char* env = std::getenv("CELLPILOT_TELEMETRY");
  if (env != nullptr) {
    if (env[0] != '\0') {
      st.arm_with(env);
    } else {
      // Loud ignore, matching CELLPILOT_RESPAWN/CELLPILOT_CKPT_EVERY: an
      // empty value keeps the layer disarmed instead of arming it with an
      // unwritable path.
      std::fprintf(stderr,
                   "cellpilot: ignoring empty CELLPILOT_TELEMETRY "
                   "(telemetry stays disarmed)\n");
    }
  }
}

TelemetrySession& TelemetrySession::global() {
  static TelemetrySession* g = new TelemetrySession;
  return *g;
}

void TelemetrySession::configure(const std::string& path) {
  TelemetryState& st = telemetry_state();
  std::lock_guard lock(st.mu);
  st.reports.clear();
  st.next_job = 1;
  st.arm_with(path);
  simtime::timeseries::clear();
}

void TelemetrySession::configure_window(simtime::SimTime window_ns) {
  simtime::timeseries::set_window(window_ns);
}

bool TelemetrySession::armed() const {
  TelemetryState& st = telemetry_state();
  std::lock_guard lock(st.mu);
  return st.armed;
}

const std::string& TelemetrySession::path() const {
  TelemetryState& st = telemetry_state();
  std::lock_guard lock(st.mu);
  return st.path;
}

simtime::SimTime TelemetrySession::window_ns() const {
  return simtime::timeseries::window();
}

void TelemetrySession::flush_job() {
  TelemetryState& st = telemetry_state();
  std::lock_guard lock(st.mu);
  if (!st.armed) return;
  if (st.captures.load(std::memory_order_relaxed) > 0) return;

  JobTelemetry report;
  report.job = st.next_job++;
  report.series = simtime::timeseries::drain();
  st.reports.push_back(std::move(report));

  // Rewrite the whole file each flush, same policy as the trace and
  // metrics sessions: a multi-job binary always leaves a complete,
  // well-formed report.  Quiet rewrite (no benchjson stderr note): the
  // epilogue may run once per job and stderr is part of the parity diff
  // surface the benches pin down.
  std::ofstream f(st.path, std::ios::binary | std::ios::trunc);
  if (f) f << telemetry_report_json(st.reports, simtime::timeseries::window());
}

void TelemetrySession::reset_for_tests() {
  TelemetryState& st = telemetry_state();
  std::lock_guard lock(st.mu);
  if (st.armed) {
    simtime::timeseries::disarm();
    st.armed = false;
  }
  st.reports.clear();
  st.next_job = 1;
  st.path.clear();
  simtime::timeseries::clear();
  apply_env_window();
  const char* env = std::getenv("CELLPILOT_TELEMETRY");
  if (env != nullptr && env[0] != '\0') st.arm_with(env);
}

void TelemetrySession::adjust_captures(int delta) {
  telemetry_state().captures.fetch_add(delta, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ScopedTelemetryCapture

ScopedTelemetryCapture::ScopedTelemetryCapture() {
  TelemetrySession::global().adjust_captures(1);
  metrics::MetricsSession::global().adjust_captures(1);
  trace::TraceSession::global().adjust_captures(1);
  simtime::timeseries::clear();
  simtime::timeseries::arm();
  // The sibling engines are cleared at both capture boundaries so that,
  // when their sessions are armed too, the suppressed job's data cannot
  // leak into the next flushed job and desynchronize the files.
  simtime::metrics::clear();
  simtime::tracebuf::clear();
}

ScopedTelemetryCapture::~ScopedTelemetryCapture() {
  simtime::timeseries::disarm();
  simtime::timeseries::clear();
  simtime::metrics::clear();
  simtime::tracebuf::clear();
  trace::TraceSession::global().adjust_captures(-1);
  metrics::MetricsSession::global().adjust_captures(-1);
  TelemetrySession::global().adjust_captures(-1);
}

std::vector<simtime::timeseries::Series> ScopedTelemetryCapture::drain() {
  return simtime::timeseries::drain();
}

}  // namespace cellpilot::telemetry
