// transport.hpp — CellPilot's implementation of the Pilot transport hooks.
//
// Registered on the PilotApp by the runner, this object supplies the SPE
// side of the data plane: SPE-side calls go through the SPE runtime's
// mailbox protocol, and PI_RunSPE launches are handled here too.  Rank-side
// legs of SPE channels need no hook any more — the compiled route (see
// core/router.hpp) already names the Co-Pilot rank standing in for the SPE,
// so the Pilot core executes them as ordinary MPI legs.
#pragma once

#include "pilot/app.hpp"
#include "pilot/context.hpp"

namespace cellpilot {

/// The concrete transport for hybrid Cell clusters.
class CellTransportImpl : public pilot::CellTransport {
 public:
  void spe_write(const PI_CHANNEL& ch, std::uint32_t sig,
                 std::span<const std::byte> payload) override;

  void spe_read(const PI_CHANNEL& ch, std::uint32_t sig,
                std::span<std::byte> out) override;

  void run_spe(pilot::PilotContext& ctx, PI_PROCESS& proc, int arg,
               void* ptr) override;

  void spe_submit_write(PI_OP& op, const PI_CHANNEL& ch, std::uint32_t sig,
                        std::span<const std::byte> payload) override;

  void spe_submit_read(PI_OP& op, const PI_CHANNEL& ch, std::uint32_t sig,
                       std::size_t bytes) override;

  void spe_wait(PI_OP& op, const PI_CHANNEL& ch,
                std::span<std::byte> out) override;

  bool spe_test(PI_OP& op, const PI_CHANNEL& ch,
                std::span<std::byte> out) override;

  int spe_wait_any(PI_OP* const* ops, int n) override;

  void spawn_spe(pilot::PilotContext& ctx, PI_PROCESS& proc,
                 const cellsim::spe2::spe_program_handle_t& program, int arg,
                 void* ptr) override;
};

}  // namespace cellpilot
