// transport.hpp — CellPilot's implementation of the Pilot transport hooks.
//
// Registered on the PilotApp by the runner, this object supplies every data
// path that touches an SPE (the Pilot core handles type-1 channels itself):
// rank-side sends/receives relay through the Co-Pilot of the SPE's node,
// SPE-side calls go through the SPE runtime's mailbox protocol, and
// PI_RunSPE launches are handled here too.
#pragma once

#include "pilot/app.hpp"
#include "pilot/context.hpp"

namespace cellpilot {

/// The concrete transport for hybrid Cell clusters.
class CellTransportImpl : public pilot::CellTransport {
 public:
  void rank_write_to_spe(pilot::PilotContext& ctx, const PI_CHANNEL& ch,
                         std::uint32_t sig,
                         std::span<const std::byte> payload) override;

  std::vector<std::byte> rank_read_from_spe(pilot::PilotContext& ctx,
                                            const PI_CHANNEL& ch) override;

  void spe_write(const PI_CHANNEL& ch, std::uint32_t sig,
                 std::span<const std::byte> payload) override;

  void spe_read(const PI_CHANNEL& ch, std::uint32_t sig,
                std::span<std::byte> out) override;

  void run_spe(pilot::PilotContext& ctx, PI_PROCESS& proc, int arg,
               void* ptr) override;
};

}  // namespace cellpilot
