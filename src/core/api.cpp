// api.cpp — the two functions CellPilot adds to the Pilot API.
#include "core/cellpilot.hpp"

#include "core/protocol.hpp"
#include "core/transport.hpp"
#include "pilot/context.hpp"

using namespace pilot;  // NOLINT: implementation file for the C-style API

PI_PROCESS* PI_CreateSPE(PI_SPE_FUNC& program, PI_PROCESS* parent,
                         int index) {
  PilotContext& ctx = context();
  if (ctx.phase != Phase::kConfig) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_CreateSPE called outside the configuration phase");
  }
  if (parent == nullptr) {
    throw PilotError(ErrorCode::kUsage, "PI_CreateSPE: null parent process");
  }
  if (parent->location != Location::kRank) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_CreateSPE: the parent must be a PPE (rank-backed) "
                     "process, not another SPE process");
  }
  cluster::Cluster& cl = ctx.app().cluster();
  const int node = cl.node_of_rank(parent->rank);
  if (!cl.is_cell_node(node)) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_CreateSPE: parent process " + parent->name +
                         " runs on a non-Cell node and cannot host SPE "
                         "processes");
  }

  const int seq = ctx.process_seq++;
  PI_PROCESS proto;
  proto.location = Location::kSpe;
  proto.program = &program;
  proto.parent_process = parent->id;
  proto.index_arg = index;
  proto.node = node;
  proto.name = std::string("spe:") +
               (program.name != nullptr ? program.name : "?") + "#" +
               std::to_string(index);
  return ctx.app().get_or_create_process(seq, std::move(proto),
                                         /*assign_rank=*/false);
}

PI_PROCESS* PI_CreateSPESlot(PI_PROCESS* parent, int index) {
  PilotContext& ctx = context();
  if (ctx.phase != Phase::kConfig) {
    throw PilotError(
        ErrorCode::kUsage,
        "PI_CreateSPESlot called outside the configuration phase");
  }
  if (parent == nullptr) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_CreateSPESlot: null parent process");
  }
  if (parent->location != Location::kRank) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_CreateSPESlot: the parent must be a PPE "
                     "(rank-backed) process, not another SPE process");
  }
  cluster::Cluster& cl = ctx.app().cluster();
  const int node = cl.node_of_rank(parent->rank);
  if (!cl.is_cell_node(node)) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_CreateSPESlot: parent process " + parent->name +
                         " runs on a non-Cell node and cannot host SPE "
                         "processes");
  }

  const int seq = ctx.process_seq++;
  PI_PROCESS proto;
  proto.location = Location::kSpe;
  proto.program = nullptr;  // bound at execution time by PI_SpawnSPE
  proto.parent_process = parent->id;
  proto.index_arg = index;
  proto.node = node;
  proto.name = "spe-slot#" + std::to_string(index);
  return ctx.app().get_or_create_process(seq, std::move(proto),
                                         /*assign_rank=*/false);
}

void PI_SpawnSPE(PI_PROCESS* slot, PI_SPE_FUNC* program, int arg, void* ptr) {
  PilotContext& ctx = context();
  if (slot == nullptr) {
    throw PilotError(ErrorCode::kUsage, "PI_SpawnSPE: null process");
  }
  if (slot->location != Location::kSpe) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_SpawnSPE: " + slot->name +
                         " is not an SPE process (use PI_CreateSPESlot)");
  }
  if (program == nullptr) {
    throw PilotError(ErrorCode::kUsage, "PI_SpawnSPE: null program");
  }
  if (ctx.app().transport() == nullptr) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_SpawnSPE: CellPilot transport not active");
  }
  ctx.app().transport()->spawn_spe(ctx, *slot, *program, arg, ptr);
}

void PI_RunSPE(PI_PROCESS* spe_process, int arg, void* ptr) {
  PilotContext& ctx = context();
  if (spe_process == nullptr) {
    throw PilotError(ErrorCode::kUsage, "PI_RunSPE: null process");
  }
  if (spe_process->location != Location::kSpe) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_RunSPE: " + spe_process->name +
                         " is not an SPE process (use PI_CreateSPE)");
  }
  if (ctx.app().transport() == nullptr) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_RunSPE: CellPilot transport not active");
  }
  ctx.app().transport()->run_spe(ctx, *spe_process, arg, ptr);
}
