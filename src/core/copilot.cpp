#include "core/copilot.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "cellsim/cell.hpp"
#include "cellsim/errors.hpp"
#include "cellsim/libspe2.hpp"
#include "core/checkpoint.hpp"
#include "core/epoch.hpp"
#include "core/faultplan.hpp"
#include "core/flightrec.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "core/spe_runtime.hpp"
#include "core/trace.hpp"
#include "mpisim/reliable.hpp"
#include "pilot/deadlock.hpp"
#include "pilot/wire.hpp"
#include "simtime/timeseries.hpp"
#include "simtime/trace.hpp"
#include "simtime/tracebuf.hpp"

namespace cellpilot {

namespace supervision {
namespace {
std::atomic<std::uint64_t> g_recovered{0};
std::atomic<std::uint64_t> g_timeouts{0};
std::atomic<std::uint64_t> g_faults{0};
std::atomic<std::uint64_t> g_failovers{0};
std::atomic<std::uint64_t> g_respawns{0};
std::atomic<std::uint64_t> g_recovered_ops{0};
std::atomic<std::uint64_t> g_restores{0};
std::atomic<simtime::SimTime> g_recovery_begin{0};
std::atomic<simtime::SimTime> g_recovery_end{0};
}  // namespace

std::uint64_t recovered_count() { return g_recovered.load(); }
std::uint64_t timeout_count() { return g_timeouts.load(); }
std::uint64_t fault_count() { return g_faults.load(); }
std::uint64_t failover_count() { return g_failovers.load(); }
std::uint64_t respawn_count() { return g_respawns.load(); }
std::uint64_t recovered_op_count() { return g_recovered_ops.load(); }
std::uint64_t restore_count() { return g_restores.load(); }
simtime::SimTime recovery_begin() { return g_recovery_begin.load(); }
simtime::SimTime recovery_end() { return g_recovery_end.load(); }
void note_recovery_span(simtime::SimTime begin, simtime::SimTime end) {
  simtime::SimTime cur = g_recovery_begin.load();
  while ((cur == 0 || begin < cur) &&
         !g_recovery_begin.compare_exchange_weak(cur, begin)) {
  }
  cur = g_recovery_end.load();
  while (end > cur && !g_recovery_end.compare_exchange_weak(cur, end)) {
  }
}
void reset_counters() {
  g_recovered.store(0);
  g_timeouts.store(0);
  g_faults.store(0);
  g_failovers.store(0);
  g_respawns.store(0);
  g_recovered_ops.store(0);
  g_restores.store(0);
  g_recovery_begin.store(0);
  g_recovery_end.store(0);
}

}  // namespace supervision

namespace {

using pilot::PilotApp;
using simtime::SimTime;
using simtime::tracebuf::Kind;

constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

/// One Co-Pilot's live state.
///
/// The Co-Pilot is a *serial* resource (the PPE's second hardware thread):
/// its virtual clock accumulates every request it services, which is
/// exactly the contention the paper measures.  Because the simulation's
/// host threads race, events do not arrive in virtual-time order; the
/// service therefore runs a conservative discrete-event rule: an event with
/// stamp T is processed only once every potential source -- local SPEs,
/// user ranks, peer Co-Pilots -- provably cannot produce an earlier one
/// (their clocks have passed T, or they are parked/blocked/done).  This
/// makes all timing results deterministic regardless of host scheduling.
class CopilotService {
 private:
  struct Assembly {
    std::uint32_t words[kAsyncRequestWords] = {};
    int n = 0;
    SimTime first_stamp = 0;  ///< stamp of the request's first mailbox word
    SimTime last_stamp = 0;
  };

  struct ReadyRequest {
    SpeRequest req;
    unsigned spe = 0;
    SimTime stamp = 0;        ///< stamp of the request's final mailbox word
    SimTime first_stamp = 0;  ///< stamp of its first word (deadline base)
  };

  struct Pending {
    SpeRequest req;
    unsigned spe = 0;
    /// MPI source the data will come from (kRank writer or remote
    /// Co-Pilot); kAnySource for type-4 reads awaiting a local writer.
    mpisim::Rank expected_source = mpisim::kAnySource;
    /// The channel's data tag, copied from its compiled route.
    int tag = 0;
  };

  /// One delivered operation in a process's replay journal.
  struct JournalOp {
    std::uint32_t signature = 0;
    std::uint32_t length = 0;
    std::vector<std::byte> payload;  ///< reads only: re-served on replay
  };

  /// Replay journal of one SPE process, keyed by channel id: every write
  /// the Co-Pilot delivered on the process's behalf and every read payload
  /// it placed into the process's local store, in channel order.  Recorded
  /// only while -pirespawn is armed (a disarmed run never touches it);
  /// bounded by the job's message count, like the latency ledger.
  struct Journal {
    std::map<int, std::vector<JournalOp>> writes;
    std::map<int, std::vector<JournalOp>> reads;
  };

  /// Supervision state of one (possibly respawned) SPE process.
  struct RespawnState {
    int attempts = 0;   ///< respawn budget consumed so far
    unsigned flat = 0;  ///< slot the current respawned occupant runs in
    bool alive = false; ///< a respawned occupant may still be running
    /// Replay cursors, snapshot at the last respawn: the new incarnation's
    /// first `cursor` operations on a channel repeat deliveries a previous
    /// incarnation completed, and settle without touching the wire.
    std::map<int, std::size_t> write_cursor;
    std::map<int, std::size_t> read_cursor;
    /// Operations the current incarnation has issued since its restart.
    std::map<int, std::size_t> writes_seen;
    std::map<int, std::size_t> reads_seen;
  };

 public:
  /// The journal a crashing Co-Pilot throws (the copilot_crash fault
  /// kind): the crash stamp, the request it died holding, and every piece
  /// of dynamic service state a standby needs to resume.  The channel and
  /// route tables are compiled state (app_) and need no replay.
  struct Crash {
    SimTime stamp = 0;
    ReadyRequest inflight;
    std::vector<ReadyRequest> ready;
    std::vector<Assembly> assembly;
    std::multimap<int, Pending> writes;
    std::multimap<int, Pending> reads;
    std::set<unsigned> dead_spes;
    std::map<int, CompletionStatus> dead_channels;
    std::map<int, CompletionStatus> failed;
    std::map<int, Journal> journal;
    std::map<int, RespawnState> respawns;
  };

  /// What a blade_kill fault throws: the whole blade died — every SPE
  /// context plus the Co-Pilot.  Unlike Crash, the SPE-side dynamic state
  /// (ready queue, assemblies, parked ops) dies with the blade; what
  /// survives is the delivery journal — the message log that, together
  /// with the last committed checkpoint, lets the successor relaunch the
  /// lost contexts with exactly-once delivery across the cut.
  struct BladeLoss {
    SimTime stamp = 0;
    std::uint64_t serviced = 0;  ///< keeps the checkpoint cadence
    std::vector<std::pair<int, unsigned>> victims;  ///< (pid, dead slot)
    std::set<unsigned> dead_spes;
    std::map<int, CompletionStatus> dead_channels;
    std::map<int, CompletionStatus> failed;
    std::map<int, Journal> journal;
    std::map<int, RespawnState> respawns;
  };

  /// `crash` non-null constructs a standby taking over from the journal.
  CopilotService(mpisim::Mpi& mpi, PilotApp& app, int node,
                 const Crash* crash = nullptr)
      : mpi_(mpi),
        app_(app),
        node_(node),
        blade_(app.cluster().blade(node)),
        cost_(app.cluster().cost()),
        assembly_(blade_.spe_count()),
        published_bound_(app.cluster().copilot_bound(node)) {
    if (crash != nullptr) recover(*crash);
  }

  /// A crashed Co-Pilot publishes its crash stamp, not "forever": peer
  /// Co-Pilots must stay conservative until the standby takes over and
  /// republishes a real bound.
  ~CopilotService() {
    published_bound_.store(crashed_ ? crash_stamp_ : kForever);
  }

  int run() {
    for (;;) {
      drain_mailboxes();
      publish_bound();

      const auto candidate = pick_candidate();
      if (!candidate) {
        std::this_thread::sleep_for(std::chrono::microseconds(40));
        continue;
      }
      const SimTime safe = safe_time();
      if (!(candidate->stamp < safe || safe == kForever)) {
        // A source at or before the candidate's stamp might still produce
        // an earlier (or equal-stamp) event; wait (in real time) for it to
        // advance past the stamp, park, or finish.  Strictness keeps the
        // processing order independent of host scheduling.
        std::this_thread::sleep_for(std::chrono::microseconds(20));
        continue;
      }
      // Revalidate: a source may have emitted an earlier event and then
      // parked *between* the drain above and the quiescence check (parking
      // is what made the gate pass).  Its event is already in the mailbox,
      // so one more drain surfaces it; if the earliest candidate changed,
      // start over.
      drain_mailboxes();
      const auto recheck = pick_candidate();
      if (!recheck || recheck->before(*candidate) ||
          candidate->before(*recheck)) {
        continue;
      }
      switch (candidate->kind) {
        case Candidate::kShutdown: {
          std::uint8_t poison = 0;
          mpi_.recv_internal(&poison, 1, mpisim::kAnySource,
                             pilot::kTagShutdown);
          return 0;
        }
        case Candidate::kRequest: {
          const ReadyRequest ready = ready_requests_[candidate->index];
          ready_requests_.erase(ready_requests_.begin() +
                                static_cast<std::ptrdiff_t>(candidate->index));
          process_request(ready);
          break;
        }
        case Candidate::kMpiData: {
          // lower_bound = the *oldest* parked read on the channel (the
          // multimap preserves insertion order for equal keys): frames on
          // one channel arrive in order, so they pair FIFO.
          auto it = pending_reads_.lower_bound(candidate->channel);
          if (it != pending_reads_.end() &&
              it->first == candidate->channel &&
              complete_mpi_read(it->second)) {
            pending_reads_.erase(it);
            record_parked_gauge();
          }
          break;
        }
        case Candidate::kSpeFault: {
          // An SPE program died of a hardware fault.  Consume its
          // posthumous notice in stamp order, then walk the degradation
          // ladder: a supervised respawn while the -pirespawn budget
          // lasts; past the last rung, convert the death into error
          // completions / fault frames at every peer, exactly as an
          // unsupervised death.
          const unsigned s = candidate->spe;
          const cellsim::Spe::FaultNotice* notice =
              blade_.spe(s).fault_notice();
          dead_spes_.insert(s);
          assembly_[s] = Assembly{};  // a partial request dies with it
          clock().join(notice->stamp);
          const int pid = app_.spe_process(node_, s);
          if (!try_respawn(pid, s, *notice)) {
            // Only unrecovered deaths count as faults; a covered death is
            // invisible to peers and shows up in respawn_count() instead.
            supervision::g_faults.fetch_add(1);
            fail_process(pid, CompletionStatus::kSpeFault,
                         static_cast<std::uint32_t>(notice->code),
                         notice->detail);
          }
          break;
        }
      }
    }
  }

  /// Blade-loss recovery, run by copilot_main on the successor service
  /// before its main loop.  With a committed checkpoint on record every
  /// lost context is relaunched and the journal replays across the cut
  /// (exactly-once delivery); without one — or when a relaunch is
  /// impossible — the victim degrades through fail_process: error
  /// completions and PILF frames at every peer, never a hang.
  void restore_blade(BladeLoss& loss) {
    auto& session = ckpt::CheckpointSession::global();
    const bool restore = session.armed() && session.has_committed();
    serviced_ = loss.serviced;
    dead_spes_ = std::move(loss.dead_spes);
    dead_channels_ = std::move(loss.dead_channels);
    failed_ = std::move(loss.failed);
    journal_ = std::move(loss.journal);
    respawns_ = std::move(loss.respawns);
    for (const auto& [pid, slot] : loss.victims) {
      dead_spes_.insert(slot);
      if (auto rit = respawns_.find(pid); rit != respawns_.end()) {
        rit->second.alive = false;
      }
    }
    if (!restore) {
      for (const auto& [pid, slot] : loss.victims) {
        supervision::g_faults.fetch_add(1);
        fail_process(
            pid, CompletionStatus::kSpeFault,
            static_cast<std::uint32_t>(cellsim::FaultCode::kInjected),
            "blade " + blade_.name() +
                " killed with no committed checkpoint: process " +
                app_.process(pid).name + " lost");
      }
      return;
    }
    for (const auto& [pid, slot] : loss.victims) {
      if (!restore_one(pid, loss.stamp)) {
        supervision::g_faults.fetch_add(1);
        fail_process(
            pid, CompletionStatus::kSpeFault,
            static_cast<std::uint32_t>(cellsim::FaultCode::kInjected),
            "blade " + blade_.name() + " restore failed for process " +
                app_.process(pid).name);
      }
    }
    flightrec::FlightRecorder::global().dump(
        "blade_restore: " + blade_.name() + " from checkpoint cut " +
        std::to_string(session.committed_cut()));
  }

 private:
  struct Candidate {
    enum Kind { kRequest, kMpiData, kShutdown, kSpeFault };
    SimTime stamp = 0;
    Kind kind = kRequest;
    std::size_t index = 0;  ///< into ready_requests_ for kRequest
    int channel = -1;       ///< pending-read channel for kMpiData
    unsigned spe = 0;       ///< issuing SPE for kRequest (tie-breaking)

    /// Total order: stamp, then kind, then SPE, then channel — so that
    /// equal-stamp events are processed in the same order regardless of
    /// the real-time order in which they became visible.
    bool before(const Candidate& other) const {
      if (stamp != other.stamp) return stamp < other.stamp;
      if (kind != other.kind) return kind < other.kind;
      if (spe != other.spe) return spe < other.spe;
      return channel < other.channel;
    }
  };

  simtime::VirtualClock& clock() { return mpi_.clock(); }

  /// Moves available mailbox words into per-SPE assemblies and completed
  /// requests into the ready queue.  No virtual time is charged here; the
  /// MMIO read costs are charged when the request is processed, in stamp
  /// order.
  void drain_mailboxes() {
    for (unsigned s = 0; s < blade_.spe_count(); ++s) {
      // A blade_kill closes its victims' mailboxes; polling a closed,
      // empty mailbox throws.  A dead slot has nothing to say anyway.
      if (dead_spes_.count(s) != 0) continue;
      while (auto entry = blade_.spe(s).outbound_mailbox().try_pop()) {
        Assembly& a = assembly_[s];
        if (a.n == 0) a.first_stamp = entry->stamp;
        a.words[a.n++] = entry->value;
        a.last_stamp = entry->stamp;
        // The first word names the opcode, which fixes the request length
        // (4 words for the blocking opcodes, 5 for the token-carrying
        // async ones; unknown opcodes decode as 4 so the protocol check
        // can reject them without desynchronising the word stream).
        if (a.n == words_for(unpack_opcode(a.words[0]))) {
          ReadyRequest ready;
          ready.req = decode(a.words);
          ready.spe = s;
          ready.stamp = a.last_stamp;
          ready.first_stamp = a.first_stamp;
          ready_requests_.push_back(ready);
          a.n = 0;
        }
      }
    }
  }

  /// Lower bound on the stamp of anything SPE `s` may still put into its
  /// outbound mailbox.  An SPU asleep on an empty inbound mailbox can only
  /// be woken by a completion we have not yet pushed, so it is quiescent;
  /// with a completion queued, its next actions stamp at or after that
  /// completion (or its own clock, whichever is lower — the clock read may
  /// lag the join).
  SimTime spe_bound(unsigned s) {
    // A dead SPE's clock is frozen at its death stamp and must not pin the
    // safe time: its fault notice is itself a candidate at that stamp, so
    // ordering is preserved without the bound.
    if (dead_spes_.count(s) != 0) return kForever;
    if (blade_.spe(s).fault_notice() != nullptr) return kForever;
    if (!app_.spe_assigned(node_, s)) return kForever;
    cellsim::Spe& spe = blade_.spe(s);
    const auto queued = spe.inbound_mailbox().earliest_stamp();
    if (queued) return std::min(spe.clock().now(), *queued);
    if (spe.inbound_mailbox().reader_waiting()) return kForever;
    return spe.clock().now();
  }

  /// Publishes the lower bound on stamps of future *inter-node relays*
  /// this Co-Pilot may originate: the minimum over local SPE bounds,
  /// queued requests, and partial assemblies.  Peer Co-Pilots fold this
  /// into their safe time (conservative null message).
  void publish_bound() {
    SimTime bound = kForever;
    for (unsigned s = 0; s < blade_.spe_count(); ++s) {
      if (assembly_[s].n > 0) {
        bound = std::min(bound, assembly_[s].last_stamp);
      }
      bound = std::min(bound, spe_bound(s));
    }
    for (const ReadyRequest& r : ready_requests_) {
      bound = std::min(bound, r.stamp);
    }
    published_bound_.store(bound, std::memory_order_release);
  }

  /// The conservative safe time: no source can produce an event with a
  /// stamp below it.
  SimTime safe_time() {
    SimTime safe = kForever;
    // Local SPEs (requests arrive through their mailboxes).
    for (unsigned s = 0; s < blade_.spe_count(); ++s) {
      safe = std::min(safe, spe_bound(s));
    }
    // User ranks (channel data, shutdown).
    mpisim::World& world = app_.cluster().world();
    for (int r = 0; r < app_.cluster().user_rank_count(); ++r) {
      safe = std::min(safe, world.send_bound(r));
    }
    // Peer Co-Pilots (type-5 relays), via their published bounds.
    for (int n = 0; n < app_.cluster().node_count(); ++n) {
      if (n == node_ || !app_.cluster().is_cell_node(n)) continue;
      safe = std::min(safe, app_.cluster().copilot_bound(n).load(
                                std::memory_order_acquire));
    }
    return safe;
  }

  /// The earliest available event, if any.
  std::optional<Candidate> pick_candidate() {
    std::optional<Candidate> best;
    auto consider = [&best](Candidate c) {
      if (!best || c.before(*best)) best = c;
    };
    for (std::size_t i = 0; i < ready_requests_.size(); ++i) {
      consider({ready_requests_[i].stamp, Candidate::kRequest, i, -1,
                ready_requests_[i].spe});
    }
    int last_channel = -1;
    for (const auto& [channel, p] : pending_reads_) {
      if (channel == last_channel) continue;  // only the FIFO head pairs
      last_channel = channel;
      if (p.expected_source == mpisim::kAnySource) continue;  // type 4
      if (auto env = mpi_.iprobe(p.expected_source, p.tag)) {
        consider({env->arrival, Candidate::kMpiData, 0, channel, p.spe});
      }
    }
    if (auto env = mpi_.iprobe(mpisim::kAnySource, pilot::kTagShutdown)) {
      // Shutdown is deferred while a respawned occupant is still running.
      // PI_StopMain's rank barrier only proves the *originally launched*
      // SPE threads have retired; a supervised respawn registered after
      // the owner's join sweep may still be executing, and exiting now
      // would leave its requests unserved — a teardown hang.  The message
      // stays queued and is consumed once no respawned occupant is alive.
      if (!respawn_in_progress()) {
        consider({env->arrival, Candidate::kShutdown, 0, -1, 0});
      }
    }
    for (unsigned s = 0; s < blade_.spe_count(); ++s) {
      if (dead_spes_.count(s) != 0) continue;
      if (const auto* notice = blade_.spe(s).fault_notice()) {
        consider({notice->stamp, Candidate::kSpeFault, 0, -1, s});
      }
    }
    return best;
  }

  static SpeRequest decode(const std::uint32_t words[kAsyncRequestWords]) {
    SpeRequest r;
    r.opcode = unpack_opcode(words[0]);
    r.channel = unpack_channel(words[0]);
    r.ls_addr = words[1];
    r.length = words[2];
    r.signature = words[3];
    if (words_for(r.opcode) == kAsyncRequestWords) r.token = words[4];
    return r;
  }

  /// Answers a request: a bare status word for the blocking opcodes, a
  /// packed (status | token) word for the async ones — the requester's
  /// opcode decides the completion encoding, never the Co-Pilot.
  void complete(unsigned spe, CompletionStatus status, const SpeRequest& req) {
    clock().advance(cost_.mbox_ppe_write);
    const std::uint32_t word = request_is_async(req)
                                   ? pack_completion(status, req.token)
                                   : static_cast<std::uint32_t>(status);
    blade_.spe(spe).inbound_mailbox().push_blocking(word, clock().now());
  }

  /// Frames the payload held in an SPE's local store (write requests).
  std::vector<std::byte> frame_from_ls(const Pending& w) {
    cellsim::Spe& spe = blade_.spe(w.spe);
    // Effective-address translation: the LS is memory-mapped; the MPI send
    // reads straight out of it (paper: "the message transfers directly
    // between the PPE's buffer and the SPE's local memory").  The window
    // is uncached, so the access carries a per-transfer cost.
    const std::byte* src = spe.local_store().at(w.req.ls_addr, w.req.length);
    clock().advance(cost_.copilot_ls_access(w.req.length));
    return pilot::frame_message(w.req.signature, std::span(src, w.req.length),
                                epochs::current(w.req.channel));
  }

  /// Whether the replay journal is armed: -pirespawn > 0, or a checkpoint
  /// file is armed (-pickpt) — blade restore replays the journal across
  /// the cut.  A disarmed run records nothing, so the feature is zero-cost
  /// when unused; journaling itself never moves virtual time or emits
  /// trace, so arming it keeps output byte-identical.
  bool journaling() const {
    return app_.options().respawn_budget > 0 ||
           ckpt::CheckpointSession::global().armed();
  }

  /// Journals one delivered write of SPE `spe` (the frame is on the wire /
  /// in the local reader's store): a future incarnation deduplicates it.
  void journal_write(unsigned spe, const SpeRequest& req) {
    if (!journaling()) return;
    const int pid = app_.spe_process(node_, spe);
    if (pid < 0) return;
    journal_[pid].writes[req.channel].push_back(
        JournalOp{req.signature, req.length, {}});
    record_journal_gauge(pid, req.channel);
  }

  /// Journals one delivered read payload of SPE `spe`: the bytes were
  /// consumed off the wire into its local store, so a future incarnation
  /// can only get them from here.
  void journal_read(unsigned spe, const SpeRequest& req,
                    std::span<const std::byte> payload) {
    if (!journaling()) return;
    const int pid = app_.spe_process(node_, spe);
    if (pid < 0) return;
    journal_[pid].reads[req.channel].push_back(
        JournalOp{req.signature, req.length,
                  std::vector<std::byte>(payload.begin(), payload.end())});
    record_journal_gauge(pid, req.channel);
  }

  /// Telemetry gauge: total replay-journal entries held for one process,
  /// sampled after an append.  Journaling runs on the single service
  /// thread in stamp order, so the length is deterministic.
  void record_journal_gauge(int pid, int channel) {
    if (!simtime::timeseries::armed()) return;
    const Journal& j = journal_[pid];
    std::int64_t len = 0;
    for (const auto& [c, ops] : j.writes) len += std::ssize(ops);
    for (const auto& [c, ops] : j.reads) len += std::ssize(ops);
    simtime::timeseries::record(simtime::timeseries::Kind::kJournalLen,
                                route_type_of(channel), channel,
                                copilot_name(), clock().now(), len);
  }

  /// True while a respawned occupant may still be running.  Shutdown is
  /// deferred behind this: PI_StopMain's barrier only waited for the
  /// originally-launched SPE threads.  An occupant that retired (its slot
  /// was released) or faulted again (its notice pends / was consumed)
  /// stops pinning the flag.
  bool respawn_in_progress() {
    bool any = false;
    for (auto& [pid, rs] : respawns_) {
      if (!rs.alive) continue;
      if (!app_.spe_assigned(node_, rs.flat) ||
          dead_spes_.count(rs.flat) != 0) {
        rs.alive = false;
        continue;
      }
      any = true;
    }
    return any;
  }

  /// The degradation ladder's first rung: relaunch the dead process's
  /// program into a fresh pooled context, charge the backoff, bump the
  /// epochs of every channel it writes (tombstoning its undelivered
  /// in-flight frames), and snapshot the replay cursors so the new
  /// incarnation's repeated operations settle from the journal.  Returns
  /// false — degrade to poison + PILF — when the budget is disarmed or
  /// spent, no launch recipe was registered, or the SPE pool is exhausted.
  /// Never throws: the last rung (fail_process) must always be reachable.
  bool try_respawn(int pid, unsigned dead_slot,
                   const cellsim::Spe::FaultNotice& notice) {
    const int budget = app_.options().respawn_budget;
    if (budget <= 0 || pid < 0) return false;
    RespawnState& rs = respawns_[pid];
    if (rs.attempts >= budget) return false;
    const auto seed = app_.respawn_seed(pid);
    if (!seed || seed->program == nullptr) return false;
    unsigned flat = 0;
    try {
      // The faulted context is never pooled again, so this picks a
      // different physical SPE; an exhausted pool degrades.
      flat = app_.acquire_spe(node_);
    } catch (const pilot::PilotError&) {
      return false;
    }
    ++rs.attempts;
    const SimTime death = notice.stamp;
    clock().advance(cost_.copilot_service);
    // Exponential backoff per slot: attempt k waits deadline * 2^(k-1)
    // before the new occupant starts (same ladder as the deadline and
    // retransmit supervision).
    SimTime backoff = app_.options().spe_deadline;
    for (int k = 1; k < rs.attempts; ++k) backoff *= 2;
    clock().advance(backoff);

    // The dead incarnation's queued and parked requests die with it: the
    // new occupant re-issues everything from its program start.  Sync
    // parked ops had reported themselves blocked; retract those reports.
    ready_requests_.erase(
        std::remove_if(
            ready_requests_.begin(), ready_requests_.end(),
            [&](const ReadyRequest& r) { return r.spe == dead_slot; }),
        ready_requests_.end());
    const auto purge = [&](std::multimap<int, Pending>& parked) {
      for (auto it = parked.begin(); it != parked.end();) {
        if (it->second.spe != dead_slot) {
          ++it;
          continue;
        }
        const Pending p = it->second;
        it = parked.erase(it);
        if (!request_is_async(p.req)) {
          pilot::notify_unblock_proxy(mpi_, app_, pid);
        }
      }
    };
    purge(pending_writes_);
    purge(pending_reads_);
    record_parked_gauge();

    // New writer incarnation on every channel the process writes: readers
    // discard stale-epoch fault frames, and the reliable receive windows
    // tombstone the dead incarnation's undelivered frames.  Whatever the
    // sweep tombstoned was journaled as delivered but never arrived — pop
    // those entries so the new incarnation re-relays exactly them.
    // Reader-side channels keep their epoch: in-flight frames pair FIFO
    // with the re-issued reads past the replay cursor.
    Journal& j = journal_[pid];
    for (int c = 0; c < app_.channel_count(); ++c) {
      const PI_CHANNEL& ch = app_.channel(c);
      if (ch.from != pid && ch.to != pid) continue;
      trace::ChannelCounters::global().add_respawn(c);
      if (ch.from != pid) continue;
      const std::uint32_t fresh = epochs::bump(c);
      const Route* rt = ch.route;
      if (rt != nullptr &&
          (rt->copilot_write == CopilotWriteAction::kRelayToRank ||
           rt->copilot_write == CopilotWriteAction::kRelayToPeer)) {
        const std::size_t swept =
            mpisim::reliable::set_epoch_floor(rt->tag, fresh);
        auto& ops = j.writes[c];
        for (std::size_t k = 0; k < swept && !ops.empty(); ++k) {
          ops.pop_back();
        }
        if (swept != 0 && simtime::tracebuf::armed()) {
          simtime::tracebuf::record(Kind::kEpochFlush, copilot_name(),
                                    clock().now(), clock().now(), 0, c,
                                    route_type_of(c),
                                    static_cast<std::int64_t>(swept));
        }
      }
    }

    // Snapshot the replay cursors: everything journaled up to here was
    // delivered on a previous incarnation's behalf and must be deduped
    // (writes) or re-served (reads) rather than re-executed.
    rs.write_cursor.clear();
    rs.read_cursor.clear();
    rs.writes_seen.clear();
    rs.reads_seen.clear();
    for (const auto& [c, ops] : j.writes) rs.write_cursor[c] = ops.size();
    for (const auto& [c, ops] : j.reads) rs.read_cursor[c] = ops.size();

    // Relaunch: same recipe as PI_RunSPE, into the fresh context, starting
    // no earlier than the Co-Pilot's post-backoff clock.
    const std::string proc_name = app_.process(pid).name;
    const SimTime start = relaunch(pid, flat, *seed);
    cellsim::Spe& spe = blade_.spe(flat);

    rs.flat = flat;
    rs.alive = true;
    supervision::g_respawns.fetch_add(1);
    supervision::note_recovery_span(death, start);
    simtime::Trace::global().record(
        copilot_name(), simtime::TraceKind::kCopilotService,
        "respawned SPE process " + proc_name + " (attempt " +
            std::to_string(rs.attempts) + "/" + std::to_string(budget) +
            "): " + notice.detail,
        death, clock().now());
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(Kind::kSpeRespawn, spe.name(), death, start,
                                0, pid, 0, rs.attempts);
    }
    if (simtime::metrics::armed()) {
      simtime::metrics::record(simtime::metrics::Kind::kRespawnLatency, 0,
                               pid, spe.name(), start - death);
    }
    if (simtime::timeseries::armed()) {
      // Same attribution as the kSpeRespawn trace event: the process id
      // rides in the channel slot, the new context is the entity.
      simtime::timeseries::record(simtime::timeseries::Kind::kRespawns, 0,
                                  pid, spe.name(), start, 1);
    }
    flightrec::FlightRecorder::global().dump(
        "spe_respawn: " + proc_name + " attempt " +
        std::to_string(rs.attempts) + "/" + std::to_string(budget) +
        " into " + spe.name());
    return true;
  }

  /// Launches process `pid`'s registered program into pooled context
  /// `flat` — the shared relaunch recipe of supervised respawn and blade
  /// restore.  Returns the new occupant's start stamp (no earlier than the
  /// Co-Pilot's clock).  The thread wrapper mirrors PI_RunSPE's: a clean
  /// exit releases the slot, a hardware fault leaves a notice for the
  /// ladder, anything else aborts the world.
  SimTime relaunch(int pid, unsigned flat,
                   const pilot::PilotApp::RespawnSeed& seed) {
    app_.bind_spe_process(node_, flat, pid);
    cellsim::Spe& spe = blade_.spe(flat);
    mpisim::World* world = &app_.cluster().world();
    auto launch = std::make_unique<SpeLaunchArgs>();
    launch->app = &app_;
    launch->process_id = pid;
    launch->arg = seed.arg;
    launch->ptr = seed.ptr;
    const SimTime start = std::max(clock().now(), spe.clock().now());
    const std::string proc_name = app_.process(pid).name;
    pilot::PilotApp* app = &app_;
    std::thread t([app, &spe, program = seed.program,
                   launch = std::move(launch), node = node_, flat, start,
                   world, proc_name] {
      spe.clock().join(start);
      bool faulted = false;
      try {
        cellsim::spe2::SpeContext sctx(spe);
        sctx.run(*program, cellsim::ea_of(launch.get()), 0);
      } catch (const mpisim::WorldAborted&) {
        // Job torn down elsewhere.
      } catch (const cellsim::HardwareFault& f) {
        // A respawned occupant can die too: leave the notice and let the
        // ladder decide again (respawn while budget lasts, then degrade).
        if (!world->aborted()) {
          faulted = true;
          spe.raise_fault(f.fault_code(), spe.clock().now(),
                          "SPE process " + proc_name + ": " + f.what());
        }
      } catch (const std::exception& e) {
        if (!world->aborted()) {
          world->abort("SPE process " + proc_name + " failed: " + e.what());
        }
      }
      if (!faulted) app->release_spe(node, flat);
    });
    app_.add_spe_thread(seed.owner, std::move(t));
    return start;
  }

  /// Serves a respawned incarnation's operation from the journal when it
  /// repeats a delivery a predecessor completed: writes dedupe to kOk (the
  /// data is already with the reader), reads re-serve the journaled
  /// payload into the new local store.  A request that diverges from the
  /// journaled history (different signature or length) is not replayable
  /// and settles with kSpeRestarted.  Past the cursor the incarnation is
  /// in new territory and operations take the normal path.
  bool try_replay(unsigned spe, const SpeRequest& req, bool is_write) {
    if (respawns_.empty()) return false;  // clean runs: one empty() check
    const int pid = app_.spe_process(node_, spe);
    const auto rit = respawns_.find(pid);
    if (rit == respawns_.end()) return false;
    RespawnState& rs = rit->second;
    auto& cursor = is_write ? rs.write_cursor : rs.read_cursor;
    const auto cit = cursor.find(req.channel);
    if (cit == cursor.end()) return false;
    auto& seen = is_write ? rs.writes_seen : rs.reads_seen;
    std::size_t& n = seen[req.channel];
    if (n >= cit->second) return false;
    const std::size_t idx = n++;
    Journal& j = journal_[pid];
    const auto& ops = is_write ? j.writes[req.channel] : j.reads[req.channel];
    const JournalOp& op = ops[idx];
    if (op.signature != req.signature || op.length != req.length) {
      complete(spe, CompletionStatus::kSpeRestarted, req);
      return true;
    }
    if (!is_write) {
      cellsim::Spe& s = blade_.spe(spe);
      std::byte* dst = s.local_store().at(req.ls_addr, req.length);
      std::memcpy(dst, op.payload.data(), op.payload.size());
      clock().advance(cost_.copilot_ls_access(req.length));
    }
    complete(spe, CompletionStatus::kOk, req);
    trace::ChannelCounters::global().add_recovered_op(req.channel);
    supervision::g_recovered_ops.fetch_add(1);
    return true;
  }

  /// Validates frame header vs a read request; returns payload span or
  /// reports a mismatch completion and returns nullopt.
  std::optional<std::span<const std::byte>> validate_frame(
      const Pending& r, std::span<const std::byte> framed) {
    try {
      return pilot::check_frame(framed, r.req.signature, r.req.length,
                                "channel " + app_.channel(r.req.channel).name);
    } catch (const pilot::PilotError&) {
      complete(r.spe, CompletionStatus::kTypeMismatch, r.req);
      return std::nullopt;
    }
  }

  /// Copies payload into the reading SPE's local store and completes it.
  void deliver_to_ls(const Pending& r, std::span<const std::byte> payload) {
    cellsim::Spe& spe = blade_.spe(r.spe);
    std::byte* dst = spe.local_store().at(r.req.ls_addr, r.req.length);
    std::memcpy(dst, payload.data(), payload.size());
    clock().advance(cost_.copilot_ls_access(r.req.length));
    journal_read(r.spe, r.req, payload);
    complete(r.spe, CompletionStatus::kOk, r.req);
  }

  /// Type-4 pairing: writer and reader are both local SPEs.
  void transfer_local(const Pending& w, const Pending& r) {
    if (w.req.signature != r.req.signature || w.req.length != r.req.length) {
      complete(w.spe, CompletionStatus::kTypeMismatch, w.req);
      complete(r.spe, CompletionStatus::kTypeMismatch, r.req);
      return;
    }
    cellsim::Spe& ws = blade_.spe(w.spe);
    cellsim::Spe& rs = blade_.spe(r.spe);
    const std::byte* src = ws.local_store().at(w.req.ls_addr, w.req.length);
    std::byte* dst = rs.local_store().at(r.req.ls_addr, r.req.length);
    const SimTime begin = clock().now();
    std::memcpy(dst, src, w.req.length);
    clock().advance(2 * cost_.copilot_ls_access(w.req.length));
    blade_.chip(0).eib().record(ws.name(), rs.name(), w.req.length);
    simtime::Trace::global().record(copilot_name(),
                                    simtime::TraceKind::kMappedCopy,
                                    "type4 " + std::to_string(w.req.length) +
                                        "B ch=" + std::to_string(w.req.channel),
                                    begin, clock().now());
    trace::ChannelCounters::global().add_copilot_hop(w.req.channel);
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(Kind::kCopilotPair, copilot_name(), begin,
                                clock().now(), w.req.length, w.req.channel,
                                route_type_of(w.req.channel));
    }
    journal_write(w.spe, w.req);
    journal_read(r.spe, r.req, std::span(src, w.req.length));
    complete(w.spe, CompletionStatus::kOk, w.req);
    complete(r.spe, CompletionStatus::kOk, r.req);
  }

  std::string copilot_name() const {
    return app_.cluster().world().info(mpi_.rank()).name;
  }

  /// Telemetry gauge: requests parked waiting for their peer, sampled
  /// after a park or unpark settled.  The single service thread mutates
  /// both multimaps in stamp order, so the size pairs deterministically
  /// with the Co-Pilot clock.
  void record_parked_gauge() {
    if (simtime::timeseries::armed()) {
      simtime::timeseries::record(
          simtime::timeseries::Kind::kParkedOps, 0, -1, copilot_name(),
          clock().now(),
          static_cast<std::int64_t>(pending_writes_.size() +
                                    pending_reads_.size()));
    }
  }

  /// Table I type of a channel for trace records (0 if unrouted).
  std::int8_t route_type_of(int channel) const {
    if (channel < 0 || channel >= app_.channel_count()) return 0;
    const Route* rt = app_.channel(channel).route;
    return rt == nullptr ? std::int8_t{0}
                         : static_cast<std::int8_t>(rt->type);
  }

  /// Receives the arrived MPI data for a pending read and delivers it.
  bool complete_mpi_read(const Pending& r) {
    if (!mpi_.iprobe(r.expected_source, r.tag)) return false;
    const SimTime begin = clock().now();
    std::vector<std::byte> framed =
        mpi_.recv_any_size(r.expected_source, r.tag);
    // Probe hit + EA translation, charged once the data is at hand (it
    // cannot overlap the flight); draining the NIC for inter-node data
    // costs considerably more than a shared-memory pickup.
    const bool remote =
        !app_.cluster().world().same_node(r.expected_source, mpi_.rank());
    clock().advance(remote ? cost_.copilot_dispatch_remote
                           : cost_.copilot_dispatch);
    if (pilot::is_marker_frame(framed)) {
      // A peer Co-Pilot's PILS checkpoint marker arrived ahead of the data
      // this read is waiting for.  Contribute this node's shard to the
      // marked cut (first marker wins; stragglers are no-ops) and keep the
      // read parked — the data frame is still behind the marker.
      on_marker(pilot::parse_marker_frame(framed));
      return false;
    }
    if (pilot::is_fault_frame(framed)) {
      // The writer died instead of producing data: its Co-Pilot (or the
      // failure sweep) put the error on the wire in the data's place.
      const pilot::FaultFrame fault = pilot::parse_fault_frame(framed);
      if (fault.epoch < epochs::current(r.req.channel)) {
        // A dead predecessor's posthumous fault frame, overtaken by a
        // successful respawn: discard it and keep the read parked for the
        // successor incarnation's data.
        return false;
      }
      const auto status = static_cast<CompletionStatus>(fault.status);
      dead_channels_[r.req.channel] = status;
      trace::ChannelCounters::global().add_fault(r.req.channel);
      if (simtime::tracebuf::armed()) {
        simtime::tracebuf::record(Kind::kCopilotFault, copilot_name(), begin,
                                  clock().now(), framed.size(), r.req.channel,
                                  route_type_of(r.req.channel),
                                  static_cast<std::int64_t>(fault.status));
      }
      complete(r.spe, status, r.req);
      if (!request_is_async(r.req)) {
        pilot::notify_unblock_proxy(mpi_, app_,
                                    app_.spe_process(node_, r.spe));
      }
      return true;
    }
    if (auto payload = validate_frame(r, framed)) {
      deliver_to_ls(r, *payload);
    }
    trace::ChannelCounters::global().add_copilot_hop(r.req.channel);
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(Kind::kCopilotDeliver, copilot_name(), begin,
                                clock().now(), r.req.length, r.req.channel,
                                route_type_of(r.req.channel));
    }
    if (!request_is_async(r.req)) {
      pilot::notify_unblock_proxy(mpi_, app_, app_.spe_process(node_, r.spe));
    }
    return true;
  }

  void process_request(const ReadyRequest& ready) {
    // The request's mailbox words are read (slow MMIO) and decoded now, in
    // stamp order.
    clock().join(ready.stamp);
    // Queue wait: how far the Co-Pilot's clock had already run past the
    // request's ready stamp — i.e. time spent behind earlier requests.
    // The join makes now >= stamp, so the value is never negative.
    const SimTime queue_wait = clock().now() - ready.stamp;
    if (faults::FaultPlan::global().armed() &&
        faults::FaultPlan::global().should_crash_copilot(
            copilot_name().c_str(), node_)) {
      // The Co-Pilot process dies at a request boundary.  Throw the
      // journal up to copilot_main's supervisor, which waits out the
      // heartbeat lease and constructs a standby from it.
      crashed_ = true;
      crash_stamp_ = clock().now();
      Crash c;
      c.stamp = crash_stamp_;
      c.inflight = ready;
      c.ready = std::move(ready_requests_);
      c.assembly = std::move(assembly_);
      c.writes = std::move(pending_writes_);
      c.reads = std::move(pending_reads_);
      c.dead_spes = std::move(dead_spes_);
      c.dead_channels = std::move(dead_channels_);
      c.failed = std::move(failed_);
      c.journal = std::move(journal_);
      c.respawns = std::move(respawns_);
      throw c;
    }
    if (faults::FaultPlan::global().armed() &&
        faults::FaultPlan::global().should_kill_blade(blade_.name().c_str(),
                                                      node_)) {
      // The whole blade dies: every SPE context plus this Co-Pilot.  Close
      // the victims' mailboxes (their threads die quietly on the next
      // mailbox op — the raised notices land in dead_spes_ and are never
      // consumed), retract their parked block reports, and throw the
      // message log up to copilot_main's supervisor.
      BladeLoss loss;
      loss.stamp = clock().now();
      loss.serviced = serviced_;
      for (unsigned s = 0; s < blade_.spe_count(); ++s) {
        if (dead_spes_.count(s) != 0) continue;
        if (!app_.spe_assigned(node_, s)) continue;
        if (blade_.spe(s).fault_notice() != nullptr) continue;
        const int pid = app_.spe_process(node_, s);
        if (pid < 0 || failed_.count(pid) != 0) continue;
        loss.victims.emplace_back(pid, s);
      }
      for (const auto& [pid, slot] : loss.victims) {
        blade_.spe(slot).shutdown();
      }
      const auto retract = [&](std::multimap<int, Pending>& parked) {
        for (const auto& entry : parked) {
          const Pending& p = entry.second;
          if (!request_is_async(p.req)) {
            pilot::notify_unblock_proxy(mpi_, app_,
                                        app_.spe_process(node_, p.spe));
          }
        }
      };
      retract(pending_writes_);
      retract(pending_reads_);
      crashed_ = true;
      crash_stamp_ = loss.stamp;
      loss.dead_spes = std::move(dead_spes_);
      loss.dead_channels = std::move(dead_channels_);
      loss.failed = std::move(failed_);
      loss.journal = std::move(journal_);
      loss.respawns = std::move(respawns_);
      throw loss;
    }
    if (supervise_deadline(ready)) return;
    if (simtime::metrics::armed()) {
      simtime::metrics::record(simtime::metrics::Kind::kCopilotQueueWait,
                               route_type_of(ready.req.channel),
                               ready.req.channel, copilot_name(), queue_wait);
    }
    if (simtime::timeseries::armed()) {
      // Mailbox-backlog gauge.  Only requests stamped at or before the one
      // being serviced are counted: the safe-time gate guarantees all of
      // those have been drained, while later-stamped arrivals depend on
      // host scheduling and would make the raw queue size nondeterministic.
      std::int64_t backlog = 0;
      for (const ReadyRequest& r : ready_requests_) {
        if (r.stamp <= ready.stamp) ++backlog;
      }
      simtime::timeseries::record(simtime::timeseries::Kind::kMailboxDepth,
                                  0, -1, copilot_name(), ready.stamp,
                                  backlog);
    }
    clock().advance(cost_.mbox_ppe_read *
                    static_cast<SimTime>(words_for(ready.req.opcode)));
    const SimTime service_begin = clock().now();
    handle_request(ready.spe, ready.req);
    if (simtime::metrics::armed()) {
      simtime::metrics::record(simtime::metrics::Kind::kCopilotService,
                               route_type_of(ready.req.channel),
                               ready.req.channel, copilot_name(),
                               clock().now() - service_begin);
    }
    if (simtime::timeseries::armed()) {
      // Service-occupancy counter: busy virtual-ns land in the window of
      // the service's begin stamp, so per-window sums expose saturation.
      simtime::timeseries::record(simtime::timeseries::Kind::kServiceBusy,
                                  route_type_of(ready.req.channel),
                                  ready.req.channel, copilot_name(),
                                  service_begin,
                                  clock().now() - service_begin);
    }
    // Checkpoint cadence: every `-pickptevery` serviced requests this node
    // contributes a shard to the next coordinated cut.  One relaxed load
    // when disarmed.
    ++serviced_;
    auto& session = ckpt::CheckpointSession::global();
    if (session.armed()) {
      const std::uint64_t every = session.every();
      if (every != 0 && serviced_ % every == 0) {
        contribute_cut(session.next_cut(node_));
      }
    }
  }

  /// Names a channel the way every fault diagnostic does: name plus its
  /// Table I type, so one line identifies the route that failed.
  std::string channel_desc(int channel) {
    const PI_CHANNEL& ch = app_.channel(channel);
    std::string label = "channel " + ch.name;
    if (ch.route != nullptr) {
      label += " (Table I type " +
               std::to_string(static_cast<int>(ch.route->type)) + ")";
    }
    return label;
  }

  /// Deadline adjudication.  A healthy SPE emits its four request words in
  /// a few mailbox writes' worth of virtual time; a gap between the first
  /// and last word beyond the configured budget means the SPE stalled
  /// mid-request.  The Co-Pilot then polls with exponential backoff (each
  /// retry charging one mailbox poll); a request inside a widened window
  /// is declared recovered, an exhausted ladder completes it with
  /// kSpeTimeout and fails the process.  On the clean path this is one
  /// subtraction and a comparison — no virtual time moves.
  bool supervise_deadline(const ReadyRequest& ready) {
    const SimTime budget = app_.options().spe_deadline;
    const SimTime gap = ready.stamp - ready.first_stamp;
    if (gap <= budget) return false;
    SimTime allowed = budget;
    for (int k = 1; k <= app_.options().spe_deadline_retries; ++k) {
      allowed *= 2;
      clock().advance(cost_.mbox_poll);
      trace::ChannelCounters::global().add_retry(ready.req.channel);
      if (simtime::tracebuf::armed()) {
        simtime::tracebuf::record(Kind::kCopilotRetry, copilot_name(),
                                  ready.first_stamp, clock().now(),
                                  ready.req.length, ready.req.channel,
                                  route_type_of(ready.req.channel), k);
      }
      if (gap <= allowed) {
        supervision::g_recovered.fetch_add(1);
        simtime::Trace::global().record(
            copilot_name(), simtime::TraceKind::kCopilotService,
            "late request recovered after " + std::to_string(k) +
                " retr" + (k == 1 ? "y" : "ies") +
                " ch=" + std::to_string(ready.req.channel),
            ready.first_stamp, clock().now());
        return false;
      }
    }
    supervision::g_timeouts.fetch_add(1);
    trace::ChannelCounters::global().add_timeout(ready.req.channel);
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(Kind::kCopilotTimeout, copilot_name(),
                                ready.first_stamp, clock().now(),
                                ready.req.length, ready.req.channel,
                                route_type_of(ready.req.channel),
                                app_.options().spe_deadline_retries);
    }
    complete(ready.spe, CompletionStatus::kSpeTimeout, ready.req);
    fail_process(app_.spe_process(node_, ready.spe),
                 CompletionStatus::kSpeTimeout,
                 static_cast<std::uint32_t>(cellsim::FaultCode::kTimeout),
                 "SPE " + blade_.spe(ready.spe).name() +
                     " missed its Co-Pilot deadline on " +
                     channel_desc(ready.req.channel));
    return true;
  }

  /// Converts the death of process `pid` into error completions at every
  /// parked local peer, fault frames on every relay route it would have
  /// written, and poisoned channels so later requests fail fast instead of
  /// parking forever.  The job keeps running: failure travels through the
  /// same compiled routes the data would have used.
  void fail_process(int pid, CompletionStatus status, std::uint32_t code,
                    const std::string& detail) {
    if (pid < 0 || failed_.count(pid) != 0) return;
    const SimTime begin = clock().now();
    failed_[pid] = status;
    clock().advance(cost_.copilot_service);

    // Sweep parked requests on channels touching the dead process.  An SPE
    // is serial, so it has at most one parked request; a *living* parked
    // peer gets an error completion, the dead process's own parked request
    // is simply dropped.  Either way its proxy block report is retracted.
    const auto sweep = [&](std::multimap<int, Pending>& parked) {
      for (auto it = parked.begin(); it != parked.end();) {
        const PI_CHANNEL& ch = app_.channel(it->first);
        if (ch.from != pid && ch.to != pid) {
          ++it;
          continue;
        }
        const Pending p = it->second;
        it = parked.erase(it);
        dead_channels_[ch.id] = status;
        const int parked_pid = app_.spe_process(node_, p.spe);
        if (parked_pid != pid) complete(p.spe, status, p.req);
        if (!request_is_async(p.req)) {
          pilot::notify_unblock_proxy(mpi_, app_, parked_pid);
        }
      }
    };
    sweep(pending_writes_);
    sweep(pending_reads_);

    // Poison every channel with the dead process as an endpoint; where its
    // data plane relays over MPI, deposit a fault frame so remote readers
    // (ranks or peer Co-Pilots) wake with the error instead of blocking.
    // The PILF carries the channel's current epoch: a reader only honours
    // a fault frame from the writer incarnation it currently expects, so
    // a death that was absorbed by a respawn never kills a later reader.
    for (int c = 0; c < app_.channel_count(); ++c) {
      const PI_CHANNEL& ch = app_.channel(c);
      if (ch.from != pid && ch.to != pid) continue;
      dead_channels_[c] = status;
      trace::ChannelCounters::global().add_fault(c);
      const Route* rt = ch.route;
      if (rt == nullptr) continue;
      if (ch.from == pid &&
          (rt->copilot_write == CopilotWriteAction::kRelayToRank ||
           rt->copilot_write == CopilotWriteAction::kRelayToPeer)) {
        const std::uint32_t epoch = epochs::current(c);
        const std::vector<std::byte> frame = pilot::frame_fault(
            {static_cast<std::uint32_t>(status), code, epoch, detail});
        mpisim::reliable::set_send_epoch(epoch);
        mpi_.send(frame.data(), frame.size(), rt->copilot_write_dest,
                  rt->tag);
      }
    }
    // The registry write comes after the wire deposits: a rank that sees
    // the failure is guaranteed to find the fault frame already waiting.
    app_.report_process_failure(pid, {static_cast<std::uint32_t>(status),
                                      code, detail});
    simtime::Trace::global().record(
        copilot_name(), simtime::TraceKind::kCopilotService,
        "process P" + std::to_string(pid) + " failed: " + detail, begin,
        clock().now());
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(Kind::kCopilotFault, copilot_name(), begin,
                                clock().now(), 0, /*channel=*/-1,
                                /*route_type=*/0,
                                static_cast<std::int64_t>(status));
    }
    // Every process failure is a flight-recorder trigger: SPE deaths
    // (HardwareFault propagation), deadline timeouts and Co-Pilot faults
    // all funnel through here.
    flightrec::FlightRecorder::global().dump(
        (status == CompletionStatus::kSpeTimeout ? "copilot_timeout: "
         : status == CompletionStatus::kCopilotFault
             ? "copilot_fault: "
             : "spe_fault: ") +
        detail);
  }

  /// Contributes this node's shard to cut `cut`, then floods PILS markers
  /// on every outgoing peer-relay route (Table I type 5) so lagging peers
  /// join the same cut at a deterministic point in their own event order.
  /// The shard is a pure copy of service state — building it moves no
  /// virtual time; only the marker sends (real wire traffic) do.
  void contribute_cut(std::uint32_t cut) {
    auto& session = ckpt::CheckpointSession::global();
    ckpt::Shard shard;
    shard.node = node_;
    shard.stamp = clock().now();
    shard.serviced = serviced_;

    // Journal marks: delivery counts (and a CRC over the read payloads) of
    // every (process, channel) pair, in key order.
    std::vector<std::byte> scratch;
    for (const auto& [pid, j] : journal_) {
      std::set<int> channels;
      for (const auto& [c, ops] : j.writes) channels.insert(c);
      for (const auto& [c, ops] : j.reads) channels.insert(c);
      for (const int c : channels) {
        ckpt::JournalMark mark;
        mark.pid = pid;
        mark.channel = c;
        if (auto it = j.writes.find(c); it != j.writes.end()) {
          mark.writes = it->second.size();
        }
        if (auto it = j.reads.find(c); it != j.reads.end()) {
          mark.reads = it->second.size();
          scratch.clear();
          for (const JournalOp& op : it->second) {
            scratch.insert(scratch.end(), op.payload.begin(),
                           op.payload.end());
          }
          mark.reads_crc = mpisim::reliable::crc32(scratch);
        }
        shard.journal.push_back(mark);
      }
    }

    // Parked operations, plus the local-store image of every SPE blocked
    // in a synchronous parked op: such an SPE sleeps in a mailbox read, so
    // its store is stable and the image exact at the cut's stamp.
    std::set<unsigned> imaged;
    const auto collect = [&](const std::multimap<int, Pending>& parked,
                             bool is_write) {
      for (const auto& entry : parked) {
        const Pending& p = entry.second;
        ckpt::ParkedOp op;
        op.channel = p.req.channel;
        op.pid = app_.spe_process(node_, p.spe);
        op.opcode = static_cast<std::uint32_t>(p.req.opcode);
        op.signature = p.req.signature;
        op.length = p.req.length;
        op.token = p.req.token;
        op.is_write = is_write ? 1 : 0;
        op.is_async = request_is_async(p.req) ? 1 : 0;
        shard.parked.push_back(op);
        if (!request_is_async(p.req) && imaged.insert(p.spe).second) {
          cellsim::Spe& spe = blade_.spe(p.spe);
          ckpt::SpeImage image;
          image.pid = op.pid;
          image.clock = spe.clock().now();
          image.name = spe.name();
          const std::byte* base = spe.local_store().base();
          image.ls.assign(base, base + spe.local_store().size());
          shard.images.push_back(std::move(image));
        }
      }
    };
    collect(pending_writes_, true);
    collect(pending_reads_, false);

    // Flood markers before the contribution can commit the cut.  Only
    // type-5 routes carry them: plain ranks cannot parse a PILS frame,
    // and their state is reconstructed from the journal anyway.
    std::set<int> local_pids;
    for (unsigned s = 0; s < blade_.spe_count(); ++s) {
      if (dead_spes_.count(s) != 0) continue;
      if (!app_.spe_assigned(node_, s)) continue;
      const int pid = app_.spe_process(node_, s);
      if (pid >= 0) local_pids.insert(pid);
    }
    pilot::MarkerFrame marker;
    marker.cut = cut;
    marker.stamp = shard.stamp;
    marker.node = static_cast<std::uint32_t>(node_);
    for (int c = 0; c < app_.channel_count(); ++c) {
      const PI_CHANNEL& ch = app_.channel(c);
      if (local_pids.count(ch.from) == 0) continue;
      const Route* rt = ch.route;
      if (rt == nullptr ||
          rt->copilot_write != CopilotWriteAction::kRelayToPeer) {
        continue;
      }
      const std::vector<std::byte> framed = pilot::frame_marker(marker);
      // The channel's current epoch rides along so an armed epoch floor
      // (respawn/restore tombstones) never swallows the marker.
      mpisim::reliable::set_send_epoch(epochs::current(c));
      mpi_.send(framed.data(), framed.size(), rt->copilot_write_dest,
                rt->tag);
    }

    std::vector<std::uint32_t> all_epochs;
    all_epochs.reserve(static_cast<std::size_t>(app_.channel_count()));
    for (int c = 0; c < app_.channel_count(); ++c) {
      all_epochs.push_back(epochs::current(c));
    }
    session.contribute(cut, std::move(shard), std::move(all_epochs),
                       mpisim::reliable::snapshot_links());
  }

  /// Marker receipt: join the marked cut unless this node already
  /// contributed to it (stragglers are no-ops).
  void on_marker(const pilot::MarkerFrame& marker) {
    auto& session = ckpt::CheckpointSession::global();
    if (!session.armed()) return;
    if (session.needs_contribution(node_, marker.cut)) {
      contribute_cut(marker.cut);
    }
  }

  /// Relaunches one lost process from the checkpoint's message log:
  /// acquire a fresh context, tombstone the dead blade's in-flight frames
  /// (epoch bump + floor, popping the swept suffix off the journal), set
  /// the replay cursors to the full journaled prefix, and launch.  The
  /// new incarnation re-executes from its program start; everything the
  /// journal says was delivered settles from it without touching the wire
  /// — exactly-once across the cut.  Returns false (degrade) when no
  /// launch recipe exists or the SPE pool is exhausted.
  bool restore_one(int pid, SimTime death) {
    const auto seed = app_.respawn_seed(pid);
    if (!seed || seed->program == nullptr) return false;
    unsigned flat = 0;
    try {
      // Skip slots whose mailboxes the kill closed: a victim that finished
      // its whole program between the kill and the shutdown call released
      // its slot back to the pool, and that context can never run again.
      // The skipped acquisitions stay acquired — a killed blade loses
      // contexts, it does not get them back.
      for (;;) {
        flat = app_.acquire_spe(node_);
        if (dead_spes_.count(flat) == 0) break;
      }
    } catch (const pilot::PilotError&) {
      return false;
    }
    clock().advance(cost_.copilot_service);

    // New writer incarnation on every channel the process writes, exactly
    // as try_respawn: the reliable windows tombstone the dead blade's
    // undelivered frames, and popping the swept suffix leaves the journal
    // holding exactly the delivered prefix.
    Journal& j = journal_[pid];
    for (int c = 0; c < app_.channel_count(); ++c) {
      const PI_CHANNEL& ch = app_.channel(c);
      if (ch.from != pid && ch.to != pid) continue;
      trace::ChannelCounters::global().add_restore(c);
      if (ch.from != pid) continue;
      const std::uint32_t fresh = epochs::bump(c);
      const Route* rt = ch.route;
      if (rt != nullptr &&
          (rt->copilot_write == CopilotWriteAction::kRelayToRank ||
           rt->copilot_write == CopilotWriteAction::kRelayToPeer)) {
        const std::size_t swept =
            mpisim::reliable::set_epoch_floor(rt->tag, fresh);
        auto& ops = j.writes[c];
        for (std::size_t k = 0; k < swept && !ops.empty(); ++k) {
          ops.pop_back();
        }
        if (swept != 0 && simtime::tracebuf::armed()) {
          simtime::tracebuf::record(Kind::kEpochFlush, copilot_name(),
                                    clock().now(), clock().now(), 0, c,
                                    route_type_of(c),
                                    static_cast<std::int64_t>(swept));
        }
      }
    }

    RespawnState& rs = respawns_[pid];
    rs.write_cursor.clear();
    rs.read_cursor.clear();
    rs.writes_seen.clear();
    rs.reads_seen.clear();
    for (const auto& [c, ops] : j.writes) rs.write_cursor[c] = ops.size();
    for (const auto& [c, ops] : j.reads) rs.read_cursor[c] = ops.size();

    const std::string proc_name = app_.process(pid).name;
    const SimTime start = relaunch(pid, flat, *seed);
    cellsim::Spe& spe = blade_.spe(flat);
    rs.flat = flat;
    rs.alive = true;
    supervision::g_restores.fetch_add(1);
    supervision::note_recovery_span(death, start);
    simtime::Trace::global().record(
        copilot_name(), simtime::TraceKind::kCopilotService,
        "restored SPE process " + proc_name +
            " from checkpoint after blade kill",
        death, clock().now());
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(
          Kind::kBladeRestore, spe.name(), death, start, 0, pid, 0,
          static_cast<std::int64_t>(
              ckpt::CheckpointSession::global().committed_cut()));
    }
    if (simtime::metrics::armed()) {
      simtime::metrics::record(simtime::metrics::Kind::kRestoreLatency, 0,
                               pid, spe.name(), start - death);
    }
    return true;
  }

  /// Standby takeover: replays the crashed Co-Pilot's journal.  Parked
  /// requests re-park as they were (their block proxies were already
  /// notified before the crash, so no re-notify); the one request the old
  /// Co-Pilot died holding is not replayable (its local-store framing may
  /// have been half done) and fails cleanly with kCopilotFault, poisoning
  /// its channel so every peer observes the error instead of hanging.
  void recover(const Crash& c) {
    assembly_ = c.assembly;
    ready_requests_ = c.ready;
    pending_writes_ = c.writes;
    pending_reads_ = c.reads;
    dead_spes_ = c.dead_spes;
    dead_channels_ = c.dead_channels;
    failed_ = c.failed;
    journal_ = c.journal;
    respawns_ = c.respawns;

    const ReadyRequest& in = c.inflight;
    const SimTime begin = clock().now();
    clock().advance(cost_.copilot_service);
    complete(in.spe, CompletionStatus::kCopilotFault, in.req);
    const int chid = in.req.channel;
    if (chid >= 0 && chid < app_.channel_count()) {
      dead_channels_[chid] = CompletionStatus::kCopilotFault;
      trace::ChannelCounters::global().add_fault(chid);
      // A peer parked on the poisoned channel can never be served; wake
      // it with the error (and retract its deadlock block report) rather
      // than leaving it to hang.
      const auto sweep = [&](std::multimap<int, Pending>& parked) {
        for (auto it = parked.lower_bound(chid);
             it != parked.end() && it->first == chid;) {
          const Pending p = it->second;
          it = parked.erase(it);
          complete(p.spe, CompletionStatus::kCopilotFault, p.req);
          if (!request_is_async(p.req)) {
            pilot::notify_unblock_proxy(mpi_, app_,
                                        app_.spe_process(node_, p.spe));
          }
        }
      };
      sweep(pending_writes_);
      sweep(pending_reads_);
      // A write that would have relayed over MPI leaves a reader (rank or
      // peer Co-Pilot) waiting for data that will never come: put the
      // fault on the wire in the data's place.
      const Route* rt = app_.channel(chid).route;
      if (rt != nullptr &&
          (in.req.opcode == Opcode::kWrite ||
           in.req.opcode == Opcode::kWriteAsync) &&
          (rt->copilot_write == CopilotWriteAction::kRelayToRank ||
           rt->copilot_write == CopilotWriteAction::kRelayToPeer)) {
        const std::vector<std::byte> frame = pilot::frame_fault(
            {static_cast<std::uint32_t>(CompletionStatus::kCopilotFault),
             static_cast<std::uint32_t>(cellsim::FaultCode::kInjected),
             epochs::current(chid),
             "Co-Pilot " + copilot_name() + " crashed serving " +
                 channel_desc(chid)});
        mpisim::reliable::set_send_epoch(epochs::current(chid));
        mpi_.send(frame.data(), frame.size(), rt->copilot_write_dest,
                  rt->tag);
      }
    }
    simtime::Trace::global().record(
        copilot_name(), simtime::TraceKind::kCopilotService,
        "standby takeover: replayed " +
            std::to_string(ready_requests_.size()) + " ready, " +
            std::to_string(pending_writes_.size() + pending_reads_.size()) +
            " parked; inflight ch=" + std::to_string(chid) +
            " failed with copilot-fault",
        begin, clock().now());
  }

  void handle_request(unsigned spe, const SpeRequest& req) {
    const SimTime begin = clock().now();
    clock().advance(cost_.copilot_service);
    if (faults::FaultPlan::global().armed()) {
      const SimTime extra =
          faults::FaultPlan::global().copilot_delay(copilot_name().c_str());
      if (extra > 0) clock().advance(extra);
    }

    // Bounds and opcode checks stay ahead of any route lookup: a rogue
    // request may carry an arbitrary channel id.
    const bool is_write =
        req.opcode == Opcode::kWrite || req.opcode == Opcode::kWriteAsync;
    const bool is_read =
        req.opcode == Opcode::kRead || req.opcode == Opcode::kReadAsync;
    if (req.channel < 0 || req.channel >= app_.channel_count() ||
        (!is_write && !is_read)) {
      complete(spe, CompletionStatus::kProtocol, req);
      return;
    }
    const PI_CHANNEL& ch = app_.channel(req.channel);
    const Route* rt = ch.route;
    if (rt == nullptr) {
      complete(spe, CompletionStatus::kProtocol, req);
      return;
    }
    // A channel poisoned by a peer's death fails fast with the stored
    // status instead of parking a request that can never be served.
    if (auto dead = dead_channels_.find(req.channel);
        dead != dead_channels_.end()) {
      complete(spe, dead->second, req);
      return;
    }
    const int peer_pid = is_write ? ch.to : ch.from;
    if (auto failed = failed_.find(peer_pid); failed != failed_.end()) {
      dead_channels_[req.channel] = failed->second;
      complete(spe, failed->second, req);
      return;
    }
    // A respawned incarnation re-executes its program from the top, so its
    // first operations repeat deliveries a predecessor already completed;
    // those settle from the journal without touching the wire.
    if (try_replay(spe, req, is_write)) return;
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(
          Kind::kCopilotRequest, copilot_name(), begin, clock().now(),
          req.length, req.channel, static_cast<std::int8_t>(rt->type),
          static_cast<std::int64_t>(req.opcode));
    }
    Pending p{req, spe, mpisim::kAnySource, rt->tag};

    if (is_write) {
      switch (rt->copilot_write) {
        case CopilotWriteAction::kRelayToRank:
        case CopilotWriteAction::kRelayToPeer: {
          // Types 2/3: relay to the reading rank on the SPE's behalf;
          // type 5: relay to the reader's Co-Pilot.
          const auto framed = frame_from_ls(p);
          mpisim::reliable::set_send_epoch(epochs::current(req.channel));
          mpi_.send(framed.data(), framed.size(), rt->copilot_write_dest,
                    rt->tag);
          trace::ChannelCounters::global().add_copilot_hop(req.channel);
          if (simtime::tracebuf::armed()) {
            simtime::tracebuf::record(Kind::kCopilotRelay, copilot_name(),
                                      begin, clock().now(), req.length,
                                      req.channel,
                                      static_cast<std::int8_t>(rt->type));
          }
          complete(spe, CompletionStatus::kOk, req);
          journal_write(spe, req);
          break;
        }
        case CopilotWriteAction::kPairLocal: {
          // Type 4: pair with the oldest parked local read, or park.
          auto it = pending_reads_.lower_bound(req.channel);
          if (it != pending_reads_.end() && it->first == req.channel &&
              it->second.expected_source == mpisim::kAnySource) {
            const Pending reader = it->second;
            pending_reads_.erase(it);
            record_parked_gauge();
            if (!request_is_async(reader.req)) {
              pilot::notify_unblock_proxy(
                  mpi_, app_, app_.spe_process(node_, reader.spe));
            }
            transfer_local(p, reader);
          } else {
            pending_writes_.emplace(req.channel, p);
            record_parked_gauge();
            if (simtime::tracebuf::armed()) {
              simtime::tracebuf::record(Kind::kCopilotPark, copilot_name(),
                                        clock().now(), clock().now(),
                                        req.length, req.channel,
                                        static_cast<std::int8_t>(rt->type),
                                        static_cast<std::int64_t>(req.opcode));
            }
            // An async parked op does not block its SPE (the program keeps
            // computing), so it must not feed the deadlock detector.
            if (!request_is_async(req)) {
              pilot::notify_block_proxy(mpi_, app_,
                                        app_.spe_process(node_, spe), ch.to,
                                        req.channel);
            }
          }
          break;
        }
        case CopilotWriteAction::kNone:
          // The channel's writer is not an SPE: not a legal request.
          complete(spe, CompletionStatus::kProtocol, req);
          return;
      }
    } else {  // kRead
      switch (rt->copilot_read) {
        case CopilotReadAction::kPairLocal: {
          // Type 4: pair with the oldest parked local write, or park.
          auto it = pending_writes_.lower_bound(req.channel);
          if (it != pending_writes_.end() && it->first == req.channel) {
            const Pending writer = it->second;
            pending_writes_.erase(it);
            record_parked_gauge();
            if (!request_is_async(writer.req)) {
              pilot::notify_unblock_proxy(
                  mpi_, app_, app_.spe_process(node_, writer.spe));
            }
            transfer_local(writer, p);
          } else {
            pending_reads_.emplace(req.channel, p);
            record_parked_gauge();
            if (simtime::tracebuf::armed()) {
              simtime::tracebuf::record(Kind::kCopilotPark, copilot_name(),
                                        clock().now(), clock().now(),
                                        req.length, req.channel,
                                        static_cast<std::int8_t>(rt->type),
                                        static_cast<std::int64_t>(req.opcode));
            }
            if (!request_is_async(req)) {
              pilot::notify_block_proxy(mpi_, app_,
                                        app_.spe_process(node_, spe), ch.from,
                                        req.channel);
            }
          }
          break;
        }
        case CopilotReadAction::kAwaitMpi: {
          // Types 2/3/5: data arrives over MPI from the writer rank or the
          // writer's Co-Pilot; the main loop delivers it in stamp order.
          p.expected_source = rt->copilot_read_source;
          pending_reads_.emplace(req.channel, p);
          record_parked_gauge();
          if (simtime::tracebuf::armed()) {
            simtime::tracebuf::record(Kind::kCopilotPark, copilot_name(),
                                      clock().now(), clock().now(),
                                      req.length, req.channel,
                                      static_cast<std::int8_t>(rt->type),
                                      static_cast<std::int64_t>(req.opcode));
          }
          if (!request_is_async(req)) {
            pilot::notify_block_proxy(mpi_, app_,
                                      app_.spe_process(node_, spe), ch.from,
                                      req.channel);
          }
          break;
        }
        case CopilotReadAction::kNone:
          complete(spe, CompletionStatus::kProtocol, req);
          return;
      }
    }
    simtime::Trace::global().record(
        copilot_name(), simtime::TraceKind::kCopilotService,
        std::string(is_write ? "write" : "read") +
            " ch=" + std::to_string(req.channel) + " " +
            std::to_string(req.length) + "B",
        begin, clock().now());
  }

  mpisim::Mpi& mpi_;
  PilotApp& app_;
  int node_;
  cellsim::CellBlade& blade_;
  const simtime::CostModel& cost_;
  std::vector<Assembly> assembly_;
  std::vector<ReadyRequest> ready_requests_;
  // Insertion order is preserved for equal keys, so each channel's
  // parked requests form a FIFO — several async operations from one SPE
  // may be parked at once.
  std::multimap<int, Pending> pending_writes_;
  std::multimap<int, Pending> pending_reads_;
  /// SPEs whose fault notice has been consumed.
  std::set<unsigned> dead_spes_;
  /// Channels poisoned by an endpoint's death: later requests complete
  /// immediately with the stored error status.
  std::map<int, CompletionStatus> dead_channels_;
  /// Processes this Co-Pilot declared failed, with the status their peers
  /// receive.
  std::map<int, CompletionStatus> failed_;
  /// Replay journals, keyed by process id (empty unless -pirespawn armed).
  std::map<int, Journal> journal_;
  /// Respawn bookkeeping of supervised processes (budget, cursors).
  std::map<int, RespawnState> respawns_;
  std::atomic<SimTime>& published_bound_;
  /// Requests serviced by this incarnation — the checkpoint cadence
  /// counter (every -pickptevery services contributes a shard).  Carried
  /// across a blade kill so the cut ordinals stay on schedule.
  std::uint64_t serviced_ = 0;
  /// Set when an injected crash is in flight: the destructor then
  /// publishes the crash stamp instead of kForever.
  bool crashed_ = false;
  SimTime crash_stamp_ = 0;
};

}  // namespace

int copilot_main(mpisim::Mpi& mpi, pilot::PilotApp& app, int node) {
  // The cluster runner's supervisor: run the Co-Pilot; when an injected
  // crash kills it, detect the death through the heartbeat lease (virtual
  // time the standby must wait past the crash stamp for the missed
  // heartbeat), then spawn a standby seeded from the crash journal.
  std::optional<CopilotService::Crash> crash;
  std::optional<CopilotService::BladeLoss> loss;
  for (;;) {
    try {
      CopilotService service(mpi, app, node, crash ? &*crash : nullptr);
      crash.reset();
      if (loss) {
        service.restore_blade(*loss);
        loss.reset();
      }
      return service.run();
    } catch (CopilotService::BladeLoss& b) {
      // A blade_kill took out every SPE context plus this Co-Pilot.  Wait
      // out the lease (the cluster detects the death through the missed
      // heartbeat), then hand the message log to a successor service:
      // restore from the last committed checkpoint, or degrade.
      mpi.clock().join(b.stamp + app.options().copilot_lease);
      app.cluster().record_blade_kill(node);
      supervision::note_recovery_span(b.stamp, mpi.clock().now());
      const std::string name = app.cluster().world().info(mpi.rank()).name;
      simtime::Trace::global().record(
          name, simtime::TraceKind::kCopilotService,
          "blade killed (injected): " + std::to_string(b.victims.size()) +
              " SPE contexts lost; successor taking over after lease",
          b.stamp, mpi.clock().now());
      flightrec::FlightRecorder::global().dump(
          "blade_kill: node " + std::to_string(node) + " lost " +
          std::to_string(b.victims.size()) + " SPE contexts");
      loss = std::move(b);
    } catch (CopilotService::Crash& c) {
      mpi.clock().join(c.stamp + app.options().copilot_lease);
      app.cluster().record_copilot_failover(node);
      supervision::g_failovers.fetch_add(1);
      supervision::note_recovery_span(c.stamp, mpi.clock().now());
      const std::string name = app.cluster().world().info(mpi.rank()).name;
      simtime::Trace::global().record(
          name, simtime::TraceKind::kCopilotService,
          "copilot crashed (injected); standby taking over after lease",
          c.stamp, mpi.clock().now());
      if (simtime::tracebuf::armed()) {
        simtime::tracebuf::record(Kind::kCopilotFailover, name, c.stamp,
                                  mpi.clock().now(), 0, /*channel=*/-1,
                                  /*route_type=*/0,
                                  static_cast<std::int64_t>(node));
      }
      flightrec::FlightRecorder::global().dump(
          "copilot_failover: standby taking over " + name + " (node " +
          std::to_string(node) + ")");
      crash = std::move(c);
    }
  }
}

}  // namespace cellpilot
