// router.hpp — the compiled data plane.
//
// The paper's central claim is that one PI_Write/PI_Read call hides five
// distinct data paths (Table I).  Resolving that path — channel-type
// resolution, format parsing, wire-signature computation, Co-Pilot leg
// selection — is pure configuration-time information, yet a naive
// implementation re-derives it on every message.  The router compiles it
// exactly once, at PI_StartAll, into an immutable `Route` per channel:
//
//   * the channel's Table I type and its MiniMPI tag;
//   * the rank-side legs (where a rank-backed writer sends, where a
//     rank-backed reader receives — the Co-Pilot of an SPE endpoint's node
//     stands in for the SPE on MPI legs);
//   * the Co-Pilot's leg plan (relay to a rank, pair two local SPEs for an
//     LS<->LS copy, relay to the peer Co-Pilot, await an MPI frame from a
//     precomputed source);
//   * the writer's architectural byte order (whether payloads leave the
//     writer as big-endian images);
//   * per-endpoint execution state: a cache of parsed format plans with
//     precomputed FNV-1a wire signatures, and staging buffers reused
//     across messages so the steady-state path allocates nothing.
//
// The dispatch sites (pilot/api.cpp, the SPE runtime, and the Co-Pilot
// service loop) *execute* routes instead of re-resolving them.  Route
// compilation advances no virtual clock, so the refactor preserves every
// timing result bit-for-bit — the repo's determinism guarantee makes that
// a mechanically checkable invariant.
//
// Layering note: this header is data-plane vocabulary shared by the Pilot
// API implementation and the CellPilot core; it depends only on the pilot/
// value types (tables, format, wire) and is compiled into the pilot
// library (see src/pilot/CMakeLists.txt) so both layers can link it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "mpisim/types.hpp"
#include "pilot/format.hpp"
#include "pilot/tables.hpp"
#include "pilot/wire.hpp"

namespace pilot {
class PilotApp;
}  // namespace pilot

namespace cellpilot {

/// The paper's Table I channel taxonomy.
enum class ChannelType {
  kType1 = 1,  ///< PPE/non-Cell  <->  remote PPE/non-Cell  (pure Pilot/MPI)
  kType2 = 2,  ///< PPE           <->  local SPE
  kType3 = 3,  ///< PPE/non-Cell  <->  remote SPE
  kType4 = 4,  ///< SPE           <->  local SPE
  kType5 = 5,  ///< SPE           <->  remote SPE
};

/// Resolves a channel's type from its endpoints' locations and placement.
/// Invoked once per channel, during route compilation — never per message
/// (the counting hook below lets tests verify that).
ChannelType resolve_channel_type(pilot::PilotApp& app, const PI_CHANNEL& ch);

/// Counting hooks: invocations of resolve_channel_type since the last
/// reset.  Tests use them to prove resolution happens once per channel per
/// run, not once per message.
std::uint64_t route_resolve_count();
void reset_route_resolve_count();

/// One cached format plan: a format string parsed once, with the wire
/// signature and payload size precomputed when the format has no '*'
/// (count-as-argument) items.  Star formats resolve their counts per call;
/// everything else about them is still cached.
struct FormatPlan {
  const char* key = nullptr;  ///< pointer identity of the source string
  std::string text;           ///< owned copy (the key may not outlive us)
  pilot::Format parsed;
  bool has_star = false;
  std::uint32_t wire_signature = 0;  ///< valid when !has_star
  std::size_t payload_bytes = 0;     ///< valid when !has_star
};

/// A per-endpoint cache of format plans.  Each cache is touched by exactly
/// one thread (a channel has one writer process and one reader process; a
/// bundle's collective calls come from its common process), so lookups are
/// lock-free.  The fast path is a pointer compare plus a cheap string
/// verification — never a parse.
class FormatCache {
 public:
  /// Returns the cached plan for `fmt`, parsing it on first sight.
  /// References stay valid for the cache's lifetime.
  const FormatPlan& lookup(const char* fmt);

  std::size_t size() const { return plans_.size(); }

 private:
  std::vector<std::unique_ptr<FormatPlan>> plans_;
};

/// What the Co-Pilot does with an SPE *write* request on a channel.
enum class CopilotWriteAction : std::uint8_t {
  kNone,         ///< the channel's writer is not one of this node's SPEs
  kRelayToRank,  ///< types 2/3: frame from LS, MPI-send to the reader rank
  kPairLocal,    ///< type 4: pair with the local reader's request (or park)
  kRelayToPeer,  ///< type 5: frame from LS, MPI-send to the reader Co-Pilot
};

/// What the Co-Pilot does with an SPE *read* request on a channel.
enum class CopilotReadAction : std::uint8_t {
  kNone,       ///< the channel's reader is not one of this node's SPEs
  kPairLocal,  ///< type 4: pair with the local writer's request (or park)
  kAwaitMpi,   ///< types 2/3/5: park until a frame arrives from the source
};

/// Mutable execution state of a channel's writing endpoint.  Single-
/// threaded by construction (one writer process per channel).
struct WriterState {
  FormatCache formats;
  /// Reused message buffer: [WireHeader][payload].  Rank-backed writers
  /// send it whole; SPE writers stage the payload part into local store.
  std::vector<std::byte> staging;
  /// Resolved element counts, parallel to the format's items (reused).
  std::vector<std::uint32_t> counts;
};

/// Mutable execution state of a channel's reading endpoint.
struct ReaderState {
  FormatCache formats;
  pilot::ReadPlan plan;             ///< rebuilt in place per call
  std::vector<std::byte> staging;   ///< SPE-side payload buffer (reused)
};

/// The compiled, immutable plan for one channel (plus per-endpoint mutable
/// execution state).  Built by Router::compile at PI_StartAll.
struct Route {
  int channel = -1;
  ChannelType type = ChannelType::kType1;
  int tag = 0;  ///< MiniMPI tag of the channel's data messages

  bool writer_is_spe = false;
  bool reader_is_spe = false;
  /// Any SPE endpoint requires the CellPilot transport to be active.
  bool needs_transport = false;
  /// Payloads leave the writer in its node's architectural order; readers
  /// convert when this is set ("receiver makes right").
  bool writer_big_endian = false;

  /// Where a rank-backed writer MPI-sends the framed message: the reader's
  /// rank (type 1) or the Co-Pilot rank of the reading SPE's node (2/3).
  mpisim::Rank write_dest = -1;
  /// Where a rank-backed reader receives from: the writer's rank (type 1)
  /// or the Co-Pilot rank of the writing SPE's node (2/3).  Also the
  /// expected source for PI_Select / PI_TrySelect / PI_ChannelHasData and
  /// PI_Gather legs.
  mpisim::Rank read_source = -1;

  /// Co-Pilot leg plan.  The write plan executes at the writing SPE's
  /// node; the read plan at the reading SPE's node.
  CopilotWriteAction copilot_write = CopilotWriteAction::kNone;
  mpisim::Rank copilot_write_dest = -1;
  CopilotReadAction copilot_read = CopilotReadAction::kNone;
  mpisim::Rank copilot_read_source = mpisim::kAnySource;

  WriterState writer;
  ReaderState reader;
};

/// Compiles one channel against the application's tables.  Throws
/// PilotError(kUsage) for an SPE endpoint without node placement.
/// Exposed for tests; production code goes through Router::compile.
Route compile_route(pilot::PilotApp& app, const PI_CHANNEL& ch);

/// The per-application route table.  PI_StartAll compiles every channel
/// (and a format cache per bundle) exactly once; dispatch sites then
/// execute the cached plans for the rest of the run.
class Router {
 public:
  /// Compiles routes for all channels and wires each PI_CHANNEL::route
  /// pointer.  Called once per run (PilotApp guards with call_once).
  void compile(pilot::PilotApp& app);

  bool compiled() const { return compiled_.load(std::memory_order_acquire); }

  /// The compiled route of a channel.  Throws PilotError(kUsage) before
  /// compilation (configuration-phase misuse) and PilotError(kInternal)
  /// for an unknown channel id.
  Route& route(int channel);

  /// The format cache of a bundle's collective calls (common process).
  FormatCache& bundle_formats(int bundle);

 private:
  std::vector<std::unique_ptr<Route>> routes_;
  std::vector<std::unique_ptr<FormatCache>> bundle_formats_;
  std::atomic<bool> compiled_{false};
};

}  // namespace cellpilot
