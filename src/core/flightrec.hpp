#pragma once
/// \file
/// The fault flight recorder: a black-box postmortem for failing runs.
///
/// When armed (`-piflightrec=FILE` / `CELLPILOT_FLIGHTREC`), the trace
/// engine keeps a bounded tail of the most recent events per recording
/// thread (simtime::tracebuf black-box mode) and the recorder dumps a
/// self-contained JSON artifact on every fault trigger:
///
///   * SPE death / HardwareFault propagation (Co-Pilot fail_process),
///   * a supervision deadline giving up (copilot_timeout),
///   * Co-Pilot crash failover (standby takeover), and
///   * external watchdogs (bench/chaos_sweep wires its liveness watchdog
///     and its parity-violation path here).
///
/// The artifact contains the trigger reason, the last-N events per
/// thread, every channel's counters, and the armed fault plan (seed plus
/// rules), so a failed chaos seed is diagnosable from the file alone.
/// Arming starts a fresh file; every trigger after the first appends its
/// scene, so a cascade (blade_kill, then the per-victim degrade faults)
/// keeps the whole crash sequence — including the first scene, the one
/// taken while the doomed operations were still pending.
///
/// Unlike the trace/metrics sessions the dump does NOT require
/// quiescence: the black-box tails carry their own locks, so a fault
/// path (or a watchdog thread) may dump while the simulation is live.
/// Arming the recorder arms the trace engine (it needs events recorded),
/// which by the tracebuf contract never perturbs virtual time.

#include <string>

namespace cellpilot::flightrec {

/// Events kept per recording thread while armed.
inline constexpr std::size_t kTailEvents = 256;

class FlightRecorder {
 public:
  static FlightRecorder& global();

  /// Arm with an explicit output path (`-piflightrec=FILE`).
  void configure(const std::string& path);

  bool armed() const;
  const std::string& path() const;

  /// Write the postmortem artifact.  No-op when disarmed.  Safe from any
  /// thread, including fault paths and watchdogs on a live simulation.
  void dump(const std::string& reason);

  /// Number of dumps written since configure (test hook).
  int dump_count() const;

  /// End-of-job housekeeping, called from cellpilot::run's epilogue:
  /// when the recorder is the only consumer keeping the trace engine
  /// armed, the full rings are never drained by a session flush, so they
  /// are cleared here to bound memory across many jobs.  The black-box
  /// tails survive.
  void on_job_end();

  /// Test hook: drop all state and re-read CELLPILOT_FLIGHTREC.
  void reset_for_tests();

 private:
  FlightRecorder();
};

}  // namespace cellpilot::flightrec
