#pragma once
/// \file
/// CellPilot vocabulary over the simtime::timeseries windowed engine.
///
/// Mirrors core/trace and core/metrics layer-for-layer:
///
///  * TelemetrySession — the `-pitelemetry=FILE` / `CELLPILOT_TELEMETRY`
///    plumbing.  While armed, the instrumented seams (Co-Pilot service
///    loop, completion engine, SPE pool, reliable sublayer, replay
///    journal, read/write endpoints) record windowed gauges and counters
///    stamped with virtual time; cellpilot::run's epilogue (full
///    quiescence, same point as the trace and metrics flushes) drains the
///    engine into a per-job report and rewrites the whole JSON file
///    through the shared benchkit/benchjson writer.  Every number is an
///    exact integer derived from virtual stamps, so two runs of the same
///    program produce byte-identical reports — the `telemetry-parity` CI
///    job enforces it, chaos cocktails included.
///
///  * ScopedTelemetryCapture — the in-process test harness, RAII like
///    ScopedTraceCapture/ScopedMetricsCapture.  While any capture kind is
///    active *all three* session flushes are suppressed and all engines
///    are cleared at the capture boundary, so per-job numbering stays
///    aligned across the trace file, the metrics report and the telemetry
///    report (tools/pitop joins telemetry and trace by job).
///
/// The window length comes from `-pitelemetryevery=US` (default 1000 us)
/// and must be set before traffic — the session forwards it to the engine
/// at configure time, so every sample of a run shares one window grid.

#include <cstdint>
#include <string>
#include <vector>

#include "simtime/sim_time.hpp"
#include "simtime/timeseries.hpp"

namespace cellpilot::telemetry {

/// The `-pitelemetry` / `CELLPILOT_TELEMETRY` session.  Thread-safe; all
/// methods other than the engine-level armed() take an internal lock.
class TelemetrySession {
 public:
  static TelemetrySession& global();

  /// Arm for this process with an explicit output path
  /// (`-pitelemetry=FILE`).  Restarts the accumulated report list, same
  /// semantics as TraceSession/MetricsSession.
  void configure(const std::string& path);

  /// Set the window length (`-pitelemetryevery=US`, carried here in ns).
  /// Applies to samples recorded afterwards; PI_Configure calls it before
  /// any traffic.
  void configure_window(simtime::SimTime window_ns);

  bool armed() const;
  const std::string& path() const;
  simtime::SimTime window_ns() const;

  /// Drain the engine into a new per-job report and rewrite the output
  /// file.  Called by cellpilot::run's epilogue at full quiescence.
  /// No-op while any scoped capture (trace, metrics or telemetry) is
  /// active.
  void flush_job();

  /// Test hook: drop all state and re-read CELLPILOT_TELEMETRY.
  void reset_for_tests();

  /// Internal capture bookkeeping, same contract as the trace and metrics
  /// sessions: every scoped capture kind bumps all sessions so per-job
  /// numbering stays aligned across the three files.
  void adjust_captures(int delta);

 private:
  TelemetrySession();
};

/// One flushed job: ordinal plus the canonical series drain.
struct JobTelemetry {
  int job = 0;
  std::vector<simtime::timeseries::Series> series;
};

/// Render accumulated reports as the telemetry JSON (exposed for tests).
/// Built with the shared benchkit/benchjson writer: one meta block
/// (bench/unit/windowNs) plus one row per populated (job, series, window)
/// cell, each row alone on its line — which is what tools/pitop parses.
std::string telemetry_report_json(const std::vector<JobTelemetry>& jobs,
                                  simtime::SimTime window_ns);

/// RAII test harness: clear + arm on construction, disarm + clear on
/// destruction; suppresses all session flushes for its lifetime.
class ScopedTelemetryCapture {
 public:
  ScopedTelemetryCapture();
  ~ScopedTelemetryCapture();
  ScopedTelemetryCapture(const ScopedTelemetryCapture&) = delete;
  ScopedTelemetryCapture& operator=(const ScopedTelemetryCapture&) = delete;

  /// Drain everything recorded so far (canonical order).
  std::vector<simtime::timeseries::Series> drain();
};

}  // namespace cellpilot::telemetry
