#include "core/metrics.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <utility>

#include "core/telemetry.hpp"
#include "core/trace.hpp"

namespace cellpilot::metrics {

// ---------------------------------------------------------------------------
// Report JSON

namespace {

void append_stat_fields(std::string& out, const simtime::metrics::Histogram& h) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "\"count\":%llu,\"sumNs\":%llu,\"minNs\":%lld,"
                "\"p50Ns\":%lld,\"p90Ns\":%lld,\"p99Ns\":%lld,"
                "\"maxNs\":%lld",
                static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.sum()),
                static_cast<long long>(h.min()),
                static_cast<long long>(h.percentile(50)),
                static_cast<long long>(h.percentile(90)),
                static_cast<long long>(h.percentile(99)),
                static_cast<long long>(h.max()));
  out += buf;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
}

}  // namespace

std::string metrics_report_json(const std::vector<JobReport>& jobs) {
  std::string out;
  out += "{\n\"generator\":\"cellpilot-metrics\",\n\"unit\":\"virtual_ns\",\n";
  out += "\"jobs\":[";
  bool first_job = true;
  for (const JobReport& jr : jobs) {
    if (!first_job) out += ",";
    first_job = false;
    out += "\n{\"job\":";
    out += std::to_string(jr.job);
    out += ",\"series\":[";
    bool first = true;
    for (const auto& s : jr.series) {
      if (!first) out += ",";
      first = false;
      char head[96];
      std::snprintf(head, sizeof head,
                    "\n{\"agg\":\"series\",\"job\":%d,\"kind\":\"%s\","
                    "\"route\":%d,\"channel\":%d,\"entity\":\"",
                    jr.job, simtime::metrics::kind_name(s.key.kind),
                    static_cast<int>(s.key.route_type), s.key.channel);
      out += head;
      append_json_escaped(out, s.key.entity);
      out += "\",";
      append_stat_fields(out, s.hist);
      out += "}";
    }
    out += "\n],\"byRoute\":[";
    // Per-route rollups for the two route-attributed kinds: these are the
    // rows tracestats recomputes from the trace file of the same run.
    std::map<std::pair<int, int>, simtime::metrics::Histogram> rollup;
    for (const auto& s : jr.series) {
      if (s.key.kind != simtime::metrics::Kind::kMsgLatency &&
          s.key.kind != simtime::metrics::Kind::kReadBlock) {
        continue;
      }
      if (s.key.route_type <= 0) continue;
      rollup[{static_cast<int>(s.key.kind),
              static_cast<int>(s.key.route_type)}]
          .merge(s.hist);
    }
    first = true;
    for (const auto& [key, hist] : rollup) {
      if (!first) out += ",";
      first = false;
      char head[96];
      std::snprintf(
          head, sizeof head,
          "\n{\"agg\":\"route\",\"job\":%d,\"kind\":\"%s\",\"route\":%d,",
          jr.job,
          simtime::metrics::kind_name(
              static_cast<simtime::metrics::Kind>(key.first)),
          key.second);
      out += head;
      append_stat_fields(out, hist);
      out += "}";
    }
    out += "\n]}";
  }
  out += "\n]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// MetricsSession

namespace {

struct MetricsState {
  std::mutex mu;
  bool armed = false;
  std::string path;
  std::vector<JobReport> reports;
  int next_job = 1;
  std::atomic<int> captures{0};

  void arm_with(const std::string& p) {
    if (!armed) {
      simtime::metrics::arm();
      armed = true;
    }
    path = p;
  }
};

MetricsState& metrics_state() {
  static MetricsState* g = new MetricsState;
  return *g;
}

}  // namespace

MetricsSession::MetricsSession() {
  MetricsState& st = metrics_state();
  std::lock_guard lock(st.mu);
  const char* env = std::getenv("CELLPILOT_METRICS");
  if (env != nullptr) {
    if (env[0] != '\0') {
      st.arm_with(env);
    } else {
      // Loud ignore, matching CELLPILOT_RESPAWN/CELLPILOT_CKPT_EVERY: an
      // empty value keeps the layer disarmed instead of arming it with an
      // unwritable path.
      std::fprintf(stderr,
                   "cellpilot: ignoring empty CELLPILOT_METRICS "
                   "(metrics stay disarmed)\n");
    }
  }
}

MetricsSession& MetricsSession::global() {
  static MetricsSession* g = new MetricsSession;
  return *g;
}

void MetricsSession::configure(const std::string& path) {
  MetricsState& st = metrics_state();
  std::lock_guard lock(st.mu);
  st.reports.clear();
  st.next_job = 1;
  st.arm_with(path);
  simtime::metrics::clear();
}

bool MetricsSession::armed() const {
  MetricsState& st = metrics_state();
  std::lock_guard lock(st.mu);
  return st.armed;
}

const std::string& MetricsSession::path() const {
  MetricsState& st = metrics_state();
  std::lock_guard lock(st.mu);
  return st.path;
}

void MetricsSession::flush_job() {
  MetricsState& st = metrics_state();
  std::lock_guard lock(st.mu);
  if (!st.armed) return;
  if (st.captures.load(std::memory_order_relaxed) > 0) return;

  JobReport report;
  report.job = st.next_job++;
  report.series = simtime::metrics::drain();
  st.reports.push_back(std::move(report));

  // Rewrite the whole file each flush, same policy as the trace session:
  // a multi-job binary always leaves a complete, well-formed report.
  std::ofstream f(st.path, std::ios::binary | std::ios::trunc);
  if (f) f << metrics_report_json(st.reports);
}

void MetricsSession::reset_for_tests() {
  MetricsState& st = metrics_state();
  std::lock_guard lock(st.mu);
  if (st.armed) {
    simtime::metrics::disarm();
    st.armed = false;
  }
  st.reports.clear();
  st.next_job = 1;
  st.path.clear();
  simtime::metrics::clear();
  const char* env = std::getenv("CELLPILOT_METRICS");
  if (env != nullptr && env[0] != '\0') st.arm_with(env);
}

void MetricsSession::adjust_captures(int delta) {
  metrics_state().captures.fetch_add(delta, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ScopedMetricsCapture

ScopedMetricsCapture::ScopedMetricsCapture() {
  MetricsSession::global().adjust_captures(1);
  trace::TraceSession::global().adjust_captures(1);
  telemetry::TelemetrySession::global().adjust_captures(1);
  simtime::metrics::clear();
  simtime::metrics::arm();
  // The sibling engines are cleared at both capture boundaries so that,
  // when their sessions are armed too, the suppressed job's events cannot
  // leak into the next flushed job and desynchronize the files.
  simtime::tracebuf::clear();
  simtime::timeseries::clear();
}

ScopedMetricsCapture::~ScopedMetricsCapture() {
  simtime::metrics::disarm();
  simtime::metrics::clear();
  simtime::tracebuf::clear();
  simtime::timeseries::clear();
  telemetry::TelemetrySession::global().adjust_captures(-1);
  trace::TraceSession::global().adjust_captures(-1);
  MetricsSession::global().adjust_captures(-1);
}

std::vector<simtime::metrics::Series> ScopedMetricsCapture::drain() {
  return simtime::metrics::drain();
}

// ---------------------------------------------------------------------------
// LatencyLedger

struct LatencyLedger::Impl {
  std::mutex mu;
  std::vector<std::deque<simtime::SimTime>> fifos;
};

LatencyLedger& LatencyLedger::global() {
  static LatencyLedger* g = new LatencyLedger;
  return *g;
}

LatencyLedger::Impl* LatencyLedger::impl() {
  static Impl* g = new Impl;
  return g;
}

void LatencyLedger::reset(std::size_t channels) {
  Impl* im = impl();
  std::lock_guard lock(im->mu);
  im->fifos.assign(channels, {});
}

void LatencyLedger::push(int channel, simtime::SimTime write_begin) {
  Impl* im = impl();
  std::lock_guard lock(im->mu);
  if (channel < 0 || static_cast<std::size_t>(channel) >= im->fifos.size()) {
    return;
  }
  im->fifos[static_cast<std::size_t>(channel)].push_back(write_begin);
}

bool LatencyLedger::pop(int channel, simtime::SimTime* write_begin) {
  Impl* im = impl();
  std::lock_guard lock(im->mu);
  if (channel < 0 || static_cast<std::size_t>(channel) >= im->fifos.size()) {
    return false;
  }
  auto& q = im->fifos[static_cast<std::size_t>(channel)];
  if (q.empty()) return false;
  *write_begin = q.front();
  q.pop_front();
  return true;
}

}  // namespace cellpilot::metrics
