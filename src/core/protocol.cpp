#include "core/protocol.hpp"

#include "pilot/errors.hpp"

namespace cellpilot {

ChannelType resolve_channel_type(pilot::PilotApp& app, const PI_CHANNEL& ch) {
  const PI_PROCESS& from = app.process(ch.from);
  const PI_PROCESS& to = app.process(ch.to);
  const bool from_spe = from.location == pilot::Location::kSpe;
  const bool to_spe = to.location == pilot::Location::kSpe;

  auto node_of = [&app](const PI_PROCESS& p) {
    return p.location == pilot::Location::kSpe
               ? p.node
               : app.cluster().node_of_rank(p.rank);
  };

  if (!from_spe && !to_spe) return ChannelType::kType1;
  if (from_spe && to_spe) {
    return node_of(from) == node_of(to) ? ChannelType::kType4
                                        : ChannelType::kType5;
  }
  // Exactly one SPE endpoint.
  const PI_PROCESS& rank_side = from_spe ? to : from;
  const PI_PROCESS& spe_side = from_spe ? from : to;
  return node_of(rank_side) == node_of(spe_side) ? ChannelType::kType2
                                                 : ChannelType::kType3;
}

}  // namespace cellpilot
