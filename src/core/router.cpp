// Route compilation (see router.hpp).  Compiled into the pilot library so
// the Pilot API implementation and the CellPilot core share one data plane.
#include "core/router.hpp"

#include "core/metrics.hpp"
#include "core/trace.hpp"
#include "pilot/app.hpp"
#include "pilot/errors.hpp"

namespace cellpilot {

namespace {

std::atomic<std::uint64_t> g_resolve_count{0};

}  // namespace

ChannelType resolve_channel_type(pilot::PilotApp& app, const PI_CHANNEL& ch) {
  g_resolve_count.fetch_add(1, std::memory_order_relaxed);
  const PI_PROCESS& from = app.process(ch.from);
  const PI_PROCESS& to = app.process(ch.to);
  const bool from_spe = from.location == pilot::Location::kSpe;
  const bool to_spe = to.location == pilot::Location::kSpe;

  auto node_of = [&app](const PI_PROCESS& p) {
    return p.location == pilot::Location::kSpe
               ? p.node
               : app.cluster().node_of_rank(p.rank);
  };

  if (!from_spe && !to_spe) return ChannelType::kType1;
  if (from_spe && to_spe) {
    return node_of(from) == node_of(to) ? ChannelType::kType4
                                        : ChannelType::kType5;
  }
  // Exactly one SPE endpoint.
  const PI_PROCESS& rank_side = from_spe ? to : from;
  const PI_PROCESS& spe_side = from_spe ? from : to;
  return node_of(rank_side) == node_of(spe_side) ? ChannelType::kType2
                                                 : ChannelType::kType3;
}

std::uint64_t route_resolve_count() {
  return g_resolve_count.load(std::memory_order_relaxed);
}

void reset_route_resolve_count() {
  g_resolve_count.store(0, std::memory_order_relaxed);
}

const FormatPlan& FormatCache::lookup(const char* fmt) {
  // Text equality, never bare pointer identity: a freed-and-reused buffer
  // can present a new format at an old address.  The key pointer is only a
  // hint that makes the common literal-string case compare fast.
  for (const auto& p : plans_) {
    if (p->text == fmt) {
      p->key = fmt;
      return *p;
    }
  }
  auto plan = std::make_unique<FormatPlan>();
  plan->key = fmt;
  plan->text = fmt;
  plan->parsed = pilot::parse_format(fmt);
  for (const pilot::FormatItem& item : plan->parsed.items) {
    if (item.star) plan->has_star = true;
  }
  if (!plan->has_star) {
    plan->wire_signature = pilot::signature(plan->parsed);
    plan->payload_bytes = plan->parsed.payload_bytes();
  }
  plans_.push_back(std::move(plan));
  return *plans_.back();
}

Route compile_route(pilot::PilotApp& app, const PI_CHANNEL& ch) {
  cluster::Cluster& cl = app.cluster();
  const PI_PROCESS& from = app.process(ch.from);
  const PI_PROCESS& to = app.process(ch.to);

  auto placed_node = [&](const PI_PROCESS& p) {
    if (p.location == pilot::Location::kSpe) {
      if (p.node < 0) {
        throw pilot::PilotError(
            pilot::ErrorCode::kUsage,
            "SPE process " + p.name + " of channel " + ch.name +
                " has no node placement; cannot compile its route");
      }
      return p.node;
    }
    return cl.node_of_rank(p.rank);
  };
  const int from_node = placed_node(from);
  const int to_node = placed_node(to);

  Route rt;
  rt.channel = ch.id;
  rt.type = resolve_channel_type(app, ch);
  rt.tag = ch.tag();
  rt.writer_is_spe = from.location == pilot::Location::kSpe;
  rt.reader_is_spe = to.location == pilot::Location::kSpe;
  rt.needs_transport = rt.writer_is_spe || rt.reader_is_spe;
  rt.writer_big_endian = cl.byte_order(from_node) == simtime::ByteOrder::kBig;

  if (!rt.writer_is_spe) {
    rt.write_dest = rt.reader_is_spe ? cl.copilot_rank(to_node) : to.rank;
  }
  if (!rt.reader_is_spe) {
    rt.read_source = rt.writer_is_spe ? cl.copilot_rank(from_node) : from.rank;
  }

  if (rt.writer_is_spe) {
    if (!rt.reader_is_spe) {
      rt.copilot_write = CopilotWriteAction::kRelayToRank;
      rt.copilot_write_dest = to.rank;
    } else if (from_node == to_node) {
      rt.copilot_write = CopilotWriteAction::kPairLocal;
    } else {
      rt.copilot_write = CopilotWriteAction::kRelayToPeer;
      rt.copilot_write_dest = cl.copilot_rank(to_node);
    }
  }
  if (rt.reader_is_spe) {
    if (rt.writer_is_spe && from_node == to_node) {
      rt.copilot_read = CopilotReadAction::kPairLocal;
    } else {
      rt.copilot_read = CopilotReadAction::kAwaitMpi;
      rt.copilot_read_source =
          rt.writer_is_spe ? cl.copilot_rank(from_node) : from.rank;
    }
  }
  return rt;
}

void Router::compile(pilot::PilotApp& app) {
  const int channels = app.channel_count();
  // A fresh route table starts a fresh stats epoch: the counters are sized
  // here, before any traffic, so the hot-path increments never lock.  The
  // metrics latency ledger follows the same epoch.
  trace::ChannelCounters::global().reset(
      static_cast<std::size_t>(channels));
  metrics::LatencyLedger::global().reset(
      static_cast<std::size_t>(channels));
  routes_.reserve(static_cast<std::size_t>(channels));
  for (int id = 0; id < channels; ++id) {
    PI_CHANNEL& ch = app.channel(id);
    auto rt = std::make_unique<Route>(compile_route(app, ch));
    ch.route = rt.get();
    routes_.push_back(std::move(rt));
  }
  const int bundles = app.bundle_count();
  bundle_formats_.reserve(static_cast<std::size_t>(bundles));
  for (int i = 0; i < bundles; ++i) {
    bundle_formats_.push_back(std::make_unique<FormatCache>());
  }
  compiled_.store(true, std::memory_order_release);
}

Route& Router::route(int channel) {
  if (!compiled()) {
    throw pilot::PilotError(pilot::ErrorCode::kUsage,
                            "channel routes are not compiled yet (data-plane "
                            "call before PI_StartAll?)");
  }
  if (channel < 0 || channel >= static_cast<int>(routes_.size())) {
    throw pilot::PilotError(
        pilot::ErrorCode::kInternal,
        "channel id " + std::to_string(channel) + " has no compiled route");
  }
  return *routes_[static_cast<std::size_t>(channel)];
}

FormatCache& Router::bundle_formats(int bundle) {
  if (!compiled()) {
    throw pilot::PilotError(pilot::ErrorCode::kUsage,
                            "channel routes are not compiled yet (data-plane "
                            "call before PI_StartAll?)");
  }
  if (bundle < 0 || bundle >= static_cast<int>(bundle_formats_.size())) {
    throw pilot::PilotError(
        pilot::ErrorCode::kInternal,
        "bundle id " + std::to_string(bundle) + " has no format cache");
  }
  return *bundle_formats_[static_cast<std::size_t>(bundle)];
}

}  // namespace cellpilot
