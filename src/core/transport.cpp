#include "core/transport.hpp"

#include <algorithm>
#include <thread>

#include "cellsim/errors.hpp"
#include "cellsim/libspe2.hpp"
#include "core/spe_runtime.hpp"
#include "simtime/metrics.hpp"
#include "simtime/timeseries.hpp"
#include "simtime/tracebuf.hpp"

namespace cellpilot {

void CellTransportImpl::spe_write(const PI_CHANNEL& ch, std::uint32_t sig,
                                  std::span<const std::byte> payload) {
  pilot::SpeDispatch* sd = pilot::spe_dispatch();
  spe_channel_write(*sd->app, ch, sig, payload);
}

void CellTransportImpl::spe_read(const PI_CHANNEL& ch, std::uint32_t sig,
                                 std::span<std::byte> out) {
  pilot::SpeDispatch* sd = pilot::spe_dispatch();
  spe_channel_read(*sd->app, ch, sig, out);
}

void CellTransportImpl::spe_submit_write(PI_OP& op, const PI_CHANNEL& ch,
                                         std::uint32_t sig,
                                         std::span<const std::byte> payload) {
  spe_submit_channel_write(op, ch, sig, payload);
}

void CellTransportImpl::spe_submit_read(PI_OP& op, const PI_CHANNEL& ch,
                                        std::uint32_t sig, std::size_t bytes) {
  spe_submit_channel_read(op, ch, sig, bytes);
}

void CellTransportImpl::spe_wait(PI_OP& op, const PI_CHANNEL& ch,
                                 std::span<std::byte> out) {
  spe_wait_channel_op(op, ch, out);
}

bool CellTransportImpl::spe_test(PI_OP& op, const PI_CHANNEL& ch,
                                 std::span<std::byte> out) {
  return spe_test_channel_op(op, ch, out);
}

int CellTransportImpl::spe_wait_any(PI_OP* const* ops, int n) {
  return spe_wait_any_channel_op(ops, n);
}

void CellTransportImpl::run_spe(pilot::PilotContext& ctx, PI_PROCESS& proc,
                                int arg, void* ptr) {
  pilot::PilotApp& app = ctx.app();
  if (ctx.phase != pilot::Phase::kExecution) {
    throw pilot::PilotError(pilot::ErrorCode::kUsage,
                            "PI_RunSPE called outside the execution phase");
  }
  if (ctx.my_process != proc.parent_process) {
    throw pilot::PilotError(
        pilot::ErrorCode::kUsage,
        "PI_RunSPE(" + proc.name + ") must be called by its parent process P" +
            std::to_string(proc.parent_process) + ", not P" +
            std::to_string(ctx.my_process));
  }
  if (proc.program == nullptr || proc.program->entry == nullptr) {
    throw pilot::PilotError(pilot::ErrorCode::kUsage,
                            "PI_RunSPE: SPE process has no program");
  }

  const int node = proc.node;
  const unsigned flat = app.acquire_spe(node);
  app.bind_spe_process(node, flat, proc.id);
  // Launch recipe for Co-Pilot supervision: with -pirespawn armed a fault
  // replays this exact program into a fresh context.
  app.register_respawn_seed(
      proc.id, pilot::PilotApp::RespawnSeed{proc.program, arg, ptr,
                                            ctx.rank()});
  cellsim::Spe& spe = app.cluster().spe(node, flat);
  mpisim::World* world = &app.cluster().world();

  auto launch = std::make_unique<SpeLaunchArgs>();
  launch->app = &app;
  launch->process_id = proc.id;
  launch->arg = arg;
  launch->ptr = ptr;

  // The SPE starts no earlier (in virtual time) than its parent's launch.
  const simtime::SimTime stamp = ctx.mpi().clock().now();
  if (simtime::timeseries::armed()) {
    // Per-context busy flag: the value depends only on this spawn, so the
    // sample is as deterministic as the kSpeSpawn trace record (a shared
    // per-node count could pair racily with the stamp across windows).
    simtime::timeseries::record(simtime::timeseries::Kind::kSpePoolBusy, 0,
                                -1, spe.name(), stamp, 1);
  }

  // The paper's mechanism: CellPilot spawns a pthread that loads the image
  // onto an SPE via the SDK and waits in the background for completion.
  std::thread t([&app, &spe, program = proc.program,
                 launch = std::move(launch), node, flat, stamp, world,
                 proc_name = proc.name] {
    spe.clock().join(stamp);
    bool faulted = false;
    try {
      cellsim::spe2::SpeContext sctx(spe);
      sctx.run(*program, cellsim::ea_of(launch.get()), 0);
    } catch (const mpisim::WorldAborted&) {
      // Job torn down elsewhere.
    } catch (const cellsim::HardwareFault& f) {
      // A hardware fault is survivable: leave a posthumous notice for the
      // Co-Pilot, which converts it into PI_SPE_FAULT completions at every
      // peer instead of tearing the job down.  (During an abort the closed
      // mailboxes throw MailboxFault in parked SPEs — that is teardown,
      // not a new death.)
      if (!world->aborted()) {
        faulted = true;
        spe.raise_fault(f.fault_code(), spe.clock().now(),
                        "SPE process " + proc_name + ": " + f.what());
      }
    } catch (const std::exception& e) {
      if (!world->aborted()) {
        world->abort("SPE process " + proc_name + " failed: " + e.what());
      }
    }
    // A faulted SPE is never returned to the pool: its slot must stay
    // bound to the dead process until the Co-Pilot consumes the fault
    // notice, and a later PI_RunSPE must not inherit a haunted context.
    // (Real hardware keeps a crashed SPE context out of service too.)
    if (!faulted) {
      if (simtime::timeseries::armed()) {
        simtime::timeseries::record(simtime::timeseries::Kind::kSpePoolBusy,
                                    0, -1, spe.name(), spe.clock().now(), 0);
      }
      app.release_spe(node, flat);
    }
  });
  app.add_spe_thread(ctx.rank(), std::move(t));
}

void CellTransportImpl::spawn_spe(
    pilot::PilotContext& ctx, PI_PROCESS& proc,
    const cellsim::spe2::spe_program_handle_t& program, int arg, void* ptr) {
  pilot::PilotApp& app = ctx.app();
  if (ctx.phase != pilot::Phase::kExecution) {
    throw pilot::PilotError(pilot::ErrorCode::kUsage,
                            "PI_SpawnSPE called outside the execution phase");
  }
  if (ctx.my_process != proc.parent_process) {
    throw pilot::PilotError(
        pilot::ErrorCode::kUsage,
        "PI_SpawnSPE(" + proc.name +
            ") must be called by its parent process P" +
            std::to_string(proc.parent_process) + ", not P" +
            std::to_string(ctx.my_process));
  }
  if (program.entry == nullptr) {
    throw pilot::PilotError(pilot::ErrorCode::kUsage,
                            "PI_SpawnSPE: program has no entry point");
  }
  // A slot only reaches the failure registry once the degradation ladder's
  // last rung poisoned it: either -pirespawn is disarmed, or the budget was
  // exhausted.  Its channels are poisoned and its context was never
  // returned to the pool, so a user-level respawn could only inherit
  // confusion — the supervised respawn path (core/copilot) is the one that
  // rebinds a faulted slot, before any failure is ever published.
  if (auto failure = app.process_failure(proc.id)) {
    throw pilot::PilotError(
        pilot::ErrorCode::kUsage,
        "PI_SpawnSPE(" + proc.name + "): the process previously faulted (" +
            failure->detail + "); a poisoned SPE slot cannot be respawned" +
            (app.options().respawn_budget > 0
                 ? " (its -pirespawn budget is spent)"
                 : " (arm -pirespawn=N for supervised self-healing)"));
  }

  const simtime::SimTime call_begin = ctx.mpi().clock().now();
  // Pooled contexts: wait for the slot's previous occupant to retire, then
  // prefer the context it just vacated (warm local store on real hardware).
  app.join_spawn(ctx.rank(), proc.id);
  const int node = proc.node;
  const std::optional<unsigned> prev = app.last_spawn_flat(proc.id);
  const unsigned flat =
      prev ? app.acquire_spe_preferring(node, *prev) : app.acquire_spe(node);
  app.bind_spe_process(node, flat, proc.id);
  // The runtime binding that lifts Pilot's static-declaration restriction:
  // the slot carries whatever program this spawn supplies.
  proc.program = &program;
  app.register_respawn_seed(
      proc.id,
      pilot::PilotApp::RespawnSeed{proc.program, arg, ptr, ctx.rank()});
  cellsim::Spe& spe = app.cluster().spe(node, flat);
  mpisim::World* world = &app.cluster().world();

  auto launch = std::make_unique<SpeLaunchArgs>();
  launch->app = &app;
  launch->process_id = proc.id;
  launch->arg = arg;
  launch->ptr = ptr;

  const simtime::SimTime stamp = ctx.mpi().clock().now();
  // The previous occupant has been joined, so the SPE clock is quiescent:
  // the program starts at the later of the parent's launch stamp and the
  // context's own time.
  const simtime::SimTime start = std::max(stamp, spe.clock().now());
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kSpeSpawn, spe.name(),
                              call_begin, start, 0, proc.id, 0);
  }
  if (simtime::metrics::armed()) {
    simtime::metrics::record(simtime::metrics::Kind::kSpawnLatency, 0,
                             proc.id, spe.name(), start - call_begin);
  }
  if (simtime::timeseries::armed()) {
    simtime::timeseries::record(simtime::timeseries::Kind::kSpePoolBusy, 0,
                                -1, spe.name(), start, 1);
  }

  std::thread t([&app, &spe, program = proc.program,
                 launch = std::move(launch), node, flat, stamp, world,
                 proc_id = proc.id, proc_name = proc.name] {
    spe.clock().join(stamp);
    bool faulted = false;
    try {
      cellsim::spe2::SpeContext sctx(spe);
      sctx.run(*program, cellsim::ea_of(launch.get()), 0);
    } catch (const mpisim::WorldAborted&) {
      // Job torn down elsewhere.
    } catch (const cellsim::HardwareFault& f) {
      if (!world->aborted()) {
        faulted = true;
        spe.raise_fault(f.fault_code(), spe.clock().now(),
                        "SPE process " + proc_name + ": " + f.what());
      }
    } catch (const std::exception& e) {
      if (!world->aborted()) {
        world->abort("SPE process " + proc_name + " failed: " + e.what());
      }
    }
    // Same rule as PI_RunSPE: a faulted context is never pooled again.  A
    // clean completion records its retirement and frees the context for
    // the next spawn.
    if (!faulted) {
      if (simtime::tracebuf::armed()) {
        const simtime::SimTime end = spe.clock().now();
        simtime::tracebuf::record(simtime::tracebuf::Kind::kSpeRetire,
                                  spe.name(), end, end, 0, proc_id, 0);
      }
      if (simtime::timeseries::armed()) {
        simtime::timeseries::record(simtime::timeseries::Kind::kSpePoolBusy,
                                    0, -1, spe.name(), spe.clock().now(), 0);
      }
      app.release_spe(node, flat);
    }
  });
  app.register_spawn(proc.id, ctx.rank(), flat, std::move(t));
}

}  // namespace cellpilot
