#include "core/transport.hpp"

#include <thread>

#include "cellsim/errors.hpp"
#include "cellsim/libspe2.hpp"
#include "core/spe_runtime.hpp"

namespace cellpilot {

void CellTransportImpl::spe_write(const PI_CHANNEL& ch, std::uint32_t sig,
                                  std::span<const std::byte> payload) {
  pilot::SpeDispatch* sd = pilot::spe_dispatch();
  spe_channel_write(*sd->app, ch, sig, payload);
}

void CellTransportImpl::spe_read(const PI_CHANNEL& ch, std::uint32_t sig,
                                 std::span<std::byte> out) {
  pilot::SpeDispatch* sd = pilot::spe_dispatch();
  spe_channel_read(*sd->app, ch, sig, out);
}

void CellTransportImpl::run_spe(pilot::PilotContext& ctx, PI_PROCESS& proc,
                                int arg, void* ptr) {
  pilot::PilotApp& app = ctx.app();
  if (ctx.phase != pilot::Phase::kExecution) {
    throw pilot::PilotError(pilot::ErrorCode::kUsage,
                            "PI_RunSPE called outside the execution phase");
  }
  if (ctx.my_process != proc.parent_process) {
    throw pilot::PilotError(
        pilot::ErrorCode::kUsage,
        "PI_RunSPE(" + proc.name + ") must be called by its parent process P" +
            std::to_string(proc.parent_process) + ", not P" +
            std::to_string(ctx.my_process));
  }
  if (proc.program == nullptr || proc.program->entry == nullptr) {
    throw pilot::PilotError(pilot::ErrorCode::kUsage,
                            "PI_RunSPE: SPE process has no program");
  }

  const int node = proc.node;
  const unsigned flat = app.acquire_spe(node);
  app.bind_spe_process(node, flat, proc.id);
  cellsim::Spe& spe = app.cluster().spe(node, flat);
  mpisim::World* world = &app.cluster().world();

  auto launch = std::make_unique<SpeLaunchArgs>();
  launch->app = &app;
  launch->process_id = proc.id;
  launch->arg = arg;
  launch->ptr = ptr;

  // The SPE starts no earlier (in virtual time) than its parent's launch.
  const simtime::SimTime stamp = ctx.mpi().clock().now();

  // The paper's mechanism: CellPilot spawns a pthread that loads the image
  // onto an SPE via the SDK and waits in the background for completion.
  std::thread t([&app, &spe, program = proc.program,
                 launch = std::move(launch), node, flat, stamp, world,
                 proc_name = proc.name] {
    spe.clock().join(stamp);
    bool faulted = false;
    try {
      cellsim::spe2::SpeContext sctx(spe);
      sctx.run(*program, cellsim::ea_of(launch.get()), 0);
    } catch (const mpisim::WorldAborted&) {
      // Job torn down elsewhere.
    } catch (const cellsim::HardwareFault& f) {
      // A hardware fault is survivable: leave a posthumous notice for the
      // Co-Pilot, which converts it into PI_SPE_FAULT completions at every
      // peer instead of tearing the job down.  (During an abort the closed
      // mailboxes throw MailboxFault in parked SPEs — that is teardown,
      // not a new death.)
      if (!world->aborted()) {
        faulted = true;
        spe.raise_fault(f.fault_code(), spe.clock().now(),
                        "SPE process " + proc_name + ": " + f.what());
      }
    } catch (const std::exception& e) {
      if (!world->aborted()) {
        world->abort("SPE process " + proc_name + " failed: " + e.what());
      }
    }
    // A faulted SPE is never returned to the pool: its slot must stay
    // bound to the dead process until the Co-Pilot consumes the fault
    // notice, and a later PI_RunSPE must not inherit a haunted context.
    // (Real hardware keeps a crashed SPE context out of service too.)
    if (!faulted) app.release_spe(node, flat);
  });
  app.add_spe_thread(ctx.rank(), std::move(t));
}

}  // namespace cellpilot
