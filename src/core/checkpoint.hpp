// checkpoint.hpp — coordinated cluster checkpoints in virtual time.
//
// A Chandy–Lamport-style snapshot adapted to CellPilot's conservative
// virtual-time engine.  Each Co-Pilot counts the requests it services; every
// `-pickptevery` services it contributes a *shard* — its node's slice of the
// global state — to the currently open cut, then floods a PILS marker frame
// down every outgoing peer-relay route (Table I type 5).  A Co-Pilot that
// receives a marker for a cut it has not joined contributes early, so the
// shards of one cut sit on a consistent frontier: no application message is
// recorded as received by one side of the cut without being recorded as sent
// by the other.  Markers travel only between Co-Pilots — plain ranks never
// see a PILS frame, their state is reconstructed from the delivery journal.
//
// When the last Cell node's shard lands, the cut *commits*: the session
// serializes the shards — per-channel epochs, per-process delivery-journal
// marks, parked Co-Pilot operations, local-store images of quiescent
// (sync-parked) SPEs, and the reliable sublayer's per-link windows — into a
// versioned, CRC-framed checkpoint file.  The file is overwritten in place,
// so it always holds the *latest* committed cut, and its bytes are a pure
// function of the seed (shards are keyed and ordered by node index; host
// scheduling decides only which thread performs the serialization, never
// what is serialized).
//
// Discipline mirrors trace/metrics/faultplan: the session is process-wide,
// armed by `-pickpt=FILE`, and free when disarmed — one relaxed atomic load
// on the request path, no virtual-time cost, no allocation.  Armed but
// untriggered (interval never reached), a run's stdout, trace, and metrics
// stay byte-identical to a disarmed run.
//
// The consumer is the blade-loss recovery path (core/copilot): a `blade_kill`
// fault takes out a whole blade — every SPE context plus its Co-Pilot.  With
// a committed checkpoint on record the standby Co-Pilot relaunches the lost
// contexts and replays the delivery journal across the cut for exactly-once
// delivery (PR 7's epoch tombstones suppress the dead incarnation's
// in-flight frames).  With no checkpoint it degrades to the poison + PILF
// ladder — readers fault fast, nothing hangs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "mpisim/reliable.hpp"
#include "simtime/sim_time.hpp"

namespace cellpilot::ckpt {

/// Checkpoint file format version (kHeader section).
inline constexpr std::uint32_t kFileVersion = 1;

/// Section ids (WireHeader.signature of each PILS-framed section).
enum class Section : std::uint32_t {
  kHeader = 1,    ///< version, shard count, channel count, cut stamps
  kEpochs = 2,    ///< per-channel writer epochs at commit
  kJournal = 3,   ///< one node's delivery-journal marks
  kParked = 4,    ///< one node's parked Co-Pilot operations
  kSpeImage = 5,  ///< one node's quiescent local-store images
  kLinks = 6,     ///< reliable-sublayer per-link protocol state
  kCommit = 7,    ///< trailer: byte count + CRC of everything before it
};

/// Delivery-journal position of one (process, channel) pair at the cut.
/// `reads_crc` is a CRC32 over the journaled read payloads, so an offline
/// verifier can prove two checkpoints saw the same bytes without storing
/// the payloads themselves.
struct JournalMark {
  std::int32_t pid = -1;
  std::int32_t channel = -1;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint32_t reads_crc = 0;
};

/// One operation parked in a Co-Pilot's pending tables at the cut: a
/// pair-local op waiting for its peer, or a read awaiting MPI data.
struct ParkedOp {
  std::int32_t channel = -1;
  std::int32_t pid = -1;
  std::uint32_t opcode = 0;
  std::uint32_t signature = 0;
  std::uint32_t length = 0;
  std::uint32_t token = 0;  ///< completion token (async ops only)
  std::uint8_t is_write = 0;
  std::uint8_t is_async = 0;
};

/// Local-store image of one quiescent SPE.  Only SPEs blocked in a
/// synchronous parked op are captured: they sit in a mailbox read with a
/// stable store, so the image is exact at the cut's virtual stamp.
struct SpeImage {
  std::int32_t pid = -1;
  simtime::SimTime clock = 0;
  std::string name;
  std::vector<std::byte> ls;
};

/// One Cell node's slice of the snapshot.
struct Shard {
  std::int32_t node = -1;
  simtime::SimTime stamp = 0;    ///< contributor's virtual time at the cut
  std::uint64_t serviced = 0;    ///< requests serviced before contributing
  std::vector<JournalMark> journal;
  std::vector<ParkedOp> parked;
  std::vector<SpeImage> images;
};

/// A fully assembled cut, ready to serialize.  `begin`/`commit` are the
/// min/max shard stamps: the virtual-time span the frontier cuts across.
struct Image {
  std::uint32_t cut = 0;
  std::uint32_t channels = 0;
  simtime::SimTime begin = 0;
  simtime::SimTime commit = 0;
  std::vector<std::uint32_t> epochs;  ///< per channel, at commit
  std::vector<Shard> shards;          ///< ascending node index
  std::vector<mpisim::reliable::LinkSnapshot> links;
};

/// Serializes an image to checkpoint-file bytes: a sequence of PILS-framed
/// sections, each `WireHeader{magic=PILS, signature=section, epoch=cut}`
/// followed by `[4B CRC32 of body][body]`, closed by a kCommit trailer
/// whose body holds the byte count and CRC32 of everything before it.
/// Exposed standalone so golden tests and tools/ckptinspect share it.
std::vector<std::byte> serialize(const Image& image);

/// Parse outcome of `deserialize` (tools/ckptinspect, tests).
struct ParseResult {
  bool ok = false;
  std::string error;  ///< first structural/CRC failure, empty when ok
  Image image;
};

/// Parses and verifies checkpoint-file bytes: section framing, every
/// per-section CRC, and the kCommit trailer.
ParseResult deserialize(std::span<const std::byte> bytes);

/// Process-wide checkpoint coordinator.  Thread-safe: every Co-Pilot
/// contributes through it; whichever thread lands the final shard of a cut
/// performs the commit inline.
class CheckpointSession {
 public:
  static CheckpointSession& global();

  /// Arms the session: checkpoints serialize to `path`, a cut opens every
  /// `every` serviced requests per Co-Pilot.  Empty path disarms.
  void configure(std::string path, std::uint64_t every);

  /// True when a checkpoint file path is armed.  One relaxed load — the
  /// request-path fast gate.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Cut interval (requests serviced per Co-Pilot between cuts).
  std::uint64_t every() const { return every_.load(std::memory_order_relaxed); }

  /// Declares a job's contributor set: cuts commit when `cell_nodes` shards
  /// have landed.  Clears any state left by a previous job.
  void begin_job(int cell_nodes);

  /// Drops per-job cut state (the file on disk survives).
  void end_job();

  /// Narrows the quorum to the Cell nodes that actually host SPE contexts
  /// (called at PI_StartAll, once the process tables are final).  A blade
  /// without SPEs never services a request — it would block every cut
  /// forever — and it has nothing to checkpoint: its ranks' state is
  /// reconstructed from peer journals at restore.  Narrowing re-evaluates
  /// any already-open cut, so the committed watermark is independent of
  /// which thread got here first.
  void set_contributors(int cell_nodes);

  /// Next cut ordinal this node should contribute to (1-based).  Each
  /// Co-Pilot contributes to cut k at its k-th interval hit, or earlier
  /// when a PILS marker for cut >= k arrives — either way the mapping from
  /// cut id to contribution point is a pure function of that node's
  /// deterministic event sequence.
  std::uint32_t next_cut(std::int32_t node);

  /// True when this node has not yet contributed to `cut` (marker receipt
  /// path: decides whether a marker triggers an early contribution).
  bool needs_contribution(std::int32_t node, std::uint32_t cut);

  /// Lands one shard.  `epochs` and `links` are the contributor's view of
  /// the global tables (used only if this contribution commits the cut).
  /// Returns true when the shard completed the cut — the commit, including
  /// the file write, ran inline on this thread.
  bool contribute(std::uint32_t cut, Shard shard,
                  std::vector<std::uint32_t> epochs,
                  std::vector<mpisim::reliable::LinkSnapshot> links);

  /// True once any cut has committed this job (the blade-restore gate).
  bool has_committed() const {
    return committed_.load(std::memory_order_relaxed);
  }

  /// Highest committed cut id this job (0 = none).
  std::uint32_t committed_cut() const {
    return committed_cut_.load(std::memory_order_relaxed);
  }

 private:
  CheckpointSession() = default;
  void commit_locked(std::uint32_t cut);

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> every_{0};
  std::string path_;
  int cell_nodes_ = 0;

  /// Open cuts: cut id -> shards landed so far (keyed by node).
  std::map<std::uint32_t, std::map<std::int32_t, Shard>> open_;
  /// Commit extras from the latest contributor per cut.
  std::map<std::uint32_t, std::vector<std::uint32_t>> cut_epochs_;
  std::map<std::uint32_t, std::vector<mpisim::reliable::LinkSnapshot>>
      cut_links_;
  /// Per-node next cut ordinal (see next_cut).
  std::map<std::int32_t, std::uint32_t> next_cut_;

  std::atomic<bool> committed_{false};
  std::atomic<std::uint32_t> committed_cut_{0};
};

}  // namespace cellpilot::ckpt
