// runner.cpp — cellpilot::run, the simulated `mpirun`.
//
// Places the roles onto the world's ranks: user ranks execute the
// application's main (SPMD, as mpirun does), each Cell node's Co-Pilot rank
// runs the Co-Pilot service, and the optional final rank runs Pilot's
// deadlock-detection service.
#include "core/cellpilot.hpp"
#include "core/checkpoint.hpp"

#include "core/copilot.hpp"
#include "core/epoch.hpp"
#include "core/flightrec.hpp"
#include "core/metrics.hpp"
#include "core/router.hpp"
#include "core/telemetry.hpp"
#include "core/trace.hpp"
#include "core/transport.hpp"
#include "mpisim/launcher.hpp"
#include "pilot/context.hpp"
#include "pilot/deadlock.hpp"

namespace cellpilot {

namespace {

/// RAII bind of the rank thread's PilotContext.
class ContextBinding {
 public:
  explicit ContextBinding(pilot::PilotContext& ctx) {
    pilot::bind_context(&ctx);
  }
  ~ContextBinding() { pilot::bind_context(nullptr); }
  ContextBinding(const ContextBinding&) = delete;
  ContextBinding& operator=(const ContextBinding&) = delete;
};

}  // namespace

RunResult run(cluster::Cluster& machine, const MainFunc& user_main,
              RunOptions options) {
  // Touch the observability singletons before any traffic: their
  // constructors arm from the environment (CELLPILOT_TRACE /
  // CELLPILOT_METRICS / CELLPILOT_FLIGHTREC), and lazy construction at
  // the flush point used to leave the process's FIRST job silently
  // unrecorded — an env-armed single-job binary wrote an event-less file.
  trace::TraceSession::global();
  metrics::MetricsSession::global();
  telemetry::TelemetrySession::global();
  flightrec::FlightRecorder::global();

  pilot::PilotApp app(machine);
  CellTransportImpl transport;
  app.set_transport(&transport);

  // Channel epochs restart at zero with each job: an epoch is a writer
  // incarnation *within* a job, and a stale floor left over from a previous
  // job's respawns would silently discard the new job's first frames.
  epochs::reset();

  // Checkpoint cut coordination restarts per job: the commit rule ("every
  // Cell node contributed a shard") needs this job's contributor count.
  // The session itself is armed later, by PI_Configure (-pickpt), exactly
  // like the trace/metrics sessions; declaring the topology is free.
  {
    int cells = 0;
    for (int n = 0; n < machine.node_count(); ++n) {
      if (machine.is_cell_node(n)) ++cells;
    }
    ckpt::CheckpointSession::global().begin_job(cells);
  }

  const mpisim::LaunchResult launched = mpisim::launch(
      machine.world(), [&](mpisim::Mpi& mpi) -> int {
        const mpisim::Rank r = mpi.rank();

        if (r < machine.user_rank_count()) {
          // A user rank: run the application main with its own mutable
          // argv (PI_Configure strips Pilot options in place).
          std::vector<std::string> arg_store;
          arg_store.push_back(options.program_name);
          for (const std::string& a : options.args) arg_store.push_back(a);
          std::vector<char*> argv;
          argv.reserve(arg_store.size() + 1);
          for (std::string& a : arg_store) argv.push_back(a.data());
          argv.push_back(nullptr);
          int argc = static_cast<int>(arg_store.size());

          pilot::PilotContext ctx(app, mpi);
          ContextBinding binding(ctx);
          try {
            return user_main(argc, argv.data());
          } catch (const pilot::ProcessExit& exit) {
            return exit.status;
          }
        }

        for (int n = 0; n < machine.node_count(); ++n) {
          if (machine.is_cell_node(n) && machine.copilot_rank(n) == r) {
            return copilot_main(mpi, app, n);
          }
        }
        if (machine.service_rank() == r) {
          return pilot::deadlock_service_main(mpi);
        }
        return 0;  // unreachable with a consistent cluster layout
      });

  // All rank threads have finished; stragglers among SPE threads (e.g.
  // after an abort) are joined by the app's destructor, but join here so
  // the result reflects a fully quiesced job.
  app.join_all_spe_threads();

  // Full quiescence: every rank, Co-Pilot, service and SPE thread has been
  // joined, so nothing can still be recording — drain the trace rings into
  // this job's batch and rewrite the session's trace file (a no-op when
  // tracing is disarmed).
  {
    std::vector<trace::ChannelSummary> channels;
    channels.reserve(static_cast<std::size_t>(app.channel_count()));
    for (int c = 0; c < app.channel_count(); ++c) {
      const PI_CHANNEL& ch = app.channel(c);
      trace::ChannelSummary s;
      s.channel = c;
      s.route_type = ch.route == nullptr ? 0 : static_cast<int>(ch.route->type);
      s.name = ch.name;
      s.stats = trace::ChannelCounters::global().snapshot(c);
      channels.push_back(std::move(s));
    }
    trace::TraceSession::global().flush_job(channels);
  }

  // Same quiescence point for the metrics report and the windowed
  // telemetry report: drain each registry into this job's report and
  // rewrite the session's file (no-ops when disarmed).  After the flushes
  // the flight recorder may discard ring contents it alone kept alive.
  metrics::MetricsSession::global().flush_job();
  telemetry::TelemetrySession::global().flush_job();
  flightrec::FlightRecorder::global().on_job_end();
  ckpt::CheckpointSession::global().end_job();

  RunResult result;
  result.status = launched.exit_codes.empty() ? 0 : launched.exit_codes[0];
  result.aborted = launched.aborted;
  result.abort_reason = launched.abort_reason;
  result.errors = launched.errors;
  return result;
}

}  // namespace cellpilot
