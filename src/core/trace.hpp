#pragma once
/// \file
/// CellPilot vocabulary over the simtime::tracebuf engine.
///
/// Two consumers share the engine:
///
///  * TraceSession — the `-pitrace=FILE` / `CELLPILOT_TRACE` plumbing.
///    While armed, every instrumented seam records into per-thread rings;
///    cellpilot::run's epilogue (all threads joined) drains them into a
///    per-job batch and rewrites the whole Chrome `chrome://tracing` JSON
///    file, so a bench binary that runs many CellPilot jobs accumulates
///    them all (one Chrome "process" per job).
///    Because all stamps are virtual and the schedule is deterministic, two
///    runs of the same program produce byte-identical files — `tracecheck`
///    turns that into a CI oracle.
///
///  * ScopedTraceCapture — the in-process test harness.  Arms the engine
///    for a scope and hands the drained events straight to the test (the
///    channel-matrix test asserts which Table I legs a message actually
///    crossed).  While a capture is active the session's flush is
///    suppressed so the two consumers never steal each other's events.
///
/// Independent of arming, ChannelCounters aggregates always-on per-channel
/// totals (messages, bytes, Co-Pilot hops, retries, timeouts, faults)
/// surfaced through the public PI_GetChannelStats call.  Counters are
/// plain atomic increments on the host — they never touch virtual clocks.

#include <cstdint>
#include <string>
#include <vector>

#include "simtime/tracebuf.hpp"

namespace cellpilot::trace {

/// Aggregated totals for one channel since route compilation.
struct ChannelStats {
  std::uint64_t messages = 0;       ///< completed writes (per Table I leg set)
  std::uint64_t payload_bytes = 0;  ///< marshalled payload bytes written
  std::uint64_t copilot_hops = 0;   ///< Co-Pilot legs executed (relay/pair/deliver)
  std::uint64_t retries = 0;        ///< deadline extensions granted
  std::uint64_t timeouts = 0;       ///< requests completed PI_SPE_TIMEOUT
  /// Channel *poisonings*: SPE deaths the supervisor could not (or was not
  /// armed to) recover, i.e. the degradation ladder's last rung.  A death
  /// absorbed by a supervised respawn is NOT a fault — it lands in
  /// `respawns` and the channel keeps flowing under a bumped epoch.
  std::uint64_t faults = 0;
  std::uint64_t retransmits = 0;    ///< reliable-layer frame retransmissions
  std::uint64_t duplicates = 0;     ///< duplicate frames window-suppressed
  std::uint64_t corrupt_detected = 0;  ///< CRC-caught damaged frames
  std::uint64_t respawns = 0;       ///< writer deaths absorbed by respawn
  std::uint64_t recovered_ops = 0;  ///< ops replayed/deduped across a respawn
  std::uint64_t checkpoints = 0;    ///< committed coordinated cuts covering
                                    ///< this channel
  std::uint64_t restores = 0;       ///< blade restores that replayed this
                                    ///< channel from a checkpoint
};

/// Always-on per-channel counter table.  Sized by Router::compile (which
/// runs before any traffic), read by PI_GetChannelStats and the trace
/// flush.  Out-of-range channel ids are ignored so probes never throw.
class ChannelCounters {
 public:
  static ChannelCounters& global();

  void reset(std::size_t channels);
  std::size_t size() const;

  void add_message(int channel, std::uint64_t payload_bytes);
  void add_copilot_hop(int channel);
  void add_retry(int channel);
  void add_timeout(int channel);
  void add_fault(int channel);
  void add_retransmit(int channel);
  void add_duplicate(int channel);
  void add_corrupt(int channel);
  void add_respawn(int channel);
  void add_recovered_op(int channel);
  void add_checkpoint(int channel);
  void add_restore(int channel);

  ChannelStats snapshot(int channel) const;

 private:
  ChannelCounters() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

/// What the flush needs to know about each channel (for the per-channel
/// stats block in the trace file and for tag -> channel attribution).
struct ChannelSummary {
  int channel = -1;
  int route_type = 0;
  std::string name;
  ChannelStats stats;
};

/// The `-pitrace` / `CELLPILOT_TRACE` session.  Thread-safe; all methods
/// other than armed() take an internal lock.
class TraceSession {
 public:
  static TraceSession& global();

  /// Arm for this process with an explicit output path (`-pitrace=FILE`).
  /// Restarts the accumulated batch list: an explicit flag means "trace
  /// this program", not "append to whatever came before".
  void configure(const std::string& path);

  bool armed() const;
  const std::string& path() const;

  /// Drain the engine into a new batch and rewrite the output file.
  /// Called by cellpilot::run's epilogue at full quiescence (every rank,
  /// Co-Pilot, service and SPE thread joined).  No-op when disarmed or
  /// while a ScopedTraceCapture is active.
  void flush_job(const std::vector<ChannelSummary>& channels);

  /// Test hook: drop all state and re-read CELLPILOT_TRACE.
  void reset_for_tests();

  /// Internal capture bookkeeping: both ScopedTraceCapture and
  /// ScopedMetricsCapture suppress *both* session flushes so the per-job
  /// numbering of the trace file and the metrics report stay aligned
  /// (tools/tracestats joins them by job ordinal).
  void adjust_captures(int delta);

  /// True while any scoped capture is alive (the flight recorder's
  /// end-of-job housekeeping must not clear rings a capture will drain).
  bool capture_active() const;

 private:
  TraceSession();
};

/// Render accumulated batches as Chrome trace JSON (exposed for tests).
struct JobBatch {
  int job = 0;  ///< 1-based job ordinal, becomes the Chrome pid
  std::vector<simtime::tracebuf::Event> events;
  std::vector<ChannelSummary> channels;
  std::uint64_t dropped = 0;
};
std::string chrome_trace_json(const std::vector<JobBatch>& batches);

/// RAII test harness: clear + arm on construction, disarm + clear on
/// destruction.  Suppresses TraceSession::flush_job for its lifetime so a
/// test running a full CellPilot job under CELLPILOT_TRACE still sees its
/// own events.
class ScopedTraceCapture {
 public:
  ScopedTraceCapture();
  ~ScopedTraceCapture();
  ScopedTraceCapture(const ScopedTraceCapture&) = delete;
  ScopedTraceCapture& operator=(const ScopedTraceCapture&) = delete;

  /// Drain everything recorded so far (canonical order).
  std::vector<simtime::tracebuf::Event> drain();
};

/// Map a MiniMPI tag back to the CellPilot channel id it serves, or -1 if
/// the tag is not a channel tag (control traffic, user tags).
int channel_of_tag(std::int64_t tag);

}  // namespace cellpilot::trace
