#include "core/flightrec.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "core/completion.hpp"
#include "core/faultplan.hpp"
#include "core/trace.hpp"
#include "simtime/tracebuf.hpp"

namespace cellpilot::flightrec {

namespace {

struct RecorderState {
  std::mutex mu;
  bool armed = false;
  std::string path;
  int dumps = 0;

  void arm_with(const std::string& p) {
    if (!armed) {
      // The recorder needs events flowing: arm the trace engine (never
      // perturbs virtual time) and switch on the black-box tails.  The
      // completion engine's registry arms with it, so postmortems carry the
      // table of operations that were still pending when things went wrong.
      simtime::tracebuf::arm();
      simtime::tracebuf::set_blackbox(kTailEvents);
      completion::OpRegistry::global().set_armed(true);
      armed = true;
    }
    path = p;
  }

  void disarm_locked() {
    if (armed) {
      completion::OpRegistry::global().set_armed(false);
      simtime::tracebuf::set_blackbox(0);
      simtime::tracebuf::disarm();
      armed = false;
    }
  }
};

RecorderState& recorder_state() {
  static RecorderState* g = new RecorderState;
  return *g;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
}

std::string postmortem_json(const std::string& reason, int dump_ordinal) {
  std::string out;
  out += "{\n\"generator\":\"cellpilot-flightrec\",\n\"reason\":\"";
  append_json_escaped(out, reason);
  out += "\",\n\"dumpOrdinal\":";
  out += std::to_string(dump_ordinal);

  // The armed fault plan: what was being injected when it went wrong.
  faults::FaultPlan& plan = faults::FaultPlan::global();
  out += ",\n\"faultPlan\":{\"armed\":";
  out += plan.armed() ? "true" : "false";
  out += ",\"seed\":";
  out += std::to_string(plan.seed());
  out += ",\"rules\":[";
  bool first = true;
  for (const faults::Rule& r : plan.rules()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"kind\":\"";
    out += faults::to_string(r.kind);
    out += "\",\"site\":\"";
    append_json_escaped(out, r.site);
    char tail[128];
    std::snprintf(tail, sizeof tail,
                  "\",\"op\":%llu,\"count\":%llu,\"delayNs\":%lld}",
                  static_cast<unsigned long long>(r.op),
                  static_cast<unsigned long long>(r.count),
                  static_cast<long long>(r.delay));
    out += tail;
  }
  out += "]}";

  // Every channel's counters at dump time (monotonic, lock-free reads).
  trace::ChannelCounters& counters = trace::ChannelCounters::global();
  const std::size_t channels = counters.size();
  out += ",\n\"channelStats\":[";
  for (std::size_t c = 0; c < channels; ++c) {
    const trace::ChannelStats s = counters.snapshot(static_cast<int>(c));
    if (c != 0) out += ",";
    char row[320];
    std::snprintf(
        row, sizeof row,
        "\n{\"channel\":%zu,\"messages\":%llu,\"payloadBytes\":%llu,"
        "\"copilotHops\":%llu,\"retries\":%llu,\"timeouts\":%llu,"
        "\"faults\":%llu,\"retransmits\":%llu,\"duplicates\":%llu,"
        "\"corruptDetected\":%llu}",
        c, static_cast<unsigned long long>(s.messages),
        static_cast<unsigned long long>(s.payload_bytes),
        static_cast<unsigned long long>(s.copilot_hops),
        static_cast<unsigned long long>(s.retries),
        static_cast<unsigned long long>(s.timeouts),
        static_cast<unsigned long long>(s.faults),
        static_cast<unsigned long long>(s.retransmits),
        static_cast<unsigned long long>(s.duplicates),
        static_cast<unsigned long long>(s.corrupt_detected));
    out += row;
  }
  out += "\n]";

  // Every operation still live in the completion engine: submitted handles
  // nobody harvested yet.  On a hang or watchdog trip this is the direct
  // answer to "who is everyone waiting for?" — each row names the channel,
  // direction, state and submitting call site of one outstanding transfer.
  out += ",\n\"pendingOps\":[";
  first = true;
  for (const completion::PendingOp& p :
       completion::OpRegistry::global().pending()) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"id\":";
    out += std::to_string(p.id);
    out += ",\"kind\":\"";
    out += completion::kind_name(p.kind);
    out += "\",\"state\":\"";
    out += completion::state_name(p.state);
    out += "\",\"entity\":\"";
    append_json_escaped(out, p.entity);
    out += "\",\"site\":\"";
    append_json_escaped(out, p.file.empty()
                                 ? std::string()
                                 : p.file + ":" + std::to_string(p.line));
    char tail[192];
    std::snprintf(tail, sizeof tail,
                  "\",\"status\":%u,\"channel\":%d,\"route\":%d,"
                  "\"speSide\":%s,\"blocking\":%s,\"bytes\":%llu,"
                  "\"submitNs\":%lld}",
                  p.status, p.channel, static_cast<int>(p.route_type),
                  p.spe_side ? "true" : "false",
                  p.blocking ? "true" : "false",
                  static_cast<unsigned long long>(p.bytes),
                  static_cast<long long>(p.submit_begin));
    out += tail;
  }
  out += "\n]";

  // The last-N events of every recording thread, canonically sorted.
  const auto events = simtime::tracebuf::blackbox_snapshot();
  out += ",\n\"events\":[";
  first = true;
  for (const auto& e : events) {
    if (!first) out += ",";
    first = false;
    const int channel =
        e.channel >= 0 ? e.channel : trace::channel_of_tag(e.aux);
    out += "\n{\"name\":\"";
    out += simtime::tracebuf::kind_name(e.kind);
    out += "\",\"entity\":\"";
    append_json_escaped(out, e.entity);
    char tail[192];
    std::snprintf(tail, sizeof tail,
                  "\",\"beginNs\":%lld,\"endNs\":%lld,\"channel\":%d,"
                  "\"route\":%d,\"bytes\":%llu,\"aux\":%lld}",
                  static_cast<long long>(e.begin),
                  static_cast<long long>(e.end), channel,
                  static_cast<int>(e.route_type),
                  static_cast<unsigned long long>(e.bytes),
                  static_cast<long long>(e.aux));
    out += tail;
  }
  out += "\n]\n}\n";
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder() {
  RecorderState& st = recorder_state();
  std::lock_guard lock(st.mu);
  const char* env = std::getenv("CELLPILOT_FLIGHTREC");
  if (env != nullptr) {
    if (env[0] != '\0') {
      st.arm_with(env);
    } else {
      // Loud ignore, matching CELLPILOT_RESPAWN/CELLPILOT_CKPT_EVERY: an
      // empty value keeps the recorder disarmed instead of arming it with
      // an unwritable path.
      std::fprintf(stderr,
                   "cellpilot: ignoring empty CELLPILOT_FLIGHTREC "
                   "(flight recorder stays disarmed)\n");
    }
  }
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* g = new FlightRecorder;
  return *g;
}

void FlightRecorder::configure(const std::string& path) {
  RecorderState& st = recorder_state();
  std::lock_guard lock(st.mu);
  st.dumps = 0;
  st.arm_with(path);
}

bool FlightRecorder::armed() const {
  RecorderState& st = recorder_state();
  std::lock_guard lock(st.mu);
  return st.armed;
}

const std::string& FlightRecorder::path() const {
  RecorderState& st = recorder_state();
  std::lock_guard lock(st.mu);
  return st.path;
}

void FlightRecorder::dump(const std::string& reason) {
  RecorderState& st = recorder_state();
  std::lock_guard lock(st.mu);
  if (!st.armed) return;
  ++st.dumps;
  // The artifact holds the whole crash sequence: arming starts a fresh
  // file, every later trigger appends its scene.  A cascade (blade_kill →
  // per-victim degrade faults) would otherwise destroy the first dump —
  // the one taken while the doomed ops were still pending.
  const auto mode =
      st.dumps == 1 ? std::ios::binary | std::ios::trunc
                    : std::ios::binary | std::ios::app;
  std::ofstream f(st.path, mode);
  if (f) f << postmortem_json(reason, st.dumps);
}

int FlightRecorder::dump_count() const {
  RecorderState& st = recorder_state();
  std::lock_guard lock(st.mu);
  return st.dumps;
}

void FlightRecorder::on_job_end() {
  RecorderState& st = recorder_state();
  std::lock_guard lock(st.mu);
  if (!st.armed) return;
  // If no trace session/capture will drain the rings, they would grow to
  // their cap across a many-job binary; the black-box tails are all the
  // recorder needs, so drop the ring contents here (quiescence point).
  trace::TraceSession& session = trace::TraceSession::global();
  if (!session.armed() && !session.capture_active()) {
    simtime::tracebuf::clear();
  }
}

void FlightRecorder::reset_for_tests() {
  RecorderState& st = recorder_state();
  std::lock_guard lock(st.mu);
  st.disarm_locked();
  st.path.clear();
  st.dumps = 0;
  const char* env = std::getenv("CELLPILOT_FLIGHTREC");
  if (env != nullptr && env[0] != '\0') st.arm_with(env);
}

}  // namespace cellpilot::flightrec
