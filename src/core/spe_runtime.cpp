#include "core/spe_runtime.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "cellsim/spe.hpp"
#include "cellsim/spu.hpp"
#include "core/faultplan.hpp"
#include "core/protocol.hpp"
#include "pilot/context.hpp"
#include "pilot/errors.hpp"

namespace cellpilot {

namespace {

using cellsim::spu::env;

/// Issues one request and stalls for the completion word.  The fault
/// plan's crash probe fires *before* the first mailbox word: a crashed
/// SPE dies mid-transfer from its peers' point of view — the request
/// never reaches the Co-Pilot, which discovers the death via the SPE's
/// posthumous fault notice.
CompletionStatus request_and_wait(Opcode op, const PI_CHANNEL& ch,
                                  cellsim::LsAddr ls_addr,
                                  std::uint32_t length, std::uint32_t sig) {
  if (faults::FaultPlan::global().armed() &&
      faults::FaultPlan::global().should_crash_spe(
          env().spe->name().c_str())) {
    throw faults::InjectedCrash("injected SPE crash on " + env().spe->name() +
                                " before request on channel " + ch.name);
  }
  cellsim::spu::spu_write_out_mbox(pack_op_channel(op, ch.id));
  cellsim::spu::spu_write_out_mbox(ls_addr);
  // The mid-message probe fires between mailbox words: the Co-Pilot is
  // left holding a partial assembly, the harshest death the self-healing
  // path has to absorb (spe_crash dies cleanly *before* the request).
  if (faults::FaultPlan::global().armed() &&
      faults::FaultPlan::global().should_crash_spe_mid(
          env().spe->name().c_str())) {
    throw faults::InjectedCrash("injected SPE crash on " + env().spe->name() +
                                " mid-request on channel " + ch.name);
  }
  cellsim::spu::spu_write_out_mbox(length);
  cellsim::spu::spu_write_out_mbox(sig);
  return static_cast<CompletionStatus>(cellsim::spu::spu_read_in_mbox());
}

/// Names the channel the way every fault diagnostic does: name + Table I
/// type, so one line identifies the route that failed.
std::string channel_label(const PI_CHANNEL& ch) {
  std::string label = "channel " + ch.name;
  if (ch.route != nullptr) {
    label += " (Table I type " +
             std::to_string(static_cast<int>(ch.route->type)) + ")";
  }
  return label;
}

[[noreturn]] void throw_completion_error(CompletionStatus status,
                                         const PI_CHANNEL& ch) {
  const std::string label = channel_label(ch);
  switch (status) {
    case CompletionStatus::kTypeMismatch:
      throw pilot::PilotError(pilot::ErrorCode::kTypeMismatch,
                              label +
                                  ": writer format does not match reader "
                                  "format (reported by Co-Pilot)");
    case CompletionStatus::kSizeMismatch:
      throw pilot::PilotError(pilot::ErrorCode::kTypeMismatch,
                              label +
                                  ": payload size disagreement "
                                  "(reported by Co-Pilot)");
    case CompletionStatus::kSpeFault:
      throw pilot::PilotError(pilot::ErrorCode::kSpeFault,
                              label +
                                  ": peer SPE died of a hardware fault "
                                  "(reported by Co-Pilot)");
    case CompletionStatus::kSpeTimeout:
      throw pilot::PilotError(pilot::ErrorCode::kSpeTimeout,
                              label +
                                  ": request missed its Co-Pilot deadline "
                                  "(SPE stalled)");
    case CompletionStatus::kCopilotFault:
      throw pilot::PilotError(pilot::ErrorCode::kCopilotFault,
                              label +
                                  ": serving Co-Pilot crashed; request "
                                  "could not be replayed by the standby");
    case CompletionStatus::kSpeRestarted:
      throw pilot::PilotError(pilot::ErrorCode::kSpeRestarted,
                              label +
                                  ": peer SPE was respawned and this "
                                  "operation could not be replayed against "
                                  "the new incarnation");
    default:
      throw pilot::PilotError(pilot::ErrorCode::kInternal,
                              label + ": Co-Pilot protocol error");
  }
}

/// RAII local-store staging buffer.
class Staging {
 public:
  explicit Staging(std::size_t bytes)
      : addr_(cellsim::spu::ls_alloc(std::max<std::size_t>(bytes, 16), 16)),
        bytes_(bytes) {}
  ~Staging() {
    if (owned_) cellsim::spu::ls_free(addr_);
  }
  Staging(const Staging&) = delete;
  Staging& operator=(const Staging&) = delete;

  cellsim::LsAddr addr() const { return addr_; }
  std::byte* ptr() {
    return static_cast<std::byte*>(
        cellsim::spu::ls_ptr(addr_, std::max<std::size_t>(bytes_, 16)));
  }

  /// Hands ownership to the caller (an async operation parks the buffer
  /// until harvest); the destructor then leaves it alone.
  cellsim::LsAddr disown() {
    owned_ = false;
    const cellsim::LsAddr a = addr_;
    addr_ = 0;
    return a;
  }

 private:
  cellsim::LsAddr addr_;
  std::size_t bytes_;
  bool owned_ = true;
};

/// Local-store pointer for a parked async staging buffer.
std::byte* parked_ptr(const PI_OP& op) {
  return static_cast<std::byte*>(cellsim::spu::ls_ptr(
      op.ls_addr, std::max<std::uint32_t>(op.ls_bytes, 16)));
}

/// Routes one arrived completion word to its operation.  `lenient` is the
/// abandoned-handle drain, which must not throw across the SPE epilogue.
void dispatch_completion_word(std::uint32_t word, bool lenient) {
  auto& engine = completion::Engine::local();
  PI_OP* op = engine.find_token(unpack_completion_token(word));
  if (op == nullptr || completion::is_settled(*op)) {
    if (lenient) return;
    throw pilot::PilotError(pilot::ErrorCode::kInternal,
                            "Co-Pilot completion word matches no in-flight "
                            "async operation on this SPE");
  }
  const auto status = unpack_completion_status(word);
  op->status.store(static_cast<std::uint32_t>(status),
                   std::memory_order_relaxed);
  completion::set_state(*op, status == CompletionStatus::kOk
                                  ? completion::State::kComplete
                                  : completion::State::kFaulted);
}

/// Consumes every completion word already sitting in the inbound mailbox
/// without stalling.
void drain_available_completions(bool lenient) {
  while (cellsim::spu::spu_stat_in_mbox() > 0) {
    dispatch_completion_word(cellsim::spu::spu_read_in_mbox(), lenient);
  }
}

/// Frees the parked staging buffer (idempotent).
void free_parked(PI_OP& op) {
  if (op.ls_addr != 0) {
    cellsim::spu::ls_free(op.ls_addr);
    op.ls_addr = 0;
  }
}

/// Submits one async request: stages, probes the crash plan, pushes the
/// 5-word request and leaves `op` in flight with its staging parked.
void spe_submit(PI_OP& op, Opcode opcode, const PI_CHANNEL& ch,
                std::uint32_t sig, std::span<const std::byte> payload,
                std::size_t bytes) {
  const auto& e = env();
  e.spe->clock().advance(e.cost->spu_call_overhead);

  auto& engine = completion::Engine::local();
  // Harvest any words that already arrived, then enforce the in-flight
  // cap that keeps the Co-Pilot's completion pushes non-blocking.
  drain_available_completions(/*lenient=*/false);
  if (engine.inflight() >=
      static_cast<int>(cellsim::kInboundMailboxDepth)) {
    throw pilot::PilotError(
        pilot::ErrorCode::kUsage,
        channel_label(ch) +
            ": too many outstanding async operations on this SPE (the "
            "inbound mailbox holds " +
            std::to_string(cellsim::kInboundMailboxDepth) +
            " completions; wait on a handle first)");
  }

  Staging staging(bytes);
  if (!payload.empty()) {
    std::memcpy(staging.ptr(), payload.data(), payload.size());
  }
  if (faults::FaultPlan::global().armed() &&
      faults::FaultPlan::global().should_crash_spe(
          env().spe->name().c_str())) {
    throw faults::InjectedCrash("injected SPE crash on " + env().spe->name() +
                                " before request on channel " + ch.name);
  }
  op.token = engine.next_token();
  op.signature = sig;
  op.bytes = bytes;
  completion::set_state(op, completion::State::kStaged);
  cellsim::spu::spu_write_out_mbox(pack_op_channel(opcode, ch.id));
  cellsim::spu::spu_write_out_mbox(staging.addr());
  // Same mid-message seam as the blocking path: die with the 5-word async
  // request half-written so supervision must reconcile a partial assembly.
  if (faults::FaultPlan::global().armed() &&
      faults::FaultPlan::global().should_crash_spe_mid(
          env().spe->name().c_str())) {
    throw faults::InjectedCrash("injected SPE crash on " + env().spe->name() +
                                " mid-request on channel " + ch.name);
  }
  cellsim::spu::spu_write_out_mbox(static_cast<std::uint32_t>(bytes));
  cellsim::spu::spu_write_out_mbox(sig);
  cellsim::spu::spu_write_out_mbox(op.token);
  op.ls_bytes = static_cast<std::uint32_t>(bytes);
  op.ls_addr = staging.disown();
  completion::set_state(op, completion::State::kInFlight);
  engine.track(&op);
}

/// Copies a settled read's staging out, frees local store, and converts a
/// faulted completion into the PilotError the blocking tier would throw.
void harvest_settled(PI_OP& op, const PI_CHANNEL& ch,
                     std::span<std::byte> out) {
  completion::Engine::local().untrack(&op);
  const auto status =
      static_cast<CompletionStatus>(op.status.load(std::memory_order_relaxed));
  if (completion::op_state(op) == completion::State::kFaulted) {
    free_parked(op);
    throw_completion_error(status, ch);
  }
  if (op.kind == completion::Kind::kRead && !out.empty()) {
    std::memcpy(out.data(), parked_ptr(op), out.size());
  }
  free_parked(op);
}

}  // namespace

void spe_channel_write(pilot::PilotApp& /*app*/, const PI_CHANNEL& ch,
                       std::uint32_t sig,
                       std::span<const std::byte> payload) {
  auto& engine = completion::Engine::local();
  if (engine.inflight() > 0) {
    // Async operations are outstanding, so every inbound-mailbox word is a
    // packed completion: the blocking op must travel the async opcode path
    // too, or its bare-status completion would be misread.
    PI_OP* op = engine.create(completion::Kind::kWrite);
    op->spe_side = true;
    op->blocking = true;
    op->channel = ch.id;
    try {
      spe_submit(*op, Opcode::kWriteAsync, ch, sig, payload, payload.size());
      spe_wait_channel_op(*op, ch, {});
    } catch (...) {
      engine.release(op);
      throw;
    }
    engine.release(op);
    return;
  }

  const auto& e = env();
  e.spe->clock().advance(e.cost->spu_call_overhead);

  // Stage the message in local store.  (On hardware the user's buffer is
  // already in local store; the staging copy is a simulation artifact and
  // is not charged virtual time.)
  Staging staging(payload.size());
  if (!payload.empty()) {
    std::memcpy(staging.ptr(), payload.data(), payload.size());
  }
  const CompletionStatus status =
      request_and_wait(Opcode::kWrite, ch, staging.addr(),
                       static_cast<std::uint32_t>(payload.size()), sig);
  if (status != CompletionStatus::kOk) {
    throw_completion_error(status, ch);
  }
}

void spe_channel_read(pilot::PilotApp& /*app*/, const PI_CHANNEL& ch,
                      std::uint32_t sig, std::span<std::byte> out) {
  auto& engine = completion::Engine::local();
  if (engine.inflight() > 0) {
    PI_OP* op = engine.create(completion::Kind::kRead);
    op->spe_side = true;
    op->blocking = true;
    op->channel = ch.id;
    try {
      spe_submit(*op, Opcode::kReadAsync, ch, sig, {}, out.size());
      spe_wait_channel_op(*op, ch, out);
    } catch (...) {
      engine.release(op);
      throw;
    }
    engine.release(op);
    return;
  }

  const auto& e = env();
  e.spe->clock().advance(e.cost->spu_call_overhead);

  Staging staging(out.size());
  const CompletionStatus status =
      request_and_wait(Opcode::kRead, ch, staging.addr(),
                       static_cast<std::uint32_t>(out.size()), sig);
  if (status != CompletionStatus::kOk) {
    throw_completion_error(status, ch);
  }
  if (!out.empty()) {
    std::memcpy(out.data(), staging.ptr(), out.size());
  }
}

void spe_submit_channel_write(PI_OP& op, const PI_CHANNEL& ch,
                              std::uint32_t sig,
                              std::span<const std::byte> payload) {
  spe_submit(op, Opcode::kWriteAsync, ch, sig, payload, payload.size());
}

void spe_submit_channel_read(PI_OP& op, const PI_CHANNEL& ch,
                             std::uint32_t sig, std::size_t bytes) {
  spe_submit(op, Opcode::kReadAsync, ch, sig, {}, bytes);
}

void spe_wait_channel_op(PI_OP& op, const PI_CHANNEL& ch,
                         std::span<std::byte> out) {
  while (!completion::is_settled(op)) {
    dispatch_completion_word(cellsim::spu::spu_read_in_mbox(),
                             /*lenient=*/false);
  }
  harvest_settled(op, ch, out);
}

bool spe_test_channel_op(PI_OP& op, const PI_CHANNEL& ch,
                         std::span<std::byte> out) {
  drain_available_completions(/*lenient=*/false);
  if (!completion::is_settled(op)) return false;
  harvest_settled(op, ch, out);
  return true;
}

int spe_wait_any_channel_op(PI_OP* const* ops, int n) {
  for (;;) {
    for (int i = 0; i < n; ++i) {
      if (ops[i] != nullptr && completion::is_settled(*ops[i])) return i;
    }
    dispatch_completion_word(cellsim::spu::spu_read_in_mbox(),
                             /*lenient=*/false);
  }
}

void spe_drain_outstanding() {
  // Settle and discard every abandoned handle (lenient: a fault parked on
  // one is not this program's problem any more), so the context hands the
  // next occupant an empty mailbox.
  auto& engine = completion::Engine::local();
  for (;;) {
    for (PI_OP* op : engine.snapshot_inflight()) {
      if (completion::is_settled(*op)) {
        free_parked(*op);
        engine.release(op);
      }
    }
    if (engine.inflight() == 0) break;
    dispatch_completion_word(cellsim::spu::spu_read_in_mbox(),
                             /*lenient=*/true);
  }
}

namespace detail {

int run_spe_body(std::uint64_t argp, SpeBody body) {
  auto* launch = static_cast<SpeLaunchArgs*>(
      cellsim::ptr_of(static_cast<cellsim::EffectiveAddress>(argp)));
  if (launch == nullptr || launch->app == nullptr) {
    throw pilot::PilotError(pilot::ErrorCode::kInternal,
                            "SPE program started without launch arguments "
                            "(use PI_RunSPE)");
  }

  // The CellPilot SPE runtime occupies local store for the life of the
  // program — the footprint the paper measures in §V.
  cellsim::spu::self().allocator().reserve_segment(
      "text:cellpilot-runtime", kCellPilotSpuFootprintBytes);

  pilot::SpeDispatch dispatch;
  dispatch.app = launch->app;
  dispatch.process_id = launch->process_id;
  pilot::bind_spe_dispatch(&dispatch);
  int status = 0;
  try {
    status = body(launch->arg, launch->ptr);
    // Handles the program leaked are settled and discarded here, so a
    // pooled context (PI_SpawnSPE reuse) starts with an empty mailbox and
    // no Co-Pilot is ever left holding a completion nobody will read.
    spe_drain_outstanding();
  } catch (...) {
    pilot::bind_spe_dispatch(nullptr);
    throw;
  }
  pilot::bind_spe_dispatch(nullptr);
  return status;
}

}  // namespace detail

}  // namespace cellpilot
