#include "core/spe_runtime.hpp"

#include <algorithm>
#include <cstring>

#include "cellsim/spu.hpp"
#include "core/faultplan.hpp"
#include "core/protocol.hpp"
#include "pilot/context.hpp"
#include "pilot/errors.hpp"

namespace cellpilot {

namespace {

using cellsim::spu::env;

/// Issues one request and stalls for the completion word.  The fault
/// plan's crash probe fires *before* the first mailbox word: a crashed
/// SPE dies mid-transfer from its peers' point of view — the request
/// never reaches the Co-Pilot, which discovers the death via the SPE's
/// posthumous fault notice.
CompletionStatus request_and_wait(Opcode op, const PI_CHANNEL& ch,
                                  cellsim::LsAddr ls_addr,
                                  std::uint32_t length, std::uint32_t sig) {
  if (faults::FaultPlan::global().armed() &&
      faults::FaultPlan::global().should_crash_spe(
          env().spe->name().c_str())) {
    throw faults::InjectedCrash("injected SPE crash on " + env().spe->name() +
                                " before request on channel " + ch.name);
  }
  cellsim::spu::spu_write_out_mbox(pack_op_channel(op, ch.id));
  cellsim::spu::spu_write_out_mbox(ls_addr);
  cellsim::spu::spu_write_out_mbox(length);
  cellsim::spu::spu_write_out_mbox(sig);
  return static_cast<CompletionStatus>(cellsim::spu::spu_read_in_mbox());
}

/// Names the channel the way every fault diagnostic does: name + Table I
/// type, so one line identifies the route that failed.
std::string channel_label(const PI_CHANNEL& ch) {
  std::string label = "channel " + ch.name;
  if (ch.route != nullptr) {
    label += " (Table I type " +
             std::to_string(static_cast<int>(ch.route->type)) + ")";
  }
  return label;
}

[[noreturn]] void throw_completion_error(CompletionStatus status,
                                         const PI_CHANNEL& ch) {
  const std::string label = channel_label(ch);
  switch (status) {
    case CompletionStatus::kTypeMismatch:
      throw pilot::PilotError(pilot::ErrorCode::kTypeMismatch,
                              label +
                                  ": writer format does not match reader "
                                  "format (reported by Co-Pilot)");
    case CompletionStatus::kSizeMismatch:
      throw pilot::PilotError(pilot::ErrorCode::kTypeMismatch,
                              label +
                                  ": payload size disagreement "
                                  "(reported by Co-Pilot)");
    case CompletionStatus::kSpeFault:
      throw pilot::PilotError(pilot::ErrorCode::kSpeFault,
                              label +
                                  ": peer SPE died of a hardware fault "
                                  "(reported by Co-Pilot)");
    case CompletionStatus::kSpeTimeout:
      throw pilot::PilotError(pilot::ErrorCode::kSpeTimeout,
                              label +
                                  ": request missed its Co-Pilot deadline "
                                  "(SPE stalled)");
    case CompletionStatus::kCopilotFault:
      throw pilot::PilotError(pilot::ErrorCode::kCopilotFault,
                              label +
                                  ": serving Co-Pilot crashed; request "
                                  "could not be replayed by the standby");
    default:
      throw pilot::PilotError(pilot::ErrorCode::kInternal,
                              label + ": Co-Pilot protocol error");
  }
}

/// RAII local-store staging buffer.
class Staging {
 public:
  explicit Staging(std::size_t bytes)
      : addr_(cellsim::spu::ls_alloc(std::max<std::size_t>(bytes, 16), 16)),
        bytes_(bytes) {}
  ~Staging() { cellsim::spu::ls_free(addr_); }
  Staging(const Staging&) = delete;
  Staging& operator=(const Staging&) = delete;

  cellsim::LsAddr addr() const { return addr_; }
  std::byte* ptr() {
    return static_cast<std::byte*>(
        cellsim::spu::ls_ptr(addr_, std::max<std::size_t>(bytes_, 16)));
  }

 private:
  cellsim::LsAddr addr_;
  std::size_t bytes_;
};

}  // namespace

void spe_channel_write(pilot::PilotApp& /*app*/, const PI_CHANNEL& ch,
                       std::uint32_t sig,
                       std::span<const std::byte> payload) {
  const auto& e = env();
  e.spe->clock().advance(e.cost->spu_call_overhead);

  // Stage the message in local store.  (On hardware the user's buffer is
  // already in local store; the staging copy is a simulation artifact and
  // is not charged virtual time.)
  Staging staging(payload.size());
  if (!payload.empty()) {
    std::memcpy(staging.ptr(), payload.data(), payload.size());
  }
  const CompletionStatus status =
      request_and_wait(Opcode::kWrite, ch, staging.addr(),
                       static_cast<std::uint32_t>(payload.size()), sig);
  if (status != CompletionStatus::kOk) {
    throw_completion_error(status, ch);
  }
}

void spe_channel_read(pilot::PilotApp& /*app*/, const PI_CHANNEL& ch,
                      std::uint32_t sig, std::span<std::byte> out) {
  const auto& e = env();
  e.spe->clock().advance(e.cost->spu_call_overhead);

  Staging staging(out.size());
  const CompletionStatus status =
      request_and_wait(Opcode::kRead, ch, staging.addr(),
                       static_cast<std::uint32_t>(out.size()), sig);
  if (status != CompletionStatus::kOk) {
    throw_completion_error(status, ch);
  }
  if (!out.empty()) {
    std::memcpy(out.data(), staging.ptr(), out.size());
  }
}

namespace detail {

int run_spe_body(std::uint64_t argp, SpeBody body) {
  auto* launch = static_cast<SpeLaunchArgs*>(
      cellsim::ptr_of(static_cast<cellsim::EffectiveAddress>(argp)));
  if (launch == nullptr || launch->app == nullptr) {
    throw pilot::PilotError(pilot::ErrorCode::kInternal,
                            "SPE program started without launch arguments "
                            "(use PI_RunSPE)");
  }

  // The CellPilot SPE runtime occupies local store for the life of the
  // program — the footprint the paper measures in §V.
  cellsim::spu::self().allocator().reserve_segment(
      "text:cellpilot-runtime", kCellPilotSpuFootprintBytes);

  pilot::SpeDispatch dispatch;
  dispatch.app = launch->app;
  dispatch.process_id = launch->process_id;
  pilot::bind_spe_dispatch(&dispatch);
  int status = 0;
  try {
    status = body(launch->arg, launch->ptr);
  } catch (...) {
    pilot::bind_spe_dispatch(nullptr);
    throw;
  }
  pilot::bind_spe_dispatch(nullptr);
  return status;
}

}  // namespace detail

}  // namespace cellpilot
