#include "core/epoch.hpp"

#include <atomic>

namespace cellpilot::epochs {

namespace {

// Fixed table, same sizing philosophy as the channel counters: respawn is
// a supervision-path event, so a bounded lock-free array beats a locked
// map on the (hot) frame-stamping reads.
constexpr int kMaxChannels = 4096;
std::atomic<std::uint32_t> g_epochs[kMaxChannels];

}  // namespace

std::uint32_t current(int channel) {
  if (channel < 0 || channel >= kMaxChannels) return 0;
  return g_epochs[channel].load(std::memory_order_acquire);
}

std::uint32_t bump(int channel) {
  if (channel < 0 || channel >= kMaxChannels) return 0;
  return g_epochs[channel].fetch_add(1, std::memory_order_acq_rel) + 1;
}

void reset() {
  for (auto& e : g_epochs) e.store(0, std::memory_order_relaxed);
}

}  // namespace cellpilot::epochs
