// epoch.hpp — per-channel writer-incarnation epochs.
//
// Self-healing (docs/PROTOCOL.md "Self-healing & channel epochs") needs a
// way to tell traffic from a dead SPE incarnation apart from traffic its
// respawned successor produces on the same channel.  The epoch is that
// discriminator: a per-channel counter, 0 for the first incarnation of the
// writer, bumped by Co-Pilot supervision each time it respawns the
// channel's writer.  Every PILT data frame, PILF fault frame and PILR
// reliable envelope is stamped with the writer's epoch at build time;
// receive paths discard what is provably stale (old-epoch fault frames at
// readers, old-epoch frames held in the reliable receive window).
//
// Epochs are process-global (like the reliable layer's link registry) and
// reset at job start, so no-fault runs carry epoch 0 everywhere and stay
// byte-identical modulo the widened headers.
#pragma once

#include <cstdint>

namespace cellpilot::epochs {

/// Current epoch of `channel`'s writer (0 while the original incarnation
/// lives).  Out-of-range ids read as epoch 0 so probes never throw.
std::uint32_t current(int channel);

/// Marks a new writer incarnation on `channel`; returns the new epoch.
/// Called by Co-Pilot supervision after deciding to respawn the writer.
std::uint32_t bump(int channel);

/// Forgets all epochs (job start, alongside reliable::reset_links).
void reset();

}  // namespace cellpilot::epochs
