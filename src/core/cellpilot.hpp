// cellpilot.hpp — the public CellPilot API.
//
// This is the reproduction's `cellpilot.h`: everything from pilot.hpp plus
// the two functions the paper adds (PI_CreateSPE, PI_RunSPE — §VII: "This
// was accomplished by adding only two function calls to the Pilot API"),
// the PI_SPE_FUNC handle type, and the macro pair that brackets an SPE
// process body.  Applications include only this header.
//
// Declaring and defining an SPE program:
//
//   extern PI_SPE_FUNC spe_send;            // header / top of file
//
//   PI_SPE_PROGRAM(spe_send) {              // defines the program
//     int data[100];
//     PI_Write(betweenSPEs, "%100d", data); // arg1 / arg2 are in scope
//     return 0;
//   }
//
// (The original library brackets the body with PI_SPE_PROCESS(int,void*)
// ... PI_SPE_END inside a dedicated SPE source file, where the surrounding
// file provides the program name; compiling PPE and SPE code in one C++
// translation unit requires naming the program in the macro instead.)
//
// Launching an application on the simulated cluster replaces `mpirun`:
//
//   cluster::Cluster machine(cluster::ClusterConfig::two_cells());
//   cellpilot::RunResult r = cellpilot::run(machine, my_main);
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cellsim/libspe2.hpp"
#include "cluster/cluster.hpp"
#include "pilot/pilot.hpp"

/// Handle type for an SPE program (the SDK's spe_program_handle_t; the
/// macro name matches the paper so configuration code also compiles for
/// non-Cell builds there).
#define PI_SPE_FUNC cellsim::spe2::spe_program_handle_t

/// Creates an SPE process from an SPE program handle.  Unlike regular
/// processes, SPE processes are NOT started by PI_StartAll; the parent PPE
/// process launches them explicitly with PI_RunSPE during execution.
/// `parent` must be a rank-backed process placed on a Cell node; the SPE
/// runs on that node.  Configuration phase only.
PI_PROCESS* PI_CreateSPE(PI_SPE_FUNC& program, PI_PROCESS* parent, int index);

/// Launches an SPE process: picks a free SPE on the parent's node, loads
/// the program, and runs it on a background thread, passing (arg, ptr) to
/// the body.  Execution phase; parent process only.
void PI_RunSPE(PI_PROCESS* spe_process, int arg, void* ptr);

/// Alias used interchangeably in the paper's prose.
inline void PI_StartSPE(PI_PROCESS* spe_process, int arg, void* ptr) {
  PI_RunSPE(spe_process, arg, ptr);
}

/// Creates an SPE process *slot*: an SPE process with no program bound.
/// Channels to and from the slot are declared in the configuration phase
/// as usual; the program arrives at execution time through PI_SpawnSPE.
/// This lifts Pilot's static-declaration restriction for SPE work: the
/// communication structure stays declared up front (so routes compile at
/// PI_StartAll), while the code that runs in it is chosen at runtime.
PI_PROCESS* PI_CreateSPESlot(PI_PROCESS* parent, int index);

/// Runtime SPE spawning: binds `program` to `slot` and launches it on the
/// parent's node, passing (arg, ptr) to the body.  Execution phase; parent
/// process only.  Respawning a slot whose previous occupant returned is
/// allowed — the spawn waits for that occupant to retire and reuses its
/// pooled SPE context.  A *faulted* occupant is handled by Co-Pilot
/// supervision: with `-pirespawn=N` armed the supervisor transparently
/// respawns a fresh occupant into the slot (see docs/PROTOCOL.md,
/// "Self-healing & channel epochs"); only once that budget is exhausted —
/// or with the policy disarmed — does the slot poison, after which
/// PI_SpawnSPE on it is a usage error.  Also accepts processes made by
/// PI_CreateSPE, overriding their statically bound program.
void PI_SpawnSPE(PI_PROCESS* slot, PI_SPE_FUNC* program, int arg, void* ptr);

namespace cellpilot::detail {
using SpeBody = int (*)(int, void*);
int run_spe_body(std::uint64_t argp, SpeBody body);
}  // namespace cellpilot::detail

/// Defines an SPE program `name` whose image occupies `text_size` bytes of
/// local store.  The braces that follow are the program body, with
/// parameters `int arg1, void* arg2` (the values given to PI_RunSPE).
#define PI_SPE_PROGRAM_SIZED(name, text_size)                                \
  static int name##_pi_body(int arg1, void* arg2);                           \
  static int name##_pi_entry(std::uint64_t pi_speid, std::uint64_t pi_argp,  \
                             std::uint64_t pi_envp) {                        \
    (void)pi_speid;                                                          \
    (void)pi_envp;                                                           \
    return ::cellpilot::detail::run_spe_body(pi_argp, &name##_pi_body);      \
  }                                                                          \
  PI_SPE_FUNC name = {#name, &name##_pi_entry, (text_size)};                 \
  static int name##_pi_body([[maybe_unused]] int arg1,                       \
                            [[maybe_unused]] void* arg2)

/// PI_SPE_PROGRAM_SIZED with a typical small-program image size.
#define PI_SPE_PROGRAM(name) PI_SPE_PROGRAM_SIZED(name, 4096)

namespace cellpilot {

/// The application's main function, executed on every rank (SPMD), exactly
/// as mpirun would run the real binary.
using MainFunc = std::function<int(int argc, char** argv)>;

/// Launch options (the mpirun command line).
struct RunOptions {
  /// argv[1..] passed to main on every rank (e.g. {"-pisvc=d"}).
  std::vector<std::string> args;
  /// argv[0].
  std::string program_name = "cellpilot-app";
};

/// Outcome of a run.
struct RunResult {
  int status = 0;                   ///< PI_MAIN's exit status
  bool aborted = false;             ///< job aborted (error or deadlock)
  std::string abort_reason;         ///< first abort reason
  std::vector<std::string> errors;  ///< rank-level error messages
};

/// Runs a CellPilot application on a simulated cluster: user ranks execute
/// `user_main`, Co-Pilot ranks run the Co-Pilot service, and the optional
/// service rank runs deadlock detection.  Use a fresh Cluster per run.
RunResult run(cluster::Cluster& machine, const MainFunc& user_main,
              RunOptions options = {});

}  // namespace cellpilot
