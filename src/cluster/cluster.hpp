// cluster.hpp — the simulated hybrid cluster.
//
// A Cluster assembles the machine the paper ran on: Cell blades (dual
// PowerXCell 8i — 2 chips, 16 SPEs, coherent per-node memory) and commodity
// Xeon nodes, joined by gigabit Ethernet.  It owns the simulated hardware
// and the MiniMPI World, and fixes the rank placement convention the Pilot
// and CellPilot layers rely on:
//
//   ranks [0, user_ranks)            — user (Pilot) processes, in node order
//   ranks [user_ranks, +n_cell)      — one Co-Pilot rank per Cell node
//   optional final rank              — the deadlock-detection service
//
// Keeping user ranks contiguous from 0 means a Pilot application sees
// exactly the process count it asked mpirun for, while the Co-Pilot and
// service ranks ride along invisibly — as in the paper.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cellsim/cell.hpp"
#include "mpisim/world.hpp"
#include "simtime/byte_order.hpp"
#include "simtime/cost_model.hpp"

namespace cluster {

/// Kind of physical node.
enum class NodeKind { kCell, kXeon };

/// Static description of one node.
struct NodeSpec {
  NodeKind kind = NodeKind::kXeon;
  /// User MPI ranks placed on this node (Cell: usually 1 per blade, the
  /// PPE Pilot process; Xeon: usually the core count).
  unsigned ranks = 1;
  /// SPEs per chip for Cell nodes (a blade has two chips).
  unsigned spes_per_chip = cellsim::kSpesPerChip;
  /// Architectural byte order (PowerPC nodes are big-endian, x86 little);
  /// set by the cell()/xeon() factories.
  simtime::ByteOrder order = simtime::ByteOrder::kLittle;
  /// Diagnostic name; defaulted to "node<i>" when empty.
  std::string name;

  /// A Cell blade contributing `ranks` user PPE processes.
  static NodeSpec cell(unsigned ranks = 1,
                       unsigned spes_per_chip = cellsim::kSpesPerChip);
  /// A Xeon node contributing `ranks` user processes.
  static NodeSpec xeon(unsigned ranks);
};

/// Whole-cluster configuration.
struct ClusterConfig {
  std::vector<NodeSpec> nodes;
  /// Latency model; defaults to the calibrated model of EXPERIMENTS.md.
  simtime::CostModel cost = simtime::default_cost_model();
  /// Reserve the final rank for Pilot's deadlock-detection service
  /// (the paper's `-pisvc=d`).
  bool deadlock_service = false;

  /// The paper's SHARCNET testbed: 8 dual-PowerXCell blades and 4 Xeon
  /// nodes (two 4-core, two 8-core) on gigabit Ethernet.
  static ClusterConfig paper_testbed();

  /// A small two-Cell-node cluster (the Figures 3/4 example machine).
  static ClusterConfig two_cells();
};

/// The live simulated machine.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// The MiniMPI world spanning user ranks + Co-Pilots (+ service).
  mpisim::World& world() { return *world_; }

  /// The cost model in force.
  const simtime::CostModel& cost() const { return config_.cost; }

  /// Number of nodes.
  int node_count() const { return static_cast<int>(config_.nodes.size()); }

  /// Static spec of a node.
  const NodeSpec& node(int index) const;

  /// Number of user (Pilot-visible) ranks.
  int user_rank_count() const { return user_ranks_; }

  /// Total world size including Co-Pilot and service ranks.
  int world_size() const { return world_->size(); }

  /// Physical node index a rank is placed on.
  int node_of_rank(mpisim::Rank r) const;

  /// Whether a node is a Cell blade.
  bool is_cell_node(int node_index) const;

  /// The blade of a Cell node.  Throws for Xeon nodes.
  cellsim::CellBlade& blade(int node_index);

  /// SPE `flat_index` (0..spe_count-1) of a Cell node.
  cellsim::Spe& spe(int node_index, unsigned flat_index);

  /// Number of SPEs on a node (0 for Xeon nodes).
  unsigned spe_count(int node_index) const;

  /// The Co-Pilot rank serving a Cell node.  Throws for Xeon nodes.
  mpisim::Rank copilot_rank(int node_index) const;

  /// The deadlock-service rank, if configured.
  std::optional<mpisim::Rank> service_rank() const;

  /// First user rank placed on a node.
  mpisim::Rank first_rank_of_node(int node_index) const;

  /// Architectural byte order of a node's cores.
  simtime::ByteOrder byte_order(int node_index) const {
    return node(node_index).order;
  }

  /// Published lower bound on the virtual stamp of any future inter-node
  /// relay the node's Co-Pilot may originate (a conservative "null
  /// message"): the minimum over its unparked local SPE clocks and its
  /// queued-but-unprocessed SPE requests.  Co-Pilots read each other's
  /// bounds when computing the safe time for stamp-ordered event
  /// processing.  "infinity" (SimTime max) when nothing local can trigger
  /// a relay.  Throws for Xeon nodes.
  std::atomic<simtime::SimTime>& copilot_bound(int node_index);

  /// Records that the node's Co-Pilot crashed and a standby took over
  /// (fault-injection failover).  Throws for Xeon nodes.
  void record_copilot_failover(int node_index);

  /// Number of standby takeovers the node's Co-Pilot has seen this job.
  int copilot_failover_count(int node_index) const;

  /// Records that the whole blade was killed by a blade_kill fault (every
  /// SPE context plus its Co-Pilot).  Throws for Xeon nodes.
  void record_blade_kill(int node_index);

  /// Number of blade_kill faults the node has absorbed this job.
  int blade_kill_count(int node_index) const;

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<cellsim::CellBlade>> blades_;  // null for Xeon
  std::unique_ptr<mpisim::World> world_;
  std::vector<int> rank_node_;          // rank -> node (service rank: -1)
  std::vector<mpisim::Rank> node_first_rank_;
  std::vector<mpisim::Rank> copilot_ranks_;  // per node; -1 for Xeon
  std::vector<std::unique_ptr<std::atomic<simtime::SimTime>>>
      copilot_bounds_;  // per node
  std::vector<std::unique_ptr<std::atomic<int>>>
      copilot_failovers_;  // per node
  std::vector<std::unique_ptr<std::atomic<int>>> blade_kills_;  // per node
  int user_ranks_ = 0;
  std::optional<mpisim::Rank> service_rank_;
};

}  // namespace cluster
