#include "cluster/cluster.hpp"

#include <limits>
#include <stdexcept>

namespace cluster {

NodeSpec NodeSpec::cell(unsigned ranks, unsigned spes_per_chip) {
  NodeSpec s;
  s.kind = NodeKind::kCell;
  s.ranks = ranks;
  s.spes_per_chip = spes_per_chip;
  s.order = simtime::ByteOrder::kBig;  // PowerPC
  return s;
}

NodeSpec NodeSpec::xeon(unsigned ranks) {
  NodeSpec s;
  s.kind = NodeKind::kXeon;
  s.ranks = ranks;
  s.order = simtime::ByteOrder::kLittle;  // x86-64
  return s;
}

ClusterConfig ClusterConfig::paper_testbed() {
  ClusterConfig c;
  for (int i = 0; i < 8; ++i) c.nodes.push_back(NodeSpec::cell(1));
  c.nodes.push_back(NodeSpec::xeon(4));
  c.nodes.push_back(NodeSpec::xeon(4));
  c.nodes.push_back(NodeSpec::xeon(8));
  c.nodes.push_back(NodeSpec::xeon(8));
  return c;
}

ClusterConfig ClusterConfig::two_cells() {
  ClusterConfig c;
  c.nodes.push_back(NodeSpec::cell(1));
  c.nodes.push_back(NodeSpec::cell(1));
  return c;
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  if (config_.nodes.empty()) {
    throw std::invalid_argument("Cluster: at least one node required");
  }
  config_.cost.validate();

  // Name nodes and build hardware.
  for (std::size_t i = 0; i < config_.nodes.size(); ++i) {
    NodeSpec& spec = config_.nodes[i];
    if (spec.name.empty()) spec.name = "node" + std::to_string(i);
    if (spec.kind == NodeKind::kCell) {
      blades_.push_back(std::make_unique<cellsim::CellBlade>(
          spec.name, config_.cost, spec.spes_per_chip));
    } else {
      blades_.push_back(nullptr);
    }
  }

  // Rank table: user ranks in node order, then Co-Pilots, then service.
  std::vector<mpisim::RankInfo> ranks;
  node_first_rank_.resize(config_.nodes.size());
  for (std::size_t i = 0; i < config_.nodes.size(); ++i) {
    const NodeSpec& spec = config_.nodes[i];
    node_first_rank_[i] = static_cast<mpisim::Rank>(ranks.size());
    for (unsigned r = 0; r < spec.ranks; ++r) {
      mpisim::RankInfo info;
      info.core = spec.kind == NodeKind::kCell ? simtime::CoreKind::kPpe
                                               : simtime::CoreKind::kXeon;
      info.node = static_cast<int>(i);
      info.name = spec.name + ".rank" + std::to_string(r);
      ranks.push_back(std::move(info));
      rank_node_.push_back(static_cast<int>(i));
    }
  }
  user_ranks_ = static_cast<int>(ranks.size());

  copilot_ranks_.assign(config_.nodes.size(), -1);
  for (std::size_t i = 0; i < config_.nodes.size(); ++i) {
    copilot_bounds_.push_back(std::make_unique<std::atomic<simtime::SimTime>>(
        std::numeric_limits<simtime::SimTime>::max()));
    copilot_failovers_.push_back(std::make_unique<std::atomic<int>>(0));
    blade_kills_.push_back(std::make_unique<std::atomic<int>>(0));
    if (config_.nodes[i].kind != NodeKind::kCell) continue;
    mpisim::RankInfo info;
    info.core = simtime::CoreKind::kPpe;  // runs on the PPE's 2nd HW thread
    info.node = static_cast<int>(i);
    info.name = config_.nodes[i].name + ".copilot";
    copilot_ranks_[i] = static_cast<mpisim::Rank>(ranks.size());
    ranks.push_back(std::move(info));
    rank_node_.push_back(static_cast<int>(i));
  }

  if (config_.deadlock_service) {
    mpisim::RankInfo info;
    info.core = simtime::CoreKind::kXeon;
    info.node = 0;
    info.name = "pisvc";
    service_rank_ = static_cast<mpisim::Rank>(ranks.size());
    ranks.push_back(std::move(info));
    rank_node_.push_back(0);
  }

  world_ = std::make_unique<mpisim::World>(std::move(ranks), config_.cost);

  // On job abort, release SPE threads blocked in mailbox reads.
  world_->on_abort([this] {
    for (auto& blade : blades_) {
      if (blade) blade->shutdown();
    }
  });
}

Cluster::~Cluster() = default;

const NodeSpec& Cluster::node(int index) const {
  if (index < 0 || index >= node_count()) {
    throw std::out_of_range("Cluster: node index out of range");
  }
  return config_.nodes[static_cast<std::size_t>(index)];
}

int Cluster::node_of_rank(mpisim::Rank r) const {
  if (r < 0 || r >= static_cast<int>(rank_node_.size())) {
    throw std::out_of_range("Cluster: rank out of range");
  }
  return rank_node_[static_cast<std::size_t>(r)];
}

bool Cluster::is_cell_node(int node_index) const {
  return node(node_index).kind == NodeKind::kCell;
}

cellsim::CellBlade& Cluster::blade(int node_index) {
  if (!is_cell_node(node_index)) {
    throw std::invalid_argument("Cluster: node " +
                                std::to_string(node_index) +
                                " is not a Cell node");
  }
  return *blades_[static_cast<std::size_t>(node_index)];
}

cellsim::Spe& Cluster::spe(int node_index, unsigned flat_index) {
  return blade(node_index).spe(flat_index);
}

unsigned Cluster::spe_count(int node_index) const {
  if (!is_cell_node(node_index)) return 0;
  return blades_[static_cast<std::size_t>(node_index)]->spe_count();
}

mpisim::Rank Cluster::copilot_rank(int node_index) const {
  const mpisim::Rank r = copilot_ranks_[static_cast<std::size_t>(node_index)];
  if (r < 0) {
    throw std::invalid_argument("Cluster: node " +
                                std::to_string(node_index) +
                                " has no Co-Pilot (not a Cell node)");
  }
  return r;
}

std::optional<mpisim::Rank> Cluster::service_rank() const {
  return service_rank_;
}

std::atomic<simtime::SimTime>& Cluster::copilot_bound(int node_index) {
  if (!is_cell_node(node_index)) {
    throw std::invalid_argument("Cluster: node " +
                                std::to_string(node_index) +
                                " has no Co-Pilot (not a Cell node)");
  }
  return *copilot_bounds_[static_cast<std::size_t>(node_index)];
}

void Cluster::record_copilot_failover(int node_index) {
  if (!is_cell_node(node_index)) {
    throw std::invalid_argument("Cluster: node " +
                                std::to_string(node_index) +
                                " has no Co-Pilot (not a Cell node)");
  }
  copilot_failovers_[static_cast<std::size_t>(node_index)]->fetch_add(
      1, std::memory_order_relaxed);
}

int Cluster::copilot_failover_count(int node_index) const {
  if (node_index < 0 ||
      static_cast<std::size_t>(node_index) >= copilot_failovers_.size()) {
    throw std::out_of_range("Cluster: node index out of range");
  }
  return copilot_failovers_[static_cast<std::size_t>(node_index)]->load(
      std::memory_order_relaxed);
}

void Cluster::record_blade_kill(int node_index) {
  if (!is_cell_node(node_index)) {
    throw std::invalid_argument("Cluster: node " +
                                std::to_string(node_index) +
                                " has no blade (not a Cell node)");
  }
  blade_kills_[static_cast<std::size_t>(node_index)]->fetch_add(
      1, std::memory_order_relaxed);
}

int Cluster::blade_kill_count(int node_index) const {
  if (node_index < 0 ||
      static_cast<std::size_t>(node_index) >= blade_kills_.size()) {
    throw std::out_of_range("Cluster: node index out of range");
  }
  return blade_kills_[static_cast<std::size_t>(node_index)]->load(
      std::memory_order_relaxed);
}

mpisim::Rank Cluster::first_rank_of_node(int node_index) const {
  if (node_index < 0 || node_index >= node_count()) {
    throw std::out_of_range("Cluster: node index out of range");
  }
  return node_first_rank_[static_cast<std::size_t>(node_index)];
}

}  // namespace cluster
