// world.hpp — the MiniMPI "job": ranks, their queues and clocks, and the
// interconnect topology (which rank lives on which node, on what kind of
// core).
//
// A World is configured once (rank table), then rank threads communicate
// through Mpi facades (mpi.hpp).  World::abort() is the simulated
// MPI_Abort: it wakes every blocked call with WorldAborted and runs any
// registered abort hooks (the cluster layer uses these to close SPE
// mailboxes so SPE threads unblock too).
#pragma once

#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mpisim/match_queue.hpp"
#include "mpisim/types.hpp"
#include "simtime/cost_model.hpp"
#include "simtime/virtual_clock.hpp"

namespace mpisim {

/// Static description of one rank.
struct RankInfo {
  simtime::CoreKind core = simtime::CoreKind::kXeon;  ///< executing core kind
  int node = 0;                                       ///< physical node index
  std::string name;                                   ///< diagnostic name
};

/// One MiniMPI job.
class World {
 public:
  /// Builds a world with the given rank table, costed by `cost` (borrowed;
  /// must outlive the world).
  World(std::vector<RankInfo> ranks, const simtime::CostModel& cost);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Number of ranks.
  int size() const { return static_cast<int>(ranks_.size()); }

  /// Static info for a rank.
  const RankInfo& info(Rank r) const;

  /// The receive queue of a rank.
  MatchQueue& queue(Rank r);

  /// The virtual clock of a rank.
  simtime::VirtualClock& clock(Rank r);

  /// The cost model in force.
  const simtime::CostModel& cost() const { return *cost_; }

  /// True when both ranks are placed on the same physical node.
  bool same_node(Rank a, Rank b) const;

  /// Validates a rank id, throwing MpiError when out of range.
  void check_rank(Rank r, const char* what) const;

  /// Tears the job down: every blocked or future MiniMPI call throws
  /// WorldAborted(reason); abort hooks run once, in registration order.
  void abort(const std::string& reason);

  /// Whether abort() has been called.
  bool aborted() const;

  /// The first abort reason (empty if not aborted).
  std::string abort_reason() const;

  /// Registers a hook to run on abort (e.g. close simulated hardware FIFOs).
  void on_abort(std::function<void()> hook);

  // --- conservative-scheduling visibility -----------------------------------
  // A serial service (the Co-Pilot) orders its events by virtual stamp; it
  // may process an event with stamp T only once every potential sender can
  // no longer produce an earlier one.  A rank is *quiescent* — unable to
  // initiate new sends — while it is blocked in a matching wait, has been
  // marked passive (e.g. joining SPE threads), or has finished.

  /// Marks a rank as finished (its thread returned).
  void mark_done(Rank r);

  /// Marks/unmarks a rank as passive (blocked outside MiniMPI in a state
  /// that cannot send, e.g. joining SPE worker threads).
  void set_passive(Rank r, bool passive);

  /// True when the rank cannot currently initiate a send.
  bool quiescent(Rank r);

  /// Lower bound on the virtual stamp of any future message this rank may
  /// send: its clock if active, or "infinity" when quiescent.
  simtime::SimTime send_bound(Rank r);

 private:
  struct RankState {
    RankInfo info;
    MatchQueue queue;
    simtime::VirtualClock clock;
    std::atomic<bool> done{false};
    std::atomic<bool> passive{false};
  };

  std::vector<std::unique_ptr<RankState>> ranks_;
  const simtime::CostModel* cost_;

  mutable std::mutex mu_;
  bool aborted_ = false;
  std::string abort_reason_;
  std::vector<std::function<void()>> abort_hooks_;
};

}  // namespace mpisim
