#include "mpisim/reliable.hpp"

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "simtime/timeseries.hpp"
#include "simtime/tracebuf.hpp"

namespace mpisim::reliable {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<simtime::SimTime> g_backoff_base{simtime::us(500.0)};
std::atomic<int> g_max_retries{3};
std::atomic<Observer> g_observer{nullptr};

std::atomic<std::uint64_t> g_acks{0};
std::atomic<std::uint64_t> g_retransmits{0};
std::atomic<std::uint64_t> g_duplicates{0};
std::atomic<std::uint64_t> g_corrupt{0};
std::atomic<std::uint64_t> g_reorders{0};
std::atomic<std::uint64_t> g_stale{0};

// Epoch the next send on this thread will stamp (armed by the dispatch
// site that knows the channel, consumed by the send).
thread_local std::uint32_t t_send_epoch = 0;

}  // namespace

void record_event(Event event, int tag) {
  switch (event) {
    case Event::kAck: g_acks.fetch_add(1, std::memory_order_relaxed); break;
    case Event::kRetransmit:
      g_retransmits.fetch_add(1, std::memory_order_relaxed);
      break;
    case Event::kDuplicate:
      g_duplicates.fetch_add(1, std::memory_order_relaxed);
      break;
    case Event::kCorrupt:
      g_corrupt.fetch_add(1, std::memory_order_relaxed);
      break;
    case Event::kReorder:
      g_reorders.fetch_add(1, std::memory_order_relaxed);
      break;
    case Event::kStale:
      g_stale.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (const Observer obs = g_observer.load(std::memory_order_acquire)) {
    obs(event, tag);
  }
}

namespace {

/// Diagnostic name of a link, matching the fault plan's site grammar.
std::string link_name(Rank from, Rank to) {
  return std::to_string(from) + "->" + std::to_string(to);
}

/// A frame parked in the receive window or the sender stash.
struct HeldFrame {
  InboundMessage msg;
  int tag = 0;
  bool duplicate = false;  ///< deliver twice on release (msg_dup rode along)
  std::uint32_t epoch = 0; ///< sender incarnation stamped at frame time
  bool stale = false;      ///< tombstoned by an epoch floor: advance the
                           ///< window on release but never deliver
};

/// Protocol state of one directed link.  The sender's thread is the only
/// writer (deposits, stashes and flushes all run on it), but flush points
/// for *other* links touch the registry too, so everything stays under the
/// registry mutex — the contention is between a handful of rank threads.
struct Link {
  std::uint64_t next_seq = 1;  ///< next sequence the sender will assign
  std::uint64_t expected = 1;  ///< next sequence the receiver will release
  std::map<std::uint64_t, HeldFrame> window;  ///< out-of-order arrivals
  /// The msg_reorder stash: one frame held back by the sender, plus the
  /// queue it must eventually reach.
  MatchQueue* stashed_queue = nullptr;
  std::optional<HeldFrame> stashed;
  std::uint64_t stashed_seq = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::pair<Rank, Rank>, Link> links;
  /// Per-tag epoch floors (self-healing): frames older than the floor are
  /// tombstoned instead of delivered.  Empty on no-fault runs.
  std::map<int, std::uint32_t> floors;
};

Registry& registry() {
  static Registry* g = new Registry;
  return *g;
}

/// Records the delivery of one frame as an ack on the trace ring.  The
/// event carries the link name and the frame's arrival stamp; the tag in
/// `aux` lets the flush attribute it to a channel.
void record_ack(Rank from, Rank to, const InboundMessage& msg, int tag) {
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kNetAck,
                              link_name(from, to), msg.arrival, msg.arrival,
                              msg.payload.size(), /*channel=*/-1,
                              /*route_type=*/0, tag);
  }
}

/// Records one tombstoned frame (stale-epoch discard) on the trace ring.
void record_stale(Rank from, Rank to, const InboundMessage& msg, int tag) {
  record_event(Event::kStale, tag);
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kEpochFlush,
                              link_name(from, to), msg.arrival, msg.arrival,
                              msg.payload.size(), /*channel=*/-1,
                              /*route_type=*/0, tag);
  }
}

/// Releases one frame (and its duplicate shadow, which the window then
/// suppresses as a duplicate would be in a real NIC: counted, discarded).
/// A tombstone advances the window without delivering — the sequence space
/// must stay gapless or the link would stall forever.  Caller holds the
/// registry mutex.
void release(Link& link, MatchQueue& queue, Rank from, Rank to,
             HeldFrame frame) {
  if (frame.stale) {
    record_stale(from, to, frame.msg, frame.tag);
    ++link.expected;
    return;
  }
  record_ack(from, to, frame.msg, frame.tag);
  record_event(Event::kAck, frame.tag);
  if (frame.duplicate) {
    record_event(Event::kDuplicate, frame.tag);
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(simtime::tracebuf::Kind::kNetDuplicate,
                                link_name(from, to), frame.msg.arrival,
                                frame.msg.arrival, frame.msg.payload.size(),
                                /*channel=*/-1, /*route_type=*/0, frame.tag);
    }
  }
  ++link.expected;
  queue.deposit(std::move(frame.msg));
}

/// Window insert + in-order drain.  Caller holds the registry mutex.
/// Returns true when at least one frame reached the queue.
bool window_deposit_locked(Registry& reg, Link& link, MatchQueue& queue,
                           Rank from, Rank to, InboundMessage msg,
                           std::uint64_t seq, int tag, bool duplicate,
                           std::uint32_t epoch) {
  if (seq < link.expected || link.window.count(seq) != 0) {
    // Already delivered or already buffered: a duplicate on the wire.
    record_event(Event::kDuplicate, tag);
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(simtime::tracebuf::Kind::kNetDuplicate,
                                link_name(from, to), msg.arrival, msg.arrival,
                                msg.payload.size(), /*channel=*/-1,
                                /*route_type=*/0, tag);
    }
    return false;
  }
  bool stale = false;
  if (!reg.floors.empty()) {
    const auto floor_it = reg.floors.find(tag);
    stale = floor_it != reg.floors.end() && epoch < floor_it->second;
  }
  const simtime::SimTime arrival = msg.arrival;
  link.window.emplace(seq,
                      HeldFrame{std::move(msg), tag, duplicate, epoch, stale});
  bool released = false;
  for (auto it = link.window.find(link.expected);
       it != link.window.end() && it->first == link.expected;
       it = link.window.find(link.expected)) {
    HeldFrame frame = std::move(it->second);
    link.window.erase(it);
    release(link, queue, from, to, std::move(frame));
    released = true;
  }
  if (simtime::timeseries::armed()) {
    // Receive-window depth after this deposit settled.  One thread drives
    // a given link (the sender deposits under the registry mutex), so the
    // value pairs deterministically with the frame's arrival stamp.
    simtime::timeseries::record(
        simtime::timeseries::Kind::kNetWindow, /*route_type=*/0,
        /*channel=*/-1, link_name(from, to), arrival,
        static_cast<std::int64_t>(link.window.size()));
  }
  return released;
}

/// Releases the stash of one link.  Caller holds the registry mutex.
void flush_link_locked(Registry& reg, Link& link, Rank from, Rank to) {
  if (!link.stashed) return;
  HeldFrame frame = std::move(*link.stashed);
  MatchQueue* queue = link.stashed_queue;
  const std::uint64_t seq = link.stashed_seq;
  link.stashed.reset();
  link.stashed_queue = nullptr;
  if (simtime::timeseries::armed()) {
    // The stash emptied; stamp with the held frame's arrival (the flush
    // point itself holds no clock, and the arrival is the last virtual
    // time the frame was touched — deterministic either way).
    simtime::timeseries::record(simtime::timeseries::Kind::kNetStash,
                                /*route_type=*/0, /*channel=*/-1,
                                link_name(from, to), frame.msg.arrival, 0);
  }
  window_deposit_locked(reg, link, *queue, from, to, std::move(frame.msg),
                        seq, frame.tag, frame.duplicate, frame.epoch);
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  // Bitwise CRC-32/ISO-HDLC (the Ethernet/zip polynomial, reflected).
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc ^= static_cast<std::uint32_t>(std::to_integer<unsigned char>(b));
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::byte> frame(std::uint64_t seq, std::uint32_t attempt,
                             std::span<const std::byte> payload,
                             std::uint32_t epoch) {
  FrameHeader hdr;
  hdr.magic = kFrameMagic;
  hdr.crc = crc32(payload);
  hdr.seq = seq;
  hdr.attempt = attempt;
  hdr.payload_bytes = static_cast<std::uint32_t>(payload.size());
  hdr.epoch = epoch;
  std::vector<std::byte> wire(sizeof(FrameHeader) + payload.size());
  std::memcpy(wire.data(), &hdr, sizeof hdr);
  if (!payload.empty()) {
    std::memcpy(wire.data() + sizeof hdr, payload.data(), payload.size());
  }
  return wire;
}

std::optional<Unframed> unframe(std::span<const std::byte> wire) {
  if (wire.size() < sizeof(FrameHeader)) return std::nullopt;
  FrameHeader hdr;
  std::memcpy(&hdr, wire.data(), sizeof hdr);
  if (hdr.magic != kFrameMagic) return std::nullopt;
  if (wire.size() != sizeof hdr + hdr.payload_bytes) return std::nullopt;
  Unframed u;
  u.header = hdr;
  u.payload.assign(wire.begin() + sizeof hdr, wire.end());
  u.crc_ok = crc32(u.payload) == hdr.crc;
  return u;
}

void set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_release);
}

bool enabled() { return g_enabled.load(std::memory_order_acquire); }

void set_backoff(simtime::SimTime base, int max_retries) {
  g_backoff_base.store(base, std::memory_order_relaxed);
  g_max_retries.store(max_retries, std::memory_order_relaxed);
}

simtime::SimTime backoff(int attempt) {
  simtime::SimTime wait = g_backoff_base.load(std::memory_order_relaxed);
  for (int k = 1; k < attempt; ++k) wait *= 2;
  return wait;
}

int max_retries() { return g_max_retries.load(std::memory_order_relaxed); }

void set_observer(Observer observer) {
  g_observer.store(observer, std::memory_order_release);
}

Totals totals() {
  Totals t;
  t.acks = g_acks.load();
  t.retransmits = g_retransmits.load();
  t.duplicates = g_duplicates.load();
  t.corrupt_detected = g_corrupt.load();
  t.reorders = g_reorders.load();
  t.stale = g_stale.load();
  return t;
}

void reset_totals() {
  g_acks.store(0);
  g_retransmits.store(0);
  g_duplicates.store(0);
  g_corrupt.store(0);
  g_reorders.store(0);
  g_stale.store(0);
}

void set_send_epoch(std::uint32_t epoch) { t_send_epoch = epoch; }

std::uint32_t take_send_epoch() {
  const std::uint32_t epoch = t_send_epoch;
  t_send_epoch = 0;
  return epoch;
}

std::size_t set_epoch_floor(int tag, std::uint32_t floor) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  reg.floors[tag] = floor;
  std::size_t dropped = 0;
  for (auto& [key, link] : reg.links) {
    for (auto& [seq, held] : link.window) {
      if (held.tag == tag && held.epoch < floor && !held.stale) {
        held.stale = true;
        ++dropped;
      }
    }
    // A stashed frame is re-evaluated against the floors when it flushes
    // through the window, so counting it here is enough.
    if (link.stashed && link.stashed->tag == tag &&
        link.stashed->epoch < floor && !link.stashed->stale) {
      ++dropped;
    }
  }
  return dropped;
}

std::uint64_t next_seq(Rank from, Rank to) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  return reg.links[{from, to}].next_seq++;
}

bool window_deposit(MatchQueue& queue, Rank from, Rank to, InboundMessage msg,
                    std::uint64_t seq, int tag, std::uint32_t epoch) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  return window_deposit_locked(reg, reg.links[{from, to}], queue, from, to,
                               std::move(msg), seq, tag, /*duplicate=*/false,
                               epoch);
}

void stash(MatchQueue& queue, Rank from, Rank to, InboundMessage msg,
           std::uint64_t seq, int tag, bool duplicate, std::uint32_t epoch) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  Link& link = reg.links[{from, to}];
  flush_link_locked(reg, link, from, to);  // at most one held frame per link
  record_event(Event::kReorder, tag);
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kNetReorder,
                              link_name(from, to), msg.arrival, msg.arrival,
                              msg.payload.size(), /*channel=*/-1,
                              /*route_type=*/0, tag);
  }
  if (simtime::timeseries::armed()) {
    simtime::timeseries::record(simtime::timeseries::Kind::kNetStash,
                                /*route_type=*/0, /*channel=*/-1,
                                link_name(from, to), msg.arrival, 1);
  }
  link.stashed_queue = &queue;
  link.stashed = HeldFrame{std::move(msg), tag, duplicate, epoch};
  link.stashed_seq = seq;
}

void flush_link(Rank from, Rank to) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  const auto it = reg.links.find({from, to});
  if (it != reg.links.end()) flush_link_locked(reg, it->second, from, to);
}

void flush_other_links(Rank from, Rank except_to) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (auto& [key, link] : reg.links) {
    if (key.first != from || key.second == except_to) continue;
    flush_link_locked(reg, link, key.first, key.second);
  }
}

void flush_from(Rank from) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (auto& [key, link] : reg.links) {
    if (key.first != from) continue;
    flush_link_locked(reg, link, key.first, key.second);
  }
}

void reset_links() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  reg.links.clear();
  reg.floors.clear();
}

std::vector<LinkSnapshot> snapshot_links() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  std::vector<LinkSnapshot> out;
  out.reserve(reg.links.size());
  // std::map iterates in key order, so the snapshot is already canonical.
  for (const auto& [key, link] : reg.links) {
    LinkSnapshot s;
    s.from = key.first;
    s.to = key.second;
    s.next_seq = link.next_seq;
    s.expected = link.expected;
    s.held = link.window.size();
    s.stashed = link.stashed ? 1 : 0;
    out.push_back(s);
  }
  return out;
}

}  // namespace mpisim::reliable
