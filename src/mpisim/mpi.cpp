#include "mpisim/mpi.hpp"

#include <cstring>

#include "mpisim/inject.hpp"
#include "mpisim/reliable.hpp"
#include "simtime/metrics.hpp"
#include "simtime/timeseries.hpp"
#include "simtime/trace.hpp"
#include "simtime/tracebuf.hpp"

namespace mpisim {

namespace {
// Reserved tags for the built-in collectives.
constexpr int kTagBarrierIn = kReservedTagBase + 1;
constexpr int kTagBarrierOut = kReservedTagBase + 2;
constexpr int kTagBcast = kReservedTagBase + 3;
constexpr int kTagGather = kReservedTagBase + 4;
constexpr int kTagReduce = kReservedTagBase + 5;
}  // namespace

Mpi::Mpi(World& world, Rank me) : world_(&world), me_(me) {
  world.check_rank(me, "Mpi");
}

void Mpi::check_user_tag(int tag) const {
  if (tag < 0 || tag >= kReservedTagBase) {
    throw MpiError("user tag " + std::to_string(tag) +
                   " out of range [0," + std::to_string(kReservedTagBase) +
                   ")");
  }
}

void Mpi::send_impl(const void* data, std::size_t bytes, Rank dest, int tag) {
  if (reliable::enabled()) {
    send_reliable(data, bytes, dest, tag);
    return;
  }
  world_->check_rank(dest, "send");
  if (world_->aborted()) throw WorldAborted(world_->abort_reason());
  const auto legs = world_->cost().mpi_leg_costs(
      bytes, world_->info(me_).core, world_->info(dest).core,
      world_->same_node(me_, dest));
  const simtime::SimTime begin = clock().now();
  const simtime::SimTime depart = clock().advance(legs.sender);

  const inject::Action act = inject::probe(me_, dest, tag, depart);
  if (act.drop) {
    // The sender paid its leg but the message never arrives.
    simtime::Trace::global().record(
        world_->info(me_).name, simtime::TraceKind::kMpiSend,
        "DROPPED to=" + std::to_string(dest) + " tag=" + std::to_string(tag),
        begin, depart);
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(simtime::tracebuf::Kind::kMpiDrop,
                                world_->info(me_).name, begin, depart, bytes,
                                /*channel=*/-1, /*route_type=*/0, tag);
    }
    return;
  }

  InboundMessage msg;
  msg.source = me_;
  msg.tag = tag;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
  msg.arrival = depart + legs.transit + act.delay;
  world_->queue(dest).deposit(std::move(msg));

  simtime::Trace::global().record(
      world_->info(me_).name, simtime::TraceKind::kMpiSend,
      "to=" + std::to_string(dest) + " tag=" + std::to_string(tag) +
          " bytes=" + std::to_string(bytes),
      begin, depart);
  if (simtime::tracebuf::armed()) {
    // mpisim knows tags, not channels; the trace consumer maps channel
    // tags back to channel ids at flush time.
    simtime::tracebuf::record(simtime::tracebuf::Kind::kMpiSend,
                              world_->info(me_).name, begin, depart, bytes,
                              /*channel=*/-1, /*route_type=*/0, tag);
  }
}

void Mpi::send_reliable(const void* data, std::size_t bytes, Rank dest,
                        int tag) {
  world_->check_rank(dest, "send");
  if (world_->aborted()) throw WorldAborted(world_->abort_reason());
  // A frame held back on another link must not be overtaken by this send.
  reliable::flush_other_links(me_, dest);

  // Leg costs are charged on the raw payload, exactly as the unframed
  // path does: an armed-but-unhit plan keeps every timing bit-identical,
  // so the only virtual-time deltas come from injected recoveries.
  const auto legs = world_->cost().mpi_leg_costs(
      bytes, world_->info(me_).core, world_->info(dest).core,
      world_->same_node(me_, dest));
  const simtime::SimTime begin = clock().now();
  const simtime::SimTime depart = clock().advance(legs.sender);

  const std::uint64_t seq = reliable::next_seq(me_, dest);
  // The channel epoch the caller armed (if any) rides in the frame header;
  // consuming it here keeps the thread-local from leaking into later sends.
  const std::uint32_t epoch = reliable::take_send_epoch();
  const std::vector<std::byte> wire = reliable::frame(
      seq, /*attempt=*/1,
      std::span(static_cast<const std::byte*>(data), bytes), epoch);

  // Model the whole detect/retransmit conversation now: each attempt
  // re-probes the plan; a dropped or damaged attempt costs one backoff
  // rung of virtual wait before the resend.  The ladder is finite — the
  // attempt after the last retry always goes through (the plan models
  // transient faults; permanent loss stays the legacy send_drop).
  simtime::SimTime penalty = 0;
  bool dup = false;
  bool reorder = false;
  int attempt = 1;
  for (;;) {
    const inject::Action act = inject::probe(me_, dest, tag, depart + penalty);
    penalty += act.delay;
    dup = dup || act.msg_dup;
    reorder = reorder || act.msg_reorder;
    if (act.drop) {
      // Legacy unrecoverable loss: the sender paid its leg, the message —
      // and any sequence-number hole it leaves — is gone for good.
      simtime::Trace::global().record(
          world_->info(me_).name, simtime::TraceKind::kMpiSend,
          "DROPPED to=" + std::to_string(dest) + " tag=" + std::to_string(tag),
          begin, depart);
      if (simtime::tracebuf::armed()) {
        simtime::tracebuf::record(simtime::tracebuf::Kind::kMpiDrop,
                                  world_->info(me_).name, begin, depart, bytes,
                                  /*channel=*/-1, /*route_type=*/0, tag);
      }
      return;
    }
    bool lost = act.msg_drop;
    if (act.msg_corrupt) {
      // Damage a copy of the wire frame and run the real integrity check:
      // only a flip the CRC actually catches counts as a detected (and
      // therefore recoverable) corruption.
      std::vector<std::byte> damaged = wire;
      const std::size_t victim =
          bytes > 0 ? sizeof(reliable::FrameHeader)
                    : offsetof(reliable::FrameHeader, crc);
      damaged[victim] ^= std::byte{0x40};
      const auto parsed = reliable::unframe(damaged);
      if (!parsed || !parsed->crc_ok) {
        lost = true;
        reliable::record_event(reliable::Event::kCorrupt, tag);
        if (simtime::tracebuf::armed()) {
          simtime::tracebuf::record(simtime::tracebuf::Kind::kNetCorrupt,
                                    world_->info(me_).name, depart,
                                    depart + penalty, bytes, /*channel=*/-1,
                                    /*route_type=*/0, tag);
        }
      }
    }
    if (lost && attempt <= reliable::max_retries()) {
      penalty += reliable::backoff(attempt);
      ++attempt;
      reliable::record_event(reliable::Event::kRetransmit, tag);
      if (simtime::tracebuf::armed()) {
        simtime::tracebuf::record(simtime::tracebuf::Kind::kNetRetransmit,
                                  world_->info(me_).name, depart,
                                  depart + penalty, bytes, /*channel=*/-1,
                                  /*route_type=*/0, tag);
      }
      if (simtime::timeseries::armed()) {
        // Same attribution as the kNetRetransmit trace event: the mpisim
        // layer knows tags, not channels, so the per-route split happens
        // in the consumers (tag -> channel -> route).
        simtime::timeseries::record(
            simtime::timeseries::Kind::kRetransmits, /*route_type=*/0,
            /*channel=*/-1, world_->info(me_).name, depart,
            static_cast<std::int64_t>(bytes));
      }
      continue;
    }
    break;
  }

  if (penalty > 0 && simtime::metrics::armed()) {
    // The whole detect/backoff/resend conversation, as one virtual-time
    // cost the receiver will observe on top of the clean transit.
    simtime::metrics::record(simtime::metrics::Kind::kRetransmitDelay,
                             /*route_type=*/0, /*channel=*/-1,
                             world_->info(me_).name, penalty);
  }

  auto parsed = reliable::unframe(wire);
  InboundMessage msg;
  msg.source = me_;
  msg.tag = tag;
  msg.payload = std::move(parsed->payload);
  msg.arrival = depart + legs.transit + penalty;

  if (reorder) {
    reliable::stash(world_->queue(dest), me_, dest, std::move(msg), seq, tag,
                    dup, epoch);
  } else {
    reliable::window_deposit(world_->queue(dest), me_, dest, std::move(msg),
                             seq, tag, epoch);
    // A frame stashed earlier on this same link has now been overtaken —
    // release it so the receive window can drain both in order.
    reliable::flush_link(me_, dest);
    if (dup) {
      // The duplicate copy takes the same wire journey; the receive
      // window suppresses it by sequence number.
      InboundMessage copy;
      copy.source = me_;
      copy.tag = tag;
      copy.payload.resize(bytes);
      if (bytes > 0) std::memcpy(copy.payload.data(), data, bytes);
      copy.arrival = depart + legs.transit + penalty;
      reliable::window_deposit(world_->queue(dest), me_, dest,
                               std::move(copy), seq, tag, epoch);
    }
  }

  simtime::Trace::global().record(
      world_->info(me_).name, simtime::TraceKind::kMpiSend,
      "to=" + std::to_string(dest) + " tag=" + std::to_string(tag) +
          " bytes=" + std::to_string(bytes),
      begin, depart);
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kMpiSend,
                              world_->info(me_).name, begin, depart, bytes,
                              /*channel=*/-1, /*route_type=*/0, tag);
  }
}

Status Mpi::recv_impl(void* data, std::size_t bytes, Rank source, int tag) {
  if (reliable::enabled()) reliable::flush_from(me_);
  if (source != kAnySource) world_->check_rank(source, "recv");
  const simtime::SimTime begin = clock().now();
  InboundMessage msg = world_->queue(me_).match_blocking(source, tag);
  if (msg.payload.size() > bytes) {
    throw MpiError("recv truncation: message of " +
                   std::to_string(msg.payload.size()) +
                   " bytes into a " + std::to_string(bytes) +
                   "-byte buffer (src=" + std::to_string(msg.source) +
                   " tag=" + std::to_string(msg.tag) + ")");
  }
  if (!msg.payload.empty()) {
    std::memcpy(data, msg.payload.data(), msg.payload.size());
  }
  const auto legs = world_->cost().mpi_leg_costs(
      msg.payload.size(), world_->info(msg.source).core,
      world_->info(me_).core, world_->same_node(msg.source, me_));
  clock().join_advance(msg.arrival, legs.receiver);

  simtime::Trace::global().record(
      world_->info(me_).name, simtime::TraceKind::kMpiRecv,
      "from=" + std::to_string(msg.source) + " tag=" +
          std::to_string(msg.tag) + " bytes=" +
          std::to_string(msg.payload.size()),
      begin, clock().now());
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kMpiRecv,
                              world_->info(me_).name, begin, clock().now(),
                              msg.payload.size(), /*channel=*/-1,
                              /*route_type=*/0, msg.tag);
  }
  return Status{msg.source, msg.tag, msg.payload.size()};
}

void Mpi::send(const void* data, std::size_t bytes, Rank dest, int tag) {
  check_user_tag(tag);
  send_impl(data, bytes, dest, tag);
}

Status Mpi::recv(void* data, std::size_t bytes, Rank source, int tag) {
  if (tag != kAnyTag) check_user_tag(tag);
  return recv_impl(data, bytes, source, tag);
}

std::vector<std::byte> Mpi::recv_any_size(Rank source, int tag, Status* st) {
  if (reliable::enabled()) reliable::flush_from(me_);
  if (source != kAnySource) world_->check_rank(source, "recv");
  const simtime::SimTime begin = clock().now();
  InboundMessage msg = world_->queue(me_).match_blocking(source, tag);
  const auto legs = world_->cost().mpi_leg_costs(
      msg.payload.size(), world_->info(msg.source).core,
      world_->info(me_).core, world_->same_node(msg.source, me_));
  clock().join_advance(msg.arrival, legs.receiver);
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kMpiRecv,
                              world_->info(me_).name, begin, clock().now(),
                              msg.payload.size(), /*channel=*/-1,
                              /*route_type=*/0, msg.tag);
  }
  if (st != nullptr) *st = Status{msg.source, msg.tag, msg.payload.size()};
  return std::move(msg.payload);
}

std::optional<Envelope> Mpi::iprobe(Rank source, int tag) {
  if (reliable::enabled()) reliable::flush_from(me_);
  if (source != kAnySource) world_->check_rank(source, "iprobe");
  return world_->queue(me_).probe(source, tag);
}

Envelope Mpi::probe(Rank source, int tag) {
  if (reliable::enabled()) reliable::flush_from(me_);
  if (source != kAnySource) world_->check_rank(source, "probe");
  return world_->queue(me_).probe_blocking(source, tag);
}

void Mpi::send_internal(const void* data, std::size_t bytes, Rank dest,
                        int tag) {
  send_impl(data, bytes, dest, tag);
}

Status Mpi::recv_internal(void* data, std::size_t bytes, Rank source,
                          int tag) {
  return recv_impl(data, bytes, source, tag);
}

void Mpi::barrier() {
  const simtime::SimTime begin = clock().now();
  std::uint8_t token = 0;
  if (me_ == 0) {
    // Gather in rank order (not ANY_SOURCE) so the root's clock sequence --
    // and with it every timing result -- is deterministic.
    for (int r = 1; r < size(); ++r) {
      recv_impl(&token, 1, r, kTagBarrierIn);
    }
    for (int r = 1; r < size(); ++r) {
      send_impl(&token, 1, r, kTagBarrierOut);
    }
  } else {
    send_impl(&token, 1, 0, kTagBarrierIn);
    recv_impl(&token, 1, 0, kTagBarrierOut);
  }
  simtime::Trace::global().record(world_->info(me_).name,
                                  simtime::TraceKind::kBarrier, "", begin,
                                  clock().now());
}

void Mpi::bcast(void* data, std::size_t bytes, Rank root) {
  world_->check_rank(root, "bcast");
  if (me_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send_impl(data, bytes, r, kTagBcast);
    }
  } else {
    recv_impl(data, bytes, root, kTagBcast);
  }
}

void Mpi::gather(const void* contrib, std::size_t bytes, void* recv_all,
                 Rank root) {
  world_->check_rank(root, "gather");
  if (me_ == root) {
    auto* out = static_cast<std::byte*>(recv_all);
    if (bytes > 0) {
      std::memcpy(out + static_cast<std::size_t>(root) * bytes, contrib,
                  bytes);
    }
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv_impl(out + static_cast<std::size_t>(r) * bytes, bytes, r,
                kTagGather);
    }
  } else {
    send_impl(contrib, bytes, root, kTagGather);
  }
}

void Mpi::reduce_sum(const double* contrib, double* result,
                     std::size_t count, Rank root) {
  world_->check_rank(root, "reduce");
  const std::size_t bytes = count * sizeof(double);
  if (me_ == root) {
    std::memcpy(result, contrib, bytes);
    std::vector<double> tmp(count);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv_impl(tmp.data(), bytes, r, kTagReduce);
      for (std::size_t i = 0; i < count; ++i) result[i] += tmp[i];
    }
  } else {
    send_impl(contrib, bytes, root, kTagReduce);
  }
}

void Mpi::allreduce_sum(const double* contrib, double* result,
                        std::size_t count) {
  reduce_sum(contrib, result, count, 0);
  bcast(result, count * sizeof(double), 0);
}

}  // namespace mpisim
