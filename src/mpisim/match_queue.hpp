// match_queue.hpp — per-rank incoming message queue with MPI matching rules.
//
// Every rank owns one MatchQueue.  Senders deposit complete messages
// (eager protocol); receivers match on (source, tag) with wildcard support,
// honouring MPI's non-overtaking rule: among messages from the same source
// with a matching tag, the earliest deposited wins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "mpisim/types.hpp"
#include "simtime/sim_time.hpp"

namespace mpisim {

/// A complete in-flight message.
struct InboundMessage {
  Rank source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  /// Virtual time at which the message is fully available at the receiver
  /// (sender departure + transit); the receiver's clock joins this.
  simtime::SimTime arrival = simtime::kSimTimeZero;
};

/// The receive side of one rank.
class MatchQueue {
 public:
  /// Deposits a message (called from the sender's thread).
  void deposit(InboundMessage msg);

  /// Blocks until a message matching (source, tag) is available and removes
  /// it.  Wildcards kAnySource / kAnyTag accepted.  Throws WorldAborted if
  /// aborted while waiting.
  InboundMessage match_blocking(Rank source, int tag);

  /// Non-blocking match: removes and returns the message if present.
  std::optional<InboundMessage> try_match(Rank source, int tag);

  /// Non-destructive probe: envelope of the first matching message.
  std::optional<Envelope> probe(Rank source, int tag) const;

  /// Blocks until a matching message is present (MPI_Probe); leaves it
  /// queued and returns its envelope.
  Envelope probe_blocking(Rank source, int tag);

  /// A (source, tag) match pattern for multi-pattern probes.
  struct Pattern {
    Rank source = kAnySource;
    int tag = kAnyTag;
  };

  /// Blocks until a message matching *any* pattern is queued; returns the
  /// index of the first pattern (in `patterns` order) with a match, plus
  /// the envelope.  Used by Pilot's select.
  std::pair<std::size_t, Envelope> probe_any_blocking(
      std::span<const Pattern> patterns);

  /// Non-blocking variant: nullopt when nothing matches.
  std::optional<std::pair<std::size_t, Envelope>> try_probe_any(
      std::span<const Pattern> patterns) const;

  /// Number of queued messages (diagnostics).
  std::size_t pending() const;

  /// Aborts the queue: wakes all waiters with WorldAborted(reason), and
  /// makes future blocking calls throw likewise.
  void abort(const std::string& reason);

  /// True while the owning rank is asleep inside a blocking match/probe.
  /// A blocked rank cannot initiate sends, so conservative schedulers (the
  /// Co-Pilot's virtual-time event ordering) treat it as quiescent.
  bool waiting() const { return waiting_.load(std::memory_order_acquire); }

 private:
  bool matches(const InboundMessage& m, Rank source, int tag) const {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }
  // Index of first match in fifo_, or npos.
  std::size_t find(Rank source, int tag) const;

  /// Waits on arrived_ with the waiting_ flag raised while asleep.
  template <typename Pred>
  void wait_flagged(std::unique_lock<std::mutex>& lock, Pred&& pred) {
    while (!pred()) {
      waiting_.store(true, std::memory_order_release);
      arrived_.wait(lock);
      waiting_.store(false, std::memory_order_release);
    }
  }

  mutable std::mutex mu_;
  std::condition_variable arrived_;
  std::deque<InboundMessage> fifo_;
  std::atomic<bool> waiting_{false};
  bool aborted_ = false;
  std::string abort_reason_;
};

}  // namespace mpisim
