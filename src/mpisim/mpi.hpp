// mpi.hpp — the rank-scoped MiniMPI facade.
//
// One Mpi object is created per rank thread by the launcher and gives that
// rank MPI-shaped operations: blocking matched send/recv, probe/iprobe, and
// the collectives Pilot's bundles build on.  All timing is virtual (see
// world.hpp / cost_model.hpp); all data moves by memcpy within the host
// process, which is exactly the "direct transfer" the Co-Pilot exploits when
// it hands an SPE's mapped local-store address straight to an MPI call.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mpisim/types.hpp"
#include "mpisim/world.hpp"

namespace mpisim {

/// Rank-scoped operations.  Not thread-safe: one Mpi per rank thread.
class Mpi {
 public:
  /// Binds to `world` as rank `me`.
  Mpi(World& world, Rank me);

  /// This rank's id (MPI_Comm_rank).
  Rank rank() const { return me_; }

  /// World size (MPI_Comm_size).
  int size() const { return world_->size(); }

  /// The world this facade talks through.
  World& world() { return *world_; }

  /// This rank's virtual clock.
  simtime::VirtualClock& clock() { return world_->clock(me_); }

  /// Blocking standard-mode send of `bytes` from `data` to `dest` with
  /// `tag` (user tags must be < kReservedTagBase).
  void send(const void* data, std::size_t bytes, Rank dest, int tag);

  /// Blocking receive into `data` (capacity `bytes`) matching
  /// (source, tag); wildcards allowed.  Throws MpiError::kTruncate-style
  /// error if the matched message is larger than `bytes`.
  Status recv(void* data, std::size_t bytes, Rank source, int tag);

  /// Receive whatever matches, sized by the message (no truncation risk).
  std::vector<std::byte> recv_any_size(Rank source, int tag, Status* st = nullptr);

  /// Non-blocking probe (MPI_Iprobe): envelope of a matching queued
  /// message, if any.
  std::optional<Envelope> iprobe(Rank source, int tag);

  /// Blocking probe (MPI_Probe).
  Envelope probe(Rank source, int tag);

  /// Barrier over all ranks (gather-to-0 / release fan-out, so virtual
  /// clocks synchronize to the latest participant like a real barrier).
  void barrier();

  /// Broadcast `bytes` at `data` from `root` to all ranks; every rank
  /// calls this (SPMD convention, as MPI_Bcast).
  void bcast(void* data, std::size_t bytes, Rank root);

  /// Gather fixed-size contributions to `root`; `recv_all` must hold
  /// size()*bytes at the root and may be null elsewhere.
  void gather(const void* contrib, std::size_t bytes, void* recv_all,
              Rank root);

  /// Element-wise reduction of doubles to `root` (sum).
  void reduce_sum(const double* contrib, double* result, std::size_t count,
                  Rank root);

  /// allreduce = reduce_sum + bcast.
  void allreduce_sum(const double* contrib, double* result,
                     std::size_t count);

  // --- internal-protocol variants (reserved tag space) ---------------------

  /// send/recv with tags in the reserved space; used by collectives and by
  /// the Pilot/CellPilot layers' control protocols.
  void send_internal(const void* data, std::size_t bytes, Rank dest, int tag);
  Status recv_internal(void* data, std::size_t bytes, Rank source, int tag);

 private:
  void send_impl(const void* data, std::size_t bytes, Rank dest, int tag);
  /// Send through the reliable sublayer (mpisim/reliable.hpp): CRC-framed,
  /// sequence-numbered, with drop/corrupt/dup/reorder faults absorbed by
  /// retransmit + receive-window machinery.  Taken only while the fault
  /// plan arms message-level rules.
  void send_reliable(const void* data, std::size_t bytes, Rank dest, int tag);
  Status recv_impl(void* data, std::size_t bytes, Rank source, int tag);
  void check_user_tag(int tag) const;

  World* world_;
  Rank me_;
};

}  // namespace mpisim
