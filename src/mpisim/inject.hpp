// inject.hpp — fault-injection seam for MiniMPI sends.
//
// Mirrors cellsim/inject.hpp: mpisim cannot see the fault plan (it depends
// only on simtime), so the plan installs a function-pointer hook and
// send_impl probes it once the leg costs are known.  A delay adds virtual
// transit time to the message; a drop charges the sender and discards the
// message (a lost internal send — the recovery machinery upstream must
// time out).  With no hook installed the probe is one relaxed atomic load.
#pragma once

#include <atomic>

#include "mpisim/types.hpp"
#include "simtime/sim_time.hpp"

namespace mpisim::inject {

/// What the plan wants done to one send.
///
/// `drop` is the legacy unrecoverable loss (send_drop: the message is gone
/// for good).  The msg_* flags are the recoverable message-level faults
/// absorbed by the reliable sublayer (mpisim/reliable.hpp): the probe is
/// made once per delivery attempt, so a retransmission re-rolls the plan.
struct Action {
  simtime::SimTime delay = 0;  ///< extra virtual transit time
  bool drop = false;           ///< discard the message after charging sender
  bool msg_drop = false;       ///< lose this attempt; sender retransmits
  bool msg_corrupt = false;    ///< damage this attempt; CRC catches it
  bool msg_dup = false;        ///< deliver the frame twice
  bool msg_reorder = false;    ///< hold the frame back past its successor
};

using Hook = Action (*)(Rank from, Rank to, int tag, simtime::SimTime now);

namespace detail {
inline std::atomic<Hook> g_hook{nullptr};
}  // namespace detail

/// Installs (or clears, with nullptr) the process-wide hook.
inline void set_hook(Hook hook) {
  detail::g_hook.store(hook, std::memory_order_release);
}

/// Probes the hook; no-op (all-zero Action) when none is installed.
inline Action probe(Rank from, Rank to, int tag, simtime::SimTime now) {
  const Hook hook = detail::g_hook.load(std::memory_order_acquire);
  return hook == nullptr ? Action{} : hook(from, to, tag, now);
}

}  // namespace mpisim::inject
