// reliable.hpp — the reliable delivery sublayer under MiniMPI.
//
// Real CellPilot assumes a lossless MPI fabric; the fault plan can now take
// that away (msg_drop / msg_corrupt / msg_dup / msg_reorder).  This layer
// restores exactly-once, in-order delivery on top of the lossy substrate:
//
//   * every message is wrapped in a CRC32-framed "PILR" envelope carrying a
//     per-link (sender, receiver) sequence number and an attempt counter;
//   * the receiver side keeps a per-link window: frames below the expected
//     sequence are duplicate-suppressed, frames above it are buffered and
//     released in order, so the MatchQueue only ever sees each message once
//     and in the order it was sent;
//   * a lost or corrupted frame is detected by the missing acknowledgement
//     at the sender's deadline and retransmitted with a doubling backoff
//     ladder (the PR 2 `-pideadline` machinery: base deadline x 2^k), the
//     accumulated wait charged to the message's virtual arrival time.
//
// Because the simulation is an eager single-process transport, the protocol
// is *modeled at send time*: the sender resolves the whole
// detect-retransmit conversation before depositing, so no timers or extra
// threads exist and the outcome is a pure function of the fault plan.  The
// one genuinely deferred behaviour is msg_reorder: the sender holds the
// framed message in a one-deep per-link stash and releases it after a later
// frame of the same link has been deposited (the receiver window absorbs
// the inversion).  Deterministic flush points bound the stash's lifetime:
// before any send on a different link, on entry to any receive/probe, and
// when the rank's main returns (launcher).
//
// The layer is OFF unless the fault plan contains message-level rules
// (core/faultplan arms it); disabled, every send takes the historical path
// and virtual time is bit-for-bit identical to a build without this file.
// Enabled but with no rule firing, the frame header is modeled as free (no
// extra leg cost), so untouched links also keep their exact timings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mpisim/match_queue.hpp"
#include "mpisim/types.hpp"
#include "simtime/sim_time.hpp"

namespace mpisim::reliable {

/// Magic value marking a reliable-transport envelope ("PILR").
inline constexpr std::uint32_t kFrameMagic = 0x50494C52;

/// Envelope prepended to every message while the layer is enabled.
struct FrameHeader {
  std::uint32_t magic = 0;          ///< kFrameMagic
  std::uint32_t crc = 0;            ///< CRC32 of the payload bytes
  std::uint64_t seq = 0;            ///< per-link sequence number (from 1)
  std::uint32_t attempt = 0;        ///< delivery attempt (1 = first try)
  std::uint32_t payload_bytes = 0;  ///< payload length
  std::uint32_t epoch = 0;          ///< sender incarnation (self-healing)
  std::uint32_t reserved = 0;       ///< pad to 8-byte multiple
};
static_assert(sizeof(FrameHeader) == 32);

/// CRC-32 (IEEE 802.3, reflected) of a byte span.
/// crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::span<const std::byte> data);

/// Builds header + payload as one contiguous wire frame.
std::vector<std::byte> frame(std::uint64_t seq, std::uint32_t attempt,
                             std::span<const std::byte> payload,
                             std::uint32_t epoch = 0);

/// A parsed frame.  `crc_ok` is the real integrity verdict: a corrupted
/// payload parses fine but fails the checksum.
struct Unframed {
  FrameHeader header;
  bool crc_ok = false;
  std::vector<std::byte> payload;
};

/// Parses a wire frame; nullopt when the buffer is too short, carries the
/// wrong magic, or its length field disagrees with the buffer.
std::optional<Unframed> unframe(std::span<const std::byte> wire);

// --- arming -----------------------------------------------------------------

/// Turns the layer on/off.  Installed by the fault plan: enabled exactly
/// while the plan contains message-level rules.
void set_enabled(bool enabled);
bool enabled();

/// Retransmission ladder: retransmit k waits base * 2^(k-1) before the
/// frame is resent (deadline-driven doubling backoff).  Installed from
/// Pilot's options (-pideadline / spe_deadline_retries); defaults 500us x 3.
void set_backoff(simtime::SimTime base, int max_retries);
simtime::SimTime backoff(int attempt);
int max_retries();

// --- observability ----------------------------------------------------------

/// Protocol events, for counters layered above (mpisim cannot see CellPilot
/// channels; the observer maps the tag back to a channel id).
enum class Event {
  kAck,         ///< a frame was released to the receiver (delivery + ack)
  kRetransmit,  ///< a frame was resent after a drop or corruption
  kDuplicate,   ///< the receiver window discarded an already-seen frame
  kCorrupt,     ///< the CRC check caught a damaged frame
  kReorder,     ///< a frame was held back to arrive out of order
  kStale,       ///< an old-epoch frame was tombstoned by an epoch floor
};

using Observer = void (*)(Event event, int tag);

/// Installs (or clears) the process-wide observer.
void set_observer(Observer observer);

/// Counts `event` into the totals and forwards it to the observer.  The
/// deposit-side events (ack/duplicate/reorder) are recorded internally;
/// the send path records retransmit/corrupt through this.
void record_event(Event event, int tag);

/// Process-wide totals since the last reset (tests assert on these).
struct Totals {
  std::uint64_t acks = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corrupt_detected = 0;
  std::uint64_t reorders = 0;
  std::uint64_t stale = 0;
};
Totals totals();
void reset_totals();

// --- channel epochs (self-healing) ------------------------------------------

/// Arms the epoch the *next* send on this thread stamps into its PILR
/// frame (consumed by that send, then back to 0).  CellPilot's dispatch
/// sites set it from the channel's writer epoch right before handing the
/// message to MiniMPI; control traffic stays at epoch 0.
void set_send_epoch(std::uint32_t epoch);

/// Consumes and returns the armed send epoch (0 if none was set).
std::uint32_t take_send_epoch();

/// Installs an epoch floor for `tag`: frames carrying an older epoch are
/// tombstones — their sequence numbers still advance the receive window
/// (no gap stalls) but they are never delivered.  Sweeps frames already
/// held in receive windows and sender stashes, and returns how many were
/// tombstoned by the sweep: Co-Pilot supervision subtracts that from the
/// dead incarnation's delivery journal so exactly the undelivered writes
/// are replayed under the new epoch.
std::size_t set_epoch_floor(int tag, std::uint32_t floor);

// --- per-link protocol state ------------------------------------------------

/// Next sequence number for link from->to (1-based, monotonically
/// increasing per link).
std::uint64_t next_seq(Rank from, Rank to);

/// Deposits `msg` through the link's receive window: duplicates (seq
/// already delivered or already buffered) are discarded, gaps are buffered,
/// and every in-order frame is released to `queue` with an ack event.
/// Returns true if this call released at least one frame.
bool window_deposit(MatchQueue& queue, Rank from, Rank to, InboundMessage msg,
                    std::uint64_t seq, int tag, std::uint32_t epoch = 0);

/// Holds one frame back (msg_reorder).  At most one frame is stashed per
/// link; an already-stashed frame is flushed first.  `duplicate` records
/// that the frame should be delivered twice on release (msg_dup rode along).
void stash(MatchQueue& queue, Rank from, Rank to, InboundMessage msg,
           std::uint64_t seq, int tag, bool duplicate,
           std::uint32_t epoch = 0);

/// Releases the stashed frame of link from->to, if any.
void flush_link(Rank from, Rank to);

/// Releases every frame stashed by sender `from` except the one on the link
/// to `except_to` (called before a send on a different link so the new send
/// cannot overtake an unflushed stash).
void flush_other_links(Rank from, Rank except_to);

/// Releases every frame stashed by sender `from`: called on entry to any
/// receive/probe (the sender may be about to block on a reply that can only
/// come after its held frame is seen) and when the rank's main returns.
void flush_from(Rank from);

/// Drops all per-link state (sequence counters, windows, stashes).  Called
/// by the launcher at job start so worlds never inherit another job's
/// sequence space.  Must not be called while rank threads are running.
void reset_links();

/// Observable protocol state of one directed link, for the coordinated
/// checkpoint's kLinks section (core/checkpoint).  `held` counts frames
/// buffered out-of-order in the receive window, `stashed` whether a
/// msg_reorder stash is pending.
struct LinkSnapshot {
  Rank from = 0;
  Rank to = 0;
  std::uint64_t next_seq = 1;   ///< next sequence the sender will assign
  std::uint64_t expected = 1;   ///< next sequence the receiver will release
  std::uint64_t held = 0;       ///< frames parked in the receive window
  std::uint8_t stashed = 0;     ///< 1 if a reorder stash is pending
};

/// Copies every link's protocol state in canonical (from, to) order.  Empty
/// when the reliable sublayer never carried traffic (no msg_* faults armed)
/// — the common case, which keeps clean-run checkpoints link-free.
std::vector<LinkSnapshot> snapshot_links();

}  // namespace mpisim::reliable
