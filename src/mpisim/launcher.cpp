#include "mpisim/launcher.hpp"

#include <mutex>
#include <thread>

#include "mpisim/reliable.hpp"

namespace mpisim {

LaunchResult launch(World& world, const RankMain& main_fn) {
  const int n = world.size();
  LaunchResult result;
  result.exit_codes.assign(static_cast<std::size_t>(n), 0);
  // Per-link sequence spaces must not leak between jobs.
  reliable::reset_links();

  std::mutex errors_mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));

  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      Mpi mpi(world, r);
      try {
        result.exit_codes[static_cast<std::size_t>(r)] = main_fn(mpi);
        // A frame stashed by msg_reorder must not outlive its sender.
        if (reliable::enabled()) reliable::flush_from(r);
        world.mark_done(r);
      } catch (const WorldAborted&) {
        // Torn down by another rank (or a service); nothing further to do.
        world.mark_done(r);
      } catch (const std::exception& e) {
        {
          std::lock_guard lock(errors_mu);
          result.errors.push_back("rank " + std::to_string(r) + ": " +
                                  e.what());
        }
        world.abort(std::string("rank ") + std::to_string(r) +
                    " failed: " + e.what());
        world.mark_done(r);
      }
    });
  }
  for (auto& t : threads) t.join();

  result.aborted = world.aborted();
  result.abort_reason = world.abort_reason();
  return result;
}

}  // namespace mpisim
