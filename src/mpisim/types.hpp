// types.hpp — common vocabulary of the MiniMPI message-passing substrate.
//
// MiniMPI gives this repository the slice of MPI that Pilot consumes —
// blocking matched point-to-point messaging with tags, probe, and a few
// collectives — implemented over threads in one address space, with a
// virtual-time interconnect model standing in for gigabit Ethernet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "simtime/sim_time.hpp"

namespace mpisim {

/// Rank identifier within a world.
using Rank = int;

/// Wildcard source for recv/probe (MPI_ANY_SOURCE).
inline constexpr Rank kAnySource = -1;

/// Wildcard tag for recv/probe (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// Tags at or above this value are reserved for internal protocols
/// (collectives, barrier, shutdown).  User tags must stay below.
inline constexpr int kReservedTagBase = 0x40000000;

/// Completion status of a receive (MPI_Status).
struct Status {
  Rank source = kAnySource;  ///< actual source rank
  int tag = kAnyTag;         ///< actual tag
  std::size_t bytes = 0;     ///< payload size in bytes
};

/// Envelope returned by probe operations.
struct Envelope {
  Rank source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
  /// Virtual time at which the message became available at the receiver.
  simtime::SimTime arrival = simtime::kSimTimeZero;
};

/// Raised in every blocked/future MiniMPI call after World::abort() — the
/// simulated analogue of MPI_Abort tearing the job down.
class WorldAborted : public std::runtime_error {
 public:
  explicit WorldAborted(const std::string& reason)
      : std::runtime_error("MPI world aborted: " + reason) {}
};

/// Raised on API misuse (bad rank, reserved tag, size mismatch).
class MpiError : public std::runtime_error {
 public:
  explicit MpiError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace mpisim
