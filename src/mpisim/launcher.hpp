// launcher.hpp — the simulated `mpirun`.
//
// Spawns one host thread per rank, runs the same entry function on each
// (SPMD, as mpirun does), and collects exit codes and failures.  A rank
// that throws aborts the world so the remaining ranks unblock, mirroring
// an MPI job dying.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mpisim/mpi.hpp"
#include "mpisim/world.hpp"

namespace mpisim {

/// Outcome of one launch().
struct LaunchResult {
  std::vector<int> exit_codes;       ///< per-rank return values (0 if threw)
  bool aborted = false;              ///< whether the world was aborted
  std::string abort_reason;          ///< first abort reason
  std::vector<std::string> errors;   ///< what() of non-abort exceptions
};

/// Rank entry point: receives its rank-scoped facade, returns an exit code.
using RankMain = std::function<int(Mpi&)>;

/// Runs `main_fn` on every rank of `world` concurrently; returns when all
/// rank threads have finished.
LaunchResult launch(World& world, const RankMain& main_fn);

}  // namespace mpisim
