#include "mpisim/match_queue.hpp"

namespace mpisim {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

void MatchQueue::deposit(InboundMessage msg) {
  std::lock_guard lock(mu_);
  if (aborted_) return;  // job is dying; drop silently
  fifo_.push_back(std::move(msg));
  arrived_.notify_all();
}

std::size_t MatchQueue::find(Rank source, int tag) const {
  for (std::size_t i = 0; i < fifo_.size(); ++i) {
    if (matches(fifo_[i], source, tag)) return i;
  }
  return kNpos;
}

InboundMessage MatchQueue::match_blocking(Rank source, int tag) {
  std::unique_lock lock(mu_);
  std::size_t idx = kNpos;
  wait_flagged(lock, [&] {
    if (aborted_) return true;
    idx = find(source, tag);
    return idx != kNpos;
  });
  if (aborted_) throw WorldAborted(abort_reason_);
  InboundMessage msg = std::move(fifo_[idx]);
  fifo_.erase(fifo_.begin() + static_cast<std::ptrdiff_t>(idx));
  return msg;
}

std::optional<InboundMessage> MatchQueue::try_match(Rank source, int tag) {
  std::lock_guard lock(mu_);
  if (aborted_) throw WorldAborted(abort_reason_);
  const std::size_t idx = find(source, tag);
  if (idx == kNpos) return std::nullopt;
  InboundMessage msg = std::move(fifo_[idx]);
  fifo_.erase(fifo_.begin() + static_cast<std::ptrdiff_t>(idx));
  return msg;
}

std::optional<Envelope> MatchQueue::probe(Rank source, int tag) const {
  std::lock_guard lock(mu_);
  if (aborted_) throw WorldAborted(abort_reason_);
  const std::size_t idx = find(source, tag);
  if (idx == kNpos) return std::nullopt;
  const InboundMessage& m = fifo_[idx];
  return Envelope{m.source, m.tag, m.payload.size(), m.arrival};
}

Envelope MatchQueue::probe_blocking(Rank source, int tag) {
  std::unique_lock lock(mu_);
  std::size_t idx = kNpos;
  wait_flagged(lock, [&] {
    if (aborted_) return true;
    idx = find(source, tag);
    return idx != kNpos;
  });
  if (aborted_) throw WorldAborted(abort_reason_);
  const InboundMessage& m = fifo_[idx];
  return Envelope{m.source, m.tag, m.payload.size(), m.arrival};
}

std::pair<std::size_t, Envelope> MatchQueue::probe_any_blocking(
    std::span<const Pattern> patterns) {
  std::unique_lock lock(mu_);
  std::size_t hit_pattern = 0;
  std::size_t hit_msg = kNpos;
  wait_flagged(lock, [&] {
    if (aborted_) return true;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      const std::size_t idx = find(patterns[p].source, patterns[p].tag);
      if (idx != kNpos) {
        hit_pattern = p;
        hit_msg = idx;
        return true;
      }
    }
    return false;
  });
  if (aborted_) throw WorldAborted(abort_reason_);
  const InboundMessage& m = fifo_[hit_msg];
  return {hit_pattern, Envelope{m.source, m.tag, m.payload.size(), m.arrival}};
}

std::optional<std::pair<std::size_t, Envelope>> MatchQueue::try_probe_any(
    std::span<const Pattern> patterns) const {
  std::lock_guard lock(mu_);
  if (aborted_) throw WorldAborted(abort_reason_);
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const std::size_t idx = find(patterns[p].source, patterns[p].tag);
    if (idx != kNpos) {
      const InboundMessage& m = fifo_[idx];
      return {{p, Envelope{m.source, m.tag, m.payload.size(), m.arrival}}};
    }
  }
  return std::nullopt;
}

std::size_t MatchQueue::pending() const {
  std::lock_guard lock(mu_);
  return fifo_.size();
}

void MatchQueue::abort(const std::string& reason) {
  std::lock_guard lock(mu_);
  aborted_ = true;
  abort_reason_ = reason;
  arrived_.notify_all();
}

}  // namespace mpisim
