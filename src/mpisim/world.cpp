#include "mpisim/world.hpp"

namespace mpisim {

World::World(std::vector<RankInfo> ranks, const simtime::CostModel& cost)
    : cost_(&cost) {
  if (ranks.empty()) throw MpiError("World needs at least one rank");
  ranks_.reserve(ranks.size());
  for (RankInfo& info : ranks) {
    auto state = std::make_unique<RankState>();
    state->info = std::move(info);
    ranks_.push_back(std::move(state));
  }
}

void World::check_rank(Rank r, const char* what) const {
  if (r < 0 || r >= size()) {
    throw MpiError(std::string(what) + ": rank " + std::to_string(r) +
                   " out of range [0," + std::to_string(size()) + ")");
  }
}

const RankInfo& World::info(Rank r) const {
  check_rank(r, "info");
  return ranks_[static_cast<std::size_t>(r)]->info;
}

MatchQueue& World::queue(Rank r) {
  check_rank(r, "queue");
  return ranks_[static_cast<std::size_t>(r)]->queue;
}

simtime::VirtualClock& World::clock(Rank r) {
  check_rank(r, "clock");
  return ranks_[static_cast<std::size_t>(r)]->clock;
}

bool World::same_node(Rank a, Rank b) const {
  return info(a).node == info(b).node;
}

void World::mark_done(Rank r) {
  check_rank(r, "mark_done");
  ranks_[static_cast<std::size_t>(r)]->done.store(true,
                                                  std::memory_order_release);
}

void World::set_passive(Rank r, bool passive) {
  check_rank(r, "set_passive");
  ranks_[static_cast<std::size_t>(r)]->passive.store(
      passive, std::memory_order_release);
}

bool World::quiescent(Rank r) {
  check_rank(r, "quiescent");
  RankState& state = *ranks_[static_cast<std::size_t>(r)];
  return state.done.load(std::memory_order_acquire) ||
         state.passive.load(std::memory_order_acquire) ||
         state.queue.waiting();
}

simtime::SimTime World::send_bound(Rank r) {
  if (quiescent(r)) return std::numeric_limits<simtime::SimTime>::max();
  return clock(r).now();
}

void World::abort(const std::string& reason) {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard lock(mu_);
    if (aborted_) return;  // first reason wins
    aborted_ = true;
    abort_reason_ = reason;
    hooks = abort_hooks_;
  }
  for (auto& rank : ranks_) rank->queue.abort(reason);
  for (auto& hook : hooks) hook();
}

bool World::aborted() const {
  std::lock_guard lock(mu_);
  return aborted_;
}

std::string World::abort_reason() const {
  std::lock_guard lock(mu_);
  return abort_reason_;
}

void World::on_abort(std::function<void()> hook) {
  std::lock_guard lock(mu_);
  abort_hooks_.push_back(std::move(hook));
}

}  // namespace mpisim
