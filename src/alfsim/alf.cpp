#include "alfsim/alf.hpp"

#include <algorithm>
#include <stdexcept>

#include "cellsim/libspe2.hpp"
#include "cellsim/spu.hpp"

namespace alf {

namespace {

/// Trampoline state for the accelerator program (one per worker thread).
struct AcceleratorArgs {
  Task* task;
  unsigned lane;
};

thread_local AcceleratorArgs* t_args = nullptr;

}  // namespace

Runtime::Runtime(cellsim::CellBlade& blade, const simtime::CostModel& cost)
    : blade_(&blade), cost_(&cost) {}

std::unique_ptr<Task> Runtime::create_task(TaskDesc desc, unsigned first_spe) {
  if (desc.kernel == nullptr) {
    throw std::invalid_argument("alf: task needs a kernel");
  }
  if (desc.in_block_bytes == 0 && desc.out_block_bytes == 0) {
    throw std::invalid_argument("alf: task moves no data");
  }
  if (desc.accelerators == 0 ||
      first_spe + desc.accelerators > blade_->spe_count()) {
    throw std::invalid_argument("alf: accelerator range exceeds the blade");
  }
  return std::unique_ptr<Task>(new Task(*blade_, *cost_, desc, first_spe));
}

Task::Task(cellsim::CellBlade& blade, const simtime::CostModel& cost,
           TaskDesc desc, unsigned first_spe)
    : blade_(&blade), cost_(&cost), desc_(desc) {
  per_spe_.assign(desc_.accelerators, 0);
  workers_.reserve(desc_.accelerators);
  for (unsigned lane = 0; lane < desc_.accelerators; ++lane) {
    const unsigned spe_index = first_spe + lane;
    workers_.emplace_back(
        [this, spe_index, lane] { accelerator_main(spe_index, lane); });
  }
}

Task::~Task() { wait(); }

void Task::add_work_block(const void* in, void* out) {
  std::lock_guard lock(mu_);
  if (finalized_) {
    throw std::invalid_argument("alf: add_work_block after finalize");
  }
  queue_.push_back(WorkBlock{in, out});
  cv_.notify_one();
}

void Task::finalize() {
  std::lock_guard lock(mu_);
  finalized_ = true;
  cv_.notify_all();
}

bool Task::pop_block(WorkBlock* out) {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return finalized_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  *out = queue_.front();
  queue_.pop_front();
  return true;
}

void Task::accelerator_main(unsigned spe_index, unsigned lane) {
  cellsim::Spe& spe = blade_->spe(spe_index);
  AcceleratorArgs args{this, lane};
  t_args = &args;

  // The accelerator-side ALF runtime: a work-block pump with (optionally)
  // double-buffered input DMA.  Tag g holds the "current" buffer's get;
  // tag 1-g the prefetch.
  const cellsim::spe2::SpeEntry entry =
      +[](std::uint64_t, std::uint64_t, std::uint64_t) -> int {
    Task* task = t_args->task;
    const unsigned lane_id = t_args->lane;
    const TaskDesc& desc = task->desc_;
    auto& clock = cellsim::spu::self().clock();

    const std::size_t in_sz = std::max<std::size_t>(desc.in_block_bytes, 16);
    const std::size_t out_sz =
        std::max<std::size_t>(desc.out_block_bytes, 16);
    const cellsim::LsAddr in_buf[2] = {
        cellsim::spu::ls_alloc(in_sz, 128),
        desc.double_buffer ? cellsim::spu::ls_alloc(in_sz, 128)
                           : cellsim::LsAddr{0}};
    const cellsim::LsAddr out_ls = cellsim::spu::ls_alloc(out_sz, 128);

    WorkBlock current{};
    bool have_current = task->pop_block(&current);
    unsigned g = 0;  // buffer/tag of the current block
    if (have_current && desc.in_block_bytes > 0) {
      cellsim::spu::mfc_get_any(in_buf[0], cellsim::ea_of(current.in),
                                desc.in_block_bytes, 0);
    }

    while (have_current) {
      // Start the next block's input DMA before computing (double buffer).
      WorkBlock next{};
      bool have_next = false;
      if (desc.double_buffer) {
        have_next = task->pop_block(&next);
        if (have_next && desc.in_block_bytes > 0) {
          cellsim::spu::mfc_get_any(in_buf[1 - g],
                                    cellsim::ea_of(next.in),
                                    desc.in_block_bytes, 1 - g);
        }
      }

      // Await this block's input, run the kernel, push the output.
      if (desc.in_block_bytes > 0) {
        cellsim::spu::mfc_write_tag_mask(1u << g);
        cellsim::spu::mfc_read_tag_status_all();
      }
      desc.kernel(
          cellsim::spu::ls_ptr(in_buf[desc.double_buffer ? g : 0], in_sz),
          desc.in_block_bytes, cellsim::spu::ls_ptr(out_ls, out_sz),
          desc.out_block_bytes);
      clock.advance(desc.compute_per_block);
      if (desc.out_block_bytes > 0) {
        cellsim::spu::mfc_put_any(out_ls, cellsim::ea_of(current.out),
                                  desc.out_block_bytes, g);
        cellsim::spu::mfc_write_tag_mask(1u << g);
        cellsim::spu::mfc_read_tag_status_all();
      }
      {
        std::lock_guard lock(task->mu_);
        ++task->processed_;
        ++task->per_spe_[lane_id];
      }

      if (!desc.double_buffer) {
        have_next = task->pop_block(&next);
        if (have_next && desc.in_block_bytes > 0) {
          cellsim::spu::mfc_get_any(in_buf[0], cellsim::ea_of(next.in),
                                    desc.in_block_bytes, 0);
        }
      } else {
        g = 1 - g;
      }
      current = next;
      have_current = have_next;
    }
    return 0;
  };

  const cellsim::spe2::spe_program_handle_t program{
      "alf_accelerator", entry, desc_.kernel_text_bytes};
  cellsim::spe2::SpeContext ctx(spe);
  ctx.run(program, 0, 0);
  t_args = nullptr;
}

void Task::wait() {
  {
    std::lock_guard lock(mu_);
    finalized_ = true;
    cv_.notify_all();
    if (joined_) return;
    joined_ = true;
  }
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Task completion in virtual time: the latest accelerator clock.
  simtime::SimTime latest = 0;
  for (unsigned i = 0; i < blade_->spe_count(); ++i) {
    latest = std::max(latest, blade_->spe(i).clock().now());
  }
  elapsed_ = latest;
}

std::uint64_t Task::blocks_processed() const {
  std::lock_guard lock(mu_);
  return processed_;
}

std::vector<std::uint64_t> Task::per_accelerator_blocks() const {
  std::lock_guard lock(mu_);
  return per_spe_;
}

}  // namespace alf
