// alf.hpp — an ALF-shaped data-parallel framework.
//
// IBM's Accelerated Library Framework (ALF) is the second SDK communication
// library the paper examines (§II.B): "a programming environment for data-
// and task-parallel applications", which CellPilot's authors judged "too
// restrictive to be compatible with the Pilot paradigm".  This module
// reproduces ALF's shape against the simulated hardware so that the
// comparison is executable: a host-side Task carries a compute kernel and a
// queue of fixed-size work blocks; the runtime schedules the blocks over a
// set of accelerator (SPE) contexts, moving each block's input into local
// store and its output back out by DMA, with double buffering so transfer
// overlaps compute — the exact pattern ALF automates and the exact
// restriction (no arbitrary process-to-process communication) that
// motivated CellPilot.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cellsim/cell.hpp"
#include "simtime/cost_model.hpp"

namespace alf {

/// Compute kernel applied to one work block on an accelerator.  `in`/`out`
/// point into the SPE's local store (as ALF kernels see their buffers).
using ComputeKernel = void (*)(const void* in, std::size_t in_bytes,
                               void* out, std::size_t out_bytes);

/// Static description of a task.
struct TaskDesc {
  ComputeKernel kernel = nullptr;
  std::size_t in_block_bytes = 0;   ///< input bytes per work block
  std::size_t out_block_bytes = 0;  ///< output bytes per work block
  /// Modelled compute time per block on one SPE.
  simtime::SimTime compute_per_block = simtime::us(50);
  /// Accelerators (SPEs) assigned to the task.
  unsigned accelerators = 4;
  /// Local-store bytes charged for the kernel's code.
  std::size_t kernel_text_bytes = 4096;
  /// Double-buffer the input DMA (ALF's default behaviour).  Exposed so
  /// the ablation bench can measure what the overlap buys.
  bool double_buffer = true;
};

/// One data-parallel task: queue work blocks, finalize, wait.
class Task {
 public:
  ~Task();

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  /// Enqueues one work block (host-memory input/output pointers; must stay
  /// valid until wait() returns).  Invalid after finalize().
  void add_work_block(const void* in, void* out);

  /// Declares the block list complete; accelerators drain and stop.
  void finalize();

  /// Blocks until every work block has been processed (implies finalize()).
  void wait();

  /// Number of blocks processed so far.
  std::uint64_t blocks_processed() const;

  /// Virtual time at which the last block completed (max over SPEs), as an
  /// offset from the task's start.  Valid after wait().
  simtime::SimTime elapsed() const { return elapsed_; }

  /// Per-accelerator block counts (load-balance visibility).  Valid after
  /// wait().
  std::vector<std::uint64_t> per_accelerator_blocks() const;

 private:
  friend class Runtime;
  Task(cellsim::CellBlade& blade, const simtime::CostModel& cost,
       TaskDesc desc, unsigned first_spe);

  struct WorkBlock {
    const void* in;
    void* out;
  };

  void accelerator_main(unsigned spe_index, unsigned lane);
  bool pop_block(WorkBlock* out);

  cellsim::CellBlade* blade_;
  const simtime::CostModel* cost_;
  TaskDesc desc_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<WorkBlock> queue_;
  bool finalized_ = false;
  std::uint64_t processed_ = 0;
  std::vector<std::uint64_t> per_spe_;
  std::vector<std::thread> workers_;
  bool joined_ = false;
  simtime::SimTime elapsed_ = 0;
};

/// The ALF host runtime bound to one Cell blade.
class Runtime {
 public:
  /// Binds to `blade` (borrowed; must outlive the runtime and its tasks).
  Runtime(cellsim::CellBlade& blade, const simtime::CostModel& cost);

  /// Creates a task running on `desc.accelerators` SPEs starting at SPE
  /// `first_spe`.  Throws std::invalid_argument on a bad description.
  std::unique_ptr<Task> create_task(TaskDesc desc, unsigned first_spe = 0);

 private:
  cellsim::CellBlade* blade_;
  const simtime::CostModel* cost_;
};

}  // namespace alf
