#include "cmlsim/cml.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "cellsim/libspe2.hpp"
#include "cellsim/spu.hpp"
#include "mpisim/launcher.hpp"
#include "mpisim/mpi.hpp"

namespace cml {
namespace {

using simtime::SimTime;

constexpr int kTagShutdown = mpisim::kReservedTagBase + 70;

/// Request opcodes (SPE -> daemon, 3 mailbox words).
enum class Op : std::uint32_t { kSend = 1, kRecv = 2 };

constexpr int kRequestWords = 3;

constexpr std::uint32_t pack(Op op, int peer) {
  return (static_cast<std::uint32_t>(op) << 24) |
         (static_cast<std::uint32_t>(peer) & 0x00FFFFFFu);
}

/// MPI tag encoding one (src, dst) rank pair's stream.
constexpr int pair_tag(int src, int dst) { return src * 16384 + dst; }

struct Job {
  explicit Job(const JobConfig& config)
      : cfg(config),
        world(make_ranks(config), cfg.cost) {
    for (int n = 0; n < cfg.nodes; ++n) {
      blades.push_back(std::make_unique<cellsim::CellBlade>(
          "cml" + std::to_string(n), cfg.cost, cfg.spes_per_node));
    }
    world.on_abort([this] {
      for (auto& b : blades) b->shutdown();
    });
  }

  static std::vector<mpisim::RankInfo> make_ranks(const JobConfig& config) {
    std::vector<mpisim::RankInfo> ranks;
    for (int n = 0; n < config.nodes; ++n) {
      ranks.push_back({simtime::CoreKind::kPpe, n,
                       "cml" + std::to_string(n) + ".daemon"});
    }
    return ranks;
  }

  int size() const {
    return cfg.nodes * static_cast<int>(cfg.spes_per_node);
  }
  int node_of(int rank) const {
    return rank / static_cast<int>(cfg.spes_per_node);
  }
  unsigned spe_index_of(int rank) const {
    return static_cast<unsigned>(rank) % cfg.spes_per_node;
  }
  cellsim::Spe& spe_of(int rank) {
    return blades[static_cast<std::size_t>(node_of(rank))]->spe(
        spe_index_of(rank));
  }
  /// The representative rank of a node (its rank 0).
  int rep(int node) const {
    return node * static_cast<int>(cfg.spes_per_node);
  }

  JobConfig cfg;
  std::vector<std::unique_ptr<cellsim::CellBlade>> blades;
  mpisim::World world;
};

/// SPE-thread binding.
struct CmlEnv {
  Job* job = nullptr;
  int rank = -1;
};
thread_local CmlEnv t_env;
thread_local const SpeMain* t_main = nullptr;

CmlEnv& env() {
  if (t_env.job == nullptr) {
    throw std::logic_error("CML operation called outside a CML SPE rank");
  }
  return t_env;
}

/// Issues one request and stalls for the completion word.
void request_and_wait(Op op, int peer, cellsim::LsAddr ls,
                      std::uint32_t bytes) {
  cellsim::spu::spu_write_out_mbox(pack(op, peer));
  cellsim::spu::spu_write_out_mbox(ls);
  cellsim::spu::spu_write_out_mbox(bytes);
  const std::uint32_t status = cellsim::spu::spu_read_in_mbox();
  if (status != 0) {
    throw std::runtime_error("CML: transfer failed (status " +
                             std::to_string(status) + ")");
  }
}

// --- the PPE daemon -----------------------------------------------------------

class Daemon {
 public:
  Daemon(mpisim::Mpi& mpi, Job& job, int node)
      : mpi_(mpi), job_(job), node_(node),
        assembly_(job.cfg.spes_per_node) {}

  int run() {
    for (;;) {
      bool progress = false;
      if (mpi_.iprobe(mpisim::kAnySource, kTagShutdown)) {
        std::uint8_t poison = 0;
        mpi_.recv_internal(&poison, 1, mpisim::kAnySource, kTagShutdown);
        return 0;
      }
      // Drain local SPE requests.
      for (unsigned s = 0; s < job_.cfg.spes_per_node; ++s) {
        cellsim::Spe& spe =
            job_.blades[static_cast<std::size_t>(node_)]->spe(s);
        while (auto entry = spe.outbound_mailbox().try_pop()) {
          progress = true;
          mpi_.clock().join(entry->stamp);
          mpi_.clock().advance(job_.cfg.cost.mbox_ppe_read);
          Assembly& a = assembly_[s];
          a.words[a.n++] = entry->value;
          if (a.n == kRequestWords) {
            a.n = 0;
            handle(s, a.words);
          }
        }
      }
      // Progress recvs waiting on remote data.
      for (auto it = pending_recvs_.begin(); it != pending_recvs_.end();) {
        if (it->second.remote && try_remote_recv(it->first, it->second)) {
          progress = true;
          it = pending_recvs_.erase(it);
        } else {
          ++it;
        }
      }
      if (!progress) {
        std::this_thread::sleep_for(std::chrono::microseconds(40));
      }
    }
  }

 private:
  struct Assembly {
    std::uint32_t words[kRequestWords] = {};
    int n = 0;
  };
  struct Pending {
    int self_rank = 0;  ///< requesting rank
    cellsim::LsAddr ls = 0;
    std::uint32_t bytes = 0;
    bool remote = false;  ///< peer lives on another node
  };
  using PairKey = std::pair<int, int>;  // (src, dst)

  void complete(int rank, std::uint32_t status) {
    mpi_.clock().advance(job_.cfg.cost.mbox_ppe_write);
    job_.spe_of(rank).inbound_mailbox().push_blocking(status,
                                                      mpi_.clock().now());
  }

  void local_transfer(const Pending& send, const Pending& recv) {
    if (send.bytes != recv.bytes) {
      complete(send.self_rank, 2);
      complete(recv.self_rank, 2);
      return;
    }
    cellsim::Spe& src = job_.spe_of(send.self_rank);
    cellsim::Spe& dst = job_.spe_of(recv.self_rank);
    std::memcpy(dst.local_store().at(recv.ls, recv.bytes),
                src.local_store().at(send.ls, send.bytes), send.bytes);
    mpi_.clock().advance(2 * job_.cfg.cost.copilot_ls_access(send.bytes));
    complete(send.self_rank, 0);
    complete(recv.self_rank, 0);
  }

  bool try_remote_recv(const PairKey& key, const Pending& recv) {
    const int src_daemon = job_.node_of(key.first);
    const int tag = pair_tag(key.first, key.second);
    if (!mpi_.iprobe(src_daemon, tag)) return false;
    mpisim::Status st;
    std::vector<std::byte> data = mpi_.recv_any_size(src_daemon, tag, &st);
    mpi_.clock().advance(job_.cfg.cost.copilot_dispatch_remote);
    if (data.size() != recv.bytes) {
      complete(recv.self_rank, 2);
      return true;
    }
    cellsim::Spe& dst = job_.spe_of(recv.self_rank);
    std::memcpy(dst.local_store().at(recv.ls, recv.bytes), data.data(),
                data.size());
    mpi_.clock().advance(job_.cfg.cost.copilot_ls_access(recv.bytes));
    complete(recv.self_rank, 0);
    return true;
  }

  void handle(unsigned spe_index, const std::uint32_t words[kRequestWords]) {
    mpi_.clock().advance(job_.cfg.cost.copilot_service / 2);  // lean library
    const Op op = static_cast<Op>(words[0] >> 24);
    const int peer = static_cast<int>(words[0] & 0x00FFFFFFu);
    const int self =
        job_.rep(node_) + static_cast<int>(spe_index);
    Pending p{self, words[1], words[2], job_.node_of(peer) != node_};

    if (op == Op::kSend) {
      const PairKey key{self, peer};
      if (!p.remote) {
        auto it = pending_recvs_.find(key);
        if (it != pending_recvs_.end()) {
          const Pending recv = it->second;
          pending_recvs_.erase(it);
          local_transfer(p, recv);
        } else {
          pending_sends_.emplace(key, p);
        }
      } else {
        // Eager forward to the peer's daemon.
        cellsim::Spe& src = job_.spe_of(self);
        const std::byte* buf = src.local_store().at(p.ls, p.bytes);
        mpi_.clock().advance(job_.cfg.cost.copilot_ls_access(p.bytes));
        mpi_.send_internal(buf, p.bytes, job_.node_of(peer),
                           pair_tag(self, peer));
        complete(self, 0);
      }
    } else if (op == Op::kRecv) {
      const PairKey key{peer, self};
      if (job_.node_of(peer) == node_) {
        auto it = pending_sends_.find(key);
        if (it != pending_sends_.end()) {
          const Pending send = it->second;
          pending_sends_.erase(it);
          local_transfer(send, p);
        } else {
          p.remote = false;
          pending_recvs_.emplace(key, p);
        }
      } else {
        p.remote = true;
        if (!try_remote_recv(key, p)) pending_recvs_.emplace(key, p);
      }
    } else {
      complete(self, 3);
    }
  }

  mpisim::Mpi& mpi_;
  Job& job_;
  int node_;
  std::vector<Assembly> assembly_;
  std::map<PairKey, Pending> pending_sends_;
  std::map<PairKey, Pending> pending_recvs_;
};

/// The SPE-side program wrapper.
int cml_spe_entry(std::uint64_t, std::uint64_t, std::uint64_t) {
  return (*t_main)(t_env.rank, t_env.job->size());
}

}  // namespace

JobResult run(const JobConfig& config, const SpeMain& spe_main) {
  if (config.nodes <= 0 || config.spes_per_node == 0 ||
      config.spes_per_node > 16) {
    JobResult bad;
    bad.failed = true;
    bad.error = "cml: bad job configuration";
    return bad;
  }
  Job job(config);
  JobResult result;
  result.exit_codes.assign(static_cast<std::size_t>(job.size()), 0);
  std::mutex error_mu;

  // SPE rank threads.
  std::vector<std::thread> spe_threads;
  for (int rank = 0; rank < job.size(); ++rank) {
    spe_threads.emplace_back([&, rank] {
      t_env = CmlEnv{&job, rank};
      t_main = &spe_main;
      try {
        cellsim::spe2::SpeContext ctx(job.spe_of(rank));
        const cellsim::spe2::spe_program_handle_t program{
            "cml_rank", &cml_spe_entry, 4096};
        result.exit_codes[static_cast<std::size_t>(rank)] =
            ctx.run(program, 0, 0);
      } catch (const std::exception& e) {
        {
          std::lock_guard lock(error_mu);
          if (!result.failed) {
            result.failed = true;
            result.error = "rank " + std::to_string(rank) + ": " + e.what();
          }
        }
        job.world.abort(result.error);
      }
      t_env = CmlEnv{};
      t_main = nullptr;
    });
  }

  // When every SPE rank has exited, poison the daemons.
  std::thread closer([&] {
    for (auto& t : spe_threads) t.join();
    for (int n = 0; n < config.nodes; ++n) {
      mpisim::InboundMessage poison;
      poison.source = n;
      poison.tag = kTagShutdown;
      poison.payload.resize(1);
      job.world.queue(n).deposit(std::move(poison));
    }
  });

  const mpisim::LaunchResult daemons =
      mpisim::launch(job.world, [&](mpisim::Mpi& mpi) {
        Daemon daemon(mpi, job, mpi.rank());
        return daemon.run();
      });
  closer.join();

  if (daemons.aborted && !result.failed) {
    result.failed = true;
    result.error = daemons.abort_reason;
  }
  return result;
}

// --- SPE-side operations --------------------------------------------------------

namespace {

/// RAII staging buffer in the calling SPE's local store.
class Staging {
 public:
  explicit Staging(std::size_t bytes)
      : addr_(cellsim::spu::ls_alloc(std::max<std::size_t>(bytes, 16), 16)),
        bytes_(std::max<std::size_t>(bytes, 16)) {}
  ~Staging() { cellsim::spu::ls_free(addr_); }
  cellsim::LsAddr addr() const { return addr_; }
  std::byte* ptr() {
    return static_cast<std::byte*>(cellsim::spu::ls_ptr(addr_, bytes_));
  }

 private:
  cellsim::LsAddr addr_;
  std::size_t bytes_;
};

}  // namespace

void cml_send(const void* data, std::size_t bytes, int dest) {
  CmlEnv& e = env();
  if (dest < 0 || dest >= e.job->size() || dest == e.rank) {
    throw std::invalid_argument("cml_send: bad destination rank");
  }
  cellsim::spu::self().clock().advance(e.job->cfg.cost.spu_call_overhead);
  Staging staging(bytes);
  if (bytes > 0) std::memcpy(staging.ptr(), data, bytes);
  request_and_wait(Op::kSend, dest, staging.addr(),
                   static_cast<std::uint32_t>(bytes));
}

void cml_recv(void* data, std::size_t bytes, int src) {
  CmlEnv& e = env();
  if (src < 0 || src >= e.job->size() || src == e.rank) {
    throw std::invalid_argument("cml_recv: bad source rank");
  }
  cellsim::spu::self().clock().advance(e.job->cfg.cost.spu_call_overhead);
  Staging staging(bytes);
  request_and_wait(Op::kRecv, src, staging.addr(),
                   static_cast<std::uint32_t>(bytes));
  if (bytes > 0) std::memcpy(data, staging.ptr(), bytes);
}

int cml_rank() { return env().rank; }

int cml_size() { return env().job->size(); }

simtime::VirtualClock& cml_clock() { return cellsim::spu::self().clock(); }

void cml_bcast(void* data, std::size_t bytes, int root) {
  CmlEnv& e = env();
  Job& job = *e.job;
  const int me = e.rank;
  const int root_node = job.node_of(root);
  const int my_node = job.node_of(me);
  const int spn = static_cast<int>(job.cfg.spes_per_node);

  if (me == root) {
    // Inter-node stage: one message to each other node's representative.
    for (int n = 0; n < job.cfg.nodes; ++n) {
      if (n != root_node) cml_send(data, bytes, job.rep(n));
    }
    // Intra-node stage on the root's own node.
    for (int r = job.rep(root_node); r < job.rep(root_node) + spn; ++r) {
      if (r != root) cml_send(data, bytes, r);
    }
  } else if (my_node == root_node) {
    cml_recv(data, bytes, root);
  } else if (me == job.rep(my_node)) {
    cml_recv(data, bytes, root);
    for (int r = job.rep(my_node); r < job.rep(my_node) + spn; ++r) {
      if (r != me) cml_send(data, bytes, r);
    }
  } else {
    cml_recv(data, bytes, job.rep(my_node));
  }
}

void cml_reduce_sum(const double* contrib, double* result, std::size_t count,
                    int root) {
  CmlEnv& e = env();
  Job& job = *e.job;
  const int me = e.rank;
  const int root_node = job.node_of(root);
  const int my_node = job.node_of(me);
  const int spn = static_cast<int>(job.cfg.spes_per_node);
  const std::size_t bytes = count * sizeof(double);

  std::vector<double> acc(contrib, contrib + count);
  std::vector<double> tmp(count);

  if (me == root) {
    // Own node's ranks send directly; other nodes send one partial each.
    for (int r = job.rep(root_node); r < job.rep(root_node) + spn; ++r) {
      if (r == root) continue;
      cml_recv(tmp.data(), bytes, r);
      for (std::size_t i = 0; i < count; ++i) acc[i] += tmp[i];
    }
    for (int n = 0; n < job.cfg.nodes; ++n) {
      if (n == root_node) continue;
      cml_recv(tmp.data(), bytes, job.rep(n));
      for (std::size_t i = 0; i < count; ++i) acc[i] += tmp[i];
    }
    std::memcpy(result, acc.data(), bytes);
  } else if (my_node == root_node) {
    cml_send(acc.data(), bytes, root);
  } else if (me == job.rep(my_node)) {
    for (int r = job.rep(my_node); r < job.rep(my_node) + spn; ++r) {
      if (r == me) continue;
      cml_recv(tmp.data(), bytes, r);
      for (std::size_t i = 0; i < count; ++i) acc[i] += tmp[i];
    }
    cml_send(acc.data(), bytes, root);
  } else {
    cml_send(acc.data(), bytes, job.rep(my_node));
  }
}

void cml_allreduce_sum(const double* contrib, double* result,
                       std::size_t count) {
  cml_reduce_sum(contrib, result, count, 0);
  cml_bcast(result, count * sizeof(double), 0);
}

}  // namespace cml
