// cml.hpp — a Cell Messaging Layer (CML)-shaped library.
//
// The paper's related work (§II.D) singles out CML [Pakin, IPDPS'08] as the
// one prior system usable on Cell *clusters*: "CML assigns MPI ranks to all
// available SPEs, but not to PPEs, which are reserved for use by the library
// to carry out inter-Cell communication.  Available operations are MPI_Send
// and MPI_Recv, and the collective operations MPI_Bcast, MPI_Reduce and
// MPI_Allreduce, which are designed hierarchically."  The paper judged its
// limited MPI subset "infeasible … to build upon, since Pilot itself uses
// more of MPI" — and noted the key difference that with CellPilot, PPEs can
// host processes just like any non-Cell node.
//
// This module reproduces CML's shape against the simulated hardware so the
// comparison is executable:
//   * every SPE in the job is an MPI rank; PPEs run only the relay daemon;
//   * cml_send/cml_recv are blocking and rank-addressed (no channels, no
//     format strings, no type checking — the contrast with Pilot);
//   * Bcast/Reduce/Allreduce are hierarchical: SPEs to their node daemon,
//     daemons among themselves over the interconnect, and back down.
//
// Simplification vs the real CML: data staging is request-paired at the
// daemon (as in CellPilot's Co-Pilot) rather than receiver-initiated RDMA;
// the hierarchy, rank model and API surface are what the comparison needs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cellsim/cell.hpp"
#include "simtime/cost_model.hpp"
#include "simtime/sim_time.hpp"

namespace cml {

/// A CML job description: Cell nodes only (CML has no host ranks at all).
struct JobConfig {
  int nodes = 1;                 ///< Cell blades
  unsigned spes_per_node = 8;   ///< SPE ranks contributed by each blade
  simtime::CostModel cost = simtime::default_cost_model();
};

/// SPE program: receives its CML rank and the total rank count.
using SpeMain = std::function<int(int rank, int size)>;

/// Result of one CML job.
struct JobResult {
  std::vector<int> exit_codes;  ///< per SPE rank
  bool failed = false;
  std::string error;
};

/// Runs `spe_main` on every SPE rank of the described job; PPE daemons are
/// created implicitly (one per node, as in CML).  Blocking operations below
/// are callable from inside `spe_main` only.
JobResult run(const JobConfig& config, const SpeMain& spe_main);

// --- rank-addressed point-to-point (callable from SPE ranks) ----------------

/// Blocking send of `bytes` at `data` to `dest` rank.
void cml_send(const void* data, std::size_t bytes, int dest);

/// Blocking receive of exactly `bytes` into `data` from `src` rank.
void cml_recv(void* data, std::size_t bytes, int src);

// --- hierarchical collectives -------------------------------------------------

/// Broadcast `bytes` at `data` from `root` to every rank (all ranks call).
void cml_bcast(void* data, std::size_t bytes, int root);

/// Element-wise sum of `count` doubles to `root` (all ranks call).
void cml_reduce_sum(const double* contrib, double* result, std::size_t count,
                    int root);

/// reduce + bcast.
void cml_allreduce_sum(const double* contrib, double* result,
                       std::size_t count);

/// The calling SPE's CML rank / the job's rank count.
int cml_rank();
int cml_size();

/// The calling SPE's virtual clock (for measurements inside spe_main).
simtime::VirtualClock& cml_clock();

}  // namespace cml
