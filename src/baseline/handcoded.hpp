// handcoded.hpp — the paper's hand-coded comparison transfers.
//
// Table II compares CellPilot against what a Cell programmer would write by
// hand against the SDK, in two styles:
//
//   * DMA  — the SPE moves data with MFC commands (mfc_get/mfc_put + tag
//     waits), synchronized by mailboxes and signal registers.  Intra-node
//     SPE<->SPE transfers stage through main memory (put, then get), which
//     is why the paper's type-4 DMA time is twice its type-2 time.
//   * Copy — the PPE moves data through the memory-mapped local-store
//     window with plain memcpy (CellPilot's own mechanism, "but without the
//     generality of the Co-Pilot process").
//
// These run directly on the cellsim/mpisim substrates — no Pilot, no
// Co-Pilot — and return the PingPong one-way latency in virtual time.
#pragma once

#include <cstddef>

#include "core/protocol.hpp"
#include "simtime/cost_model.hpp"
#include "simtime/sim_time.hpp"

namespace baseline {

/// Average one-way latency of a hand-coded DMA PingPong over `reps`
/// bounces of `bytes`-byte messages across the given channel type.
/// Type 1 has no SPE endpoint; its "DMA" time is plain MPI (as in the
/// paper, where all three methods coincide for type 1).
simtime::SimTime dma_pingpong(cellpilot::ChannelType type, std::size_t bytes,
                              int reps, const simtime::CostModel& cost);

/// Same with memory-mapped-copy transfers.
simtime::SimTime copy_pingpong(cellpilot::ChannelType type, std::size_t bytes,
                               int reps, const simtime::CostModel& cost);

/// Extension ablation (not in the paper's table): intra-node SPE->SPE DMA
/// done directly between mapped local stores (one command instead of the
/// stage-through-main-memory pair).  Only valid for kType4.
simtime::SimTime dma_direct_type4_pingpong(std::size_t bytes, int reps,
                                           const simtime::CostModel& cost);

}  // namespace baseline
