#include "baseline/handcoded.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "cellsim/libspe2.hpp"
#include "cellsim/spu.hpp"
#include "mpisim/launcher.hpp"
#include "mpisim/mpi.hpp"

namespace baseline {
namespace {

using cellpilot::ChannelType;
using cellsim::EffectiveAddress;
using cellsim::Spe;
using simtime::CoreKind;
using simtime::CostModel;
using simtime::SimTime;
using simtime::VirtualClock;

/// 128-byte-aligned main-memory buffer (DMA wants quad-word alignment).
class AlignedBuffer {
 public:
  explicit AlignedBuffer(std::size_t n) {
    const std::size_t rounded = ((n == 0 ? 1 : n) + 127) / 128 * 128;
    ptr_ = std::aligned_alloc(128, rounded);
  }
  ~AlignedBuffer() { std::free(ptr_); }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  std::byte* data() { return static_cast<std::byte*>(ptr_); }
  EffectiveAddress ea() const { return cellsim::ea_of(ptr_); }

 private:
  void* ptr_;
};

/// PPE-side poll of an SPE outbound mailbox: spins (in real time) until a
/// word arrives, charging the MMIO read and joining the sender's stamp.
std::uint32_t ppe_poll(cellsim::Mailbox& mb, VirtualClock& clk,
                       const CostModel& cost) {
  for (;;) {
    if (auto e = mb.try_pop()) {
      clk.join(e->stamp);
      clk.advance(cost.mbox_ppe_read);
      return e->value;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  }
}

/// PPE-side write of an SPE inbound mailbox.
void ppe_notify(Spe& spe, VirtualClock& clk, const CostModel& cost) {
  clk.advance(cost.mbox_ppe_write);
  spe.inbound_mailbox().push_blocking(1, clk.now());
}

/// PPE-side memcpy through the memory-mapped local-store window.
void ppe_mapped_copy_in(Spe& spe, cellsim::LsAddr ls, const std::byte* src,
                        std::size_t n, VirtualClock& clk,
                        const CostModel& cost) {
  std::memcpy(spe.local_store().at(ls, n), src, n);
  clk.advance(cost.mapped_copy(n));
}

void ppe_mapped_copy_out(Spe& spe, cellsim::LsAddr ls, std::byte* dst,
                         std::size_t n, VirtualClock& clk,
                         const CostModel& cost) {
  std::memcpy(dst, spe.local_store().at(ls, n), n);
  clk.advance(cost.mapped_copy(n));
}

/// Parameters handed to baseline SPE programs through argp.
struct Params {
  EffectiveAddress main_fwd = 0;  ///< main-memory staging, forward leg
  EffectiveAddress main_rev = 0;  ///< main-memory staging, reverse leg
  Spe* peer = nullptr;            ///< peer SPE (type-4 signalling)
  std::uint32_t bytes = 0;
  int reps = 0;
  std::atomic<SimTime>* elapsed = nullptr;  ///< initiator's measured span
};

/// The fixed LS address the baselines stage data at (hand-coded programs
/// use a static buffer; we allocate one and remember it).
cellsim::LsAddr spe_buffer(std::uint32_t bytes) {
  return cellsim::spu::ls_alloc(std::max<std::size_t>(bytes, 16), 128);
}

void dma_in(cellsim::LsAddr ls, EffectiveAddress ea, std::uint32_t bytes) {
  cellsim::spu::mfc_get_any(ls, ea, bytes, 0);
  cellsim::spu::mfc_write_tag_mask(1);
  cellsim::spu::mfc_read_tag_status_all();
}

void dma_out(cellsim::LsAddr ls, EffectiveAddress ea, std::uint32_t bytes) {
  cellsim::spu::mfc_put_any(ls, ea, bytes, 0);
  cellsim::spu::mfc_write_tag_mask(1);
  cellsim::spu::mfc_read_tag_status_all();
}

Params& params_of(std::uint64_t argp) {
  return *static_cast<Params*>(
      cellsim::ptr_of(static_cast<EffectiveAddress>(argp)));
}

// --- SPE programs -----------------------------------------------------------

/// Types 2/3/5 responder, DMA style: on "go", pull the message from main
/// memory, push the reply back, raise "done".
int spe_dma_responder(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  Params& p = params_of(argp);
  const cellsim::LsAddr ls = spe_buffer(p.bytes);
  for (int i = 0; i < p.reps; ++i) {
    cellsim::spu::spu_read_in_mbox();
    dma_in(ls, p.main_fwd, p.bytes);
    dma_out(ls, p.main_rev, p.bytes);
    cellsim::spu::spu_write_out_mbox(1);
  }
  return 0;
}

/// Types 2/3/5 responder, Copy style: the PPE moves the data; the SPE only
/// handshakes.  The buffer's LS address is announced through the outbound
/// mailbox first, as a hand-coded program would arrange.
int spe_copy_responder(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  Params& p = params_of(argp);
  const cellsim::LsAddr ls = spe_buffer(p.bytes);
  cellsim::spu::spu_write_out_mbox(ls);
  for (int i = 0; i < p.reps; ++i) {
    cellsim::spu::spu_read_in_mbox();
    cellsim::spu::spu_write_out_mbox(1);
  }
  return 0;
}

/// Type-4 initiator, DMA style: stage to main memory, signal the peer,
/// await its signal, pull the reply.  Measures its own span.
int spe_dma_initiator4(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  Params& p = params_of(argp);
  const cellsim::LsAddr ls = spe_buffer(p.bytes);
  VirtualClock& clk = cellsim::spu::self().clock();
  const SimTime start = clk.now();
  const CostModel& cost = *cellsim::spu::env().cost;
  for (int i = 0; i < p.reps; ++i) {
    dma_out(ls, p.main_fwd, p.bytes);
    clk.advance(cost.handcoded_sync);
    p.peer->signal(0).send(1, clk.now());
    cellsim::spu::spu_read_signal(0);
    dma_in(ls, p.main_rev, p.bytes);
  }
  p.elapsed->store(clk.now() - start);
  return 0;
}

/// Type-4 responder, DMA style.
int spe_dma_responder4(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  Params& p = params_of(argp);
  const cellsim::LsAddr ls = spe_buffer(p.bytes);
  VirtualClock& clk = cellsim::spu::self().clock();
  const CostModel& cost = *cellsim::spu::env().cost;
  for (int i = 0; i < p.reps; ++i) {
    cellsim::spu::spu_read_signal(0);
    dma_in(ls, p.main_fwd, p.bytes);
    dma_out(ls, p.main_rev, p.bytes);
    clk.advance(cost.handcoded_sync);
    p.peer->signal(0).send(1, clk.now());
  }
  return 0;
}

/// Type-4 extension: direct LS->LS DMA, one command, no main-memory stage.
int spe_dma_direct_initiator4(std::uint64_t, std::uint64_t argp,
                              std::uint64_t) {
  Params& p = params_of(argp);
  const cellsim::LsAddr ls = spe_buffer(p.bytes);
  // Peer's buffer is at the same LS offset; its store is memory-mapped.
  const EffectiveAddress peer_ea =
      p.peer->ls_effective_base() + ls;  // same allocation order both sides
  VirtualClock& clk = cellsim::spu::self().clock();
  const SimTime start = clk.now();
  const CostModel& cost = *cellsim::spu::env().cost;
  for (int i = 0; i < p.reps; ++i) {
    dma_out(ls, peer_ea, p.bytes);
    clk.advance(cost.handcoded_sync);
    p.peer->signal(0).send(1, clk.now());
    cellsim::spu::spu_read_signal(0);  // reply already DMA'd into our LS
  }
  p.elapsed->store(clk.now() - start);
  return 0;
}

int spe_dma_direct_responder4(std::uint64_t, std::uint64_t argp,
                              std::uint64_t) {
  Params& p = params_of(argp);
  const cellsim::LsAddr ls = spe_buffer(p.bytes);
  const EffectiveAddress peer_ea = p.peer->ls_effective_base() + ls;
  VirtualClock& clk = cellsim::spu::self().clock();
  const CostModel& cost = *cellsim::spu::env().cost;
  for (int i = 0; i < p.reps; ++i) {
    cellsim::spu::spu_read_signal(0);
    dma_out(ls, peer_ea, p.bytes);
    clk.advance(cost.handcoded_sync);
    p.peer->signal(0).send(1, clk.now());
  }
  return 0;
}

/// Type-4 Copy endpoints: the PPE relays; SPEs handshake through their
/// mailboxes.  The initiator measures.
int spe_copy_initiator4(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  Params& p = params_of(argp);
  cellsim::spu::spu_write_out_mbox(spe_buffer(p.bytes));
  VirtualClock& clk = cellsim::spu::self().clock();
  const SimTime start = clk.now();
  for (int i = 0; i < p.reps; ++i) {
    cellsim::spu::spu_write_out_mbox(1);  // my data is ready
    cellsim::spu::spu_read_in_mbox();     // reply has landed in my LS
  }
  p.elapsed->store(clk.now() - start);
  return 0;
}

int spe_copy_responder4(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  Params& p = params_of(argp);
  cellsim::spu::spu_write_out_mbox(spe_buffer(p.bytes));
  for (int i = 0; i < p.reps; ++i) {
    cellsim::spu::spu_read_in_mbox();     // message landed in my LS
    cellsim::spu::spu_write_out_mbox(1);  // reply is ready
  }
  return 0;
}

/// Type-5 initiator (both styles): DMA stages through main memory and uses
/// mailboxes toward the node's PPE; Copy only handshakes (PPE copies).
int spe_dma_initiator5(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  Params& p = params_of(argp);
  const cellsim::LsAddr ls = spe_buffer(p.bytes);
  VirtualClock& clk = cellsim::spu::self().clock();
  const SimTime start = clk.now();
  for (int i = 0; i < p.reps; ++i) {
    dma_out(ls, p.main_fwd, p.bytes);
    cellsim::spu::spu_write_out_mbox(1);  // tell my PPE to ship it
    cellsim::spu::spu_read_in_mbox();     // reply is in main memory
    dma_in(ls, p.main_rev, p.bytes);
  }
  p.elapsed->store(clk.now() - start);
  return 0;
}

int spe_dma_responder5(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  Params& p = params_of(argp);
  const cellsim::LsAddr ls = spe_buffer(p.bytes);
  for (int i = 0; i < p.reps; ++i) {
    cellsim::spu::spu_read_in_mbox();  // message is in main memory
    dma_in(ls, p.main_fwd, p.bytes);
    dma_out(ls, p.main_rev, p.bytes);
    cellsim::spu::spu_write_out_mbox(1);  // reply staged; ship it
  }
  return 0;
}

int spe_copy_initiator5(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  Params& p = params_of(argp);
  cellsim::spu::spu_write_out_mbox(spe_buffer(p.bytes));
  VirtualClock& clk = cellsim::spu::self().clock();
  const SimTime start = clk.now();
  for (int i = 0; i < p.reps; ++i) {
    cellsim::spu::spu_write_out_mbox(1);
    cellsim::spu::spu_read_in_mbox();
  }
  p.elapsed->store(clk.now() - start);
  return 0;
}

int spe_copy_responder5(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  Params& p = params_of(argp);
  cellsim::spu::spu_write_out_mbox(spe_buffer(p.bytes));
  for (int i = 0; i < p.reps; ++i) {
    cellsim::spu::spu_read_in_mbox();
    cellsim::spu::spu_write_out_mbox(1);
  }
  return 0;
}

/// Runs `entry` on `spe` in a fresh thread (the PPE-side pthread of the
/// hand-coded pattern).
std::thread run_spe_program(Spe& spe, cellsim::spe2::SpeEntry entry,
                            const char* name, Params* params) {
  return std::thread([&spe, entry, name, params] {
    cellsim::spe2::SpeContext ctx(spe);
    const cellsim::spe2::spe_program_handle_t program{name, entry, 2048};
    ctx.run(program, cellsim::ea_of(params), 0);
  });
}

// --- PingPong drivers per type ----------------------------------------------

SimTime type1(std::size_t bytes, int reps, const CostModel& cost) {
  mpisim::World world({{CoreKind::kPpe, 0, "a"}, {CoreKind::kPpe, 1, "b"}},
                      cost);
  std::atomic<SimTime> elapsed{0};
  mpisim::launch(world, [&](mpisim::Mpi& mpi) {
    std::vector<std::byte> buf(bytes);
    if (mpi.rank() == 0) {
      simtime::ClockSpan span(mpi.clock());
      for (int i = 0; i < reps; ++i) {
        mpi.send(buf.data(), bytes, 1, 1);
        mpi.recv(buf.data(), bytes, 1, 2);
      }
      elapsed.store(span.elapsed());
    } else {
      for (int i = 0; i < reps; ++i) {
        mpi.recv(buf.data(), bytes, 0, 1);
        mpi.send(buf.data(), bytes, 0, 2);
      }
    }
    return 0;
  });
  return elapsed.load() / (2 * reps);
}

SimTime type2(std::size_t bytes, int reps, const CostModel& cost, bool dma) {
  Spe spe(0, "hb.spe0", cost);
  VirtualClock ppe_clock;
  AlignedBuffer fwd(bytes);
  AlignedBuffer rev(bytes);

  Params params;
  params.main_fwd = fwd.ea();
  params.main_rev = rev.ea();
  params.bytes = static_cast<std::uint32_t>(bytes);
  params.reps = reps;

  std::thread spe_thread = run_spe_program(
      spe, dma ? &spe_dma_responder : &spe_copy_responder,
      dma ? "dma_responder" : "copy_responder", &params);

  // The Copy responder announces its LS buffer address first (setup, not
  // part of the timed loop).
  cellsim::LsAddr ls = 0;
  if (!dma) ls = ppe_poll(spe.outbound_mailbox(), ppe_clock, cost);

  SimTime result = 0;
  {
    simtime::ClockSpan span(ppe_clock);
    std::vector<std::byte> scratch(bytes);
    for (int i = 0; i < reps; ++i) {
      if (!dma) {
        ppe_mapped_copy_in(spe, ls, scratch.data(), bytes, ppe_clock, cost);
      }
      ppe_notify(spe, ppe_clock, cost);
      ppe_poll(spe.outbound_mailbox(), ppe_clock, cost);
      if (!dma) {
        ppe_mapped_copy_out(spe, ls, scratch.data(), bytes, ppe_clock, cost);
      }
    }
    result = span.elapsed();
  }
  spe_thread.join();
  return result / (2 * reps);
}

SimTime type3(std::size_t bytes, int reps, const CostModel& cost, bool dma) {
  mpisim::World world({{CoreKind::kPpe, 0, "a"}, {CoreKind::kPpe, 1, "b"}},
                      cost);
  Spe spe(0, "hb.spe0", cost);
  AlignedBuffer fwd(bytes);
  AlignedBuffer rev(bytes);

  Params params;
  params.main_fwd = fwd.ea();
  params.main_rev = rev.ea();
  params.bytes = static_cast<std::uint32_t>(bytes);
  params.reps = reps;

  std::thread spe_thread = run_spe_program(
      spe, dma ? &spe_dma_responder : &spe_copy_responder,
      dma ? "dma_responder" : "copy_responder", &params);

  std::atomic<SimTime> elapsed{0};
  mpisim::launch(world, [&](mpisim::Mpi& mpi) {
    if (mpi.rank() == 0) {
      std::vector<std::byte> buf(bytes);
      simtime::ClockSpan span(mpi.clock());
      for (int i = 0; i < reps; ++i) {
        mpi.send(buf.data(), bytes, 1, 1);
        mpi.recv(buf.data(), bytes, 1, 2);
      }
      elapsed.store(span.elapsed());
    } else {
      cellsim::LsAddr ls = 0;
      if (!dma) ls = ppe_poll(spe.outbound_mailbox(), mpi.clock(), cost);
      for (int i = 0; i < reps; ++i) {
        mpi.recv(fwd.data(), bytes, 0, 1);
        if (!dma) {
          ppe_mapped_copy_in(spe, ls, fwd.data(), bytes, mpi.clock(), cost);
        }
        ppe_notify(spe, mpi.clock(), cost);
        ppe_poll(spe.outbound_mailbox(), mpi.clock(), cost);
        if (!dma) {
          ppe_mapped_copy_out(spe, ls, rev.data(), bytes, mpi.clock(), cost);
        }
        mpi.send(rev.data(), bytes, 0, 2);
      }
    }
    return 0;
  });
  spe_thread.join();
  return elapsed.load() / (2 * reps);
}

SimTime type4(std::size_t bytes, int reps, const CostModel& cost, bool dma) {
  Spe spe_a(0, "hb.spe0", cost);
  Spe spe_b(1, "hb.spe1", cost);
  AlignedBuffer fwd(bytes);
  AlignedBuffer rev(bytes);
  std::atomic<SimTime> elapsed{0};

  Params pa;
  pa.main_fwd = fwd.ea();
  pa.main_rev = rev.ea();
  pa.peer = &spe_b;
  pa.bytes = static_cast<std::uint32_t>(bytes);
  pa.reps = reps;
  pa.elapsed = &elapsed;

  Params pb = pa;
  pb.peer = &spe_a;
  pb.elapsed = nullptr;

  std::thread ta = run_spe_program(
      spe_a, dma ? &spe_dma_initiator4 : &spe_copy_initiator4, "init4", &pa);
  std::thread tb = run_spe_program(
      spe_b, dma ? &spe_dma_responder4 : &spe_copy_responder4, "resp4", &pb);

  if (!dma) {
    // The Copy style needs the PPE to relay between the two local stores
    // (through a staging buffer, hence two mapped copies per leg).
    VirtualClock ppe_clock;
    std::vector<std::byte> stage(bytes);
    const cellsim::LsAddr ls_a =
        ppe_poll(spe_a.outbound_mailbox(), ppe_clock, cost);
    const cellsim::LsAddr ls_b =
        ppe_poll(spe_b.outbound_mailbox(), ppe_clock, cost);
    for (int i = 0; i < reps; ++i) {
      ppe_poll(spe_a.outbound_mailbox(), ppe_clock, cost);
      ppe_mapped_copy_out(spe_a, ls_a, stage.data(), bytes, ppe_clock, cost);
      ppe_mapped_copy_in(spe_b, ls_b, stage.data(), bytes, ppe_clock, cost);
      ppe_notify(spe_b, ppe_clock, cost);
      ppe_poll(spe_b.outbound_mailbox(), ppe_clock, cost);
      ppe_mapped_copy_out(spe_b, ls_b, stage.data(), bytes, ppe_clock, cost);
      ppe_mapped_copy_in(spe_a, ls_a, stage.data(), bytes, ppe_clock, cost);
      ppe_notify(spe_a, ppe_clock, cost);
    }
  }

  ta.join();
  tb.join();
  return elapsed.load() / (2 * reps);
}

SimTime type4_direct(std::size_t bytes, int reps, const CostModel& cost) {
  Spe spe_a(0, "hb.spe0", cost);
  Spe spe_b(1, "hb.spe1", cost);
  std::atomic<SimTime> elapsed{0};

  Params pa;
  pa.peer = &spe_b;
  pa.bytes = static_cast<std::uint32_t>(bytes);
  pa.reps = reps;
  pa.elapsed = &elapsed;
  Params pb = pa;
  pb.peer = &spe_a;
  pb.elapsed = nullptr;

  std::thread ta =
      run_spe_program(spe_a, &spe_dma_direct_initiator4, "dinit4", &pa);
  std::thread tb =
      run_spe_program(spe_b, &spe_dma_direct_responder4, "dresp4", &pb);
  ta.join();
  tb.join();
  return elapsed.load() / (2 * reps);
}

SimTime type5(std::size_t bytes, int reps, const CostModel& cost, bool dma) {
  mpisim::World world({{CoreKind::kPpe, 0, "a"}, {CoreKind::kPpe, 1, "b"}},
                      cost);
  Spe spe_a(0, "hb.spe0", cost);
  Spe spe_b(1, "hb.spe1", cost);
  AlignedBuffer buf_a_fwd(bytes), buf_a_rev(bytes);
  AlignedBuffer buf_b_fwd(bytes), buf_b_rev(bytes);
  std::atomic<SimTime> elapsed{0};

  Params pa;
  pa.main_fwd = buf_a_fwd.ea();
  pa.main_rev = buf_a_rev.ea();
  pa.bytes = static_cast<std::uint32_t>(bytes);
  pa.reps = reps;
  pa.elapsed = &elapsed;

  Params pb;
  pb.main_fwd = buf_b_fwd.ea();
  pb.main_rev = buf_b_rev.ea();
  pb.bytes = static_cast<std::uint32_t>(bytes);
  pb.reps = reps;

  std::thread ta = run_spe_program(
      spe_a, dma ? &spe_dma_initiator5 : &spe_copy_initiator5, "init5", &pa);
  std::thread tb = run_spe_program(
      spe_b, dma ? &spe_dma_responder5 : &spe_copy_responder5, "resp5", &pb);

  mpisim::launch(world, [&](mpisim::Mpi& mpi) {
    if (mpi.rank() == 0) {
      cellsim::LsAddr ls = 0;
      if (!dma) ls = ppe_poll(spe_a.outbound_mailbox(), mpi.clock(), cost);
      for (int i = 0; i < reps; ++i) {
        ppe_poll(spe_a.outbound_mailbox(), mpi.clock(), cost);
        if (!dma) {
          // One mapped copy per leg: copy out of A's LS for the send, but
          // receive the reply straight into the mapped LS window.
          ppe_mapped_copy_out(spe_a, ls, buf_a_fwd.data(), bytes,
                              mpi.clock(), cost);
          mpi.send(buf_a_fwd.data(), bytes, 1, 1);
          mpi.recv(spe_a.local_store().at(ls, bytes), bytes, 1, 2);
        } else {
          mpi.send(buf_a_fwd.data(), bytes, 1, 1);
          mpi.recv(buf_a_rev.data(), bytes, 1, 2);
        }
        ppe_notify(spe_a, mpi.clock(), cost);
      }
    } else {
      cellsim::LsAddr ls = 0;
      if (!dma) ls = ppe_poll(spe_b.outbound_mailbox(), mpi.clock(), cost);
      for (int i = 0; i < reps; ++i) {
        if (!dma) {
          mpi.recv(spe_b.local_store().at(ls, bytes), bytes, 0, 1);
        } else {
          mpi.recv(buf_b_fwd.data(), bytes, 0, 1);
        }
        ppe_notify(spe_b, mpi.clock(), cost);
        ppe_poll(spe_b.outbound_mailbox(), mpi.clock(), cost);
        if (!dma) {
          ppe_mapped_copy_out(spe_b, ls, buf_b_rev.data(), bytes,
                              mpi.clock(), cost);
        }
        mpi.send(buf_b_rev.data(), bytes, 0, 2);
      }
    }
    return 0;
  });
  ta.join();
  tb.join();
  return elapsed.load() / (2 * reps);
}

SimTime dispatch(ChannelType type, std::size_t bytes, int reps,
                 const CostModel& cost, bool dma) {
  switch (type) {
    case ChannelType::kType1: return type1(bytes, reps, cost);
    case ChannelType::kType2: return type2(bytes, reps, cost, dma);
    case ChannelType::kType3: return type3(bytes, reps, cost, dma);
    case ChannelType::kType4: return type4(bytes, reps, cost, dma);
    case ChannelType::kType5: return type5(bytes, reps, cost, dma);
  }
  return 0;
}

}  // namespace

SimTime dma_pingpong(ChannelType type, std::size_t bytes, int reps,
                     const CostModel& cost) {
  return dispatch(type, bytes, reps, cost, /*dma=*/true);
}

SimTime copy_pingpong(ChannelType type, std::size_t bytes, int reps,
                      const CostModel& cost) {
  return dispatch(type, bytes, reps, cost, /*dma=*/false);
}

SimTime dma_direct_type4_pingpong(std::size_t bytes, int reps,
                                  const CostModel& cost) {
  return type4_direct(bytes, reps, cost);
}

}  // namespace baseline
