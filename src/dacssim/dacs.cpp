#include "dacssim/dacs.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "cellsim/spu.hpp"

namespace dacs {

namespace {

/// Trampoline state: the real entry of the AE program being started.
thread_local cellsim::spe2::SpeEntry t_real_entry = nullptr;

/// AE-side runtime init: charge the libdacs footprint, then run the user
/// program.
int dacs_ae_entry(std::uint64_t speid, std::uint64_t argp,
                  std::uint64_t envp) {
  cellsim::spu::self().allocator().reserve_segment("text:libdacs",
                                                   kDacsSpuFootprintBytes);
  return t_real_entry(speid, argp, envp);
}

}  // namespace

struct Runtime::Impl {
  std::mutex mu;

  struct AeState {
    std::thread thread;
    std::atomic<int> exit_status{0};
    std::atomic<bool> done{false};
  };
  std::map<std::int32_t, std::unique_ptr<AeState>> aes;

  struct Region {
    void* addr = nullptr;
    std::size_t size = 0;
  };
  std::map<std::uint64_t, Region> regions;
  std::uint64_t next_region = 1;

  std::map<wid_t, simtime::SimTime> wid_completion;
  wid_t next_wid = 1;
};

Runtime::Runtime(cellsim::CellBlade& blade, const simtime::CostModel& cost)
    : blade_(&blade), cost_(&cost), impl_(std::make_unique<Impl>()) {}

Runtime::~Runtime() {
  for (auto& [id, ae] : impl_->aes) {
    if (ae->thread.joinable()) ae->thread.join();
  }
}

dacs_rc dacs_de_start(Runtime& rt, de_id_t ae,
                      const cellsim::spe2::spe_program_handle_t& program,
                      std::uint64_t argp) {
  if (ae.value < 0 ||
      ae.value >= static_cast<std::int32_t>(rt.blade().spe_count())) {
    return DACS_ERR_INVALID_TARGET;
  }
  if (program.entry == nullptr) return DACS_ERR_INVALID_HANDLE;

  auto state = std::make_unique<Runtime::Impl::AeState>();
  auto* raw = state.get();
  cellsim::Spe& spe = rt.blade().spe(static_cast<unsigned>(ae.value));
  const simtime::SimTime stamp = rt.he_clock().now();

  raw->thread = std::thread([&rt, &spe, &program, argp, raw, stamp] {
    spe.clock().join(stamp);
    t_real_entry = program.entry;
    const cellsim::spe2::spe_program_handle_t wrapped{
        program.name, &dacs_ae_entry, program.text_bytes};
    int status = 0;
    try {
      cellsim::spe2::SpeContext ctx(spe);
      status = ctx.run(wrapped, argp, 0);
    } catch (const std::exception&) {
      status = -1;
    }
    (void)rt;
    raw->exit_status.store(status);
    raw->done.store(true);
  });

  std::lock_guard lock(rt.impl().mu);
  rt.impl().aes[ae.value] = std::move(state);
  return DACS_SUCCESS;
}

dacs_rc dacs_de_wait(Runtime& rt, de_id_t ae, std::int32_t* exit_status) {
  Runtime::Impl::AeState* state = nullptr;
  {
    std::lock_guard lock(rt.impl().mu);
    auto it = rt.impl().aes.find(ae.value);
    if (it == rt.impl().aes.end()) return DACS_ERR_INVALID_TARGET;
    state = it->second.get();
  }
  if (state->thread.joinable()) state->thread.join();
  if (exit_status != nullptr) *exit_status = state->exit_status.load();
  // The waiting HE's clock reflects the AE's completion.
  rt.he_clock().join(
      rt.blade().spe(static_cast<unsigned>(ae.value)).clock().now());
  return DACS_SUCCESS;
}

dacs_rc dacs_remote_mem_create(Runtime& rt, void* addr, std::size_t size,
                               remote_mem_t* mem) {
  if (cellsim::spu::bound()) {
    // Only the HE owns shareable memory: the strict hierarchy the paper
    // cites as DaCS's key limitation.
    return DACS_ERR_INVALID_TARGET;
  }
  if (addr == nullptr || size == 0 || mem == nullptr) {
    return DACS_ERR_INVALID_ADDR;
  }
  std::lock_guard lock(rt.impl().mu);
  const std::uint64_t handle = rt.impl().next_region++;
  rt.impl().regions[handle] = Runtime::Impl::Region{addr, size};
  mem->handle = handle;
  return DACS_SUCCESS;
}

dacs_rc dacs_remote_mem_release(Runtime& rt, remote_mem_t* mem) {
  if (mem == nullptr) return DACS_ERR_INVALID_HANDLE;
  std::lock_guard lock(rt.impl().mu);
  if (rt.impl().regions.erase(mem->handle) == 0) {
    return DACS_ERR_INVALID_HANDLE;
  }
  mem->handle = 0;
  return DACS_SUCCESS;
}

dacs_rc dacs_remote_mem_query(Runtime& rt, remote_mem_t mem,
                              std::size_t* size) {
  std::lock_guard lock(rt.impl().mu);
  auto it = rt.impl().regions.find(mem.handle);
  if (it == rt.impl().regions.end()) return DACS_ERR_INVALID_HANDLE;
  if (size != nullptr) *size = it->second.size;
  return DACS_SUCCESS;
}

dacs_rc dacs_wid_reserve(Runtime& rt, wid_t* wid) {
  if (wid == nullptr) return DACS_ERR_INVALID_HANDLE;
  std::lock_guard lock(rt.impl().mu);
  *wid = rt.impl().next_wid++;
  rt.impl().wid_completion[*wid] = simtime::kSimTimeZero;
  return DACS_SUCCESS;
}

dacs_rc dacs_wid_release(Runtime& rt, wid_t* wid) {
  if (wid == nullptr) return DACS_ERR_INVALID_HANDLE;
  std::lock_guard lock(rt.impl().mu);
  if (rt.impl().wid_completion.erase(*wid) == 0) {
    return DACS_ERR_INVALID_HANDLE;
  }
  *wid = 0;
  return DACS_SUCCESS;
}

dacs_rc dacs_mailbox_write(Runtime& rt, de_id_t ae, std::uint32_t value) {
  if (ae.value < 0 ||
      ae.value >= static_cast<std::int32_t>(rt.blade().spe_count())) {
    return DACS_ERR_INVALID_TARGET;
  }
  rt.he_clock().advance(rt.cost().mbox_ppe_write);
  rt.blade()
      .spe(static_cast<unsigned>(ae.value))
      .inbound_mailbox()
      .push_blocking(value, rt.he_clock().now());
  return DACS_SUCCESS;
}

dacs_rc dacs_mailbox_read(Runtime& rt, de_id_t ae, std::uint32_t* value) {
  if (value == nullptr) return DACS_ERR_INVALID_ADDR;
  if (ae.value < 0 ||
      ae.value >= static_cast<std::int32_t>(rt.blade().spe_count())) {
    return DACS_ERR_INVALID_TARGET;
  }
  cellsim::Mailbox& mb =
      rt.blade().spe(static_cast<unsigned>(ae.value)).outbound_mailbox();
  for (;;) {
    if (auto e = mb.try_pop()) {
      rt.he_clock().join(e->stamp);
      rt.he_clock().advance(rt.cost().mbox_ppe_read);
      *value = e->value;
      return DACS_SUCCESS;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  }
}

namespace {

/// Resolves a region and validates the access window.
dacs_rc resolve(Runtime& rt, remote_mem_t mem, std::size_t offset,
                std::size_t size, std::byte** out) {
  std::lock_guard lock(rt.impl().mu);
  auto it = rt.impl().regions.find(mem.handle);
  if (it == rt.impl().regions.end()) return DACS_ERR_INVALID_HANDLE;
  if (offset + size > it->second.size) return DACS_ERR_INVALID_ADDR;
  *out = static_cast<std::byte*>(it->second.addr) + offset;
  return DACS_SUCCESS;
}

/// Records a transfer completion under `wid`.
dacs_rc record_wid(Runtime& rt, wid_t wid, simtime::SimTime done) {
  std::lock_guard lock(rt.impl().mu);
  auto it = rt.impl().wid_completion.find(wid);
  if (it == rt.impl().wid_completion.end()) return DACS_ERR_INVALID_HANDLE;
  it->second = std::max(it->second, done);
  return DACS_SUCCESS;
}

}  // namespace

dacs_rc dacs_put(Runtime& rt, remote_mem_t dst, std::size_t dst_offset,
                 const void* src_ls_ptr, std::size_t size, wid_t wid) {
  if (!cellsim::spu::bound()) return DACS_ERR_NOT_INITIALIZED;
  std::byte* target = nullptr;
  if (dacs_rc rc = resolve(rt, dst, dst_offset, size, &target);
      rc != DACS_SUCCESS) {
    return rc;
  }
  std::memcpy(target, src_ls_ptr, size);
  cellsim::Spe& spe = cellsim::spu::self();
  const simtime::SimTime done =
      spe.clock().now() + rt.cost().dma_transfer(size);
  return record_wid(rt, wid, done);
}

dacs_rc dacs_get(Runtime& rt, void* dst_ls_ptr, remote_mem_t src,
                 std::size_t src_offset, std::size_t size, wid_t wid) {
  if (!cellsim::spu::bound()) return DACS_ERR_NOT_INITIALIZED;
  std::byte* source = nullptr;
  if (dacs_rc rc = resolve(rt, src, src_offset, size, &source);
      rc != DACS_SUCCESS) {
    return rc;
  }
  std::memcpy(dst_ls_ptr, source, size);
  cellsim::Spe& spe = cellsim::spu::self();
  const simtime::SimTime done =
      spe.clock().now() + rt.cost().dma_transfer(size);
  return record_wid(rt, wid, done);
}

dacs_rc dacs_wait(Runtime& rt, wid_t wid) {
  simtime::SimTime done = 0;
  {
    std::lock_guard lock(rt.impl().mu);
    auto it = rt.impl().wid_completion.find(wid);
    if (it == rt.impl().wid_completion.end()) return DACS_ERR_INVALID_HANDLE;
    done = it->second;
    it->second = simtime::kSimTimeZero;
  }
  if (cellsim::spu::bound()) {
    cellsim::spu::self().clock().join(done);
  } else {
    rt.he_clock().join(done);
  }
  return DACS_SUCCESS;
}

dacs_rc dacs_mailbox_write_to_parent(Runtime& rt, std::uint32_t value) {
  if (!cellsim::spu::bound()) return DACS_ERR_NOT_INITIALIZED;
  (void)rt;
  cellsim::spu::spu_write_out_mbox(value);
  return DACS_SUCCESS;
}

dacs_rc dacs_mailbox_read_from_parent(Runtime& rt, std::uint32_t* value) {
  if (!cellsim::spu::bound()) return DACS_ERR_NOT_INITIALIZED;
  if (value == nullptr) return DACS_ERR_INVALID_ADDR;
  (void)rt;
  *value = cellsim::spu::spu_read_in_mbox();
  return DACS_SUCCESS;
}

}  // namespace dacs
