// dacs.hpp — a DaCS-shaped baseline library.
//
// IBM's Data Communication and Synchronization library (DaCS) is the SDK's
// own high-level communication layer and the paper's main point of
// comparison: CellPilot rejected it because (a) it does not support
// SPE-to-SPE communication (strict HE/AE hierarchy, Figure 1), and (b) its
// SPE-side library consumes 36 600 bytes of the 256 KB local store versus
// CellPilot's 10 336.  The paper also recodes its 3-hop example in DaCS
// (114 lines vs CellPilot's 80 vs the raw SDK's 186).
//
// This module reproduces the *shape* of the DaCS API against the simulated
// hardware, sufficient for the comparison example, the footprint experiment
// and the hierarchy-limitation tests: process startup (dacs_de_start),
// remote memory (create/share/put/get + wait identifiers), and HE<->AE
// mailboxes.  Errors use DaCS-style return codes, not exceptions.
#pragma once

#include <cstdint>
#include <memory>

#include "cellsim/cell.hpp"
#include "cellsim/libspe2.hpp"
#include "simtime/cost_model.hpp"

namespace dacs {

/// DaCS return codes (subset).
enum dacs_rc {
  DACS_SUCCESS = 0,
  DACS_ERR_INVALID_ADDR = -1,
  DACS_ERR_INVALID_HANDLE = -2,
  DACS_ERR_NO_RESOURCE = -3,
  DACS_ERR_INVALID_TARGET = -4,  ///< e.g. AE-to-AE: hierarchy violation
  DACS_ERR_NOT_INITIALIZED = -5,
};

/// Destination element id: the HE, or an AE (SPE) index.
struct de_id_t {
  std::int32_t value = -1;
};
inline constexpr de_id_t DACS_DE_PARENT{-2};  ///< the HE, from an AE

/// Wait identifier for asynchronous data transfers.
using wid_t = std::uint32_t;

/// Handle to a region of memory shared for remote access.
struct remote_mem_t {
  std::uint64_t handle = 0;
};

/// The SPE-side footprint of libdacs.a, as measured in the paper (§V).
inline constexpr std::size_t kDacsSpuFootprintBytes = 36600;

/// One DaCS "runtime": an HE (PPE) and its AEs (the SPEs of one Cell).
/// The hierarchy is strict: every operation pairs an element with its
/// parent or child; sibling AEs cannot address each other — the library
/// returns DACS_ERR_INVALID_TARGET, reproducing the limitation the paper
/// cites as a reason not to build on DaCS.
class Runtime {
 public:
  /// Binds to a Cell blade (borrowed) with the given cost model.
  Runtime(cellsim::CellBlade& blade, const simtime::CostModel& cost);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  cellsim::CellBlade& blade() { return *blade_; }
  const simtime::CostModel& cost() const { return *cost_; }

  /// HE-side virtual clock.
  simtime::VirtualClock& he_clock() { return he_clock_; }

  struct Impl;
  Impl& impl() { return *impl_; }

 private:
  cellsim::CellBlade* blade_;
  const simtime::CostModel* cost_;
  simtime::VirtualClock he_clock_;
  std::unique_ptr<Impl> impl_;
};

// --- HE-side API -------------------------------------------------------------

/// Starts `program` on AE `ae` with `argp` forwarded; the AE runs on a
/// background thread (dacs_de_start).  The AE-side runtime reserves
/// kDacsSpuFootprintBytes of local store.
dacs_rc dacs_de_start(Runtime& rt, de_id_t ae,
                      const cellsim::spe2::spe_program_handle_t& program,
                      std::uint64_t argp);

/// Blocks until AE `ae`'s program exits; returns its status via out param.
dacs_rc dacs_de_wait(Runtime& rt, de_id_t ae, std::int32_t* exit_status);

/// Shares `size` bytes at `addr` (HE main memory) for remote access.
dacs_rc dacs_remote_mem_create(Runtime& rt, void* addr, std::size_t size,
                               remote_mem_t* mem);

/// Releases a shared region.
dacs_rc dacs_remote_mem_release(Runtime& rt, remote_mem_t* mem);

/// Queries the size of a shared region.
dacs_rc dacs_remote_mem_query(Runtime& rt, remote_mem_t mem,
                              std::size_t* size);

/// Reserves / releases a wait identifier.
dacs_rc dacs_wid_reserve(Runtime& rt, wid_t* wid);
dacs_rc dacs_wid_release(Runtime& rt, wid_t* wid);

/// HE -> AE mailbox write / AE -> HE mailbox read (blocking).
dacs_rc dacs_mailbox_write(Runtime& rt, de_id_t ae, std::uint32_t value);
dacs_rc dacs_mailbox_read(Runtime& rt, de_id_t ae, std::uint32_t* value);

// --- AE-side API (called from within a running AE program) -------------------

/// Transfers from the AE's local store into a shared HE region (dacs_put).
/// Asynchronous; completes at dacs_wait(wid).
dacs_rc dacs_put(Runtime& rt, remote_mem_t dst, std::size_t dst_offset,
                 const void* src_ls_ptr, std::size_t size, wid_t wid);

/// Transfers from a shared HE region into the AE's local store (dacs_get).
dacs_rc dacs_get(Runtime& rt, void* dst_ls_ptr, remote_mem_t src,
                 std::size_t src_offset, std::size_t size, wid_t wid);

/// Blocks until all transfers issued under `wid` complete.
dacs_rc dacs_wait(Runtime& rt, wid_t wid);

/// AE-side mailbox ops toward the parent HE.
dacs_rc dacs_mailbox_write_to_parent(Runtime& rt, std::uint32_t value);
dacs_rc dacs_mailbox_read_from_parent(Runtime& rt, std::uint32_t* value);

}  // namespace dacs
