#pragma once
/// \file
/// Windowed time-series registry for the virtual-time telemetry layer.
///
/// This is the *engine* under `core/telemetry`, exactly as `tracebuf` is
/// the engine under `core/trace` and `metrics` the engine under
/// `core/metrics`: it lives in simtime (the lowest layer) so that cellsim,
/// mpisim, pilot and core can all record into it without layering
/// inversions, and the CellPilot meaning of each series (which seam feeds
/// it, what the report looks like) is layered on top in `core/telemetry`.
///
/// Where the metrics engine answers "how much, over the whole run", this
/// engine answers "when": every sample lands in the virtual-time window
/// `stamp / window()`, and each (key, window) cell keeps order-independent
/// integer aggregates — count, sum, min, max — of the samples that hit it.
/// Order independence is load-bearing: two host threads may record into
/// the same window in either host order, so a per-window "last value"
/// would be nondeterministic where {count, sum, min, max} cannot be.
///
/// Design constraints, shared with tracebuf/metrics and in the same order:
///  1. Zero cost when disarmed: every seam guards its record with
///     `if (timeseries::armed())` — one relaxed atomic load and a branch.
///  2. Never perturb virtual time: recording reads clocks the seam already
///     holds; it neither advances nor joins any clock, so armed and
///     disarmed runs are bit-for-bit identical in virtual time.
///  3. Deterministic canonical drain: series sort by key — (kind, route
///     type, channel, entity) — and windows by index inside each series;
///     all cell state is exact integers, so two runs of a deterministic
///     program drain byte-identical data.
///
/// Like the metrics engine (and unlike tracebuf) all threads share one
/// mutex-protected table: a cell update is a few integer ops, and the
/// shared table keeps `snapshot()` safe mid-run (PI_GetTelemetrySnapshot).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "simtime/sim_time.hpp"

namespace simtime::timeseries {

/// What is being tracked over time.  CellPilot-flavoured names for the
/// same reason tracebuf's kinds are: the consumers own the meaning, the
/// engine just keys on the tag.  Gauges sample an instantaneous depth at
/// protocol points; counters accumulate per-window contributions.
enum class Kind : std::uint8_t {
  kMailboxDepth = 0,  ///< gauge: Co-Pilot ready-request queue depth
  kPendingOps,        ///< gauge: per-engine in-flight async operations
  kSpePoolBusy,       ///< gauge: per-SPE-context busy flag (1 = spawned,
                      ///< 0 = retired); summing a blade's contexts gives
                      ///< pool occupancy without cross-thread count races
  kNetWindow,         ///< gauge: reliable receive-window size per link
  kNetStash,          ///< gauge: reliable sender-stash size per link
  kJournalLen,        ///< gauge: Co-Pilot replay-journal length
  kParkedOps,         ///< gauge: requests parked waiting for their peer
  kServiceBusy,       ///< counter: Co-Pilot service busy virtual-ns
  kDelivered,         ///< counter: delivered messages (sum = payload bytes)
  kSent,              ///< counter: sent messages (sum = payload bytes)
  kRetransmits,       ///< counter: reliable-layer retransmissions
  kRespawns,          ///< counter: supervised SPE respawns
};

/// Stable lower-case token for a kind (used in report JSON and tests).
const char* kind_name(Kind kind);

/// Number of distinct kinds (for iteration in tests/tools).
inline constexpr int kKindCount = static_cast<int>(Kind::kRespawns) + 1;

/// Per-window aggregates.  All integral, all order-independent under
/// merge, so the drain is deterministic however host threads interleaved
/// within a window.
struct Cell {
  std::uint64_t count = 0;  ///< samples in the window
  std::int64_t sum = 0;     ///< sum of sample values
  std::int64_t min = 0;     ///< smallest sample (0 when empty)
  std::int64_t max = 0;     ///< largest sample (0 when empty)

  void add(std::int64_t value);
  bool operator==(const Cell&) const = default;
};

/// Registry key, identical shape to simtime::metrics::Key: `entity` is
/// the recorder name (rank / SPE / Co-Pilot / link), `route_type` the
/// Table I type 1..5 (0 if unknown) and `channel` the CellPilot channel
/// id (-1 if not channel traffic).
struct Key {
  Kind kind = Kind::kMailboxDepth;
  std::int8_t route_type = 0;
  std::int32_t channel = -1;
  std::string entity;

  bool operator<(const Key& other) const;
  bool operator==(const Key& other) const;
};

/// One drained series: a key plus its populated windows in ascending
/// window-index order.  Empty windows are never materialized.
struct Series {
  Key key;
  std::vector<std::pair<std::int64_t, Cell>> windows;
};

namespace detail {
extern std::atomic<bool> g_armed;
void record_slow(Kind kind, std::int8_t route_type, std::int32_t channel,
                 const std::string& entity, SimTime stamp,
                 std::int64_t value);
}  // namespace detail

/// True while at least one consumer (telemetry session or test capture)
/// wants samples.  Seams must check this before computing a value.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Record one sample at virtual time `stamp`.  No-op when disarmed
/// (callers should still guard with armed() so the value computation is
/// skipped too).
inline void record(Kind kind, std::int8_t route_type, std::int32_t channel,
                   const std::string& entity, SimTime stamp,
                   std::int64_t value) {
  if (armed()) {
    detail::record_slow(kind, route_type, channel, entity, stamp, value);
  }
}

/// Arm / disarm are reference counted, same contract as tracebuf and
/// metrics, so a telemetry session and a scoped test capture can overlap.
void arm();
void disarm();

/// Window length in virtual ns.  `set_window` only applies to samples
/// recorded after it returns; the session calls it at configure time
/// (before any traffic) so every sample of a run shares one window.
/// Values < 1 are clamped to 1.
void set_window(SimTime window_ns);
SimTime window();

/// Drop all accumulated series (the window length is kept).
void clear();

/// Move all series out in canonical order — sorted by (kind, route type,
/// channel, entity), windows ascending — and clear the registry.
std::vector<Series> drain();

/// Copy all series out in canonical order *without* clearing.  Safe to
/// call while other threads record (the table lock covers the copy), so
/// PI_GetTelemetrySnapshot can harvest mid-run.
std::vector<Series> snapshot();

}  // namespace simtime::timeseries
