#include "simtime/stats.hpp"

#include <algorithm>
#include <cmath>

namespace simtime {

void Stats::add(double v) {
  samples_.push_back(v);
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Stats::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

void Stats::reset() {
  samples_.clear();
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

}  // namespace simtime
