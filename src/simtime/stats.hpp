// stats.hpp — small online statistics accumulator used by the benchmark
// harness to summarize repeated virtual-time measurements.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace simtime {

/// Accumulates samples (as doubles, any unit) and reports summary statistics.
/// Keeps all samples so exact percentiles are available; benchmark sample
/// counts here are small (thousands).
class Stats {
 public:
  /// Adds one sample.
  void add(double v);

  /// Number of samples added.
  std::size_t count() const { return samples_.size(); }

  /// Sum of all samples (0 when empty).
  double sum() const { return sum_; }

  /// Arithmetic mean (0 when empty).
  double mean() const;

  /// Smallest sample (+inf when empty).
  double min() const { return min_; }

  /// Largest sample (-inf when empty).
  double max() const { return max_; }

  /// Sample standard deviation (0 for fewer than two samples).
  double stddev() const;

  /// Exact percentile in [0,100] by nearest-rank; 0 when empty.
  /// Sorts a copy; intended for end-of-run reporting, not hot paths.
  double percentile(double p) const;

  /// Clears all samples.
  void reset();

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace simtime
