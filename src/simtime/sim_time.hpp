// sim_time.hpp — the simulated-time vocabulary used throughout the CellPilot
// reproduction.
//
// All performance in this repository is *virtual*: hardware latencies are
// modelled, not measured from the host.  Simulated durations are kept in
// integer nanoseconds so that every run is bit-for-bit deterministic and
// independent of host scheduling.  The paper reports microseconds; helpers
// convert at the edges.
#pragma once

#include <cstdint>
#include <string>

namespace simtime {

/// A point in, or span of, simulated time.  Unit: nanoseconds.
using SimTime = std::int64_t;

/// Zero duration / the epoch of every virtual clock.
inline constexpr SimTime kSimTimeZero = 0;

/// Construct a SimTime from nanoseconds.
constexpr SimTime ns(std::int64_t v) { return v; }

/// Construct a SimTime from microseconds (the paper's reporting unit).
constexpr SimTime us(double v) { return static_cast<SimTime>(v * 1e3); }

/// Construct a SimTime from milliseconds.
constexpr SimTime ms(double v) { return static_cast<SimTime>(v * 1e6); }

/// Convert a SimTime to (fractional) microseconds for reporting.
constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }

/// Convert a SimTime to (fractional) milliseconds for reporting.
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }

/// Render a SimTime as a human-readable string ("12.34 us").
std::string format(SimTime t);

}  // namespace simtime
