// trace.hpp — an optional, thread-safe event trace for the simulated cluster.
//
// When enabled, every modelled primitive (mailbox op, DMA, MPI message,
// Co-Pilot service step) records a TraceEvent with its entity, kind, and
// virtual start/end times.  Tests use the trace to assert protocol structure
// (e.g. "a type-5 transfer crosses the network exactly once"); the benches
// can dump it for debugging.  Disabled tracing is a no-op with one branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "simtime/sim_time.hpp"

namespace simtime {

/// Category of a traced primitive.
enum class TraceKind : std::uint8_t {
  kMailboxWrite,
  kMailboxRead,
  kDma,
  kMappedCopy,
  kMpiSend,
  kMpiRecv,
  kCopilotService,
  kPilotCall,
  kSpeLaunch,
  kBarrier,
  kOther,
};

/// Returns a stable lowercase name for a TraceKind.
const char* to_string(TraceKind kind);

/// One recorded primitive.
struct TraceEvent {
  std::string entity;   ///< who performed it, e.g. "node1.spe3" or "rank2"
  TraceKind kind;       ///< what it was
  std::string detail;   ///< free-form, e.g. "ch=5 bytes=1600"
  SimTime begin;        ///< virtual time when it started
  SimTime end;          ///< virtual time when it completed
};

/// A process-wide trace sink.  Cheap when disabled (default).
class Trace {
 public:
  /// The process-wide instance used by all simulated entities.
  static Trace& global();

  /// Turns recording on/off.  Existing events are kept.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }

  /// Whether events are currently recorded.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Records one event (no-op when disabled).
  void record(std::string entity, TraceKind kind, std::string detail,
              SimTime begin, SimTime end);

  /// Snapshot of all events recorded so far, in insertion order.
  std::vector<TraceEvent> events() const;

  /// Number of recorded events with the given kind.
  std::size_t count(TraceKind kind) const;

  /// Drops all recorded events.
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::atomic<bool> enabled_{false};
};

/// Scoped enable/disable for tests: enables (and clears) the global trace on
/// construction, disables it on destruction.
class ScopedTrace {
 public:
  ScopedTrace() {
    Trace::global().clear();
    Trace::global().set_enabled(true);
  }
  ~ScopedTrace() { Trace::global().set_enabled(false); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
};

}  // namespace simtime
