// virtual_clock.hpp — Lamport-style virtual clocks.
//
// Every simulated entity (PPE process, SPE, Co-Pilot rank, NIC) owns one
// VirtualClock.  Local work advances the owner's clock; communication joins
// clocks: a message departs stamped with the sender's clock plus the modelled
// transfer cost, and the receiver sets its clock to
//   max(receiver_clock, message_arrival_stamp).
//
// The result is that elapsed virtual time on any entity reflects the critical
// path through the modelled costs, exactly like wall-clock time would on the
// real machine — but deterministically, regardless of host thread scheduling.
//
// Threading: clocks are logically single-writer (the owning entity), but the
// simulated entities are host threads, and completion notifications can race
// with local reads in test harnesses, so all operations are atomic.
#pragma once

#include <atomic>

#include "simtime/sim_time.hpp"

namespace simtime {

/// A monotonically non-decreasing per-entity virtual clock.
class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(SimTime start) : now_(start) {}

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  /// Current virtual time of the owning entity.
  SimTime now() const { return now_.load(std::memory_order_acquire); }

  /// Spend `cost` of local work; returns the new time.
  SimTime advance(SimTime cost) {
    return now_.fetch_add(cost, std::memory_order_acq_rel) + cost;
  }

  /// Join with an incoming timestamp (message arrival): the clock becomes
  /// max(now, stamp).  Returns the resulting time.
  SimTime join(SimTime stamp) {
    SimTime cur = now_.load(std::memory_order_acquire);
    while (cur < stamp &&
           !now_.compare_exchange_weak(cur, stamp, std::memory_order_acq_rel)) {
      // `cur` reloaded by compare_exchange_weak.
    }
    return now_.load(std::memory_order_acquire);
  }

  /// Join with an arrival stamp and then spend `cost` of local work.
  SimTime join_advance(SimTime stamp, SimTime cost) {
    join(stamp);
    return advance(cost);
  }

  /// Reset to a fixed time (harness use only — not part of entity semantics).
  void reset(SimTime t = kSimTimeZero) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<SimTime> now_{kSimTimeZero};
};

/// RAII measurement of elapsed virtual time on one clock.
class ClockSpan {
 public:
  explicit ClockSpan(const VirtualClock& clock) : clock_(clock), start_(clock.now()) {}

  /// Virtual time elapsed on the clock since construction.
  SimTime elapsed() const { return clock_.now() - start_; }

 private:
  const VirtualClock& clock_;
  SimTime start_;
};

}  // namespace simtime
