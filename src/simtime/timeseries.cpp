#include "simtime/timeseries.hpp"

#include <algorithm>
#include <map>
#include <mutex>

namespace simtime::timeseries {

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kMailboxDepth: return "mailbox_depth";
    case Kind::kPendingOps: return "pending_ops";
    case Kind::kSpePoolBusy: return "spe_pool_busy";
    case Kind::kNetWindow: return "net_window";
    case Kind::kNetStash: return "net_stash";
    case Kind::kJournalLen: return "journal_len";
    case Kind::kParkedOps: return "parked_ops";
    case Kind::kServiceBusy: return "service_busy";
    case Kind::kDelivered: return "delivered";
    case Kind::kSent: return "sent";
    case Kind::kRetransmits: return "retransmits";
    case Kind::kRespawns: return "respawns";
  }
  return "?";
}

void Cell::add(std::int64_t value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
}

bool Key::operator<(const Key& other) const {
  if (kind != other.kind) return kind < other.kind;
  if (route_type != other.route_type) return route_type < other.route_type;
  if (channel != other.channel) return channel < other.channel;
  return entity < other.entity;
}

bool Key::operator==(const Key& other) const {
  return kind == other.kind && route_type == other.route_type &&
         channel == other.channel && entity == other.entity;
}

namespace {

/// One shared table for every recording thread, same trade-off as the
/// metrics engine: a cell update is a handful of integer ops, so lock
/// contention is negligible next to the marshalling work each seam already
/// does, and snapshot() works mid-run in exchange.  Nested std::map keeps
/// series in key order and windows in index order permanently, so drain
/// and snapshot are a straight copy.  Leaky singleton for the same reason
/// as tracebuf's registry: thread-local destructors may outlive statics.
struct Table {
  std::mutex mu;
  std::map<Key, std::map<std::int64_t, Cell>> series;
};

Table& table() {
  static Table* g = new Table;
  return *g;
}

std::mutex g_arm_mu;
int g_arm_count = 0;

/// Window length in virtual ns.  1 ms default matches the
/// `-pitelemetryevery=US` flag default; the session overrides it at
/// configure time, before any sample is recorded.
std::atomic<SimTime> g_window_ns{1000000};

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

void record_slow(Kind kind, std::int8_t route_type, std::int32_t channel,
                 const std::string& entity, SimTime stamp,
                 std::int64_t value) {
  Key key;
  key.kind = kind;
  key.route_type = route_type;
  key.channel = channel;
  key.entity = entity;
  const SimTime w = g_window_ns.load(std::memory_order_relaxed);
  const std::int64_t index = (stamp < 0 ? 0 : stamp) / w;
  Table& t = table();
  std::lock_guard lock(t.mu);
  t.series[std::move(key)][index].add(value);
}

}  // namespace detail

void arm() {
  std::lock_guard lock(g_arm_mu);
  if (++g_arm_count == 1) {
    detail::g_armed.store(true, std::memory_order_relaxed);
  }
}

void disarm() {
  std::lock_guard lock(g_arm_mu);
  if (g_arm_count > 0 && --g_arm_count == 0) {
    detail::g_armed.store(false, std::memory_order_relaxed);
  }
}

void set_window(SimTime window_ns) {
  g_window_ns.store(window_ns < 1 ? 1 : window_ns,
                    std::memory_order_relaxed);
}

SimTime window() { return g_window_ns.load(std::memory_order_relaxed); }

void clear() {
  Table& t = table();
  std::lock_guard lock(t.mu);
  t.series.clear();
}

std::vector<Series> drain() {
  Table& t = table();
  std::lock_guard lock(t.mu);
  std::vector<Series> out;
  out.reserve(t.series.size());
  for (auto& [key, windows] : t.series) {
    Series s;
    s.key = key;
    s.windows.assign(windows.begin(), windows.end());
    out.push_back(std::move(s));
  }
  t.series.clear();
  return out;
}

std::vector<Series> snapshot() {
  Table& t = table();
  std::lock_guard lock(t.mu);
  std::vector<Series> out;
  out.reserve(t.series.size());
  for (const auto& [key, windows] : t.series) {
    Series s;
    s.key = key;
    s.windows.assign(windows.begin(), windows.end());
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace simtime::timeseries
