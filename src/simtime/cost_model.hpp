// cost_model.hpp — the single place where every modelled hardware latency
// lives.
//
// The reproduction replaces the authors' SHARCNET testbed (8 dual-PowerXCell
// 8i blades + 4 Xeon nodes on gigabit Ethernet, Open MPI 1.2.8) with virtual
// clocks.  Each primitive the CellPilot protocol touches has one cost entry
// here; composite operations (an MPI message, a DMA transfer) are computed by
// the helper methods.  Defaults are calibrated from first principles — GigE
// round-trip, PPE MMIO mailbox access, EIB copy bandwidth — so that the
// PingPong benchmarks reproduce the *shape* of the paper's Table II without
// hard-coding any of its cells.  See EXPERIMENTS.md for the calibration notes
// and the paper-vs-measured table.
#pragma once

#include <cstddef>
#include <string>

#include "simtime/sim_time.hpp"

namespace simtime {

/// Kind of processor core executing MPI-level code.  The paper observes that
/// PPE endpoints are slower than Xeon endpoints for the same channel type.
enum class CoreKind {
  kPpe,   ///< Cell Power Processor Element — slow, in-order
  kXeon,  ///< commodity x86-64 node
  kSpe,   ///< Synergistic Processor Element (never runs MPI itself)
};

/// Returns a short lowercase name ("ppe", "xeon", "spe") for reports.
const char* to_string(CoreKind kind);

/// All tunable latencies of the simulated cluster, in simulated time.
///
/// Invariant: every field is non-negative; `validate()` enforces this.
struct CostModel {
  // --- Inter-node network (gigabit Ethernet) ------------------------------
  /// Wire + switch latency per message, independent of size.
  SimTime net_latency = us(30.0);
  /// Per-byte serialization cost on the wire (~ 1 Gbit/s effective).
  SimTime net_per_byte = ns(9);

  // --- MPI software stack --------------------------------------------------
  /// Per-message CPU cost of the MPI stack on a slow PPE core (each side).
  SimTime mpi_cpu_ppe = us(34.0);
  /// Per-message CPU cost of the MPI stack on a Xeon core (each side).
  SimTime mpi_cpu_xeon = us(8.0);
  /// Per-byte copy cost through the MPI stack on a PPE.
  SimTime mpi_byte_ppe = ns(15);
  /// Per-byte copy cost through the MPI stack on a Xeon.
  SimTime mpi_byte_xeon = ns(4);
  /// Latency of an intra-node (shared-memory transport) MPI message.
  /// The paper notes type-2 channels pay this for PPE -> Co-Pilot even
  /// though a raw shared-memory copy would be cheaper.
  SimTime mpi_local_latency = us(12.0);
  /// Per-byte cost of the intra-node MPI shared-memory transport.
  SimTime mpi_local_per_byte = ns(6);

  // --- SPE mailboxes --------------------------------------------------------
  /// SPE-side write to its outbound mailbox (channel register, cheap).
  SimTime mbox_spu_write = us(0.3);
  /// SPE-side blocking read from its inbound mailbox once data is present.
  SimTime mbox_spu_read = us(0.3);
  /// PPE-side MMIO read of an SPE's outbound mailbox (uncached, but cheap
  /// relative to the Co-Pilot's software costs — the paper's hand-coded
  /// type-2 DMA time of ~15us is essentially one DMA setup plus handshake).
  SimTime mbox_ppe_read = us(2.0);
  /// PPE-side MMIO write to an SPE's inbound mailbox.
  SimTime mbox_ppe_write = us(1.5);
  /// One Co-Pilot polling sweep over its SPEs' mailbox status registers.
  SimTime mbox_poll = us(1.5);

  // --- Data movement inside a Cell node ------------------------------------
  /// Fixed cost to program one MFC DMA transfer (command queue + kick).
  SimTime dma_setup = us(14.0);
  /// Per-byte DMA cost over the EIB (~25.6 GB/s — effectively free at 1.6 KB).
  SimTime dma_per_byte = ns(0);  // sub-ns; modelled as 0 below 16 KB chunks
  /// Per-chunk cost for DMA transfers above the 16 KB MFC limit.
  SimTime dma_per_chunk = us(2.0);
  /// Fixed cost of a PPE-side memcpy into/out of memory-mapped local store.
  SimTime copy_setup = us(11.0);
  /// Per-byte cost of PPE memcpy through the memory-mapped LS window.
  SimTime copy_per_byte = ns(9);

  // --- Co-Pilot service -----------------------------------------------------
  /// Handling one SPE request once its mailbox words have been read:
  /// decode, effective-address translation, bookkeeping, and the polling-
  /// loop pickup delay (the dominant Co-Pilot overhead the paper's future
  /// work wants to shrink).
  SimTime copilot_service = us(42.0);
  /// Dispatching one arrived intra-node MPI data message to a parked SPE
  /// read request (probe + match + bookkeeping).
  SimTime copilot_dispatch = us(2.0);
  /// Dispatching one arrived *inter-node* data message: the MPI progress
  /// engine must be driven to drain the NIC before the probe hits.
  SimTime copilot_dispatch_remote = us(30.0);
  /// Fixed cost of the Co-Pilot touching a mapped local store for one
  /// transfer ("direct transfer" setup through the uncached LS window).
  SimTime copilot_ls_touch = us(1.0);
  /// Per-byte cost of Co-Pilot accesses through the LS window.
  SimTime copilot_ls_per_byte = ns(4);
  /// Number of 32-bit mailbox words an SPE request occupies
  /// (opcode+channel, LS address, length, format signature).
  int copilot_request_words = 4;

  // --- Pilot / CellPilot library layer -------------------------------------
  /// Per-call cost of PI_Write/PI_Read on a PPE or Xeon: format-string
  /// parsing, channel table lookup, argument marshalling.
  SimTime pilot_call_overhead = us(3.5);
  /// Per-byte cost of Pilot's data-description handling.
  SimTime pilot_per_byte = ns(2);
  /// Per-call cost of the slimmer SPE-side CellPilot runtime.
  SimTime spu_call_overhead = us(2.0);

  // --- Baseline hand-coded paths -------------------------------------------
  /// Synchronization cost (mailbox/signal handshake) in the hand-coded
  /// DMA baseline, per transfer.
  SimTime handcoded_sync = us(1.0);

  /// Aborts (throws std::invalid_argument) if any field is negative or the
  /// request word count is not positive.
  void validate() const;

  // --- Composite helpers (all pure) ----------------------------------------

  /// One-way cost of an inter-node MPI message of `bytes` between cores of
  /// the given kinds (sender + receiver software cost + wire).
  SimTime mpi_network_message(std::size_t bytes, CoreKind sender,
                              CoreKind receiver) const;

  /// The three legs of one MPI message: time the sender spends before the
  /// message is in flight, transit time, and time the receiver spends
  /// draining it.  Used by the MiniMPI engine to advance/join clocks.
  struct MpiLegCosts {
    SimTime sender;
    SimTime transit;
    SimTime receiver;
  };

  /// Leg costs for a message of `bytes`; `same_node` selects the intra-node
  /// shared-memory transport.
  MpiLegCosts mpi_leg_costs(std::size_t bytes, CoreKind sender,
                            CoreKind receiver, bool same_node) const;

  /// One-way cost of an intra-node MPI message of `bytes`.
  SimTime mpi_local_message(std::size_t bytes) const;

  /// Per-message MPI CPU cost on one core of the given kind.
  SimTime mpi_cpu(CoreKind kind) const;

  /// Cost of an MFC DMA transfer of `bytes` (setup + chunking + wire).
  SimTime dma_transfer(std::size_t bytes) const;

  /// Cost of a PPE-side memcpy of `bytes` through the mapped LS window.
  SimTime mapped_copy(std::size_t bytes) const;

  /// SPE-side cost of issuing one full request to the Co-Pilot
  /// (copilot_request_words mailbox writes + runtime overhead).
  SimTime spu_request_cost() const;

  /// Co-Pilot-side cost of consuming one SPE request
  /// (MMIO reads of the request words + decode/translation).
  SimTime copilot_consume_request() const;

  /// Co-Pilot-side cost of signalling completion to an SPE (inbound mailbox
  /// MMIO write), plus the SPE-side read.
  SimTime completion_signal_cost() const;

  /// Co-Pilot-side cost of one direct transfer touching a mapped local
  /// store window for `bytes` bytes.
  SimTime copilot_ls_access(std::size_t bytes) const;
};

/// The calibrated default model used by all benchmarks (see EXPERIMENTS.md).
CostModel default_cost_model();

/// A zero-cost model: every latency is 0.  Used by functional tests that
/// assert behaviour rather than timing.
CostModel zero_cost_model();

}  // namespace simtime
