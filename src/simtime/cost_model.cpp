#include "simtime/cost_model.hpp"

#include <stdexcept>

namespace simtime {

const char* to_string(CoreKind kind) {
  switch (kind) {
    case CoreKind::kPpe: return "ppe";
    case CoreKind::kXeon: return "xeon";
    case CoreKind::kSpe: return "spe";
  }
  return "?";
}

void CostModel::validate() const {
  const SimTime fields[] = {
      net_latency,   net_per_byte,   mpi_cpu_ppe,       mpi_cpu_xeon,
      mpi_byte_ppe,  mpi_byte_xeon,  mpi_local_latency, mpi_local_per_byte,
      mbox_spu_write, mbox_spu_read, mbox_ppe_read,     mbox_ppe_write,
      mbox_poll,     dma_setup,      dma_per_byte,      dma_per_chunk,
      copy_setup,    copy_per_byte,  copilot_service,   copilot_dispatch,  copilot_dispatch_remote,
      copilot_ls_touch, copilot_ls_per_byte, pilot_call_overhead,
      pilot_per_byte, spu_call_overhead, handcoded_sync};
  for (SimTime f : fields) {
    if (f < 0) throw std::invalid_argument("CostModel: negative latency");
  }
  if (copilot_request_words <= 0) {
    throw std::invalid_argument("CostModel: copilot_request_words must be > 0");
  }
}

SimTime CostModel::mpi_cpu(CoreKind kind) const {
  return kind == CoreKind::kPpe ? mpi_cpu_ppe : mpi_cpu_xeon;
}

SimTime CostModel::mpi_network_message(std::size_t bytes, CoreKind sender,
                                       CoreKind receiver) const {
  const auto n = static_cast<SimTime>(bytes);
  const SimTime sender_byte =
      (sender == CoreKind::kPpe ? mpi_byte_ppe : mpi_byte_xeon) * n;
  const SimTime receiver_byte =
      (receiver == CoreKind::kPpe ? mpi_byte_ppe : mpi_byte_xeon) * n;
  return mpi_cpu(sender) + sender_byte + net_latency + net_per_byte * n +
         mpi_cpu(receiver) + receiver_byte;
}

CostModel::MpiLegCosts CostModel::mpi_leg_costs(std::size_t bytes,
                                                CoreKind sender,
                                                CoreKind receiver,
                                                bool same_node) const {
  const auto n = static_cast<SimTime>(bytes);
  if (same_node) {
    // Shared-memory transport: the cost is split between the two endpoints;
    // there is no wire.
    const SimTime half = (mpi_local_latency + mpi_local_per_byte * n) / 2;
    return MpiLegCosts{half, 0, half};
  }
  const SimTime sender_cost =
      mpi_cpu(sender) +
      (sender == CoreKind::kPpe ? mpi_byte_ppe : mpi_byte_xeon) * n;
  const SimTime receiver_cost =
      mpi_cpu(receiver) +
      (receiver == CoreKind::kPpe ? mpi_byte_ppe : mpi_byte_xeon) * n;
  return MpiLegCosts{sender_cost, net_latency + net_per_byte * n,
                     receiver_cost};
}

SimTime CostModel::mpi_local_message(std::size_t bytes) const {
  return mpi_local_latency + mpi_local_per_byte * static_cast<SimTime>(bytes);
}

SimTime CostModel::dma_transfer(std::size_t bytes) const {
  // The MFC moves at most 16 KB per command; larger transfers are chunked
  // (by a DMA list or repeated commands).
  constexpr std::size_t kChunk = 16 * 1024;
  const std::size_t chunks = bytes == 0 ? 1 : (bytes + kChunk - 1) / kChunk;
  return dma_setup + dma_per_chunk * static_cast<SimTime>(chunks - 1) +
         dma_per_byte * static_cast<SimTime>(bytes);
}

SimTime CostModel::mapped_copy(std::size_t bytes) const {
  return copy_setup + copy_per_byte * static_cast<SimTime>(bytes);
}

SimTime CostModel::spu_request_cost() const {
  return spu_call_overhead +
         mbox_spu_write * static_cast<SimTime>(copilot_request_words);
}

SimTime CostModel::copilot_consume_request() const {
  return mbox_ppe_read * static_cast<SimTime>(copilot_request_words) +
         copilot_service;
}

SimTime CostModel::completion_signal_cost() const {
  return mbox_ppe_write + mbox_spu_read;
}

SimTime CostModel::copilot_ls_access(std::size_t bytes) const {
  return copilot_ls_touch + copilot_ls_per_byte * static_cast<SimTime>(bytes);
}

CostModel default_cost_model() {
  CostModel m;  // the field initializers *are* the calibrated defaults
  m.validate();
  return m;
}

CostModel zero_cost_model() {
  CostModel m;
  m.net_latency = 0;
  m.net_per_byte = 0;
  m.mpi_cpu_ppe = 0;
  m.mpi_cpu_xeon = 0;
  m.mpi_byte_ppe = 0;
  m.mpi_byte_xeon = 0;
  m.mpi_local_latency = 0;
  m.mpi_local_per_byte = 0;
  m.mbox_spu_write = 0;
  m.mbox_spu_read = 0;
  m.mbox_ppe_read = 0;
  m.mbox_ppe_write = 0;
  m.mbox_poll = 0;
  m.dma_setup = 0;
  m.dma_per_byte = 0;
  m.dma_per_chunk = 0;
  m.copy_setup = 0;
  m.copy_per_byte = 0;
  m.copilot_service = 0;
  m.copilot_dispatch = 0;
  m.copilot_dispatch_remote = 0;
  m.copilot_ls_touch = 0;
  m.copilot_ls_per_byte = 0;
  m.pilot_call_overhead = 0;
  m.pilot_per_byte = 0;
  m.spu_call_overhead = 0;
  m.handcoded_sync = 0;
  return m;
}

}  // namespace simtime
