// byte_order.hpp — architectural byte order of simulated cores.
//
// The paper's hybrid cluster mixes big-endian PowerPC (Cell PPEs + SPEs)
// with little-endian x86-64 (Xeon nodes).  The enum lives in the base layer
// so the cluster description can carry it without depending on the Pilot
// library; the format-aware conversion logic is pilot/byteorder.hpp.
#pragma once

namespace simtime {

/// Byte order of a node's cores.
enum class ByteOrder {
  kLittle,  ///< x86-64 (Xeon nodes; also the simulation host)
  kBig,     ///< PowerPC (Cell PPEs and SPEs)
};

/// Returns "little" or "big".
constexpr const char* to_string(ByteOrder order) {
  return order == ByteOrder::kLittle ? "little" : "big";
}

}  // namespace simtime
