#pragma once
/// \file
/// Ring-buffered event capture for the virtual-time trace layer.
///
/// This is the *engine* under `core/trace`: a process-wide set of per-thread
/// ring buffers that record fixed-size events stamped with virtual time.
/// It lives in simtime (the lowest layer) so that cellsim, mpisim and core
/// can all record into it without layering inversions; the CellPilot
/// vocabulary (channel ids, Table I route types, flush-to-file policy) is
/// layered on top in `core/trace`.
///
/// Design constraints, in order:
///  1. Zero cost when disarmed: every seam guards its record with
///     `if (tracebuf::armed())` — one relaxed atomic load and a branch.
///  2. Never perturb virtual time: recording reads clocks that the seam
///     already holds; it neither advances nor joins any clock, so armed
///     and disarmed runs are bit-for-bit identical in virtual time.
///  3. Deterministic drain: events are sorted into a canonical order that
///     depends only on their recorded fields, never on host scheduling.
///
/// Threading model: each recording thread owns one ring (acquired from a
/// pool on first record, returned at thread exit so short-lived SPE/rank
/// threads across many jobs reuse a bounded set of rings).  `drain()` and
/// `clear()` must only be called at quiescence — i.e. when no simulation
/// thread can be recording — which CellPilot guarantees by flushing in
/// cellpilot::run's epilogue after every rank, Co-Pilot, service and SPE
/// thread has been joined.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "simtime/sim_time.hpp"

namespace simtime::tracebuf {

/// What happened.  The names are CellPilot-flavoured because the consumers
/// are; the engine itself treats them as opaque tags.
enum class Kind : std::uint8_t {
  kMboxPush = 0,      ///< mailbox word written (SPU intrinsic / Co-Pilot)
  kMboxPop,           ///< mailbox word read
  kDmaGet,            ///< MFC transfer, main memory -> local store
  kDmaPut,            ///< MFC transfer, local store -> main memory
  kMpiSend,           ///< MiniMPI message deposited (aux = tag)
  kMpiRecv,           ///< MiniMPI message matched   (aux = tag)
  kMpiDrop,           ///< MiniMPI message dropped by fault injection
  kPilotWrite,        ///< PI_Write (rank side), one per channel leg
  kPilotRead,         ///< PI_Read  (rank side)
  kSpeWrite,          ///< PI_Write issued from an SPE
  kSpeRead,           ///< PI_Read  issued from an SPE
  kCopilotRequest,    ///< Co-Pilot accepted an SPE request (aux = opcode)
  kCopilotRelay,      ///< Co-Pilot forwarded SPE data over MPI
  kCopilotPair,       ///< Co-Pilot paired a local SPE<->SPE copy (memcpy leg)
  kCopilotDeliver,    ///< Co-Pilot delivered MPI data into a parked SPE read
  kCopilotPark,       ///< Co-Pilot parked a request waiting for its peer
  kCopilotRetry,      ///< deadline supervision extended a deadline (aux = #)
  kCopilotTimeout,    ///< deadline supervision gave up (PI_SPE_TIMEOUT)
  kCopilotFault,      ///< Co-Pilot processed an SPE death notice
  kNetAck,            ///< reliable layer released a frame to the receiver
  kNetRetransmit,     ///< reliable layer resent a frame (aux = tag)
  kNetDuplicate,      ///< receive window discarded a duplicate frame
  kNetCorrupt,        ///< CRC check caught a damaged frame
  kNetReorder,        ///< a frame was held back to arrive out of order
  kCopilotFailover,   ///< standby Co-Pilot took over after a crash
  kOpSubmit,          ///< async operation submitted (PI_WriteAsync/ReadAsync)
  kOpComplete,        ///< async operation harvested (PI_Wait/Test/WaitAny)
  kSpeSpawn,          ///< PI_SpawnSPE bound a program to an SPE slot
  kSpeRetire,         ///< a spawned SPE program finished; context returned
  kSpeRespawn,        ///< supervision respawned a faulted SPE (aux = attempt)
  kEpochFlush,        ///< stale-epoch traffic tombstoned after a respawn
  kCkptBegin,         ///< a Co-Pilot opened a coordinated cut (aux = cut id)
  kCkptCut,           ///< a Co-Pilot contributed its shard (aux = cut id)
  kCkptCommit,        ///< all shards in; checkpoint file written (aux = cut)
  kBladeRestore,      ///< blade contexts relaunched from a checkpoint
  kUser,              ///< reserved for ad-hoc instrumentation
};

/// Stable lower-case token for a kind (used in trace JSON and tests).
const char* kind_name(Kind kind);

/// Number of distinct kinds (for iteration in tests/tools).
inline constexpr int kKindCount = static_cast<int>(Kind::kUser) + 1;

/// Inline capacity for the entity name.  Longest simulator names are
/// "nodeNN.cell0.speNN" / "nodeNN.copilot" — 31 chars is generous; longer
/// names are truncated, never overrun.
inline constexpr std::size_t kEntityBytes = 32;

/// One recorded event.  POD, fixed size; the entity name is copied inline
/// so a drained trace never dangles into a destroyed simulation.
struct Event {
  SimTime begin{0};              ///< virtual start of the operation
  SimTime end{0};                ///< virtual end (== begin for instants)
  std::uint64_t bytes = 0;       ///< payload bytes moved, 0 if n/a
  std::int64_t aux = -1;         ///< kind-specific extra (tag/opcode/retry#)
  std::int32_t channel = -1;     ///< CellPilot channel id, -1 if unknown
  std::int8_t route_type = 0;    ///< Table I type 1..5, 0 if unknown
  Kind kind = Kind::kUser;
  char entity[kEntityBytes] = {};  ///< NUL-terminated recorder name
};

namespace detail {
extern std::atomic<bool> g_armed;
void record_slow(const Event& e);
}  // namespace detail

/// True while at least one consumer (trace session or test capture) wants
/// events.  Seams must check this before building an Event.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Record one event into the calling thread's ring.  No-op when disarmed.
inline void record(const Event& e) {
  if (armed()) detail::record_slow(e);
}

/// Convenience: fill an Event and record it.  `entity` is copied (and
/// truncated to kEntityBytes-1); it does not need to outlive the call.
void record(Kind kind, const std::string& entity, SimTime begin, SimTime end,
            std::uint64_t bytes = 0, std::int32_t channel = -1,
            std::int8_t route_type = 0, std::int64_t aux = -1);

/// Arm / disarm are reference counted so a trace session and a scoped test
/// capture can overlap without fighting over the flag.
void arm();
void disarm();

/// Drop all buffered events (rings stay allocated).  Quiescence required.
void clear();

/// Move all buffered events out in canonical order and clear the rings.
/// Canonical order sorts by (begin, end, entity, kind, channel, aux, bytes)
/// — every component is a recorded field, so the order is independent of
/// host thread scheduling.  Quiescence required.
std::vector<Event> drain();

/// Events discarded because a ring hit its growth limit since the last
/// clear()/drain().  Deterministic for a deterministic program.
std::uint64_t dropped();

/// Black-box mode for the flight recorder: keep the most recent
/// `per_thread_tail` events of every ring in a side buffer that survives
/// clear()/drain() and — unlike the rings — may be snapshotted *while the
/// simulation is still running* (each tail has its own lock).  0 disables
/// and frees the tails.  Only armed recording feeds the tails, so the
/// zero-cost disarmed guarantee is untouched.
void set_blackbox(std::size_t per_thread_tail);

/// Copy the black-box tails of every ring, canonically sorted like
/// drain().  Safe to call from any thread at any time; returns the most
/// recent <= per_thread_tail events each recording thread produced.
std::vector<Event> blackbox_snapshot();

}  // namespace simtime::tracebuf
