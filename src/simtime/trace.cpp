#include "simtime/trace.hpp"

namespace simtime {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kMailboxWrite: return "mbox_write";
    case TraceKind::kMailboxRead: return "mbox_read";
    case TraceKind::kDma: return "dma";
    case TraceKind::kMappedCopy: return "mapped_copy";
    case TraceKind::kMpiSend: return "mpi_send";
    case TraceKind::kMpiRecv: return "mpi_recv";
    case TraceKind::kCopilotService: return "copilot_service";
    case TraceKind::kPilotCall: return "pilot_call";
    case TraceKind::kSpeLaunch: return "spe_launch";
    case TraceKind::kBarrier: return "barrier";
    case TraceKind::kOther: return "other";
  }
  return "?";
}

Trace& Trace::global() {
  static Trace instance;
  return instance;
}

void Trace::record(std::string entity, TraceKind kind, std::string detail,
                   SimTime begin, SimTime end) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  events_.push_back(TraceEvent{std::move(entity), kind, std::move(detail),
                               begin, end});
}

std::vector<TraceEvent> Trace::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::size_t Trace::count(TraceKind kind) const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void Trace::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

}  // namespace simtime
