#pragma once
/// \file
/// Log-bucketed histogram registry for the virtual-time metrics layer.
///
/// This is the *engine* under `core/metrics`, exactly as `tracebuf` is the
/// engine under `core/trace`: it lives in simtime (the lowest layer) so
/// that cellsim, mpisim and core can all record into it without layering
/// inversions, and the CellPilot meaning of each metric (which seam feeds
/// it, what the report looks like) is layered on top in `core/metrics`.
///
/// Design constraints, shared with tracebuf and in the same order:
///  1. Zero cost when disarmed: every seam guards its record with
///     `if (metrics::armed())` — one relaxed atomic load and a branch.
///  2. Never perturb virtual time: recording reads clocks the seam already
///     holds; it neither advances nor joins any clock, so armed and
///     disarmed runs are bit-for-bit identical in virtual time.
///  3. Deterministic canonical drain: series are sorted by their key —
///     (kind, route type, channel, entity) — which depends only on what
///     was recorded, never on host scheduling; and the histogram itself is
///     exact-integer state (bucket counts, sum, min, max), so two runs of
///     a deterministic program drain byte-identical data.
///
/// Unlike tracebuf there is no per-thread ring: a histogram update is a
/// few integer ops, so all threads share one mutex-protected table.  That
/// keeps `snapshot()` safe to call mid-run (PI_GetMetricsSnapshot) where
/// tracebuf's drain demands full quiescence.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "simtime/sim_time.hpp"

namespace simtime::metrics {

/// What is being measured.  CellPilot-flavoured names for the same reason
/// tracebuf's kinds are: the consumers own the meaning, the engine just
/// keys on the tag.
enum class Kind : std::uint8_t {
  kMsgLatency = 0,     ///< end-to-end write-begin -> read-end, per channel
  kReadBlock,          ///< PI_Read / spe_read blocking time
  kCopilotQueueWait,   ///< request ready -> Co-Pilot starts serving it
  kCopilotService,     ///< Co-Pilot handle_request duration
  kMboxWait,           ///< mailbox entry dwell time (occupancy proxy)
  kRetransmitDelay,    ///< reliable-transport ladder delay per send
  kHandleWait,         ///< PI_Wait / PI_WaitAny blocking time per handle
  kSpawnLatency,       ///< PI_SpawnSPE call -> SPE program start
  kRespawnLatency,     ///< SPE death -> respawned occupant start (backoff
                       ///< included), per supervised respawn
  kCkptQuiesce,        ///< coordinated-cut open -> last shard contributed,
                       ///< per committed checkpoint
  kRestoreLatency,     ///< blade kill -> restored contexts start, per
                       ///< checkpoint restore
};

/// Stable lower-case token for a kind (used in report JSON and tests).
const char* kind_name(Kind kind);

/// Number of distinct kinds (for iteration in tests/tools).
inline constexpr int kKindCount = static_cast<int>(Kind::kRestoreLatency) + 1;

/// Log-linear (HDR-style) histogram over non-negative virtual-ns values.
///
/// Values below 2^kSubBits index a bucket directly (exact); larger values
/// land in one of 2^kSubBits sub-buckets per power of two, giving a
/// bounded relative error of 2^-kSubBits (~3%) on percentile reads while
/// count/sum/min/max stay exact integers.  All state is integral, so a
/// deterministic value stream reproduces the histogram bit-for-bit.
class Histogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave.
  static constexpr int kSubBits = 5;
  static constexpr std::int64_t kSubBuckets = std::int64_t{1} << kSubBits;

  /// Record one value.  Negative values are clamped to 0 (metric values
  /// are virtual durations, which cannot be negative).
  void add(std::int64_t value_ns);

  /// Fold another histogram into this one.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// Smallest / largest recorded value (0 when empty).
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }

  /// Nearest-rank percentile, p in [0,100].  Returns the lower bound of
  /// the bucket holding the rank, clamped into [min(), max()] so the
  /// answer is always a value that could have been recorded.  0 if empty.
  std::int64_t percentile(int p) const;

  /// Bucket index for a value — exposed for the engine unit test.
  static std::size_t bucket_index(std::int64_t value_ns);
  /// Lower bound of the value range covered by a bucket index.
  static std::int64_t bucket_lower_bound(std::size_t index);

 private:
  std::vector<std::uint64_t> buckets_;  ///< grown lazily to the max index
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Registry key.  `entity` is the recorder name (rank / SPE / Co-Pilot),
/// `route_type` the Table I type 1..5 (0 if unknown) and `channel` the
/// CellPilot channel id (-1 if not channel traffic).
struct Key {
  Kind kind = Kind::kMsgLatency;
  std::int8_t route_type = 0;
  std::int32_t channel = -1;
  std::string entity;

  bool operator<(const Key& other) const;
  bool operator==(const Key& other) const;
};

/// One drained series: a key and its histogram.
struct Series {
  Key key;
  Histogram hist;
};

namespace detail {
extern std::atomic<bool> g_armed;
void record_slow(Kind kind, std::int8_t route_type, std::int32_t channel,
                 const std::string& entity, std::int64_t value_ns);
}  // namespace detail

/// True while at least one consumer (metrics session or test capture)
/// wants samples.  Seams must check this before computing a value.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Record one sample.  No-op when disarmed (callers should still guard
/// with armed() so the value computation itself is skipped).
inline void record(Kind kind, std::int8_t route_type, std::int32_t channel,
                   const std::string& entity, std::int64_t value_ns) {
  if (armed()) detail::record_slow(kind, route_type, channel, entity, value_ns);
}

/// Arm / disarm are reference counted, same contract as tracebuf, so a
/// metrics session and a scoped test capture can overlap.
void arm();
void disarm();

/// Drop all accumulated series.
void clear();

/// Move all series out in canonical order — sorted by (kind, route type,
/// channel, entity) — and clear the registry.
std::vector<Series> drain();

/// Copy all series out in canonical order *without* clearing.  Safe to
/// call while other threads record (the table lock covers the copy), so
/// PI_GetMetricsSnapshot can harvest mid-shutdown.
std::vector<Series> snapshot();

}  // namespace simtime::metrics
