#include "simtime/sim_time.hpp"

#include <cmath>
#include <cstdio>

namespace simtime {

std::string format(SimTime t) {
  char buf[64];
  const double abs_ns = std::fabs(static_cast<double>(t));
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(t));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", to_us(t));
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof buf, "%.4f s", static_cast<double>(t) / 1e9);
  }
  return buf;
}

}  // namespace simtime
