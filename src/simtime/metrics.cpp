#include "simtime/metrics.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <mutex>

namespace simtime::metrics {

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kMsgLatency: return "msg_latency";
    case Kind::kReadBlock: return "read_block";
    case Kind::kCopilotQueueWait: return "copilot_queue_wait";
    case Kind::kCopilotService: return "copilot_service";
    case Kind::kMboxWait: return "mbox_wait";
    case Kind::kRetransmitDelay: return "retransmit_delay";
    case Kind::kHandleWait: return "handle_wait";
    case Kind::kSpawnLatency: return "spawn_latency";
    case Kind::kRespawnLatency: return "respawn_latency";
    case Kind::kCkptQuiesce: return "ckpt_quiesce";
    case Kind::kRestoreLatency: return "restore_latency";
  }
  return "?";
}

std::size_t Histogram::bucket_index(std::int64_t value_ns) {
  if (value_ns < kSubBuckets) {
    return static_cast<std::size_t>(value_ns < 0 ? 0 : value_ns);
  }
  const auto v = static_cast<std::uint64_t>(value_ns);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBits;
  const auto sub = static_cast<std::size_t>((v >> shift) & (kSubBuckets - 1));
  return static_cast<std::size_t>(kSubBuckets) +
         static_cast<std::size_t>(msb - kSubBits) *
             static_cast<std::size_t>(kSubBuckets) +
         sub;
}

std::int64_t Histogram::bucket_lower_bound(std::size_t index) {
  if (index < static_cast<std::size_t>(kSubBuckets)) {
    return static_cast<std::int64_t>(index);
  }
  const std::size_t off = index - static_cast<std::size_t>(kSubBuckets);
  const int msb = static_cast<int>(off / kSubBuckets) + kSubBits;
  const auto sub = static_cast<std::int64_t>(off % kSubBuckets);
  return (std::int64_t{1} << msb) + (sub << (msb - kSubBits));
}

void Histogram::add(std::int64_t value_ns) {
  if (value_ns < 0) value_ns = 0;
  const std::size_t idx = bucket_index(value_ns);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = value_ns;
    max_ = value_ns;
  } else {
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
  }
  ++count_;
  sum_ += static_cast<std::uint64_t>(value_ns);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::int64_t Histogram::percentile(int p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Nearest-rank with ceiling: rank 1..count_.
  std::uint64_t rank = (count_ * static_cast<std::uint64_t>(p) + 99) / 100;
  if (rank < 1) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      const std::int64_t rep = bucket_lower_bound(i);
      return std::clamp(rep, min_, max_);
    }
  }
  return max_;
}

bool Key::operator<(const Key& other) const {
  if (kind != other.kind) return kind < other.kind;
  if (route_type != other.route_type) return route_type < other.route_type;
  if (channel != other.channel) return channel < other.channel;
  return entity < other.entity;
}

bool Key::operator==(const Key& other) const {
  return kind == other.kind && route_type == other.route_type &&
         channel == other.channel && entity == other.entity;
}

namespace {

/// One shared table for every recording thread.  A histogram update is a
/// handful of integer ops, so lock contention is negligible next to the
/// marshalling work each seam already does; in exchange snapshot() works
/// mid-run.  std::map keeps the table permanently in key order, so drain
/// and snapshot are a straight copy.  Leaky singleton for the same reason
/// as tracebuf's registry: thread-local destructors may outlive statics.
struct Table {
  std::mutex mu;
  std::map<Key, Histogram> series;
};

Table& table() {
  static Table* g = new Table;
  return *g;
}

std::mutex g_arm_mu;
int g_arm_count = 0;

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

void record_slow(Kind kind, std::int8_t route_type, std::int32_t channel,
                 const std::string& entity, std::int64_t value_ns) {
  Key key;
  key.kind = kind;
  key.route_type = route_type;
  key.channel = channel;
  key.entity = entity;
  Table& t = table();
  std::lock_guard lock(t.mu);
  t.series[std::move(key)].add(value_ns);
}

}  // namespace detail

void arm() {
  std::lock_guard lock(g_arm_mu);
  if (++g_arm_count == 1) {
    detail::g_armed.store(true, std::memory_order_relaxed);
  }
}

void disarm() {
  std::lock_guard lock(g_arm_mu);
  if (g_arm_count > 0 && --g_arm_count == 0) {
    detail::g_armed.store(false, std::memory_order_relaxed);
  }
}

void clear() {
  Table& t = table();
  std::lock_guard lock(t.mu);
  t.series.clear();
}

std::vector<Series> drain() {
  Table& t = table();
  std::lock_guard lock(t.mu);
  std::vector<Series> out;
  out.reserve(t.series.size());
  for (auto& [key, hist] : t.series) {
    out.push_back(Series{key, std::move(hist)});
  }
  t.series.clear();
  return out;
}

std::vector<Series> snapshot() {
  Table& t = table();
  std::lock_guard lock(t.mu);
  std::vector<Series> out;
  out.reserve(t.series.size());
  for (const auto& [key, hist] : t.series) {
    out.push_back(Series{key, hist});
  }
  return out;
}

}  // namespace simtime::metrics
