#include "simtime/tracebuf.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

namespace simtime::tracebuf {

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kMboxPush: return "mbox_push";
    case Kind::kMboxPop: return "mbox_pop";
    case Kind::kDmaGet: return "dma_get";
    case Kind::kDmaPut: return "dma_put";
    case Kind::kMpiSend: return "mpi_send";
    case Kind::kMpiRecv: return "mpi_recv";
    case Kind::kMpiDrop: return "mpi_drop";
    case Kind::kPilotWrite: return "pilot_write";
    case Kind::kPilotRead: return "pilot_read";
    case Kind::kSpeWrite: return "spe_write";
    case Kind::kSpeRead: return "spe_read";
    case Kind::kCopilotRequest: return "copilot_request";
    case Kind::kCopilotRelay: return "copilot_relay";
    case Kind::kCopilotPair: return "copilot_pair";
    case Kind::kCopilotDeliver: return "copilot_deliver";
    case Kind::kCopilotPark: return "copilot_park";
    case Kind::kCopilotRetry: return "copilot_retry";
    case Kind::kCopilotTimeout: return "copilot_timeout";
    case Kind::kCopilotFault: return "copilot_fault";
    case Kind::kNetAck: return "net_ack";
    case Kind::kNetRetransmit: return "net_retransmit";
    case Kind::kNetDuplicate: return "net_duplicate";
    case Kind::kNetCorrupt: return "net_corrupt";
    case Kind::kNetReorder: return "net_reorder";
    case Kind::kCopilotFailover: return "copilot_failover";
    case Kind::kOpSubmit: return "op_submit";
    case Kind::kOpComplete: return "op_complete";
    case Kind::kSpeSpawn: return "spe_spawn";
    case Kind::kSpeRespawn: return "spe_respawn";
    case Kind::kEpochFlush: return "epoch_flush";
    case Kind::kCkptBegin: return "ckpt_begin";
    case Kind::kCkptCut: return "ckpt_cut";
    case Kind::kCkptCommit: return "ckpt_commit";
    case Kind::kBladeRestore: return "blade_restore";
    case Kind::kSpeRetire: return "spe_retire";
    case Kind::kUser: return "user";
  }
  return "?";
}

namespace {

/// Growth limit per ring.  A deterministic program overflows (or not)
/// identically on every run, so hitting the cap costs coverage, never
/// determinism.
constexpr std::size_t kMaxEventsPerRing = std::size_t{1} << 20;

/// Requested black-box tail length; 0 = black-box off (the default, so
/// the armed fast path pays one extra relaxed load only while tracing).
std::atomic<std::size_t> g_blackbox_cap{0};

/// Single-producer event ring.  Only the owning thread appends; drains
/// happen at quiescence (no producer running), so a plain vector is safe.
/// The black-box tail is the exception: it may be *read* mid-run by the
/// flight recorder on a fault path, so it carries its own lock.
struct Ring {
  std::vector<Event> events;
  std::uint64_t dropped = 0;
  bool in_use = false;  ///< guarded by Registry::mu

  std::mutex tail_mu;
  std::vector<Event> tail;      ///< circular, capacity g_blackbox_cap
  std::size_t tail_next = 0;    ///< overwrite cursor once full

  void push(const Event& e) {
    const std::size_t cap = g_blackbox_cap.load(std::memory_order_relaxed);
    if (cap != 0) {
      std::lock_guard lock(tail_mu);
      if (tail.size() < cap) {
        tail.push_back(e);
      } else {
        tail[tail_next] = e;
        tail_next = (tail_next + 1) % cap;
      }
    }
    if (events.size() >= kMaxEventsPerRing) {
      ++dropped;
      return;
    }
    events.push_back(e);
  }
};

/// Owns every ring ever created.  Rings are pooled: a thread leases one on
/// first record and its thread-local handle returns it at thread exit, so
/// the many short-lived SPE/rank threads of a long test binary share a
/// bounded set.  Leaked on purpose — thread-local destructors may run
/// after static destruction.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;

  Ring* lease() {
    std::lock_guard lock(mu);
    for (auto& r : rings) {
      if (!r->in_use) {
        r->in_use = true;
        return r.get();
      }
    }
    rings.push_back(std::make_unique<Ring>());
    rings.back()->in_use = true;
    return rings.back().get();
  }

  void release(Ring* ring) {
    std::lock_guard lock(mu);
    ring->in_use = false;  // events stay buffered until the next drain
  }
};

Registry& registry() {
  static Registry* g = new Registry;  // leaky: see struct comment
  return *g;
}

/// Thread-local lease.  The destructor returns the ring (with its events
/// still buffered) so the next short-lived thread can reuse the storage.
struct Lease {
  Ring* ring = nullptr;
  ~Lease() {
    if (ring != nullptr) registry().release(ring);
  }
};

thread_local Lease t_lease;

std::mutex g_arm_mu;
int g_arm_count = 0;

/// Canonical order: every key is a recorded field, so the result is
/// independent of ring count, lease order and host scheduling.  Events
/// identical in all keys are interchangeable, so ties cannot introduce
/// nondeterminism either.
bool canonical_less(const Event& a, const Event& b) {
  if (a.begin != b.begin) return a.begin < b.begin;
  if (a.end != b.end) return a.end < b.end;
  const int ec = std::strcmp(a.entity, b.entity);
  if (ec != 0) return ec < 0;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.channel != b.channel) return a.channel < b.channel;
  if (a.aux != b.aux) return a.aux < b.aux;
  return a.bytes < b.bytes;
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

void record_slow(const Event& e) {
  if (t_lease.ring == nullptr) t_lease.ring = registry().lease();
  t_lease.ring->push(e);
}

}  // namespace detail

void record(Kind kind, const std::string& entity, SimTime begin, SimTime end,
            std::uint64_t bytes, std::int32_t channel, std::int8_t route_type,
            std::int64_t aux) {
  Event e;
  e.begin = begin;
  e.end = end;
  e.bytes = bytes;
  e.aux = aux;
  e.channel = channel;
  e.route_type = route_type;
  e.kind = kind;
  const std::size_t n = std::min(entity.size(), kEntityBytes - 1);
  std::memcpy(e.entity, entity.data(), n);
  e.entity[n] = '\0';
  record(e);
}

void arm() {
  std::lock_guard lock(g_arm_mu);
  if (++g_arm_count == 1) {
    detail::g_armed.store(true, std::memory_order_relaxed);
  }
}

void disarm() {
  std::lock_guard lock(g_arm_mu);
  if (g_arm_count > 0 && --g_arm_count == 0) {
    detail::g_armed.store(false, std::memory_order_relaxed);
  }
}

void clear() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (auto& r : reg.rings) {
    r->events.clear();
    r->dropped = 0;
  }
}

std::vector<Event> drain() {
  std::vector<Event> out;
  {
    Registry& reg = registry();
    std::lock_guard lock(reg.mu);
    std::size_t total = 0;
    for (const auto& r : reg.rings) total += r->events.size();
    out.reserve(total);
    for (auto& r : reg.rings) {
      out.insert(out.end(), r->events.begin(), r->events.end());
      r->events.clear();
      r->dropped = 0;
    }
  }
  std::sort(out.begin(), out.end(), canonical_less);
  return out;
}

std::uint64_t dropped() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  std::uint64_t n = 0;
  for (const auto& r : reg.rings) n += r->dropped;
  return n;
}

void set_blackbox(std::size_t per_thread_tail) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  g_blackbox_cap.store(per_thread_tail, std::memory_order_relaxed);
  if (per_thread_tail == 0) {
    for (auto& r : reg.rings) {
      std::lock_guard tail_lock(r->tail_mu);
      r->tail.clear();
      r->tail.shrink_to_fit();
      r->tail_next = 0;
    }
  }
}

std::vector<Event> blackbox_snapshot() {
  std::vector<Event> out;
  Registry& reg = registry();
  std::lock_guard lock(reg.mu);
  for (auto& r : reg.rings) {
    std::lock_guard tail_lock(r->tail_mu);
    out.insert(out.end(), r->tail.begin(), r->tail.end());
  }
  std::sort(out.begin(), out.end(), canonical_less);
  return out;
}

}  // namespace simtime::tracebuf
