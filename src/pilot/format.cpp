#include "pilot/format.hpp"

#include <atomic>
#include <cctype>

namespace pilot {

std::size_t element_size(TypeCode type) {
  switch (type) {
    case TypeCode::kByte: return 1;
    case TypeCode::kChar: return 1;
    case TypeCode::kInt16: return 2;
    case TypeCode::kInt32: return 4;
    case TypeCode::kInt64: return 8;
    case TypeCode::kUInt32: return 4;
    case TypeCode::kUInt64: return 8;
    case TypeCode::kFloat: return 4;
    case TypeCode::kDouble: return 8;
    case TypeCode::kLongDouble: return 16;
  }
  return 0;
}

const char* type_spec(TypeCode type) {
  switch (type) {
    case TypeCode::kByte: return "b";
    case TypeCode::kChar: return "c";
    case TypeCode::kInt16: return "hd";
    case TypeCode::kInt32: return "d";
    case TypeCode::kInt64: return "ld";
    case TypeCode::kUInt32: return "u";
    case TypeCode::kUInt64: return "lu";
    case TypeCode::kFloat: return "f";
    case TypeCode::kDouble: return "lf";
    case TypeCode::kLongDouble: return "Lf";
  }
  return "?";
}

std::size_t Format::payload_bytes() const {
  std::size_t total = 0;
  for (const FormatItem& item : items) {
    if (item.star) {
      throw PilotError(ErrorCode::kInternal,
                       "payload_bytes on unresolved '*' format");
    }
    total += element_size(item.type) * item.count;
  }
  return total;
}

namespace {

[[noreturn]] void fail(std::string_view fmt, std::size_t pos,
                       const std::string& why) {
  throw PilotError(ErrorCode::kFormat,
                   "bad format \"" + std::string(fmt) + "\" at offset " +
                       std::to_string(pos) + ": " + why);
}

std::atomic<std::uint64_t> g_parse_count{0};

}  // namespace

std::uint64_t format_parse_count() {
  return g_parse_count.load(std::memory_order_relaxed);
}

void reset_format_parse_count() {
  g_parse_count.store(0, std::memory_order_relaxed);
}

Format parse_format(std::string_view fmt) {
  g_parse_count.fetch_add(1, std::memory_order_relaxed);
  Format out;
  std::size_t i = 0;
  while (i < fmt.size()) {
    if (std::isspace(static_cast<unsigned char>(fmt[i]))) {
      ++i;
      continue;
    }
    if (fmt[i] != '%') fail(fmt, i, "expected '%'");
    ++i;
    if (i >= fmt.size()) fail(fmt, i, "dangling '%'");

    FormatItem item;
    if (fmt[i] == '*') {
      item.star = true;
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(fmt[i]))) {
      std::uint64_t count = 0;
      while (i < fmt.size() &&
             std::isdigit(static_cast<unsigned char>(fmt[i]))) {
        count = count * 10 + static_cast<std::uint64_t>(fmt[i] - '0');
        if (count > 0xFFFFFFFFull) fail(fmt, i, "count too large");
        ++i;
      }
      if (count == 0) fail(fmt, i, "count must be positive");
      item.count = static_cast<std::uint32_t>(count);
    }
    if (i >= fmt.size()) fail(fmt, i, "missing conversion type");

    switch (fmt[i]) {
      case 'b': item.type = TypeCode::kByte; ++i; break;
      case 'c': item.type = TypeCode::kChar; ++i; break;
      case 'd': item.type = TypeCode::kInt32; ++i; break;
      case 'f': item.type = TypeCode::kFloat; ++i; break;
      case 'u': item.type = TypeCode::kUInt32; ++i; break;
      case 'h':
        ++i;
        if (i >= fmt.size() || fmt[i] != 'd') fail(fmt, i, "expected 'hd'");
        item.type = TypeCode::kInt16;
        ++i;
        break;
      case 'l':
        ++i;
        if (i >= fmt.size()) fail(fmt, i, "dangling 'l'");
        if (fmt[i] == 'd') {
          item.type = TypeCode::kInt64;
        } else if (fmt[i] == 'u') {
          item.type = TypeCode::kUInt64;
        } else if (fmt[i] == 'f') {
          item.type = TypeCode::kDouble;
        } else {
          fail(fmt, i, "expected 'ld', 'lu' or 'lf'");
        }
        ++i;
        break;
      case 'L':
        ++i;
        if (i >= fmt.size() || fmt[i] != 'f') fail(fmt, i, "expected 'Lf'");
        item.type = TypeCode::kLongDouble;
        ++i;
        break;
      default:
        fail(fmt, i, std::string("unknown conversion '%") + fmt[i] + "'");
    }
    out.items.push_back(item);
  }
  // An empty format ("") is legal per the grammar (item*): it describes a
  // zero-length message — a pure synchronization token.  The frame layer
  // and the SPE staging path both support zero payload bytes.
  return out;
}

std::uint32_t signature(const ResolvedFormat& fmt) {
  // FNV-1a over (type, count) pairs.
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      h ^= (v >> (8 * b)) & 0xFFu;
      h *= 16777619u;
    }
  };
  for (const FormatItem& item : fmt.items) {
    if (item.star) {
      throw PilotError(ErrorCode::kInternal,
                       "signature of unresolved '*' format");
    }
    mix(static_cast<std::uint32_t>(item.type));
    mix(item.count);
  }
  return h;
}

std::uint32_t signature(const Format& fmt,
                        std::span<const std::uint32_t> counts) {
  if (counts.size() != fmt.items.size()) {
    throw PilotError(ErrorCode::kInternal,
                     "signature: resolved counts do not match format items");
  }
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      h ^= (v >> (8 * b)) & 0xFFu;
      h *= 16777619u;
    }
  };
  for (std::size_t i = 0; i < fmt.items.size(); ++i) {
    mix(static_cast<std::uint32_t>(fmt.items[i].type));
    mix(counts[i]);
  }
  return h;
}

std::string to_string(const ResolvedFormat& fmt) {
  std::string out;
  for (const FormatItem& item : fmt.items) {
    if (!out.empty()) out += ' ';
    out += '%';
    if (item.star) {
      out += '*';
    } else if (item.count != 1) {
      out += std::to_string(item.count);
    }
    out += type_spec(item.type);
  }
  return out;
}

}  // namespace pilot
