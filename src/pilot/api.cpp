// api.cpp — implementation of the public PI_* API (rank-side paths and
// dispatch; SPE-side data movement is delegated to the registered
// CellTransport, implemented by the CellPilot layer in src/core).
#include "pilot/pilot.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "cellsim/spu.hpp"
#include "core/checkpoint.hpp"
#include "core/completion.hpp"
#include "core/epoch.hpp"
#include "core/faultplan.hpp"
#include "core/flightrec.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "core/router.hpp"
#include "core/telemetry.hpp"
#include "core/trace.hpp"
#include "mpisim/reliable.hpp"
#include "pilot/byteorder.hpp"
#include "pilot/context.hpp"
#include "pilot/deadlock.hpp"
#include "pilot/wire.hpp"
#include "simtime/timeseries.hpp"
#include "simtime/trace.hpp"
#include "simtime/tracebuf.hpp"

namespace pilot {
namespace {

/// va_end on scope exit.
struct VaGuard {
  va_list& ap;
  ~VaGuard() { va_end(ap); }
};

[[noreturn]] void usage_error(const char* file, int line,
                              const std::string& detail) {
  throw PilotError(ErrorCode::kUsage, detail, file, line);
}

PilotContext& ctx_in_phase(Phase phase, const char* what,
                           const char* file = nullptr, int line = 0) {
  PilotContext& ctx = context();
  if (ctx.phase != phase) {
    throw PilotError(ErrorCode::kUsage,
                     std::string(what) + " called in the wrong phase", file,
                     line);
  }
  return ctx;
}

/// Charges the Pilot library cost of one call moving `bytes` of payload.
void charge_rank_call(PilotContext& ctx, std::size_t bytes) {
  const simtime::CostModel& cost = ctx.app().cluster().cost();
  ctx.mpi().clock().advance(cost.pilot_call_overhead +
                            cost.pilot_per_byte *
                                static_cast<simtime::SimTime>(bytes));
}

/// The compiled route of a channel.  Every data-plane entry point reaches a
/// route only after its phase check, so a null pointer is an internal bug,
/// not user error.
cellpilot::Route& route_of(const PI_CHANNEL& ch, const char* file, int line) {
  if (ch.route == nullptr) {
    throw PilotError(ErrorCode::kInternal,
                     "channel " + ch.name +
                         " has no compiled route (PI_StartAll missing?)",
                     file, line);
  }
  return *ch.route;
}

/// Signature of the message about to cross the wire: precomputed for fully
/// static formats, derived from the resolved counts for '*' formats.
std::uint32_t wire_signature(const cellpilot::FormatPlan& plan,
                             std::span<const std::uint32_t> counts) {
  return plan.has_star ? signature(plan.parsed, counts) : plan.wire_signature;
}

/// Overwrites the header slot at the front of `staging` ([header][payload]).
/// `epoch` is the channel's current writer incarnation (0 until supervision
/// ever respawns the writer, which never happens to a rank writer — the
/// stamp keeps the wire self-describing either way).
void frame_in_place(std::vector<std::byte>& staging, std::uint32_t sig,
                    std::uint32_t epoch) {
  WireHeader hdr;
  hdr.magic = kWireMagic;
  hdr.signature = sig;
  hdr.epoch = epoch;
  hdr.payload_bytes = staging.size() - sizeof(WireHeader);
  std::memcpy(staging.data(), &hdr, sizeof hdr);
}

/// Throws the rank-side error for a channel whose SPE peer died: the same
/// one-line shape every fault diagnostic uses — source location (from the
/// PI_ macro), channel name, Table I type, and the Co-Pilot's detail.
[[noreturn]] void throw_peer_failure(std::uint32_t status,
                                     const std::string& detail,
                                     const PI_CHANNEL& ch, const char* file,
                                     int line) {
  ErrorCode code = ErrorCode::kSpeFault;
  if (status == static_cast<std::uint32_t>(
                    cellpilot::CompletionStatus::kSpeTimeout)) {
    code = ErrorCode::kSpeTimeout;
  } else if (status == static_cast<std::uint32_t>(
                           cellpilot::CompletionStatus::kCopilotFault)) {
    code = ErrorCode::kCopilotFault;
  } else if (status == static_cast<std::uint32_t>(
                           cellpilot::CompletionStatus::kSpeRestarted)) {
    code = ErrorCode::kSpeRestarted;
  }
  std::string label = "channel " + ch.name;
  if (ch.route != nullptr) {
    label += " (Table I type " +
             std::to_string(static_cast<int>(ch.route->type)) + ")";
  }
  throw PilotError(code, label + ": " + detail, file, line);
}

/// Receives one channel frame for a rank-side reader, discarding fault
/// frames from a superseded writer incarnation.  A stale-epoch PILF
/// describes a death that Co-Pilot supervision already absorbed with a
/// respawn — surfacing it would fail an operation the fresh incarnation is
/// about to satisfy.  Data frames are never epoch-filtered: bytes a dying
/// incarnation delivered are good bytes (exactly-once is the completion
/// engine's job, not the reader's).  Deaths that exhaust the respawn budget
/// re-poison the channel with a *current*-epoch PILF, so the loop cannot
/// starve a real failure.
std::vector<std::byte> recv_channel_frame(PilotContext& ctx,
                                          const PI_CHANNEL& ch,
                                          const cellpilot::Route& rt) {
  for (;;) {
    std::vector<std::byte> framed =
        ctx.mpi().recv_any_size(rt.read_source, rt.tag);
    if (is_fault_frame(framed) &&
        parse_fault_frame(framed).epoch < cellpilot::epochs::current(ch.id)) {
      continue;
    }
    return framed;
  }
}

/// A fault frame that reports the writing SPE's *own* death also lands in
/// the process-failure registry.  The Co-Pilot publishes the death there
/// too, but only after its wire deposits — a rank that consumed the frame
/// first could otherwise act (e.g. PI_SpawnSPE the dead process's slot)
/// before the registry catches up.  Recording at the observation point
/// makes "this rank saw the death" happen-before everything the rank does
/// next.  First report wins, so double recording is harmless; Co-Pilot
/// faults are *not* recorded — the writer process is still alive then.
void note_peer_death(PilotApp& app, const PI_CHANNEL& ch,
                     const FaultFrame& fault) {
  if (fault.status ==
          static_cast<std::uint32_t>(cellpilot::CompletionStatus::kSpeFault) ||
      fault.status == static_cast<std::uint32_t>(
                          cellpilot::CompletionStatus::kSpeTimeout)) {
    app.report_process_failure(
        ch.from, {fault.status, fault.fault_code, fault.detail});
  }
}

CellTransport& transport_or_die(PilotApp& app, const char* file, int line) {
  if (app.transport() == nullptr) {
    throw PilotError(ErrorCode::kUsage,
                     "channel has an SPE endpoint but the CellPilot "
                     "transport is not active (plain Pilot run?)",
                     file, line);
  }
  return *app.transport();
}

void write_impl(const char* file, int line, PI_CHANNEL* ch, const char* fmt,
                va_list args) {
  if (ch == nullptr) usage_error(file, line, "PI_Write: null channel");

  // --- SPE-side writer ------------------------------------------------
  if (SpeDispatch* sd = spe_dispatch()) {
    if (sd->process_id != ch->from) {
      throw PilotError(ErrorCode::kEndpoint,
                       "process P" + std::to_string(sd->process_id) +
                           " is not the writer of channel " + ch->name,
                       file, line);
    }
    cellpilot::Route& rt = route_of(*ch, file, line);
    cellpilot::WriterState& ws = rt.writer;
    const cellpilot::FormatPlan& plan = ws.formats.lookup(fmt);
    ws.staging.clear();
    marshal_append(plan.parsed, args, ws.staging, ws.counts);
    const std::uint32_t sig = wire_signature(plan, ws.counts);
    if (rt.writer_big_endian) {
      swap_element_bytes(plan.parsed, ws.counts, ws.staging);
    }
    const simtime::SimTime begin = cellsim::spu::self().clock().now();
    // The latency ledger push happens *before* the transport hand-off so
    // it happens-before any read completion of this message (the reader's
    // pop can otherwise race a type-4/5 writer's host-side return).
    if (simtime::metrics::armed()) {
      cellpilot::metrics::LatencyLedger::global().push(ch->id, begin);
    }
    sd->app->transport()->spe_write(*ch, sig, ws.staging);
    cellpilot::trace::ChannelCounters::global().add_message(ch->id,
                                                            ws.staging.size());
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(simtime::tracebuf::Kind::kSpeWrite,
                                cellsim::spu::self().name(), begin,
                                cellsim::spu::self().clock().now(),
                                ws.staging.size(), ch->id,
                                static_cast<std::int8_t>(rt.type));
    }
    if (simtime::timeseries::armed()) {
      simtime::timeseries::record(
          simtime::timeseries::Kind::kSent,
          static_cast<std::int8_t>(rt.type), ch->id,
          cellsim::spu::self().name(), begin,
          static_cast<std::int64_t>(ws.staging.size()));
    }
    return;
  }

  // --- rank-side writer -------------------------------------------------
  PilotContext& ctx = ctx_in_phase(Phase::kExecution, "PI_Write", file, line);
  if (ctx.my_process != ch->from) {
    throw PilotError(ErrorCode::kEndpoint,
                     "process P" + std::to_string(ctx.my_process) +
                         " is not the writer of channel " + ch->name,
                     file, line);
  }
  PilotApp& app = ctx.app();
  cellpilot::Route& rt = route_of(*ch, file, line);
  if (rt.needs_transport) transport_or_die(app, file, line);
  // A reader that already died can never consume this message: fail the
  // write with the peer's recorded failure instead of sending into a void.
  if (auto failure = app.process_failure(ch->to)) {
    throw_peer_failure(failure->status, failure->detail, *ch, file, line);
  }

  // Stage [header][payload] in the channel's reused buffer and send it as
  // one frame; rank-backed writers always MPI-send — to the reader's rank,
  // or to the Co-Pilot standing in for a reading SPE.
  cellpilot::WriterState& ws = rt.writer;
  const cellpilot::FormatPlan& plan = ws.formats.lookup(fmt);
  ws.staging.resize(sizeof(WireHeader));
  marshal_append(plan.parsed, args, ws.staging, ws.counts);
  const std::size_t payload_bytes = ws.staging.size() - sizeof(WireHeader);
  const std::uint32_t sig = wire_signature(plan, ws.counts);
  const simtime::SimTime call_begin = ctx.mpi().clock().now();
  charge_rank_call(ctx, payload_bytes);

  const std::span<std::byte> payload =
      std::span(ws.staging).subspan(sizeof(WireHeader));
  if (rt.writer_big_endian) {
    swap_element_bytes(plan.parsed, ws.counts, payload);
  }
  const std::uint32_t epoch = cellpilot::epochs::current(ch->id);
  frame_in_place(ws.staging, sig, epoch);
  if (simtime::metrics::armed()) {
    cellpilot::metrics::LatencyLedger::global().push(ch->id, call_begin);
  }
  mpisim::reliable::set_send_epoch(epoch);
  ctx.mpi().send(ws.staging.data(), ws.staging.size(), rt.write_dest, rt.tag);
  cellpilot::trace::ChannelCounters::global().add_message(ch->id,
                                                          payload_bytes);
  simtime::Trace::global().record(
      ctx.app().cluster().world().info(ctx.rank()).name,
      simtime::TraceKind::kPilotCall,
      "PI_Write " + ch->name + " " + std::to_string(payload_bytes) + "B",
      0, ctx.mpi().clock().now());
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(
        simtime::tracebuf::Kind::kPilotWrite,
        ctx.app().cluster().world().info(ctx.rank()).name, call_begin,
        ctx.mpi().clock().now(), payload_bytes, ch->id,
        static_cast<std::int8_t>(rt.type));
  }
  if (simtime::timeseries::armed()) {
    simtime::timeseries::record(
        simtime::timeseries::Kind::kSent, static_cast<std::int8_t>(rt.type),
        ch->id, ctx.app().cluster().world().info(ctx.rank()).name,
        call_begin, static_cast<std::int64_t>(payload_bytes));
  }
}

void read_impl(const char* file, int line, PI_CHANNEL* ch, const char* fmt,
               va_list args) {
  if (ch == nullptr) usage_error(file, line, "PI_Read: null channel");

  // --- SPE-side reader --------------------------------------------------
  if (SpeDispatch* sd = spe_dispatch()) {
    if (sd->process_id != ch->to) {
      throw PilotError(ErrorCode::kEndpoint,
                       "process P" + std::to_string(sd->process_id) +
                           " is not the reader of channel " + ch->name,
                       file, line);
    }
    cellpilot::Route& rt = route_of(*ch, file, line);
    cellpilot::ReaderState& rs = rt.reader;
    const cellpilot::FormatPlan& plan = rs.formats.lookup(fmt);
    build_read_plan_into(plan.parsed, args, rs.plan);
    const std::uint32_t sig =
        plan.has_star ? signature(rs.plan.fmt) : plan.wire_signature;
    rs.staging.resize(rs.plan.payload_bytes);
    const simtime::SimTime begin = cellsim::spu::self().clock().now();
    sd->app->transport()->spe_read(*ch, sig, rs.staging);
    const simtime::SimTime end = cellsim::spu::self().clock().now();
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(simtime::tracebuf::Kind::kSpeRead,
                                cellsim::spu::self().name(), begin, end,
                                rs.staging.size(), ch->id,
                                static_cast<std::int8_t>(rt.type));
    }
    if (simtime::metrics::armed()) {
      namespace sm = simtime::metrics;
      const std::string& entity = cellsim::spu::self().name();
      const auto route = static_cast<std::int8_t>(rt.type);
      sm::record(sm::Kind::kReadBlock, route, ch->id, entity, end - begin);
      simtime::SimTime write_begin = 0;
      if (cellpilot::metrics::LatencyLedger::global().pop(ch->id,
                                                          &write_begin)) {
        sm::record(sm::Kind::kMsgLatency, route, ch->id, entity,
                   end - write_begin);
      }
    }
    if (simtime::timeseries::armed()) {
      simtime::timeseries::record(
          simtime::timeseries::Kind::kDelivered,
          static_cast<std::int8_t>(rt.type), ch->id,
          cellsim::spu::self().name(), end,
          static_cast<std::int64_t>(rs.staging.size()));
    }
    if (rt.writer_big_endian) swap_element_bytes(rs.plan.fmt, rs.staging);
    scatter(rs.plan, rs.staging);
    return;
  }

  // --- rank-side reader ---------------------------------------------------
  PilotContext& ctx = ctx_in_phase(Phase::kExecution, "PI_Read", file, line);
  if (ctx.my_process != ch->to) {
    throw PilotError(ErrorCode::kEndpoint,
                     "process P" + std::to_string(ctx.my_process) +
                         " is not the reader of channel " + ch->name,
                     file, line);
  }
  PilotApp& app = ctx.app();
  cellpilot::Route& rt = route_of(*ch, file, line);
  if (rt.needs_transport) transport_or_die(app, file, line);

  // Rank-backed readers always receive one MPI frame — from the writer's
  // rank, or from the Co-Pilot relaying for a writing SPE.
  cellpilot::ReaderState& rs = rt.reader;
  const cellpilot::FormatPlan& plan = rs.formats.lookup(fmt);
  build_read_plan_into(plan.parsed, args, rs.plan);
  const std::uint32_t sig =
      plan.has_star ? signature(rs.plan.fmt) : plan.wire_signature;
  // A writer that died can no longer satisfy this read.  Anything already
  // on the wire (data or the Co-Pilot's fault frame) is consumed first;
  // with the wire empty, fail immediately instead of blocking forever.
  if (auto failure = app.process_failure(ch->from)) {
    if (!ctx.mpi().iprobe(rt.read_source, rt.tag)) {
      throw_peer_failure(failure->status, failure->detail, *ch, file, line);
    }
  }
  const simtime::SimTime call_begin = ctx.mpi().clock().now();
  notify_block(ctx, ch->from, ch->id);
  std::vector<std::byte> framed = recv_channel_frame(ctx, *ch, rt);
  notify_unblock(ctx);
  if (is_fault_frame(framed)) {
    const FaultFrame fault = parse_fault_frame(framed);
    note_peer_death(app, *ch, fault);
    throw_peer_failure(fault.status, fault.detail, *ch, file, line);
  }
  check_frame(framed, sig, rs.plan.payload_bytes, "channel " + ch->name);
  const std::span<std::byte> payload =
      std::span(framed).subspan(sizeof(WireHeader));
  if (rt.writer_big_endian) swap_element_bytes(rs.plan.fmt, payload);
  scatter(rs.plan, payload);
  charge_rank_call(ctx, rs.plan.payload_bytes);
  const simtime::SimTime call_end = ctx.mpi().clock().now();
  simtime::Trace::global().record(
      app.cluster().world().info(ctx.rank()).name,
      simtime::TraceKind::kPilotCall,
      "PI_Read " + ch->name + " " + std::to_string(rs.plan.payload_bytes) +
          "B",
      0, call_end);
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kPilotRead,
                              app.cluster().world().info(ctx.rank()).name,
                              call_begin, call_end, rs.plan.payload_bytes,
                              ch->id, static_cast<std::int8_t>(rt.type));
  }
  if (simtime::metrics::armed()) {
    namespace sm = simtime::metrics;
    const std::string& entity = app.cluster().world().info(ctx.rank()).name;
    const auto route = static_cast<std::int8_t>(rt.type);
    sm::record(sm::Kind::kReadBlock, route, ch->id, entity,
               call_end - call_begin);
    simtime::SimTime write_begin = 0;
    if (cellpilot::metrics::LatencyLedger::global().pop(ch->id,
                                                        &write_begin)) {
      sm::record(sm::Kind::kMsgLatency, route, ch->id, entity,
                 call_end - write_begin);
    }
  }
  if (simtime::timeseries::armed()) {
    simtime::timeseries::record(
        simtime::timeseries::Kind::kDelivered,
        static_cast<std::int8_t>(rt.type), ch->id,
        app.cluster().world().info(ctx.rank()).name, call_end,
        static_cast<std::int64_t>(rs.plan.payload_bytes));
  }
}

// --- async tier -----------------------------------------------------------
//
// PI_WriteAsync / PI_ReadAsync are the submit half of the blocking calls:
// they do everything the blocking path does up to (and including) the
// transport hand-off, then return a PI_HANDLE.  The harvest half (PI_Wait /
// PI_Test / PI_WaitAny / PI_SelectAny) does the rest.  Async operations
// record the dedicated op_submit / op_complete trace kinds and the
// handle_wait metric series — never the blocking kinds (pilot_write /
// pilot_read / spe_write / spe_read / read_block), so a blocking-only
// program's observability output is byte-identical with or without the
// async tier in the build.

namespace cp = cellpilot::completion;

std::string rank_entity(PilotContext& ctx) {
  return ctx.app().cluster().world().info(ctx.rank()).name;
}

/// Checked handle -> operation: non-null, owned by the calling thread's
/// engine, and not yet harvested.
PI_OP& checked_op(PI_HANDLE h, const char* what, const char* file, int line) {
  if (h == nullptr) {
    usage_error(file, line, std::string(what) + ": null handle");
  }
  if (!cp::Engine::local().owns(h)) {
    throw PilotError(
        ErrorCode::kUsage,
        std::string(what) + ": handle was not submitted by this thread "
        "(handles must be harvested by their submitting thread)",
        file, line);
  }
  if (cp::op_state(*h) == cp::State::kReleased) {
    throw PilotError(ErrorCode::kUsage,
                     std::string(what) +
                         ": handle already harvested (double wait?)",
                     file, line);
  }
  return *h;
}

/// Records the op_complete event plus the handle metrics of a harvest.
/// The message-latency ledger pops at the *harvest* of an async read (the
/// moment the destinations are filled), mirroring the blocking read's pop.
void record_harvest(const PI_OP& op, const PI_CHANNEL& ch,
                    const std::string& entity, simtime::SimTime wait_begin,
                    simtime::SimTime end) {
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kOpComplete, entity,
                              wait_begin, end, op.bytes, ch.id,
                              op.route_type);
  }
  if (simtime::metrics::armed()) {
    namespace sm = simtime::metrics;
    sm::record(sm::Kind::kHandleWait, op.route_type, ch.id, entity,
               end - wait_begin);
    if (op.kind == cp::Kind::kRead) {
      simtime::SimTime write_begin = 0;
      if (cellpilot::metrics::LatencyLedger::global().pop(ch.id,
                                                          &write_begin)) {
        sm::record(sm::Kind::kMsgLatency, op.route_type, ch.id, entity,
                   end - write_begin);
      }
    }
  }
  if (simtime::timeseries::armed()) {
    namespace ts = simtime::timeseries;
    if (op.kind == cp::Kind::kRead) {
      ts::record(ts::Kind::kDelivered, op.route_type, ch.id, entity, end,
                 static_cast<std::int64_t>(op.bytes));
    }
    // Pending-op gauge at the harvest point: the op being harvested is
    // still live (released just after), so the gauge pairs exactly with
    // the submit-side sample and per-thread ordering keeps it
    // deterministic.
    ts::record(ts::Kind::kPendingOps, 0, -1, entity, end,
               cp::Engine::local().live());
  }
}

/// Records the op_submit event for a freshly submitted operation.
void record_submit(const PI_OP& op, const std::string& entity,
                   simtime::SimTime end) {
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kOpSubmit, entity,
                              op.submit_begin, end, op.bytes, op.channel,
                              op.route_type);
  }
  if (simtime::timeseries::armed()) {
    namespace ts = simtime::timeseries;
    if (op.kind == cp::Kind::kWrite) {
      // Async writes settle at submission (the frame is on the wire), so
      // the sent counter samples here, mirroring the blocking write seam.
      ts::record(ts::Kind::kSent, op.route_type, op.channel, entity, end,
                 static_cast<std::int64_t>(op.bytes));
    }
    ts::record(ts::Kind::kPendingOps, 0, -1, entity, end,
               cp::Engine::local().live());
  }
}

/// Rank-side harvest: retires a write handle, performs the deferred
/// receive of a read handle.  Releases `op` on every path, throwing the
/// recorded fault for faulted operations.
void rank_harvest(PilotContext& ctx, PI_OP& op, const char* what,
                  const char* file, int line) {
  cp::Engine& engine = cp::Engine::local();
  PilotApp& app = ctx.app();
  PI_CHANNEL& ch = app.channel(op.channel);
  cellpilot::Route& rt = route_of(ch, file, line);
  const simtime::SimTime wait_begin = ctx.mpi().clock().now();
  const std::string entity = rank_entity(ctx);
  if (cp::op_state(op) == cp::State::kFaulted) {
    const std::uint32_t status = op.status.load(std::memory_order_relaxed);
    const std::string detail = op.fault_detail;
    engine.release(&op);
    throw_peer_failure(status, detail, ch, file, line);
  }
  if (op.kind == cp::Kind::kWrite) {
    // Rank-side writes settle at submission (the frame is on the wire);
    // harvesting just retires the handle.
    charge_rank_call(ctx, 0);
    const simtime::SimTime end = ctx.mpi().clock().now();
    record_harvest(op, ch, entity, wait_begin, end);
    engine.release(&op);
    return;
  }
  // Read: the deferred receive.  A writer that died after submission with
  // nothing left on the wire can never satisfy it — fail fast like PI_Read.
  if (auto failure = app.process_failure(ch.from)) {
    if (!ctx.mpi().iprobe(rt.read_source, rt.tag)) {
      engine.release(&op);
      throw_peer_failure(failure->status, failure->detail, ch, file, line);
    }
  }
  notify_block(ctx, ch.from, ch.id);
  std::vector<std::byte> framed = recv_channel_frame(ctx, ch, rt);
  notify_unblock(ctx);
  try {
    if (is_fault_frame(framed)) {
      const FaultFrame fault = parse_fault_frame(framed);
      note_peer_death(app, ch, fault);
      throw_peer_failure(fault.status, fault.detail, ch, file, line);
    }
    check_frame(framed, op.signature, op.plan.payload_bytes,
                "channel " + ch.name);
  } catch (...) {
    engine.release(&op);
    throw;
  }
  const std::span<std::byte> payload =
      std::span(framed).subspan(sizeof(WireHeader));
  if (rt.writer_big_endian) swap_element_bytes(op.plan.fmt, payload);
  scatter(op.plan, payload);
  charge_rank_call(ctx, op.plan.payload_bytes);
  const simtime::SimTime end = ctx.mpi().clock().now();
  simtime::Trace::global().record(
      entity, simtime::TraceKind::kPilotCall,
      std::string(what) + " " + ch.name + " " +
          std::to_string(op.plan.payload_bytes) + "B",
      0, end);
  record_harvest(op, ch, entity, wait_begin, end);
  engine.release(&op);
}

/// SPE-side harvest through the transport.  `wait` selects blocking wait
/// vs. poll; returns false only for a poll that found `op` still in
/// flight.  Releases `op` whenever it settles (including fault throws).
bool spe_harvest(SpeDispatch& sd, PI_OP& op, bool wait, const char* file,
                 int line) {
  cp::Engine& engine = cp::Engine::local();
  PI_CHANNEL& ch = sd.app->channel(op.channel);
  const simtime::SimTime wait_begin = cellsim::spu::self().clock().now();
  std::span<std::byte> out;
  if (op.kind == cp::Kind::kRead) {
    op.data.resize(op.bytes);
    out = std::span(op.data);
  }
  bool settled = true;
  try {
    if (wait) {
      sd.app->transport()->spe_wait(op, ch, out);
    } else {
      settled = sd.app->transport()->spe_test(op, ch, out);
    }
  } catch (...) {
    engine.release(&op);
    throw;
  }
  if (!settled) return false;
  if (op.kind == cp::Kind::kRead) {
    cellpilot::Route& rt = route_of(ch, file, line);
    if (rt.writer_big_endian) swap_element_bytes(op.plan.fmt, out);
    scatter(op.plan, out);
  }
  record_harvest(op, ch, cellsim::spu::self().name(), wait_begin,
                 cellsim::spu::self().clock().now());
  engine.release(&op);
  return true;
}

PI_HANDLE write_async_impl(const char* file, int line, PI_CHANNEL* ch,
                           const char* fmt, va_list args) {
  if (ch == nullptr) usage_error(file, line, "PI_WriteAsync: null channel");
  cp::Engine& engine = cp::Engine::local();

  // --- SPE-side writer ----------------------------------------------------
  if (SpeDispatch* sd = spe_dispatch()) {
    if (sd->process_id != ch->from) {
      throw PilotError(ErrorCode::kEndpoint,
                       "process P" + std::to_string(sd->process_id) +
                           " is not the writer of channel " + ch->name,
                       file, line);
    }
    cellpilot::Route& rt = route_of(*ch, file, line);
    cellpilot::WriterState& ws = rt.writer;
    const cellpilot::FormatPlan& plan = ws.formats.lookup(fmt);
    ws.staging.clear();
    marshal_append(plan.parsed, args, ws.staging, ws.counts);
    const std::uint32_t sig = wire_signature(plan, ws.counts);
    if (rt.writer_big_endian) {
      swap_element_bytes(plan.parsed, ws.counts, ws.staging);
    }
    PI_OP* op = engine.create(cp::Kind::kWrite);
    op->channel = ch->id;
    op->route_type = static_cast<std::int8_t>(rt.type);
    op->spe_side = true;
    op->file = file;
    op->line = line;
    op->submit_begin = cellsim::spu::self().clock().now();
    // The ledger push happens before the transport hand-off, exactly like
    // the blocking write (it must happen-before any read completion).
    if (simtime::metrics::armed()) {
      cellpilot::metrics::LatencyLedger::global().push(ch->id,
                                                       op->submit_begin);
    }
    try {
      sd->app->transport()->spe_submit_write(*op, *ch, sig, ws.staging);
    } catch (...) {
      engine.release(op);
      throw;
    }
    cellpilot::trace::ChannelCounters::global().add_message(ch->id,
                                                            ws.staging.size());
    cp::OpRegistry::global().add(op, cellsim::spu::self().name());
    record_submit(*op, cellsim::spu::self().name(),
                  cellsim::spu::self().clock().now());
    return op;
  }

  // --- rank-side writer -----------------------------------------------------
  PilotContext& ctx =
      ctx_in_phase(Phase::kExecution, "PI_WriteAsync", file, line);
  if (ctx.my_process != ch->from) {
    throw PilotError(ErrorCode::kEndpoint,
                     "process P" + std::to_string(ctx.my_process) +
                         " is not the writer of channel " + ch->name,
                     file, line);
  }
  PilotApp& app = ctx.app();
  cellpilot::Route& rt = route_of(*ch, file, line);
  if (rt.needs_transport) transport_or_die(app, file, line);
  if (auto failure = app.process_failure(ch->to)) {
    throw_peer_failure(failure->status, failure->detail, *ch, file, line);
  }

  cellpilot::WriterState& ws = rt.writer;
  const cellpilot::FormatPlan& plan = ws.formats.lookup(fmt);
  ws.staging.resize(sizeof(WireHeader));
  marshal_append(plan.parsed, args, ws.staging, ws.counts);
  const std::size_t payload_bytes = ws.staging.size() - sizeof(WireHeader);
  const std::uint32_t sig = wire_signature(plan, ws.counts);
  const simtime::SimTime call_begin = ctx.mpi().clock().now();
  charge_rank_call(ctx, payload_bytes);

  const std::span<std::byte> payload =
      std::span(ws.staging).subspan(sizeof(WireHeader));
  if (rt.writer_big_endian) {
    swap_element_bytes(plan.parsed, ws.counts, payload);
  }
  const std::uint32_t epoch = cellpilot::epochs::current(ch->id);
  frame_in_place(ws.staging, sig, epoch);
  if (simtime::metrics::armed()) {
    cellpilot::metrics::LatencyLedger::global().push(ch->id, call_begin);
  }
  mpisim::reliable::set_send_epoch(epoch);
  ctx.mpi().send(ws.staging.data(), ws.staging.size(), rt.write_dest, rt.tag);
  cellpilot::trace::ChannelCounters::global().add_message(ch->id,
                                                          payload_bytes);
  PI_OP* op = engine.create(cp::Kind::kWrite);
  op->channel = ch->id;
  op->route_type = static_cast<std::int8_t>(rt.type);
  op->bytes = payload_bytes;
  op->file = file;
  op->line = line;
  op->signature = sig;
  op->submit_begin = call_begin;
  // The frame is on the wire: a rank-side write settles at submission, and
  // PI_Wait on it returns immediately.
  op->status.store(
      static_cast<std::uint32_t>(cellpilot::CompletionStatus::kOk),
      std::memory_order_relaxed);
  cp::set_state(*op, cp::State::kComplete);
  cp::OpRegistry::global().add(op, rank_entity(ctx));
  simtime::Trace::global().record(
      rank_entity(ctx), simtime::TraceKind::kPilotCall,
      "PI_WriteAsync " + ch->name + " " + std::to_string(payload_bytes) + "B",
      0, ctx.mpi().clock().now());
  record_submit(*op, rank_entity(ctx), ctx.mpi().clock().now());
  return op;
}

PI_HANDLE read_async_impl(const char* file, int line, PI_CHANNEL* ch,
                          const char* fmt, va_list args) {
  if (ch == nullptr) usage_error(file, line, "PI_ReadAsync: null channel");
  cp::Engine& engine = cp::Engine::local();

  // --- SPE-side reader ----------------------------------------------------
  if (SpeDispatch* sd = spe_dispatch()) {
    if (sd->process_id != ch->to) {
      throw PilotError(ErrorCode::kEndpoint,
                       "process P" + std::to_string(sd->process_id) +
                           " is not the reader of channel " + ch->name,
                       file, line);
    }
    cellpilot::Route& rt = route_of(*ch, file, line);
    const cellpilot::FormatPlan& plan = rt.reader.formats.lookup(fmt);
    PI_OP* op = engine.create(cp::Kind::kRead);
    build_read_plan_into(plan.parsed, args, op->plan);
    const std::uint32_t sig =
        plan.has_star ? signature(op->plan.fmt) : plan.wire_signature;
    op->channel = ch->id;
    op->route_type = static_cast<std::int8_t>(rt.type);
    op->spe_side = true;
    op->file = file;
    op->line = line;
    op->submit_begin = cellsim::spu::self().clock().now();
    try {
      sd->app->transport()->spe_submit_read(*op, *ch, sig,
                                            op->plan.payload_bytes);
    } catch (...) {
      engine.release(op);
      throw;
    }
    cp::OpRegistry::global().add(op, cellsim::spu::self().name());
    record_submit(*op, cellsim::spu::self().name(),
                  cellsim::spu::self().clock().now());
    return op;
  }

  // --- rank-side reader -----------------------------------------------------
  PilotContext& ctx =
      ctx_in_phase(Phase::kExecution, "PI_ReadAsync", file, line);
  if (ctx.my_process != ch->to) {
    throw PilotError(ErrorCode::kEndpoint,
                     "process P" + std::to_string(ctx.my_process) +
                         " is not the reader of channel " + ch->name,
                     file, line);
  }
  PilotApp& app = ctx.app();
  cellpilot::Route& rt = route_of(*ch, file, line);
  if (rt.needs_transport) transport_or_die(app, file, line);
  const cellpilot::FormatPlan& plan = rt.reader.formats.lookup(fmt);
  PI_OP* op = engine.create(cp::Kind::kRead);
  build_read_plan_into(plan.parsed, args, op->plan);
  op->channel = ch->id;
  op->route_type = static_cast<std::int8_t>(rt.type);
  op->bytes = op->plan.payload_bytes;
  op->file = file;
  op->line = line;
  op->signature =
      plan.has_star ? signature(op->plan.fmt) : plan.wire_signature;
  const simtime::SimTime call_begin = ctx.mpi().clock().now();
  op->submit_begin = call_begin;
  charge_rank_call(ctx, 0);
  // A writer that already died with nothing on the wire can never satisfy
  // this read: poison the handle now, so the *harvest* throws the failure
  // (the async contract defers all data-plane errors to the wait side).
  bool doomed = false;
  if (auto failure = app.process_failure(ch->from)) {
    if (!ctx.mpi().iprobe(rt.read_source, rt.tag)) {
      op->status.store(failure->status, std::memory_order_relaxed);
      op->fault_detail = failure->detail;
      cp::set_state(*op, cp::State::kFaulted);
      doomed = true;
    }
  }
  if (!doomed) cp::set_state(*op, cp::State::kInFlight);
  cp::OpRegistry::global().add(op, rank_entity(ctx));
  simtime::Trace::global().record(
      rank_entity(ctx), simtime::TraceKind::kPilotCall,
      "PI_ReadAsync " + ch->name + " " +
          std::to_string(op->plan.payload_bytes) + "B",
      0, ctx.mpi().clock().now());
  record_submit(*op, rank_entity(ctx), ctx.mpi().clock().now());
  return op;
}

/// Validates `b` for a collective entered by the calling rank process.
PilotContext& bundle_ctx(const char* file, int line, PI_BUNDLE* b,
                         PI_BUNDLE_USAGE usage, const char* what) {
  if (b == nullptr) usage_error(file, line, std::string(what) + ": null bundle");
  PilotContext& ctx = ctx_in_phase(Phase::kExecution, what, file, line);
  if (b->usage != usage) {
    throw PilotError(ErrorCode::kBundle,
                     std::string(what) + " on a bundle created for a "
                     "different usage", file, line);
  }
  if (ctx.my_process != b->common_process) {
    throw PilotError(ErrorCode::kBundle,
                     std::string(what) + " must be called by the bundle's "
                     "common process P" + std::to_string(b->common_process),
                     file, line);
  }
  return ctx;
}

}  // namespace
}  // namespace pilot

using namespace pilot;  // NOLINT: implementation file for the C-style API

int PI_Configure(int* argc, char*** argv) {
  PilotContext& ctx = context();
  if (ctx.phase != Phase::kPreInit) {
    throw PilotError(ErrorCode::kUsage, "PI_Configure called twice");
  }

  Options opts;
  std::string fault_spec;
  std::string trace_file;
  std::string metrics_file;
  std::string flightrec_file;
  std::string telemetry_file;
  simtime::SimTime telemetry_window = 0;
  bool have_fault_spec = false;
  bool have_respawn = false;
  bool have_ckpt = false;
  bool have_ckpt_every = false;
  if (argc != nullptr && argv != nullptr) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      const char* a = (*argv)[i];
      if (std::strcmp(a, "-pisvc=d") == 0) {
        opts.deadlock_detection = true;
      } else if (std::strcmp(a, "-pisvc=t") == 0) {
        opts.trace_calls = true;
      } else if (std::strncmp(a, "-pifault=", 9) == 0) {
        // Fault-injection plan; overrides the CELLPILOT_FAULTS baseline.
        fault_spec = a + 9;
        have_fault_spec = true;
      } else if (std::strncmp(a, "-pitrace=", 9) == 0) {
        // Trace session output file; overrides the CELLPILOT_TRACE baseline.
        if (a[9] == '\0') {
          throw PilotError(ErrorCode::kUsage, "-pitrace= needs a file name");
        }
        trace_file = a + 9;
      } else if (std::strncmp(a, "-pimetrics=", 11) == 0) {
        // Metrics report file; overrides the CELLPILOT_METRICS baseline.
        if (a[11] == '\0') {
          throw PilotError(ErrorCode::kUsage, "-pimetrics= needs a file name");
        }
        metrics_file = a + 11;
      } else if (std::strncmp(a, "-piflightrec=", 13) == 0) {
        // Flight-recorder postmortem file; overrides CELLPILOT_FLIGHTREC.
        if (a[13] == '\0') {
          throw PilotError(ErrorCode::kUsage,
                           "-piflightrec= needs a file name");
        }
        flightrec_file = a + 13;
      } else if (std::strncmp(a, "-pitelemetryevery=", 18) == 0) {
        // Windowed-telemetry bucket width in virtual microseconds.
        char* end = nullptr;
        const double v = std::strtod(a + 18, &end);
        if (end == a + 18 || *end != '\0' || v <= 0) {
          throw PilotError(ErrorCode::kUsage,
                           std::string("bad -pitelemetryevery value: ") + a);
        }
        telemetry_window = simtime::us(v);
      } else if (std::strncmp(a, "-pitelemetry=", 13) == 0) {
        // Windowed telemetry report file; overrides the CELLPILOT_TELEMETRY
        // baseline.
        if (a[13] == '\0') {
          throw PilotError(ErrorCode::kUsage,
                           "-pitelemetry= needs a file name");
        }
        telemetry_file = a + 13;
      } else if (std::strncmp(a, "-pideadline=", 12) == 0) {
        // SPE request deadline in virtual microseconds.
        char* end = nullptr;
        const double v = std::strtod(a + 12, &end);
        if (end == a + 12 || v <= 0) {
          throw PilotError(ErrorCode::kUsage,
                           std::string("bad -pideadline value: ") + a);
        }
        opts.spe_deadline = simtime::us(v);
      } else if (std::strncmp(a, "-pilease=", 9) == 0) {
        // Co-Pilot heartbeat lease in virtual microseconds.
        char* end = nullptr;
        const double v = std::strtod(a + 9, &end);
        if (end == a + 9 || v <= 0) {
          throw PilotError(ErrorCode::kUsage,
                           std::string("bad -pilease value: ") + a);
        }
        opts.copilot_lease = simtime::us(v);
      } else if (std::strncmp(a, "-pickpt=", 8) == 0) {
        // Coordinated checkpoint file; overrides the CELLPILOT_CKPT
        // baseline.
        if (a[8] == '\0') {
          throw PilotError(ErrorCode::kUsage, "-pickpt= needs a file name");
        }
        opts.checkpoint_path = a + 8;
        have_ckpt = true;
      } else if (std::strncmp(a, "-pickptevery=", 13) == 0) {
        // Checkpoint cadence in serviced SPE requests per cut.
        char* end = nullptr;
        const long v = std::strtol(a + 13, &end, 10);
        if (end == a + 13 || *end != '\0' || v <= 0) {
          throw PilotError(ErrorCode::kUsage,
                           std::string("bad -pickptevery value: ") + a);
        }
        opts.checkpoint_interval = static_cast<int>(v);
        have_ckpt_every = true;
      } else if (std::strncmp(a, "-pirespawn=", 11) == 0) {
        // Supervised SPE respawn budget (restarts per SPE process).
        char* end = nullptr;
        const long v = std::strtol(a + 11, &end, 10);
        if (end == a + 11 || *end != '\0' || v < 0) {
          throw PilotError(ErrorCode::kUsage,
                           std::string("bad -pirespawn value: ") + a);
        }
        opts.respawn_budget = static_cast<int>(v);
        have_respawn = true;
      } else {
        (*argv)[out++] = (*argv)[i];
      }
    }
    *argc = out;
  }
  if (!have_respawn) {
    // CELLPILOT_RESPAWN is the environment baseline the flag overrides,
    // mirroring the CELLPILOT_FAULTS / -pifault= relationship.  Garbage or
    // a negative value keeps the feature disarmed, but loudly: atoi-style
    // silent zeroing turned a typo'd budget into "respawn never armed",
    // which looks exactly like a healthy run until a fault lands (same
    // rationale as chaos_sweep's CELLPILOT_CHAOS_WATCHDOG check).
    if (const char* env = std::getenv("CELLPILOT_RESPAWN")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 0) {
        opts.respawn_budget = static_cast<int>(v);
      } else if (env[0] != '\0') {
        std::fprintf(stderr,
                     "pilot: ignoring CELLPILOT_RESPAWN=\"%s\" (not a "
                     "non-negative integer); respawn stays disarmed\n",
                     env);
      }
    }
  }
  if (!have_ckpt) {
    // Environment baseline for the checkpoint file, like CELLPILOT_TRACE.
    if (const char* env = std::getenv("CELLPILOT_CKPT")) {
      if (env[0] != '\0') opts.checkpoint_path = env;
    }
  }
  if (!have_ckpt_every) {
    // Cadence baseline; garbage keeps the 64-request default rather than
    // silently collapsing to "checkpoint on every request" (strtol of
    // garbage is 0) — but says so on stderr.
    if (const char* env = std::getenv("CELLPILOT_CKPT_EVERY")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        opts.checkpoint_interval = static_cast<int>(v);
      } else if (env[0] != '\0') {
        std::fprintf(stderr,
                     "pilot: ignoring CELLPILOT_CKPT_EVERY=\"%s\" (not a "
                     "positive integer); using %d\n",
                     env, opts.checkpoint_interval);
      }
    }
  }
  if (have_fault_spec && ctx.rank() == 0) {
    try {
      cellpilot::faults::FaultPlan::global().configure(fault_spec);
    } catch (const std::invalid_argument& e) {
      throw PilotError(ErrorCode::kUsage,
                       std::string("bad -pifault spec: ") + e.what());
    }
  }
  if (ctx.rank() == 0) {
    ctx.app().options() = opts;
    // The reliable sublayer's retransmit ladder reuses the -pideadline
    // machinery: same base deadline, same doubling retry budget.
    mpisim::reliable::set_backoff(opts.spe_deadline,
                                  opts.spe_deadline_retries);
    // -pisvc=t: record every modelled primitive in the global event trace.
    if (opts.trace_calls) simtime::Trace::global().set_enabled(true);
    if (!trace_file.empty()) {
      cellpilot::trace::TraceSession::global().configure(trace_file);
    }
    if (!metrics_file.empty()) {
      cellpilot::metrics::MetricsSession::global().configure(metrics_file);
    }
    if (!flightrec_file.empty()) {
      cellpilot::flightrec::FlightRecorder::global().configure(flightrec_file);
    }
    // -pitelemetryevery applies to env-armed sessions too, so set the
    // window before any traffic can bucket a sample, flag-armed or not.
    if (telemetry_window > 0) {
      cellpilot::telemetry::TelemetrySession::global().configure_window(
          telemetry_window);
    }
    if (!telemetry_file.empty()) {
      cellpilot::telemetry::TelemetrySession::global().configure(
          telemetry_file);
    }
    // -pickpt: arm the coordinated checkpoint session for this job.  An
    // empty path (the default) leaves it disarmed and the call is a no-op,
    // preserving byte-identical clean-path behaviour.
    cellpilot::ckpt::CheckpointSession::global().configure(
        opts.checkpoint_path,
        static_cast<std::uint32_t>(opts.checkpoint_interval));
  }

  if (opts.deadlock_detection &&
      !ctx.app().cluster().service_rank().has_value()) {
    throw PilotError(ErrorCode::kUsage,
                     "-pisvc=d given but the job was launched without a "
                     "service process (ClusterConfig::deadlock_service)");
  }

  PI_PROCESS main_proto;
  main_proto.location = Location::kRank;
  main_proto.name = "PI_MAIN";
  ctx.app().get_or_create_process(0, std::move(main_proto),
                                  /*assign_rank=*/true);
  ctx.process_seq = 1;
  ctx.my_process = ctx.rank() == 0 ? 0 : -1;
  ctx.phase = Phase::kConfig;
  return ctx.app().available_processes();
}

PI_PROCESS* PI_GetMain(void) {
  PilotContext& ctx = context();
  if (ctx.phase == Phase::kPreInit) {
    throw PilotError(ErrorCode::kUsage, "PI_MAIN used before PI_Configure");
  }
  return &ctx.app().process(0);
}

PI_PROCESS* PI_CreateProcess(pilot::ProcessFunc f, int index, void* arg) {
  PilotContext& ctx = ctx_in_phase(Phase::kConfig, "PI_CreateProcess");
  if (f == nullptr) {
    throw PilotError(ErrorCode::kUsage, "PI_CreateProcess: null function");
  }
  const int seq = ctx.process_seq++;
  PI_PROCESS proto;
  proto.location = Location::kRank;
  proto.func = f;
  proto.index_arg = index;
  proto.ptr_arg = arg;
  proto.name = "P" + std::to_string(seq);
  PI_PROCESS* p = ctx.app().get_or_create_process(seq, std::move(proto),
                                                  /*assign_rank=*/true);
  if (p->rank == ctx.rank()) ctx.my_process = p->id;
  return p;
}

PI_CHANNEL* PI_CreateChannel(PI_PROCESS* from, PI_PROCESS* to) {
  PilotContext& ctx = ctx_in_phase(Phase::kConfig, "PI_CreateChannel");
  if (from == nullptr || to == nullptr) {
    throw PilotError(ErrorCode::kUsage, "PI_CreateChannel: null endpoint");
  }
  if (from->id == to->id) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_CreateChannel: a process cannot be both endpoints");
  }
  const int seq = ctx.channel_seq++;
  PI_CHANNEL proto;
  proto.from = from->id;
  proto.to = to->id;
  proto.name = "ch" + std::to_string(seq) + "(P" + std::to_string(from->id) +
               "->P" + std::to_string(to->id) + ")";
  return ctx.app().get_or_create_channel(seq, std::move(proto));
}

PI_BUNDLE* PI_CreateBundle(PI_BUNDLE_USAGE usage,
                           PI_CHANNEL* const channels[], int count) {
  PilotContext& ctx = ctx_in_phase(Phase::kConfig, "PI_CreateBundle");
  if (channels == nullptr || count <= 0) {
    throw PilotError(ErrorCode::kBundle,
                     "PI_CreateBundle: need at least one channel");
  }
  // The common endpoint is the writer for broadcast, the reader otherwise.
  const bool common_is_writer = usage == PI_BROADCAST;
  PI_BUNDLE proto;
  proto.usage = usage;
  for (int i = 0; i < count; ++i) {
    PI_CHANNEL* ch = channels[i];
    if (ch == nullptr) {
      throw PilotError(ErrorCode::kBundle, "PI_CreateBundle: null channel");
    }
    const int common = common_is_writer ? ch->from : ch->to;
    if (i == 0) {
      proto.common_process = common;
    } else if (common != proto.common_process) {
      throw PilotError(ErrorCode::kBundle,
                       "PI_CreateBundle: channels do not share a common " +
                           std::string(common_is_writer ? "writer" : "reader"));
    }
    // Extension beyond the paper (its §VI future work): the non-common
    // endpoints may be SPE processes — the Co-Pilot relays each leg.  The
    // common endpoint itself must be rank-backed: an SPE cannot drive a
    // collective (it has no probe/fan-out machinery in its slim runtime).
    if (ctx.app().process(common).location == Location::kSpe) {
      throw PilotError(ErrorCode::kBundle,
                       "PI_CreateBundle: an SPE process cannot be the "
                       "common endpoint of a bundle");
    }
    proto.channels.push_back(ch);
  }
  const int seq = ctx.bundle_seq++;
  return ctx.app().get_or_create_bundle(seq, std::move(proto));
}

void PI_StartAll(void) {
  PilotContext& ctx = ctx_in_phase(Phase::kConfig, "PI_StartAll");
  ctx.phase = Phase::kExecution;
  // The tables are final: compile every channel's route (once across all
  // ranks) before anyone crosses the barrier into the execution phase.
  ctx.app().compile_routes();
  ctx.app().user_barrier(ctx.mpi());  // everyone's tables are complete

  if (ctx.rank() == 0) {
    // The checkpoint quorum: only Cell nodes hosting SPE contexts can
    // contribute a shard (a blade without SPEs never services a request,
    // and its ranks' state is reconstructed from peer journals at
    // restore).  The tables are final here, so the contributor set is.
    {
      std::set<int> spe_nodes;
      for (int i = 0; i < ctx.app().process_count(); ++i) {
        const PI_PROCESS& p = ctx.app().process(i);
        if (p.location == Location::kSpe && p.node >= 0) {
          spe_nodes.insert(p.node);
        }
      }
      cellpilot::ckpt::CheckpointSession::global().set_contributors(
          static_cast<int>(spe_nodes.size()));
    }
    // Tell the detection service how many rank-backed processes exist so
    // it can recognize cycle-free global stalls.
    int rank_processes = 0;
    for (int i = 0; i < ctx.app().process_count(); ++i) {
      if (ctx.app().process(i).location == Location::kRank) ++rank_processes;
    }
    notify_init(ctx, rank_processes);
    return;  // PI_MAIN continues in main()
  }

  int status = 0;
  if (ctx.my_process > 0) {
    PI_PROCESS& self = ctx.app().process(ctx.my_process);
    status = self.func(self.index_arg, self.ptr_arg);
    notify_finished(ctx);
  }
  // Wait for any SPE processes this rank launched, then synchronize with
  // the whole application and unwind out of main().
  ctx.app().join_spe_threads(ctx.rank());
  ctx.app().user_barrier(ctx.mpi());
  ctx.phase = Phase::kDone;
  throw ProcessExit{status};
}

int PI_StopMain(int status) {
  PilotContext& ctx = ctx_in_phase(Phase::kExecution, "PI_StopMain");
  if (ctx.my_process != 0) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_StopMain may only be called by PI_MAIN");
  }
  ctx.app().join_spe_threads(ctx.rank());
  ctx.app().user_barrier(ctx.mpi());

  // Note: the trace-session flush happens in cellpilot::run's epilogue,
  // not here — at this point other rank/Co-Pilot threads are still alive
  // (shutdown control traffic, late supervision) and could race the drain.

  // Tear down the hidden service ranks.
  cluster::Cluster& cl = ctx.app().cluster();
  const std::uint8_t poison = 0;
  for (int n = 0; n < cl.node_count(); ++n) {
    if (cl.is_cell_node(n)) {
      ctx.mpi().send_internal(&poison, 1, cl.copilot_rank(n), kTagShutdown);
    }
  }
  if (auto svc = cl.service_rank()) {
    DeadlockEvent ev;
    ev.kind = DeadlockEvent::kShutdown;
    ctx.mpi().send_internal(&ev, sizeof ev, *svc, kTagDeadlockEvent);
  }
  ctx.phase = Phase::kDone;
  ctx.exit_status = status;
  return status;
}

void PI_Write_(const char* file, int line, PI_CHANNEL* ch, const char* fmt,
               ...) {
  va_list ap;
  va_start(ap, fmt);
  VaGuard guard{ap};
  write_impl(file, line, ch, fmt, ap);
}

void PI_Read_(const char* file, int line, PI_CHANNEL* ch, const char* fmt,
              ...) {
  va_list ap;
  va_start(ap, fmt);
  VaGuard guard{ap};
  read_impl(file, line, ch, fmt, ap);
}

void PI_Broadcast_(const char* file, int line, PI_BUNDLE* b, const char* fmt,
                   ...) {
  va_list ap;
  va_start(ap, fmt);
  VaGuard guard{ap};

  PilotContext& ctx = bundle_ctx(file, line, b, PI_BROADCAST, "PI_Broadcast");
  cellpilot::FormatCache& formats = ctx.app().router().bundle_formats(b->id);
  const cellpilot::FormatPlan& plan = formats.lookup(fmt);
  std::vector<std::byte> framed(sizeof(WireHeader));
  std::vector<std::uint32_t> counts;
  marshal_append(plan.parsed, ap, framed, counts);
  const std::uint32_t sig = wire_signature(plan, counts);
  // Every channel shares the common writer, so one byte-order pass and one
  // frame serve every leg (SPE legs go to the reader's Co-Pilot).
  cellpilot::Route& first = route_of(*b->channels.front(), file, line);
  if (first.writer_big_endian) {
    swap_element_bytes(plan.parsed, counts,
                       std::span(framed).subspan(sizeof(WireHeader)));
  }
  charge_rank_call(ctx, framed.size() - sizeof(WireHeader));
  for (PI_CHANNEL* ch : b->channels) {
    cellpilot::Route& rt = route_of(*ch, file, line);
    if (rt.needs_transport) transport_or_die(ctx.app(), file, line);
    // Per-leg header stamp: each channel carries its own epoch (a rank
    // writer's is always 0, but the wire stays self-describing).
    const std::uint32_t epoch = cellpilot::epochs::current(ch->id);
    frame_in_place(framed, sig, epoch);
    const simtime::SimTime leg_begin = ctx.mpi().clock().now();
    if (simtime::metrics::armed()) {
      cellpilot::metrics::LatencyLedger::global().push(ch->id, leg_begin);
    }
    mpisim::reliable::set_send_epoch(epoch);
    ctx.mpi().send(framed.data(), framed.size(), rt.write_dest, rt.tag);
    cellpilot::trace::ChannelCounters::global().add_message(
        ch->id, framed.size() - sizeof(WireHeader));
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(
          simtime::tracebuf::Kind::kPilotWrite,
          ctx.app().cluster().world().info(ctx.rank()).name, leg_begin,
          ctx.mpi().clock().now(), framed.size() - sizeof(WireHeader), ch->id,
          static_cast<std::int8_t>(rt.type));
    }
  }
}

void PI_Gather_(const char* file, int line, PI_BUNDLE* b, const char* fmt,
                ...) {
  va_list ap;
  va_start(ap, fmt);
  VaGuard guard{ap};

  PilotContext& ctx = bundle_ctx(file, line, b, PI_GATHER, "PI_Gather");
  cellpilot::FormatCache& formats = ctx.app().router().bundle_formats(b->id);
  const cellpilot::FormatPlan& fplan = formats.lookup(fmt);
  // The plan's destinations are the bases of per-contribution arrays; slot
  // i of each array receives channel i's payload.
  ReadPlan plan = build_read_plan(fplan.parsed, ap);
  const std::uint32_t sig =
      fplan.has_star ? signature(plan.fmt) : fplan.wire_signature;

  for (std::size_t i = 0; i < b->channels.size(); ++i) {
    PI_CHANNEL* ch = b->channels[i];
    cellpilot::Route& rt = route_of(*ch, file, line);
    if (auto failure = ctx.app().process_failure(ch->from)) {
      if (!ctx.mpi().iprobe(rt.read_source, rt.tag)) {
        throw_peer_failure(failure->status, failure->detail, *ch, file, line);
      }
    }
    const simtime::SimTime leg_begin = ctx.mpi().clock().now();
    notify_block(ctx, ch->from, ch->id);
    std::vector<std::byte> framed = recv_channel_frame(ctx, *ch, rt);
    notify_unblock(ctx);
    const simtime::SimTime leg_end = ctx.mpi().clock().now();
    if (is_fault_frame(framed)) {
      const FaultFrame fault = parse_fault_frame(framed);
      note_peer_death(ctx.app(), *ch, fault);
      throw_peer_failure(fault.status, fault.detail, *ch, file, line);
    }
    check_frame(framed, sig, plan.payload_bytes,
                "gather channel " + ch->name);
    // Recorded only once the frame is known good — point-to-point reads do
    // the same, so a faulted leg never produces a phantom pilot_read and
    // the offline write/read pairing (tools/tracestats) stays aligned with
    // the online latency ledger.  No clock moves between the receive and
    // here, so clean-path stamps are unchanged.
    if (simtime::tracebuf::armed()) {
      simtime::tracebuf::record(
          simtime::tracebuf::Kind::kPilotRead,
          ctx.app().cluster().world().info(ctx.rank()).name, leg_begin,
          leg_end, framed.size() - sizeof(WireHeader), ch->id,
          static_cast<std::int8_t>(rt.type));
    }
    if (simtime::metrics::armed()) {
      namespace sm = simtime::metrics;
      const std::string& entity =
          ctx.app().cluster().world().info(ctx.rank()).name;
      const auto route = static_cast<std::int8_t>(rt.type);
      sm::record(sm::Kind::kReadBlock, route, ch->id, entity,
                 leg_end - leg_begin);
      simtime::SimTime write_begin = 0;
      if (cellpilot::metrics::LatencyLedger::global().pop(ch->id,
                                                          &write_begin)) {
        sm::record(sm::Kind::kMsgLatency, route, ch->id, entity,
                   leg_end - write_begin);
      }
    }
    const std::span<std::byte> payload =
        std::span(framed).subspan(sizeof(WireHeader));
    if (rt.writer_big_endian) swap_element_bytes(plan.fmt, payload);
    ReadPlan shifted = plan;
    for (std::size_t j = 0; j < shifted.destinations.size(); ++j) {
      const FormatItem& item = shifted.fmt.items[j];
      const std::size_t item_bytes = element_size(item.type) * item.count;
      shifted.destinations[j] =
          static_cast<std::byte*>(plan.destinations[j]) + i * item_bytes;
    }
    scatter(shifted, payload);
  }
  charge_rank_call(ctx, plan.payload_bytes * b->channels.size());
}

int PI_Select(PI_BUNDLE* b) {
  PilotContext& ctx = bundle_ctx(nullptr, 0, b, PI_SELECT, "PI_Select");
  std::vector<mpisim::MatchQueue::Pattern> patterns;
  patterns.reserve(b->channels.size());
  for (PI_CHANNEL* ch : b->channels) {
    const cellpilot::Route& rt = route_of(*ch, nullptr, 0);
    patterns.push_back({rt.read_source, rt.tag});
    notify_block(ctx, ch->from, ch->id);
  }
  // Fault fast-path: with nothing ready, a channel whose writer already
  // died (and left nothing on the wire) will never become ready.  Return
  // its index — lowest first, deterministically — so the caller's PI_Read
  // surfaces the failure, instead of this select blocking forever.
  if (!ctx.app().cluster().world().queue(ctx.rank())
           .try_probe_any(patterns)
           .has_value()) {
    for (std::size_t i = 0; i < b->channels.size(); ++i) {
      PI_CHANNEL* ch = b->channels[i];
      if (auto failure = ctx.app().process_failure(ch->from)) {
        const cellpilot::Route& rt = route_of(*ch, nullptr, 0);
        if (!ctx.mpi().iprobe(rt.read_source, rt.tag)) {
          notify_unblock(ctx);
          charge_rank_call(ctx, 0);
          return static_cast<int>(i);
        }
      }
    }
  }
  const auto [index, env] =
      ctx.app().cluster().world().queue(ctx.rank()).probe_any_blocking(
          patterns);
  notify_unblock(ctx);
  charge_rank_call(ctx, 0);
  return static_cast<int>(index);
}

int PI_TrySelect(PI_BUNDLE* b) {
  PilotContext& ctx = bundle_ctx(nullptr, 0, b, PI_SELECT, "PI_TrySelect");
  std::vector<mpisim::MatchQueue::Pattern> patterns;
  patterns.reserve(b->channels.size());
  for (PI_CHANNEL* ch : b->channels) {
    const cellpilot::Route& rt = route_of(*ch, nullptr, 0);
    patterns.push_back({rt.read_source, rt.tag});
  }
  charge_rank_call(ctx, 0);
  const auto hit =
      ctx.app().cluster().world().queue(ctx.rank()).try_probe_any(patterns);
  if (hit) return static_cast<int>(hit->first);
  // Same fault fast-path as PI_Select: a dead writer's channel counts as
  // ready so the caller's PI_Read can surface the failure.
  for (std::size_t i = 0; i < b->channels.size(); ++i) {
    PI_CHANNEL* ch = b->channels[i];
    if (auto failure = ctx.app().process_failure(ch->from)) {
      const cellpilot::Route& rt = route_of(*ch, nullptr, 0);
      if (!ctx.mpi().iprobe(rt.read_source, rt.tag)) {
        return static_cast<int>(i);
      }
    }
  }
  return -1;
}

PI_HANDLE PI_WriteAsync_(const char* file, int line, PI_CHANNEL* ch,
                         const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  VaGuard guard{ap};
  return write_async_impl(file, line, ch, fmt, ap);
}

PI_HANDLE PI_ReadAsync_(const char* file, int line, PI_CHANNEL* ch,
                        const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  VaGuard guard{ap};
  return read_async_impl(file, line, ch, fmt, ap);
}

void PI_Wait_(const char* file, int line, PI_HANDLE h) {
  PI_OP& op = checked_op(h, "PI_Wait", file, line);
  if (SpeDispatch* sd = spe_dispatch()) {
    spe_harvest(*sd, op, /*wait=*/true, file, line);
    return;
  }
  PilotContext& ctx = ctx_in_phase(Phase::kExecution, "PI_Wait", file, line);
  rank_harvest(ctx, op, "PI_Wait", file, line);
}

int PI_Test_(const char* file, int line, PI_HANDLE h) {
  PI_OP& op = checked_op(h, "PI_Test", file, line);
  if (SpeDispatch* sd = spe_dispatch()) {
    return spe_harvest(*sd, op, /*wait=*/false, file, line) ? 1 : 0;
  }
  PilotContext& ctx = ctx_in_phase(Phase::kExecution, "PI_Test", file, line);
  if (!cellpilot::completion::is_settled(op) &&
      op.kind == cellpilot::completion::Kind::kRead) {
    PI_CHANNEL& ch = ctx.app().channel(op.channel);
    const cellpilot::Route& rt = route_of(ch, file, line);
    charge_rank_call(ctx, 0);
    if (!ctx.mpi().iprobe(rt.read_source, rt.tag)) return 0;
  }
  rank_harvest(ctx, op, "PI_Test", file, line);
  return 1;
}

int PI_WaitAny_(const char* file, int line, PI_HANDLE* handles, int count) {
  if (handles == nullptr || count <= 0) {
    usage_error(file, line, "PI_WaitAny: need at least one handle");
  }
  for (int i = 0; i < count; ++i) {
    (void)checked_op(handles[i], "PI_WaitAny", file, line);
  }

  if (SpeDispatch* sd = spe_dispatch()) {
    const int i = sd->app->transport()->spe_wait_any(handles, count);
    spe_harvest(*sd, *handles[i], /*wait=*/true, file, line);
    return i;
  }

  PilotContext& ctx =
      ctx_in_phase(Phase::kExecution, "PI_WaitAny", file, line);
  namespace cpn = cellpilot::completion;
  // Settled handles first (rank-side writes settle at submission, and a
  // fault recorded at submission must surface): harvest the lowest index.
  for (int i = 0; i < count; ++i) {
    if (cpn::is_settled(*handles[i])) {
      rank_harvest(ctx, *handles[i], "PI_WaitAny", file, line);
      return i;
    }
  }
  // Everything left is an in-flight read: poll for an arrived frame.
  std::vector<mpisim::MatchQueue::Pattern> patterns;
  patterns.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    PI_CHANNEL& ch = ctx.app().channel(handles[i]->channel);
    const cellpilot::Route& rt = route_of(ch, file, line);
    patterns.push_back({rt.read_source, rt.tag});
  }
  mpisim::MatchQueue& queue = ctx.app().cluster().world().queue(ctx.rank());
  if (const auto hit = queue.try_probe_any(patterns)) {
    const int i = static_cast<int>(hit->first);
    rank_harvest(ctx, *handles[i], "PI_WaitAny", file, line);
    return i;
  }
  // Nothing ready: an operation whose writer already died (with nothing
  // on the wire) will never complete — surface its failure now instead of
  // blocking forever.
  for (int i = 0; i < count; ++i) {
    PI_OP& op = *handles[i];
    PI_CHANNEL& ch = ctx.app().channel(op.channel);
    if (auto failure = ctx.app().process_failure(ch.from)) {
      const cellpilot::Route& rt = route_of(ch, file, line);
      if (!ctx.mpi().iprobe(rt.read_source, rt.tag)) {
        op.status.store(failure->status, std::memory_order_relaxed);
        op.fault_detail = failure->detail;
        cpn::set_state(op, cpn::State::kFaulted);
        rank_harvest(ctx, op, "PI_WaitAny", file, line);  // throws
        return i;
      }
    }
  }
  for (int i = 0; i < count; ++i) {
    PI_CHANNEL& ch = ctx.app().channel(handles[i]->channel);
    notify_block(ctx, ch.from, ch.id);
  }
  const auto [index, env] = queue.probe_any_blocking(patterns);
  notify_unblock(ctx);
  const int i = static_cast<int>(index);
  rank_harvest(ctx, *handles[i], "PI_WaitAny", file, line);
  return i;
}

int PI_SelectAny_(const char* file, int line, PI_BUNDLE* b,
                  PI_HANDLE* handles, int count) {
  if (spe_dispatch() != nullptr) {
    usage_error(file, line,
                "PI_SelectAny is rank-side only (use PI_WaitAny on SPEs)");
  }
  if (count < 0 || (count > 0 && handles == nullptr)) {
    usage_error(file, line, "PI_SelectAny: bad handle array");
  }
  PilotContext& ctx =
      b != nullptr
          ? bundle_ctx(file, line, b, PI_SELECT, "PI_SelectAny")
          : ctx_in_phase(Phase::kExecution, "PI_SelectAny", file, line);
  const int nb = b != nullptr ? static_cast<int>(b->channels.size()) : 0;
  if (nb + count == 0) {
    usage_error(file, line, "PI_SelectAny: nothing to select on");
  }
  for (int i = 0; i < count; ++i) {
    (void)checked_op(handles[i], "PI_SelectAny", file, line);
  }
  namespace cpn = cellpilot::completion;
  // A settled handle is immediately selectable (not harvested — PI_Wait
  // retires it and throws any recorded fault).
  for (int i = 0; i < count; ++i) {
    if (cpn::is_settled(*handles[i])) {
      charge_rank_call(ctx, 0);
      return nb + i;
    }
  }
  // One pattern per bundle channel, then per in-flight read handle; a
  // probe index maps straight back to the caller's index space.
  std::vector<mpisim::MatchQueue::Pattern> patterns;
  patterns.reserve(static_cast<std::size_t>(nb + count));
  for (int i = 0; i < nb; ++i) {
    const cellpilot::Route& rt = route_of(*b->channels[i], file, line);
    patterns.push_back({rt.read_source, rt.tag});
  }
  for (int i = 0; i < count; ++i) {
    PI_CHANNEL& ch = ctx.app().channel(handles[i]->channel);
    const cellpilot::Route& rt = route_of(ch, file, line);
    patterns.push_back({rt.read_source, rt.tag});
  }
  mpisim::MatchQueue& queue = ctx.app().cluster().world().queue(ctx.rank());
  if (const auto hit = queue.try_probe_any(patterns)) {
    charge_rank_call(ctx, 0);
    return static_cast<int>(hit->first);
  }
  // Doomed scan, bundle channels first: a dead writer with nothing on the
  // wire makes its channel/handle permanently ready (the follow-up
  // PI_Read / PI_Wait throws the failure).
  for (int i = 0; i < nb; ++i) {
    PI_CHANNEL* ch = b->channels[i];
    if (auto failure = ctx.app().process_failure(ch->from)) {
      const cellpilot::Route& rt = route_of(*ch, file, line);
      if (!ctx.mpi().iprobe(rt.read_source, rt.tag)) {
        charge_rank_call(ctx, 0);
        return i;
      }
    }
  }
  for (int i = 0; i < count; ++i) {
    PI_OP& op = *handles[i];
    PI_CHANNEL& ch = ctx.app().channel(op.channel);
    if (auto failure = ctx.app().process_failure(ch.from)) {
      const cellpilot::Route& rt = route_of(ch, file, line);
      if (!ctx.mpi().iprobe(rt.read_source, rt.tag)) {
        op.status.store(failure->status, std::memory_order_relaxed);
        op.fault_detail = failure->detail;
        cpn::set_state(op, cpn::State::kFaulted);
        charge_rank_call(ctx, 0);
        return nb + i;
      }
    }
  }
  for (int i = 0; i < nb; ++i) {
    notify_block(ctx, b->channels[i]->from, b->channels[i]->id);
  }
  for (int i = 0; i < count; ++i) {
    PI_CHANNEL& ch = ctx.app().channel(handles[i]->channel);
    notify_block(ctx, ch.from, ch.id);
  }
  const auto [index, env] = queue.probe_any_blocking(patterns);
  notify_unblock(ctx);
  charge_rank_call(ctx, 0);
  return static_cast<int>(index);
}

int PI_GetChannelStats(PI_CHANNEL* ch, PI_CHANNEL_STATS* out) {
  if (ch == nullptr || out == nullptr) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_GetChannelStats: null channel or output");
  }
  if (spe_dispatch() != nullptr) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_GetChannelStats is rank-side only");
  }
  PilotContext& ctx = context();
  if (ctx.phase != Phase::kExecution && ctx.phase != Phase::kDone) {
    // Harvest-contract violation, not a usage crash: before PI_StartAll
    // the route table (and with it the counter epoch) does not exist yet,
    // so report the documented error code instead of stale state.
    return PI_ERR_PHASE;
  }
  const cellpilot::trace::ChannelStats s =
      cellpilot::trace::ChannelCounters::global().snapshot(ch->id);
  out->channel = ch->id;
  out->route_type =
      ch->route == nullptr ? 0 : static_cast<int>(ch->route->type);
  out->messages = s.messages;
  out->payload_bytes = s.payload_bytes;
  out->copilot_hops = s.copilot_hops;
  out->retries = s.retries;
  out->timeouts = s.timeouts;
  out->faults = s.faults;
  out->retransmits = s.retransmits;
  out->duplicates = s.duplicates;
  out->corrupt_detected = s.corrupt_detected;
  out->respawns = s.respawns;
  out->recovered_ops = s.recovered_ops;
  out->checkpoints = s.checkpoints;
  out->restores = s.restores;
  return 0;
}

int PI_GetMetricsSnapshot(PI_METRICS_SNAPSHOT* out) {
  if (out == nullptr) {
    throw PilotError(ErrorCode::kUsage, "PI_GetMetricsSnapshot: null output");
  }
  if (spe_dispatch() != nullptr) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_GetMetricsSnapshot is rank-side only");
  }
  PilotContext& ctx = context();
  if (ctx.phase != Phase::kExecution && ctx.phase != Phase::kDone) {
    return PI_ERR_PHASE;
  }
  std::memset(out, 0, sizeof *out);
  namespace sm = simtime::metrics;
  // The engine snapshot copies under the table lock, so harvesting while
  // late Co-Pilot work still records is safe — it may simply lag, exactly
  // like PI_GetChannelStats (totals are final after PI_StopMain).
  sm::Histogram latency[6];
  sm::Histogram block[6];
  for (const sm::Series& s : sm::snapshot()) {
    const int route = static_cast<int>(s.key.route_type);
    if (route < 1 || route > 5) continue;
    sm::Histogram* slots = nullptr;
    if (s.key.kind == sm::Kind::kMsgLatency) slots = latency;
    if (s.key.kind == sm::Kind::kReadBlock) slots = block;
    if (slots == nullptr) continue;
    slots[0].merge(s.hist);
    slots[route].merge(s.hist);
  }
  const auto fill = [](PI_METRIC_STAT& dst, const sm::Histogram& h) {
    dst.count = h.count();
    dst.sum_ns = h.sum();
    dst.min_ns = h.min();
    dst.p50_ns = h.percentile(50);
    dst.p90_ns = h.percentile(90);
    dst.p99_ns = h.percentile(99);
    dst.max_ns = h.max();
  };
  for (int i = 0; i < 6; ++i) {
    fill(out->msg_latency[i], latency[i]);
    fill(out->read_block[i], block[i]);
  }
  return 0;
}

int PI_GetTelemetrySnapshot(PI_TELEMETRY_SNAPSHOT* out) {
  if (out == nullptr) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_GetTelemetrySnapshot: null output");
  }
  if (spe_dispatch() != nullptr) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_GetTelemetrySnapshot is rank-side only");
  }
  PilotContext& ctx = context();
  if (ctx.phase != Phase::kExecution && ctx.phase != Phase::kDone) {
    return PI_ERR_PHASE;
  }
  std::memset(out, 0, sizeof *out);
  namespace ts = simtime::timeseries;
  out->window_ns = static_cast<long long>(ts::window());
  // Same lag semantics as PI_GetMetricsSnapshot: the engine snapshot
  // copies under the table lock, totals are final after PI_StopMain.
  for (const ts::Series& s : ts::snapshot()) {
    const int k = static_cast<int>(s.key.kind);
    if (k < 0 || k >= PI_TELEMETRY_KIND_COUNT) continue;
    PI_TELEMETRY_STAT& dst = out->kinds[k];
    for (const auto& [win, cell] : s.windows) {
      (void)win;
      if (dst.windows == 0) {
        dst.min = cell.min;
        dst.max = cell.max;
      } else {
        if (cell.min < dst.min) dst.min = cell.min;
        if (cell.max > dst.max) dst.max = cell.max;
      }
      ++dst.windows;
      dst.count += cell.count;
      dst.sum += cell.sum;
    }
  }
  return 0;
}

int PI_ChannelHasData(PI_CHANNEL* ch) {
  if (ch == nullptr) {
    throw PilotError(ErrorCode::kUsage, "PI_ChannelHasData: null channel");
  }
  PilotContext& ctx = ctx_in_phase(Phase::kExecution, "PI_ChannelHasData");
  if (ctx.my_process != ch->to) {
    throw PilotError(ErrorCode::kEndpoint,
                     "PI_ChannelHasData: process P" +
                         std::to_string(ctx.my_process) +
                         " is not the reader of channel " + ch->name);
  }
  charge_rank_call(ctx, 0);
  const cellpilot::Route& rt = route_of(*ch, nullptr, 0);
  return ctx.mpi().iprobe(rt.read_source, rt.tag).has_value() ? 1 : 0;
}

PI_CHANNEL** PI_CopyChannels(PI_CHANNEL* const channels[], int count) {
  PilotContext& ctx = ctx_in_phase(Phase::kConfig, "PI_CopyChannels");
  if (channels == nullptr || count <= 0) {
    throw PilotError(ErrorCode::kUsage,
                     "PI_CopyChannels: need at least one channel");
  }
  // The copies live in a per-app side table so every rank hands back the
  // same canonical array (configuration runs SPMD).
  std::vector<PI_CHANNEL*> copies;
  copies.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    if (channels[i] == nullptr) {
      throw PilotError(ErrorCode::kUsage, "PI_CopyChannels: null channel");
    }
    const int seq = ctx.channel_seq++;
    PI_CHANNEL proto;
    proto.from = channels[i]->from;
    proto.to = channels[i]->to;
    proto.name = channels[i]->name + "'";
    copies.push_back(ctx.app().get_or_create_channel(seq, std::move(proto)));
  }
  return ctx.app().intern_channel_array(std::move(copies));
}

PI_CHANNEL* PI_GetBundleChannel(PI_BUNDLE* b, int index) {
  if (b == nullptr || index < 0 ||
      index >= static_cast<int>(b->channels.size())) {
    throw PilotError(ErrorCode::kBundle,
                     "PI_GetBundleChannel: bad bundle or index");
  }
  return b->channels[static_cast<std::size_t>(index)];
}

int PI_GetBundleSize(PI_BUNDLE* b) {
  if (b == nullptr) {
    throw PilotError(ErrorCode::kBundle, "PI_GetBundleSize: null bundle");
  }
  return static_cast<int>(b->channels.size());
}

void PI_SetName(PI_PROCESS* p, const char* name) {
  if (p != nullptr && name != nullptr) p->name = name;
}

void PI_SetChannelName(PI_CHANNEL* ch, const char* name) {
  if (ch != nullptr && name != nullptr) ch->name = name;
}

int PI_ProcessCount(void) { return context().app().available_processes(); }

int PI_MyProcess(void) {
  if (SpeDispatch* sd = spe_dispatch()) return sd->process_id;
  return context().my_process;
}

void PI_Log_(const char* file, int line, const char* message) {
  std::string who = "P" + std::to_string(PI_MyProcess());
  simtime::SimTime now = 0;
  if (SpeDispatch* sd = spe_dispatch()) {
    (void)sd;
    now = cellsim::spu::self().clock().now();
  } else {
    now = context().mpi().clock().now();
  }
  simtime::Trace::global().record(
      who, simtime::TraceKind::kOther,
      std::string(message ? message : "") + " (" + (file ? file : "?") +
          ":" + std::to_string(line) + ")",
      now, now);
}

void PI_Abort_(const char* file, int line, int code, const char* message) {
  // Deliberate application abort: its own error code (not "usage"), so the
  // per-rank diagnostic line reads `pilot error (abort) at file:line: ...`
  // and tests can tell an intended abort from library misuse.
  throw PilotError(ErrorCode::kAbort,
                   "PI_Abort(" + std::to_string(code) + "): " +
                       (message ? message : ""),
                   file, line);
}
