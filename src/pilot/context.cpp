#include "pilot/context.hpp"

namespace pilot {

namespace {
thread_local PilotContext* t_ctx = nullptr;
}  // namespace

void bind_context(PilotContext* ctx) { t_ctx = ctx; }

PilotContext& context() {
  if (t_ctx == nullptr) {
    throw PilotError(ErrorCode::kUsage,
                     "Pilot API called outside a running Pilot application "
                     "(no rank context on this thread)");
  }
  return *t_ctx;
}

bool has_context() { return t_ctx != nullptr; }

namespace {
thread_local SpeDispatch* t_spe_dispatch = nullptr;
}  // namespace

void bind_spe_dispatch(SpeDispatch* d) { t_spe_dispatch = d; }

SpeDispatch* spe_dispatch() { return t_spe_dispatch; }

}  // namespace pilot
