// byteorder.hpp — heterogeneous byte-order support.
//
// The paper's cluster is genuinely mixed-endian: the Cell BE's PPE and SPEs
// are big-endian PowerPC cores, the Xeon nodes little-endian x86-64, and
// "MPI will take care of any conversions required between datatype lengths,
// endianness, and character codes" (§II.C).  Pilot's format strings are what
// make that possible — they give the wire payload an element structure.
//
// The reproduction simulates the mix on a little-endian host:
//   * a writer on a big-endian node marshals its payload and then swaps it
//     into big-endian element order, so the bytes crossing the wire (and
//     sitting in SPE local stores!) are authentic big-endian images;
//   * the reader compares the writer node's order with its own and swaps
//     back element-wise (receiver-makes-right, as MPI implementations do);
//   * the frame header always travels in canonical little-endian order.
#pragma once

#include <cstddef>
#include <span>

#include "pilot/format.hpp"
#include "simtime/byte_order.hpp"

namespace pilot {

using simtime::ByteOrder;

/// Reverses the bytes of every element of `payload` as described by the
/// resolved format (1-byte elements are untouched).  In-place; payload
/// length must equal fmt.payload_bytes().
void swap_element_bytes(const ResolvedFormat& fmt,
                        std::span<std::byte> payload);

/// Variant for a possibly-'*' format whose per-item element counts were
/// resolved out-of-band (`counts` is parallel to fmt.items).
void swap_element_bytes(const Format& fmt,
                        std::span<const std::uint32_t> counts,
                        std::span<std::byte> payload);

/// Converts a payload from `from` order to `to` order (no-op when equal).
/// Delivery into user variables is always host (little-endian)
/// representation; the wire and SPE local stores carry the writer's
/// architectural order — so readers convert when the writer was big-endian.
inline void convert_payload(const ResolvedFormat& fmt,
                            std::span<std::byte> payload, ByteOrder from,
                            ByteOrder to) {
  if (from != to) swap_element_bytes(fmt, payload);
}

}  // namespace pilot
