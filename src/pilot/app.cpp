#include "pilot/app.hpp"

#include "core/router.hpp"
#include "mpisim/reliable.hpp"

namespace pilot {

PilotApp::PilotApp(cluster::Cluster& cluster)
    : cluster_(&cluster), router_(std::make_unique<cellpilot::Router>()) {
  spe_busy_.resize(static_cast<std::size_t>(cluster.node_count()));
  spe_process_.resize(static_cast<std::size_t>(cluster.node_count()));
  for (int n = 0; n < cluster.node_count(); ++n) {
    spe_busy_[static_cast<std::size_t>(n)].assign(cluster.spe_count(n),
                                                  false);
    spe_process_[static_cast<std::size_t>(n)].assign(cluster.spe_count(n),
                                                     -1);
  }
}

PilotApp::~PilotApp() { join_all_spe_threads(); }

PI_PROCESS* PilotApp::get_or_create_process(int seq, PI_PROCESS proto,
                                            bool assign_rank) {
  std::lock_guard lock(tables_mu_);
  if (seq < static_cast<int>(processes_.size())) {
    return processes_[static_cast<std::size_t>(seq)].get();
  }
  if (seq != static_cast<int>(processes_.size())) {
    throw PilotError(ErrorCode::kInternal,
                     "configuration phase diverged across processes "
                     "(process table)");
  }
  if (assign_rank) {
    if (ranks_assigned_ >= cluster_->user_rank_count()) {
      throw PilotError(ErrorCode::kCapacity,
                       "out of MPI processes: the job provides " +
                           std::to_string(cluster_->user_rank_count()) +
                           " Pilot processes");
    }
    proto.rank = ranks_assigned_++;
  }
  proto.id = seq;
  processes_.push_back(std::make_unique<PI_PROCESS>(std::move(proto)));
  return processes_.back().get();
}

PI_CHANNEL* PilotApp::get_or_create_channel(int seq, PI_CHANNEL proto) {
  std::lock_guard lock(tables_mu_);
  if (seq < static_cast<int>(channels_.size())) {
    return channels_[static_cast<std::size_t>(seq)].get();
  }
  if (seq != static_cast<int>(channels_.size())) {
    throw PilotError(ErrorCode::kInternal,
                     "configuration phase diverged across processes "
                     "(channel table)");
  }
  proto.id = seq;
  channels_.push_back(std::make_unique<PI_CHANNEL>(std::move(proto)));
  return channels_.back().get();
}

PI_BUNDLE* PilotApp::get_or_create_bundle(int seq, PI_BUNDLE proto) {
  std::lock_guard lock(tables_mu_);
  if (seq < static_cast<int>(bundles_.size())) {
    return bundles_[static_cast<std::size_t>(seq)].get();
  }
  if (seq != static_cast<int>(bundles_.size())) {
    throw PilotError(ErrorCode::kInternal,
                     "configuration phase diverged across processes "
                     "(bundle table)");
  }
  proto.id = seq;
  bundles_.push_back(std::make_unique<PI_BUNDLE>(std::move(proto)));
  return bundles_.back().get();
}

PI_PROCESS& PilotApp::process(int id) {
  std::lock_guard lock(tables_mu_);
  if (id < 0 || id >= static_cast<int>(processes_.size())) {
    throw PilotError(ErrorCode::kInternal,
                     "process id " + std::to_string(id) + " out of range");
  }
  return *processes_[static_cast<std::size_t>(id)];
}

PI_CHANNEL& PilotApp::channel(int id) {
  std::lock_guard lock(tables_mu_);
  if (id < 0 || id >= static_cast<int>(channels_.size())) {
    throw PilotError(ErrorCode::kInternal,
                     "channel id " + std::to_string(id) + " out of range");
  }
  return *channels_[static_cast<std::size_t>(id)];
}

PI_BUNDLE& PilotApp::bundle(int id) {
  std::lock_guard lock(tables_mu_);
  if (id < 0 || id >= static_cast<int>(bundles_.size())) {
    throw PilotError(ErrorCode::kInternal,
                     "bundle id " + std::to_string(id) + " out of range");
  }
  return *bundles_[static_cast<std::size_t>(id)];
}

int PilotApp::process_count() const {
  std::lock_guard lock(tables_mu_);
  return static_cast<int>(processes_.size());
}

int PilotApp::channel_count() const {
  std::lock_guard lock(tables_mu_);
  return static_cast<int>(channels_.size());
}

int PilotApp::bundle_count() const {
  std::lock_guard lock(tables_mu_);
  return static_cast<int>(bundles_.size());
}

void PilotApp::compile_routes() {
  std::call_once(routes_once_, [this] { router_->compile(*this); });
}

PI_CHANNEL** PilotApp::intern_channel_array(
    std::vector<PI_CHANNEL*> channels) {
  std::lock_guard lock(tables_mu_);
  const int key = channels.empty() ? -1 : channels.front()->id;
  auto [it, inserted] = channel_arrays_.try_emplace(key, std::move(channels));
  return it->second.data();
}

void PilotApp::user_barrier(mpisim::Mpi& mpi) {
  const int users = cluster_->user_rank_count();
  std::uint8_t token = 0;
  if (mpi.rank() == 0) {
    // Rank order, not ANY_SOURCE: keeps PI_MAIN's clock deterministic.
    for (int r = 1; r < users; ++r) {
      mpi.recv_internal(&token, 1, r, kTagUserBarrierIn);
    }
    for (int r = 1; r < users; ++r) {
      mpi.send_internal(&token, 1, r, kTagUserBarrierOut);
    }
  } else {
    mpi.send_internal(&token, 1, 0, kTagUserBarrierIn);
    mpi.recv_internal(&token, 1, 0, kTagUserBarrierOut);
  }
}

void PilotApp::add_spe_thread(mpisim::Rank rank, std::thread t) {
  std::lock_guard lock(spe_mu_);
  spe_threads_.push_back(OwnedThread{rank, std::move(t)});
}

void PilotApp::join_spe_threads(mpisim::Rank rank) {
  // Joining is a host-thread wait, not an MPI receive, so it bypasses the
  // reliable layer's receive-side flush points.  An SPE this rank is about
  // to join may itself be blocked on a frame sitting in this rank's
  // msg_reorder stash — release it before parking.
  if (mpisim::reliable::enabled()) mpisim::reliable::flush_from(rank);
  // Collect joinable threads owned by `rank` without holding the lock while
  // joining (an SPE body may itself trigger bookkeeping).
  std::vector<std::thread> mine;
  {
    std::lock_guard lock(spe_mu_);
    for (auto& owned : spe_threads_) {
      if (owned.owner == rank && owned.thread.joinable()) {
        mine.push_back(std::move(owned.thread));
      }
    }
    for (auto& [pid, spawn] : spawns_) {
      if (spawn.owner == rank && spawn.thread.joinable()) {
        mine.push_back(std::move(spawn.thread));
      }
    }
  }
  cluster_->world().set_passive(rank, true);
  for (auto& t : mine) t.join();
  cluster_->world().set_passive(rank, false);
}

void PilotApp::join_all_spe_threads() {
  std::vector<std::thread> all;
  {
    std::lock_guard lock(spe_mu_);
    for (auto& owned : spe_threads_) {
      if (owned.thread.joinable()) all.push_back(std::move(owned.thread));
    }
    for (auto& [pid, spawn] : spawns_) {
      if (spawn.thread.joinable()) all.push_back(std::move(spawn.thread));
    }
  }
  for (auto& t : all) t.join();
}

unsigned PilotApp::acquire_spe(int node) {
  std::lock_guard lock(spe_mu_);
  auto& busy = spe_busy_[static_cast<std::size_t>(node)];
  for (unsigned i = 0; i < busy.size(); ++i) {
    if (!busy[i]) {
      busy[i] = true;
      return i;
    }
  }
  throw PilotError(ErrorCode::kCapacity,
                   "all " + std::to_string(busy.size()) +
                       " SPEs of node " + std::to_string(node) +
                       " are busy");
}

void PilotApp::release_spe(int node, unsigned flat_index) {
  std::lock_guard lock(spe_mu_);
  spe_busy_[static_cast<std::size_t>(node)][flat_index] = false;
}

int PilotApp::busy_spe_count(int node) {
  std::lock_guard lock(spe_mu_);
  const auto& busy = spe_busy_[static_cast<std::size_t>(node)];
  int n = 0;
  for (const bool b : busy) {
    if (b) ++n;
  }
  return n;
}

bool PilotApp::spe_assigned(int node, unsigned flat_index) {
  std::lock_guard lock(spe_mu_);
  return spe_busy_[static_cast<std::size_t>(node)][flat_index];
}

void PilotApp::bind_spe_process(int node, unsigned flat_index,
                                int process_id) {
  std::lock_guard lock(spe_mu_);
  spe_process_[static_cast<std::size_t>(node)][flat_index] = process_id;
}

int PilotApp::spe_process(int node, unsigned flat_index) {
  std::lock_guard lock(spe_mu_);
  return spe_process_[static_cast<std::size_t>(node)][flat_index];
}

void PilotApp::join_spawn(mpisim::Rank rank, int process_id) {
  // Same protocol as join_spe_threads: release any frame the retiring SPE
  // may be waiting on, then park this rank passively while joining.
  std::thread previous;
  {
    std::lock_guard lock(spe_mu_);
    const auto it = spawns_.find(process_id);
    if (it == spawns_.end() || !it->second.thread.joinable()) return;
    previous = std::move(it->second.thread);
  }
  if (mpisim::reliable::enabled()) mpisim::reliable::flush_from(rank);
  cluster_->world().set_passive(rank, true);
  previous.join();
  cluster_->world().set_passive(rank, false);
}

unsigned PilotApp::acquire_spe_preferring(int node, unsigned preferred) {
  {
    std::lock_guard lock(spe_mu_);
    auto& busy = spe_busy_[static_cast<std::size_t>(node)];
    if (preferred < busy.size() && !busy[preferred]) {
      busy[preferred] = true;
      return preferred;
    }
  }
  return acquire_spe(node);
}

void PilotApp::register_spawn(int process_id, mpisim::Rank owner,
                              unsigned flat_index, std::thread t) {
  std::lock_guard lock(spe_mu_);
  SpawnRecord& rec = spawns_[process_id];
  rec.owner = owner;
  rec.flat = flat_index;
  rec.has_flat = true;
  rec.thread = std::move(t);
}

std::optional<unsigned> PilotApp::last_spawn_flat(int process_id) {
  std::lock_guard lock(spe_mu_);
  const auto it = spawns_.find(process_id);
  if (it == spawns_.end() || !it->second.has_flat) return std::nullopt;
  return it->second.flat;
}

void PilotApp::report_process_failure(int process_id,
                                      ProcessFailure failure) {
  std::lock_guard lock(failures_mu_);
  failures_.emplace(process_id, std::move(failure));  // first report wins
}

std::optional<PilotApp::ProcessFailure> PilotApp::process_failure(
    int process_id) const {
  std::lock_guard lock(failures_mu_);
  const auto it = failures_.find(process_id);
  if (it == failures_.end()) return std::nullopt;
  return it->second;
}

void PilotApp::register_respawn_seed(int process_id, RespawnSeed seed) {
  std::lock_guard lock(seeds_mu_);
  seeds_[process_id] = seed;  // latest launch recipe wins
}

std::optional<PilotApp::RespawnSeed> PilotApp::respawn_seed(
    int process_id) const {
  std::lock_guard lock(seeds_mu_);
  const auto it = seeds_.find(process_id);
  if (it == seeds_.end()) return std::nullopt;
  return it->second;
}

}  // namespace pilot
