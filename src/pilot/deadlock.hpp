// deadlock.hpp — Pilot's integrated deadlock-detection service.
//
// When the job is launched with `-pisvc=d`, one extra MPI rank runs the
// service (as in the paper, the feature "consumes one MPI process").  Every
// rank-backed process reports, via small control messages, when it blocks
// on a channel read (or a select, reported as one event per candidate
// writer) and when it unblocks.  The service maintains the wait-for graph
// over processes; a cycle means circular wait — the job is aborted with a
// diagnostic naming the deadlocked processes, instead of hanging silently.
//
// False positives from in-flight unblock events are avoided by a
// confirmation protocol: on seeing a cycle, the service drains queued
// events, waits briefly, and re-checks before aborting.
#pragma once

#include <cstdint>

#include "mpisim/mpi.hpp"
#include "pilot/context.hpp"

namespace pilot {

/// One deadlock-protocol control message.
struct DeadlockEvent {
  enum Kind : std::int32_t {
    kBlock = 1,     ///< `process` now waits for `peer` (channel `channel`)
    kUnblock = 2,   ///< `process` no longer waits on anything
    kShutdown = 3,  ///< service should exit (sent by PI_MAIN at StopMain)
    kInit = 4,      ///< `process` carries the count of rank-backed processes
    kFinished = 5,  ///< `process` returned from its work function
  };
  std::int32_t kind = kBlock;
  std::int32_t process = -1;
  std::int32_t peer = -1;
  std::int32_t channel = -1;
  /// For kBlock: whether the peer is a rank-backed Pilot process (as
  /// opposed to an SPE process).
  std::int32_t peer_is_rank = 1;
  /// For kBlock: whether `process` itself is rank-backed.  0 marks a
  /// *proxy* event sent by a Co-Pilot on behalf of a parked SPE request —
  /// such processes close wait-for cycles through Type 4/5 channels but
  /// are excluded from the global-stall census (only PI_MAIN's init count
  /// of rank-backed processes is known).
  std::int32_t process_is_rank = 1;
};

/// Reports "ctx's process is about to block reading from `peer_process`".
/// No-op unless deadlock detection is enabled.
void notify_block(PilotContext& ctx, int peer_process, int channel_id);

/// Reports "ctx's process resumed".  No-op unless detection is enabled.
void notify_unblock(PilotContext& ctx);

/// Reports "ctx's process function returned" (a wait on it can never be
/// satisfied).  No-op unless detection is enabled.
void notify_finished(PilotContext& ctx);

/// Sent once by PI_MAIN at PI_StartAll: the number of rank-backed
/// processes, enabling global-stall detection.
void notify_init(PilotContext& ctx, int rank_process_count);

/// Proxy block report: the Co-Pilot serving `spe_process` parked one of
/// its channel requests waiting on `peer_process`.  Sent from the
/// Co-Pilot rank (which has no PilotContext), so it takes the pieces
/// explicitly.  No-op unless detection is enabled.
void notify_block_proxy(mpisim::Mpi& mpi, PilotApp& app, int spe_process,
                        int peer_process, int channel_id);

/// Proxy unblock report: the parked request of `spe_process` completed
/// (data arrived, the pair matched, or the process was failed).
void notify_unblock_proxy(mpisim::Mpi& mpi, PilotApp& app, int spe_process);

/// Entry point of the service rank.  Runs until a kShutdown event; aborts
/// the world with a "deadlock detected" diagnostic when a confirmed cycle
/// appears.  Returns 0.
int deadlock_service_main(mpisim::Mpi& mpi);

}  // namespace pilot
