// tables.hpp — the Pilot application architecture tables.
//
// During the configuration phase every rank executes the same PI_Create*
// calls and the library builds one canonical table of processes, channels
// and bundles (in the real library each MPI process builds its own identical
// copy; in the simulation the ranks are threads, so a shared registry hands
// every rank the *same* object — which is also what lets SPE programs refer
// to `PI_CHANNEL*` globals "by effective address", as in the paper).
//
// The structs are the definitions behind the opaque typedefs of the public
// header (pilot.hpp).  User code treats them as opaque.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cellsim/libspe2.hpp"
#include "mpisim/types.hpp"

namespace cellpilot {
struct Route;  // compiled data-plane plan (core/router.hpp)
}  // namespace cellpilot

namespace pilot {

/// Where a process executes.
enum class Location {
  kRank,  ///< a regular Pilot process: one MPI rank (PPE or non-Cell core)
  kSpe,   ///< a CellPilot SPE process
};

/// Signature of a Pilot process function (as in the paper:
/// `int worker(int index, void* arg)`).
using ProcessFunc = int (*)(int, void*);

/// First data tag; channel `id` uses tag kChannelTagBase + id.
inline constexpr int kChannelTagBase = 256;

}  // namespace pilot

/// A Pilot process: a named site of execution, created during the
/// configuration phase.  Process 0 is PI_MAIN.
struct PI_PROCESS {
  int id = 0;                        ///< process index; 0 is PI_MAIN
  pilot::Location location = pilot::Location::kRank;
  std::string name;                  ///< diagnostic name

  // --- rank-backed processes -------------------------------------------
  mpisim::Rank rank = -1;            ///< executing MPI rank
  pilot::ProcessFunc func = nullptr; ///< work function (null for PI_MAIN)
  int index_arg = 0;                 ///< first argument passed to func
  void* ptr_arg = nullptr;           ///< second argument passed to func

  // --- SPE-backed processes (CellPilot) --------------------------------
  const cellsim::spe2::spe_program_handle_t* program = nullptr;
  int parent_process = -1;           ///< id of the controlling PPE process
  int node = -1;                     ///< cluster node hosting the SPE
};

/// A point-to-point channel between two processes, fixed at configuration.
struct PI_CHANNEL {
  int id = 0;        ///< channel index
  int from = -1;     ///< writer process id
  int to = -1;       ///< reader process id
  std::string name;  ///< diagnostic name

  /// MiniMPI tag carrying this channel's data messages.
  int tag() const { return pilot::kChannelTagBase + id; }

  /// Compiled route, set by Router::compile at PI_StartAll (null during
  /// configuration).  Owned by the application's Router.
  cellpilot::Route* route = nullptr;
};

/// Collective-usage kinds for bundles (paper: broadcast, gather, select).
enum PI_BUNDLE_USAGE : int {
  PI_BROADCAST = 0,
  PI_GATHER = 1,
  PI_SELECT = 2,
};

/// A bundle: channels sharing a common endpoint, used collectively.
struct PI_BUNDLE {
  int id = 0;
  PI_BUNDLE_USAGE usage = PI_SELECT;
  std::vector<PI_CHANNEL*> channels;
  int common_process = -1;  ///< the shared endpoint's process id
};
