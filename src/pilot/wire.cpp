#include "pilot/wire.hpp"

#include <cstring>

namespace pilot {

namespace {

// Appends one scalar pulled from `args` (with C default promotions).
void append_scalar(std::vector<std::byte>& out, TypeCode type,
                   va_list args) {
  auto push = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    out.insert(out.end(), b, b + n);
  };
  switch (type) {
    case TypeCode::kByte: {
      const auto v = static_cast<std::uint8_t>(va_arg(args, int));
      push(&v, sizeof v);
      break;
    }
    case TypeCode::kChar: {
      const auto v = static_cast<char>(va_arg(args, int));
      push(&v, sizeof v);
      break;
    }
    case TypeCode::kInt16: {
      const auto v = static_cast<std::int16_t>(va_arg(args, int));
      push(&v, sizeof v);
      break;
    }
    case TypeCode::kInt32: {
      const auto v = static_cast<std::int32_t>(va_arg(args, int));
      push(&v, sizeof v);
      break;
    }
    case TypeCode::kInt64: {
      const auto v = static_cast<std::int64_t>(va_arg(args, long long));
      push(&v, sizeof v);
      break;
    }
    case TypeCode::kUInt32: {
      const auto v = static_cast<std::uint32_t>(va_arg(args, unsigned int));
      push(&v, sizeof v);
      break;
    }
    case TypeCode::kUInt64: {
      const auto v =
          static_cast<std::uint64_t>(va_arg(args, unsigned long long));
      push(&v, sizeof v);
      break;
    }
    case TypeCode::kFloat: {
      const auto v = static_cast<float>(va_arg(args, double));
      push(&v, sizeof v);
      break;
    }
    case TypeCode::kDouble: {
      const auto v = va_arg(args, double);
      push(&v, sizeof v);
      break;
    }
    case TypeCode::kLongDouble: {
      const auto v = va_arg(args, long double);
      push(&v, sizeof v);
      break;
    }
  }
}

std::uint32_t pull_star_count(va_list args) {
  const int n = va_arg(args, int);
  if (n <= 0) {
    throw PilotError(ErrorCode::kFormat,
                     "'*' count argument must be positive, got " +
                         std::to_string(n));
  }
  return static_cast<std::uint32_t>(n);
}

}  // namespace

MarshalResult marshal_payload(const Format& fmt, va_list args) {
  MarshalResult out;
  out.fmt.items.reserve(fmt.items.size());
  for (const FormatItem& item : fmt.items) {
    FormatItem resolved = item;
    if (item.star) {
      resolved.count = pull_star_count(args);
      resolved.star = false;
    }
    if (resolved.count == 1 && !item.star) {
      append_scalar(out.payload, item.type, args);
    } else {
      const void* src = va_arg(args, const void*);
      if (src == nullptr) {
        throw PilotError(ErrorCode::kFormat,
                         "null array pointer for %" +
                             std::string(type_spec(item.type)));
      }
      const std::size_t n = element_size(item.type) * resolved.count;
      const auto* b = static_cast<const std::byte*>(src);
      out.payload.insert(out.payload.end(), b, b + n);
    }
    out.fmt.items.push_back(resolved);
  }
  return out;
}

void marshal_append(const Format& fmt, va_list args,
                    std::vector<std::byte>& out,
                    std::vector<std::uint32_t>& counts) {
  counts.clear();
  for (const FormatItem& item : fmt.items) {
    std::uint32_t count = item.count;
    if (item.star) count = pull_star_count(args);
    if (count == 1 && !item.star) {
      append_scalar(out, item.type, args);
    } else {
      const void* src = va_arg(args, const void*);
      if (src == nullptr) {
        throw PilotError(ErrorCode::kFormat,
                         "null array pointer for %" +
                             std::string(type_spec(item.type)));
      }
      const std::size_t n = element_size(item.type) * count;
      const auto* b = static_cast<const std::byte*>(src);
      out.insert(out.end(), b, b + n);
    }
    counts.push_back(count);
  }
}

ReadPlan build_read_plan(const Format& fmt, va_list args) {
  ReadPlan plan;
  build_read_plan_into(fmt, args, plan);
  return plan;
}

void build_read_plan_into(const Format& fmt, va_list args, ReadPlan& plan) {
  plan.fmt.items.clear();
  plan.destinations.clear();
  plan.payload_bytes = 0;
  plan.fmt.items.reserve(fmt.items.size());
  for (const FormatItem& item : fmt.items) {
    FormatItem resolved = item;
    if (item.star) {
      resolved.count = pull_star_count(args);
      resolved.star = false;
    }
    void* dst = va_arg(args, void*);
    if (dst == nullptr) {
      throw PilotError(ErrorCode::kFormat,
                       "null destination pointer for %" +
                           std::string(type_spec(item.type)));
    }
    plan.destinations.push_back(dst);
    plan.fmt.items.push_back(resolved);
    plan.payload_bytes += element_size(resolved.type) * resolved.count;
  }
}

void scatter(const ReadPlan& plan, std::span<const std::byte> payload) {
  std::size_t off = 0;
  for (std::size_t i = 0; i < plan.fmt.items.size(); ++i) {
    const FormatItem& item = plan.fmt.items[i];
    const std::size_t n = element_size(item.type) * item.count;
    std::memcpy(plan.destinations[i], payload.data() + off, n);
    off += n;
  }
}

std::vector<std::byte> frame_message(std::uint32_t sig,
                                     std::span<const std::byte> payload,
                                     std::uint32_t epoch) {
  WireHeader hdr;
  hdr.magic = kWireMagic;
  hdr.signature = sig;
  hdr.epoch = epoch;
  hdr.payload_bytes = payload.size();
  std::vector<std::byte> out(sizeof(WireHeader) + payload.size());
  std::memcpy(out.data(), &hdr, sizeof hdr);
  if (!payload.empty()) {
    std::memcpy(out.data() + sizeof hdr, payload.data(), payload.size());
  }
  return out;
}

std::span<const std::byte> check_frame(std::span<const std::byte> message,
                                       std::uint32_t expected_sig,
                                       std::size_t expected_bytes,
                                       const std::string& where) {
  if (message.size() < sizeof(WireHeader)) {
    throw PilotError(ErrorCode::kInternal,
                     where + ": short channel frame (" +
                         std::to_string(message.size()) + " bytes)");
  }
  WireHeader hdr;
  std::memcpy(&hdr, message.data(), sizeof hdr);
  if (hdr.magic != kWireMagic) {
    throw PilotError(ErrorCode::kInternal, where + ": bad frame magic");
  }
  if (hdr.payload_bytes != message.size() - sizeof(WireHeader)) {
    throw PilotError(ErrorCode::kInternal, where + ": frame length mismatch");
  }
  if (hdr.signature != expected_sig || hdr.payload_bytes != expected_bytes) {
    throw PilotError(
        ErrorCode::kTypeMismatch,
        where + ": writer format does not match reader format (writer sig=" +
            std::to_string(hdr.signature) + " " +
            std::to_string(hdr.payload_bytes) + "B, reader sig=" +
            std::to_string(expected_sig) + " " +
            std::to_string(expected_bytes) + "B)");
  }
  return message.subspan(sizeof(WireHeader));
}

std::uint32_t frame_epoch(std::span<const std::byte> message) {
  if (message.size() < sizeof(WireHeader)) return 0;
  WireHeader hdr;
  std::memcpy(&hdr, message.data(), sizeof hdr);
  return hdr.epoch;
}

std::vector<std::byte> frame_fault(const FaultFrame& fault) {
  WireHeader hdr;
  hdr.magic = kWireFaultMagic;
  hdr.signature = fault.status;
  hdr.epoch = fault.epoch;
  hdr.payload_bytes = sizeof(std::uint32_t) + fault.detail.size();
  std::vector<std::byte> out(sizeof(WireHeader) + hdr.payload_bytes);
  std::memcpy(out.data(), &hdr, sizeof hdr);
  std::memcpy(out.data() + sizeof hdr, &fault.fault_code,
              sizeof fault.fault_code);
  if (!fault.detail.empty()) {
    std::memcpy(out.data() + sizeof hdr + sizeof fault.fault_code,
                fault.detail.data(), fault.detail.size());
  }
  return out;
}

bool is_fault_frame(std::span<const std::byte> message) {
  if (message.size() < sizeof(WireHeader)) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, message.data(), sizeof magic);
  return magic == kWireFaultMagic;
}

FaultFrame parse_fault_frame(std::span<const std::byte> message) {
  if (message.size() < sizeof(WireHeader) + sizeof(std::uint32_t)) {
    throw PilotError(ErrorCode::kInternal, "short fault frame (" +
                                               std::to_string(message.size()) +
                                               " bytes)");
  }
  WireHeader hdr;
  std::memcpy(&hdr, message.data(), sizeof hdr);
  if (hdr.magic != kWireFaultMagic ||
      hdr.payload_bytes != message.size() - sizeof(WireHeader)) {
    throw PilotError(ErrorCode::kInternal, "corrupt fault frame");
  }
  FaultFrame fault;
  fault.status = hdr.signature;
  fault.epoch = hdr.epoch;
  std::memcpy(&fault.fault_code, message.data() + sizeof hdr,
              sizeof fault.fault_code);
  const std::size_t detail_bytes =
      static_cast<std::size_t>(hdr.payload_bytes) - sizeof fault.fault_code;
  fault.detail.resize(detail_bytes);
  if (detail_bytes > 0) {
    std::memcpy(fault.detail.data(),
                message.data() + sizeof hdr + sizeof fault.fault_code,
                detail_bytes);
  }
  return fault;
}

std::vector<std::byte> frame_marker(const MarkerFrame& marker) {
  WireHeader hdr;
  hdr.magic = kWireMarkerMagic;
  hdr.signature = marker.cut;
  hdr.payload_bytes = sizeof marker.stamp + sizeof marker.node;
  std::vector<std::byte> out(sizeof(WireHeader) + hdr.payload_bytes);
  std::memcpy(out.data(), &hdr, sizeof hdr);
  std::memcpy(out.data() + sizeof hdr, &marker.stamp, sizeof marker.stamp);
  std::memcpy(out.data() + sizeof hdr + sizeof marker.stamp, &marker.node,
              sizeof marker.node);
  return out;
}

bool is_marker_frame(std::span<const std::byte> message) {
  if (message.size() < sizeof(WireHeader)) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, message.data(), sizeof magic);
  return magic == kWireMarkerMagic;
}

MarkerFrame parse_marker_frame(std::span<const std::byte> message) {
  constexpr std::size_t kBody =
      sizeof(simtime::SimTime) + sizeof(std::uint32_t);
  if (message.size() != sizeof(WireHeader) + kBody) {
    throw PilotError(ErrorCode::kInternal,
                     "short marker frame (" +
                         std::to_string(message.size()) + " bytes)");
  }
  WireHeader hdr;
  std::memcpy(&hdr, message.data(), sizeof hdr);
  if (hdr.magic != kWireMarkerMagic || hdr.payload_bytes != kBody) {
    throw PilotError(ErrorCode::kInternal, "corrupt marker frame");
  }
  MarkerFrame marker;
  marker.cut = hdr.signature;
  std::memcpy(&marker.stamp, message.data() + sizeof hdr, sizeof marker.stamp);
  std::memcpy(&marker.node,
              message.data() + sizeof hdr + sizeof marker.stamp,
              sizeof marker.node);
  return marker;
}

}  // namespace pilot
