// format.hpp — Pilot's stdio-inspired data-description language.
//
// PI_Write / PI_Read describe message contents with printf-flavoured format
// strings: `PI_Write(ch, "%d", x)` sends one int, `"%1000f"` an array of
// 1000 floats, `"%*Lf"` an array of long doubles whose length is supplied as
// an int argument.  The format is *only* a description — data travels in
// binary — but it is the wire contract: Pilot verifies at match time that
// writer and reader agree on types and element counts, one of the error
// classes the library eliminates.
//
// Grammar (whitespace between items is ignored):
//   format  := item*
//   item    := '%' count? type
//   count   := integer (>0) | '*'            -- '*' pulls the count from args
//   type    := 'b'  byte    | 'c'  char      | 'hd' int16   | 'd' int32
//            | 'ld' int64   | 'u'  uint32    | 'lu' uint64
//            | 'f'  float   | 'lf' double    | 'Lf' long double
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pilot/errors.hpp"

namespace pilot {

/// Element type of one format item.
enum class TypeCode : std::uint8_t {
  kByte,
  kChar,
  kInt16,
  kInt32,
  kInt64,
  kUInt32,
  kUInt64,
  kFloat,
  kDouble,
  kLongDouble,
};

/// Size in bytes of one element.
std::size_t element_size(TypeCode type);

/// Conversion-specifier spelling ("d", "Lf", ...) for diagnostics.
const char* type_spec(TypeCode type);

/// One parsed item.
struct FormatItem {
  TypeCode type = TypeCode::kInt32;
  bool star = false;        ///< count supplied as an int argument
  std::uint32_t count = 1;  ///< element count (when !star)
};

/// A parsed format string.
struct Format {
  std::vector<FormatItem> items;

  /// Total payload bytes once every '*' has been resolved; items must have
  /// star==false (see resolve()).
  std::size_t payload_bytes() const;
};

/// Parses `fmt`; throws PilotError(kFormat) with the offending position on
/// syntax errors.
Format parse_format(std::string_view fmt);

/// Counting hooks: parse_format invocations since the last reset.  Tests
/// use them to prove the route layer parses each format once per endpoint
/// per run, not once per message.
std::uint64_t format_parse_count();
void reset_format_parse_count();

/// A format with all '*' counts substituted (what actually crosses the
/// wire).  Computed by the marshalling layer as it consumes arguments.
using ResolvedFormat = Format;

/// 32-bit signature of a resolved format: type codes and counts, order-
/// sensitive.  Writer and reader signatures must match exactly; the
/// signature rides in the control path (mailbox request words / wire
/// header) so mismatches are reported as PilotError(kTypeMismatch) instead
/// of silent corruption.
std::uint32_t signature(const ResolvedFormat& fmt);

/// Signature of a possibly-'*' format whose per-item element counts were
/// resolved out-of-band (`counts` is parallel to fmt.items).  Equals
/// signature() of the equivalent resolved format.
std::uint32_t signature(const Format& fmt,
                        std::span<const std::uint32_t> counts);

/// Human-readable rendering of a resolved format for diagnostics,
/// e.g. "%100d %lf".
std::string to_string(const ResolvedFormat& fmt);

}  // namespace pilot
