// app.hpp — per-application shared state.
//
// One PilotApp exists per simulated job (per pilot::run / cellpilot::run
// invocation).  It owns the canonical process/channel/bundle tables that all
// rank threads share, the options parsed by PI_Configure, the hook through
// which the CellPilot layer provides SPE transports, and the bookkeeping for
// SPE threads spawned by PI_RunSPE.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "mpisim/mpi.hpp"
#include "pilot/errors.hpp"
#include "pilot/tables.hpp"
#include "simtime/sim_time.hpp"

namespace cellpilot {
class Router;  // compiled data plane (core/router.hpp)
}  // namespace cellpilot

struct PI_OP;  // async operation (core/completion.hpp)

namespace pilot {

class PilotContext;

/// Reserved control tags used by the Pilot runtime.
inline constexpr int kTagShutdown = mpisim::kReservedTagBase + 64;
inline constexpr int kTagDeadlockEvent = mpisim::kReservedTagBase + 65;
inline constexpr int kTagUserBarrierIn = mpisim::kReservedTagBase + 66;
inline constexpr int kTagUserBarrierOut = mpisim::kReservedTagBase + 67;

/// Options parsed by PI_Configure from the command line.
struct Options {
  bool deadlock_detection = false;  ///< -pisvc=d
  bool trace_calls = false;         ///< -pisvc=t (log every PI_* call)
  /// Co-Pilot supervision deadline: an SPE request whose mailbox words
  /// span more than this much virtual time is declared stalled
  /// (-pideadline=<dur>).  Supervision is a read-only comparison on
  /// already-recorded stamps, so the clean path's timing is unchanged.
  simtime::SimTime spe_deadline = simtime::us(500.0);
  /// Retry/backoff budget: a stalled request is retried with a doubled
  /// deadline up to this many times before the Co-Pilot gives up and
  /// completes it with kSpeTimeout.
  int spe_deadline_retries = 3;
  /// Heartbeat lease on a crashed Co-Pilot (-pilease=<dur>): the standby
  /// waits this much virtual time past the crash stamp (detecting the
  /// missed heartbeat) before taking over from the journal.
  simtime::SimTime copilot_lease = simtime::us(200.0);
  /// Supervised SPE respawn budget (-pirespawn=N / CELLPILOT_RESPAWN):
  /// how many times Co-Pilot supervision may respawn a faulted SPE slot
  /// before degrading to poison + PILF.  0 (the default) disarms
  /// self-healing entirely — deaths take the historical path and no
  /// replay journal is kept, so no-fault runs stay byte-identical.
  int respawn_budget = 0;
  /// Coordinated checkpoint file (-pickpt=FILE / CELLPILOT_CKPT).  Empty
  /// (the default) disarms checkpointing; armed, every Co-Pilot cuts a
  /// consistent snapshot into this file on the checkpoint_interval cadence
  /// and a blade_kill fault restores the lost contexts from the last
  /// committed cut instead of degrading to poison + PILF.
  std::string checkpoint_path;
  /// Checkpoint cadence (-pickptevery=N / CELLPILOT_CKPT_EVERY): each
  /// Co-Pilot contributes to cut k after its k*N-th serviced SPE request
  /// (or earlier, on receiving the cut's marker from a peer).  Only
  /// meaningful when checkpoint_path is set.
  int checkpoint_interval = 64;
};

/// Transport hooks for channels with at least one SPE endpoint.  Implemented
/// by the CellPilot layer (src/core); null in plain-Pilot applications, in
/// which case touching an SPE channel is a usage error.
class CellTransport {
 public:
  virtual ~CellTransport() = default;

  /// SPE-side write on any channel leaving an SPE (types 2..5).
  virtual void spe_write(const PI_CHANNEL& ch, std::uint32_t sig,
                         std::span<const std::byte> payload) = 0;

  /// SPE-side read on any channel entering an SPE (types 2..5).  Fills
  /// `out` with exactly out.size() payload bytes.
  virtual void spe_read(const PI_CHANNEL& ch, std::uint32_t sig,
                        std::span<std::byte> out) = 0;

  /// Launches an SPE process (PI_RunSPE); called on the parent rank.
  virtual void run_spe(PilotContext& ctx, PI_PROCESS& proc, int arg,
                       void* ptr) = 0;

  // --- async tier (SPE-side operations; see core/completion.hpp) ----------

  /// Stages and submits an async SPE-side write; `op` is in flight on
  /// return (token assigned, local-store staging parked).
  virtual void spe_submit_write(PI_OP& op, const PI_CHANNEL& ch,
                                std::uint32_t sig,
                                std::span<const std::byte> payload) = 0;

  /// Submits an async SPE-side read for `bytes` payload bytes.
  virtual void spe_submit_read(PI_OP& op, const PI_CHANNEL& ch,
                               std::uint32_t sig, std::size_t bytes) = 0;

  /// Blocks until `op` settles, then harvests (fills `out` for reads,
  /// frees the staging, throws the recorded fault).
  virtual void spe_wait(PI_OP& op, const PI_CHANNEL& ch,
                        std::span<std::byte> out) = 0;

  /// Non-blocking spe_wait: false while `op` is still in flight.
  virtual bool spe_test(PI_OP& op, const PI_CHANNEL& ch,
                        std::span<std::byte> out) = 0;

  /// Blocks until one of `ops[0..n-1]` settles; returns its index without
  /// harvesting it.
  virtual int spe_wait_any(PI_OP* const* ops, int n) = 0;

  /// Runtime SPE spawning (PI_SpawnSPE): binds `program` to `proc` at
  /// execution time and launches it, reusing the process's previous SPE
  /// context when it is free (pooled contexts).
  virtual void spawn_spe(PilotContext& ctx, PI_PROCESS& proc,
                         const cellsim::spe2::spe_program_handle_t& program,
                         int arg, void* ptr) = 0;
};

/// Shared state of one Pilot application run.
class PilotApp {
 public:
  /// Binds the app to a simulated cluster (borrowed; must outlive the app).
  explicit PilotApp(cluster::Cluster& cluster);
  ~PilotApp();

  PilotApp(const PilotApp&) = delete;
  PilotApp& operator=(const PilotApp&) = delete;

  cluster::Cluster& cluster() { return *cluster_; }

  /// Options; written once by PI_Configure (same values on every rank).
  Options& options() { return options_; }

  /// The CellPilot transport, or null for plain Pilot runs.
  CellTransport* transport() const { return transport_; }
  void set_transport(CellTransport* t) { transport_ = t; }

  // --- canonical tables (get-or-create; see tables.hpp) -------------------

  /// Returns the process with creation sequence number `seq`.  The first
  /// rank to reach this creation point instantiates it from `proto`
  /// (assigning the next free MPI rank when `assign_rank`); later ranks get
  /// the canonical object.  Configuration runs the same code on every rank,
  /// so sequence numbers align.
  PI_PROCESS* get_or_create_process(int seq, PI_PROCESS proto,
                                    bool assign_rank);
  PI_CHANNEL* get_or_create_channel(int seq, PI_CHANNEL proto);
  PI_BUNDLE* get_or_create_bundle(int seq, PI_BUNDLE proto);

  /// Stores a channel-pointer array for the app's lifetime and returns the
  /// canonical copy (PI_CopyChannels result; same array on every rank,
  /// keyed by the first channel's id).
  PI_CHANNEL** intern_channel_array(std::vector<PI_CHANNEL*> channels);

  /// Table lookups (throw PilotError(kInternal) when out of range).
  PI_PROCESS& process(int id);
  PI_CHANNEL& channel(int id);
  PI_BUNDLE& bundle(int id);
  int process_count() const;
  int channel_count() const;
  int bundle_count() const;

  /// The compiled data plane (routes + per-endpoint format caches).
  cellpilot::Router& router() { return *router_; }

  /// Compiles every channel's route exactly once per run.  Called by
  /// PI_StartAll on every rank; the first caller does the work, the rest
  /// wait (std::call_once), so post-barrier code always sees routes.
  void compile_routes();

  /// Number of user ranks (= Pilot processes available to the programmer).
  int available_processes() const { return cluster_->user_rank_count(); }

  /// Barrier over the user ranks only (Co-Pilot/service ranks excluded);
  /// used at PI_StartAll and PI_StopMain.
  void user_barrier(mpisim::Mpi& mpi);

  // --- SPE thread bookkeeping (PI_RunSPE) ---------------------------------

  /// Registers a running SPE thread owned by `rank`.
  void add_spe_thread(mpisim::Rank rank, std::thread t);

  /// Joins all SPE threads spawned by `rank` (PI_StopMain / PI_StartAll
  /// epilogue on the owning rank).  Marks the rank passive for the
  /// duration: it cannot send while joining, and the Co-Pilot's
  /// conservative event ordering must not stall behind its frozen clock.
  void join_spe_threads(mpisim::Rank rank);

  /// Joins every remaining SPE thread (teardown safety net).
  void join_all_spe_threads();

  /// Picks a free physical SPE on `node` and marks it busy; returns its
  /// flat index.  Throws PilotError(kCapacity) when all are busy.
  unsigned acquire_spe(int node);

  /// Marks a physical SPE free again.
  void release_spe(int node, unsigned flat_index);

  /// Number of physical SPEs of `node` currently marked busy — the SPE
  /// pool-occupancy gauge the telemetry layer samples at acquire/release
  /// seams.
  int busy_spe_count(int node);

  /// Whether a physical SPE is currently assigned to a launched process
  /// (set before the worker thread starts, so the Co-Pilot's safe-time
  /// computation sees upcoming SPEs).
  bool spe_assigned(int node, unsigned flat_index);

  /// Records which Pilot process runs on a physical SPE (set by PI_RunSPE
  /// before the worker thread starts; the Co-Pilot uses it to name the
  /// process when the SPE faults).
  void bind_spe_process(int node, unsigned flat_index, int process_id);

  /// The Pilot process id bound to a physical SPE, or -1.
  int spe_process(int node, unsigned flat_index);

  // --- runtime SPE spawning (PI_SpawnSPE) ---------------------------------
  //
  // A spawned process may be relaunched with a different program once its
  // previous run retires; the bookkeeping below keeps one live thread per
  // spawned process plus the context it last occupied, so the pool can
  // hand the same physical SPE back (sticky contexts).

  /// Joins the previous occupant thread of a spawned process, if any.
  /// Same passive/flush protocol as join_spe_threads.
  void join_spawn(mpisim::Rank rank, int process_id);

  /// Like acquire_spe, but takes `preferred` when it is free.
  unsigned acquire_spe_preferring(int node, unsigned preferred);

  /// Records the running thread + context of a spawned process (joined by
  /// join_spawn on respawn, or by the join_spe_threads epilogues).
  void register_spawn(int process_id, mpisim::Rank owner, unsigned flat_index,
                      std::thread t);

  /// The physical SPE the process last ran on, if it was ever spawned.
  std::optional<unsigned> last_spawn_flat(int process_id);

  // --- supervised respawn (self-healing) ----------------------------------

  /// Everything Co-Pilot supervision needs to relaunch a faulted process's
  /// program into a fresh pooled context: registered by PI_RunSPE /
  /// PI_SpawnSPE at launch time (latest bind wins), consulted only when a
  /// fault arrives with `-pirespawn` armed.
  struct RespawnSeed {
    const cellsim::spe2::spe_program_handle_t* program = nullptr;
    int arg = 0;
    void* ptr = nullptr;
    mpisim::Rank owner = -1;  ///< parent rank (owns the worker thread)
  };

  /// Records (or refreshes) the seed for a process.
  void register_respawn_seed(int process_id, RespawnSeed seed);

  /// The seed last registered for a process, if any.
  std::optional<RespawnSeed> respawn_seed(int process_id) const;

  // --- process failure registry (Co-Pilot fault propagation) --------------

  /// A dead endpoint's epitaph, published by the Co-Pilot that owned it.
  struct ProcessFailure {
    std::uint32_t status = 0;      ///< core CompletionStatus value
    std::uint32_t fault_code = 0;  ///< cellsim::FaultCode value
    std::string detail;            ///< one-line diagnostic
  };

  /// Publishes a process's failure (idempotent: first report wins).
  void report_process_failure(int process_id, ProcessFailure failure);

  /// The failure published for a process, if any.  Rank-side data-plane
  /// calls consult this so repeat reads/writes on a dead SPE's channels
  /// fail fast instead of blocking forever.
  std::optional<ProcessFailure> process_failure(int process_id) const;

 private:
  cluster::Cluster* cluster_;
  Options options_;
  CellTransport* transport_ = nullptr;
  std::unique_ptr<cellpilot::Router> router_;
  std::once_flag routes_once_;

  mutable std::mutex tables_mu_;
  std::vector<std::unique_ptr<PI_PROCESS>> processes_;
  std::vector<std::unique_ptr<PI_CHANNEL>> channels_;
  std::vector<std::unique_ptr<PI_BUNDLE>> bundles_;
  std::map<int, std::vector<PI_CHANNEL*>> channel_arrays_;
  int ranks_assigned_ = 0;  // PI_MAIN's creation at PI_Configure takes rank 0

  std::mutex spe_mu_;
  struct OwnedThread {
    mpisim::Rank owner;
    std::thread thread;
  };
  std::vector<OwnedThread> spe_threads_;
  std::vector<std::vector<bool>> spe_busy_;  // [node][flat_index]
  std::vector<std::vector<int>> spe_process_;  // [node][flat_index] or -1
  struct SpawnRecord {
    mpisim::Rank owner = -1;
    unsigned flat = 0;
    bool has_flat = false;
    std::thread thread;
  };
  std::map<int, SpawnRecord> spawns_;  // process id -> last/live spawn

  mutable std::mutex failures_mu_;
  std::map<int, ProcessFailure> failures_;  // process id -> epitaph

  mutable std::mutex seeds_mu_;
  std::map<int, RespawnSeed> seeds_;  // process id -> launch recipe
};

}  // namespace pilot
