#include "pilot/errors.hpp"

namespace pilot {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUsage: return "usage";
    case ErrorCode::kFormat: return "format";
    case ErrorCode::kTypeMismatch: return "type-mismatch";
    case ErrorCode::kEndpoint: return "endpoint";
    case ErrorCode::kCapacity: return "capacity";
    case ErrorCode::kBundle: return "bundle";
    case ErrorCode::kDeadlock: return "deadlock";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kAbort: return "abort";
    case ErrorCode::kSpeFault: return "spe-fault";
    case ErrorCode::kSpeTimeout: return "spe-timeout";
    case ErrorCode::kCopilotFault: return "copilot-fault";
    case ErrorCode::kSpeRestarted: return "spe-restarted";
  }
  return "?";
}

namespace {

std::string compose(ErrorCode code, const std::string& detail,
                    const char* file, int line) {
  std::string msg = "pilot error (";
  msg += to_string(code);
  msg += ")";
  if (file != nullptr) {
    msg += " at ";
    msg += file;
    msg += ":";
    msg += std::to_string(line);
  }
  msg += ": ";
  msg += detail;
  return msg;
}

}  // namespace

PilotError::PilotError(ErrorCode code, const std::string& detail,
                       const char* file, int line)
    : std::runtime_error(compose(code, detail, file, line)),
      code_(code),
      detail_(detail) {}

}  // namespace pilot
