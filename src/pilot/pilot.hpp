// pilot.hpp — the public Pilot API.
//
// This is the reproduction's `pilot.h`: the process/channel programming
// interface described in Carter, Gardner & Grewal, "The Pilot approach to
// cluster programming in C" (PDSEC'10), which the CellPilot paper extends.
// The names, call shapes and two-phase model follow the paper:
//
//   int main(int argc, char** argv) {            // runs on EVERY rank
//     int n = PI_Configure(&argc, &argv);        // configuration phase
//     PI_PROCESS* w = PI_CreateProcess(worker, 0, NULL);
//     PI_CHANNEL* c = PI_CreateChannel(PI_MAIN, w);
//     PI_StartAll();                             // execution phase begins
//     PI_Write(c, "%d %100f", n, data);          // only PI_MAIN gets here
//     PI_StopMain(0);
//     return 0;
//   }
//
// PI_Write/PI_Read/PI_Broadcast/PI_Gather are macros capturing __FILE__ /
// __LINE__, so that misuse diagnostics point at the offending source line —
// one of Pilot's signature features.
//
// SPE processes (PI_CreateSPE / PI_RunSPE / PI_SPE_PROGRAM) are declared in
// core/cellpilot.hpp, which includes this header.
#pragma once

#include <cstdarg>

#include "pilot/errors.hpp"
#include "pilot/tables.hpp"

/// Error codes a peer observes when an SPE process dies instead of
/// completing a transfer (see DESIGN.md, "Fault model & recovery").  A
/// PI_Read/PI_Write on a channel whose SPE peer suffered a hardware fault
/// throws PilotError with PI_SPE_FAULT; one whose peer missed its Co-Pilot
/// deadline throws PI_SPE_TIMEOUT.
inline constexpr pilot::ErrorCode PI_SPE_FAULT = pilot::ErrorCode::kSpeFault;
inline constexpr pilot::ErrorCode PI_SPE_TIMEOUT =
    pilot::ErrorCode::kSpeTimeout;
/// A request whose serving Co-Pilot crashed and could not be replayed by
/// the standby throws PI_COPILOT_FAULT instead of hanging.
inline constexpr pilot::ErrorCode PI_COPILOT_FAULT =
    pilot::ErrorCode::kCopilotFault;
/// With `-pirespawn` armed, an op that was pending against an SPE
/// incarnation that died and was respawned — and that the supervisor could
/// not transparently replay against the new incarnation — settles with
/// PI_SPE_RESTARTED (see docs/PROTOCOL.md "Self-healing & channel epochs").
inline constexpr pilot::ErrorCode PI_SPE_RESTARTED =
    pilot::ErrorCode::kSpeRestarted;

/// Enters the configuration phase.  Parses and strips Pilot options from the
/// command line (`-pisvc=d` enables deadlock detection).  Returns the number
/// of Pilot processes the job provides (= MPI ranks requested from mpirun).
int PI_Configure(int* argc, char*** argv);

/// The main process (process 0, MPI rank 0).  Usable wherever a PI_PROCESS*
/// is expected.
PI_PROCESS* PI_GetMain(void);
#define PI_MAIN PI_GetMain()

/// Creates a process that will run `f(index, arg)` in the execution phase.
/// Configuration phase only.
PI_PROCESS* PI_CreateProcess(pilot::ProcessFunc f, int index, void* arg);

/// Creates a channel carrying messages from `from` to `to`.
/// Configuration phase only.
PI_CHANNEL* PI_CreateChannel(PI_PROCESS* from, PI_PROCESS* to);

/// Groups channels sharing a common endpoint for collective use.
/// Configuration phase only.  The common endpoint must be rank-backed;
/// SPE processes may appear as the non-common endpoints (an extension —
/// the paper lists SPE collectives as future work).
PI_BUNDLE* PI_CreateBundle(PI_BUNDLE_USAGE usage,
                           PI_CHANNEL* const channels[], int count);

/// Ends the configuration phase.  On PI_MAIN it returns and main()
/// continues; on every other process it runs the associated work function
/// and never returns (the real library exits there; this implementation
/// unwinds the rank thread).
void PI_StartAll(void);

/// Writes values described by `fmt` to a channel (see pilot/format.hpp for
/// the format language).  Blocking; callable from the channel's writer only.
void PI_Write_(const char* file, int line, PI_CHANNEL* ch, const char* fmt,
               ...);

/// Reads values described by `fmt` from a channel into pointer arguments.
/// Blocking; callable from the channel's reader only.
void PI_Read_(const char* file, int line, PI_CHANNEL* ch, const char* fmt,
              ...);

/// Broadcasts one message over every channel of a PI_BROADCAST bundle.
/// Called by the common (writing) process only; each receiver does a
/// plain PI_Read on its own channel — Pilot's MPMD convention.
void PI_Broadcast_(const char* file, int line, PI_BUNDLE* b, const char* fmt,
                   ...);

/// Gathers one contribution per channel of a PI_GATHER bundle into arrays.
/// Called by the common (reading) process; each contributor does a plain
/// PI_Write.  Each destination array holds size-many contributions.
void PI_Gather_(const char* file, int line, PI_BUNDLE* b, const char* fmt,
                ...);

#define PI_Write(ch, ...) PI_Write_(__FILE__, __LINE__, ch, __VA_ARGS__)
#define PI_Read(ch, ...) PI_Read_(__FILE__, __LINE__, ch, __VA_ARGS__)
#define PI_Broadcast(b, ...) PI_Broadcast_(__FILE__, __LINE__, b, __VA_ARGS__)
#define PI_Gather(b, ...) PI_Gather_(__FILE__, __LINE__, b, __VA_ARGS__)

/// Blocks until some channel of a PI_SELECT bundle has data; returns its
/// index within the bundle.
int PI_Select(PI_BUNDLE* b);

/// Non-blocking select: index of a ready channel, or -1.  A channel whose
/// writer already died (with nothing left on the wire) counts as ready:
/// the returned index lets the caller's PI_Read surface the failure.
int PI_TrySelect(PI_BUNDLE* b);

// --- asynchronous tier ------------------------------------------------------
//
// PI_WriteAsync / PI_ReadAsync are the split form of PI_Write / PI_Read:
// the call returns as soon as the operation is submitted to the completion
// engine, handing back a waitable PI_HANDLE.  The caller computes while the
// transfer proceeds, then harvests with PI_Wait (blocking), PI_Test
// (polling) or PI_WaitAny (first of a set).  Handle lifecycle:
//
//   submit -> (in flight) -> settle (complete | faulted) -> harvest
//
// Harvesting retires the handle: a read's destinations are filled exactly
// then (the pointers passed to PI_ReadAsync must stay valid until harvest),
// a faulted operation throws its peer's failure (PI_SPE_FAULT / ...), and
// the handle becomes invalid — a second wait is a usage error.  Handles
// must be harvested by the thread that submitted them (the same rule MPI
// requests live by).  An SPE program may keep at most 4 operations in
// flight (the inbound-mailbox depth); a fifth submission is a usage error.

typedef struct PI_OP PI_OP;
/// Waitable handle for an asynchronous operation.
typedef PI_OP* PI_HANDLE;

/// Submits an asynchronous write; the payload is captured (marshalled) at
/// submission, so the arguments may be reused immediately.
PI_HANDLE PI_WriteAsync_(const char* file, int line, PI_CHANNEL* ch,
                         const char* fmt, ...);

/// Submits an asynchronous read; the destination pointers are captured and
/// filled at harvest time.
PI_HANDLE PI_ReadAsync_(const char* file, int line, PI_CHANNEL* ch,
                        const char* fmt, ...);

#define PI_WriteAsync(ch, ...) \
  PI_WriteAsync_(__FILE__, __LINE__, ch, __VA_ARGS__)
#define PI_ReadAsync(ch, ...) PI_ReadAsync_(__FILE__, __LINE__, ch, __VA_ARGS__)

/// Blocks until `h` settles, harvests it, and retires the handle.  Throws
/// the peer's failure when the operation faulted.
void PI_Wait_(const char* file, int line, PI_HANDLE h);

/// Polls `h`: returns 0 while the operation is still in flight; on settle
/// harvests like PI_Wait and returns 1 (or throws the recorded fault).
int PI_Test_(const char* file, int line, PI_HANDLE h);

/// Blocks until one of `handles[0..count-1]` settles, harvests that one
/// (like PI_Wait, including the fault throw) and returns its index.  The
/// remaining handles stay live.
int PI_WaitAny_(const char* file, int line, PI_HANDLE* handles, int count);

/// Generalized select over a PI_SELECT bundle *and* a handle set (either
/// may be empty: pass NULL/0).  Returns the index of a ready bundle
/// channel (0 .. PI_GetBundleSize(b)-1) or bundle_size + i when
/// handles[i] has settled.  A settled handle is NOT harvested — follow up
/// with PI_Wait.  Rank-side only (bundles are rank-side constructs).
int PI_SelectAny_(const char* file, int line, PI_BUNDLE* b,
                  PI_HANDLE* handles, int count);

#define PI_Wait(h) PI_Wait_(__FILE__, __LINE__, h)
#define PI_Test(h) PI_Test_(__FILE__, __LINE__, h)
#define PI_WaitAny(handles, count) \
  PI_WaitAny_(__FILE__, __LINE__, handles, count)
#define PI_SelectAny(b, handles, count) \
  PI_SelectAny_(__FILE__, __LINE__, b, handles, count)

/// 1 when a read on the channel would not block, else 0.
int PI_ChannelHasData(PI_CHANNEL* ch);

/// Duplicates `count` channels (same endpoints, fresh ids/tags), so the
/// same process pairs can carry a second independent stream — e.g. one
/// bundle for requests and a copy for replies.  Configuration phase only.
/// The returned array is owned by the library for the run's lifetime.
PI_CHANNEL** PI_CopyChannels(PI_CHANNEL* const channels[], int count);

/// The i-th channel of a bundle.
PI_CHANNEL* PI_GetBundleChannel(PI_BUNDLE* b, int index);

/// Number of channels in a bundle.
int PI_GetBundleSize(PI_BUNDLE* b);

/// Ends the execution phase on PI_MAIN: waits for all processes (and SPE
/// threads), tears down services, returns `status`.
int PI_StopMain(int status);

/// Aggregated per-channel communication totals, collected since route
/// compilation (PI_StartAll) by the always-on trace counters.
typedef struct PI_CHANNEL_STATS {
  int channel;                       ///< channel id
  int route_type;                    ///< Table I type 1..5 (0 if unrouted)
  unsigned long long messages;       ///< completed writes
  unsigned long long payload_bytes;  ///< marshalled payload bytes written
  unsigned long long copilot_hops;   ///< Co-Pilot legs (relay/pair/deliver)
  unsigned long long retries;        ///< deadline extensions granted
  unsigned long long timeouts;       ///< requests completed PI_SPE_TIMEOUT
  /// Channel poisonings — unrecovered SPE deaths only.  A death absorbed
  /// by a supervised respawn (`-pirespawn`) is counted in `respawns`, not
  /// here: the channel kept flowing under a new writer epoch.
  unsigned long long faults;
  unsigned long long retransmits;    ///< reliable-layer frame retransmissions
  unsigned long long duplicates;     ///< duplicate frames window-suppressed
  unsigned long long corrupt_detected;  ///< CRC-caught damaged frames
  unsigned long long respawns;       ///< writer deaths absorbed by respawn
  unsigned long long recovered_ops;  ///< ops replayed/deduped across respawns
  unsigned long long checkpoints;    ///< committed coordinated cuts covering
                                     ///< this channel (-pickpt=)
  unsigned long long restores;       ///< blade restores that replayed this
                                     ///< channel from a checkpoint
} PI_CHANNEL_STATS;

/// Harvest-contract violation: a stats/metrics call was made before
/// PI_StartAll compiled the routes, so there is nothing to read yet.
/// (Distinct from 0 = success; null arguments still throw kUsage.)
#define PI_ERR_PHASE (-2)

/// Fills `out` with the channel's totals.  Rank-side, execution phase (or
/// later — PI_MAIN may harvest after PI_StopMain).  Returns 0 on success,
/// PI_ERR_PHASE when called before PI_StartAll.
int PI_GetChannelStats(PI_CHANNEL* ch, PI_CHANNEL_STATS* out);

/// One aggregated histogram read-out from the metrics layer
/// (`-pimetrics=FILE` / `CELLPILOT_METRICS`); all values in virtual ns.
typedef struct PI_METRIC_STAT {
  unsigned long long count;   ///< samples recorded
  unsigned long long sum_ns;  ///< exact sum of all samples
  long long min_ns;           ///< smallest sample (0 when empty)
  long long p50_ns;           ///< nearest-rank percentiles (log-bucketed,
  long long p90_ns;           ///< <= ~3% relative error, clamped into
  long long p99_ns;           ///< [min_ns, max_ns])
  long long max_ns;           ///< largest sample (0 when empty)
} PI_METRIC_STAT;

/// Per-route-type metrics snapshot.  Index 1..5 is the Table I route
/// type; index 0 aggregates all routed traffic.
typedef struct PI_METRICS_SNAPSHOT {
  PI_METRIC_STAT msg_latency[6];  ///< end-to-end write-begin -> read-end
  PI_METRIC_STAT read_block[6];   ///< PI_Read / spe_read blocking time
} PI_METRICS_SNAPSHOT;

/// Fills `out` from the live metrics registry.  Rank-side, execution
/// phase or later; same harvest contract as PI_GetChannelStats — totals
/// are only complete after PI_StopMain returns.  All zeros when the
/// metrics layer is disarmed.  Returns 0 on success, PI_ERR_PHASE when
/// called before PI_StartAll.
int PI_GetMetricsSnapshot(PI_METRICS_SNAPSHOT* out);

/// One aggregated read-out from the windowed telemetry layer
/// (`-pitelemetry=FILE` / `CELLPILOT_TELEMETRY`), rolled up across all
/// series and windows of one telemetry kind.
typedef struct PI_TELEMETRY_STAT {
  unsigned long long windows;  ///< populated (series, window) cells
  unsigned long long count;    ///< samples recorded across all windows
  long long sum;               ///< exact sum of all samples
  long long min;               ///< smallest sample (0 when empty)
  long long max;               ///< largest sample (0 when empty)
} PI_TELEMETRY_STAT;

/// Number of telemetry kinds; indexes into PI_TELEMETRY_SNAPSHOT::kinds in
/// the engine's canonical order: 0 mailbox_depth, 1 pending_ops,
/// 2 spe_pool_busy, 3 net_window, 4 net_stash, 5 journal_len,
/// 6 parked_ops, 7 service_busy, 8 delivered, 9 sent, 10 retransmits,
/// 11 respawns.
#define PI_TELEMETRY_KIND_COUNT 12

/// Whole-registry telemetry snapshot: one rollup per kind plus the
/// virtual-time window the series are bucketed to (-pitelemetryevery=US).
typedef struct PI_TELEMETRY_SNAPSHOT {
  long long window_ns;  ///< bucketing window in virtual ns
  PI_TELEMETRY_STAT kinds[PI_TELEMETRY_KIND_COUNT];
} PI_TELEMETRY_SNAPSHOT;

/// Fills `out` from the live telemetry registry.  Rank-side, execution
/// phase or later; same harvest contract as PI_GetMetricsSnapshot —
/// totals are only complete after PI_StopMain returns.  All zeros when
/// the telemetry layer is disarmed.  Returns 0 on success, PI_ERR_PHASE
/// when called before PI_StartAll.
int PI_GetTelemetrySnapshot(PI_TELEMETRY_SNAPSHOT* out);

/// Names a process/channel for diagnostics (optional, any phase).
void PI_SetName(PI_PROCESS* p, const char* name);
void PI_SetChannelName(PI_CHANNEL* ch, const char* name);

/// Total Pilot processes the job provides (same value PI_Configure
/// returned).
int PI_ProcessCount(void);

/// The process id (0 = PI_MAIN) of the calling process, valid in the
/// execution phase on rank- and SPE-side alike.
int PI_MyProcess(void);

/// Records a user event in the job's event log (visible with -pisvc=t);
/// callable from rank and SPE processes alike.
void PI_Log_(const char* file, int line, const char* message);
#define PI_Log(message) PI_Log_(__FILE__, __LINE__, message)

/// Aborts the whole job with a diagnostic carrying the calling source
/// location — the application-level counterpart of Pilot's own
/// abort-with-diagnostic error handling.
void PI_Abort_(const char* file, int line, int code, const char* message);
#define PI_Abort(code, message) PI_Abort_(__FILE__, __LINE__, code, message)
