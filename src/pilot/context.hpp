// context.hpp — per-rank execution context.
//
// Every rank thread of a Pilot application carries one PilotContext bound
// thread-locally while the application runs: which rank it is, which Pilot
// process it embodies, which phase the program is in, and its MiniMPI
// facade.  The PI_* API functions operate on the calling thread's context.
//
// SPE program threads are *not* bound to a PilotContext; they carry a
// smaller SPE-side context owned by the CellPilot layer, and the public API
// functions dispatch on cellsim::spu::bound().
#pragma once

#include <cstdint>

#include "mpisim/mpi.hpp"
#include "pilot/app.hpp"
#include "pilot/errors.hpp"

namespace pilot {

/// Program phase (the paper's two-phase model).
enum class Phase {
  kPreInit,    ///< before PI_Configure
  kConfig,     ///< between PI_Configure and PI_StartAll
  kExecution,  ///< between PI_StartAll and PI_StopMain
  kDone,       ///< after PI_StopMain
};

/// Per-rank state of a running Pilot application.
class PilotContext {
 public:
  PilotContext(PilotApp& app, mpisim::Mpi& mpi)
      : app_(&app), mpi_(&mpi) {}

  PilotApp& app() { return *app_; }
  mpisim::Mpi& mpi() { return *mpi_; }
  mpisim::Rank rank() const { return mpi_->rank(); }

  Phase phase = Phase::kPreInit;
  /// Pilot process id this rank embodies (0 for PI_MAIN); -1 when the rank
  /// has no associated process (surplus rank).
  int my_process = 0;
  /// Per-rank creation counters driving the shared get-or-create tables.
  int process_seq = 0;
  int channel_seq = 0;
  int bundle_seq = 0;
  /// Exit status passed to PI_StopMain.
  int exit_status = 0;

  /// Call-site captured by the PI_* macros for diagnostics.
  const char* call_file = nullptr;
  int call_line = 0;

 private:
  PilotApp* app_;
  mpisim::Mpi* mpi_;
};

/// Binds/unbinds the calling thread's context (runner use).
void bind_context(PilotContext* ctx);

/// The calling thread's context; throws PilotError(kUsage) when absent.
PilotContext& context();

/// True when the calling thread has a bound (rank) context.
bool has_context();

/// Thrown by PI_StartAll on non-main ranks after their process function
/// returns, to unwind out of the user's main; caught by the runner.
/// (The real library calls exit() there.)
struct ProcessExit {
  int status = 0;
};

/// Dispatch record for threads executing *SPE* programs: set thread-locally
/// by the CellPilot runtime so the PI_* API can route SPE-side calls
/// through the registered CellTransport.
struct SpeDispatch {
  PilotApp* app = nullptr;
  int process_id = -1;  ///< the SPE process this thread embodies
};

/// Binds/unbinds the SPE dispatch record for the calling thread.
void bind_spe_dispatch(SpeDispatch* d);

/// The calling thread's SPE dispatch record, or null.
SpeDispatch* spe_dispatch();

}  // namespace pilot
