// wire.hpp — argument marshalling and the channel wire format.
//
// A channel message travels as raw binary payload, preceded on MPI legs by a
// small fixed header carrying the resolved-format signature so the receiver
// can verify the contract (writer/reader format agreement) before touching
// user buffers.  On intra-Cell legs (type 4) the signature rides in the
// mailbox request words instead and payload moves header-less between local
// stores — matching the paper's "direct transfer" design.
//
// The varargs conventions follow Pilot (and C): a scalar item ("%d") is
// passed by value with the usual default promotions; an array item
// ("%100d", "%*d") is passed as a pointer, with '*' preceded by an int
// element count.
#pragma once

#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pilot/format.hpp"
#include "simtime/sim_time.hpp"

namespace pilot {

/// Header prepended to payloads on MPI legs.
struct WireHeader {
  std::uint32_t magic = 0;      ///< kWireMagic
  std::uint32_t signature = 0;  ///< signature(resolved writer format)
  std::uint32_t epoch = 0;      ///< writer incarnation (core/epoch.hpp)
  std::uint32_t reserved = 0;   ///< keeps payload_bytes 8-byte aligned
  std::uint64_t payload_bytes = 0;
};
static_assert(sizeof(WireHeader) == 24);

/// Magic value marking a Pilot channel message ("PILT").
inline constexpr std::uint32_t kWireMagic = 0x50494C54;

/// A writer's marshalled message.
struct MarshalResult {
  ResolvedFormat fmt;              ///< with '*' counts substituted
  std::vector<std::byte> payload;  ///< raw element bytes, item by item
};

/// Consumes `args` per `fmt` (scalars by value, arrays by pointer) and
/// packs the payload.  Throws PilotError(kFormat) on a non-positive '*'
/// count.
MarshalResult marshal_payload(const Format& fmt, va_list args);

/// Allocation-free variant for the compiled data plane: appends the packed
/// payload to `out` (which may already hold header space) and records the
/// resolved element count of every item in `counts` (cleared first; parallel
/// to fmt.items).  Reuses the buffers' capacity across calls.
void marshal_append(const Format& fmt, va_list args,
                    std::vector<std::byte>& out,
                    std::vector<std::uint32_t>& counts);

/// A reader's scatter plan: destination pointer per item.
struct ReadPlan {
  ResolvedFormat fmt;
  std::vector<void*> destinations;  ///< one per item
  std::size_t payload_bytes = 0;
};

/// Consumes `args` per `fmt` — for reads every item is a pointer ('*' items
/// preceded by an int count).  Throws PilotError(kFormat) on a bad count.
ReadPlan build_read_plan(const Format& fmt, va_list args);

/// Rebuilds `plan` in place (clearing it first), reusing its vectors'
/// capacity across calls — the compiled data plane's per-channel plan.
void build_read_plan_into(const Format& fmt, va_list args, ReadPlan& plan);

/// Copies `payload` into the plan's destinations.  The caller must have
/// verified payload.size() == plan.payload_bytes.
void scatter(const ReadPlan& plan, std::span<const std::byte> payload);

/// Builds header + payload as one contiguous buffer (MPI-leg message).
/// `epoch` is the writer's current incarnation on the channel (0 unless
/// the writer has been respawned by Co-Pilot supervision).
std::vector<std::byte> frame_message(std::uint32_t sig,
                                     std::span<const std::byte> payload,
                                     std::uint32_t epoch = 0);

/// Reads the epoch field of any PILT/PILF message (0 for short buffers, so
/// probing control traffic is safe).
std::uint32_t frame_epoch(std::span<const std::byte> message);

/// Validates an MPI-leg message against the reader's expectations and
/// returns a view of its payload.  `where` names the channel for
/// diagnostics.  Throws PilotError(kTypeMismatch) on signature or size
/// disagreement, PilotError(kInternal) on a corrupt frame.
std::span<const std::byte> check_frame(std::span<const std::byte> message,
                                       std::uint32_t expected_sig,
                                       std::size_t expected_bytes,
                                       const std::string& where);

/// Magic value marking a fault frame ("PILF"): a Co-Pilot telling a
/// channel peer that the writer-side SPE died instead of producing data.
inline constexpr std::uint32_t kWireFaultMagic = 0x50494C46;

/// Payload of a fault frame.  `status` is the Co-Pilot completion code
/// (kSpeFault / kSpeTimeout as std::uint32_t); `fault_code` is the
/// cellsim::FaultCode; `epoch` is the dying writer's incarnation (readers
/// discard fault frames older than the channel's current epoch — a
/// respawned writer supersedes its predecessor's death); `detail` is a
/// one-line human diagnostic.
struct FaultFrame {
  std::uint32_t status = 0;
  std::uint32_t fault_code = 0;
  std::uint32_t epoch = 0;
  std::string detail;
};

/// Builds a fault frame: a WireHeader with kWireFaultMagic, signature =
/// status, and a payload of [4-byte fault_code][detail bytes].  Travels on
/// the same (source, tag) a data frame would, so a parked reader wakes.
std::vector<std::byte> frame_fault(const FaultFrame& fault);

/// Whether a received message is a fault frame (checks the magic only; a
/// short buffer is not a fault frame).
bool is_fault_frame(std::span<const std::byte> message);

/// Parses a fault frame.  Throws PilotError(kInternal) if malformed.
FaultFrame parse_fault_frame(std::span<const std::byte> message);

/// Magic value marking a checkpoint marker frame ("PILS"): a Co-Pilot
/// propagating a Chandy-Lamport snapshot cut to its peer Co-Pilots.  The
/// same magic frames the sections of the checkpoint file itself
/// (core/checkpoint.hpp), so one tool recognises both.
inline constexpr std::uint32_t kWireMarkerMagic = 0x50494C53;

/// Payload of a checkpoint marker.  `cut` identifies the coordinated
/// snapshot (monotonic per job); `stamp` is the initiating Co-Pilot's
/// virtual clock when it opened the cut; `node` is the initiator's node
/// index (diagnostics only — every receiver joins the same cut id).
struct MarkerFrame {
  std::uint32_t cut = 0;
  simtime::SimTime stamp = 0;
  std::uint32_t node = 0;
};

/// Builds a marker frame: a WireHeader with kWireMarkerMagic, signature =
/// cut id, and a payload of [8-byte stamp][4-byte node].  Travels on a
/// channel's (source, tag) like a data frame, so it cuts that link's
/// message stream at a well-defined point.
std::vector<std::byte> frame_marker(const MarkerFrame& marker);

/// Whether a received message is a checkpoint marker (checks the magic
/// only; a short buffer is not a marker).
bool is_marker_frame(std::span<const std::byte> message);

/// Parses a marker frame.  Throws PilotError(kInternal) if malformed.
MarkerFrame parse_marker_frame(std::span<const std::byte> message);

}  // namespace pilot
