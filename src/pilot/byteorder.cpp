#include "pilot/byteorder.hpp"

#include <algorithm>

namespace pilot {

void swap_element_bytes(const ResolvedFormat& fmt,
                        std::span<std::byte> payload) {
  std::size_t off = 0;
  for (const FormatItem& item : fmt.items) {
    const std::size_t elem = element_size(item.type);
    for (std::uint32_t i = 0; i < item.count; ++i) {
      if (elem > 1) {
        std::reverse(payload.begin() + static_cast<std::ptrdiff_t>(off),
                     payload.begin() + static_cast<std::ptrdiff_t>(off + elem));
      }
      off += elem;
    }
  }
  if (off != payload.size()) {
    throw PilotError(ErrorCode::kInternal,
                     "byte-order conversion: payload length mismatch");
  }
}

void swap_element_bytes(const Format& fmt,
                        std::span<const std::uint32_t> counts,
                        std::span<std::byte> payload) {
  std::size_t off = 0;
  for (std::size_t i = 0; i < fmt.items.size(); ++i) {
    const std::size_t elem = element_size(fmt.items[i].type);
    for (std::uint32_t j = 0; j < counts[i]; ++j) {
      if (elem > 1) {
        std::reverse(payload.begin() + static_cast<std::ptrdiff_t>(off),
                     payload.begin() + static_cast<std::ptrdiff_t>(off + elem));
      }
      off += elem;
    }
  }
  if (off != payload.size()) {
    throw PilotError(ErrorCode::kInternal,
                     "byte-order conversion: payload length mismatch");
  }
}

}  // namespace pilot
