// errors.hpp — Pilot's error reporting.
//
// Pilot's selling point is catching parallel-programming mistakes early and
// loudly: writing on a channel from the wrong process, mismatched read/write
// formats, misuse of the API outside its phase.  The real library prints the
// offending source file and line and aborts the MPI job; here every violation
// throws PilotError carrying the same diagnostic, and the launcher converts
// an uncaught PilotError into a world abort — so tests can assert on the
// message while applications still die with a readable diagnostic.
#pragma once

#include <stdexcept>
#include <string>

namespace pilot {

/// Classification of Pilot errors (mirrors the real library's diagnostics).
enum class ErrorCode {
  kUsage,          ///< API called in the wrong phase / by the wrong process
  kFormat,         ///< malformed format string
  kTypeMismatch,   ///< writer and reader formats disagree
  kEndpoint,       ///< operation on a channel this process isn't bound to
  kCapacity,       ///< out of processes / SPEs / table space
  kBundle,         ///< bundle misuse (wrong usage kind, SPE endpoint, ...)
  kDeadlock,       ///< reported by the deadlock-detection service
  kInternal,       ///< invariant violation inside the library
  kAbort,          ///< the application called PI_Abort
  kSpeFault,       ///< an SPE endpoint died of a hardware fault
  kSpeTimeout,     ///< an SPE request missed its Co-Pilot deadline
  kCopilotFault,   ///< the serving Co-Pilot crashed mid-request
  kSpeRestarted,   ///< the peer SPE was respawned; this op was not replayable
};

/// Returns a stable name ("usage", "format", ...) for an ErrorCode.
const char* to_string(ErrorCode code);

/// A Pilot diagnostic.  The what() string has the canonical shape
/// "pilot error (<code>) at <file>:<line>: <detail>".
class PilotError : public std::runtime_error {
 public:
  PilotError(ErrorCode code, const std::string& detail,
             const char* file = nullptr, int line = 0);

  ErrorCode code() const { return code_; }
  const std::string& detail() const { return detail_; }

 private:
  ErrorCode code_;
  std::string detail_;
};

}  // namespace pilot
