#include "pilot/deadlock.hpp"

#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace pilot {

namespace {

mpisim::Rank service_rank(PilotContext& ctx) {
  auto svc = ctx.app().cluster().service_rank();
  return svc ? *svc : -1;
}

}  // namespace

void notify_block(PilotContext& ctx, int peer_process, int channel_id) {
  if (!ctx.app().options().deadlock_detection) return;
  const mpisim::Rank svc = service_rank(ctx);
  if (svc < 0) return;
  DeadlockEvent ev;
  ev.kind = DeadlockEvent::kBlock;
  ev.process = ctx.my_process;
  ev.peer = peer_process;
  ev.channel = channel_id;
  ev.peer_is_rank =
      ctx.app().process(peer_process).location == Location::kRank ? 1 : 0;
  ctx.mpi().send_internal(&ev, sizeof ev, svc, kTagDeadlockEvent);
}

void notify_unblock(PilotContext& ctx) {
  if (!ctx.app().options().deadlock_detection) return;
  const mpisim::Rank svc = service_rank(ctx);
  if (svc < 0) return;
  DeadlockEvent ev;
  ev.kind = DeadlockEvent::kUnblock;
  ev.process = ctx.my_process;
  ctx.mpi().send_internal(&ev, sizeof ev, svc, kTagDeadlockEvent);
}

void notify_finished(PilotContext& ctx) {
  if (!ctx.app().options().deadlock_detection) return;
  const mpisim::Rank svc = service_rank(ctx);
  if (svc < 0) return;
  DeadlockEvent ev;
  ev.kind = DeadlockEvent::kFinished;
  ev.process = ctx.my_process;
  ctx.mpi().send_internal(&ev, sizeof ev, svc, kTagDeadlockEvent);
}

void notify_init(PilotContext& ctx, int rank_process_count) {
  if (!ctx.app().options().deadlock_detection) return;
  const mpisim::Rank svc = service_rank(ctx);
  if (svc < 0) return;
  DeadlockEvent ev;
  ev.kind = DeadlockEvent::kInit;
  ev.process = rank_process_count;
  ctx.mpi().send_internal(&ev, sizeof ev, svc, kTagDeadlockEvent);
}

void notify_block_proxy(mpisim::Mpi& mpi, PilotApp& app, int spe_process,
                        int peer_process, int channel_id) {
  if (!app.options().deadlock_detection) return;
  const auto svc = app.cluster().service_rank();
  if (!svc) return;
  DeadlockEvent ev;
  ev.kind = DeadlockEvent::kBlock;
  ev.process = spe_process;
  ev.peer = peer_process;
  ev.channel = channel_id;
  ev.peer_is_rank =
      peer_process >= 0 &&
              app.process(peer_process).location == Location::kRank
          ? 1
          : 0;
  ev.process_is_rank = 0;
  mpi.send_internal(&ev, sizeof ev, *svc, kTagDeadlockEvent);
}

void notify_unblock_proxy(mpisim::Mpi& mpi, PilotApp& app, int spe_process) {
  if (!app.options().deadlock_detection) return;
  const auto svc = app.cluster().service_rank();
  if (!svc) return;
  DeadlockEvent ev;
  ev.kind = DeadlockEvent::kUnblock;
  ev.process = spe_process;
  mpi.send_internal(&ev, sizeof ev, *svc, kTagDeadlockEvent);
}

namespace {

/// The wait-for graph: process -> set of (peer, channel) it waits on.
class WaitForGraph {
 public:
  void block(int process, int peer, int channel, bool peer_is_rank,
             bool process_is_rank) {
    edges_[process].insert({peer, channel});
    if (!peer_is_rank) has_spe_peer_.insert(process);
    if (!process_is_rank) spe_process_.insert(process);
  }

  void unblock(int process) {
    edges_.erase(process);
    has_spe_peer_.erase(process);
    spe_process_.erase(process);
  }

  void finished(int process) { finished_.insert(process); }

  /// True when a wait can never be satisfied because the peer's work
  /// function has already returned.
  bool waits_on_finished(int process, int* peer_out) const {
    const auto it = edges_.find(process);
    if (it == edges_.end()) return false;
    for (const auto& [peer, channel] : it->second) {
      if (finished_.count(peer) != 0) {
        *peer_out = peer;
        return true;
      }
    }
    return false;
  }

  /// Scans every blocked process for a wait on a finished peer (needed when
  /// the finish event arrives after the block event).
  bool any_waits_on_finished(int* process_out, int* peer_out) const {
    for (const auto& [process, peers] : edges_) {
      if (waits_on_finished(process, peer_out)) {
        *process_out = process;
        return true;
      }
    }
    return false;
  }

  /// True when every registered (rank-backed) process is blocked or
  /// finished, every blocked one waits only on rank-backed peers, and at
  /// least one is blocked: no message can ever be produced again.  Proxy
  /// SPE entries are outside the init census, so they neither count
  /// toward the total nor (when healthy) veto the stall; but a rank
  /// process waiting on an SPE peer exempts itself — the SPE may still
  /// respond.
  bool global_stall(int total) const {
    if (total <= 0) return false;
    int rank_blocked = 0;
    for (const auto& [process, peers] : edges_) {
      if (spe_process_.count(process) != 0) continue;  // proxy entry
      if (has_spe_peer_.count(process) != 0) return false;
      ++rank_blocked;
    }
    if (rank_blocked == 0) return false;
    return rank_blocked + static_cast<int>(finished_.size()) >= total;
  }

  /// Returns a cycle through `start` as a process list (start .. start),
  /// or empty when none.  A process with several outgoing edges (select)
  /// is only deadlocked when *every* wait is cyclic; for simplicity —
  /// and matching Pilot's single-wait common case — we report a cycle if
  /// all of the blocked process's peers are themselves on cycles back to
  /// it; for single-edge waits this is exact.
  std::vector<int> find_cycle(int start) const {
    std::vector<int> path;
    std::set<int> on_path;
    if (dfs(start, start, path, on_path)) {
      path.push_back(start);
      return path;
    }
    return {};
  }

  const std::map<int, std::set<std::pair<int, int>>>& edges() const {
    return edges_;
  }

 private:
  bool dfs(int node, int target, std::vector<int>& path,
           std::set<int>& on_path) const {
    if (on_path.count(node) != 0) return false;
    const auto it = edges_.find(node);
    if (it == edges_.end()) return false;  // not blocked -> no cycle via it
    on_path.insert(node);
    path.push_back(node);
    for (const auto& [peer, channel] : it->second) {
      if (peer == target && node != target) return true;
      if (peer != node && dfs(peer, target, path, on_path)) return true;
    }
    path.pop_back();
    on_path.erase(node);
    return false;
  }

  std::map<int, std::set<std::pair<int, int>>> edges_;
  std::set<int> has_spe_peer_;
  std::set<int> spe_process_;  // blocked entries reported by proxy
  std::set<int> finished_;
};

std::string describe_cycle(const std::vector<int>& cycle) {
  std::string msg = "deadlock detected: circular wait among processes ";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) msg += " -> ";
    msg += "P" + std::to_string(cycle[i]);
  }
  return msg;
}

}  // namespace

int deadlock_service_main(mpisim::Mpi& mpi) {
  WaitForGraph graph;
  int total_processes = 0;

  auto apply = [&graph, &total_processes](const DeadlockEvent& ev) {
    if (ev.kind == DeadlockEvent::kBlock) {
      graph.block(ev.process, ev.peer, ev.channel, ev.peer_is_rank != 0,
                  ev.process_is_rank != 0);
    } else if (ev.kind == DeadlockEvent::kUnblock) {
      graph.unblock(ev.process);
    } else if (ev.kind == DeadlockEvent::kFinished) {
      graph.finished(ev.process);
    } else if (ev.kind == DeadlockEvent::kInit) {
      total_processes = ev.process;
    }
  };

  // Drains every queued event; returns false when a shutdown was seen.
  bool shutdown_seen = false;
  auto drain = [&]() -> bool {
    while (mpi.iprobe(mpisim::kAnySource, kTagDeadlockEvent)) {
      DeadlockEvent ev;
      mpi.recv_internal(&ev, sizeof ev, mpisim::kAnySource,
                        kTagDeadlockEvent);
      if (ev.kind == DeadlockEvent::kShutdown) {
        shutdown_seen = true;
        return false;
      }
      apply(ev);
    }
    return true;
  };

  for (;;) {
    DeadlockEvent ev;
    mpi.recv_internal(&ev, sizeof ev, mpisim::kAnySource, kTagDeadlockEvent);
    if (ev.kind == DeadlockEvent::kShutdown) return 0;
    apply(ev);
    // Both a new block and a process finishing can complete a deadlock
    // condition; everything else only relaxes the graph.
    if (ev.kind != DeadlockEvent::kBlock &&
        ev.kind != DeadlockEvent::kFinished) {
      continue;
    }

    // Three independent conditions, from cheapest to broadest, each
    // confirmed with a drain-and-recheck loop so in-flight unblock events
    // cannot produce false alarms.
    auto confirmed = [&](auto&& still_true) -> bool {
      for (int round = 0; round < 5; ++round) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        if (!drain()) return false;  // shutdown
        if (!still_true()) return false;
      }
      return true;
    };

    int dead_proc = -1;
    int dead_peer = -1;
    if (shutdown_seen) return 0;
    if (graph.any_waits_on_finished(&dead_proc, &dead_peer) &&
        confirmed([&] {
          return graph.any_waits_on_finished(&dead_proc, &dead_peer);
        })) {
      mpi.world().abort("deadlock detected: P" + std::to_string(dead_proc) +
                        " waits on P" + std::to_string(dead_peer) +
                        ", which has already finished");
      return 1;
    }

    if (shutdown_seen) return 0;
    std::vector<int> cycle;
    if (ev.kind == DeadlockEvent::kBlock) {
      cycle = graph.find_cycle(ev.process);
    }
    if (!cycle.empty() && confirmed([&] {
          cycle = graph.find_cycle(ev.process);
          return !cycle.empty();
        })) {
      mpi.world().abort(describe_cycle(cycle));
      return 1;
    }

    if (shutdown_seen) return 0;
    if (graph.global_stall(total_processes) &&
        confirmed([&] { return graph.global_stall(total_processes); })) {
      mpi.world().abort(
          "deadlock detected: global stall — all " +
          std::to_string(total_processes) +
          " processes are blocked or finished and no message can arrive");
      return 1;
    }
    if (shutdown_seen) return 0;
  }
}

}  // namespace pilot
