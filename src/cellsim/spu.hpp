// spu.hpp — SPU-side "intrinsics".
//
// Code written for the SPE (PI_SPE_PROGRAM bodies and the hand-coded
// baselines) talks to its own hardware via these free functions, mirroring
// the SDK's spu_mfcio.h channel intrinsics: spu_read_in_mbox,
// spu_write_out_mbox, mfc_get/mfc_put, mfc_write_tag_mask,
// mfc_read_tag_status_all, ...
//
// The binding from the executing host thread to the simulated SPE is a
// thread_local set by the libspe2 shim while spe_context_run is active;
// calling an intrinsic on a thread that is not running an SPE program
// raises ContextFault (the analogue of executing SPU channel instructions
// on the PPE).
#pragma once

#include <cstdint>

#include "cellsim/mfc.hpp"
#include "cellsim/spe.hpp"
#include "simtime/cost_model.hpp"

namespace cellsim::spu {

/// The thread's SPU execution environment while an SPE program runs.
struct SpuEnv {
  Spe* spe = nullptr;
  const simtime::CostModel* cost = nullptr;
  std::uint64_t speid = 0;
};

/// Binds/unbinds the calling thread to an SPE.  Used by the libspe2 shim;
/// tests may bind directly.  Passing an empty env unbinds.
void bind(const SpuEnv& env);
void unbind();

/// The calling thread's environment; throws ContextFault when unbound.
const SpuEnv& env();

/// True when the calling thread is running as an SPE.
bool bound();

/// The SPE this thread executes on; throws ContextFault when unbound.
Spe& self();

// --- Mailbox channel ops (stall semantics as on hardware) -------------------

/// Reads the next word of the inbound mailbox, stalling while empty.
std::uint32_t spu_read_in_mbox();

/// Writes a word to the outbound mailbox, stalling while full.
void spu_write_out_mbox(std::uint32_t value);

/// Writes a word to the interrupting outbound mailbox, stalling while full.
void spu_write_out_intr_mbox(std::uint32_t value);

/// Number of words waiting in the inbound mailbox.
unsigned spu_stat_in_mbox();

// --- Signal notification -----------------------------------------------------

/// Reads signal register 1 or 2 (index 0/1), stalling until non-zero.
std::uint32_t spu_read_signal(unsigned index);

// --- MFC (DMA) ops -----------------------------------------------------------

/// DMA get: main/effective memory -> local store.
void mfc_get(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
             unsigned tag);

/// DMA put: local store -> main/effective memory.
void mfc_put(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
             unsigned tag);

/// Arbitrary-size helpers (chunked into legal commands).
void mfc_get_any(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
                 unsigned tag);
void mfc_put_any(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
                 unsigned tag);

/// Sets the tag mask for subsequent status reads.
void mfc_write_tag_mask(std::uint32_t mask);

/// Stalls until all commands in masked tag groups complete.
std::uint32_t mfc_read_tag_status_all();

// --- Local store access ------------------------------------------------------

/// Host pointer to `addr` in this SPE's local store (bounds-checked).
void* ls_ptr(LsAddr addr, std::size_t len);

/// Allocates `len` bytes in this SPE's local store (quad-word aligned).
LsAddr ls_alloc(std::size_t len, std::size_t align = 16);

/// Frees a block from ls_alloc.
void ls_free(LsAddr addr);

}  // namespace cellsim::spu
