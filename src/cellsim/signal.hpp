// signal.hpp — SPE signal-notification registers.
//
// Each SPE has two 32-bit signal-notification registers (SigNotify1/2).
// Writers (the PPE, other SPEs via the MFC sndsig command) deposit a value;
// in logical-OR mode concurrent writes accumulate, in overwrite mode the
// last write wins.  The SPU reads its register with a channel instruction
// that *stalls until the register is non-zero* and clears it on read.
// Hand-coded SPE-to-SPE baselines use these for completion handshakes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "simtime/sim_time.hpp"

namespace cellsim {

/// One signal-notification register.
class SignalRegister {
 public:
  /// In OR mode, writes accumulate with bitwise OR; otherwise they overwrite.
  explicit SignalRegister(bool or_mode = true) : or_mode_(or_mode) {}

  SignalRegister(const SignalRegister&) = delete;
  SignalRegister& operator=(const SignalRegister&) = delete;

  /// Deposits `bits` with the sender's virtual timestamp.
  void send(std::uint32_t bits, simtime::SimTime stamp);

  /// SPU-side blocking read: stalls until non-zero, clears the register,
  /// and returns the accumulated value plus the latest depositor stamp.
  struct Received {
    std::uint32_t bits;
    simtime::SimTime stamp;
  };
  Received read_blocking();

  /// Non-destructive snapshot of the pending bits (0 if none).
  std::uint32_t peek() const;

 private:
  const bool or_mode_;
  mutable std::mutex mu_;
  std::condition_variable nonzero_;
  std::uint32_t bits_ = 0;
  simtime::SimTime stamp_ = simtime::kSimTimeZero;
};

}  // namespace cellsim
