// mailbox.hpp — SPE mailbox FIFOs.
//
// Each SPE has three mailbox channels, with the hardware depths:
//   * inbound  (PPE -> SPE), 4 entries deep,
//   * outbound (SPE -> PPE), 1 entry deep,
//   * outbound-interrupt (SPE -> PPE, raises an interrupt), 1 entry deep.
// Entries are 32-bit words.  An SPU write to a full outbound mailbox and an
// SPU read from an empty inbound mailbox *stall the SPU* — modelled here as
// blocking on a condition variable.  The PPE side traditionally polls.
//
// Virtual time: every entry carries the sender's virtual timestamp at
// completion of the send; the receiver joins its clock with that stamp.  The
// per-operation CPU costs (cheap channel ops on the SPU, slow MMIO on the
// PPE) are charged by the caller from the CostModel, keeping the hardware
// model purely functional.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "cellsim/errors.hpp"
#include "simtime/sim_time.hpp"

namespace cellsim {

/// One 32-bit mailbox entry plus the virtual time it was deposited.
struct MailboxEntry {
  std::uint32_t value = 0;
  simtime::SimTime stamp = simtime::kSimTimeZero;
};

/// A bounded FIFO of 32-bit words with blocking and polling interfaces.
class Mailbox {
 public:
  /// Creates a mailbox holding at most `capacity` entries (>= 1).
  explicit Mailbox(std::size_t capacity);

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Maximum number of entries.
  std::size_t capacity() const { return capacity_; }

  /// Current number of entries (racy snapshot, as on hardware).
  std::size_t count() const;

  /// Number of free slots (hardware "status" register read).
  std::size_t free_slots() const;

  /// Blocking write: waits while full, then deposits.  Models the SPU
  /// stalling on a full outbound channel.  Throws MailboxFault if the
  /// mailbox is closed while waiting.
  void push_blocking(std::uint32_t value, simtime::SimTime stamp);

  /// Non-blocking write: returns false when full (PPE-style write of the
  /// inbound mailbox with SPE_MBOX_ANY_NONBLOCKING behaviour).
  bool try_push(std::uint32_t value, simtime::SimTime stamp);

  /// Blocking read: waits while empty (SPU stalling on an empty inbound
  /// channel).  Throws MailboxFault if closed while waiting.
  MailboxEntry pop_blocking();

  /// Non-blocking read: empty optional when no entry (PPE polling).
  std::optional<MailboxEntry> try_pop();

  /// Wakes all blocked parties with MailboxFault; further ops fault too.
  /// Used for simulated-node teardown; real hardware has no equivalent.
  void close();

  /// True while a reader is asleep in pop_blocking with an empty FIFO.
  /// Together with earliest_stamp(), this lets a conservative scheduler
  /// (the Co-Pilot) decide whether the SPU behind this mailbox can still
  /// produce an early-stamped event: asleep-and-empty means it can only be
  /// woken by a future deposit.
  bool reader_waiting() const {
    return reader_waiting_.load(std::memory_order_acquire);
  }

  /// Virtual stamp of the oldest queued entry, if any.
  std::optional<simtime::SimTime> earliest_stamp() const;

  /// Whether close() has been called.
  bool closed() const;

 private:
  const std::size_t capacity_;
  std::atomic<bool> reader_waiting_{false};
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<MailboxEntry> fifo_;
  bool closed_ = false;
};

}  // namespace cellsim
