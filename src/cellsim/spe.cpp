#include "cellsim/spe.hpp"

namespace cellsim {

Spe::Spe(unsigned physical_id, std::string name,
         const simtime::CostModel& cost)
    : physical_id_(physical_id),
      cost_(&cost),
      name_(std::move(name)),
      mfc_(ls_, clock_, cost, name_),
      inbound_(kInboundMailboxDepth),
      outbound_(kOutboundMailboxDepth),
      outbound_intr_(kOutboundInterruptMailboxDepth) {}

SignalRegister& Spe::signal(unsigned index) {
  if (index > 1) {
    throw HardwareFault("SPE has signal registers 0 and 1 only");
  }
  return signals_[index];
}

void Spe::raise_fault(FaultCode code, simtime::SimTime stamp,
                      std::string detail) {
  if (fault_raised_.load(std::memory_order_acquire)) {
    return;  // first death wins; an SPE dies once
  }
  notice_.code = code;
  notice_.stamp = stamp;
  notice_.detail = std::move(detail);
  fault_raised_.store(true, std::memory_order_release);
}

const Spe::FaultNotice* Spe::fault_notice() const {
  return fault_raised_.load(std::memory_order_acquire) ? &notice_ : nullptr;
}

void Spe::shutdown() {
  inbound_.close();
  outbound_.close();
  outbound_intr_.close();
}

}  // namespace cellsim
