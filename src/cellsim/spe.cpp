#include "cellsim/spe.hpp"

namespace cellsim {

Spe::Spe(unsigned physical_id, std::string name,
         const simtime::CostModel& cost)
    : physical_id_(physical_id),
      cost_(&cost),
      name_(std::move(name)),
      mfc_(ls_, clock_, cost, name_),
      inbound_(kInboundMailboxDepth),
      outbound_(kOutboundMailboxDepth),
      outbound_intr_(kOutboundInterruptMailboxDepth) {}

SignalRegister& Spe::signal(unsigned index) {
  if (index > 1) {
    throw HardwareFault("SPE has signal registers 0 and 1 only");
  }
  return signals_[index];
}

void Spe::shutdown() {
  inbound_.close();
  outbound_.close();
  outbound_intr_.close();
}

}  // namespace cellsim
