#include "cellsim/eib.hpp"

namespace cellsim {

void Eib::record(std::string src, std::string dst, std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  log_.push_back(Transfer{std::move(src), std::move(dst), bytes});
  bytes_ += bytes;
}

std::uint64_t Eib::total_bytes() const {
  std::lock_guard lock(mu_);
  return bytes_;
}

std::uint64_t Eib::transfer_count() const {
  std::lock_guard lock(mu_);
  return log_.size();
}

std::vector<Eib::Transfer> Eib::transfers() const {
  std::lock_guard lock(mu_);
  return log_;
}

}  // namespace cellsim
