// spe.hpp — one Synergistic Processor Element.
//
// An Spe bundles the per-SPE hardware: the 256 KB local store with its
// allocator, the MFC (DMA engine), the three mailbox channels, the two
// signal-notification registers, and the SPE's virtual clock.  The PPE sees
// the local store memory-mapped into the effective-address space; the
// simulation exposes that mapping as `ls_effective_base()`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cellsim/errors.hpp"
#include "cellsim/local_store.hpp"
#include "cellsim/mailbox.hpp"
#include "cellsim/mfc.hpp"
#include "cellsim/signal.hpp"
#include "simtime/cost_model.hpp"
#include "simtime/virtual_clock.hpp"

namespace cellsim {

/// Hardware mailbox depths.
inline constexpr std::size_t kInboundMailboxDepth = 4;
inline constexpr std::size_t kOutboundMailboxDepth = 1;
inline constexpr std::size_t kOutboundInterruptMailboxDepth = 1;

/// One SPE and its private hardware.
class Spe {
 public:
  /// `name` is used in traces/diagnostics, e.g. "node0.spe3".
  Spe(unsigned physical_id, std::string name, const simtime::CostModel& cost);

  Spe(const Spe&) = delete;
  Spe& operator=(const Spe&) = delete;

  /// Physical SPE index within its Cell chip (0..7) or blade (0..15).
  unsigned physical_id() const { return physical_id_; }

  /// The cost model this SPE's primitives are charged against.
  const simtime::CostModel& cost() const { return *cost_; }

  /// Diagnostic name.
  const std::string& name() const { return name_; }

  /// The 256 KB local store.
  LocalStore& local_store() { return ls_; }
  const LocalStore& local_store() const { return ls_; }

  /// The linker/runtime allocator over the local store.
  LsAllocator& allocator() { return alloc_; }

  /// The DMA engine.
  Mfc& mfc() { return mfc_; }

  /// PPE -> SPE mailbox (depth 4).
  Mailbox& inbound_mailbox() { return inbound_; }

  /// SPE -> PPE mailbox (depth 1).
  Mailbox& outbound_mailbox() { return outbound_; }

  /// SPE -> PPE interrupting mailbox (depth 1).
  Mailbox& outbound_interrupt_mailbox() { return outbound_intr_; }

  /// Signal-notification registers 1 and 2 (index 0 or 1).
  SignalRegister& signal(unsigned index);

  /// This SPE's virtual clock.
  simtime::VirtualClock& clock() { return clock_; }
  const simtime::VirtualClock& clock() const { return clock_; }

  /// Effective address at which the local store is memory-mapped (the
  /// simulated analogue of the problem-state LS window).
  EffectiveAddress ls_effective_base() const { return ea_of(ls_.base()); }

  /// Translates a local-store address to its effective address, bounds-
  /// checked for `len` bytes.  This is the translation the Co-Pilot performs.
  EffectiveAddress ls_to_ea(LsAddr addr, std::size_t len) const {
    return ea_of(ls_.at(addr, len));
  }

  /// Whether an SPE program is currently loaded/running (libspe2 shim state).
  std::atomic<bool>& busy() { return busy_; }

  /// Posthumous record of a fault that killed the SPE program.
  struct FaultNotice {
    FaultCode code = FaultCode::kGeneric;
    simtime::SimTime stamp = 0;  ///< SPE clock at the moment of death
    std::string detail;          ///< the fault's what() text
  };

  /// Records that the program running on this SPE died of `code` at virtual
  /// time `stamp` (called once, from the dying SPE thread).  The Co-Pilot
  /// polls fault_notice() and converts the death into Pilot-level errors.
  void raise_fault(FaultCode code, simtime::SimTime stamp, std::string detail);

  /// The death notice, or nullptr while the SPE is healthy.  The returned
  /// record is immutable once visible (release/acquire on the flag).
  const FaultNotice* fault_notice() const;

  /// Closes the mailboxes, releasing any blocked parties (node teardown).
  void shutdown();

 private:
  unsigned physical_id_;
  const simtime::CostModel* cost_;
  std::string name_;
  LocalStore ls_;
  LsAllocator alloc_;
  simtime::VirtualClock clock_;
  Mfc mfc_;
  Mailbox inbound_;
  Mailbox outbound_;
  Mailbox outbound_intr_;
  SignalRegister signals_[2];
  std::atomic<bool> busy_{false};
  FaultNotice notice_;
  std::atomic<bool> fault_raised_{false};
};

}  // namespace cellsim
