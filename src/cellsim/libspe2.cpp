#include "cellsim/libspe2.hpp"

#include "cellsim/errors.hpp"
#include "cellsim/spu.hpp"
#include "simtime/trace.hpp"

namespace cellsim::spe2 {

SpeContext::SpeContext(Spe& spe) : spe_(spe) {
  bool expected = false;
  if (!spe_.busy().compare_exchange_strong(expected, true)) {
    throw ContextFault("SPE " + spe_.name() +
                       " already has a context bound");
  }
}

SpeContext::~SpeContext() { spe_.busy().store(false); }

int SpeContext::run(const spe_program_handle_t& program, std::uint64_t argp,
                    std::uint64_t envp, spe_stop_info_t* stop_info) {
  if (program.entry == nullptr) {
    throw ContextFault("spe_context_run: program has no entry point");
  }
  if (spu::bound()) {
    throw ContextFault(
        "spe_context_run called from a thread already running an SPE program");
  }

  // "Load the image": the load overwrites whatever was resident, then text
  // and stack are charged against the local store, as the real loader does
  // when copying the embedded executable into the LS.
  LsAllocator& alloc = spe_.allocator();
  alloc.reset();
  const LsAddr text = alloc.reserve_segment(
      std::string("text:") + (program.name ? program.name : "?"),
      program.text_bytes == 0 ? 1024 : program.text_bytes);
  const LsAddr stack =
      alloc.reserve_segment("stack", kDefaultSpeStackBytes, 16);
  (void)text;
  (void)stack;

  const simtime::SimTime begin = spe_.clock().now();
  spu::bind(spu::SpuEnv{&spe_, &spe_.cost(), spe_.physical_id()});
  int code = 0;
  try {
    code = program.entry(spe_.physical_id(), argp, envp);
  } catch (...) {
    spu::unbind();
    throw;
  }
  spu::unbind();
  simtime::Trace::global().record(
      spe_.name(), simtime::TraceKind::kSpeLaunch,
      std::string("run ") + (program.name ? program.name : "?"), begin,
      spe_.clock().now());
  if (stop_info != nullptr) stop_info->exit_code = code;
  ran_ = true;
  return code;
}

SpeContext* spe_context_create(Spe& spe) { return new SpeContext(spe); }

int spe_context_run(SpeContext* ctx, const spe_program_handle_t* program,
                    std::uint64_t argp, std::uint64_t envp,
                    spe_stop_info_t* stop_info) {
  if (ctx == nullptr || program == nullptr) {
    throw ContextFault("spe_context_run: null context or program");
  }
  return ctx->run(*program, argp, envp, stop_info);
}

void spe_context_destroy(SpeContext* ctx) { delete ctx; }

int spe_in_mbox_write(SpeContext* ctx, const std::uint32_t* data, int count,
                      simtime::SimTime stamp) {
  if (ctx == nullptr) throw ContextFault("spe_in_mbox_write: null context");
  for (int i = 0; i < count; ++i) {
    ctx->spe().inbound_mailbox().push_blocking(data[i], stamp);
  }
  return count;
}

int spe_out_mbox_read(SpeContext* ctx, std::uint32_t* data, int count,
                      simtime::SimTime* latest_stamp) {
  if (ctx == nullptr) throw ContextFault("spe_out_mbox_read: null context");
  int n = 0;
  while (n < count) {
    auto entry = ctx->spe().outbound_mailbox().try_pop();
    if (!entry) break;
    data[n++] = entry->value;
    if (latest_stamp != nullptr) *latest_stamp = entry->stamp;
  }
  return n;
}

int spe_out_mbox_status(SpeContext* ctx) {
  if (ctx == nullptr) throw ContextFault("spe_out_mbox_status: null context");
  return static_cast<int>(ctx->spe().outbound_mailbox().count());
}

void* spe_ls_area_get(SpeContext* ctx) {
  if (ctx == nullptr) throw ContextFault("spe_ls_area_get: null context");
  return ctx->ls_area();
}

}  // namespace cellsim::spe2
