// libspe2.hpp — a shim with the shape of IBM's SPE Runtime Management
// Library (libspe2), implemented against the simulated hardware.
//
// On the real SDK an SPE executable is embedded by a special linker into the
// PPE binary as initialized static data and referenced through an
// `spe_program_handle_t`; the PPE creates a context, loads the image, and
// calls spe_context_run() on a POSIX thread, which blocks until the SPE
// program stops.  CellPilot calls exactly this layer.  Here a "program" is a
// C++ function plus a declared text size that is charged against the 256 KB
// local store by the loader, and "running" executes the function on the
// calling host thread with the SPU-side intrinsics (spu.hpp) bound to the
// target SPE.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cellsim/spe.hpp"

namespace cellsim::spe2 {

/// Entry point signature of a simulated SPE program: (speid, argp, envp),
/// matching the real SPE main().  Hardware access goes through the
/// thread-bound SPU intrinsics in spu.hpp.
using SpeEntry = int (*)(std::uint64_t speid, std::uint64_t argp,
                         std::uint64_t envp);

/// Handle to an "embedded SPE executable".  Declare these at namespace scope
/// exactly as SDK code declares `extern spe_program_handle_t foo;`.
struct spe_program_handle_t {
  const char* name;        ///< diagnostic name of the SPE image
  SpeEntry entry;          ///< the program's main
  std::size_t text_bytes;  ///< image size charged against local store
};

/// Default stack reservation for an SPE program (the real stack lives at the
/// top of local store; 8 KB is a conservative model of the ABI default).
inline constexpr std::size_t kDefaultSpeStackBytes = 8 * 1024;

/// Stop information reported by spe_context_run (simplified).
struct spe_stop_info_t {
  int exit_code = 0;
};

/// An SPE context: the handle through which the PPE manages one SPE.
/// Create with spe_context_create, run (blocking) with spe_context_run,
/// destroy with spe_context_destroy — or just use the RAII type directly.
class SpeContext {
 public:
  /// Binds a context to a physical SPE.  Throws ContextFault if the SPE
  /// already has a context bound (one context per SPE in this model).
  explicit SpeContext(Spe& spe);
  ~SpeContext();

  SpeContext(const SpeContext&) = delete;
  SpeContext& operator=(const SpeContext&) = delete;

  /// Loads `program` (reserving text+stack in the local store) and runs it
  /// to completion on the calling thread.  `argp`/`envp` are forwarded to
  /// the program entry, as with the real spe_context_run.  Returns the
  /// program's exit code and fills `stop_info` when non-null.
  int run(const spe_program_handle_t& program, std::uint64_t argp,
          std::uint64_t envp, spe_stop_info_t* stop_info = nullptr);

  /// The underlying simulated SPE.
  Spe& spe() { return spe_; }

  /// Host pointer to the memory-mapped local store (spe_ls_area_get).
  void* ls_area() { return spe_.local_store().base(); }

 private:
  Spe& spe_;
  bool ran_ = false;
};

// --- C-flavoured wrappers (what SDK-style example code calls) --------------

/// Creates a context bound to `spe` (caller owns; destroy with
/// spe_context_destroy).
SpeContext* spe_context_create(Spe& spe);

/// Runs `program` on the context's SPE; blocks the calling thread.
int spe_context_run(SpeContext* ctx, const spe_program_handle_t* program,
                    std::uint64_t argp, std::uint64_t envp,
                    spe_stop_info_t* stop_info = nullptr);

/// Destroys a context created with spe_context_create.
void spe_context_destroy(SpeContext* ctx);

/// PPE-side write into the SPE's inbound mailbox.  Blocking behaviour per
/// the SDK's SPE_MBOX_ALL_BLOCKING: waits for space.  `stamp` is the
/// sender's virtual time; returns the number of words written (= count).
int spe_in_mbox_write(SpeContext* ctx, const std::uint32_t* data, int count,
                      simtime::SimTime stamp);

/// PPE-side non-blocking read of the SPE's outbound mailbox; returns the
/// number of words read (0 or up to count).
int spe_out_mbox_read(SpeContext* ctx, std::uint32_t* data, int count,
                      simtime::SimTime* latest_stamp = nullptr);

/// Number of words waiting in the SPE's outbound mailbox.
int spe_out_mbox_status(SpeContext* ctx);

/// Host pointer to the mapped local store (spe_ls_area_get).
void* spe_ls_area_get(SpeContext* ctx);

}  // namespace cellsim::spe2
