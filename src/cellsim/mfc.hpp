// mfc.hpp — the Memory Flow Controller: each SPE's DMA engine.
//
// The MFC moves data between the SPE's local store and the effective-address
// space (main memory, or another SPE's memory-mapped local store).  Commands
// are tagged (tag groups 0..31); the SPU later stalls on a tag-mask status
// read to await completion.  The MFC enforces the rules that dominate Cell
// programming folklore:
//   * a single command moves 1, 2, 4, 8 or 16 bytes, or a multiple of 16
//     bytes up to 16 KB;
//   * for the small sizes, source and destination must be naturally aligned;
//     for multiples of 16, both must be 16-byte aligned and share the same
//     offset within a quadword (here: both 16-byte aligned);
//   * tags must be in [0, 31].
// Violations raise DmaFault, the simulator's "bus error".
//
// In the simulation data moves immediately (memcpy at issue) but *completes*
// in virtual time at issue_stamp + CostModel::dma_transfer(bytes); the tag
// status read joins the caller's clock with the completion stamp, modelling
// the SPU stalling for its DMA.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "cellsim/errors.hpp"
#include "cellsim/local_store.hpp"
#include "simtime/cost_model.hpp"
#include "simtime/sim_time.hpp"
#include "simtime/virtual_clock.hpp"

namespace cellsim {

/// An address in the effective-address space.  The simulation uses host
/// pointers as effective addresses; local stores are "mapped" by exposing
/// their host base pointer (see LocalStore::base / Spe::ls_effective_base).
using EffectiveAddress = std::uint64_t;

/// Effective address of a host object.
inline EffectiveAddress ea_of(const void* p) {
  return reinterpret_cast<EffectiveAddress>(p);
}

/// Host pointer for an effective address.
inline void* ptr_of(EffectiveAddress ea) {
  return reinterpret_cast<void*>(static_cast<std::uintptr_t>(ea));
}

/// Maximum bytes one MFC command may move.
inline constexpr std::size_t kMfcMaxTransfer = 16 * 1024;

/// Number of DMA tag groups.
inline constexpr unsigned kMfcTagCount = 32;

/// One element of a DMA list command (mfc_getl / mfc_putl).
struct MfcListElement {
  EffectiveAddress ea;  ///< effective address of this element
  std::uint32_t size;   ///< bytes; same size rules as single commands
};

/// The DMA engine of one SPE.
class Mfc {
 public:
  /// The MFC serves `ls` and charges/stamps time on `clock` using `cost`.
  Mfc(LocalStore& ls, simtime::VirtualClock& clock,
      const simtime::CostModel& cost, std::string owner_name);

  Mfc(const Mfc&) = delete;
  Mfc& operator=(const Mfc&) = delete;

  /// DMA get: effective address -> local store.  Validates size/alignment/
  /// tag; data is visible in the local store on return, completion is at
  /// issue + dma cost in virtual time.
  void get(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
           unsigned tag);

  /// DMA put: local store -> effective address.
  void put(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
           unsigned tag);

  /// DMA list get: gathers each element (own EA) into consecutive local
  /// store starting at `ls_addr`.
  void get_list(LsAddr ls_addr, const std::vector<MfcListElement>& list,
                unsigned tag);

  /// DMA list put: scatters consecutive local store to each element's EA.
  void put_list(LsAddr ls_addr, const std::vector<MfcListElement>& list,
                unsigned tag);

  /// Convenience for arbitrary sizes: splits into maximal legal commands.
  /// Requires 16-byte alignment of both addresses when size >= 16.
  void get_any(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
               unsigned tag);
  void put_any(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
               unsigned tag);

  /// Sets the tag mask used by the status reads (mfc_write_tag_mask).
  void write_tag_mask(std::uint32_t mask);

  /// Stalls (joins the owner clock) until *all* commands in masked tag
  /// groups have completed; returns the mask of masked tags that had
  /// outstanding commands (mfc_read_tag_status_all).
  std::uint32_t read_tag_status_all();

  /// Returns immediately with the mask of masked tags whose commands have
  /// all completed *by the current virtual time* (mfc_read_tag_status_
  /// immediate).
  std::uint32_t read_tag_status_immediate();

  /// Number of commands issued so far (per-engine statistics).
  std::uint64_t commands_issued() const;

  /// Total bytes moved so far.
  std::uint64_t bytes_moved() const;

 private:
  enum class Dir { kGet, kPut };

  void transfer(Dir dir, LsAddr ls_addr, EffectiveAddress ea,
                std::size_t size, unsigned tag, bool list_element);
  static void validate_size_alignment(LsAddr ls_addr, EffectiveAddress ea,
                                      std::size_t size);

  LocalStore& ls_;
  simtime::VirtualClock& clock_;
  const simtime::CostModel& cost_;
  std::string owner_;

  mutable std::mutex mu_;
  std::array<simtime::SimTime, kMfcTagCount> tag_completion_{};
  std::array<bool, kMfcTagCount> tag_used_{};
  std::uint32_t tag_mask_ = 0;
  std::uint64_t commands_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace cellsim
