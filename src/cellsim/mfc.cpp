#include "cellsim/mfc.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "cellsim/inject.hpp"
#include "simtime/trace.hpp"
#include "simtime/tracebuf.hpp"

namespace cellsim {

Mfc::Mfc(LocalStore& ls, simtime::VirtualClock& clock,
         const simtime::CostModel& cost, std::string owner_name)
    : ls_(ls), clock_(clock), cost_(cost), owner_(std::move(owner_name)) {}

void Mfc::validate_size_alignment(LsAddr ls_addr, EffectiveAddress ea,
                                  std::size_t size) {
  const bool small = size == 1 || size == 2 || size == 4 || size == 8;
  const bool quad_multiple = size >= 16 && size % 16 == 0;
  if (!small && !quad_multiple) {
    throw DmaFault("MFC transfer size " + std::to_string(size) +
                   " is not 1/2/4/8/16 or a multiple of 16");
  }
  if (size > kMfcMaxTransfer) {
    throw DmaFault("MFC transfer size " + std::to_string(size) +
                   " exceeds the 16 KB per-command limit");
  }
  const std::size_t align = small ? size : 16;
  if (ls_addr % align != 0) {
    throw DmaFault("MFC local-store address " + std::to_string(ls_addr) +
                   " not aligned to " + std::to_string(align));
  }
  if (ea % align != 0) {
    throw DmaFault("MFC effective address not aligned to " +
                   std::to_string(align));
  }
}

void Mfc::transfer(Dir dir, LsAddr ls_addr, EffectiveAddress ea,
                   std::size_t size, unsigned tag, bool list_element) {
  if (tag >= kMfcTagCount) {
    throw DmaFault("MFC tag " + std::to_string(tag) + " out of range [0,31]");
  }
  validate_size_alignment(ls_addr, ea, size);

  const inject::Action act =
      inject::probe(inject::Site::kDma, owner_.c_str(), clock_.now());
  if (act.delay > 0) {
    clock_.advance(act.delay);
  }
  if (act.fault) {
    throw DmaFault("injected DMA fault on " + owner_ + " (" +
                   std::to_string(size) + "B tag=" + std::to_string(tag) +
                   ")");
  }

  // Move the data now (functional semantics)...
  if (dir == Dir::kGet) {
    ls_.write(ls_addr, ptr_of(ea), size);
  } else {
    ls_.read(ls_addr, ptr_of(ea), size);
  }

  // ...but complete in virtual time at issue + modelled DMA latency.  List
  // elements share one command's setup; the extra elements cost per-chunk.
  const simtime::SimTime issue = clock_.now();
  const simtime::SimTime latency = list_element
                                       ? cost_.dma_per_chunk +
                                             cost_.dma_per_byte *
                                                 static_cast<simtime::SimTime>(size)
                                       : cost_.dma_transfer(size);
  const simtime::SimTime done = issue + latency;

  std::lock_guard lock(mu_);
  tag_completion_[tag] = std::max(tag_completion_[tag], done);
  tag_used_[tag] = true;
  ++commands_;
  bytes_ += size;
  simtime::Trace::global().record(
      owner_, simtime::TraceKind::kDma,
      (dir == Dir::kGet ? "get " : "put ") + std::to_string(size) + "B tag=" +
          std::to_string(tag),
      issue, done);
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(dir == Dir::kGet
                                  ? simtime::tracebuf::Kind::kDmaGet
                                  : simtime::tracebuf::Kind::kDmaPut,
                              owner_, issue, done, size, /*channel=*/-1,
                              /*route_type=*/0, static_cast<std::int64_t>(tag));
  }
}

void Mfc::get(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
              unsigned tag) {
  transfer(Dir::kGet, ls_addr, ea, size, tag, /*list_element=*/false);
}

void Mfc::put(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
              unsigned tag) {
  transfer(Dir::kPut, ls_addr, ea, size, tag, /*list_element=*/false);
}

void Mfc::get_list(LsAddr ls_addr, const std::vector<MfcListElement>& list,
                   unsigned tag) {
  LsAddr cursor = ls_addr;
  bool first = true;
  for (const MfcListElement& el : list) {
    transfer(Dir::kGet, cursor, el.ea, el.size, tag, /*list_element=*/!first);
    cursor += el.size;
    first = false;
  }
}

void Mfc::put_list(LsAddr ls_addr, const std::vector<MfcListElement>& list,
                   unsigned tag) {
  LsAddr cursor = ls_addr;
  bool first = true;
  for (const MfcListElement& el : list) {
    transfer(Dir::kPut, cursor, el.ea, el.size, tag, /*list_element=*/!first);
    cursor += el.size;
    first = false;
  }
}

namespace {

// Largest power-of-two alignment shared by both addresses (capped at 256).
std::size_t co_alignment(std::uint64_t a, std::uint64_t b) {
  return std::size_t{1} << std::countr_zero(a | b | 256u);
}

// Largest legal single-command size for a transfer of `remaining` bytes with
// the given co-alignment, assuming both addresses share alignment.
std::size_t next_piece(std::size_t remaining, std::size_t addr_align) {
  if (remaining >= 16 && addr_align % 16 == 0) {
    return std::min(remaining / 16 * 16, kMfcMaxTransfer);
  }
  for (std::size_t s : {std::size_t{8}, std::size_t{4}, std::size_t{2},
                        std::size_t{1}}) {
    if (remaining >= s && addr_align % s == 0) return s;
  }
  return 1;
}

}  // namespace

void Mfc::get_any(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
                  unsigned tag) {
  while (size > 0) {
    const std::size_t align = co_alignment(ls_addr, ea);
    const std::size_t piece = next_piece(size, align);
    get(ls_addr, ea, piece, tag);
    ls_addr += static_cast<LsAddr>(piece);
    ea += piece;
    size -= piece;
  }
}

void Mfc::put_any(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
                  unsigned tag) {
  while (size > 0) {
    const std::size_t align = co_alignment(ls_addr, ea);
    const std::size_t piece = next_piece(size, align);
    put(ls_addr, ea, piece, tag);
    ls_addr += static_cast<LsAddr>(piece);
    ea += piece;
    size -= piece;
  }
}

void Mfc::write_tag_mask(std::uint32_t mask) {
  std::lock_guard lock(mu_);
  tag_mask_ = mask;
}

std::uint32_t Mfc::read_tag_status_all() {
  simtime::SimTime stall_until = 0;
  std::uint32_t completed = 0;
  {
    std::lock_guard lock(mu_);
    for (unsigned t = 0; t < kMfcTagCount; ++t) {
      if ((tag_mask_ >> t) & 1u) {
        if (tag_used_[t]) {
          stall_until = std::max(stall_until, tag_completion_[t]);
          completed |= 1u << t;
          tag_used_[t] = false;
        }
      }
    }
  }
  clock_.join(stall_until);
  return completed;
}

std::uint32_t Mfc::read_tag_status_immediate() {
  const simtime::SimTime now = clock_.now();
  std::uint32_t completed = 0;
  std::lock_guard lock(mu_);
  for (unsigned t = 0; t < kMfcTagCount; ++t) {
    if (((tag_mask_ >> t) & 1u) && tag_used_[t] && tag_completion_[t] <= now) {
      completed |= 1u << t;
      tag_used_[t] = false;
    }
  }
  return completed;
}

std::uint64_t Mfc::commands_issued() const {
  std::lock_guard lock(mu_);
  return commands_;
}

std::uint64_t Mfc::bytes_moved() const {
  std::lock_guard lock(mu_);
  return bytes_;
}

}  // namespace cellsim
