#include "cellsim/overlay.hpp"

#include "cellsim/spu.hpp"
#include "simtime/trace.hpp"

namespace cellsim {

OverlayRegion::OverlayRegion() {
  // Fails fast when constructed off-SPE.
  (void)spu::self();
}

OverlayRegion::~OverlayRegion() {
  if (reserved_) {
    // The region was allocated (not a named segment) so it can be freed
    // when the manager goes away.
    spu::self().allocator().deallocate(region_base_);
  }
}

void OverlayRegion::reserve(std::size_t bytes) {
  LsAllocator& alloc = spu::self().allocator();
  if (reserved_) {
    alloc.deallocate(region_base_);
    reserved_ = false;
  }
  region_base_ = alloc.allocate(bytes, 128);
  region_bytes_ = bytes;
  reserved_ = true;
  // Growing the region invalidates whatever was resident.
  resident_ = -1;
}

OverlaySegment OverlayRegion::register_segment(std::string name,
                                               std::size_t bytes) {
  if (bytes == 0) {
    throw LocalStoreFault("overlay segment '" + name + "' has zero size");
  }
  segments_.push_back(Registered{std::move(name), bytes});
  if (bytes > region_bytes_) reserve(bytes);
  return OverlaySegment{static_cast<int>(segments_.size()) - 1};
}

bool OverlayRegion::ensure_loaded(OverlaySegment segment) {
  if (segment.id < 0 || segment.id >= static_cast<int>(segments_.size())) {
    throw LocalStoreFault("overlay: unknown segment handle");
  }
  if (resident_ == segment.id) return false;

  const Registered& seg = segments_[static_cast<std::size_t>(segment.id)];
  const auto& env = spu::env();
  const simtime::SimTime begin = env.spe->clock().now();
  // The swap is one DMA of the segment image from main memory.
  env.spe->clock().advance(env.cost->dma_transfer(seg.bytes));
  resident_ = segment.id;
  ++swaps_;
  simtime::Trace::global().record(
      env.spe->name(), simtime::TraceKind::kDma,
      "overlay load '" + seg.name + "' " + std::to_string(seg.bytes) + "B",
      begin, env.spe->clock().now());
  return true;
}

const std::string& OverlayRegion::segment_name(OverlaySegment segment) const {
  if (segment.id < 0 || segment.id >= static_cast<int>(segments_.size())) {
    throw LocalStoreFault("overlay: unknown segment handle");
  }
  return segments_[static_cast<std::size_t>(segment.id)].name;
}

}  // namespace cellsim
