// overlay.hpp — SPE code overlays.
//
// The paper (§II.A): programmers "may need to divide up their application
// code accordingly, for which an overlay capability is available".  On the
// real SDK the linker places overlay segments in a shared local-store
// region and generates stubs that DMA the right segment in before a
// cross-segment call.  This module models exactly that: an OverlayRegion
// reserves one local-store area sized to its largest registered segment;
// running code "in" a segment first ensures it is resident, charging the
// DMA swap cost against the SPE's virtual clock and counting the swap.
//
// Usage (from within a running SPE program):
//
//   cellsim::OverlayRegion region;               // binds to the current SPE
//   auto phase1 = region.register_segment("phase1", 48 * 1024);
//   auto phase2 = region.register_segment("phase2", 64 * 1024);
//   region.run(phase1, [&] { ... });             // loads phase1 (one DMA)
//   region.run(phase2, [&] { ... });             // swap: phase1 -> phase2
//   region.run(phase2, [&] { ... });             // resident: free
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cellsim/local_store.hpp"

namespace cellsim {

/// Handle to one registered overlay segment.
struct OverlaySegment {
  int id = -1;
};

/// One overlay area inside the current SPE's local store.
///
/// Must be constructed and used on a thread running an SPE program (the
/// SPU intrinsics binding supplies the local store, clock and cost model).
class OverlayRegion {
 public:
  /// Binds to the calling thread's SPE.  No local store is reserved until
  /// the first segment registration fixes the region's size.
  OverlayRegion();

  /// Releases the reserved region.
  ~OverlayRegion();

  OverlayRegion(const OverlayRegion&) = delete;
  OverlayRegion& operator=(const OverlayRegion&) = delete;

  /// Registers a code segment of `bytes`.  Growing the region re-reserves
  /// local store to the new maximum; throws LocalStoreFault if the store
  /// cannot hold it.  Registration is setup, not a load: no swap cost.
  OverlaySegment register_segment(std::string name, std::size_t bytes);

  /// Ensures `segment` is resident, charging one DMA of the segment's size
  /// when a swap is needed.  Returns true when a swap occurred.
  bool ensure_loaded(OverlaySegment segment);

  /// Runs `body` with `segment` resident (the generated-stub pattern).
  template <typename Body>
  decltype(auto) run(OverlaySegment segment, Body&& body) {
    ensure_loaded(segment);
    return std::forward<Body>(body)();
  }

  /// Number of segment swaps performed so far.
  std::uint64_t swap_count() const { return swaps_; }

  /// The currently resident segment id, or -1.
  int resident() const { return resident_; }

  /// Bytes of local store the region occupies (largest segment).
  std::size_t region_bytes() const { return region_bytes_; }

  /// Name of a registered segment (diagnostics).
  const std::string& segment_name(OverlaySegment segment) const;

 private:
  struct Registered {
    std::string name;
    std::size_t bytes;
  };

  void reserve(std::size_t bytes);

  std::vector<Registered> segments_;
  std::size_t region_bytes_ = 0;
  LsAddr region_base_ = 0;
  bool reserved_ = false;
  int resident_ = -1;
  std::uint64_t swaps_ = 0;
};

}  // namespace cellsim
