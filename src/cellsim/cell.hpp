// cell.hpp — chip- and blade-level composition.
//
// A CellProcessor is one Cell BE chip: one PPE plus (by default) eight SPEs
// on an EIB.  A CellBlade joins two chips through their I/O elements, giving
// the dual-PowerXCell-8i node the paper's testbed used: 2 PPEs and 16 SPEs
// with a single coherent effective-address space.  The blade exposes a flat
// SPE index 0..15 (chip 0 first), which is what the cluster layer and the
// Co-Pilot address.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cellsim/eib.hpp"
#include "cellsim/spe.hpp"
#include "simtime/cost_model.hpp"
#include "simtime/virtual_clock.hpp"

namespace cellsim {

/// Number of SPEs on one Cell BE chip.
inline constexpr unsigned kSpesPerChip = 8;

/// The PPE: the chip's general-purpose PowerPC core.  The PPE's dual
/// hardware threads are modelled as two independent virtual clocks (thread 0
/// conventionally runs the Pilot process, thread 1 the Co-Pilot).
class Ppe {
 public:
  explicit Ppe(std::string name) : name_(std::move(name)) {}

  Ppe(const Ppe&) = delete;
  Ppe& operator=(const Ppe&) = delete;

  const std::string& name() const { return name_; }

  /// Virtual clock of hardware thread 0 or 1.
  simtime::VirtualClock& thread_clock(unsigned hw_thread);

 private:
  std::string name_;
  simtime::VirtualClock clocks_[2];
};

/// One Cell BE chip.
class CellProcessor {
 public:
  /// Builds a chip named `name` with `n_spes` SPEs (default 8) whose
  /// primitives are costed by `cost` (must outlive the chip).
  CellProcessor(std::string name, const simtime::CostModel& cost,
                unsigned n_spes = kSpesPerChip);

  CellProcessor(const CellProcessor&) = delete;
  CellProcessor& operator=(const CellProcessor&) = delete;

  const std::string& name() const { return name_; }

  /// The chip's PPE.
  Ppe& ppe() { return ppe_; }

  /// Number of SPEs on this chip.
  unsigned spe_count() const { return static_cast<unsigned>(spes_.size()); }

  /// SPE by chip-local index.
  Spe& spe(unsigned index);

  /// The chip's interconnect accounting.
  Eib& eib() { return eib_; }

  /// Shuts down all SPEs (closes mailboxes).
  void shutdown();

 private:
  std::string name_;
  Ppe ppe_;
  std::vector<std::unique_ptr<Spe>> spes_;
  Eib eib_;
};

/// A dual-chip Cell blade: the paper's node type.
class CellBlade {
 public:
  /// Builds a blade named `name` of two chips ("<name>.cell0/1").
  CellBlade(std::string name, const simtime::CostModel& cost,
            unsigned spes_per_chip = kSpesPerChip);

  CellBlade(const CellBlade&) = delete;
  CellBlade& operator=(const CellBlade&) = delete;

  const std::string& name() const { return name_; }

  /// Chip 0 or 1.
  CellProcessor& chip(unsigned index);

  /// Total SPEs across both chips.
  unsigned spe_count() const;

  /// SPE by flat blade index (chip 0's SPEs first).
  Spe& spe(unsigned flat_index);

  /// The PPE that runs this node's MPI ranks (chip 0's, by convention: the
  /// Pilot process on hardware thread 0 and the Co-Pilot on thread 1).
  Ppe& primary_ppe() { return chip(0).ppe(); }

  /// Shuts down both chips.
  void shutdown();

 private:
  std::string name_;
  std::unique_ptr<CellProcessor> chips_[2];
};

}  // namespace cellsim
