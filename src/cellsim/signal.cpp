#include "cellsim/signal.hpp"

#include <algorithm>

namespace cellsim {

void SignalRegister::send(std::uint32_t bits, simtime::SimTime stamp) {
  std::lock_guard lock(mu_);
  bits_ = or_mode_ ? (bits_ | bits) : bits;
  stamp_ = std::max(stamp_, stamp);
  if (bits_ != 0) nonzero_.notify_all();
}

SignalRegister::Received SignalRegister::read_blocking() {
  std::unique_lock lock(mu_);
  nonzero_.wait(lock, [&] { return bits_ != 0; });
  Received r{bits_, stamp_};
  bits_ = 0;
  stamp_ = simtime::kSimTimeZero;
  return r;
}

std::uint32_t SignalRegister::peek() const {
  std::lock_guard lock(mu_);
  return bits_;
}

}  // namespace cellsim
