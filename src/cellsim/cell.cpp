#include "cellsim/cell.hpp"

#include "cellsim/errors.hpp"

namespace cellsim {

simtime::VirtualClock& Ppe::thread_clock(unsigned hw_thread) {
  if (hw_thread > 1) {
    throw HardwareFault("PPE has hardware threads 0 and 1 only");
  }
  return clocks_[hw_thread];
}

CellProcessor::CellProcessor(std::string name, const simtime::CostModel& cost,
                             unsigned n_spes)
    : name_(std::move(name)), ppe_(name_ + ".ppe") {
  spes_.reserve(n_spes);
  for (unsigned i = 0; i < n_spes; ++i) {
    spes_.push_back(std::make_unique<Spe>(
        i, name_ + ".spe" + std::to_string(i), cost));
  }
}

Spe& CellProcessor::spe(unsigned index) {
  if (index >= spes_.size()) {
    throw HardwareFault("SPE index " + std::to_string(index) +
                        " out of range on " + name_);
  }
  return *spes_[index];
}

void CellProcessor::shutdown() {
  for (auto& s : spes_) s->shutdown();
}

CellBlade::CellBlade(std::string name, const simtime::CostModel& cost,
                     unsigned spes_per_chip)
    : name_(std::move(name)) {
  chips_[0] = std::make_unique<CellProcessor>(name_ + ".cell0", cost,
                                              spes_per_chip);
  chips_[1] = std::make_unique<CellProcessor>(name_ + ".cell1", cost,
                                              spes_per_chip);
}

CellProcessor& CellBlade::chip(unsigned index) {
  if (index > 1) throw HardwareFault("blade has chips 0 and 1 only");
  return *chips_[index];
}

unsigned CellBlade::spe_count() const {
  return chips_[0]->spe_count() + chips_[1]->spe_count();
}

Spe& CellBlade::spe(unsigned flat_index) {
  const unsigned c0 = chips_[0]->spe_count();
  if (flat_index < c0) return chips_[0]->spe(flat_index);
  return chips_[1]->spe(flat_index - c0);
}

void CellBlade::shutdown() {
  chips_[0]->shutdown();
  chips_[1]->shutdown();
}

}  // namespace cellsim
