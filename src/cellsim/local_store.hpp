// local_store.hpp — the SPE's 256 KB local store and its allocator.
//
// Each simulated SPE owns one LocalStore: a genuine 256 KB byte arena.  All
// SPE-visible data lives inside it, addressed by 32-bit local-store offsets
// (LsAddr), exactly as on hardware.  Bounds are checked on every access.
//
// LsAllocator provides the "linker + runtime" view of the store: code, stack
// and data segments are charged against the 256 KB, so the footprint
// experiment (paper §V: cellpilot.o = 10 336 B vs libdacs.a = 36 600 B) is a
// property of real accounting, not a constant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cellsim/errors.hpp"

namespace cellsim {

/// A local-store address: byte offset within one SPE's 256 KB store.
using LsAddr = std::uint32_t;

/// Size of every SPE local store, fixed by the architecture.
inline constexpr std::size_t kLocalStoreSize = 256 * 1024;

/// One SPE's local store: a bounds-checked 256 KB byte arena.
class LocalStore {
 public:
  LocalStore();

  LocalStore(const LocalStore&) = delete;
  LocalStore& operator=(const LocalStore&) = delete;

  /// Capacity in bytes (always kLocalStoreSize).
  std::size_t size() const { return data_.size(); }

  /// Host pointer to the beginning of the store.  This is the simulated
  /// analogue of libspe2's spe_ls_area_get(): the PPE sees local store
  /// memory-mapped into the effective-address space.
  std::byte* base() { return data_.data(); }
  const std::byte* base() const { return data_.data(); }

  /// Host pointer to `addr`, validated for an access of `len` bytes.
  /// Throws LocalStoreFault when [addr, addr+len) leaves the store.
  std::byte* at(LsAddr addr, std::size_t len);
  const std::byte* at(LsAddr addr, std::size_t len) const;

  /// Copies host memory into the store (PPE-side mapped write or DMA get).
  void write(LsAddr addr, const void* src, std::size_t len);

  /// Copies store contents out to host memory (mapped read or DMA put).
  void read(LsAddr addr, void* dst, std::size_t len) const;

  /// Fills the whole store with a byte pattern (test helper; real local
  /// store powers up with undefined contents).
  void fill(std::byte value);

 private:
  void check(LsAddr addr, std::size_t len) const;

  std::vector<std::byte> data_;
};

/// First-fit allocator over a LocalStore, modelling the SPE linker/runtime
/// memory map.  Static segments (code, runtime, stack) are reserved once;
/// buffers are allocated and freed dynamically.  Exhaustion throws
/// LocalStoreFault — the fault every Cell programmer knows.
class LsAllocator {
 public:
  /// Manages [0, store_size) of a local store.
  explicit LsAllocator(std::size_t store_size = kLocalStoreSize);

  /// Permanently reserves `len` bytes for a named static segment
  /// (e.g. "text:spe_program", "stack").  Returns the segment base.
  LsAddr reserve_segment(const std::string& name, std::size_t len,
                         std::size_t align = 16);

  /// Allocates `len` bytes aligned to `align` (power of two, default
  /// quad-word as DMA prefers).  Throws LocalStoreFault when full.
  LsAddr allocate(std::size_t len, std::size_t align = 16);

  /// Frees a block returned by allocate().  Throws LocalStoreFault on a
  /// pointer that was never allocated (double free / wild free).
  void deallocate(LsAddr addr);

  /// Bytes currently in use (segments + live allocations, incl. padding).
  std::size_t used() const;

  /// Bytes still allocatable in the largest free block.
  std::size_t largest_free_block() const;

  /// Total bytes reserved by named segments.
  std::size_t segment_bytes() const { return segment_bytes_; }

  /// Forgets every allocation and segment, returning the store to its
  /// power-on state.  Used when a new program image is loaded onto an SPE
  /// (the load overwrites whatever was resident).
  void reset();

  /// Names and sizes of reserved segments, in reservation order.
  struct Segment {
    std::string name;
    LsAddr base;
    std::size_t size;
  };
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  struct Block {
    LsAddr base;
    std::size_t size;
    bool free;
  };

  void coalesce();

  std::size_t store_size_;
  std::vector<Block> blocks_;        // sorted by base, covers whole store
  std::vector<Segment> segments_;
  std::size_t segment_bytes_ = 0;
};

}  // namespace cellsim
