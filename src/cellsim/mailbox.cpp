#include "cellsim/mailbox.hpp"

namespace cellsim {

Mailbox::Mailbox(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw MailboxFault("mailbox capacity must be >= 1");
}

std::size_t Mailbox::count() const {
  std::lock_guard lock(mu_);
  return fifo_.size();
}

std::size_t Mailbox::free_slots() const {
  std::lock_guard lock(mu_);
  return capacity_ - fifo_.size();
}

void Mailbox::push_blocking(std::uint32_t value, simtime::SimTime stamp) {
  std::unique_lock lock(mu_);
  not_full_.wait(lock, [&] { return closed_ || fifo_.size() < capacity_; });
  if (closed_) throw MailboxFault("push on closed mailbox");
  fifo_.push_back(MailboxEntry{value, stamp});
  not_empty_.notify_one();
}

bool Mailbox::try_push(std::uint32_t value, simtime::SimTime stamp) {
  std::lock_guard lock(mu_);
  if (closed_) throw MailboxFault("push on closed mailbox");
  if (fifo_.size() >= capacity_) return false;
  fifo_.push_back(MailboxEntry{value, stamp});
  not_empty_.notify_one();
  return true;
}

MailboxEntry Mailbox::pop_blocking() {
  std::unique_lock lock(mu_);
  while (!(closed_ || !fifo_.empty())) {
    reader_waiting_.store(true, std::memory_order_release);
    not_empty_.wait(lock);
    reader_waiting_.store(false, std::memory_order_release);
  }
  if (fifo_.empty()) throw MailboxFault("pop on closed mailbox");
  MailboxEntry e = fifo_.front();
  fifo_.pop_front();
  not_full_.notify_one();
  return e;
}

std::optional<simtime::SimTime> Mailbox::earliest_stamp() const {
  std::lock_guard lock(mu_);
  if (fifo_.empty()) return std::nullopt;
  return fifo_.front().stamp;
}

std::optional<MailboxEntry> Mailbox::try_pop() {
  std::lock_guard lock(mu_);
  if (fifo_.empty()) {
    if (closed_) throw MailboxFault("pop on closed mailbox");
    return std::nullopt;
  }
  MailboxEntry e = fifo_.front();
  fifo_.pop_front();
  not_full_.notify_one();
  return e;
}

void Mailbox::close() {
  std::lock_guard lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

}  // namespace cellsim
