#include "cellsim/local_store.hpp"

#include <algorithm>
#include <cstring>

namespace cellsim {

LocalStore::LocalStore() : data_(kLocalStoreSize) {}

void LocalStore::check(LsAddr addr, std::size_t len) const {
  if (addr > data_.size() || len > data_.size() - addr) {
    throw LocalStoreFault("local store access out of range: addr=" +
                          std::to_string(addr) + " len=" + std::to_string(len) +
                          " (store is " + std::to_string(data_.size()) + " B)");
  }
}

std::byte* LocalStore::at(LsAddr addr, std::size_t len) {
  check(addr, len);
  return data_.data() + addr;
}

const std::byte* LocalStore::at(LsAddr addr, std::size_t len) const {
  check(addr, len);
  return data_.data() + addr;
}

void LocalStore::write(LsAddr addr, const void* src, std::size_t len) {
  std::memcpy(at(addr, len), src, len);
}

void LocalStore::read(LsAddr addr, void* dst, std::size_t len) const {
  std::memcpy(dst, at(addr, len), len);
}

void LocalStore::fill(std::byte value) {
  std::fill(data_.begin(), data_.end(), value);
}

namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

LsAllocator::LsAllocator(std::size_t store_size) : store_size_(store_size) {
  blocks_.push_back(Block{0, store_size_, /*free=*/true});
}

LsAddr LsAllocator::reserve_segment(const std::string& name, std::size_t len,
                                    std::size_t align) {
  const LsAddr base = allocate(len, align);
  segments_.push_back(Segment{name, base, len});
  segment_bytes_ += len;
  return base;
}

LsAddr LsAllocator::allocate(std::size_t len, std::size_t align) {
  if (len == 0) {
    throw LocalStoreFault("LsAllocator: zero-length allocation");
  }
  if (!is_pow2(align)) {
    throw LocalStoreFault("LsAllocator: alignment must be a power of two");
  }
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    Block& b = blocks_[i];
    if (!b.free) continue;
    const std::size_t aligned = align_up(b.base, align);
    const std::size_t pad = aligned - b.base;
    if (b.size < pad + len) continue;

    // Split off leading pad (kept free) and trailing remainder.
    std::vector<Block> pieces;
    if (pad > 0) pieces.push_back(Block{b.base, pad, true});
    pieces.push_back(Block{static_cast<LsAddr>(aligned), len, false});
    if (b.size > pad + len) {
      pieces.push_back(Block{static_cast<LsAddr>(aligned + len),
                             b.size - pad - len, true});
    }
    blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(i));
    blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(i),
                   pieces.begin(), pieces.end());
    return static_cast<LsAddr>(aligned);
  }
  throw LocalStoreFault(
      "SPE local store exhausted: requested " + std::to_string(len) +
      " B (align " + std::to_string(align) + "), largest free block is " +
      std::to_string(largest_free_block()) + " B of " +
      std::to_string(store_size_) + " B total");
}

void LsAllocator::deallocate(LsAddr addr) {
  for (Block& b : blocks_) {
    if (b.base == addr && !b.free) {
      b.free = true;
      coalesce();
      return;
    }
  }
  throw LocalStoreFault("LsAllocator: deallocate of address " +
                        std::to_string(addr) + " that is not allocated");
}

void LsAllocator::coalesce() {
  for (std::size_t i = 0; i + 1 < blocks_.size();) {
    if (blocks_[i].free && blocks_[i + 1].free) {
      blocks_[i].size += blocks_[i + 1].size;
      blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    } else {
      ++i;
    }
  }
}

void LsAllocator::reset() {
  blocks_.clear();
  blocks_.push_back(Block{0, store_size_, /*free=*/true});
  segments_.clear();
  segment_bytes_ = 0;
}

std::size_t LsAllocator::used() const {
  std::size_t n = 0;
  for (const Block& b : blocks_) {
    if (!b.free) n += b.size;
  }
  return n;
}

std::size_t LsAllocator::largest_free_block() const {
  std::size_t n = 0;
  for (const Block& b : blocks_) {
    if (b.free) n = std::max(n, b.size);
  }
  return n;
}

}  // namespace cellsim
