// errors.hpp — fault types raised by the simulated Cell BE hardware.
//
// The simulator *enforces* the constraints that make Cell programming hard —
// 256 KB local stores, DMA alignment, mailbox depths — rather than merely
// modelling their cost.  Violations raise these exceptions so tests can
// assert that misuse faults exactly where real silicon would raise a bus
// error or hang.
#pragma once

#include <stdexcept>
#include <string>

namespace cellsim {

/// Base class for all simulated hardware faults.
class HardwareFault : public std::runtime_error {
 public:
  explicit HardwareFault(const std::string& what) : std::runtime_error(what) {}
};

/// Access outside the 256 KB local store, or allocation beyond capacity.
class LocalStoreFault : public HardwareFault {
 public:
  using HardwareFault::HardwareFault;
};

/// DMA command violating MFC rules (size, alignment, tag range).
class DmaFault : public HardwareFault {
 public:
  using HardwareFault::HardwareFault;
};

/// Illegal mailbox operation (e.g. non-blocking write to a full FIFO).
class MailboxFault : public HardwareFault {
 public:
  using HardwareFault::HardwareFault;
};

/// Misuse of the libspe2-style context API (double run, bad handle, ...).
class ContextFault : public HardwareFault {
 public:
  using HardwareFault::HardwareFault;
};

}  // namespace cellsim
