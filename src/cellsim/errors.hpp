// errors.hpp — fault types raised by the simulated Cell BE hardware.
//
// The simulator *enforces* the constraints that make Cell programming hard —
// 256 KB local stores, DMA alignment, mailbox depths — rather than merely
// modelling their cost.  Violations raise these exceptions so tests can
// assert that misuse faults exactly where real silicon would raise a bus
// error or hang.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cellsim {

/// Stable identifier of a fault's kind, so faults can be marshalled across
/// the Co-Pilot boundary (mailbox words, wire frames) without RTTI or
/// string matching.  Values are part of the wire protocol — append only.
enum class FaultCode : std::uint32_t {
  kGeneric = 0,     ///< base HardwareFault
  kLocalStore = 1,  ///< LocalStoreFault
  kDma = 2,         ///< DmaFault
  kMailbox = 3,     ///< MailboxFault
  kContext = 4,     ///< ContextFault
  kInjected = 5,    ///< fault injected by a test fault plan
  kTimeout = 6,     ///< Co-Pilot supervision deadline expired
};

/// Returns "generic", "local-store", "dma", "mailbox", "context",
/// "injected" or "timeout".
const char* to_string(FaultCode code);

/// Base class for all simulated hardware faults.
class HardwareFault : public std::runtime_error {
 public:
  explicit HardwareFault(const std::string& what) : std::runtime_error(what) {}

  /// Stable kind identifier for cross-boundary marshalling.
  virtual FaultCode fault_code() const { return FaultCode::kGeneric; }
};

/// Access outside the 256 KB local store, or allocation beyond capacity.
class LocalStoreFault : public HardwareFault {
 public:
  using HardwareFault::HardwareFault;
  FaultCode fault_code() const override { return FaultCode::kLocalStore; }
};

/// DMA command violating MFC rules (size, alignment, tag range).
class DmaFault : public HardwareFault {
 public:
  using HardwareFault::HardwareFault;
  FaultCode fault_code() const override { return FaultCode::kDma; }
};

/// Illegal mailbox operation (e.g. non-blocking write to a full FIFO).
class MailboxFault : public HardwareFault {
 public:
  using HardwareFault::HardwareFault;
  FaultCode fault_code() const override { return FaultCode::kMailbox; }
};

/// Misuse of the libspe2-style context API (double run, bad handle, ...).
class ContextFault : public HardwareFault {
 public:
  using HardwareFault::HardwareFault;
  FaultCode fault_code() const override { return FaultCode::kContext; }
};

inline const char* to_string(FaultCode code) {
  switch (code) {
    case FaultCode::kGeneric:
      return "generic";
    case FaultCode::kLocalStore:
      return "local-store";
    case FaultCode::kDma:
      return "dma";
    case FaultCode::kMailbox:
      return "mailbox";
    case FaultCode::kContext:
      return "context";
    case FaultCode::kInjected:
      return "injected";
    case FaultCode::kTimeout:
      return "timeout";
  }
  return "unknown";
}

}  // namespace cellsim
