// eib.hpp — the Element Interconnect Bus.
//
// The EIB is the Cell's on-chip ring bus joining the PPE, the 8 SPEs, the
// memory controller and the I/O elements.  Functionally the simulation does
// not need a bus (everything shares host memory); the Eib class exists to
// (a) account intra-chip traffic for the microbenchmarks and ablations, and
// (b) own the chip-local transfer bookkeeping that tests assert on
// ("a type-4 transfer never leaves the chip").
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cellsim {

/// Traffic accounting for one Cell chip's interconnect.
class Eib {
 public:
  /// One recorded on-chip transfer.
  struct Transfer {
    std::string src;    ///< producing element, e.g. "spe3" or "ppe"
    std::string dst;    ///< consuming element
    std::uint64_t bytes;
  };

  /// Records one transfer crossing the bus.
  void record(std::string src, std::string dst, std::uint64_t bytes);

  /// Total bytes moved over this bus.
  std::uint64_t total_bytes() const;

  /// Number of recorded transfers.
  std::uint64_t transfer_count() const;

  /// Snapshot of all transfers (test/diagnostic use).
  std::vector<Transfer> transfers() const;

 private:
  mutable std::mutex mu_;
  std::vector<Transfer> log_;
  std::uint64_t bytes_ = 0;
};

}  // namespace cellsim
