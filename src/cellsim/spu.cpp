#include "cellsim/spu.hpp"

#include "cellsim/errors.hpp"
#include "cellsim/inject.hpp"
#include "simtime/metrics.hpp"
#include "simtime/trace.hpp"
#include "simtime/tracebuf.hpp"

namespace cellsim::spu {

namespace {
thread_local SpuEnv t_env;

// Probes the fault-injection seam before a mailbox primitive: a stall
// charges extra virtual time to the SPU; a fault raises MailboxFault as
// real silicon would on a wedged channel.
void probe_mailbox(const SpuEnv& e, inject::Site site, const char* which) {
  const inject::Action act =
      inject::probe(site, e.spe->name().c_str(), e.spe->clock().now());
  if (act.delay > 0) {
    e.spe->clock().advance(act.delay);
  }
  if (act.fault) {
    throw MailboxFault(std::string("injected mailbox fault on ") + which +
                       " of " + e.spe->name());
  }
}
}  // namespace

void bind(const SpuEnv& e) { t_env = e; }

void unbind() { t_env = SpuEnv{}; }

const SpuEnv& env() {
  if (t_env.spe == nullptr) {
    throw ContextFault(
        "SPU intrinsic called on a thread that is not running an SPE program");
  }
  return t_env;
}

bool bound() { return t_env.spe != nullptr; }

Spe& self() { return *env().spe; }

std::uint32_t spu_read_in_mbox() {
  const SpuEnv& e = env();
  probe_mailbox(e, inject::Site::kMboxRead, "in_mbox");
  const simtime::SimTime begin = e.spe->clock().now();
  const MailboxEntry entry = e.spe->inbound_mailbox().pop_blocking();
  e.spe->clock().join(entry.stamp);
  const simtime::SimTime end = e.spe->clock().advance(e.cost->mbox_spu_read);
  simtime::Trace::global().record(e.spe->name(),
                                  simtime::TraceKind::kMailboxRead,
                                  "in_mbox", begin, end);
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kMboxPop, e.spe->name(),
                              begin, end, sizeof(std::uint32_t));
  }
  if (simtime::metrics::armed()) {
    // Mailbox dwell time: how long the word sat in the FIFO before this
    // read consumed it (pop end minus push stamp).  A fully virtual-stamp
    // quantity — an instantaneous occupancy count would depend on host
    // polling — and by Little's law a faithful occupancy proxy.
    simtime::metrics::record(simtime::metrics::Kind::kMboxWait,
                             /*route_type=*/0, /*channel=*/-1, e.spe->name(),
                             end - entry.stamp);
  }
  return entry.value;
}

void spu_write_out_mbox(std::uint32_t value) {
  const SpuEnv& e = env();
  probe_mailbox(e, inject::Site::kMboxWrite, "out_mbox");
  const simtime::SimTime begin = e.spe->clock().now();
  const simtime::SimTime end = e.spe->clock().advance(e.cost->mbox_spu_write);
  e.spe->outbound_mailbox().push_blocking(value, end);
  simtime::Trace::global().record(e.spe->name(),
                                  simtime::TraceKind::kMailboxWrite,
                                  "out_mbox", begin, end);
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kMboxPush, e.spe->name(),
                              begin, end, sizeof(std::uint32_t));
  }
}

void spu_write_out_intr_mbox(std::uint32_t value) {
  const SpuEnv& e = env();
  probe_mailbox(e, inject::Site::kMboxWrite, "out_intr_mbox");
  const simtime::SimTime begin = e.spe->clock().now();
  const simtime::SimTime end = e.spe->clock().advance(e.cost->mbox_spu_write);
  e.spe->outbound_interrupt_mailbox().push_blocking(value, end);
  simtime::Trace::global().record(e.spe->name(),
                                  simtime::TraceKind::kMailboxWrite,
                                  "out_intr_mbox", begin, end);
  if (simtime::tracebuf::armed()) {
    simtime::tracebuf::record(simtime::tracebuf::Kind::kMboxPush, e.spe->name(),
                              begin, end, sizeof(std::uint32_t));
  }
}

unsigned spu_stat_in_mbox() {
  return static_cast<unsigned>(env().spe->inbound_mailbox().count());
}

std::uint32_t spu_read_signal(unsigned index) {
  const SpuEnv& e = env();
  const SignalRegister::Received r = e.spe->signal(index).read_blocking();
  e.spe->clock().join(r.stamp);
  e.spe->clock().advance(e.cost->mbox_spu_read);
  return r.bits;
}

void mfc_get(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
             unsigned tag) {
  self().mfc().get(ls_addr, ea, size, tag);
}

void mfc_put(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
             unsigned tag) {
  self().mfc().put(ls_addr, ea, size, tag);
}

void mfc_get_any(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
                 unsigned tag) {
  self().mfc().get_any(ls_addr, ea, size, tag);
}

void mfc_put_any(LsAddr ls_addr, EffectiveAddress ea, std::size_t size,
                 unsigned tag) {
  self().mfc().put_any(ls_addr, ea, size, tag);
}

void mfc_write_tag_mask(std::uint32_t mask) {
  self().mfc().write_tag_mask(mask);
}

std::uint32_t mfc_read_tag_status_all() {
  return self().mfc().read_tag_status_all();
}

void* ls_ptr(LsAddr addr, std::size_t len) {
  return self().local_store().at(addr, len);
}

LsAddr ls_alloc(std::size_t len, std::size_t align) {
  return self().allocator().allocate(len, align);
}

void ls_free(LsAddr addr) { self().allocator().deallocate(addr); }

}  // namespace cellsim::spu
