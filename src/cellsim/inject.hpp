// inject.hpp — fault-injection seam for the simulated Cell hardware.
//
// cellsim depends only on simtime, so it cannot see the fault *plan* (which
// lives in core/faultplan and is configured through the Pilot API).  The
// seam is therefore a single function pointer: the plan installs a hook,
// and the hardware primitives probe it at well-defined sites.  With no
// hook installed the probe is one relaxed atomic load and a branch —
// virtual time is untouched and the clean-path timing is bit-for-bit
// identical to a build without the seam.
#pragma once

#include <atomic>

#include "simtime/sim_time.hpp"

namespace cellsim::inject {

/// Where in the hardware a probe fires.
enum class Site {
  kMboxWrite,  ///< SPU writing its outbound (or interrupt) mailbox
  kMboxRead,   ///< SPU reading its inbound mailbox
  kDma,        ///< MFC transfer (get/put, any variant)
};

/// What the plan wants done at a probed site.
struct Action {
  simtime::SimTime delay = 0;  ///< extra virtual time charged to the actor
  bool fault = false;          ///< raise the site's HardwareFault subclass
};

/// `owner` is the acting entity's diagnostic name (e.g. "node0.spe3").
using Hook = Action (*)(Site site, const char* owner, simtime::SimTime now);

namespace detail {
inline std::atomic<Hook> g_hook{nullptr};
}  // namespace detail

/// Installs (or clears, with nullptr) the process-wide hook.
inline void set_hook(Hook hook) {
  detail::g_hook.store(hook, std::memory_order_release);
}

/// Probes the hook; no-op (all-zero Action) when none is installed.
inline Action probe(Site site, const char* owner, simtime::SimTime now) {
  const Hook hook = detail::g_hook.load(std::memory_order_acquire);
  return hook == nullptr ? Action{} : hook(site, owner, now);
}

}  // namespace cellsim::inject
