// tracecheck — determinism oracle for CellPilot trace files.
//
//   tracecheck A.json B.json     compare two traces canonically; exit 0 iff
//                                they describe the same events
//   tracecheck --canon A.json    print the canonical event list to stdout
//
// A CellPilot trace is Chrome trace JSON written one event per line (see
// docs/OBSERVABILITY.md).  Canonicalization extracts the event lines —
// validating each one through the shared benchkit/benchjson line parser,
// so a truncated or corrupted trace dies with a byte offset instead of
// silently "comparing equal" — and sorts them, so the comparison is
// insensitive to the order in which events were serialized; what remains
// is exactly the virtual-time behaviour of the program.  Because the
// simulation clock is virtual and every scheduler decision is
// deterministic, two runs of the same seeded program must canonicalize
// identically; any diff is a real nondeterminism bug.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "benchkit/benchjson.hpp"

namespace {

/// True for lines that carry one trace event (complete events and the
/// thread-name metadata) as written by core/trace's serializer.
bool is_event_line(const std::string& line) {
  return line.rfind("{\"ph\":", 0) == 0;
}

/// Strips the trailing JSON list comma, if any, so position in the array
/// does not affect comparison.
std::string strip_comma(std::string line) {
  while (!line.empty() && (line.back() == '\r' || line.back() == ',')) {
    line.pop_back();
  }
  return line;
}

std::vector<std::string> canonical_events(const std::string& path,
                                          bool* ok) {
  std::vector<std::string> events;
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "tracecheck: cannot open " << path << "\n";
    *ok = false;
    return events;
  }
  std::string line;
  bool any_line = false;
  while (std::getline(f, line)) {
    if (!line.empty()) any_line = true;
    if (!is_event_line(line)) continue;
    benchkit::Fields fields;
    std::string error;
    if (!benchkit::parse_object_line(line, &fields, &error)) {
      std::cerr << "tracecheck: malformed event line in " << path << " ("
                << error << "): " << line << "\n";
      *ok = false;
      return events;
    }
    events.push_back(strip_comma(std::move(line)));
  }
  // An empty or event-less file is indistinguishable from a second empty
  // one, so comparing would vacuously "pass".  Diagnose it instead: the
  // usual causes are a disarmed run (-pitrace/CELLPILOT_TRACE missing) or
  // a path that is not a CellPilot trace at all.
  if (!any_line) {
    std::cerr << "tracecheck: " << path
              << " is empty — not a trace file (did the run arm tracing?)\n";
    *ok = false;
    return events;
  }
  if (events.empty()) {
    std::cerr << "tracecheck: " << path
              << " contains no trace events (disarmed run, or not a "
                 "CellPilot trace?)\n";
    *ok = false;
    return events;
  }
  *ok = true;
  return events;
}

int usage() {
  std::cerr << "usage: tracecheck A.json B.json\n"
               "       tracecheck --canon A.json\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--canon") {
    bool ok = false;
    const auto events = canonical_events(argv[2], &ok);
    if (!ok) return 2;
    for (const auto& e : events) std::cout << e << "\n";
    return 0;
  }
  if (argc != 3) return usage();

  bool ok_a = false;
  bool ok_b = false;
  const auto a = canonical_events(argv[1], &ok_a);
  const auto b = canonical_events(argv[2], &ok_b);
  if (!ok_a || !ok_b) return 2;

  if (a == b) {
    std::cout << "tracecheck: identical (" << a.size() << " events)\n";
    return 0;
  }

  std::cout << "tracecheck: DIFFER (" << a.size() << " vs " << b.size()
            << " events)\n";
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t shown = 0;
  for (std::size_t i = 0; i < n && shown < 10; ++i) {
    if (a[i] != b[i]) {
      std::cout << "  [" << i << "] < " << a[i] << "\n"
                << "  [" << i << "] > " << b[i] << "\n";
      ++shown;
    }
  }
  for (std::size_t i = n; i < a.size() && shown < 10; ++i, ++shown) {
    std::cout << "  [" << i << "] < " << a[i] << "\n";
  }
  for (std::size_t i = n; i < b.size() && shown < 10; ++i, ++shown) {
    std::cout << "  [" << i << "] > " << b[i] << "\n";
  }
  return 1;
}
